package tcomp_test

// Benchmark regression harness for the streaming engine: buffered
// whole-set compression vs the chunked StreamWriter/StreamReader path,
// both directions, on the fast codecs. CI runs these (with the
// bitstream micro-benchmarks) and archives the output as
// BENCH_stream.json so the perf trajectory across PRs has data points.

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"testing"

	tcomp "repro"
	"repro/internal/testset"
)

func benchSet() *tcomp.TestSet {
	rng := rand.New(rand.NewSource(7))
	return testset.Random(256, 2048, 0.3, rng) // 512 Kbit
}

func BenchmarkStreamVsBuffered(b *testing.B) {
	ts := benchSet()
	for _, codec := range []string{"fdr", "golomb", "rl", "selhuff"} {
		codec := codec
		c, err := tcomp.Lookup(codec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("compress/buffered/"+codec, func(b *testing.B) {
			b.SetBytes(int64(ts.TotalBits() / 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.Compress(context.Background(), ts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("compress/stream/"+codec, func(b *testing.B) {
			b.SetBytes(int64(ts.TotalBits() / 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sw, err := tcomp.NewStreamWriter(context.Background(), io.Discard, codec, ts.Width)
				if err != nil {
					b.Fatal(err)
				}
				if err := sw.WriteSet(ts); err != nil {
					b.Fatal(err)
				}
				if err := sw.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})

		art, err := c.Compress(context.Background(), ts)
		if err != nil {
			b.Fatal(err)
		}
		var container bytes.Buffer
		sw, err := tcomp.NewStreamWriter(context.Background(), &container, codec, ts.Width)
		if err != nil {
			b.Fatal(err)
		}
		if err := sw.WriteSet(ts); err != nil {
			b.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			b.Fatal(err)
		}
		raw := container.Bytes()

		b.Run("decompress/buffered/"+codec, func(b *testing.B) {
			b.SetBytes(int64(ts.TotalBits() / 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tcomp.Decompress(art); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("decompress/stream/"+codec, func(b *testing.B) {
			b.SetBytes(int64(ts.TotalBits() / 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sr, err := tcomp.NewStreamReader(bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sr.ReadAll(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
