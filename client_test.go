package tcomp_test

// The public-API conformance suite for tcomp.Client against a real
// serve.Server. It lives in the external test package: the server
// imports tcomp, so an internal test would be an import cycle.

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	tcomp "repro"
	"repro/internal/serve"
	"repro/internal/testset"
)

func newDaemon(t *testing.T) (*serve.Server, *tcomp.Client) {
	t.Helper()
	s, err := serve.New(serve.Config{Workers: 2, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, tcomp.NewClient(hs.URL + "/") // trailing slash must be tolerated
}

func clientSet(t *testing.T, seed int64) *tcomp.TestSet {
	t.Helper()
	return testset.Random(16, 25, 0.4, rand.New(rand.NewSource(seed)))
}

func TestClientCompressDecompress(t *testing.T) {
	_, c := newDaemon(t)
	ctx := context.Background()
	ts := clientSet(t, 1)

	var in bytes.Buffer
	if err := ts.Write(&in); err != nil {
		t.Fatal(err)
	}
	var cont bytes.Buffer
	stats, err := c.Compress(ctx, "rl", &in, &cont, tcomp.WithSeed(3), tcomp.WithCounterWidth(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Patterns != ts.NumPatterns() || stats.OriginalBits != ts.TotalBits() {
		t.Fatalf("stats %+v do not match the %d-pattern input", stats, ts.NumPatterns())
	}
	if stats.RatePercent() != 100*float64(stats.OriginalBits-stats.CompressedBits)/float64(stats.OriginalBits) {
		t.Fatal("RatePercent inconsistent with the reported bit counts")
	}

	var text bytes.Buffer
	if err := c.Decompress(ctx, &cont, &text); err != nil {
		t.Fatal(err)
	}
	dec, err := testset.ReadAuto(&text)
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		t.Fatal("client round trip lost specified bits")
	}
}

func TestClientCompressSetMatchesLocal(t *testing.T) {
	_, c := newDaemon(t)
	ctx := context.Background()
	ts := clientSet(t, 2)

	art, stats, err := c.CompressSet(ctx, "golomb", ts, tcomp.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	codec, err := tcomp.Lookup("golomb")
	if err != nil {
		t.Fatal(err)
	}
	local, err := codec.Compress(ctx, ts, tcomp.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art.Payload, local.Payload) || !bytes.Equal(art.Params, local.Params) {
		t.Fatal("remote artifact differs from local compression")
	}
	if stats.CompressedBits != local.CompressedBits {
		t.Fatalf("stats report %d bits, local %d", stats.CompressedBits, local.CompressedBits)
	}
	dec, err := c.DecompressSet(ctx, art)
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		t.Fatal("DecompressSet lost specified bits")
	}
}

func TestClientCodecsAndHealth(t *testing.T) {
	s, c := newDaemon(t)
	ctx := context.Background()
	infos, err := c.Codecs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	if strings.Join(names, ",") != strings.Join(tcomp.Codecs(), ",") {
		t.Fatalf("Codecs() = %v, want the registry %v", names, tcomp.Codecs())
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthy daemon reported %v", err)
	}
	s.StartDrain()
	if err := c.Health(ctx); err == nil {
		t.Fatal("draining daemon reported healthy")
	}
}

func TestClientErrors(t *testing.T) {
	_, c := newDaemon(t)
	ctx := context.Background()
	ts := clientSet(t, 3)
	var in, out bytes.Buffer
	if err := ts.Write(&in); err != nil {
		t.Fatal(err)
	}
	_, err := c.Compress(ctx, "no-such-codec", &in, &out)
	if err == nil {
		t.Fatal("unknown codec accepted")
	}
	if !strings.Contains(err.Error(), "no-such-codec") || !strings.Contains(err.Error(), "400") {
		t.Fatalf("daemon error not surfaced: %v", err)
	}
	if err := c.Decompress(ctx, strings.NewReader("garbage"), &out); err == nil {
		t.Fatal("garbage container accepted")
	}
	// An unreachable daemon fails with a transport error, not a hang.
	dead := tcomp.NewClient("http://127.0.0.1:1")
	if err := dead.Health(ctx); err == nil {
		t.Fatal("unreachable daemon reported healthy")
	}
}

// TestClientCallTimeout: a daemon that accepts the connection but never
// answers must fail the control-plane probes within CallTimeout, even
// when the caller's context carries no deadline of its own.
func TestClientCallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() // never Accept: connections sit in the backlog unanswered
	c := tcomp.NewClient("http://" + ln.Addr().String())
	c.CallTimeout = 50 * time.Millisecond
	ctx := context.Background()

	start := time.Now()
	if err := c.Health(ctx); err == nil {
		t.Fatal("wedged daemon reported healthy")
	}
	if _, err := c.Codecs(ctx); err == nil {
		t.Fatal("wedged daemon listed codecs")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("probes took %v; CallTimeout did not bound them", elapsed)
	}
}
