package tcomp

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/fdr"
	"repro/internal/golomb"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// The run-length-family coders (Golomb, FDR, fixed-block run-length)
// zero-fill the don't-cares and encode 0-runs; decompression therefore
// reconstructs the zero-filled string, which preserves every specified
// bit of the original. Their parameter blobs are scalars:
//
//	golomb: M  uint32   (1..maxGolombM)
//	rl:     b  uint8    counter width (1..30)
//	fdr:    —  (empty; the code is parameter-free)

const maxGolombM = 1 << 20

// flatToSet splits a decoded flat string into the artifact's pattern
// shape.
func flatToSet(flat tritvec.Vector, a *Artifact) (*TestSet, error) {
	return testset.FromFlat(flat, a.Width)
}

type golombCodec struct{}

func (golombCodec) Name() string { return "golomb" }

func (golombCodec) Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error) {
	o := buildOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var res *golomb.Result
	var err error
	if o.golombM > 0 {
		res, err = golomb.Compress(ts, o.golombM)
	} else {
		res, err = golomb.CompressBest(ts)
	}
	if err != nil {
		return nil, err
	}
	if res.M > maxGolombM {
		return nil, fmt.Errorf("tcomp: golomb M %d exceeds format limit %d", res.M, maxGolombM)
	}
	params := make([]byte, 4)
	binary.BigEndian.PutUint32(params, uint32(res.M))
	return &Artifact{
		Codec:          "golomb",
		Width:          ts.Width,
		Patterns:       ts.NumPatterns(),
		OriginalBits:   res.OriginalBits,
		CompressedBits: res.CompressedBits,
		Params:         params,
		Payload:        res.Stream.Bytes(),
		NBits:          res.Stream.Len(),
		Extra:          res,
	}, nil
}

func (golombCodec) Decompress(a *Artifact) (*TestSet, error) {
	if len(a.Params) != 4 {
		return nil, fmt.Errorf("tcomp: golomb params are %d bytes, want 4", len(a.Params))
	}
	m := int(binary.BigEndian.Uint32(a.Params))
	if m < 1 || m > maxGolombM {
		return nil, fmt.Errorf("tcomp: golomb M %d out of range [1,%d]", m, maxGolombM)
	}
	flat, err := golomb.Decompress(a.Source(), m, a.Width*a.Patterns)
	if err != nil {
		return nil, err
	}
	return flatToSet(flat, a)
}

type fdrCodec struct{}

func (fdrCodec) Name() string { return "fdr" }

func (fdrCodec) Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := fdr.Compress(ts)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Codec:          "fdr",
		Width:          ts.Width,
		Patterns:       ts.NumPatterns(),
		OriginalBits:   res.OriginalBits,
		CompressedBits: res.CompressedBits,
		Payload:        res.Stream.Bytes(),
		NBits:          res.Stream.Len(),
		Extra:          res,
	}, nil
}

func (fdrCodec) Decompress(a *Artifact) (*TestSet, error) {
	if len(a.Params) != 0 {
		return nil, fmt.Errorf("tcomp: fdr expects an empty parameter blob, got %d bytes", len(a.Params))
	}
	flat, err := fdr.Decompress(a.Source(), a.Width*a.Patterns)
	if err != nil {
		return nil, err
	}
	return flatToSet(flat, a)
}

type rlCodec struct{}

func (rlCodec) Name() string { return "rl" }

func (rlCodec) Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error) {
	o := buildOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := o.counterW
	if b == 0 {
		b = 4
	}
	res, err := runlength.Compress(ts, b)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Codec:          "rl",
		Width:          ts.Width,
		Patterns:       ts.NumPatterns(),
		OriginalBits:   res.OriginalBits,
		CompressedBits: res.CompressedBits,
		Params:         []byte{byte(b)},
		Payload:        res.Stream.Bytes(),
		NBits:          res.Stream.Len(),
		Extra:          res,
	}, nil
}

func (rlCodec) Decompress(a *Artifact) (*TestSet, error) {
	if len(a.Params) != 1 {
		return nil, fmt.Errorf("tcomp: rl params are %d bytes, want 1", len(a.Params))
	}
	b := int(a.Params[0])
	if b < runlength.MinCounterWidth || b > runlength.MaxCounterWidth {
		return nil, fmt.Errorf("tcomp: rl counter width %d out of range [%d,%d]",
			b, runlength.MinCounterWidth, runlength.MaxCounterWidth)
	}
	flat, err := runlength.Decompress(a.Source(), b, a.Width*a.Patterns)
	if err != nil {
		return nil, err
	}
	return flatToSet(flat, a)
}

func init() {
	Register(golombCodec{})
	Register(fdrCodec{})
	Register(rlCodec{})
}
