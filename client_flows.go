package tcomp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// FlowRequest describes a flow submission to POST /v1/flows: which
// circuit to run the hardware-test pipeline on, and how.
type FlowRequest struct {
	// Benchmark names a registry circuit (see Client.Benchmarks) for the
	// daemon to generate. When set, Netlist must be nil.
	Benchmark string
	// Netlist is a .bench netlist body for a caller-supplied circuit.
	// Required when Benchmark is empty.
	Netlist io.Reader
	// Tests selects the generation kind: FlowStuckAt (the default when
	// empty) or FlowPathDelay.
	Tests string
	// Sample caps the race prefix: how many patterns each codec sees
	// before the winner runs on the full set. 0 keeps the daemon default.
	Sample int
	// Codecs restricts the race entrants. Empty races every codec.
	Codecs []string
	// Options carries the compression parameters (seed, workers, codec
	// tuning) shared with the synchronous endpoints.
	Options []Option
}

// FlowReport is the JSON report of a finished flow — the /result body.
// It mirrors FlowResult plus the list of fetchable binary artifacts.
type FlowReport struct {
	FlowResult
	Artifacts []JobArtifact `json:"artifacts"`
}

// SubmitFlow queues a hardware-test flow on the daemon and returns the
// accepted job record (202). The flow runs circuit → ATPG → codec race
// → container + Verilog decoder asynchronously; poll with WaitJob and
// fetch the outputs with FlowReport and FlowArtifact. A rejected
// circuit maps onto ErrInvalidCircuit.
func (c *Client) SubmitFlow(ctx context.Context, req FlowRequest) (*JobStatus, error) {
	q := optionValues(req.Options)
	if req.Benchmark != "" {
		q.Set("benchmark", req.Benchmark)
	}
	if req.Tests != "" {
		q.Set("tests", req.Tests)
	}
	if req.Sample > 0 {
		q.Set("sample", strconv.Itoa(req.Sample))
	}
	if len(req.Codecs) > 0 {
		q.Set("codecs", strings.Join(req.Codecs, ","))
	}
	body := req.Netlist
	if body == nil {
		if req.Benchmark == "" {
			return nil, fmt.Errorf("tcomp: flow needs a Benchmark name or a Netlist body")
		}
		body = strings.NewReader("")
	}
	return c.submitAsync(ctx, "/v1/flows", q, body, "text/plain")
}

// Flows lists the daemon's flow jobs, newest last.
func (c *Client) Flows(ctx context.Context) ([]JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/flows", nil)
	if err != nil {
		return nil, err
	}
	injectTraceparent(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("tcomp: decoding flow list: %w", err)
	}
	return out, nil
}

// FlowReport fetches and decodes the JSON report of a done flow.
// ErrJobNotFound / ErrJobNotDone classify the usual failure modes.
func (c *Client) FlowReport(ctx context.Context, id string) (*FlowReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/flows/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	injectTraceparent(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var rep FlowReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("tcomp: decoding flow report: %w", err)
	}
	return &rep, nil
}

// FlowArtifact streams one named binary artifact of a done flow into w:
// "container" (the winner's v3 container) or "verilog" (the
// synthesizable decoder). Returns the byte count written.
func (c *Client) FlowArtifact(ctx context.Context, id, name string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/flows/"+url.PathEscape(id)+"/artifacts/"+url.PathEscape(name), nil)
	if err != nil {
		return 0, err
	}
	injectTraceparent(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}
	return io.Copy(w, resp.Body)
}

// Benchmarks fetches the daemon's ISCAS-style benchmark registry — the
// valid FlowRequest.Benchmark values and their paper-table shapes.
func (c *Client) Benchmarks(ctx context.Context) ([]Benchmark, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/benchmarks", nil)
	if err != nil {
		return nil, err
	}
	injectTraceparent(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var out []Benchmark
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("tcomp: decoding benchmark registry: %w", err)
	}
	return out, nil
}
