package tcomp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/container"
	"repro/internal/decoder"
	"repro/internal/delay"
	"repro/internal/iscasgen"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// The test flow is the paper's actual use case promoted to a public
// API: take a circuit, generate test patterns for it (stuck-at PODEM
// ATPG or robust path-delay two-pattern tests), let a codec advisor
// race every registered scheme on a sampled prefix, compress the full
// set with the winner into a v3 chunked container, and synthesize the
// matching on-chip decoder as Verilog. Every stage is deterministic in
// the flow seed — per-stage seeds derive from it through the pipeline
// engine's splitmix64 derivation, so a flow re-run (at any worker
// count) reproduces identical artifacts bit for bit.
//
//	flow := tcomp.NewTestFlow(tcomp.FlowSeed(7))
//	c, _ := flow.GenerateCircuit(ctx, "s510")
//	res, _ := flow.Run(ctx, c)
//	os.WriteFile("s510.tc", res.Container, 0o644)
//	os.WriteFile("s510_decoder.v", res.Verilog, 0o644)

// Circuit is a combinational ISCAS-style netlist (DFFs extracted into
// pseudo inputs/outputs), the input of a test flow.
type Circuit = circuit.Circuit

// ErrInvalidCircuit is wrapped by flow circuit constructors when a
// netlist is malformed or exceeds the flow size caps. The daemon maps
// it onto the 422 "flow_invalid_circuit" taxonomy code.
var ErrInvalidCircuit = errors.New("tcomp: invalid circuit")

// Flow circuit caps. Submitted netlists are bounds-checked like the
// container readers: a few text lines must never expand into
// allocations the daemon cannot afford, and ATPG cost grows steeply
// with circuit size.
const (
	// FlowMaxSignals caps total signals (inputs + gates) of a submitted
	// circuit.
	FlowMaxSignals = 20000
	// FlowMaxInputs caps primary inputs — the width of every generated
	// pattern.
	FlowMaxInputs = 4096
	// FlowMaxFanin caps a single gate's fanin list.
	FlowMaxFanin = 64
)

// Flow test-generation kinds, the values FlowTests accepts.
const (
	FlowStuckAt   = "stuck-at"
	FlowPathDelay = "path-delay"
)

// Deterministic per-stage seed indices: each flow stage draws its seed
// as pipeline.Seed(flowSeed, stage), so stages are independently seeded
// but all reproducible from the one root.
const (
	flowStageCircuit = iota
	flowStageATPG
	flowStageRace
	flowStageCompress
	flowStageDecoder
)

// flowOptions collects every knob of a test flow.
type flowOptions struct {
	seed     int64
	workers  int
	codecs   []string
	tests    string
	sample   int
	maxBT    int
	maxPaths int
	codecOpt []Option
	observe  func(stage string, seconds float64)
}

// FlowOption configures a TestFlow.
type FlowOption func(*flowOptions)

// FlowSeed sets the flow root seed (default 1); every stage seed
// derives from it deterministically.
func FlowSeed(seed int64) FlowOption { return func(o *flowOptions) { o.seed = seed } }

// FlowWorkers bounds the flow's parallelism (0 = one worker per CPU,
// 1 = serial; artifacts are byte-identical at any setting).
func FlowWorkers(n int) FlowOption { return func(o *flowOptions) { o.workers = n } }

// FlowCodecs restricts the advisor race to the named codecs (default:
// every registered codec).
func FlowCodecs(names ...string) FlowOption {
	return func(o *flowOptions) { o.codecs = append([]string(nil), names...) }
}

// FlowTests selects the test-generation kind: FlowStuckAt (default,
// PODEM ATPG over the collapsed stuck-at fault list) or FlowPathDelay
// (robust two-pattern tests).
func FlowTests(kind string) FlowOption { return func(o *flowOptions) { o.tests = kind } }

// FlowSamplePatterns sets how many patterns of the generated set the
// advisor races the codecs on (default 128; 0 or more than the set
// races the full set).
func FlowSamplePatterns(n int) FlowOption { return func(o *flowOptions) { o.sample = n } }

// FlowMaxBacktracks bounds the per-fault (or per-path) search budget of
// the test generators (default 2000).
func FlowMaxBacktracks(n int) FlowOption { return func(o *flowOptions) { o.maxBT = n } }

// FlowMaxPaths bounds path enumeration in path-delay mode (default
// 400).
func FlowMaxPaths(n int) FlowOption { return func(o *flowOptions) { o.maxPaths = n } }

// FlowCodecOptions forwards compression options (WithBlockLen,
// WithRuns, ...) to every codec the flow runs. Seed and worker options
// are overridden by the flow's own derived seeds and FlowWorkers.
func FlowCodecOptions(opts ...Option) FlowOption {
	return func(o *flowOptions) { o.codecOpt = append(o.codecOpt, opts...) }
}

// FlowStageObserver installs a callback invoked once per completed flow
// stage with its wall-clock duration — the hook tcompd uses to feed the
// tcompd_flow_stage_seconds histogram.
func FlowStageObserver(fn func(stage string, seconds float64)) FlowOption {
	return func(o *flowOptions) { o.observe = fn }
}

// TestFlow runs the circuit → ATPG → codec race → container + Verilog
// decoder pipeline. The zero value is not usable; construct with
// NewTestFlow. A TestFlow is stateless and safe for concurrent use.
type TestFlow struct {
	o flowOptions
}

// NewTestFlow returns a flow configured by opts.
func NewTestFlow(opts ...FlowOption) *TestFlow {
	o := flowOptions{seed: 1, tests: FlowStuckAt, sample: 128, maxPaths: 400}
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return &TestFlow{o: o}
}

// stageSeed derives the deterministic seed of one flow stage.
func (f *TestFlow) stageSeed(stage int) int64 { return pipeline.Seed(f.o.seed, stage) }

// stage times one flow stage and reports it to the observer.
func (f *TestFlow) stage(name string, start time.Time, secs map[string]float64) {
	d := time.Since(start).Seconds()
	if secs != nil {
		secs[name] = d
	}
	if f.o.observe != nil {
		f.o.observe(name, d)
	}
}

// GenerateCircuit builds a deterministic ISCAS-style circuit for a
// registry benchmark (see Benchmarks): a seeded random netlist whose
// input count matches the paper row, capped so ATPG stays tractable.
// The same (benchmark, FlowSeed) always yields the same netlist.
func (f *TestFlow) GenerateCircuit(ctx context.Context, benchmark string) (*Circuit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind := iscasgen.StuckAt
	if f.o.tests == FlowPathDelay {
		kind = iscasgen.PathDelay
	}
	m, err := iscasgen.Find(benchmark, kind)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidCircuit, err)
	}
	inputs := m.Width
	if inputs > 64 {
		inputs = 64 // keep PODEM tractable; the registry row only sizes the shape
	}
	// Stuck-at flows get denser fanin-3 netlists; path-delay flows get
	// shallow fanin-2 ones — deep reconvergent circuits rarely satisfy
	// the strict robust steady-side-input condition, so they would
	// generate near-empty test sets.
	gates, fanin := 4*inputs, 3
	if kind == iscasgen.PathDelay {
		gates, fanin = 3*inputs, 2
	}
	if gates < 40 {
		gates = 40
	}
	outputs := inputs / 3
	if outputs < 2 {
		outputs = 2
	}
	h := fnv.New64a()
	h.Write([]byte(benchmark))
	seed := pipeline.Seed(f.o.seed^int64(h.Sum64()), flowStageCircuit)
	return circuit.Random(benchmark, circuit.RandomOptions{
		Inputs: inputs, Gates: gates, Outputs: outputs, MaxFanin: fanin, Seed: seed,
	})
}

// ParseCircuit parses a .bench netlist under the flow size caps.
// Malformed or oversized netlists answer an error wrapping
// ErrInvalidCircuit.
func (f *TestFlow) ParseCircuit(name string, r io.Reader) (*Circuit, error) {
	c, err := circuit.ParseBenchLimited(name, r, circuit.BenchLimits{
		MaxSignals: FlowMaxSignals,
		MaxInputs:  FlowMaxInputs,
		MaxFanin:   FlowMaxFanin,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidCircuit, err)
	}
	return c, nil
}

// FlowTestsResult is the outcome of the flow's test-generation stage.
type FlowTestsResult struct {
	// Set holds the generated patterns (two-pattern tests flattened
	// v1, v2, v1, v2, ... in path-delay mode).
	Set *TestSet `json:"-"`
	// Kind is FlowStuckAt or FlowPathDelay.
	Kind     string `json:"kind"`
	Patterns int    `json:"patterns"`
	// Targets counts the faults (stuck-at) or path×direction tests
	// (path-delay) attempted; Detected of them have tests.
	Targets    int `json:"targets"`
	Detected   int `json:"detected"`
	Untestable int `json:"untestable"`
	Aborted    int `json:"aborted"`
	// CoveragePercent is 100·Detected/Targets — the value exported on
	// tcompd_flow_coverage_percent.
	CoveragePercent float64 `json:"coverage_percent"`
}

// RunATPG generates the flow's test set for c: PODEM stuck-at ATPG with
// don't-care maximization, or robust path-delay two-pattern tests when
// the flow was built with FlowTests(FlowPathDelay). The span "atpg"
// covers the stage on the caller's trace.
func (f *TestFlow) RunATPG(ctx context.Context, c *Circuit) (*FlowTestsResult, error) {
	ctx, sp := obs.StartSpan(ctx, "atpg")
	defer sp.End()
	start := time.Now()
	defer f.stage("atpg", start, nil)

	out := &FlowTestsResult{Kind: f.o.tests}
	switch f.o.tests {
	case FlowStuckAt, "":
		opt := atpg.DefaultOptions()
		opt.Seed = f.stageSeed(flowStageATPG)
		if f.o.maxBT > 0 {
			opt.MaxBacktracks = f.o.maxBT
		}
		res, err := atpg.GenerateCtx(ctx, c, opt)
		if err != nil {
			sp.SetError(err)
			return nil, err
		}
		out.Set = res.Tests
		out.Targets = res.Faults
		out.Detected = res.Detected
		out.Untestable = res.Untestable
		out.Aborted = res.Aborted
		out.Kind = FlowStuckAt
	case FlowPathDelay:
		opt := delay.DefaultOptions()
		opt.Seed = f.stageSeed(flowStageATPG)
		opt.MaxPaths = f.o.maxPaths
		if f.o.maxBT > 0 {
			opt.MaxBacktracks = f.o.maxBT
		}
		res, err := delay.Generate(c, opt)
		if err != nil {
			sp.SetError(err)
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			sp.SetError(err)
			return nil, err
		}
		out.Set = res.Tests
		out.Targets = res.Paths
		out.Detected = res.Robust
		out.Untestable = res.Untestable
	default:
		err := fmt.Errorf("tcomp: unknown flow test kind %q", f.o.tests)
		sp.SetError(err)
		return nil, err
	}
	out.Patterns = out.Set.NumPatterns()
	if out.Targets > 0 {
		out.CoveragePercent = 100 * float64(out.Detected) / float64(out.Targets)
	}
	if out.Patterns == 0 {
		err := fmt.Errorf("tcomp: test generation produced no patterns (%d targets, %d aborted)",
			out.Targets, out.Aborted)
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttrs(
		obs.String("kind", out.Kind),
		obs.Int("patterns", int64(out.Patterns)),
		obs.Int("targets", int64(out.Targets)),
	)
	return out, nil
}

// FlowCodecRate is one advisor race entry: a codec's size accounting on
// the sampled prefix.
type FlowCodecRate struct {
	Codec          string  `json:"codec"`
	OriginalBits   int     `json:"original_bits"`
	CompressedBits int     `json:"compressed_bits"`
	RatePercent    float64 `json:"rate_percent"`
	// Err records a codec that failed on the sample (it is excluded from
	// the winner choice but kept in the report).
	Err string `json:"error,omitempty"`
}

// FlowRace is the advisor's verdict: every raced codec's rate on the
// sample prefix, the overall winner (lowest compressed size; ties go to
// the alphabetically first codec), and the best block-family codec —
// the one whose MV set and prefix code the on-chip decoder is
// synthesized from.
type FlowRace struct {
	// SamplePatterns is the prefix length the codecs raced on.
	SamplePatterns int             `json:"sample_patterns"`
	Entries        []FlowCodecRate `json:"entries"`
	Winner         string          `json:"winner"`
	// BlockWinner is the best of the block codecs (ea, 9c, 9chc) in the
	// race — the decoder source. Defaults to "9c" when the race was
	// restricted to non-block codecs.
	BlockWinner string `json:"block_winner"`
}

// flowBlockCodecs is the block family: codecs whose parameter blob
// decodes to an (MV set, prefix code) pair the hardware decoder model
// understands.
var flowBlockCodecs = map[string]bool{"ea": true, "9c": true, "9chc": true}

// RaceCodecs runs the codec advisor: every selected codec compresses
// the same sampled prefix of ts (in parallel on the pipeline engine,
// bounded by the shared limiter, one deterministic seed per codec), and
// the lowest compressed size wins. One span "race <codec>" per codec
// covers the stage on the caller's trace.
func (f *TestFlow) RaceCodecs(ctx context.Context, ts *TestSet) (*FlowRace, error) {
	start := time.Now()
	defer f.stage("race", start, nil)

	names := f.o.codecs
	if len(names) == 0 {
		names = Codecs()
	}
	sample := ts
	n := f.o.sample
	if n > 0 && n < ts.NumPatterns() {
		sample = NewTestSet(ts.Width)
		for _, p := range ts.Patterns[:n] {
			sample.Add(p)
		}
	}
	race := &FlowRace{SamplePatterns: sample.NumPatterns()}

	// One job per codec; the Ordered sink collects entries in submit
	// order, so the report (and the tie-break below) is independent of
	// the worker count.
	ord := pipeline.NewOrdered(ctx, pipeline.Config{
		Workers:  f.o.workers,
		RootSeed: f.stageSeed(flowStageRace),
	}, func(res pipeline.Result[FlowCodecRate]) error {
		if res.Err != nil {
			return res.Err
		}
		race.Entries = append(race.Entries, res.Value)
		return nil
	})
	for _, name := range names {
		name := name
		err := ord.Submit("race "+name, func(ctx context.Context, seed int64) (FlowCodecRate, error) {
			entry := FlowCodecRate{Codec: name}
			codec, err := Lookup(name)
			if err != nil {
				return entry, err // unknown codec: fail the race, not just the entry
			}
			ctx, sp := obs.StartSpan(ctx, "race "+name)
			defer sp.End()
			opts := append(append([]Option(nil), f.o.codecOpt...), WithWorkers(1), WithSeed(seed))
			art, err := codec.Compress(ctx, sample, opts...)
			if err != nil {
				// A codec that cannot handle the sample loses the race but
				// does not abort it — unless the flow itself is cancelled.
				sp.SetError(err)
				if ctx.Err() != nil {
					return entry, ctx.Err()
				}
				entry.Err = err.Error()
				return entry, nil
			}
			entry.OriginalBits = art.OriginalBits
			entry.CompressedBits = art.CompressedBits
			entry.RatePercent = art.RatePercent()
			sp.SetAttrs(obs.Int("compressed_bits", int64(art.CompressedBits)))
			return entry, nil
		})
		if err != nil {
			ord.Close()
			return nil, err
		}
	}
	if err := ord.Close(); err != nil {
		return nil, err
	}

	bestBits, blockBits := -1, -1
	for _, e := range race.Entries {
		if e.Err != "" {
			continue
		}
		if bestBits < 0 || e.CompressedBits < bestBits {
			bestBits, race.Winner = e.CompressedBits, e.Codec
		}
		if flowBlockCodecs[e.Codec] && (blockBits < 0 || e.CompressedBits < blockBits) {
			blockBits, race.BlockWinner = e.CompressedBits, e.Codec
		}
	}
	if race.Winner == "" {
		return nil, fmt.Errorf("tcomp: every codec failed the advisor race")
	}
	if race.BlockWinner == "" {
		race.BlockWinner = "9c"
	}
	return race, nil
}

// FlowDecoder describes the synthesized Verilog decoder.
type FlowDecoder struct {
	// Codec is the block codec whose full-set compression the decoder
	// was synthesized from (the race's BlockWinner).
	Codec  string `json:"codec"`
	Module string `json:"module"`
	// K is the decoder's block length; States / MVTableBits /
	// GateEquivalents are the first-order hardware cost model.
	K               int     `json:"k"`
	States          int     `json:"states"`
	MVTableBits     int     `json:"mv_table_bits"`
	GateEquivalents float64 `json:"gate_equivalents"`
	// RatePercent is the block artifact's own whole-set compression rate
	// (it can differ from the winner container's rate).
	RatePercent float64 `json:"rate_percent"`
}

// EmitDecoder synthesizes the on-chip decoder for a block-codec
// artifact (ea, 9c, 9chc — anything whose Params decode to an MV set
// and prefix code) and writes it as a synthesizable Verilog module. The
// span "emit-verilog" covers the stage on the caller's trace.
func (f *TestFlow) EmitDecoder(ctx context.Context, a *Artifact, w io.Writer, module string) (*FlowDecoder, error) {
	_, sp := obs.StartSpan(ctx, "emit-verilog")
	defer sp.End()
	start := time.Now()
	defer f.stage("emit-verilog", start, nil)

	set, code, err := container.DecodeBlockParams(a.Params)
	if err != nil {
		err = fmt.Errorf("tcomp: artifact of codec %q has no decodable MV table: %w", a.Codec, err)
		sp.SetError(err)
		return nil, err
	}
	fsm, err := decoder.New(set, code)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	if err := fsm.WriteVerilog(w, module); err != nil {
		sp.SetError(err)
		return nil, err
	}
	area := fsm.Area()
	info := &FlowDecoder{
		Codec:           a.Codec,
		Module:          module,
		K:               set.K,
		States:          area.States,
		MVTableBits:     area.MVTableBits,
		GateEquivalents: area.GateEquivalents,
		RatePercent:     a.RatePercent(),
	}
	sp.SetAttrs(obs.String("module", module), obs.Int("states", int64(area.States)))
	return info, nil
}

// FlowContainer is the size accounting of the flow's winner container.
type FlowContainer struct {
	Codec          string  `json:"codec"`
	Format         string  `json:"format"` // always "v3"
	Chunks         int     `json:"chunks"`
	Patterns       int     `json:"patterns"`
	OriginalBits   int     `json:"original_bits"`
	CompressedBits int     `json:"compressed_bits"`
	RatePercent    float64 `json:"rate_percent"`
}

// FlowResult is the complete product of TestFlow.Run: the report
// (everything JSON-tagged) plus the two binary artifacts.
type FlowResult struct {
	CircuitName    string `json:"circuit"`
	CircuitInputs  int    `json:"circuit_inputs"`
	CircuitGates   int    `json:"circuit_gates"`
	CircuitOutputs int    `json:"circuit_outputs"`

	Tests     *FlowTestsResult `json:"tests"`
	Race      *FlowRace        `json:"race"`
	Container FlowContainer    `json:"container"`
	Decoder   *FlowDecoder     `json:"decoder"`

	// Verified records that both artifacts round-tripped losslessly
	// in-process before being returned: the container decompressed back
	// to a set compatible with the generated patterns, and the decoder
	// FSM's source artifact did too.
	Verified bool `json:"verified"`

	// StageSeconds is the wall-clock per stage (atpg, race, compress,
	// emit-verilog).
	StageSeconds map[string]float64 `json:"stage_seconds"`

	// ContainerBytes is the v3 chunked container of the winner codec;
	// VerilogBytes the synthesizable decoder module. Stored as separate
	// content-addressed artifacts by the daemon, hence excluded from the
	// report JSON.
	ContainerBytes []byte `json:"-"`
	VerilogBytes   []byte `json:"-"`
}

// Run executes the full flow on c: test generation, the advisor race,
// full-set compression with the winner into a v3 container, and decoder
// synthesis from the best block codec. Both artifacts are verified
// losslessly before Run returns. The result is byte-identical for a
// given (circuit, flow options) at any worker count.
func (f *TestFlow) Run(ctx context.Context, c *Circuit) (*FlowResult, error) {
	secs := make(map[string]float64)
	res := &FlowResult{
		CircuitName:    c.Name,
		CircuitInputs:  len(c.Inputs),
		CircuitGates:   c.NumGates(),
		CircuitOutputs: len(c.Outputs),
		StageSeconds:   secs,
	}

	// Each stage method reports its duration to the observer hook; Run
	// additionally wants the numbers in the report, so it times the
	// calls itself.
	start := time.Now()
	tests, err := f.RunATPG(ctx, c)
	if err != nil {
		return nil, err
	}
	res.Tests = tests
	secs["atpg"] = time.Since(start).Seconds()

	start = time.Now()
	race, err := f.RaceCodecs(ctx, tests.Set)
	if err != nil {
		return nil, err
	}
	res.Race = race
	secs["race"] = time.Since(start).Seconds()

	// Full-set compression with the winner, as a v3 chunked container.
	start = time.Now()
	var buf bytes.Buffer
	opts := append(append([]Option(nil), f.o.codecOpt...),
		WithWorkers(f.o.workers), WithSeed(f.stageSeed(flowStageCompress)))
	sw, err := NewStreamWriter(ctx, &buf, race.Winner, tests.Set.Width, opts...)
	if err != nil {
		return nil, err
	}
	if err := sw.WriteSet(tests.Set); err != nil {
		sw.Close()
		return nil, err
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	res.Container = FlowContainer{
		Codec:          race.Winner,
		Format:         "v3",
		Chunks:         sw.Chunks(),
		Patterns:       sw.Patterns(),
		OriginalBits:   sw.OriginalBits(),
		CompressedBits: sw.CompressedBits(),
		RatePercent:    sw.RatePercent(),
	}
	res.ContainerBytes = buf.Bytes()
	f.stage("compress", start, secs)

	// Verify the container round-trips losslessly before anyone stores
	// it.
	sr, err := NewStreamReader(bytes.NewReader(res.ContainerBytes))
	if err != nil {
		return nil, fmt.Errorf("tcomp: flow container verification: %w", err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tcomp: flow container verification: %w", err)
	}
	if !VerifyLossless(tests.Set, dec) {
		return nil, fmt.Errorf("tcomp: flow container lost specified bits (codec %s)", race.Winner)
	}

	// Decoder synthesis from the best block codec's whole-set artifact.
	// The stage timing includes the decoder-source compression: it is
	// what the emit step costs beyond the winner container.
	start = time.Now()
	blockCodec, err := Lookup(race.BlockWinner)
	if err != nil {
		return nil, err
	}
	blockOpts := append(append([]Option(nil), f.o.codecOpt...),
		WithWorkers(f.o.workers), WithSeed(f.stageSeed(flowStageDecoder)))
	blockArt, err := blockCodec.Compress(ctx, tests.Set, blockOpts...)
	if err != nil {
		return nil, fmt.Errorf("tcomp: decoder-source compression (%s): %w", race.BlockWinner, err)
	}
	blockDec, err := Decompress(blockArt)
	if err != nil {
		return nil, fmt.Errorf("tcomp: decoder-source verification: %w", err)
	}
	if !VerifyLossless(tests.Set, blockDec) {
		return nil, fmt.Errorf("tcomp: decoder-source artifact lost specified bits (codec %s)", race.BlockWinner)
	}
	var vbuf bytes.Buffer
	info, err := f.EmitDecoder(ctx, blockArt, &vbuf, FlowDecoderModule)
	if err != nil {
		return nil, err
	}
	res.Decoder = info
	secs["emit-verilog"] = time.Since(start).Seconds()
	res.VerilogBytes = vbuf.Bytes()
	res.Verified = true
	return res, nil
}

// FlowDecoderModule is the Verilog module name of flow-emitted
// decoders; the CI structural check greps for it.
const FlowDecoderModule = "tcomp_flow_decoder"

// Benchmark is one row of the ISCAS-style registry as served by
// GET /v1/benchmarks: the circuit name and kind, the paper's test-set
// dimensions, and its published compression rates (percent).
type Benchmark struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`
	Width    int    `json:"width"`
	Bits     int    `json:"bits"`
	Patterns int    `json:"patterns"`
	// Published rates: Paper9C/Paper9CHC are the baselines; PaperEA and
	// PaperEA2 the paper's EA columns (Table 1: EA / EA-Best; Table 2:
	// EA1 / EA2).
	Paper9C   float64 `json:"paper_9c"`
	Paper9CHC float64 `json:"paper_9chc"`
	PaperEA   float64 `json:"paper_ea"`
	PaperEA2  float64 `json:"paper_ea2"`
}

// FindBenchmark validates that name is a registry benchmark of the
// given test kind ("" means stuck-at). The error wraps
// ErrInvalidCircuit, so daemons classify an unknown benchmark exactly
// like a malformed netlist.
func FindBenchmark(name, kind string) error {
	k := iscasgen.StuckAt
	if kind == FlowPathDelay {
		k = iscasgen.PathDelay
	}
	if _, err := iscasgen.Find(name, k); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidCircuit, err)
	}
	return nil
}

// Benchmarks lists the paper's experiment registry — Table 1 (stuck-at)
// followed by Table 2 (path-delay). Any Name is a valid flow benchmark
// (the flow generates a matching-width circuit for it).
func Benchmarks() []Benchmark {
	var out []Benchmark
	for _, m := range append(iscasgen.Table1(), iscasgen.Table2()...) {
		out = append(out, Benchmark{
			Name:      m.Name,
			Kind:      m.Kind.String(),
			Width:     m.Width,
			Bits:      m.Bits,
			Patterns:  m.Patterns(),
			Paper9C:   m.Paper9C,
			Paper9CHC: m.Paper9CHC,
			PaperEA:   m.PaperEA,
			PaperEA2:  m.PaperEA2,
		})
	}
	return out
}
