package tcomp_test

// End-to-end distributed-tracing tests: a stub OTLP/HTTP collector
// receives the daemon's exported spans, and the assertions walk the
// span tree by trace ID across real client→daemon hops. This is the
// executable form of the tracing acceptance criteria: one remote
// compress yields a single tree from the client's traceparent down to
// the codec encode, and an async job keeps exporting under the
// submitting request's trace even after a daemon restart replays it
// from the journal.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	tcomp "repro"
	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/testset"
)

// collectedSpan is the slice of the OTLP JSON span shape the tree
// assertions need.
type collectedSpan struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
	Parent  string `json:"parentSpanId"`
	Name    string `json:"name"`
}

// traceCollector is an in-process stand-in for an OTLP/HTTP collector:
// it decodes every POSTed ExportTraceServiceRequest and accumulates the
// spans for inspection.
type traceCollector struct {
	srv   *httptest.Server
	mu    sync.Mutex
	spans []collectedSpan
}

func newTraceCollector(t *testing.T) *traceCollector {
	t.Helper()
	c := &traceCollector{}
	c.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []collectedSpan `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				c.spans = append(c.spans, ss.Spans...)
			}
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(c.srv.Close)
	return c
}

// byTrace returns every collected span of one trace.
func (c *traceCollector) byTrace(traceID string) []collectedSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []collectedSpan
	for _, s := range c.spans {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// waitFor polls until pred is satisfied by the spans of traceID or the
// deadline passes (the exporter batches asynchronously, so spans arrive
// a flush interval after the work finishes).
func (c *traceCollector) waitFor(t *testing.T, traceID string, pred func([]collectedSpan) bool) []collectedSpan {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans := c.byTrace(traceID)
		if pred(spans) {
			return spans
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s: condition not met before deadline; collected spans: %+v", traceID, spans)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newTestTracer builds a tracer exporting to the stub collector with a
// flush interval short enough for test-scale polling.
func newTestTracer(c *traceCollector) *obs.Tracer {
	return obs.NewTracer(obs.NewOTLPExporter(obs.OTLPConfig{
		Endpoint:      c.srv.URL,
		FlushInterval: 10 * time.Millisecond,
	}), 1)
}

func patternsBuffer(t *testing.T, seed int64) *bytes.Buffer {
	t.Helper()
	ts := testset.Random(16, 25, 0.4, rand.New(rand.NewSource(seed)))
	var in bytes.Buffer
	if err := ts.Write(&in); err != nil {
		t.Fatal(err)
	}
	return &in
}

// spanByName returns the first span with the given name, or fails.
func spanByName(t *testing.T, spans []collectedSpan, name string) collectedSpan {
	t.Helper()
	for _, s := range spans {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no span named %q in %+v", name, spans)
	return collectedSpan{}
}

// chainToRoot walks parent links from a span up to the span whose
// parent is rootParent (the ID minted outside the daemon) and returns
// the names along the way, leaf first. It fails on a broken link.
func chainToRoot(t *testing.T, spans []collectedSpan, from collectedSpan, rootParent string) []string {
	t.Helper()
	byID := make(map[string]collectedSpan, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}
	names := []string{from.Name}
	cur := from
	for cur.Parent != rootParent {
		next, ok := byID[cur.Parent]
		if !ok {
			t.Fatalf("span %q has parent %s with no collected span (chain so far %v)", cur.Name, cur.Parent, names)
		}
		cur = next
		names = append(names, cur.Name)
		if len(names) > len(spans) {
			t.Fatalf("parent cycle walking from %q: %v", from.Name, names)
		}
	}
	return names
}

// TestTraceSyncCompressSpansFormTree is the synchronous acceptance hop:
// one remote compress under a caller-supplied traceparent must export a
// single tree — client span → serve handler root → pipeline worker →
// codec encode — all under the caller's trace ID.
func TestTraceSyncCompressSpansFormTree(t *testing.T) {
	collector := newTraceCollector(t)
	tracer := newTestTracer(collector)
	s, err := serve.New(serve.Config{Workers: 2, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	c := tcomp.NewClient(hs.URL)

	const (
		traceA     = "4bf92f3577b34da6a3ce929d0e0e4736"
		clientSpan = "00f067aa0ba902b7"
	)
	ctx, err := tcomp.WithTraceparent(context.Background(),
		"00-"+traceA+"-"+clientSpan+"-01")
	if err != nil {
		t.Fatal(err)
	}
	var cont bytes.Buffer
	if _, err := c.Compress(ctx, "golomb", patternsBuffer(t, 1), &cont); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tracer.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}

	spans := collector.byTrace(traceA)
	if len(spans) == 0 {
		t.Fatal("no spans exported for the request's trace")
	}
	root := spanByName(t, spans, "POST /v1/compress")
	if root.Parent != clientSpan {
		t.Fatalf("serve root span parent = %s, want the client's span %s", root.Parent, clientSpan)
	}
	// The codec-encode span must hang off the serve root through the
	// pipeline worker: compress golomb → chunk 0 → compress → root.
	leaf := spanByName(t, spans, "compress golomb")
	chain := chainToRoot(t, spans, leaf, clientSpan)
	want := []string{"compress golomb", "chunk 0", "compress", "POST /v1/compress"}
	if len(chain) != len(want) {
		t.Fatalf("span chain %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("span chain %v, want %v", chain, want)
		}
	}
	// Every span of the trace must link into the same tree (no orphans
	// pointing at span IDs that were never exported).
	for _, sp := range spans {
		chainToRoot(t, spans, sp, clientSpan)
	}
}

// TestTraceAsyncJobJoinsTraceAcrossRestart is the asynchronous
// acceptance hop: a job submitted under a traceparent exports its
// worker span under the submitting trace, and — because the trace
// context is journalled with the job record — a re-run after a daemon
// restart exports under the same trace ID, to a collector the original
// submitting process never knew about.
func TestTraceAsyncJobJoinsTraceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "jobs")
	newDurableDaemon := func(col *traceCollector) (*serve.Server, *httptest.Server, *tcomp.Client, *obs.Tracer) {
		store, err := artifact.NewDiskStore(filepath.Join(dir, "artifacts"))
		if err != nil {
			t.Fatal(err)
		}
		tracer := newTestTracer(col)
		s, err := serve.New(serve.Config{
			Workers:  2,
			JobStore: store,
			JobDir:   jobDir,
			Tracer:   tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		c := tcomp.NewClient(hs.URL)
		c.PollInterval = 10 * time.Millisecond
		return s, hs, c, tracer
	}

	const (
		traceB     = "0af7651916cd43dd8448eb211c80319c"
		clientSpan = "b7ad6b7169203331"
	)
	collector1 := newTraceCollector(t)
	s1, hs1, c1, tracer1 := newDurableDaemon(collector1)

	ctx, err := tcomp.WithTraceparent(context.Background(),
		"00-"+traceB+"-"+clientSpan+"-01")
	if err != nil {
		t.Fatal(err)
	}
	j, err := c1.SubmitCompressJob(ctx, "golomb", patternsBuffer(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceParent == "" {
		t.Fatal("submitted job record carries no traceparent")
	}
	waitCtx, cancelWait := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelWait()
	j, err = c1.WaitJob(waitCtx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobDone {
		t.Fatalf("job state %s (%s), want done", j.State, j.Error)
	}
	// The job's worker span must export under the submitting trace,
	// parented inside it (its direct parent is the submission request's
	// serve root span, which in turn is a child of the client span).
	spans := collector1.waitFor(t, traceB, func(spans []collectedSpan) bool {
		for _, s := range spans {
			if s.Name == "job compress" {
				return true
			}
		}
		return false
	})
	jobSpan := spanByName(t, spans, "job compress")
	submitRoot := spanByName(t, spans, "POST /v1/jobs")
	if jobSpan.Parent != submitRoot.SpanID {
		t.Fatalf("job span parent = %s, want the submit request's span %s", jobSpan.Parent, submitRoot.SpanID)
	}
	if submitRoot.Parent != clientSpan {
		t.Fatalf("submit root parent = %s, want the client's span %s", submitRoot.Parent, clientSpan)
	}

	// Stop the first daemon and rewrite the journalled record back to
	// pending — the restart-recovery shape of a job interrupted mid-run.
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	shCtx1, cancel1 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel1()
	if err := tracer1.Shutdown(shCtx1); err != nil {
		t.Fatal(err)
	}
	journalFile := filepath.Join(jobDir, j.ID+".json")
	raw, err := os.ReadFile(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec["traceparent"] == nil || rec["traceparent"] == "" {
		t.Fatal("journalled job record lost its traceparent")
	}
	rec["state"] = "pending"
	raw, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh daemon over the same store and journal re-runs the job; a
	// fresh collector proves the spans come from the journalled context,
	// not any in-memory leftovers.
	collector2 := newTraceCollector(t)
	s2, hs2, c2, tracer2 := newDurableDaemon(collector2)
	j2, err := c2.WaitJob(waitCtx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j2.State != tcomp.JobDone {
		t.Fatalf("re-run job state %s (%s), want done", j2.State, j2.Error)
	}
	respans := collector2.waitFor(t, traceB, func(spans []collectedSpan) bool {
		for _, s := range spans {
			if s.Name == "job compress" {
				return true
			}
		}
		return false
	})
	reJob := spanByName(t, respans, "job compress")
	if reJob.TraceID != traceB {
		t.Fatalf("re-run job trace = %s, want %s", reJob.TraceID, traceB)
	}
	if reJob.SpanID == jobSpan.SpanID {
		t.Fatal("re-run job span reused the original span ID; want a fresh span in the same trace")
	}

	hs2.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	shCtx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := tracer2.Shutdown(shCtx2); err != nil {
		t.Fatal(err)
	}
}
