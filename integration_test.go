package tcomp

// Integration tests across module boundaries: circuit → ATPG →
// compression → container → hardware decode → fault simulation, and the
// path-delay equivalent. These are the executable version of the paper's
// experimental flow.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/circuit"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/delay"
	"repro/internal/faults"
	"repro/internal/iscasgen"
	"repro/internal/multichain"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func smallEAParams(seed int64, k, l int) core.Params {
	p := core.DefaultParams(seed)
	p.K, p.L = k, l
	p.Runs = 2
	p.EA.MaxGenerations = 50
	p.EA.MaxNoImprove = 20
	return p
}

// TestStuckAtFlowPreservesCoverage is the Table 1 pipeline end to end on
// a real circuit: the decompressed (fully specified) patterns must
// detect every fault the original X-patterns detected.
func TestStuckAtFlowPreservesCoverage(t *testing.T) {
	c, err := circuit.Random("int16", circuit.RandomOptions{Inputs: 14, Gates: 90, Outputs: 6, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := atpg.Generate(c, atpg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := gen.Tests
	if ts.NumPatterns() == 0 {
		t.Fatal("ATPG produced no patterns")
	}

	res, err := core.Compress(ts, smallEAParams(31, 7, 16))
	if err != nil {
		t.Fatal(err)
	}
	blocks := blockcode.Partition(ts, 7)
	dec, err := blockcode.Decode(bitstream.FromWriter(res.Final.Stream),
		res.Final.Set, res.Final.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
	flat := tritvec.Concat(dec...).Slice(0, ts.TotalBits())
	decTS, err := testset.FromFlat(flat, ts.Width)
	if err != nil {
		t.Fatal(err)
	}
	// Every fault definitely detected by an original pattern must be
	// detected by the corresponding decompressed pattern (which is a
	// specialization of it).
	fl := faults.Collapse(c)
	for _, f := range fl {
		for pi, p := range ts.Patterns {
			if faults.DefinitelyDetects(c, p, f) {
				if !faults.DefinitelyDetects(c, decTS.Patterns[pi], f) {
					t.Fatalf("fault %s: pattern %d lost detection after decompression", f.Name(c), pi)
				}
				break
			}
		}
	}
}

// TestPathDelayFlowPreservesRobustness: decompressed two-pattern tests
// stay robust.
func TestPathDelayFlowPreservesRobustness(t *testing.T) {
	c := circuit.C17()
	gen, err := delay.Generate(c, delay.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := gen.Tests
	res, err := ninec.CompressHC(ts, 2) // tiny width: use K=2
	if err != nil {
		t.Fatal(err)
	}
	blocks := blockcode.Partition(ts, 2)
	dec, err := blockcode.Decode(bitstream.FromWriter(res.Stream), res.Set, res.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	flat := tritvec.Concat(dec...).Slice(0, ts.TotalBits())
	decTS, err := testset.FromFlat(flat, ts.Width)
	if err != nil {
		t.Fatal(err)
	}
	// Re-associate pairs with paths exactly as delay.Generate emitted
	// them and confirm each decompressed pair is still robust.
	paths := delay.EnumeratePaths(c, 1000)
	idx := 0
	verified := 0
	for _, path := range paths {
		for dir := 0; dir < 2; dir++ {
			if idx+1 >= ts.NumPatterns() {
				break
			}
			v1, v2 := ts.Patterns[idx], ts.Patterns[idx+1]
			if delay.VerifyRobust(c, path, v1, v2) != nil {
				continue
			}
			if err := delay.VerifyRobust(c, path, decTS.Patterns[idx], decTS.Patterns[idx+1]); err != nil {
				t.Fatalf("pair %d lost robustness: %v", idx/2, err)
			}
			verified++
			idx += 2
		}
	}
	if verified == 0 {
		t.Fatal("no pairs verified — pairing logic broken")
	}
}

// TestContainerThroughFSM exercises serialize → parse → hardware decode.
func TestContainerThroughFSM(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	ts := testset.Random(20, 60, 0.3, r)
	res, err := core.Compress(ts, smallEAParams(33, 10, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := container.Write(&buf, container.MethodEA, ts.Width, ts.NumPatterns(), res.Final); err != nil {
		t.Fatal(err)
	}
	cf, err := container.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := decoder.New(cf.Set, cf.Code)
	if err != nil {
		t.Fatal(err)
	}
	blocks, st, err := fsm.Run(cf.Reader(), cf.NumBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if st.InputBits != cf.NBits {
		t.Fatalf("FSM consumed %d of %d payload bits", st.InputBits, cf.NBits)
	}
	orig := blockcode.Partition(ts, cf.K)
	if err := blockcode.Verify(orig, blocks); err != nil {
		t.Fatal(err)
	}
}

// TestCalibratedRegistryOrdering runs the three methods on calibrated
// test sets of mixed sizes and confirms the paper's ordering per circuit
// family (averaged).
func TestCalibratedRegistryOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("registry ordering in -short mode")
	}
	var sum9c, sumhc, sumea float64
	names := []string{"s349", "s444", "s1494"}
	for _, name := range names {
		m, err := iscasgen.Find(name, iscasgen.StuckAt)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: 8000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		n, err := ninec.Compress(ts, 8)
		if err != nil {
			t.Fatal(err)
		}
		h, err := ninec.CompressHC(ts, 8)
		if err != nil {
			t.Fatal(err)
		}
		e, err := core.Compress(ts, smallEAParams(5, 12, 32))
		if err != nil {
			t.Fatal(err)
		}
		sum9c += n.RatePercent()
		sumhc += h.RatePercent()
		sumea += e.BestRate
	}
	if !(sum9c <= sumhc && sumhc < sumea) {
		t.Fatalf("ordering broken: 9C %.1f, 9C+HC %.1f, EA %.1f", sum9c, sumhc, sumea)
	}
}

// TestMultichainDecodePreservesTestSet: per-chain compression round-trips
// through decode and merge back to a compatible test set.
func TestMultichainDecodePreservesTestSet(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	ts := testset.Random(18, 40, 0.3, r)
	chains, err := multichain.Split(ts, 3, multichain.Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	decChains := make([]*testset.TestSet, len(chains))
	for i, ch := range chains {
		res, err := core.Compress(ch, smallEAParams(int64(40+i), 6, 8))
		if err != nil {
			t.Fatal(err)
		}
		blocks := blockcode.Partition(ch, 6)
		dec, err := blockcode.Decode(bitstream.FromWriter(res.Final.Stream),
			res.Final.Set, res.Final.Code, len(blocks))
		if err != nil {
			t.Fatal(err)
		}
		flat := tritvec.Concat(dec...).Slice(0, ch.TotalBits())
		decChains[i], err = testset.FromFlat(flat, ch.Width)
		if err != nil {
			t.Fatal(err)
		}
	}
	merged, err := multichain.Merge(decChains, ts.Width, multichain.Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Compatible(merged) {
		t.Fatal("multichain decode+merge lost specified bits")
	}
}

// TestBenchFileRoundTripThroughATPG: write a generated circuit to .bench,
// parse it back, and confirm ATPG produces identical test sets.
func TestBenchFileRoundTripThroughATPG(t *testing.T) {
	c1, err := circuit.Random("rt", circuit.RandomOptions{Inputs: 8, Gates: 40, Outputs: 4, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c1.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := circuit.ParseBench("rt2", &buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := atpg.Generate(c1, atpg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := atpg.Generate(c2, atpg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Detected != r2.Detected || r1.Tests.NumPatterns() != r2.Tests.NumPatterns() {
		t.Fatalf("bench round trip changed ATPG outcome: %d/%d vs %d/%d",
			r1.Detected, r1.Tests.NumPatterns(), r2.Detected, r2.Tests.NumPatterns())
	}
}
