package tcomp

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/container"
	"repro/internal/obs"
	"repro/internal/runlength"
)

// Codec is the uniform interface every compression scheme implements:
// the paper's EA-optimized matching vectors, the 9C / 9C+HC baselines,
// and the run-length-family coders its related-work section compares
// against. Compress produces a self-contained Artifact; Decompress
// reconstructs a fully specified test set from one (its own or any
// artifact with the codec's name, e.g. one read back via Open).
//
// Implementations are registered at init time; obtain one with Lookup
// and enumerate them with Codecs:
//
//	codec, _ := tcomp.Lookup("golomb")
//	art, _ := codec.Compress(ctx, ts, tcomp.WithSeed(1))
//	tcomp.Write(f, art)                  // universal container v2
//	...
//	art, _ = tcomp.Open(f)               // any codec, auto-detected
//	dec, _ := tcomp.Decompress(art)      // dispatches on art.Codec
type Codec interface {
	// Name returns the codec's registry name (lowercase, stable; it is
	// written into the container header).
	Name() string
	// Compress encodes ts. Options a codec does not understand are
	// ignored; ctx cancellation is honored (threaded down to the
	// pipeline engine for the EA).
	Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error)
	// Decompress reconstructs the fully specified test set from an
	// artifact produced by (or parsed for) this codec.
	Decompress(a *Artifact) (*TestSet, error)
}

// options collects every knob a codec may consult. Each codec documents
// which fields it reads; unknown fields are ignored, so one option list
// can be passed to all codecs (as examples/codes_comparison does).
type options struct {
	seed      int64
	seedSet   bool
	blockLen  int
	mvCount   int
	runs      int
	workers   int
	golombM   int
	dictSize  int
	counterW  int
	chunkPats int
	ea        *EAParams
}

func buildOptions(opts []Option) options {
	o := options{seed: 1}
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// Option configures a Compress call.
type Option func(*options)

// WithSeed sets the random seed (default 1). Read by: ea. An explicit
// WithSeed overrides the seed inside WithEAParams regardless of option
// order.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed, o.seedSet = seed, true }
}

// WithBlockLen sets the input block length K (0 = codec default: ea 12,
// 9c/9chc 8, selhuff 8). Read by: ea, 9c, 9chc, selhuff.
func WithBlockLen(k int) Option { return func(o *options) { o.blockLen = k } }

// WithWorkers bounds pipeline-engine parallelism (0 = one worker per
// CPU, 1 = serial; results are identical at any setting). Read by: ea.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithEAParams replaces the full evolutionary-compressor configuration.
// WithSeed/WithBlockLen/WithMVCount/WithRuns/WithWorkers applied in the
// same call refine it afterwards. Read by: ea.
func WithEAParams(p EAParams) Option { return func(o *options) { o.ea = &p } }

// WithMVCount sets the number of matching vectors L (0 = default 64).
// Read by: ea.
func WithMVCount(l int) Option { return func(o *options) { o.mvCount = l } }

// WithRuns sets the number of independent EA runs (0 = default 5).
// Read by: ea.
func WithRuns(n int) Option { return func(o *options) { o.runs = n } }

// WithGolombM pins the Golomb parameter M (0 = search powers of two up
// to 256 and keep the best). Read by: golomb.
func WithGolombM(m int) Option { return func(o *options) { o.golombM = m } }

// WithDictSize sets the selective-Huffman dictionary size D (0 =
// default 8). Read by: selhuff.
func WithDictSize(d int) Option { return func(o *options) { o.dictSize = d } }

// WithCounterWidth sets the run-length counter width b in bits (0 =
// default 4). Read by: rl.
func WithCounterWidth(b int) Option { return func(o *options) { o.counterW = b } }

// WithChunkPatterns sets the number of test patterns per chunk frame in
// the streaming path (0 = size chunks to about DefaultChunkBits original
// bits). Read by: NewStreamWriter; codecs ignore it.
func WithChunkPatterns(n int) Option { return func(o *options) { o.chunkPats = n } }

var (
	registryMu sync.RWMutex
	registry   = map[string]Codec{}
)

// Register adds a codec to the package registry. It panics if the codec
// is nil, its name is empty, or the name is already taken — codec names
// are a global namespace baked into container files, so a silent
// overwrite would corrupt round-trips.
func Register(c Codec) {
	if c == nil {
		panic("tcomp: Register(nil)")
	}
	name := c.Name()
	if name == "" {
		panic("tcomp: Register with empty codec name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("tcomp: Register called twice for codec %q", name))
	}
	registry[name] = c
}

// Lookup returns the registered codec with the given name, wrapped so
// every Compress call records a span on the caller's trace (a no-op
// outside one). The registry stores the bare codecs, so repeated
// lookups never stack wrappers.
func Lookup(name string) (Codec, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tcomp: unknown codec %q (registered: %v)", name, codecNamesLocked())
	}
	return tracedCodec{c}, nil
}

// tracedCodec instruments Compress with a per-call span named
// "compress <codec>". Decompress has no context to carry a trace, so it
// passes through; serve's decompress handler times it at the call site.
type tracedCodec struct {
	Codec
}

func (t tracedCodec) Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error) {
	ctx, sp := obs.StartSpan(ctx, "compress "+t.Codec.Name())
	art, err := t.Codec.Compress(ctx, ts, opts...)
	sp.SetError(err)
	sp.End()
	return art, err
}

// Codecs returns the sorted names of all registered codecs.
func Codecs() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return codecNamesLocked()
}

func codecNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// CodecParam describes one tunable a codec reads: the functional option
// that sets it locally and the query parameter that sets it against a
// tcompd daemon. It is the machine-readable twin of the option docs
// above.
type CodecParam struct {
	Query       string `json:"query"`
	Option      string `json:"option"`
	Type        string `json:"type"`
	Default     string `json:"default"`
	Description string `json:"description"`
	// Range bounds the values a daemon accepts for this parameter. It is
	// filled from the shared param-range table (see ParamRange), so the
	// advertised schema and the server-side validation can never drift
	// apart. Nil means the full domain of Type is accepted (seed).
	Range *ParamRange `json:"range,omitempty"`
}

// ParamRange is the inclusive bound of one daemon query parameter. The
// package-level table behind LookupParamRange is the single source of
// truth: GET /v1/codecs advertises these bounds and the tcompd request
// validator enforces exactly the same ones. Codec-internal validation is
// tied in, too — e.g. the "b" row is defined in terms of the runlength
// package's own MinCounterWidth/MaxCounterWidth constants.
type ParamRange struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"`
}

// paramRanges maps daemon query keys to their accepted ranges. An
// explicit 0 remains the "use the codec default" marker for every
// parameter whose Min is above zero.
var paramRanges = map[string]ParamRange{
	"k":       {1, 64},
	"l":       {1, 1 << 16},
	"runs":    {1, 4096},
	"workers": {0, 4096},
	"m":       {1, maxGolombM},
	"d":       {1, 1 << 16},
	"b":       {runlength.MinCounterWidth, runlength.MaxCounterWidth},
	"chunk":   {1, container.MaxPatterns},
}

// LookupParamRange returns the shared accepted range for a daemon query
// parameter. ok is false for parameters without a bound (seed spans the
// full int64 domain) and for unknown keys.
func LookupParamRange(query string) (r ParamRange, ok bool) {
	r, ok = paramRanges[query]
	return r, ok
}

// paramOrder lists every daemon query parameter in canonical order. It
// is the single list the wire layers iterate: the synchronous tcompd
// validator, the async job runner, and the client's option-to-query
// translation all resolve keys through OptionForParam, so a parameter
// accepted anywhere resolves to the same functional option everywhere.
var paramOrder = []string{"seed", "k", "l", "runs", "workers", "m", "d", "b", "chunk"}

// ParamKeys returns the daemon query parameter keys OptionForParam
// understands, in canonical order. Callers must not mutate the result.
func ParamKeys() []string { return paramOrder }

// OptionForParam maps a daemon query parameter and its value onto the
// functional option it names. ok is false for unknown keys.
func OptionForParam(key string, v int64) (Option, bool) {
	switch key {
	case "seed":
		return WithSeed(v), true
	case "k":
		return WithBlockLen(int(v)), true
	case "l":
		return WithMVCount(int(v)), true
	case "runs":
		return WithRuns(int(v)), true
	case "workers":
		return WithWorkers(int(v)), true
	case "m":
		return WithGolombM(int(v)), true
	case "d":
		return WithDictSize(int(v)), true
	case "b":
		return WithCounterWidth(int(v)), true
	case "chunk":
		return WithChunkPatterns(int(v)), true
	}
	return nil, false
}

// CodecInfo is one entry of the registry listing served by
// GET /v1/codecs: the codec name plus its parameter schema.
type CodecInfo struct {
	Name   string       `json:"name"`
	Params []CodecParam `json:"params"`
}

// Shared parameter rows, reused across the codecs that read them.
var (
	paramSeed = CodecParam{Query: "seed", Option: "WithSeed", Type: "int64", Default: "1", Description: "random seed; the root of the per-chunk derivation in streaming mode"}
	paramK    = func(def string) CodecParam {
		return CodecParam{Query: "k", Option: "WithBlockLen", Type: "int", Default: def, Description: "input block length K"}
	}
	paramWorkers = CodecParam{Query: "workers", Option: "WithWorkers", Type: "int", Default: "0", Description: "parallelism bound (0 = one per CPU; results identical at any setting)"}
)

// codecParamSchema maps registry names to the options each codec reads
// (mirroring the option documentation). Codecs registered by third
// parties without a row here report an empty schema.
var codecParamSchema = map[string][]CodecParam{
	"ea": {
		paramSeed,
		paramK("12"),
		{Query: "l", Option: "WithMVCount", Type: "int", Default: "64", Description: "number of matching vectors L"},
		{Query: "runs", Option: "WithRuns", Type: "int", Default: "5", Description: "independent EA runs"},
		paramWorkers,
	},
	"9c":   {paramK("8")},
	"9chc": {paramK("8")},
	"golomb": {
		{Query: "m", Option: "WithGolombM", Type: "int", Default: "0", Description: "Golomb parameter M (0 = search powers of two up to 256)"},
	},
	"fdr": {},
	"rl": {
		{Query: "b", Option: "WithCounterWidth", Type: "int", Default: "4", Description: "run-length counter width in bits"},
	},
	"selhuff": {
		paramK("8"),
		{Query: "d", Option: "WithDictSize", Type: "int", Default: "8", Description: "selective-Huffman dictionary size D"},
	},
}

// CodecSchemas returns the full registry listing with per-codec
// parameter schemas, sorted by name — the payload of GET /v1/codecs.
// Each parameter's Range is injected from the shared param-range table,
// so the listing always advertises exactly what the daemon enforces.
func CodecSchemas() []CodecInfo {
	names := Codecs()
	infos := make([]CodecInfo, 0, len(names))
	for _, name := range names {
		rows := codecParamSchema[name]
		params := make([]CodecParam, len(rows))
		for i, p := range rows {
			if r, ok := LookupParamRange(p.Query); ok {
				p.Range = &r
			}
			params[i] = p
		}
		infos = append(infos, CodecInfo{Name: name, Params: params})
	}
	return infos
}
