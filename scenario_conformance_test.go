package tcomp

// Conformance over the generated scenario corpus: every registered
// codec must round-trip ATPG-shaped inputs — stuck-at sets, flattened
// path-delay two-pattern sets, multichain substrings — losslessly
// through both container formats. The purely synthetic adversarial sets
// pin the hostile edge; this pins the realistic center: the don't-care
// density and block correlation the paper's codecs are built for.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/scenario"
)

func TestScenarioCorpusConformance(t *testing.T) {
	corpus, err := scenario.Corpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 3 {
		t.Fatalf("corpus has %d scenarios, want stuck-at + path-delay + multichain", len(corpus))
	}
	kinds := map[string]bool{}
	for _, sc := range corpus {
		kinds[sc.Kind] = true
		if sc.Set.NumPatterns() == 0 {
			t.Fatalf("%s: empty scenario", sc.Name)
		}
	}
	for _, want := range []string{"stuck-at", "path-delay", "multichain"} {
		if !kinds[want] {
			t.Fatalf("corpus lacks a %s scenario (have %v)", want, kinds)
		}
	}

	for _, sc := range corpus {
		for _, name := range Codecs() {
			codec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			label := sc.Name + "/" + name

			// Buffered v2 container round trip.
			art, err := codec.Compress(context.Background(), sc.Set, conformanceOpts(3)...)
			if err != nil {
				t.Errorf("%s: compress: %v", label, err)
				continue
			}
			var buf bytes.Buffer
			if err := Write(&buf, art); err != nil {
				t.Errorf("%s: write: %v", label, err)
				continue
			}
			back, err := Open(&buf)
			if err != nil {
				t.Errorf("%s: reopen: %v", label, err)
				continue
			}
			dec, err := Decompress(back)
			if err != nil {
				t.Errorf("%s: decode: %v", label, err)
				continue
			}
			if !VerifyLossless(sc.Set, dec) {
				t.Errorf("%s: lossy v2 round trip", label)
			}

			// Chunked v3 stream round trip.
			var sbuf bytes.Buffer
			sw, err := NewStreamWriter(context.Background(), &sbuf, name, sc.Set.Width,
				append(conformanceOpts(3), WithChunkPatterns(16))...)
			if err != nil {
				t.Errorf("%s: stream writer: %v", label, err)
				continue
			}
			if err := sw.WriteSet(sc.Set); err != nil {
				t.Errorf("%s: stream write: %v", label, err)
				continue
			}
			if err := sw.Close(); err != nil {
				t.Errorf("%s: stream close: %v", label, err)
				continue
			}
			sr, err := NewStreamReader(bytes.NewReader(sbuf.Bytes()))
			if err != nil {
				t.Errorf("%s: stream reopen: %v", label, err)
				continue
			}
			sdec, err := sr.ReadAll()
			if err != nil {
				t.Errorf("%s: stream decode: %v", label, err)
				continue
			}
			if !VerifyLossless(sc.Set, sdec) {
				t.Errorf("%s: lossy v3 round trip", label)
			}
		}
	}
}
