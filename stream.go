package tcomp

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"repro/internal/bitstream"
	"repro/internal/container"
	"repro/internal/pipeline"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// DefaultChunkBits is the target original-bit size of one stream chunk
// when WithChunkPatterns is not given: big enough that per-chunk codec
// tables amortize, small enough that writer and reader stay at a few
// hundred KiB of working memory.
const DefaultChunkBits = 1 << 20

// chunkResult is what one compression job hands the frame writer.
type chunkResult struct {
	chunk          *container.Chunk
	originalBits   int
	compressedBits int
}

// StreamWriter compresses an arbitrarily large test set through any
// registered codec at O(chunk) memory: patterns accumulate into
// fixed-size chunks, each chunk is compressed independently (in parallel,
// on the pipeline engine, with per-chunk seeds derived from the root seed
// and the chunk index), and the frames are written to the underlying
// io.Writer in chunk order as a v3 chunked container. A parallel run is
// byte-identical to a serial one.
//
// The zero memory ceiling comes at a price the buffered path does not
// pay: each chunk carries its own parameter blob (MV table, Huffman
// dictionary, Golomb M), so compression rates trail the whole-set
// artifact slightly. Buffered Write/Open remain the default for test sets
// that fit in memory.
type StreamWriter struct {
	ctx   context.Context
	codec Codec
	cw    *container.ChunkWriter
	ord   *pipeline.Ordered[*chunkResult]

	width     int
	chunkPats int
	opts      []Option // caller options, re-applied per chunk before the derived seed

	buf    *TestSet
	chunks int
	closed bool

	// Totals are updated by the collector goroutine; Close's drain
	// publishes them, so read them only after Close.
	patterns       int
	originalBits   int
	compressedBits int
}

// NewStreamWriter writes the chunked-container header for the named
// codec and returns a StreamWriter. All compression options apply; the
// seed option becomes the root of the per-chunk seed derivation, and
// WithChunkPatterns / WithWorkers shape the chunking and the worker
// pool. Close must be called to terminate the stream.
func NewStreamWriter(ctx context.Context, w io.Writer, codecName string, width int, opts ...Option) (*StreamWriter, error) {
	codec, err := Lookup(codecName)
	if err != nil {
		return nil, err
	}
	if width < 1 {
		return nil, fmt.Errorf("tcomp: stream width %d must be positive", width)
	}
	o := buildOptions(opts)
	chunkPats := o.chunkPats
	if chunkPats <= 0 {
		chunkPats = DefaultChunkBits / width
		if chunkPats < 1 {
			chunkPats = 1
		}
	}
	cw, err := container.NewChunkWriter(w, container.StreamHeader{
		Codec: codecName, Width: width, ChunkPatterns: chunkPats,
	})
	if err != nil {
		return nil, err
	}
	sw := &StreamWriter{
		ctx:       ctx,
		codec:     codec,
		cw:        cw,
		width:     width,
		chunkPats: chunkPats,
		opts:      opts,
	}
	sw.ord = pipeline.NewOrdered(ctx, pipeline.Config{
		Workers:  o.workers,
		RootSeed: o.seed,
	}, func(res pipeline.Result[*chunkResult]) error {
		if res.Err != nil {
			return res.Err
		}
		if err := sw.cw.WriteChunk(res.Value.chunk); err != nil {
			return err
		}
		sw.patterns += res.Value.chunk.Patterns
		sw.originalBits += res.Value.originalBits
		sw.compressedBits += res.Value.compressedBits
		return nil
	})
	return sw, nil
}

// WritePattern appends one pattern to the stream, flushing a chunk frame
// whenever the chunk fills.
func (sw *StreamWriter) WritePattern(v Vector) error {
	if sw.closed {
		return fmt.Errorf("tcomp: WritePattern on closed stream")
	}
	if v.Len() != sw.width {
		return fmt.Errorf("tcomp: pattern length %d != stream width %d", v.Len(), sw.width)
	}
	if sw.buf == nil {
		sw.buf = testset.New(sw.width)
	}
	sw.buf.Add(v)
	if sw.buf.NumPatterns() >= sw.chunkPats {
		return sw.flushChunk()
	}
	return nil
}

// WriteSet appends every pattern of ts.
func (sw *StreamWriter) WriteSet(ts *TestSet) error {
	if ts.Width != sw.width {
		return fmt.Errorf("tcomp: test-set width %d != stream width %d", ts.Width, sw.width)
	}
	for _, p := range ts.Patterns {
		if err := sw.WritePattern(p); err != nil {
			return err
		}
	}
	return nil
}

// flushChunk hands the buffered patterns to the worker pool. The codec
// sees an explicit per-chunk seed derived from (root seed, chunk index),
// so results do not depend on scheduling or worker count.
func (sw *StreamWriter) flushChunk() error {
	ts := sw.buf
	sw.buf = nil
	idx := sw.chunks
	sw.chunks++
	codec, userOpts := sw.codec, sw.opts
	return sw.ord.Submit(fmt.Sprintf("chunk %d", idx), func(ctx context.Context, seed int64) (*chunkResult, error) {
		opts := make([]Option, 0, len(userOpts)+1)
		opts = append(opts, userOpts...)
		opts = append(opts, WithSeed(seed))
		art, err := codec.Compress(ctx, ts, opts...)
		if err != nil {
			return nil, fmt.Errorf("tcomp: chunk %d: %w", idx, err)
		}
		return &chunkResult{
			chunk: &container.Chunk{
				Patterns: ts.NumPatterns(),
				Params:   art.Params,
				Payload:  art.Payload,
				NBits:    art.NBits,
			},
			originalBits:   art.OriginalBits,
			compressedBits: art.CompressedBits,
		}, nil
	})
}

// Close flushes the final partial chunk, waits for all in-flight chunk
// compressions, and writes the stream terminator and trailer. It does
// not close the underlying writer. Close is idempotent.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	var flushErr error
	if sw.buf != nil && sw.buf.NumPatterns() > 0 {
		flushErr = sw.flushChunk()
	}
	if err := sw.ord.Close(); err != nil {
		return err
	}
	if flushErr != nil {
		return flushErr
	}
	return sw.cw.Close()
}

// Patterns returns the number of patterns written to the container.
// Valid after Close.
func (sw *StreamWriter) Patterns() int { return sw.patterns }

// Chunks returns the number of chunk frames written. Valid after Close.
func (sw *StreamWriter) Chunks() int { return sw.chunks }

// OriginalBits returns the total uncompressed size in bits. Valid after
// Close.
func (sw *StreamWriter) OriginalBits() int { return sw.originalBits }

// CompressedBits returns the total encoded payload size in bits (codec
// accounting, excluding container framing). Valid after Close.
func (sw *StreamWriter) CompressedBits() int { return sw.compressedBits }

// RatePercent returns the paper-style compression rate over the whole
// stream. Valid after Close.
func (sw *StreamWriter) RatePercent() float64 {
	if sw.originalBits == 0 {
		return 0
	}
	return 100 * float64(sw.originalBits-sw.compressedBits) / float64(sw.originalBits)
}

// StreamReader decompresses a v3 chunked container at O(chunk) memory.
// Each chunk frame is CRC-checked, then decoded by the codec named in
// the header through an io.Reader-fed bitstream.StreamReader — the same
// word-at-a-time refill path the differential tests pin against the
// hardware FSM model. Patterns come out one at a time (Next) or chunk at
// a time (NextChunk); buffered v1/v2 containers are read with Open, not
// this type.
type StreamReader struct {
	cr    *container.ChunkReader
	codec Codec

	cur    *TestSet // decoded chunk being drained by Next
	curPos int
	chunks int // chunk frames successfully decoded so far
	done   bool
}

// NewStreamReader parses the chunked-container header and resolves its
// codec from the registry.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	cr, err := container.NewChunkReader(r)
	if err != nil {
		return nil, err
	}
	codec, err := Lookup(cr.Header().Codec)
	if err != nil {
		return nil, err
	}
	return &StreamReader{cr: cr, codec: codec}, nil
}

// Codec returns the codec name from the stream header.
func (sr *StreamReader) Codec() string { return sr.cr.Header().Codec }

// Width returns the pattern width from the stream header.
func (sr *StreamReader) Width() int { return sr.cr.Header().Width }

// ChunkPatterns returns the nominal chunk size from the stream header.
func (sr *StreamReader) ChunkPatterns() int { return sr.cr.Header().ChunkPatterns }

// TotalPatterns returns the trailer's pattern count; valid once Next or
// NextChunk has returned io.EOF.
func (sr *StreamReader) TotalPatterns() int { return sr.cr.TotalPatterns() }

// ChunkIndex returns the zero-based index of the chunk frame NextChunk
// will read next. After NextChunk or Next returns a non-EOF error, it
// names the frame that failed to parse or decode — cmd/tdecompress uses
// it to point at the corruption instead of dumping an error chain.
func (sr *StreamReader) ChunkIndex() int { return sr.chunks }

// NextChunk decodes and returns the next chunk as a fully specified test
// set, or io.EOF after the final chunk (with the trailer validated).
// Non-EOF errors name the failing chunk index.
func (sr *StreamReader) NextChunk() (*TestSet, error) {
	if sr.done {
		return nil, io.EOF
	}
	c, err := sr.cr.Next()
	if err == io.EOF {
		sr.done = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("tcomp: chunk %d: %w", sr.chunks, err)
	}
	hdr := sr.cr.Header()
	art := &Artifact{
		Codec:          hdr.Codec,
		Width:          hdr.Width,
		Patterns:       c.Patterns,
		OriginalBits:   hdr.Width * c.Patterns,
		CompressedBits: c.NBits,
		Params:         c.Params,
		Payload:        c.Payload,
		NBits:          c.NBits,
		src:            bitstream.NewStreamReader(bytes.NewReader(c.Payload), c.NBits),
	}
	ts, err := sr.codec.Decompress(art)
	if err != nil {
		return nil, fmt.Errorf("tcomp: chunk %d: decode: %w", sr.chunks, err)
	}
	if ts.Width != hdr.Width || ts.NumPatterns() != c.Patterns {
		return nil, fmt.Errorf("tcomp: chunk %d: decoded to %dx%d, want %dx%d",
			sr.chunks, ts.NumPatterns(), ts.Width, c.Patterns, hdr.Width)
	}
	sr.chunks++
	return ts, nil
}

// Next returns the next decompressed pattern, or io.EOF after the last
// one.
func (sr *StreamReader) Next() (Vector, error) {
	for sr.cur == nil || sr.curPos >= sr.cur.NumPatterns() {
		ts, err := sr.NextChunk()
		if err != nil {
			return tritvec.Vector{}, err
		}
		sr.cur, sr.curPos = ts, 0
	}
	v := sr.cur.Patterns[sr.curPos]
	sr.curPos++
	return v, nil
}

// ReadAll drains the stream into one in-memory test set — the buffered
// convenience for callers that want a chunked file fully in memory
// rather than the streaming memory model.
func (sr *StreamReader) ReadAll() (*TestSet, error) {
	var ts *TestSet
	for {
		chunk, err := sr.NextChunk()
		if err == io.EOF {
			if ts == nil {
				ts = testset.New(sr.Width())
			}
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		if ts == nil {
			ts = testset.New(sr.Width())
		}
		for _, p := range chunk.Patterns {
			ts.Add(p)
		}
	}
}
