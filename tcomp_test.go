package tcomp

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/testset"
)

func exampleTestSet(t *testing.T, seed int64) *TestSet {
	t.Helper()
	return testset.Random(24, 50, 0.25, rand.New(rand.NewSource(seed)))
}

func quickEAParams(seed int64) EAParams {
	p := DefaultEAParams(seed)
	p.Runs = 1
	p.EA.MaxGenerations = 30
	p.EA.MaxNoImprove = 15
	return p
}

func TestFacadeEndToEnd(t *testing.T) {
	ts := exampleTestSet(t, 1)
	res, err := CompressEA(ts, quickEAParams(1))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecompressResult(res.Final, ts.Width)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyLossless(ts, dec) {
		t.Fatal("EA round trip lost specified bits")
	}
}

func TestFacade9CEndToEnd(t *testing.T) {
	ts := exampleTestSet(t, 2)
	for _, compress := range []func(*TestSet, int) (*BlockResult, error){Compress9C, Compress9CHC} {
		res, err := compress(ts, 8)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecompressResult(res, ts.Width)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyLossless(ts, dec) {
			t.Fatal("9C round trip lost specified bits")
		}
	}
}

func TestFacadeIO(t *testing.T) {
	ts, err := ParseTestSet("01XX10", "111000")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTestSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyLossless(ts, back) || !VerifyLossless(back, ts) {
		t.Fatal("I/O round trip changed test set")
	}
	if NewTestSet(4).Width != 4 {
		t.Fatal("NewTestSet width")
	}
}

func TestFacadeDecoderFSM(t *testing.T) {
	ts := exampleTestSet(t, 3)
	res, err := Compress9CHC(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := NewDecoderFSM(res)
	if err != nil {
		t.Fatal(err)
	}
	if fsm.Area().GateEquivalents <= 0 {
		t.Fatal("decoder area must be positive")
	}
}
