package tcomp

// Differential test suite for the streaming codec engine: for every
// registered codec, the chunked stream path must agree with the buffered
// path — byte-identical payloads and decodes when the chunking is
// aligned, specified-bit-preserving decodes under arbitrary chunking —
// and the hardware FSM model must behave cycle-identically whether it is
// fed from the in-memory reader or the io.Reader-fed streaming one.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/container"
	"repro/internal/decoder"
	"repro/internal/pipeline"
	"repro/internal/testset"
)

// streamTestOpts returns cheap per-codec options so the EA runs in test
// time.
func streamTestOpts(seed int64) []Option {
	p := DefaultEAParams(seed)
	p.EA.MaxGenerations = 30
	p.EA.MaxNoImprove = 10
	p.Runs = 1
	p.L = 16
	return []Option{WithSeed(seed), WithEAParams(p)}
}

// roundTripStream pushes ts through StreamWriter/StreamReader with the
// given chunk size and returns the container bytes and decoded set.
func roundTripStream(t *testing.T, ts *TestSet, codec string, chunkPats, workers int, opts []Option) ([]byte, *TestSet) {
	t.Helper()
	var buf bytes.Buffer
	all := append(append([]Option{}, opts...), WithChunkPatterns(chunkPats), WithWorkers(workers))
	sw, err := NewStreamWriter(context.Background(), &buf, codec, ts.Width, all...)
	if err != nil {
		t.Fatalf("%s: NewStreamWriter: %v", codec, err)
	}
	if err := sw.WriteSet(ts); err != nil {
		t.Fatalf("%s: WriteSet: %v", codec, err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("%s: Close: %v", codec, err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatalf("%s: NewStreamReader: %v", codec, err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatalf("%s: ReadAll: %v", codec, err)
	}
	if sr.TotalPatterns() != ts.NumPatterns() {
		t.Fatalf("%s: trailer says %d patterns, want %d", codec, sr.TotalPatterns(), ts.NumPatterns())
	}
	return raw, dec
}

// equalSets reports trit-for-trit equality.
func equalSets(a, b *TestSet) bool {
	if a.Width != b.Width || a.NumPatterns() != b.NumPatterns() {
		return false
	}
	for i := range a.Patterns {
		if !a.Patterns[i].Equal(b.Patterns[i]) {
			return false
		}
	}
	return true
}

// TestStreamMatchesBufferedSingleChunk drives every registered codec
// through the streaming path with the whole set in one chunk and the
// buffered path with the chunk's derived seed: payload bytes and decoded
// sets must be byte-identical.
func TestStreamMatchesBufferedSingleChunk(t *testing.T) {
	for _, name := range Codecs() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const rootSeed = int64(7)
			rng := rand.New(rand.NewSource(101))
			ts := testset.Random(24, 40, 0.35, rng)
			opts := streamTestOpts(rootSeed)

			raw, streamDec := roundTripStream(t, ts, name, ts.NumPatterns(), 1, opts)

			// The buffered twin of chunk 0 uses the engine-derived seed.
			bufOpts := append(append([]Option{}, opts...), WithSeed(pipeline.Seed(rootSeed, 0)))
			codec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			art, err := codec.Compress(context.Background(), ts, bufOpts...)
			if err != nil {
				t.Fatalf("buffered Compress: %v", err)
			}

			// Byte-identical compressed payload.
			cr, err := container.NewChunkReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			chunk, err := cr.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !bytes.Equal(chunk.Payload, art.Payload) || chunk.NBits != art.NBits {
				t.Fatalf("stream payload (%d bits) differs from buffered payload (%d bits)", chunk.NBits, art.NBits)
			}
			if !bytes.Equal(chunk.Params, art.Params) {
				t.Fatalf("stream params differ from buffered params")
			}
			if _, err := cr.Next(); err != io.EOF {
				t.Fatalf("expected exactly one chunk, got err %v", err)
			}

			// Byte-identical decode.
			bufDec, err := Decompress(art)
			if err != nil {
				t.Fatalf("buffered Decompress: %v", err)
			}
			if !equalSets(streamDec, bufDec) {
				t.Fatalf("streaming decode differs from buffered decode")
			}
			if !VerifyLossless(ts, streamDec) {
				t.Fatalf("streaming decode lost specified bits")
			}
		})
	}
}

// TestStreamMatchesBufferedChunked exercises multi-chunk streams. The
// zero-fill codecs decode to the zero-filled original regardless of
// chunk boundaries, so their streaming decode must equal the buffered
// decode trit for trit; the MV-based block codecs fill don't-cares from
// per-chunk tables, so they are held to the lossless criterion.
func TestStreamMatchesBufferedChunked(t *testing.T) {
	zeroFill := map[string]bool{"golomb": true, "fdr": true, "rl": true, "selhuff": true}
	for _, name := range Codecs() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, chunkPats := range []int{1, 7, 16} {
				rng := rand.New(rand.NewSource(int64(chunkPats)))
				ts := testset.Random(16, 33, 0.4, rng)
				opts := streamTestOpts(3)
				_, streamDec := roundTripStream(t, ts, name, chunkPats, 4, opts)
				if !VerifyLossless(ts, streamDec) {
					t.Fatalf("chunk=%d: streaming decode lost specified bits", chunkPats)
				}
				if zeroFill[name] {
					codec, _ := Lookup(name)
					art, err := codec.Compress(context.Background(), ts, opts...)
					if err != nil {
						t.Fatal(err)
					}
					bufDec, err := Decompress(art)
					if err != nil {
						t.Fatal(err)
					}
					if !equalSets(streamDec, bufDec) {
						t.Fatalf("chunk=%d: streaming decode differs from buffered decode", chunkPats)
					}
				}
			}
		})
	}
}

// TestStreamDeterministicAcrossWorkers pins the engine invariant on the
// streaming path: the container bytes must not depend on the worker
// count.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range Codecs() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(5))
			ts := testset.Random(16, 40, 0.35, rng)
			opts := streamTestOpts(11)
			serial, _ := roundTripStream(t, ts, name, 6, 1, opts)
			parallel, _ := roundTripStream(t, ts, name, 6, 8, opts)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("container bytes differ between 1 and 8 workers")
			}
		})
	}
}

// TestFSMStreamReaderCycleAccurate cross-checks the hardware FSM model
// against the streaming bit reader: decoding the same block-codec payload
// from the in-memory reader and from an io.Reader-fed StreamReader must
// produce identical blocks AND identical cycle statistics, and both must
// agree with the software block decoder.
func TestFSMStreamReaderCycleAccurate(t *testing.T) {
	for _, name := range []string{"ea", "9c", "9chc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			ts := testset.Random(20, 30, 0.3, rng)
			codec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			art, err := codec.Compress(context.Background(), ts, streamTestOpts(2)...)
			if err != nil {
				t.Fatal(err)
			}
			set, code, err := container.DecodeBlockParams(art.Params)
			if err != nil {
				t.Fatal(err)
			}
			fsm, err := decoder.New(set, code)
			if err != nil {
				t.Fatal(err)
			}
			total := art.Width * art.Patterns
			nblocks := (total + set.K - 1) / set.K

			memBlocks, memStats, err := fsm.Run(art.BitReader(), nblocks)
			if err != nil {
				t.Fatalf("FSM from memory: %v", err)
			}
			streamSrc := bitstream.NewStreamReader(bytes.NewReader(art.Payload), art.NBits)
			strBlocks, strStats, err := fsm.Run(streamSrc, nblocks)
			if err != nil {
				t.Fatalf("FSM from stream: %v", err)
			}
			if memStats != strStats {
				t.Fatalf("cycle stats diverge: memory %+v, stream %+v", memStats, strStats)
			}
			if memStats.InputBits != art.NBits {
				t.Fatalf("FSM consumed %d bits, payload has %d", memStats.InputBits, art.NBits)
			}
			if len(memBlocks) != len(strBlocks) {
				t.Fatalf("block counts diverge: %d vs %d", len(memBlocks), len(strBlocks))
			}
			for i := range memBlocks {
				if !memBlocks[i].Equal(strBlocks[i]) {
					t.Fatalf("block %d diverges between memory and stream decode", i)
				}
			}
		})
	}
}

// TestStreamReaderTruncationAndCorruption pins the failure modes: a
// flipped payload bit must be caught by the chunk CRC, and a truncated
// stream must surface an error rather than a silent short read.
func TestStreamReaderTruncationAndCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ts := testset.Random(16, 40, 0.4, rng)
	var buf bytes.Buffer
	sw, err := NewStreamWriter(context.Background(), &buf, "fdr", 16, WithChunkPatterns(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSet(ts); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("corrupt", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 0x40 // inside some frame body
		sr, err := NewStreamReader(bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sr.ReadAll(); err == nil {
			t.Fatal("corrupted container decoded without error")
		}
	})
	t.Run("truncate", func(t *testing.T) {
		for _, cut := range []int{len(raw) - 1, len(raw) - 7, len(raw) / 2, 20} {
			sr, err := NewStreamReader(bytes.NewReader(raw[:cut]))
			if err != nil {
				continue // header itself truncated: fine
			}
			if _, err := sr.ReadAll(); err == nil {
				t.Fatalf("container truncated to %d bytes decoded without error", cut)
			}
		}
	})
}

// TestStreamReaderEOSWrapping pins the satellite fix: truncation errors
// from the bit-level streaming reader must wrap bitstream.ErrEOS so
// errors.Is works through the codec wrappers.
func TestStreamReaderEOSWrapping(t *testing.T) {
	src := bitstream.NewStreamReader(bytes.NewReader([]byte{0xFF}), 8)
	if _, err := src.ReadBits(16); !errors.Is(err, bitstream.ErrEOS) {
		t.Fatalf("ReadBits past end: got %v, want ErrEOS wrap", err)
	}
	src = bitstream.NewStreamReader(bytes.NewReader(nil), -1)
	if _, err := src.ReadBit(); !errors.Is(err, bitstream.ErrEOS) {
		t.Fatalf("ReadBit on empty: got %v, want ErrEOS wrap", err)
	}
	if _, err := bitstream.NewStreamReader(bytes.NewReader(nil), -1).ReadBits(65); !errors.Is(err, bitstream.ErrBitCount) {
		t.Fatalf("hostile bit count did not wrap ErrBitCount")
	}
	if err := bitstream.NewWriter().TryWriteBits(0, 65); !errors.Is(err, bitstream.ErrBitCount) {
		t.Fatalf("TryWriteBits(65) did not wrap ErrBitCount")
	}
}

// genPattern returns pattern i of a deterministic pseudo-random test set
// without materializing the set — the producer side of the memory test.
func genPattern(width int, i int64) Vector {
	rng := rand.New(rand.NewSource(0xC0FFEE ^ i))
	p := testset.Random(width, 1, 0.3, rng)
	return p.Patterns[0]
}

// TestStreamMemoryBudget pushes a test set far larger than the allowed
// heap growth through tcompress-style StreamWriter → pipe → StreamReader
// and fails if the live heap ever grows past a hard budget: the proof
// that streaming runs at O(chunk), not O(test set).
func TestStreamMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("memory budget test moves tens of MiB")
	}
	const (
		width    = 1024
		patterns = 64 << 10 // 64 Mbit: ~16 MiB as an in-memory TestSet
		budget   = 12 << 20 // hard live-heap growth cap, under one TestSet copy
	)
	totalBits := width * patterns
	// A tritvec holds 2 bits per trit (care+value words), so the buffered
	// path would hold at least totalBits/4 bytes; the budget must be
	// smaller for the test to prove anything.
	if totalBits/4 <= budget {
		t.Fatalf("test is vacuous: in-memory set %d bytes within budget %d", totalBits/4, budget)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var peak uint64

	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var writeErr error
	go func() {
		defer wg.Done()
		sw, err := NewStreamWriter(context.Background(), pw, "fdr", width, WithWorkers(2))
		if err == nil {
			for i := int64(0); i < patterns; i++ {
				if err = sw.WritePattern(genPattern(width, i)); err != nil {
					break
				}
			}
			if err == nil {
				err = sw.Close()
			}
		}
		writeErr = err
		pw.CloseWithError(err)
	}()

	sr, err := NewStreamReader(pr)
	if err != nil {
		t.Fatalf("NewStreamReader: %v", err)
	}
	var got int64
	// sample records the live heap (post-GC), the number the budget
	// bounds: transient garbage between samples is the collector's
	// business, resident data is ours.
	sample := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	for {
		v, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next at pattern %d: %v", got, err)
		}
		// Verify a sample of specified bits against the generator.
		if got%4096 == 0 {
			want := genPattern(width, got)
			if !want.Subsumes(v) {
				t.Fatalf("pattern %d does not preserve specified bits", got)
			}
			sample()
		}
		got++
	}
	wg.Wait()
	if writeErr != nil {
		t.Fatalf("writer: %v", writeErr)
	}
	if got != patterns {
		t.Fatalf("decoded %d patterns, want %d", got, patterns)
	}
	grow := int64(peak) - int64(before.HeapAlloc)
	t.Logf("heap growth peak: %.1f MiB over %.1f MiB of test data",
		float64(grow)/(1<<20), float64(totalBits)/8/(1<<20))
	if grow > budget {
		t.Fatalf("heap grew %d bytes, budget %d: streaming is not O(chunk)", grow, budget)
	}
}

// TestStreamWriterErrors pins the checked error paths of the public API.
func TestStreamWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewStreamWriter(context.Background(), &buf, "nope", 8); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := NewStreamWriter(context.Background(), &buf, "fdr", 0); err == nil {
		t.Fatal("zero width accepted")
	}
	sw, err := NewStreamWriter(context.Background(), &buf, "fdr", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePattern(tritvecOfWidth(4)); err == nil {
		t.Fatal("wrong-width pattern accepted")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.WritePattern(tritvecOfWidth(8)); err == nil {
		t.Fatal("write after Close accepted")
	}
	if err := sw.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	// An empty stream round-trips to an empty set.
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumPatterns() != 0 || ts.Width != 8 {
		t.Fatalf("empty stream decoded to %dx%d", ts.NumPatterns(), ts.Width)
	}
}

func tritvecOfWidth(n int) Vector {
	rng := rand.New(rand.NewSource(1))
	return testset.Random(n, 1, 0.5, rng).Patterns[0]
}
