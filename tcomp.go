// Package tcomp is the public facade of the test-compression library: an
// implementation of "Evolutionary Optimization in Code-Based Test
// Compression" (Polian, Czutro, Becker; DATE 2005) together with the
// substrates it depends on — ISCAS-style circuits, stuck-at ATPG with
// don't-care maximization, robust path-delay test generation, the 9C
// baseline, classical run-length-family coders, and an on-chip decoder
// model.
//
// Every scheme implements the Codec interface and is accessible through
// the package registry; artifacts serialize to the universal container
// format and round-trip regardless of method:
//
//	ts, _ := tcomp.ReadTestSet(file)
//	codec, _ := tcomp.Lookup("ea") // or "9c", "9chc", "golomb", "fdr", "rl", "selhuff"
//	art, _ := codec.Compress(ctx, ts, tcomp.WithSeed(1))
//	fmt.Printf("compression rate: %.1f%%\n", art.RatePercent())
//	tcomp.Write(f, art)     // self-describing container v2
//	art, _ = tcomp.Open(f)  // codec auto-detected from the header
//	dec, _ := tcomp.Decompress(art)
//
// See examples/ for end-to-end pipelines (ATPG → compression →
// decompression → fault-coverage verification) and
// examples/codes_comparison for a sweep over tcomp.Codecs().
package tcomp

import (
	"io"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// TestSet is a set of scan test patterns over {0,1,X}.
type TestSet = testset.TestSet

// Vector is a packed ternary vector.
type Vector = tritvec.Vector

// EAParams configures the evolutionary compressor.
type EAParams = core.Params

// EAResult is the outcome of evolutionary compression.
type EAResult = core.Result

// BlockResult is the outcome of a single fixed-MV-set compression.
type BlockResult = blockcode.Result

// NewTestSet returns an empty test set for circuits with n inputs.
func NewTestSet(n int) *TestSet { return testset.New(n) }

// ReadTestSet parses the textual test-set format (header "width count",
// then one pattern of 0/1/X per line).
func ReadTestSet(r io.Reader) (*TestSet, error) { return testset.Read(r) }

// ParseTestSet builds a test set from pattern strings.
func ParseTestSet(patterns ...string) (*TestSet, error) { return testset.ParseStrings(patterns...) }

// DefaultEAParams returns the paper's default configuration: K=12, L=64,
// S=10, C=5, crossover 30%, mutation 30%, inversion 10%, 5 runs, one MV
// pinned to all-U.
func DefaultEAParams(seed int64) EAParams { return core.DefaultParams(seed) }

// CompressEA compresses ts with evolutionary MV optimization (the paper's
// proposed method). It is a thin wrapper kept for convenience; the
// registry equivalent is Lookup("ea").Compress(ctx, ts,
// WithEAParams(p)), whose artifact additionally serializes via Write.
func CompressEA(ts *TestSet, p EAParams) (*EAResult, error) { return core.Compress(ts, p) }

// Compress9C compresses ts with the original nine-coded baseline
// (Tehranipour et al., fixed codewords), block length k (even).
//
// Deprecated: use Lookup("9c").Compress(ctx, ts, WithBlockLen(k)); the
// resulting Artifact round-trips through Write/Open/Decompress.
func Compress9C(ts *TestSet, k int) (*BlockResult, error) { return ninec.Compress(ts, k) }

// Compress9CHC compresses ts with the 9C matching vectors and Huffman
// codewords ("9C+HC").
//
// Deprecated: use Lookup("9chc").Compress(ctx, ts, WithBlockLen(k)); the
// resulting Artifact round-trips through Write/Open/Decompress.
func Compress9CHC(ts *TestSet, k int) (*BlockResult, error) { return ninec.CompressHC(ts, k) }

// DecompressResult reconstructs the fully specified test set from a
// block-codec compression result. The decoded patterns preserve every
// specified bit of the original (don't-cares get concrete values).
//
// Deprecated: prefer the artifact path — Decompress(a *Artifact) — which
// works for every registered codec, not just the block codecs.
func DecompressResult(res *BlockResult, width int) (*TestSet, error) {
	nblocks := (res.OriginalBits + res.Set.K - 1) / res.Set.K
	blocks, err := blockcode.Decode(bitstream.FromWriter(res.Stream), res.Set, res.Code, nblocks)
	if err != nil {
		return nil, err
	}
	flat := tritvec.Concat(blocks...).Slice(0, res.OriginalBits)
	return testset.FromFlat(flat, width)
}

// VerifyLossless checks that decoded preserves every specified bit of
// original.
func VerifyLossless(original, decoded *TestSet) bool { return original.Compatible(decoded) }

// NewDecoderFSM synthesizes the on-chip decoder model for a compression
// result.
func NewDecoderFSM(res *BlockResult) (*decoder.FSM, error) {
	return decoder.New(res.Set, res.Code)
}
