// Package tcomp is the public facade of the test-compression library: an
// implementation of "Evolutionary Optimization in Code-Based Test
// Compression" (Polian, Czutro, Becker; DATE 2005) together with the
// substrates it depends on — ISCAS-style circuits, stuck-at ATPG with
// don't-care maximization, robust path-delay test generation, the 9C
// baseline, classical run-length-family coders, and an on-chip decoder
// model.
//
// Quick start:
//
//	ts, _ := tcomp.ReadTestSet(file)
//	res, _ := tcomp.CompressEA(ts, tcomp.DefaultEAParams(1))
//	fmt.Printf("compression rate: %.1f%%\n", res.BestRate)
//
// See examples/ for end-to-end pipelines (ATPG → compression →
// decompression → fault-coverage verification).
package tcomp

import (
	"io"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// TestSet is a set of scan test patterns over {0,1,X}.
type TestSet = testset.TestSet

// Vector is a packed ternary vector.
type Vector = tritvec.Vector

// EAParams configures the evolutionary compressor.
type EAParams = core.Params

// EAResult is the outcome of evolutionary compression.
type EAResult = core.Result

// BlockResult is the outcome of a single fixed-MV-set compression.
type BlockResult = blockcode.Result

// NewTestSet returns an empty test set for circuits with n inputs.
func NewTestSet(n int) *TestSet { return testset.New(n) }

// ReadTestSet parses the textual test-set format (header "width count",
// then one pattern of 0/1/X per line).
func ReadTestSet(r io.Reader) (*TestSet, error) { return testset.Read(r) }

// ParseTestSet builds a test set from pattern strings.
func ParseTestSet(patterns ...string) (*TestSet, error) { return testset.ParseStrings(patterns...) }

// DefaultEAParams returns the paper's default configuration: K=12, L=64,
// S=10, C=5, crossover 30%, mutation 30%, inversion 10%, 5 runs, one MV
// pinned to all-U.
func DefaultEAParams(seed int64) EAParams { return core.DefaultParams(seed) }

// CompressEA compresses ts with evolutionary MV optimization (the paper's
// proposed method).
func CompressEA(ts *TestSet, p EAParams) (*EAResult, error) { return core.Compress(ts, p) }

// Compress9C compresses ts with the original nine-coded baseline
// (Tehranipour et al., fixed codewords), block length k (even).
func Compress9C(ts *TestSet, k int) (*BlockResult, error) { return ninec.Compress(ts, k) }

// Compress9CHC compresses ts with the 9C matching vectors and Huffman
// codewords ("9C+HC").
func Compress9CHC(ts *TestSet, k int) (*BlockResult, error) { return ninec.CompressHC(ts, k) }

// Decompress reconstructs the fully specified test set from a compression
// result. The decoded patterns preserve every specified bit of the
// original (don't-cares get concrete values).
func Decompress(res *BlockResult, width int) (*TestSet, error) {
	nblocks := (res.OriginalBits + res.Set.K - 1) / res.Set.K
	blocks, err := blockcode.Decode(bitstream.FromWriter(res.Stream), res.Set, res.Code, nblocks)
	if err != nil {
		return nil, err
	}
	flat := tritvec.Concat(blocks...).Slice(0, res.OriginalBits)
	return testset.FromFlat(flat, width)
}

// VerifyLossless checks that decoded preserves every specified bit of
// original.
func VerifyLossless(original, decoded *TestSet) bool { return original.Compatible(decoded) }

// NewDecoderFSM synthesizes the on-chip decoder model for a compression
// result.
func NewDecoderFSM(res *BlockResult) (*decoder.FSM, error) {
	return decoder.New(res.Set, res.Code)
}
