package tcomp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Async job API client — the remote twin of the daemon's /v1/jobs
// endpoints. A submission uploads the input once, gets a job ID back
// immediately, and the compression runs in the daemon's background
// queue; the result stays fetchable from the daemon's content-addressed
// artifact store (surviving a daemon restart when tcompd runs with
// -store-dir) until it is removed or garbage-collected.
//
//	j, err := c.SubmitCompressJob(ctx, "golomb", patterns, tcomp.WithSeed(7))
//	j, err = c.WaitJob(ctx, j.ID)
//	if j.State == tcomp.JobDone {
//		_, err = c.JobResult(ctx, j.ID, containerFile)
//	}

// Job states as the daemon reports them.
const (
	JobPending   = "pending"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// Typed sentinels for the async job taxonomy, matched by errors.Is
// against the *RemoteError a Client method returns:
//
//	ErrJobNotFound the job ID is unknown (never submitted, removed, or
//	               its result artifact was garbage-collected) — HTTP
//	               404 job_not_found
//	ErrJobNotDone  the job exists but has no result yet (still queued
//	               or running, failed, or cancelled) — HTTP 409
//	               job_not_done
//	ErrQueueFull   the daemon's job backlog is at capacity; retry
//	               later — HTTP 429 queue_full
var (
	ErrJobNotFound = errors.New("tcomp: job not found on the daemon")
	ErrJobNotDone  = errors.New("tcomp: job has not produced a result")
	ErrQueueFull   = errors.New("tcomp: daemon job queue is full")
)

// JobSpec mirrors the daemon's job specification: what kind of work,
// which codec and parameters, and the content address of the stored
// input blob.
type JobSpec struct {
	Kind   string           `json:"kind"`
	Codec  string           `json:"codec,omitempty"`
	Format string           `json:"format,omitempty"`
	Codecs []string         `json:"codecs,omitempty"`
	Params map[string]int64 `json:"params,omitempty"`
	Input  string           `json:"input"`
	// Flow-only fields (kind "flow").
	Benchmark string `json:"benchmark,omitempty"`
	Tests     string `json:"tests,omitempty"`
	Sample    int    `json:"sample,omitempty"`
}

// JobArtifact is one named extra artifact of a finished job — flow jobs
// carry "container" and "verilog".
type JobArtifact struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
}

// JobProgress reports how far a running job has come, in patterns and
// completed chunks.
type JobProgress struct {
	Patterns int `json:"patterns"`
	Chunks   int `json:"chunks_completed"`
}

// JobStats is the size accounting of a finished job, mirroring the
// X-Tcomp-* headers of the synchronous endpoints.
type JobStats struct {
	Patterns       int `json:"patterns"`
	Chunks         int `json:"chunks"`
	OriginalBits   int `json:"original_bits"`
	CompressedBits int `json:"compressed_bits"`
}

// RatePercent returns the paper-style compression rate.
func (s JobStats) RatePercent() float64 {
	if s.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(s.OriginalBits-s.CompressedBits) / float64(s.OriginalBits)
}

// JobStatus is one job record as the daemon serves it.
type JobStatus struct {
	ID         string      `json:"id"`
	Spec       JobSpec     `json:"spec"`
	State      string      `json:"state"`
	Created    time.Time   `json:"created"`
	Started    time.Time   `json:"started"`
	Finished   time.Time   `json:"finished"`
	Progress   JobProgress `json:"progress"`
	Output     string      `json:"output,omitempty"`
	OutputSize int64       `json:"output_size,omitempty"`
	Stats      *JobStats   `json:"stats,omitempty"`
	// Artifacts lists a flow job's named extra outputs, fetchable via
	// FlowArtifact.
	Artifacts []JobArtifact `json:"artifacts,omitempty"`
	Error     string        `json:"error,omitempty"`
	// ErrorCode carries the taxonomy code of a failed job (e.g.
	// "corrupt_container", "internal_panic"), so an async caller can
	// classify the failure exactly like a synchronous one.
	ErrorCode string `json:"error_code,omitempty"`
	// RequestID is the X-Request-Id of the HTTP request that submitted
	// the job — the key that links the async record back to the daemon's
	// structured logs for the submission.
	RequestID string `json:"request_id,omitempty"`
	// TraceParent is the W3C trace context the job's worker spans export
	// under, journalled by the daemon so the link survives a restart.
	TraceParent string `json:"traceparent,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *JobStatus) Terminal() bool {
	switch j.State {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// SubmitCompressJob uploads the textual (or TSET binary) test set on
// patterns and queues an asynchronous compression with the named codec.
// The options travel as the same query parameters the synchronous
// endpoint uses; format selects the container ("" or "v3" for the
// chunked stream container, "v2" for the buffered form) via
// SubmitCompressJobFormat. The returned record is in state "pending" —
// poll with Job or WaitJob and fetch the container with JobResult.
func (c *Client) SubmitCompressJob(ctx context.Context, codecName string, patterns io.Reader, opts ...Option) (*JobStatus, error) {
	return c.SubmitCompressJobFormat(ctx, codecName, "", patterns, opts...)
}

// SubmitCompressJobFormat is SubmitCompressJob with an explicit
// container format ("v2" or "v3"; "" means the daemon default, v3).
func (c *Client) SubmitCompressJobFormat(ctx context.Context, codecName, format string, patterns io.Reader, opts ...Option) (*JobStatus, error) {
	q := optionValues(opts)
	q.Set("kind", "compress")
	q.Set("codec", codecName)
	if format != "" {
		q.Set("format", format)
	}
	return c.submitJob(ctx, q, patterns, "text/plain")
}

// SubmitDecompressJob uploads a container (any version) and queues its
// asynchronous expansion into textual patterns.
func (c *Client) SubmitDecompressJob(ctx context.Context, container io.Reader) (*JobStatus, error) {
	q := url.Values{}
	q.Set("kind", "decompress")
	return c.submitJob(ctx, q, container, "application/octet-stream")
}

// SubmitSweepJob uploads a test set and queues a rate sweep across the
// named codecs; the job's result is a JSON report comparing their
// compression rates on that input.
func (c *Client) SubmitSweepJob(ctx context.Context, codecs []string, patterns io.Reader, opts ...Option) (*JobStatus, error) {
	q := optionValues(opts)
	q.Set("kind", "sweep")
	q.Set("codecs", strings.Join(codecs, ","))
	return c.submitJob(ctx, q, patterns, "text/plain")
}

func (c *Client) submitJob(ctx context.Context, q url.Values, body io.Reader, contentType string) (*JobStatus, error) {
	return c.submitAsync(ctx, "/v1/jobs", q, body, contentType)
}

// submitAsync posts a body to an async submission endpoint (/v1/jobs or
// /v1/flows) and decodes the 202 job record.
func (c *Client) submitAsync(ctx context.Context, path string, q url.Values, body io.Reader, contentType string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+path+"?"+q.Encode(), body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	// Submission bypasses do (it expects 202, not 200) but must inject
	// the traceparent the same way: the daemon journals it on the job.
	injectTraceparent(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	return decodeJob(resp.Body)
}

// Job fetches the current record of one job (GET /v1/jobs/{id}).
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	resp, err := c.jobGet(ctx, "/v1/jobs/"+url.PathEscape(id))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decodeJob(resp.Body)
}

// Jobs lists every job the daemon knows, in submission order
// (GET /v1/jobs).
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	resp, err := c.jobGet(ctx, "/v1/jobs")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) jobGet(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return c.do(req)
}

// CancelJob cancels an active job or removes a terminal one
// (DELETE /v1/jobs/{id}); the returned record is the job's final state.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.BaseURL+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return decodeJob(resp.Body)
}

// JobResult streams a done job's output artifact into w
// (GET /v1/jobs/{id}/result) and returns the job's size accounting. A
// job without a result yet answers ErrJobNotDone; an unknown job or a
// garbage-collected artifact answers ErrJobNotFound.
func (c *Client) JobResult(ctx context.Context, id string, w io.Writer) (*RemoteStats, error) {
	resp, err := c.jobGet(ctx, "/v1/jobs/"+url.PathEscape(id)+"/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(w, resp.Body); err != nil {
		return nil, err
	}
	return remoteStats("", resp), nil
}

// Backoff bounds of WaitJob's default polling schedule: the delay
// doubles from waitBaseDelay until it saturates at waitMaxDelay, so a
// short job is noticed within ~100ms while a long wait settles to one
// poll every 3s instead of hammering the daemon at the old fixed 250ms.
const (
	waitBaseDelay = 100 * time.Millisecond
	waitMaxDelay  = 3 * time.Second
)

// waitDelay returns the pause before poll attempt+2 (the first poll
// happens immediately). An explicit PollInterval pins the historical
// fixed cadence; fixed <= 0 selects the capped exponential schedule
// 100ms, 200ms, 400ms, 800ms, 1.6s, 3s, 3s, ...
func waitDelay(fixed time.Duration, attempt int) time.Duration {
	if fixed > 0 {
		return fixed
	}
	d := waitBaseDelay
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= waitMaxDelay {
			return waitMaxDelay
		}
	}
	return d
}

// WaitJob polls the job until it reaches a terminal state (done,
// failed, or cancelled) and returns its final record; the caller
// decides what a failed or cancelled job means. A set PollInterval is
// the fixed polling cadence; when unset, polling backs off
// exponentially from 100ms to a 3s cap. The context bounds the total
// wait.
func (c *Client) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	for attempt := 0; ; attempt++ {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return j, nil
		}
		t := time.NewTimer(waitDelay(c.PollInterval, attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return j, ctx.Err()
		case <-t.C:
		}
	}
}

func decodeJob(r io.Reader) (*JobStatus, error) {
	var j JobStatus
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("tcomp: decoding job record: %w", err)
	}
	return &j, nil
}
