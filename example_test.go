package tcomp_test

import (
	"fmt"
	"log"

	tcomp "repro"
)

// Example demonstrates the end-to-end API: compress a test set with don't-
// cares using the 9C+HC baseline, decompress, and verify losslessness.
func Example() {
	ts, err := tcomp.ParseTestSet(
		"11110000",
		"1111XXXX",
		"00000000",
		"XXXX0000",
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tcomp.Compress9CHC(ts, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d -> %d bits\n", res.OriginalBits, res.CompressedBits)
	dec, err := tcomp.DecompressResult(res, ts.Width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lossless:", tcomp.VerifyLossless(ts, dec))
	// Output:
	// 32 -> 6 bits
	// lossless: true
}

// ExampleCompressEA shows the paper's evolutionary compressor on a test
// set whose blocks "almost match" — the case its arbitrary-U matching
// vectors are built for.
func ExampleCompressEA() {
	ts, err := tcomp.ParseTestSet(
		"110100", "110000", "110100", "110000",
		"110100", "110000", "110100", "110001",
	)
	if err != nil {
		log.Fatal(err)
	}
	p := tcomp.DefaultEAParams(7)
	p.K, p.L = 6, 4
	p.Runs = 2
	p.EA.MaxGenerations = 200
	p.EA.MaxNoImprove = 80
	res, err := tcomp.CompressEA(ts, p)
	if err != nil {
		log.Fatal(err)
	}
	// The EA finds an MV like 110U0U and encodes each 6-bit block in a
	// codeword plus at most two fill bits.
	fmt.Println("compressed below half:", res.Final.CompressedBits < res.Final.OriginalBits/2)
	dec, _ := tcomp.DecompressResult(res.Final, ts.Width)
	fmt.Println("lossless:", tcomp.VerifyLossless(ts, dec))
	// Output:
	// compressed below half: true
	// lossless: true
}
