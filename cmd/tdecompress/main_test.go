package main

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"strings"
	"testing"

	tcomp "repro"
	"repro/internal/testset"
)

// truncatedFixture compresses a small set into a chunked v3 container
// and cuts it short, returning the bytes and the index of the chunk the
// truncation lands in.
func truncatedFixture(t *testing.T) []byte {
	t.Helper()
	ts := testset.Random(16, 40, 0.4, rand.New(rand.NewSource(5)))
	var buf bytes.Buffer
	sw, err := tcomp.NewStreamWriter(context.Background(), &buf, "rl", ts.Width, tcomp.WithChunkPatterns(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSet(ts); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()[:buf.Len()*2/3]
}

// drainStream reads the fixture until it fails, returning the failing
// chunk index and the raw error — the inputs streamFailureLine turns
// into the user-facing message.
func drainStream(t *testing.T, data []byte) (int, error) {
	t.Helper()
	sr, err := tcomp.NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("fixture header unreadable: %v", err)
	}
	for {
		_, err := sr.Next()
		if err == io.EOF {
			t.Fatal("truncated fixture read to EOF without error")
		}
		if err != nil {
			return sr.ChunkIndex(), err
		}
	}
}

// TestStreamFailureLine: a truncated v3 container produces one
// actionable line naming the failing chunk — not a wrapped Go error
// chain.
func TestStreamFailureLine(t *testing.T) {
	idx, err := drainStream(t, truncatedFixture(t))
	if idx < 1 {
		t.Fatalf("truncation at 2/3 of a 5-chunk stream should fail past chunk 0, got %d", idx)
	}
	line := streamFailureLine(idx, err)
	if strings.ContainsAny(line, "\n") {
		t.Fatalf("message is not one line: %q", line)
	}
	if !strings.Contains(line, "chunk") {
		t.Fatalf("message does not name the failing chunk: %q", line)
	}
	if !strings.Contains(line, "truncated") {
		t.Fatalf("truncation not called out: %q", line)
	}
	if strings.Contains(line, "%!") || strings.Contains(line, "tcomp:") || strings.Contains(line, "container:") {
		t.Fatalf("Go error chain leaked into the message: %q", line)
	}
	if !strings.Contains(line, "re-transfer") {
		t.Fatalf("message is not actionable: %q", line)
	}
}

// TestStreamFailureLineCorruption: a CRC failure (flipped byte inside a
// frame) is reported as corruption at the right chunk.
func TestStreamFailureLineCorruption(t *testing.T) {
	ts := testset.Random(16, 40, 0.4, rand.New(rand.NewSource(6)))
	var buf bytes.Buffer
	sw, err := tcomp.NewStreamWriter(context.Background(), &buf, "rl", ts.Width, tcomp.WithChunkPatterns(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSet(ts); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)*2/3] ^= 0xFF // land inside a mid-stream frame

	idx, err := drainStream(t, data)
	line := streamFailureLine(idx, err)
	if !strings.Contains(line, "chunk") || strings.Contains(line, "\n") {
		t.Fatalf("corruption message malformed: %q", line)
	}
}
