// Command tdecompress expands a compressed container back into a fully
// specified test-set file and optionally verifies it against the original.
//
// Usage:
//
//	tdecompress -in tests.tcmp -out expanded.txt [-verify tests.txt]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/blockcode"
	"repro/internal/decoder"
	"repro/internal/testset"
	"repro/internal/tritvec"

	"repro/internal/container"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdecompress: ")
	var (
		in     = flag.String("in", "", "input container file")
		out    = flag.String("out", "", "output test-set file (default stdout)")
		verify = flag.String("verify", "", "original test-set file to verify against")
		fsm    = flag.Bool("fsm", false, "decode through the hardware FSM model and report cycles")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	cf, err := container.Read(f)
	if err != nil {
		log.Fatal(err)
	}

	var blocks []tritvec.Vector
	if *fsm {
		dec, err := decoder.New(cf.Set, cf.Code)
		if err != nil {
			log.Fatal(err)
		}
		var st decoder.Stats
		blocks, st, err = dec.Run(cf.Reader(), cf.NumBlocks())
		if err != nil {
			log.Fatal(err)
		}
		area := dec.Area()
		fmt.Fprintf(os.Stderr, "fsm: %d blocks, %d input bits, %d cycles, %d states, %.0f GE\n",
			st.Blocks, st.InputBits, st.Cycles, area.States, area.GateEquivalents)
	} else {
		blocks, err = blockcode.Decode(cf.Reader(), cf.Set, cf.Code, cf.NumBlocks())
		if err != nil {
			log.Fatal(err)
		}
	}

	flat := tritvec.Concat(blocks...).Slice(0, cf.Width*cf.Patterns)
	ts, err := testset.FromFlat(flat, cf.Width)
	if err != nil {
		log.Fatal(err)
	}

	if *verify != "" {
		vf, err := os.Open(*verify)
		if err != nil {
			log.Fatal(err)
		}
		orig, err := testset.Read(vf)
		vf.Close()
		if err != nil {
			log.Fatal(err)
		}
		if !orig.Compatible(ts) {
			log.Fatal("verification FAILED: decoded data does not preserve the original's specified bits")
		}
		fmt.Fprintln(os.Stderr, "verification OK: all specified bits preserved")
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := ts.Write(w); err != nil {
		log.Fatal(err)
	}
}
