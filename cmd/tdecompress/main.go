// Command tdecompress expands a compressed container back into a fully
// specified test-set file and optionally verifies it against the
// original. The compression method is auto-detected from the container
// header — every registered codec (ea, 9c, 9chc, golomb, fdr, rl,
// selhuff) round-trips, and legacy v1 block-codec files remain readable.
// Chunked stream containers (format v3, written by tcompress -stream)
// are auto-detected too; add -stream to expand them at O(chunk) memory
// with a pipe-friendly stdin-to-stdout flow.
//
// Usage:
//
//	tdecompress -in tests.tcmp -out expanded.txt [-verify tests.txt]
//	tdecompress -stream < tests.tcmp > expanded.txt
//	tdecompress -remote http://localhost:8077 < tests.tcmp > expanded.txt
//	tdecompress -remote http://localhost:8077 -async < tests.tcmp > expanded.txt
//
// With -remote the expansion is delegated to a tcompd daemon: the
// container streams up, the textual patterns stream back, and -verify
// still checks the result locally against the original. Adding -async
// submits the expansion as a background job instead and polls until it
// is done — the work survives a daemon restart mid-run.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	tcomp "repro"
	"repro/internal/bitstream"
	"repro/internal/container"
	"repro/internal/decoder"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdecompress: ")
	var (
		in     = flag.String("in", "", "input container file (default stdin)")
		out    = flag.String("out", "", "output test-set file (default stdout)")
		verify = flag.String("verify", "", "original test-set file to verify against")
		fsm    = flag.Bool("fsm", false, "decode through the hardware FSM model and report cycles (block codecs only)")
		stream = flag.Bool("stream", false, "expand a chunked stream container pattern-by-pattern at O(chunk) memory")
		remote = flag.String("remote", "", "delegate decompression to a tcompd daemon at this base URL")
		async  = flag.Bool("async", false, "with -remote: submit as a background job, poll until done, then fetch the patterns")
	)
	flag.Parse()
	if *async && *remote == "" {
		log.Fatal("-async needs -remote (it is a daemon job submission)")
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	if *remote != "" {
		if *fsm {
			log.Fatal("-fsm decodes locally; it cannot be combined with -remote")
		}
		if *async {
			runAsync(*remote, bufio.NewReader(r), *out, *verify)
		} else {
			runRemote(*remote, bufio.NewReader(r), *out, *verify)
		}
		return
	}

	// One shared version probe (container.Sniff) routes chunked
	// containers to the streaming reader even without -stream.
	version, rest, err := container.Sniff(bufio.NewReader(r))
	if err != nil {
		log.Fatal(err)
	}

	if *stream || version == container.Version3 {
		if *fsm {
			log.Fatal("-fsm applies to buffered block-codec containers, not chunked streams")
		}
		runStream(rest, *out, *verify)
		return
	}

	art, err := tcomp.Open(rest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "container: codec %s, %d patterns x %d inputs, %d payload bits\n",
		art.Codec, art.Patterns, art.Width, art.NBits)

	var ts *testset.TestSet
	if *fsm {
		// The hardware decoder model exists for the block codecs; their
		// artifacts carry the MV table and codeword list as the
		// parameter blob.
		set, code, err := container.DecodeBlockParams(art.Params)
		if err != nil {
			log.Fatalf("-fsm requires a block-codec container (ea/9c/9chc): %v", err)
		}
		dec, err := decoder.New(set, code)
		if err != nil {
			log.Fatal(err)
		}
		total := art.Width * art.Patterns
		nblocks := (total + set.K - 1) / set.K
		blocks, st, err := dec.Run(art.BitReader(), nblocks)
		if err != nil {
			log.Fatal(err)
		}
		area := dec.Area()
		fmt.Fprintf(os.Stderr, "fsm: %d blocks, %d input bits, %d cycles, %d states, %.0f GE\n",
			st.Blocks, st.InputBits, st.Cycles, area.States, area.GateEquivalents)
		flat := tritvec.Concat(blocks...).Slice(0, total)
		ts, err = testset.FromFlat(flat, art.Width)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ts, err = tcomp.Decompress(art)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *verify != "" {
		vf, err := os.Open(*verify)
		if err != nil {
			log.Fatal(err)
		}
		orig, err := testset.Read(vf)
		_ = vf.Close() // read side; the parse error is the one that matters
		if err != nil {
			log.Fatal(err)
		}
		if !orig.Compatible(ts) {
			log.Fatal("verification FAILED: decoded data does not preserve the original's specified bits")
		}
		fmt.Fprintln(os.Stderr, "verification OK: all specified bits preserved")
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := ts.Write(w); err != nil {
		log.Fatal(err)
	}
}

// runStream expands a chunked stream container pattern-by-pattern at
// O(chunk) memory: the textual output carries a streaming ("width *")
// header, and -verify reads the original incrementally too, so nothing
// is ever buffered whole.
func runStream(r io.Reader, out, verify string) {
	sr, err := tcomp.NewStreamReader(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "container: codec %s, chunked stream, width %d, %d patterns/chunk\n",
		sr.Codec(), sr.Width(), sr.ChunkPatterns())
	expandStream(sr.Width(), sr.Next, out, verify, func(err error) string {
		return streamFailureLine(sr.ChunkIndex(), err)
	})
}

// streamFailureLine renders a chunked-stream read failure as one
// actionable line naming the failing chunk, instead of a wrapped Go
// error chain: the operator needs to know *where* the stream died and
// *what to do*, not which reader layer noticed first.
func streamFailureLine(chunk int, err error) string {
	reason := "corrupt data"
	switch {
	case errors.Is(err, container.ErrCRC):
		reason = "checksum mismatch (bit rot or a bad transfer)"
	case errors.Is(err, bitstream.ErrEOS):
		reason = "encoded payload ended early (corrupt or truncated chunk)"
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		reason = "input ended early (truncated file or transfer)"
	}
	return fmt.Sprintf("stream unreadable at chunk %d: %s; re-transfer the container or recompress the source", chunk, reason)
}

// remoteHint appends the actionable next step implied by the daemon's
// error class: the typed sentinels distinguish "fix your container"
// from "retry elsewhere" from "report a daemon bug".
func remoteHint(err error) string {
	switch {
	case errors.Is(err, tcomp.ErrTooLarge):
		return fmt.Sprintf("%v (the container exceeds the daemon's body cap; raise tcompd -max-body)", err)
	case errors.Is(err, tcomp.ErrBadRequest):
		return fmt.Sprintf("%v (the body is not a tcomp container; check the input file)", err)
	case errors.Is(err, tcomp.ErrCorruptInput):
		return fmt.Sprintf("%v (the container is corrupt or truncated; re-transfer or re-compress it)", err)
	case errors.Is(err, tcomp.ErrUnavailable):
		return fmt.Sprintf("%v (daemon draining or saturated; retry or target another instance)", err)
	case errors.Is(err, tcomp.ErrRemoteInternal):
		return fmt.Sprintf("%v (daemon bug, contained server-side; see the daemon log for the stack)", err)
	}
	return err.Error()
}

// runAsync submits the container as a daemon background job, polls
// until it is done, and fetches the textual patterns; -verify still
// runs locally while the result streams down.
func runAsync(base string, r io.Reader, out, verify string) {
	ctx := context.Background()
	c := tcomp.NewClient(base)
	j, err := c.SubmitDecompressJob(ctx, r)
	if err != nil {
		if errors.Is(err, tcomp.ErrQueueFull) {
			log.Fatalf("%v (the daemon's job backlog is at capacity; retry later or raise tcompd -max-jobs)", err)
		}
		log.Fatal(remoteHint(err))
	}
	fmt.Fprintf(os.Stderr, "submitted job %s (%s)\n", j.ID, base)
	if j, err = c.WaitJob(ctx, j.ID); err != nil {
		log.Fatal(remoteHint(err))
	}
	if j.State != tcomp.JobDone {
		log.Fatalf("job %s ended %s: %s (%s)", j.ID, j.State, j.Error, j.ErrorCode)
	}
	errAborted := errors.New("tdecompress: result fetch aborted")
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := c.JobResult(ctx, j.ID, pw)
		pw.CloseWithError(err)
		done <- err
	}()
	drainRemote := func(localErr error) string {
		pr.CloseWithError(errAborted)
		if derr := <-done; derr != nil && !errors.Is(derr, errAborted) {
			return remoteHint(derr)
		}
		return localErr.Error()
	}
	sc, err := testset.NewScanner(pr)
	if err != nil {
		log.Fatal(drainRemote(err))
	}
	expandStream(sc.Width(), sc.Next, out, verify, drainRemote)
}

// runRemote delegates expansion to a tcompd daemon, streaming the
// container up and the textual patterns back down; -verify still runs
// locally against the original.
func runRemote(base string, r io.Reader, out, verify string) {
	c := tcomp.NewClient(base)
	errAborted := errors.New("tdecompress: remote expansion aborted")
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := c.Decompress(context.Background(), r, pw)
		pw.CloseWithError(err)
		done <- err
	}()
	// drainRemote unblocks the copier goroutine before waiting on it —
	// waiting first would deadlock against a daemon still streaming
	// into the unread pipe — and prefers the daemon's error (the
	// actionable one) over the local parse error.
	drainRemote := func(localErr error) string {
		pr.CloseWithError(errAborted)
		if derr := <-done; derr != nil && !errors.Is(derr, errAborted) {
			return remoteHint(derr)
		}
		return localErr.Error()
	}
	sc, err := testset.NewScanner(pr)
	if err != nil {
		log.Fatal(drainRemote(err))
	}
	expandStream(sc.Width(), sc.Next, out, verify, drainRemote)
}

// expandStream is the shared expansion loop behind the local streaming
// and remote paths: pull patterns from next until io.EOF, verify each
// against the original when -verify is set, and write the textual
// output incrementally. renderErr turns a pattern-source failure into
// the fatal operator-facing message.
func expandStream(width int, next func() (tritvec.Vector, error), out, verify string, renderErr func(error) string) {
	var origSc *testset.Scanner
	if verify != "" {
		vf, err := os.Open(verify)
		if err != nil {
			log.Fatal(err)
		}
		defer vf.Close()
		if origSc, err = testset.NewScanner(bufio.NewReader(vf)); err != nil {
			log.Fatal(err)
		}
		if origSc.Width() != width {
			log.Fatalf("verification FAILED: original width %d, decoded width %d", origSc.Width(), width)
		}
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	pw, err := testset.NewPatternWriter(w, width)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for {
		v, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(renderErr(err))
		}
		if origSc != nil {
			o, err := origSc.Next()
			if err != nil {
				log.Fatalf("verification FAILED: original ended at pattern %d: %v", n, err)
			}
			if !o.Subsumes(v) {
				log.Fatalf("verification FAILED: pattern %d does not preserve the original's specified bits", n)
			}
		}
		if err := pw.WritePattern(v); err != nil {
			log.Fatal(err)
		}
		n++
	}
	if err := pw.Close(); err != nil {
		log.Fatal(err)
	}
	if origSc != nil {
		if _, err := origSc.Next(); err != io.EOF {
			log.Fatalf("verification FAILED: original has more than %d patterns", n)
		}
		fmt.Fprintln(os.Stderr, "verification OK: all specified bits preserved")
	}
	fmt.Fprintf(os.Stderr, "expanded %d patterns\n", n)
}
