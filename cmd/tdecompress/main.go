// Command tdecompress expands a compressed container back into a fully
// specified test-set file and optionally verifies it against the
// original. The compression method is auto-detected from the container
// header — every registered codec (ea, 9c, 9chc, golomb, fdr, rl,
// selhuff) round-trips, and legacy v1 block-codec files remain readable.
// Chunked stream containers (format v3, written by tcompress -stream)
// are auto-detected too; add -stream to expand them at O(chunk) memory
// with a pipe-friendly stdin-to-stdout flow.
//
// Usage:
//
//	tdecompress -in tests.tcmp -out expanded.txt [-verify tests.txt]
//	tdecompress -stream < tests.tcmp > expanded.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	tcomp "repro"
	"repro/internal/container"
	"repro/internal/decoder"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdecompress: ")
	var (
		in     = flag.String("in", "", "input container file (default stdin)")
		out    = flag.String("out", "", "output test-set file (default stdout)")
		verify = flag.String("verify", "", "original test-set file to verify against")
		fsm    = flag.Bool("fsm", false, "decode through the hardware FSM model and report cycles (block codecs only)")
		stream = flag.Bool("stream", false, "expand a chunked stream container pattern-by-pattern at O(chunk) memory")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	// Peek at magic+version so chunked containers are routed to the
	// streaming reader even without -stream.
	br := bufio.NewReader(r)
	hdr, err := br.Peek(5)
	chunked := err == nil && len(hdr) == 5 && string(hdr[:4]) == "TCMP" && hdr[4] == container.Version3

	if *stream || chunked {
		if *fsm {
			log.Fatal("-fsm applies to buffered block-codec containers, not chunked streams")
		}
		runStream(br, *out, *verify)
		return
	}

	art, err := tcomp.Open(br)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "container: codec %s, %d patterns x %d inputs, %d payload bits\n",
		art.Codec, art.Patterns, art.Width, art.NBits)

	var ts *testset.TestSet
	if *fsm {
		// The hardware decoder model exists for the block codecs; their
		// artifacts carry the MV table and codeword list as the
		// parameter blob.
		set, code, err := container.DecodeBlockParams(art.Params)
		if err != nil {
			log.Fatalf("-fsm requires a block-codec container (ea/9c/9chc): %v", err)
		}
		dec, err := decoder.New(set, code)
		if err != nil {
			log.Fatal(err)
		}
		total := art.Width * art.Patterns
		nblocks := (total + set.K - 1) / set.K
		blocks, st, err := dec.Run(art.BitReader(), nblocks)
		if err != nil {
			log.Fatal(err)
		}
		area := dec.Area()
		fmt.Fprintf(os.Stderr, "fsm: %d blocks, %d input bits, %d cycles, %d states, %.0f GE\n",
			st.Blocks, st.InputBits, st.Cycles, area.States, area.GateEquivalents)
		flat := tritvec.Concat(blocks...).Slice(0, total)
		ts, err = testset.FromFlat(flat, art.Width)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ts, err = tcomp.Decompress(art)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *verify != "" {
		vf, err := os.Open(*verify)
		if err != nil {
			log.Fatal(err)
		}
		orig, err := testset.Read(vf)
		vf.Close()
		if err != nil {
			log.Fatal(err)
		}
		if !orig.Compatible(ts) {
			log.Fatal("verification FAILED: decoded data does not preserve the original's specified bits")
		}
		fmt.Fprintln(os.Stderr, "verification OK: all specified bits preserved")
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := ts.Write(w); err != nil {
		log.Fatal(err)
	}
}

// runStream expands a chunked stream container pattern-by-pattern at
// O(chunk) memory: the textual output carries a streaming ("width *")
// header, and -verify reads the original incrementally too, so nothing
// is ever buffered whole.
func runStream(r io.Reader, out, verify string) {
	sr, err := tcomp.NewStreamReader(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "container: codec %s, chunked stream, width %d, %d patterns/chunk\n",
		sr.Codec(), sr.Width(), sr.ChunkPatterns())

	var origSc *testset.Scanner
	if verify != "" {
		vf, err := os.Open(verify)
		if err != nil {
			log.Fatal(err)
		}
		defer vf.Close()
		if origSc, err = testset.NewScanner(bufio.NewReader(vf)); err != nil {
			log.Fatal(err)
		}
		if origSc.Width() != sr.Width() {
			log.Fatalf("verification FAILED: original width %d, container width %d", origSc.Width(), sr.Width())
		}
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	pw, err := testset.NewPatternWriter(w, sr.Width())
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for {
		v, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if origSc != nil {
			o, err := origSc.Next()
			if err != nil {
				log.Fatalf("verification FAILED: original ended at pattern %d: %v", n, err)
			}
			if !o.Subsumes(v) {
				log.Fatalf("verification FAILED: pattern %d does not preserve the original's specified bits", n)
			}
		}
		if err := pw.WritePattern(v); err != nil {
			log.Fatal(err)
		}
		n++
	}
	if err := pw.Close(); err != nil {
		log.Fatal(err)
	}
	if origSc != nil {
		if _, err := origSc.Next(); err != io.EOF {
			log.Fatalf("verification FAILED: original has more than %d patterns", n)
		}
		fmt.Fprintln(os.Stderr, "verification OK: all specified bits preserved")
	}
	fmt.Fprintf(os.Stderr, "expanded %d patterns\n", n)
}
