// Command tdecompress expands a compressed container back into a fully
// specified test-set file and optionally verifies it against the
// original. The compression method is auto-detected from the container
// header — every registered codec (ea, 9c, 9chc, golomb, fdr, rl,
// selhuff) round-trips, and legacy v1 block-codec files remain readable.
//
// Usage:
//
//	tdecompress -in tests.tcmp -out expanded.txt [-verify tests.txt]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	tcomp "repro"
	"repro/internal/container"
	"repro/internal/decoder"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tdecompress: ")
	var (
		in     = flag.String("in", "", "input container file")
		out    = flag.String("out", "", "output test-set file (default stdout)")
		verify = flag.String("verify", "", "original test-set file to verify against")
		fsm    = flag.Bool("fsm", false, "decode through the hardware FSM model and report cycles (block codecs only)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	art, err := tcomp.OpenFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "container: codec %s, %d patterns x %d inputs, %d payload bits\n",
		art.Codec, art.Patterns, art.Width, art.NBits)

	var ts *testset.TestSet
	if *fsm {
		// The hardware decoder model exists for the block codecs; their
		// artifacts carry the MV table and codeword list as the
		// parameter blob.
		set, code, err := container.DecodeBlockParams(art.Params)
		if err != nil {
			log.Fatalf("-fsm requires a block-codec container (ea/9c/9chc): %v", err)
		}
		dec, err := decoder.New(set, code)
		if err != nil {
			log.Fatal(err)
		}
		total := art.Width * art.Patterns
		nblocks := (total + set.K - 1) / set.K
		blocks, st, err := dec.Run(art.BitReader(), nblocks)
		if err != nil {
			log.Fatal(err)
		}
		area := dec.Area()
		fmt.Fprintf(os.Stderr, "fsm: %d blocks, %d input bits, %d cycles, %d states, %.0f GE\n",
			st.Blocks, st.InputBits, st.Cycles, area.States, area.GateEquivalents)
		flat := tritvec.Concat(blocks...).Slice(0, total)
		ts, err = testset.FromFlat(flat, art.Width)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		ts, err = tcomp.Decompress(art)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *verify != "" {
		vf, err := os.Open(*verify)
		if err != nil {
			log.Fatal(err)
		}
		orig, err := testset.Read(vf)
		vf.Close()
		if err != nil {
			log.Fatal(err)
		}
		if !orig.Compatible(ts) {
			log.Fatal("verification FAILED: decoded data does not preserve the original's specified bits")
		}
		fmt.Fprintln(os.Stderr, "verification OK: all specified bits preserved")
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := ts.Write(w); err != nil {
		log.Fatal(err)
	}
}
