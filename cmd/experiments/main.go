// Command experiments regenerates the paper's Table 1 and Table 2, plus
// the (K,L) sweep, ablations, and the full codec-registry comparison,
// printing paper-vs-measured rows.
//
// Usage:
//
//	experiments -table 1                 # quick (scaled) Table 1
//	experiments -table 2 -maxbits 50000
//	experiments -table 1 -full           # paper-scale parameters (slow)
//	experiments -table 1 -circuits s349,s298
//	experiments -codecs s641             # every registered codec on one circuit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/iscasgen"
	"repro/internal/tables"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		table     = flag.Int("table", 1, "paper table to regenerate (1 = stuck-at, 2 = path delay)")
		full      = flag.Bool("full", false, "paper-scale parameters (full sizes, 5 runs, 500 no-improvement)")
		maxBits   = flag.Int("maxbits", 0, "override test-set size cap (0 = config default)")
		seed      = flag.Int64("seed", 1, "random seed")
		runs      = flag.Int("runs", 0, "override EA run count")
		circuits  = flag.String("circuits", "", "comma-separated circuit subset")
		sweep     = flag.Bool("sweep", true, "compute the EA-Best sweep column (table 1)")
		ablations = flag.String("ablations", "", "run the DESIGN.md §5 ablations on the named circuit instead of a table")
		codecs    = flag.String("codecs", "", "compress the named circuit with every registered codec instead of a table")
		streamCmp = flag.String("stream", "", "compare buffered vs chunked streaming compression for every codec on the named circuit")
		chunk     = flag.Int("chunk", 0, "patterns per stream chunk for -stream (0 = streaming default)")
		converge  = flag.String("convergence", "", "dump the EA best-fitness-per-generation series for the named circuit (Figure 1 data)")
		workers   = flag.Int("workers", 0, "parallel circuit jobs on the pipeline engine (0 = one per CPU, 1 = serial; results are identical at any setting)")
	)
	flag.Parse()

	var cfg tables.Config
	if *full {
		cfg = tables.FullConfig(*seed)
	} else {
		cfg = tables.QuickConfig(*seed)
	}
	if *maxBits > 0 {
		cfg.MaxBits = *maxBits
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	cfg.Sweep = *sweep
	cfg.Workers = *workers
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}

	if *converge != "" {
		m, err := iscasgen.Find(*converge, iscasgen.StuckAt)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: cfg.MaxBits, Seed: cfg.Seed})
		if err != nil {
			log.Fatal(err)
		}
		p := core.DefaultParams(cfg.Seed)
		p.Runs = 1
		p.EA.MaxGenerations = cfg.Generations
		p.EA.MaxNoImprove = cfg.NoImprove
		res, err := core.Compress(ts, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# EA convergence on %s (K=%d, L=%d, %d bits)\n", m.Name, p.K, p.L, ts.TotalBits())
		fmt.Println("# generation  best_rate%  mean_rate%  evals")
		for _, g := range res.Runs[0].History {
			fmt.Printf("%5d  %8.3f  %8.3f  %6d\n", g.Generation, g.Best, g.Mean, g.Evals)
		}
		return
	}

	if *codecs != "" {
		m, err := iscasgen.Find(*codecs, iscasgen.StuckAt)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: cfg.MaxBits, Seed: cfg.Seed})
		if err != nil {
			log.Fatal(err)
		}
		rates, err := tables.CodecRates(context.Background(), ts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(rates, func(i, j int) bool { return rates[i].Rate > rates[j].Rate })
		fmt.Printf("All codecs on %s (%d bits, seed %d):\n\n", m.Name, ts.TotalBits(), cfg.Seed)
		fmt.Printf("%-10s %8s %14s\n", "codec", "rate", "compressed")
		fmt.Println(strings.Repeat("-", 34))
		for _, r := range rates {
			fmt.Printf("%-10s %7.1f%% %13db\n", r.Codec, r.Rate, r.CompressedBits)
		}
		return
	}

	if *streamCmp != "" {
		m, err := iscasgen.Find(*streamCmp, iscasgen.StuckAt)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: cfg.MaxBits, Seed: cfg.Seed})
		if err != nil {
			log.Fatal(err)
		}
		rates, err := tables.StreamRates(context.Background(), ts, cfg, *chunk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Buffered vs streaming on %s (%d bits, seed %d):\n\n", m.Name, ts.TotalBits(), cfg.Seed)
		tables.FormatStreamRates(os.Stdout, rates)
		return
	}

	if *ablations != "" {
		abl, err := tables.RunAblations(*ablations, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Ablations on %s (seed %d, maxbits %d):\n\n", *ablations, cfg.Seed, cfg.MaxBits)
		for _, a := range abl {
			fmt.Println(a)
		}
		return
	}

	var rows []tables.Row
	var err error
	var kind iscasgen.Kind
	switch *table {
	case 1:
		kind = iscasgen.StuckAt
		rows, err = tables.RunTable1(cfg)
	case 2:
		kind = iscasgen.PathDelay
		rows, err = tables.RunTable2(cfg)
	default:
		log.Fatalf("unknown table %d", *table)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table %d (%s test sets) — measured | paper\n", *table, kind)
	fmt.Print(tables.Format(rows, kind))
	if bad := tables.ShapeCheck(rows); len(bad) > 0 {
		fmt.Println("\nSHAPE CHECK VIOLATIONS:")
		for _, b := range bad {
			fmt.Println("  -", b)
		}
	} else {
		fmt.Println("\nshape check OK: 9C <= 9C+HC < EA, second EA column consistent")
	}
}
