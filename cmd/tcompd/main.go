// Command tcompd is the test-data compression daemon: a long-running
// HTTP service that multiplexes many clients over the codec registry,
// the chunked stream container, and the shared pipeline worker budget.
// It is the serving face of the engine — the one-shot CLIs (tcompress,
// tdecompress) delegate to it with -remote.
//
// Usage:
//
//	tcompd -addr :8077 -workers 8 -cache-bytes 268435456
//
// Endpoints: POST /v1/compress, POST /v1/decompress, GET /v1/codecs,
// GET /healthz, GET /metrics. See the README's Serving section for curl
// examples.
//
// On SIGTERM or SIGINT the daemon drains gracefully: /healthz flips to
// 503 so load balancers stop routing here, the listener stops accepting
// new connections, every in-flight request runs to completion (bounded
// by -drain-timeout), and the final metrics snapshot is flushed to
// stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcompd: ")
	var (
		addr          = flag.String("addr", ":8077", "listen address (host:port; port 0 picks an ephemeral port)")
		workers       = flag.Int("workers", 0, "shared compression worker budget (0 = one per CPU); concurrent requests queue for these tokens instead of oversubscribing")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "content-addressed result cache capacity in bytes (0 disables)")
		cacheInputCap = flag.Int64("cache-input-cap", 8<<20, "largest canonical input eligible for caching; bigger submissions stream through uncached")
		maxBody       = flag.Int64("max-body", 1<<30, "request body cap in bytes")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		portFile      = flag.String("portfile", "", "write the bound address to this file once listening (for smoke tests and supervisors)")
	)
	flag.Parse()

	s := serve.New(serve.Config{
		Workers:         *workers,
		CacheBytes:      *cacheBytes,
		CacheInputBytes: *cacheInputCap,
		MaxBodyBytes:    *maxBody,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (workers %d, cache %d MiB)",
		ln.Addr(), s.WorkerBudget(), *cacheBytes>>20)
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Serve until SIGTERM/SIGINT, then drain: stop accepting, let
	// in-flight requests finish, flush metrics.
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		log.Printf("draining (waiting up to %v for in-flight requests)", *drainTimeout)
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-idle
	fmt.Fprintln(os.Stderr, s.Metrics().String())
	log.Print("drained; bye")
}
