// Command tcompd is the test-data compression daemon: a long-running
// HTTP service that multiplexes many clients over the codec registry,
// the chunked stream container, and the shared pipeline worker budget.
// It is the serving face of the engine — the one-shot CLIs (tcompress,
// tdecompress) delegate to it with -remote.
//
// Usage:
//
//	tcompd -addr :8077 -workers 8 -cache-bytes 268435456
//	tcompd -addr :8077 -store-dir /var/lib/tcompd  # durable async jobs
//	tcompd -config /etc/tcompd.json -log-format json
//
// Endpoints: POST /v1/compress, POST /v1/decompress, GET /v1/codecs,
// POST/GET /v1/jobs (async job API), POST/GET /v1/flows (hardware-test
// flow: circuit → ATPG → codec race → container + Verilog decoder),
// GET /v1/benchmarks (the ISCAS-style registry), GET /healthz,
// GET /metrics (JSON snapshot), GET /metrics/prometheus (text
// exposition). See the README's Serving, Test-flow service, and
// Observability sections for curl examples.
//
// Every setting resolves through one layered config: a command-line
// flag beats its TCOMPD_* environment variable (-cache-bytes →
// TCOMPD_CACHE_BYTES), which beats the same key in the -config JSON
// file, which beats the built-in default. A typoed config-file key
// fails startup instead of silently doing nothing.
//
// With -store-dir set, async job artifacts live in a content-addressed
// on-disk store and job records in a journal next to it, so submitted
// work and finished results survive a daemon restart. A background
// sweeper applies -artifact-ttl and -artifact-quota and reclaims
// staging files a crashed process left behind.
//
// On SIGTERM or SIGINT the daemon drains gracefully: /healthz flips to
// 503 so load balancers stop routing here, the listener stops accepting
// new connections, every in-flight request runs to completion (bounded
// by -drain-timeout), running jobs are parked back to pending in the
// journal, and the final metrics snapshot is flushed to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

// run is main with an exit code, so deferred cleanup actually runs
// (os.Exit in main would skip it).
func run() int {
	var (
		addr          = flag.String("addr", ":8077", "listen address (host:port; port 0 picks an ephemeral port)")
		workers       = flag.Int("workers", 0, "shared compression worker budget (0 = one per CPU); concurrent requests and background jobs queue for these tokens instead of oversubscribing")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "content-addressed result cache capacity in bytes (0 disables)")
		cacheInputCap = flag.Int64("cache-input-cap", 8<<20, "largest canonical input eligible for caching; bigger submissions stream through uncached")
		maxBody       = flag.Int64("max-body", 1<<30, "request body cap in bytes")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		portFile      = flag.String("portfile", "", "write the bound address to this file once listening (for smoke tests and supervisors)")

		storeDir      = flag.String("store-dir", "", "artifact store root for async jobs; empty keeps artifacts and job records in memory only")
		artifactTTL   = flag.Duration("artifact-ttl", 24*time.Hour, "delete artifacts unused for this long (0 disables TTL expiry)")
		artifactQuota = flag.Int64("artifact-quota", 4<<30, "artifact store size bound in bytes; least-recently-used blobs are evicted above it (0 disables)")
		gcInterval    = flag.Duration("gc-interval", 5*time.Minute, "how often the artifact GC sweeper runs")
		maxJobs       = flag.Int("max-jobs", 64, "async job backlog bound; submissions beyond it answer 429 queue_full")
		jobWorkers    = flag.Int("job-workers", 2, "concurrently running background jobs (they also hold shared worker tokens while running)")

		traceExporter = flag.String("trace-exporter", "none", "span exporter: none, otlp (OTLP/HTTP JSON to -trace-endpoint), stdout (JSONL), or file (JSONL to -trace-endpoint path)")
		traceEndpoint = flag.String("trace-endpoint", "http://localhost:4318/v1/traces", "collector URL for -trace-exporter otlp, or output path for -trace-exporter file")
		traceSample   = flag.Float64("trace-sample", 1, "fraction of new traces to sample in [0,1]; inbound traceparent sampling decisions are always honored")

		_         = flag.String("config", "", "JSON config file; flags and TCOMPD_* env vars override its settings")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		pprofOn   = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/ (off by default: profiles expose internals)")
	)
	if err := obs.LoadFlags(flag.CommandLine, os.Args[1:], "TCOMPD_", os.LookupEnv, "config"); err != nil {
		fmt.Fprintln(os.Stderr, "tcompd:", err)
		return 2
	}

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcompd:", err)
		return 2
	}
	slog.SetDefault(logger)

	tracer, err := newTracer(*traceExporter, *traceEndpoint, *traceSample)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcompd:", err)
		return 2
	}

	cfg := serve.Config{
		Workers:         *workers,
		CacheBytes:      *cacheBytes,
		CacheInputBytes: *cacheInputCap,
		MaxBodyBytes:    *maxBody,
		MaxQueuedJobs:   *maxJobs,
		JobWorkers:      *jobWorkers,
		Logger:          logger,
		Tracer:          tracer,
	}
	var store *artifact.DiskStore
	if *storeDir != "" {
		store, err = artifact.NewDiskStore(filepath.Join(*storeDir, "artifacts"))
		if err != nil {
			logger.Error("opening artifact store", slog.Any("error", err))
			return 1
		}
		cfg.JobStore = store
		cfg.JobDir = filepath.Join(*storeDir, "jobs")
	}
	s, err := serve.New(cfg)
	if err != nil {
		logger.Error("starting server", slog.Any("error", err))
		return 1
	}

	handler := s.Handler()
	if *pprofOn {
		// The service mux is private, so pprof is mounted here explicitly
		// rather than through the package's DefaultServeMux side effect —
		// absent the flag, no profiling endpoint exists at all.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The artifact GC sweeper: TTL first, then the LRU quota pass, then
	// orphaned staging files. Only meaningful for the durable store — the
	// in-memory store dies with the process anyway.
	gcStop := make(chan struct{})
	if store != nil && *gcInterval > 0 {
		go func() {
			t := time.NewTicker(*gcInterval)
			defer t.Stop()
			for {
				select {
				case <-gcStop:
					return
				case now := <-t.C:
					st := store.Sweep(now, *artifactTTL, *artifactQuota)
					if st.Expired+st.Evicted+st.TmpRemoved > 0 {
						logger.Info("artifact gc",
							slog.Int("expired", st.Expired),
							slog.Int("evicted", st.Evicted),
							slog.Int("tmp_removed", st.TmpRemoved),
							slog.Int64("freed_bytes", st.FreedBytes),
							slog.Int("blobs", store.Len()),
							slog.Int64("bytes", store.Bytes()))
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listening", slog.String("addr", *addr), slog.Any("error", err))
		return 1
	}
	logger.Info("listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", s.WorkerBudget()),
		slog.Int64("cache_bytes", *cacheBytes),
		slog.String("store_dir", *storeDir))
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("writing portfile", slog.Any("error", err))
			return 1
		}
	}

	// Serve until SIGTERM/SIGINT, then drain: stop accepting, let
	// in-flight requests finish, park running jobs, flush metrics.
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		logger.Info("draining", slog.Duration("timeout", *drainTimeout))
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", slog.Any("error", err))
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serving", slog.Any("error", err))
		return 1
	}
	<-idle
	close(gcStop)
	if err := s.Close(); err != nil {
		logger.Warn("stopping job manager", slog.Any("error", err))
	}
	// Flush buffered spans after the last request and job have ended,
	// bounded so a dead collector cannot hold the shutdown hostage.
	flushCtx, cancelFlush := context.WithTimeout(context.Background(), 5*time.Second)
	if err := tracer.Shutdown(flushCtx); err != nil {
		logger.Warn("trace exporter flush incomplete", slog.Any("error", err))
	}
	cancelFlush()
	fmt.Fprintln(os.Stderr, s.Metrics().String())
	logger.Info("drained; bye")
	return 0
}

// newTracer builds the span pipeline from the -trace-* settings. The
// exporter selects the sink; sample is the ratio for traces this daemon
// roots itself (inbound traceparent decisions always win).
func newTracer(exporter, endpoint string, sample float64) (*obs.Tracer, error) {
	switch exporter {
	case "", "none":
		return nil, nil
	case "otlp":
		return obs.NewTracer(obs.NewOTLPExporter(obs.OTLPConfig{Endpoint: endpoint}), sample), nil
	case "stdout":
		// Spans go to stdout, logs to stderr: the two streams stay
		// separable under a supervisor.
		return obs.NewTracer(obs.NewWriterExporter(os.Stdout), sample), nil
	case "file":
		f, err := os.OpenFile(endpoint, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("opening trace output file: %w", err)
		}
		return obs.NewTracer(obs.NewWriterExporter(f), sample), nil
	default:
		return nil, fmt.Errorf("unknown -trace-exporter %q (none, otlp, stdout, or file)", exporter)
	}
}

// newLogger builds the daemon's structured logger from the -log-level
// and -log-format settings.
func newLogger(level, format string) (*slog.Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(os.Stderr, lv, format)
}
