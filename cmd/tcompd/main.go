// Command tcompd is the test-data compression daemon: a long-running
// HTTP service that multiplexes many clients over the codec registry,
// the chunked stream container, and the shared pipeline worker budget.
// It is the serving face of the engine — the one-shot CLIs (tcompress,
// tdecompress) delegate to it with -remote.
//
// Usage:
//
//	tcompd -addr :8077 -workers 8 -cache-bytes 268435456
//	tcompd -addr :8077 -store-dir /var/lib/tcompd  # durable async jobs
//
// Endpoints: POST /v1/compress, POST /v1/decompress, GET /v1/codecs,
// POST/GET /v1/jobs (async job API), GET /healthz, GET /metrics. See
// the README's Serving and Async jobs sections for curl examples.
//
// With -store-dir set, async job artifacts live in a content-addressed
// on-disk store and job records in a journal next to it, so submitted
// work and finished results survive a daemon restart. A background
// sweeper applies -artifact-ttl and -artifact-quota.
//
// On SIGTERM or SIGINT the daemon drains gracefully: /healthz flips to
// 503 so load balancers stop routing here, the listener stops accepting
// new connections, every in-flight request runs to completion (bounded
// by -drain-timeout), running jobs are parked back to pending in the
// journal, and the final metrics snapshot is flushed to stderr.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcompd: ")
	var (
		addr          = flag.String("addr", ":8077", "listen address (host:port; port 0 picks an ephemeral port)")
		workers       = flag.Int("workers", 0, "shared compression worker budget (0 = one per CPU); concurrent requests and background jobs queue for these tokens instead of oversubscribing")
		cacheBytes    = flag.Int64("cache-bytes", 256<<20, "content-addressed result cache capacity in bytes (0 disables)")
		cacheInputCap = flag.Int64("cache-input-cap", 8<<20, "largest canonical input eligible for caching; bigger submissions stream through uncached")
		maxBody       = flag.Int64("max-body", 1<<30, "request body cap in bytes")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		portFile      = flag.String("portfile", "", "write the bound address to this file once listening (for smoke tests and supervisors)")

		storeDir      = flag.String("store-dir", "", "artifact store root for async jobs; empty keeps artifacts and job records in memory only")
		artifactTTL   = flag.Duration("artifact-ttl", 24*time.Hour, "delete artifacts unused for this long (0 disables TTL expiry)")
		artifactQuota = flag.Int64("artifact-quota", 4<<30, "artifact store size bound in bytes; least-recently-used blobs are evicted above it (0 disables)")
		gcInterval    = flag.Duration("gc-interval", 5*time.Minute, "how often the artifact GC sweeper runs")
		maxJobs       = flag.Int("max-jobs", 64, "async job backlog bound; submissions beyond it answer 429 queue_full")
		jobWorkers    = flag.Int("job-workers", 2, "concurrently running background jobs (they also hold shared worker tokens while running)")
	)
	flag.Parse()

	cfg := serve.Config{
		Workers:         *workers,
		CacheBytes:      *cacheBytes,
		CacheInputBytes: *cacheInputCap,
		MaxBodyBytes:    *maxBody,
		MaxQueuedJobs:   *maxJobs,
		JobWorkers:      *jobWorkers,
	}
	var store *artifact.DiskStore
	if *storeDir != "" {
		var err error
		store, err = artifact.NewDiskStore(filepath.Join(*storeDir, "artifacts"))
		if err != nil {
			log.Fatal(err)
		}
		cfg.JobStore = store
		cfg.JobDir = filepath.Join(*storeDir, "jobs")
	}
	s, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The artifact GC sweeper: TTL first, then the LRU quota pass. Only
	// meaningful for the durable store — the in-memory store dies with
	// the process anyway.
	gcStop := make(chan struct{})
	if store != nil && *gcInterval > 0 {
		go func() {
			t := time.NewTicker(*gcInterval)
			defer t.Stop()
			for {
				select {
				case <-gcStop:
					return
				case now := <-t.C:
					st := store.Sweep(now, *artifactTTL, *artifactQuota)
					if st.Expired+st.Evicted > 0 {
						log.Printf("artifact gc: expired %d, evicted %d, freed %d bytes (store now %d blobs / %d bytes)",
							st.Expired, st.Evicted, st.FreedBytes, store.Len(), store.Bytes())
					}
				}
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (workers %d, cache %d MiB, store %q)",
		ln.Addr(), s.WorkerBudget(), *cacheBytes>>20, *storeDir)
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Serve until SIGTERM/SIGINT, then drain: stop accepting, let
	// in-flight requests finish, park running jobs, flush metrics.
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		log.Printf("draining (waiting up to %v for in-flight requests)", *drainTimeout)
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-idle
	close(gcStop)
	if err := s.Close(); err != nil {
		log.Printf("stopping job manager: %v", err)
	}
	fmt.Fprintln(os.Stderr, s.Metrics().String())
	log.Print("drained; bye")
}
