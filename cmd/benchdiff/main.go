// Command benchdiff is the repo's benchmark ratchet tool. It converts
// `go test -bench` output into the committed tcomp-bench/1 baseline
// schema and compares two baselines, failing (exit 1) when any shared
// benchmark's ns/op regressed beyond the tolerance.
//
// Compare (the CI ratchet):
//
//	benchdiff -old BENCH_codec.json -new out.json -tolerance 8%
//
// prints a markdown delta table and exits 1 on regression, 0 otherwise
// (2 on usage or format errors). -markdown FILE additionally writes the
// table to FILE (CI appends it to the job summary).
//
// Parse fresh bench output into a baseline:
//
//	go test -run=NONE -bench=. ./... | benchdiff -parse - -out new.json
//
// Migrate a legacy baseline (the PR-5 files were raw `go test -json`
// event streams no comparison tool could read):
//
//	benchdiff -migrate BENCH_codec.json -out BENCH_codec.json
//
// benchdiff refuses to compare the legacy format, naming the migration
// command instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	var (
		oldPath   = flag.String("old", "", "baseline file (tcomp-bench/1 schema)")
		newPath   = flag.String("new", "", "candidate file to compare against -old")
		tolerance = flag.String("tolerance", "10%", "ns/op regression tolerance, e.g. 8% or 0.08")
		markdown  = flag.String("markdown", "", "also write the delta table to this file")
		parse     = flag.String("parse", "", "parse `go test -bench` text output from this file (- = stdin) into the schema")
		migrate   = flag.String("migrate", "", "migrate a raw `go test -json` event stream from this file (- = stdin) into the schema")
		outPath   = flag.String("out", "", "output path for -parse/-migrate (- or empty = stdout)")
	)
	flag.Parse()

	switch {
	case *parse != "" && *migrate != "":
		fatalUsage("-parse and -migrate are mutually exclusive")
	case *parse != "":
		convert(*parse, *outPath, benchfmt.Parse)
	case *migrate != "":
		convert(*migrate, *outPath, benchfmt.ParseTest2JSON)
	case *oldPath != "" && *newPath != "":
		compare(*oldPath, *newPath, *tolerance, *markdown)
	default:
		fatalUsage("need either -old/-new (compare), -parse (convert), or -migrate (legacy baselines)")
	}
}

func fatalUsage(msg string) {
	fmt.Fprintln(os.Stderr, "benchdiff:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

// convert runs one of the ingestion parsers and writes the schema file.
func convert(inPath, outPath string, parse func(io.Reader) (*benchfmt.File, error)) {
	in := os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	bf, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if outPath == "" || outPath == "-" {
		if err := bf.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := bf.WriteFile(outPath); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: wrote %d results to %s\n", len(bf.Results), outPath)
}

// parseTolerance accepts "8%" or "0.08".
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad tolerance %q (want e.g. 8%% or 0.08)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func compare(oldPath, newPath, tol, markdownPath string) {
	tolerance, err := parseTolerance(tol)
	if err != nil {
		fatal(err)
	}
	oldF, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		fatal(err)
	}
	newF, err := benchfmt.ReadFile(newPath)
	if err != nil {
		fatal(err)
	}
	deltas, regressed := benchfmt.Diff(oldF, newF, tolerance)
	if err := benchfmt.Markdown(os.Stdout, deltas, tolerance); err != nil {
		fatal(err)
	}
	if markdownPath != "" {
		f, err := os.Create(markdownPath)
		if err != nil {
			fatal(err)
		}
		if err := benchfmt.Markdown(f, deltas, tolerance); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION beyond %s tolerance (see table)\n", tol)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchdiff: ok, %d benchmarks within %s tolerance\n", len(deltas), tol)
}
