// Command atpggen generates test sets from gate-level circuits: stuck-at
// patterns with don't-cares (PODEM + X-maximization) or robust path-delay
// two-pattern tests.
//
// Usage:
//
//	atpggen -bench c17.bench -model stuckat -out tests.txt
//	atpggen -random 'inputs=10,gates=80,outputs=6,seed=3' -model pathdelay
//	atpggen -c17 -model stuckat -drop
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/delay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atpggen: ")
	var (
		benchPath = flag.String("bench", "", "input .bench netlist")
		useC17    = flag.Bool("c17", false, "use the built-in ISCAS-85 c17 circuit")
		random    = flag.String("random", "", "generate a random circuit: 'inputs=N,gates=N,outputs=N,seed=N'")
		model     = flag.String("model", "stuckat", "stuckat | pathdelay")
		out       = flag.String("out", "", "output test-set file (default stdout)")
		drop      = flag.Bool("drop", false, "enable fault dropping (compacted set)")
		noxmax    = flag.Bool("noxmax", false, "disable don't-care maximization")
		seed      = flag.Int64("seed", 1, "random seed")
		maxPaths  = flag.Int("maxpaths", 1000, "path enumeration cap (pathdelay)")
	)
	flag.Parse()

	var c *circuit.Circuit
	var err error
	switch {
	case *useC17:
		c = circuit.C17()
	case *benchPath != "":
		f, err2 := os.Open(*benchPath)
		if err2 != nil {
			log.Fatal(err2)
		}
		c, err = circuit.ParseBench(*benchPath, f)
		_ = f.Close() // read side; the parse error is the one that matters
		if err != nil {
			log.Fatal(err)
		}
	case *random != "":
		opt := circuit.RandomOptions{Inputs: 8, Gates: 50, Outputs: 4, Seed: *seed}
		for _, kv := range strings.Split(*random, ",") {
			var key string
			var val int
			if _, err := fmt.Sscanf(kv, "%s", &key); err != nil || !strings.Contains(kv, "=") {
				log.Fatalf("bad -random clause %q", kv)
			}
			parts := strings.SplitN(kv, "=", 2)
			if _, err := fmt.Sscanf(parts[1], "%d", &val); err != nil {
				log.Fatalf("bad -random clause %q", kv)
			}
			switch parts[0] {
			case "inputs":
				opt.Inputs = val
			case "gates":
				opt.Gates = val
			case "outputs":
				opt.Outputs = val
			case "seed":
				opt.Seed = int64(val)
			default:
				log.Fatalf("unknown -random key %q", parts[0])
			}
		}
		c, err = circuit.Random("random", opt)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("one of -bench, -c17, -random is required")
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}

	switch *model {
	case "stuckat":
		opt := atpg.DefaultOptions()
		opt.FaultDropping = *drop
		opt.XMaximize = !*noxmax
		opt.Seed = *seed
		res, err := atpg.Generate(c, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "stuck-at: %d faults, %d detected (%.1f%%), %d untestable, %d aborted, %d patterns, density %.3f\n",
			res.Faults, res.Detected, 100*res.Coverage(), res.Untestable, res.Aborted,
			res.Tests.NumPatterns(), res.Tests.CareDensity())
		if err := res.Tests.Write(w); err != nil {
			log.Fatal(err)
		}
	case "pathdelay":
		opt := delay.DefaultOptions()
		opt.MaxPaths = *maxPaths
		opt.XMaximize = !*noxmax
		opt.Seed = *seed
		res, err := delay.Generate(c, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "path-delay: %d path×dir attempts, %d robust (%.1f%%), %d patterns, density %.3f\n",
			res.Paths, res.Robust, 100*res.Coverage(),
			res.Tests.NumPatterns(), res.Tests.CareDensity())
		if err := res.Tests.Write(w); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown model %q", *model)
	}
}
