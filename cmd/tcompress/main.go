// Command tcompress compresses a test-set file with any registered
// codec and can serialize the result as a universal container that
// cmd/tdecompress expands back (auto-detecting the method).
//
// Usage:
//
//	tcompress -in tests.txt -out tests.tcmp -method ea -k 12 -l 64
//	tcompress -in tests.txt -out tests.tcmp -method golomb
//	tcompress -in tests.txt -method 9c -k 8 -stats
//	tcompress -stream -method fdr < tests.txt > tests.tcmp
//	tcompress -remote http://localhost:8077 -method golomb < tests.txt > tests.tcmp
//	tcompress -remote http://localhost:8077 -async -method golomb < tests.txt > tests.tcmp
//	tcompress -list
//
// With -remote the compression is delegated to a tcompd daemon: the
// textual input streams up, the chunked stream container (format v3)
// streams back, and the same -k/-l/-seed/... flags travel as query
// parameters. Repeat submissions hit the daemon's content-addressed
// result cache.
//
// Methods: every codec in the registry (ea, 9c, 9chc, golomb, fdr, rl,
// selhuff); all of them support container output.
//
// With -stream the textual test set is compressed pattern-by-pattern
// into a chunked stream container (format v3) at O(chunk) memory —
// stdin to stdout works as a pipe stage, and chunk compression runs on
// the pipeline worker pool without changing the output bytes. Expand
// with tdecompress (-stream for constant-memory expansion).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"

	tcomp "repro"
	"repro/internal/testset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcompress: ")
	var (
		in      = flag.String("in", "", "input test-set file (default stdin)")
		out     = flag.String("out", "", "output container file (any method)")
		method  = flag.String("method", "ea", "codec name: "+strings.Join(tcomp.Codecs(), " | "))
		list    = flag.Bool("list", false, "list registered codecs and exit")
		k       = flag.Int("k", 0, "input block length K (0 = codec default; ea 12, 9c/9chc/selhuff 8)")
		l       = flag.Int("l", 0, "number of matching vectors L (ea; 0 = default 64)")
		runs    = flag.Int("runs", 0, "independent EA runs (ea; 0 = default 5)")
		seed    = flag.Int64("seed", 1, "random seed")
		gens    = flag.Int("gens", 2000, "EA generation cap")
		noimp   = flag.Int("noimprove", 100, "EA no-improvement termination window")
		subsume = flag.Bool("subsume", false, "apply subsumption post-pass (ea)")
		m       = flag.Int("m", 0, "Golomb parameter M (golomb; 0 = pick best power of two)")
		d       = flag.Int("d", 0, "dictionary size D (selhuff; 0 = default 8)")
		b       = flag.Int("b", 0, "run-length counter width in bits (rl; 0 = default 4)")
		stats   = flag.Bool("stats", false, "print test-set statistics")
		workers = flag.Int("workers", 0, "parallel EA runs on the pipeline engine (0 = one per CPU, 1 = serial; results are identical at any setting)")
		stream  = flag.Bool("stream", false, "stream textual patterns through the chunked container format at O(chunk) memory (default stdin to stdout)")
		chunk   = flag.Int("chunk", 0, "patterns per stream chunk (0 = about 1 Mbit of original data per chunk)")
		remote  = flag.String("remote", "", "delegate compression to a tcompd daemon at this base URL (output is a chunked stream container)")
		async   = flag.Bool("async", false, "with -remote: submit as a background job, poll until done, then fetch the result (survives a daemon restart mid-run)")
	)
	flag.Parse()

	if *list {
		for _, name := range tcomp.Codecs() {
			fmt.Println(name)
		}
		return
	}

	codec, err := tcomp.Lookup(*method)
	if err != nil {
		log.Fatal(err)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	// The EA honors cancellation down to the pipeline engine, so Ctrl-C
	// aborts a long run cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := tcomp.DefaultEAParams(*seed)
	p.EA.MaxGenerations = *gens
	p.EA.MaxNoImprove = *noimp
	p.SubsumeOpt = *subsume
	opts := []tcomp.Option{
		tcomp.WithSeed(*seed),
		tcomp.WithWorkers(*workers),
		tcomp.WithEAParams(p),
	}
	if *k > 0 {
		opts = append(opts, tcomp.WithBlockLen(*k))
	}
	if *l > 0 {
		opts = append(opts, tcomp.WithMVCount(*l))
	}
	if *runs > 0 {
		opts = append(opts, tcomp.WithRuns(*runs))
	}
	if *m > 0 {
		opts = append(opts, tcomp.WithGolombM(*m))
	}
	if *d > 0 {
		opts = append(opts, tcomp.WithDictSize(*d))
	}
	if *b > 0 {
		opts = append(opts, tcomp.WithCounterWidth(*b))
	}
	if *chunk > 0 {
		opts = append(opts, tcomp.WithChunkPatterns(*chunk))
	}

	if *remote != "" {
		if *async {
			runAsync(ctx, *remote, r, *out, *method, opts)
		} else {
			runRemote(ctx, *remote, r, *out, *method, opts)
		}
		return
	}
	if *async {
		log.Fatal("-async needs -remote (it is a daemon job submission)")
	}

	if *stream {
		runStream(ctx, r, *out, *method, opts, *stats)
		return
	}

	ts, err := testset.ReadAuto(r)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Println(ts.Summary())
	}

	art, err := codec.Compress(ctx, ts, opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: rate %.2f%% (%d -> %d bits)\n",
		art.Codec, art.RatePercent(), art.OriginalBits, art.CompressedBits)
	if res, ok := art.Extra.(*tcomp.EAResult); ok {
		fmt.Printf("ea runs: average %.2f%%, best %.2f%% over %d runs\n",
			res.AverageRate, res.BestRate, len(res.Runs))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tcomp.Write(f, art); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (container v2, codec %s)\n", *out, art.Codec)
	}
}

// runStream compresses the textual test set on r pattern-by-pattern into
// a chunked stream container, without ever holding more than the
// in-flight chunks in memory. Diagnostics go to stderr because stdout is
// the default container sink.
func runStream(ctx context.Context, r io.Reader, out, method string, opts []tcomp.Option, stats bool) {
	sc, err := testset.NewScanner(r)
	if err != nil {
		log.Fatalf("-stream expects the textual test-set format: %v", err)
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	sw, err := tcomp.NewStreamWriter(ctx, w, method, sc.Width(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	specified := 0
	for {
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if stats {
			specified += v.CountSpecified()
		}
		if err := sw.WritePattern(v); err != nil {
			log.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		log.Fatal(err)
	}
	if stats {
		// The incremental twin of the buffered path's ts.Summary().
		s := testset.Stats{
			Width:     sc.Width(),
			Patterns:  sw.Patterns(),
			TotalBits: sw.OriginalBits(),
			Specified: specified,
		}
		if s.TotalBits > 0 {
			s.CareDensity = float64(s.Specified) / float64(s.TotalBits)
		}
		fmt.Fprintln(os.Stderr, s)
	}
	fmt.Fprintf(os.Stderr, "%s: rate %.2f%% (%d -> %d bits), %d patterns in %d chunks (chunked stream container)\n",
		method, sw.RatePercent(), sw.OriginalBits(), sw.CompressedBits(), sw.Patterns(), sw.Chunks())
}

// remoteHint appends the actionable next step implied by the daemon's
// error class: the typed sentinels distinguish "fix your input" from
// "retry elsewhere" from "report a daemon bug".
func remoteHint(err error) string {
	switch {
	case errors.Is(err, tcomp.ErrTooLarge):
		return fmt.Sprintf("%v (the test set exceeds the daemon's body cap; split it or raise tcompd -max-body)", err)
	case errors.Is(err, tcomp.ErrBadRequest):
		return fmt.Sprintf("%v (fix the request: bad parameter or test-set syntax)", err)
	case errors.Is(err, tcomp.ErrCorruptInput):
		return fmt.Sprintf("%v (the input could not be processed; check the test set)", err)
	case errors.Is(err, tcomp.ErrUnavailable):
		return fmt.Sprintf("%v (daemon draining or saturated; retry or target another instance)", err)
	case errors.Is(err, tcomp.ErrRemoteInternal):
		return fmt.Sprintf("%v (daemon bug, contained server-side; see the daemon log for the stack)", err)
	}
	return err.Error()
}

// runAsync submits the input as a daemon background job, polls until it
// reaches a terminal state, and fetches the result container. Unlike the
// synchronous path, the work survives a daemon restart mid-run: the
// daemon re-queues the job and this poll loop keeps waiting.
func runAsync(ctx context.Context, base string, r io.Reader, out, method string, opts []tcomp.Option) {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	c := tcomp.NewClient(base)
	j, err := c.SubmitCompressJob(ctx, method, r, opts...)
	if err != nil {
		if errors.Is(err, tcomp.ErrQueueFull) {
			log.Fatalf("%v (the daemon's job backlog is at capacity; retry later or raise tcompd -max-jobs)", err)
		}
		log.Fatal(remoteHint(err))
	}
	fmt.Fprintf(os.Stderr, "submitted job %s (%s)\n", j.ID, base)
	if j, err = c.WaitJob(ctx, j.ID); err != nil {
		log.Fatal(remoteHint(err))
	}
	if j.State != tcomp.JobDone {
		log.Fatalf("job %s ended %s: %s (%s)", j.ID, j.State, j.Error, j.ErrorCode)
	}
	stats, err := c.JobResult(ctx, j.ID, w)
	if err != nil {
		log.Fatal(remoteHint(err))
	}
	fmt.Fprintf(os.Stderr, "%s: rate %.2f%% (%d -> %d bits), %d patterns in %d chunks (job %s)\n",
		method, stats.RatePercent(), stats.OriginalBits, stats.CompressedBits, stats.Patterns, stats.Chunks, j.ID)
}

// runRemote streams the input through a tcompd daemon and writes the
// returned chunked stream container. Diagnostics (rate, cache state) go
// to stderr because stdout is the default container sink.
func runRemote(ctx context.Context, base string, r io.Reader, out, method string, opts []tcomp.Option) {
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	c := tcomp.NewClient(base)
	stats, err := c.Compress(ctx, method, r, w, opts...)
	if err != nil {
		log.Fatal(remoteHint(err))
	}
	cached := ""
	if stats.CacheHit {
		cached = ", served from cache"
	}
	fmt.Fprintf(os.Stderr, "%s: rate %.2f%% (%d -> %d bits), %d patterns in %d chunks (remote %s%s)\n",
		method, stats.RatePercent(), stats.OriginalBits, stats.CompressedBits, stats.Patterns, stats.Chunks, base, cached)
}
