// Command tcompress compresses a test-set file.
//
// Usage:
//
//	tcompress -in tests.txt -out tests.tcmp -method ea -k 12 -l 64
//	tcompress -in tests.txt -method 9c -k 8 -stats
//	tcompress -in tests.txt -method golomb        (rate report only)
//
// Methods: ea, 9c, 9chc (container output supported), golomb, fdr, rl,
// selhuff (rate report only).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/blockcode"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/fdr"
	"repro/internal/golomb"
	"repro/internal/ninec"
	"repro/internal/runlength"
	"repro/internal/selhuff"
	"repro/internal/testset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcompress: ")
	var (
		in      = flag.String("in", "", "input test-set file (default stdin)")
		out     = flag.String("out", "", "output container file (ea/9c/9chc only)")
		method  = flag.String("method", "ea", "ea | 9c | 9chc | golomb | fdr | rl | selhuff")
		k       = flag.Int("k", 12, "input block length K")
		l       = flag.Int("l", 64, "number of matching vectors L (ea)")
		runs    = flag.Int("runs", 5, "independent EA runs (ea)")
		seed    = flag.Int64("seed", 1, "random seed")
		gens    = flag.Int("gens", 2000, "EA generation cap")
		noimp   = flag.Int("noimprove", 100, "EA no-improvement termination window")
		subsume = flag.Bool("subsume", false, "apply subsumption post-pass (ea)")
		stats   = flag.Bool("stats", false, "print test-set statistics")
		workers = flag.Int("workers", 0, "parallel EA runs on the pipeline engine (0 = one per CPU, 1 = serial; results are identical at any setting)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	ts, err := testset.ReadAuto(r)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Println(ts.Summary())
	}

	var res *blockcode.Result
	var cm container.Method
	switch *method {
	case "ea":
		p := core.Params{
			K: *k, L: *l,
			EA:         ea.DefaultConfig(*seed),
			ForceAllU:  true,
			SubsumeOpt: *subsume,
			Runs:       *runs,
			Workers:    *workers,
		}
		p.EA.MaxGenerations = *gens
		p.EA.MaxNoImprove = *noimp
		eaRes, err := core.Compress(ts, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("EA: average rate %.2f%%, best rate %.2f%% over %d runs\n",
			eaRes.AverageRate, eaRes.BestRate, len(eaRes.Runs))
		res, cm = eaRes.Final, container.MethodEA
	case "9c":
		res9, err := ninec.Compress(ts, *k)
		if err != nil {
			log.Fatal(err)
		}
		res, cm = res9, container.Method9C
	case "9chc":
		res9, err := ninec.CompressHC(ts, *k)
		if err != nil {
			log.Fatal(err)
		}
		res, cm = res9, container.Method9CHC
	case "golomb":
		g, err := golomb.CompressBest(ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("golomb(M=%d): rate %.2f%% (%d -> %d bits)\n",
			g.M, g.RatePercent(), g.OriginalBits, g.CompressedBits)
		return
	case "fdr":
		fres, err := fdr.Compress(ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fdr: rate %.2f%% (%d -> %d bits)\n",
			fres.RatePercent(), fres.OriginalBits, fres.CompressedBits)
		return
	case "rl":
		rres, err := runlength.Compress(ts, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("runlength(b=4): rate %.2f%% (%d -> %d bits)\n",
			rres.RatePercent(), rres.OriginalBits, rres.CompressedBits)
		return
	case "selhuff":
		sres, err := selhuff.Compress(ts, *k, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("selhuff(K=%d,D=8): rate %.2f%% (%d -> %d bits)\n",
			*k, sres.RatePercent(), sres.OriginalBits, sres.CompressedBits)
		return
	default:
		log.Fatalf("unknown method %q", *method)
	}

	fmt.Printf("%s: rate %.2f%% (%d -> %d bits), %d MVs used, decoder codewords up to %d bits\n",
		cm, res.RatePercent(), res.OriginalBits, res.CompressedBits,
		res.Code.NumUsed(), maxLen(res.Code.Lengths))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := container.Write(f, cm, ts.Width, ts.NumPatterns(), res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func maxLen(lengths []int) int {
	m := 0
	for _, l := range lengths {
		if l > m {
			m = l
		}
	}
	return m
}
