// Command tcompflow runs the hardware-test pipeline end to end:
// circuit → ATPG → codec race → winner container + synthesizable
// Verilog decoder. It is the CLI face of the tcomp.TestFlow API and of
// a tcompd daemon's POST /v1/flows.
//
// Usage:
//
//	tcompflow -benchmark s298 -out-dir out
//	tcompflow -in circuit.bench -tests path-delay -out-dir out
//	tcompflow -benchmark s15850 -codecs ea,golomb -sample 64 -out-dir out
//	tcompflow -remote http://localhost:8077 -benchmark s298 -out-dir out
//	tcompflow -benchmarks
//
// Without -remote the whole flow runs in-process. With -remote it is
// submitted as an async flow job, polled to completion, and the report
// plus both artifacts are fetched back — the work survives a daemon
// restart mid-run. Either way -out-dir receives three files:
//
//	report.json    the flow report (coverage, per-codec race rates,
//	               stage timings, decoder area)
//	tests.tcmp     the winner codec's v3 chunked container
//	decoder.v      the synthesizable Verilog decoder (module
//	               tcomp_flow_decoder)
//
// -benchmarks lists the ISCAS-style registry: every valid -benchmark
// value with the paper's test-set dimensions and published rates.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	tcomp "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcompflow: ")
	var (
		benchmark = flag.String("benchmark", "", "registry circuit to generate (see -benchmarks)")
		in        = flag.String("in", "", ".bench netlist file for a caller-supplied circuit (mutually exclusive with -benchmark)")
		tests     = flag.String("tests", "", "test kind: stuck-at (default) or path-delay")
		sample    = flag.Int("sample", 0, "codec-race sample prefix in patterns (0 = default 128)")
		codecs    = flag.String("codecs", "", "comma-separated race entrants (empty = all registered codecs)")
		seed      = flag.Int64("seed", 1, "flow seed; every stage derives its own deterministic seed from it")
		workers   = flag.Int("workers", 0, "pipeline workers (0 = one per CPU; results are identical at any setting)")
		outDir    = flag.String("out-dir", "", "directory for report.json, tests.tcmp and decoder.v (created if missing)")
		list      = flag.Bool("benchmarks", false, "list the benchmark registry and exit")
		remote    = flag.String("remote", "", "run the flow on a tcompd daemon at this base URL instead of in-process")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		listBenchmarks(ctx, *remote)
		return
	}
	if (*benchmark == "") == (*in == "") {
		log.Fatal("need exactly one of -benchmark or -in (or -benchmarks to list circuits)")
	}

	var codecList []string
	if *codecs != "" {
		codecList = strings.Split(*codecs, ",")
	}

	var res *tcomp.FlowResult
	var artifacts map[string][]byte
	var err error
	if *remote != "" {
		res, artifacts, err = runRemote(ctx, *remote, *benchmark, *in, *tests, *sample, *seed, *workers, codecList)
	} else {
		res, artifacts, err = runLocal(ctx, *benchmark, *in, *tests, *sample, *seed, *workers, codecList)
	}
	if err != nil {
		log.Fatal(flowHint(err))
	}

	fmt.Printf("%s: %d inputs, %d gates; %s coverage %.2f%% over %d patterns\n",
		res.CircuitName, res.CircuitInputs, res.CircuitGates,
		res.Tests.Kind, res.Tests.CoveragePercent, res.Tests.Patterns)
	fmt.Printf("race winner %s at %.2f%% (%d -> %d bits); decoder from %s (%d states, %.0f gate equivalents)\n",
		res.Race.Winner, res.Container.RatePercent,
		res.Container.OriginalBits, res.Container.CompressedBits,
		res.Race.BlockWinner, res.Decoder.States, res.Decoder.GateEquivalents)
	for _, e := range res.Race.Entries {
		note := ""
		if e.Err != "" {
			note = " (failed: " + e.Err + ")"
		}
		fmt.Printf("  race %-8s %8.2f%%%s\n", e.Codec, e.RatePercent, note)
	}

	if *outDir != "" {
		writeOutputs(*outDir, res, artifacts)
	}
}

// runLocal executes the flow in-process through the public TestFlow API.
func runLocal(ctx context.Context, benchmark, in, tests string, sample int, seed int64, workers int, codecs []string) (*tcomp.FlowResult, map[string][]byte, error) {
	opts := []tcomp.FlowOption{tcomp.FlowSeed(seed), tcomp.FlowWorkers(workers)}
	if tests != "" {
		opts = append(opts, tcomp.FlowTests(tests))
	}
	if sample > 0 {
		opts = append(opts, tcomp.FlowSamplePatterns(sample))
	}
	if len(codecs) > 0 {
		opts = append(opts, tcomp.FlowCodecs(codecs...))
	}
	flow := tcomp.NewTestFlow(opts...)

	var c *tcomp.Circuit
	var err error
	if benchmark != "" {
		c, err = flow.GenerateCircuit(ctx, benchmark)
	} else {
		var f *os.File
		if f, err = os.Open(in); err == nil {
			c, err = flow.ParseCircuit(filepath.Base(in), f)
			f.Close()
		}
	}
	if err != nil {
		return nil, nil, err
	}
	res, err := flow.Run(ctx, c)
	if err != nil {
		return nil, nil, err
	}
	return res, map[string][]byte{
		"container": res.ContainerBytes,
		"verilog":   res.VerilogBytes,
	}, nil
}

// runRemote submits the flow as an async daemon job, waits for it, and
// fetches the report and both artifacts.
func runRemote(ctx context.Context, base, benchmark, in, tests string, sample int, seed int64, workers int, codecs []string) (*tcomp.FlowResult, map[string][]byte, error) {
	req := tcomp.FlowRequest{
		Benchmark: benchmark,
		Tests:     tests,
		Sample:    sample,
		Codecs:    codecs,
		Options:   []tcomp.Option{tcomp.WithSeed(seed), tcomp.WithWorkers(workers)},
	}
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		req.Netlist = f
	}
	c := tcomp.NewClient(base)
	j, err := c.SubmitFlow(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "submitted flow %s (%s)\n", j.ID, base)
	if j, err = c.WaitJob(ctx, j.ID); err != nil {
		return nil, nil, err
	}
	if j.State != tcomp.JobDone {
		return nil, nil, fmt.Errorf("flow %s ended %s: %s (%s)", j.ID, j.State, j.Error, j.ErrorCode)
	}
	rep, err := c.FlowReport(ctx, j.ID)
	if err != nil {
		return nil, nil, err
	}
	artifacts := map[string][]byte{}
	for _, name := range []string{"container", "verilog"} {
		var buf strings.Builder
		if _, err := c.FlowArtifact(ctx, j.ID, name, &buf); err != nil {
			return nil, nil, fmt.Errorf("fetching %s artifact: %w", name, err)
		}
		artifacts[name] = []byte(buf.String())
	}
	return &rep.FlowResult, artifacts, nil
}

// writeOutputs materializes the three flow products under dir.
func writeOutputs(dir string, res *tcomp.FlowResult, artifacts map[string][]byte) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	report, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	files := map[string][]byte{
		"report.json": append(report, '\n'),
		"tests.tcmp":  artifacts["container"],
		"decoder.v":   artifacts["verilog"],
	}
	for name, blob := range files {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, len(blob))
	}
}

// listBenchmarks prints the registry, from the daemon when -remote is
// set (proving the endpoint) and locally otherwise.
func listBenchmarks(ctx context.Context, remote string) {
	var rows []tcomp.Benchmark
	if remote != "" {
		var err error
		if rows, err = tcomp.NewClient(remote).Benchmarks(ctx); err != nil {
			log.Fatal(flowHint(err))
		}
	} else {
		rows = tcomp.Benchmarks()
	}
	w := os.Stdout
	fmt.Fprintf(w, "%-10s %-10s %8s %8s\n", "NAME", "KIND", "PATTERNS", "WIDTH")
	for _, b := range rows {
		fmt.Fprintf(w, "%-10s %-10s %8d %8d\n", b.Name, b.Kind, b.Patterns, b.Width)
	}
}

// flowHint appends the actionable next step implied by the error class.
func flowHint(err error) string {
	switch {
	case errors.Is(err, tcomp.ErrInvalidCircuit):
		return fmt.Sprintf("%v (fix the circuit: malformed .bench, over the flow size caps, or unknown benchmark — see -benchmarks)", err)
	case errors.Is(err, tcomp.ErrQueueFull):
		return fmt.Sprintf("%v (the daemon's job backlog is at capacity; retry later or raise tcompd -max-jobs)", err)
	case errors.Is(err, tcomp.ErrUnavailable):
		return fmt.Sprintf("%v (daemon draining or saturated; retry or target another instance)", err)
	case errors.Is(err, tcomp.ErrRemoteInternal):
		return fmt.Sprintf("%v (daemon bug, contained server-side; see the daemon log for the stack)", err)
	}
	return err.Error()
}
