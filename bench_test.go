// Benchmarks regenerating the paper's exhibits. One bench per table and
// figure (see DESIGN.md §3), plus ablations for the design choices called
// out in DESIGN.md §5 and micro-benchmarks for the hot paths.
//
// The per-iteration work uses scaled test sets (tables.QuickConfig) so the
// suite completes in minutes; `cmd/experiments` regenerates the complete
// 39+29-circuit tables and writes EXPERIMENTS.md-ready output.
//
// This file is an external test package (tcomp_test): internal/tables
// itself imports the repro facade for the codec registry, so an
// in-package test importing tables would form a cycle.
package tcomp_test

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/blockcode"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/huffman"
	"repro/internal/iscasgen"
	"repro/internal/ninec"
	"repro/internal/tables"
	"repro/internal/testset"
)

// benchConfig returns the scaled experiment configuration used by the
// table benches.
func benchConfig(circuits ...string) tables.Config {
	c := tables.QuickConfig(1)
	c.MaxBits = 12000
	c.Runs = 1
	c.Generations = 30
	c.NoImprove = 12
	c.Sweep = false
	c.Circuits = circuits
	return c
}

// BenchmarkTable1 regenerates Table 1 (stuck-at) on a representative
// circuit subset spanning the paper's rate spectrum, reporting the four
// column averages as metrics.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig("s349", "s298", "s386", "s444", "c432", "s838")
	var rows []tables.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tables.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	r9c, r9chc, rea, rea2 := tables.Averages(rows)
	b.ReportMetric(r9c, "avg9C%")
	b.ReportMetric(r9chc, "avg9CHC%")
	b.ReportMetric(rea, "avgEA%")
	b.ReportMetric(rea2, "avgEABest%")
}

// BenchmarkTable2 regenerates Table 2 (path delay) on a representative
// subset, reporting 9C, 9C+HC, EA1 (K=8,L=9) and EA2 (K=12,L=64) averages.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig("s27", "s298", "s382", "s526", "s1494")
	var rows []tables.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = tables.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	r9c, r9chc, ea1, ea2 := tables.Averages(rows)
	b.ReportMetric(r9c, "avg9C%")
	b.ReportMetric(r9chc, "avg9CHC%")
	b.ReportMetric(ea1, "avgEA1%")
	b.ReportMetric(ea2, "avgEA2%")
}

// BenchmarkEAConvergence exercises the Figure 1 loop and reports the
// best-fitness trajectory (initial vs final) — the data behind the
// paper's claim that the EA finds good MV sets.
func BenchmarkEAConvergence(b *testing.B) {
	m, err := iscasgen.Find("s444", iscasgen.StuckAt)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams(1)
	p.Runs = 1
	p.EA.MaxGenerations = 60
	p.EA.MaxNoImprove = 60
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = core.Compress(ts, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	hist := res.Runs[0].History
	b.ReportMetric(hist[0].Best, "gen0rate%")
	b.ReportMetric(hist[len(hist)-1].Best, "finalrate%")
	b.ReportMetric(float64(res.Runs[0].Evals), "evals")
}

// BenchmarkSweepKL backs the EA-Best column and the paper's stability
// remark: rates across a (K,L) grid stay within a narrow band.
func BenchmarkSweepKL(b *testing.B) {
	m, err := iscasgen.Find("s298", iscasgen.StuckAt)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := core.DefaultParams(2)
	base.Runs = 1
	base.EA.MaxGenerations = 25
	base.EA.MaxNoImprove = 10
	var best core.SweepPoint
	var points []core.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, best, err = core.Sweep(ts, base, []int{8, 12, 16}, []int{16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := best.Rate
	for _, p := range points {
		if p.Rate < worst {
			worst = p.Rate
		}
	}
	b.ReportMetric(best.Rate, "bestrate%")
	b.ReportMetric(best.Rate-worst, "spread%")
}

// benchmarkSweepWorkers times the (K,L) sweep at a fixed pipeline worker
// count. EA-internal parallelism is pinned to 1 so the comparison
// isolates job-level sharding; the work is bit-for-bit identical at
// every worker count (see core.SweepCtx), so Serial vs Parallel is a
// pure wall-clock comparison.
func benchmarkSweepWorkers(b *testing.B, workers int) {
	m, err := iscasgen.Find("s298", iscasgen.StuckAt)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := core.DefaultParams(2)
	base.Runs = 1
	base.EA.MaxGenerations = 25
	base.EA.MaxNoImprove = 10
	base.EA.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.SweepCtx(context.Background(), ts, base,
			[]int{8, 12, 16}, []int{16, 64}, workers)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the 1-worker baseline for the pipeline engine.
func BenchmarkSweepSerial(b *testing.B) { benchmarkSweepWorkers(b, 1) }

// BenchmarkSweepParallel shards the same sweep across all CPUs; on a
// multi-core machine it must beat BenchmarkSweepSerial.
func BenchmarkSweepParallel(b *testing.B) { benchmarkSweepWorkers(b, runtime.NumCPU()) }

// BenchmarkAblationSubsume measures the Section 3.3 subsumption post-pass
// (paper: "handling such cases explicitly could improve the compression
// rate").
func BenchmarkAblationSubsume(b *testing.B) {
	m, _ := iscasgen.Find("s510", iscasgen.StuckAt)
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams(3)
	p.Runs = 1
	p.EA.MaxGenerations = 30
	p.EA.MaxNoImprove = 12
	var plain, opt *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SubsumeOpt = false
		plain, err = core.Compress(ts, p)
		if err != nil {
			b.Fatal(err)
		}
		p.SubsumeOpt = true
		opt, err = core.Compress(ts, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plain.Final.RatePercent(), "plain%")
	b.ReportMetric(opt.Final.RatePercent(), "subsume%")
}

// BenchmarkAblationCoverOrder compares the paper's min-U covering order
// against encoding-length-aware covering on the 9C MV set.
func BenchmarkAblationCoverOrder(b *testing.B) {
	m, _ := iscasgen.Find("s641", iscasgen.StuckAt)
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	set, err := ninec.MVs(8)
	if err != nil {
		b.Fatal(err)
	}
	blocks := blockcode.Partition(ts, 8)
	code := ninec.FixedCode()
	var minU, minEnc int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		covU := set.Cover(blocks)
		minU = set.CompressedBits(covU, code.Lengths)
		covE := set.CoverByEncoding(blocks, code.Lengths)
		minEnc = set.CompressedBits(covE, code.Lengths)
	}
	b.ReportMetric(blockcode.Rate(ts.TotalBits(), minU), "minU%")
	b.ReportMetric(blockcode.Rate(ts.TotalBits(), minEnc), "minEnc%")
}

// BenchmarkAblationOperators compares uniform vs two-point crossover (the
// paper leaves operator tuning as future work).
func BenchmarkAblationOperators(b *testing.B) {
	m, _ := iscasgen.Find("s400", iscasgen.StuckAt)
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	run := func(kind ea.CrossoverKind) float64 {
		p := core.DefaultParams(5)
		p.Runs = 1
		p.EA.MaxGenerations = 30
		p.EA.MaxNoImprove = 12
		p.EA.Crossover = kind
		res, err := core.Compress(ts, p)
		if err != nil {
			b.Fatal(err)
		}
		return res.BestRate
	}
	var uni, two float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uni = run(ea.UniformCrossover)
		two = run(ea.TwoPointCrossover)
	}
	b.ReportMetric(uni, "uniform%")
	b.ReportMetric(two, "twopoint%")
}

// --- micro-benchmarks on the hot paths ---

func benchTestSet(b *testing.B, density float64) *testset.TestSet {
	b.Helper()
	return testset.Random(64, 200, density, rand.New(rand.NewSource(7)))
}

// BenchmarkCovering measures min-U covering throughput (the EA fitness
// inner loop).
func BenchmarkCovering(b *testing.B) {
	ts := benchTestSet(b, 0.3)
	blocks := blockcode.Partition(ts, 12)
	set := core.RandomMVSet(12, 64, 0.5, rand.New(rand.NewSource(8)))
	ms := blockcode.Dedup(blocks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := set.CoverMultiset(ms)
		if !cov.OK() {
			b.Fatal("uncovered")
		}
	}
}

// BenchmarkFitness measures one full fitness evaluation (cover + Huffman
// + size accounting).
func BenchmarkFitness(b *testing.B) {
	ts := benchTestSet(b, 0.3)
	blocks := blockcode.Partition(ts, 12)
	ms := blockcode.Dedup(blocks)
	set := core.RandomMVSet(12, 64, 0.5, rand.New(rand.NewSource(9)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := set.CoverMultiset(ms)
		code, err := huffman.Build(cov.Freqs)
		if err != nil {
			b.Fatal(err)
		}
		_ = set.CompressedBits(cov, code.Lengths)
	}
}

// Benchmark9C measures baseline 9C compression throughput.
func Benchmark9C(b *testing.B) {
	ts := benchTestSet(b, 0.25)
	b.SetBytes(int64(ts.TotalBits() / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ninec.Compress(ts, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuffmanBuild measures code construction at the paper's L=64.
func BenchmarkHuffmanBuild(b *testing.B) {
	r := rand.New(rand.NewSource(10))
	freqs := make([]int, 64)
	for i := range freqs {
		freqs[i] = r.Intn(1000)
	}
	freqs[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := huffman.Build(freqs); err != nil {
			b.Fatal(err)
		}
	}
}
