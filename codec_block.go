package tcomp

import (
	"context"
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// blockCodec adapts the three block-structured schemes — the paper's EA
// compressor and the 9C / 9C+HC baselines — to the Codec interface. They
// share one artifact shape: the parameter blob carries the MV table and
// codeword list (container.EncodeBlockParams), the payload the encoded
// block stream.
type blockCodec struct {
	name     string
	compress func(ctx context.Context, ts *TestSet, o options) (*blockcode.Result, any, error)
}

func (c *blockCodec) Name() string { return c.name }

func (c *blockCodec) Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error) {
	o := buildOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, extra, err := c.compress(ctx, ts, o)
	if err != nil {
		return nil, err
	}
	if res.Stream == nil {
		return nil, fmt.Errorf("tcomp: %s produced no encoded stream", c.name)
	}
	params, err := container.EncodeBlockParams(res.Set, res.Code)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Codec:          c.name,
		Width:          ts.Width,
		Patterns:       ts.NumPatterns(),
		OriginalBits:   res.OriginalBits,
		CompressedBits: res.CompressedBits,
		Params:         params,
		Payload:        res.Stream.Bytes(),
		NBits:          res.Stream.Len(),
		Extra:          extra,
	}, nil
}

func (c *blockCodec) Decompress(a *Artifact) (*TestSet, error) {
	set, code, err := container.DecodeBlockParams(a.Params)
	if err != nil {
		return nil, err
	}
	total := a.Width * a.Patterns
	nblocks := (total + set.K - 1) / set.K
	// Every block costs at least one payload bit (its codeword), so a
	// header demanding more blocks than the payload has bits describes a
	// decode that must run dry — reject it before allocating anything.
	// This also bounds the decoder's memory by the attacker's actual
	// upload rather than by two header integers.
	if nblocks > a.NBits {
		return nil, fmt.Errorf("tcomp: %s container declares %d blocks but ships %d payload bits: %w",
			c.name, nblocks, a.NBits, bitstream.ErrEOS)
	}
	blocks, err := blockcode.Decode(a.Source(), set, code, nblocks)
	if err != nil {
		return nil, err
	}
	flat := tritvec.Concat(blocks...).Slice(0, total)
	return testset.FromFlat(flat, a.Width)
}

// eaParamsFromOptions resolves the evolutionary compressor's
// configuration: WithEAParams as the base (else the paper defaults at
// the option seed), refined by the scalar options.
func eaParamsFromOptions(o options) EAParams {
	p := DefaultEAParams(o.seed)
	if o.ea != nil {
		p = *o.ea
		if o.seedSet {
			p.EA.Seed = o.seed
		}
	}
	if o.blockLen > 0 {
		p.K = o.blockLen
	}
	if o.mvCount > 0 {
		p.L = o.mvCount
	}
	if o.runs > 0 {
		p.Runs = o.runs
	}
	if o.workers != 0 {
		p.Workers = o.workers
	}
	return p
}

// blockLenOr returns the option block length or the codec default.
func blockLenOr(o options, def int) int {
	if o.blockLen > 0 {
		return o.blockLen
	}
	return def
}

func init() {
	Register(&blockCodec{
		name: "ea",
		compress: func(ctx context.Context, ts *TestSet, o options) (*blockcode.Result, any, error) {
			res, err := core.CompressCtx(ctx, ts, eaParamsFromOptions(o))
			if err != nil {
				return nil, nil, err
			}
			return res.Final, res, nil
		},
	})
	Register(&blockCodec{
		name: "9c",
		compress: func(ctx context.Context, ts *TestSet, o options) (*blockcode.Result, any, error) {
			res, err := ninec.Compress(ts, blockLenOr(o, 8))
			return res, nil, err
		},
	})
	Register(&blockCodec{
		name: "9chc",
		compress: func(ctx context.Context, ts *TestSet, o options) (*blockcode.Result, any, error) {
			res, err := ninec.CompressHC(ts, blockLenOr(o, 8))
			return res, nil, err
		},
	})
}
