package tcomp

// Adversarial decode conformance: no registered codec may panic on
// hostile input. Every codec is exercised through both decode paths —
// the buffered universal container (Open/Decompress) and the chunked
// stream (NewStreamReader) — against truncated containers, bit/byte
// corruption, hand-built artifacts with inconsistent dimensions, empty
// test sets, and fully X-laden inputs. A decode may succeed (corruption
// can land in don't-care fill bits) or fail with an error; it must
// never take the process down. This is the package-level half of the
// serving-core contract (the daemon-level half lives in
// internal/serve's FuzzServeAnyEndpoint).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/container"
	"repro/internal/testset"
)

// adversarialSet is small enough to mutate exhaustively but exercises
// every coder: mixed cares, long 0-runs, X-runs, and a ragged tail.
func adversarialSet(t *testing.T) *TestSet {
	t.Helper()
	ts, err := ParseTestSet(
		"0000000010XXXX01",
		"XXXXXXXXXXXXXXXX",
		"1111000011110000",
		"0X0X0X0X0X0X0X0X",
		"0000000000000000",
	)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// mustNotPanic runs f and converts a panic into a test failure naming
// the scenario, so one bad codec reports instead of aborting the suite.
func mustNotPanic(t *testing.T, scenario string, f func()) {
	t.Helper()
	defer func() {
		if p := recover(); p != nil {
			t.Errorf("%s panicked: %v", scenario, p)
		}
	}()
	f()
}

// TestAdversarialBufferedDecode mutates every codec's v2 container —
// every truncation length and every byte flipped — and requires the
// Open/Decompress path to return errors, never panic.
func TestAdversarialBufferedDecode(t *testing.T) {
	ts := adversarialSet(t)
	for _, name := range Codecs() {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		art, err := codec.Compress(context.Background(), ts, conformanceOpts(1)...)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, art); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		blob := buf.Bytes()

		decode := func(scenario string, b []byte) {
			mustNotPanic(t, scenario, func() {
				a, err := Open(bytes.NewReader(b))
				if err != nil {
					return // rejected at parse: exactly right
				}
				// A flipped dimension byte can declare a large-but-legal
				// decode (validation only rejects products beyond
				// MaxTotalBits); run-length decoders then legitimately
				// synthesize megabits of implied zeros. That is correct
				// behavior with nothing left to prove, so bound the work
				// to keep the exhaustive mutation sweep fast. The hostile
				// (over-cap) product class is pinned separately in
				// TestAdversarialArtifacts.
				if a.Width*a.Patterns > 1<<20 {
					return
				}
				_, _ = Decompress(a) // error or success; no panic
			})
		}
		for cut := 0; cut < len(blob); cut++ {
			decode(fmt.Sprintf("%s: truncated at %d", name, cut), blob[:cut])
		}
		for i := 0; i < len(blob); i++ {
			for _, flip := range []byte{0xFF, 0x80, 0x01} {
				mut := append([]byte(nil), blob...)
				mut[i] ^= flip
				decode(fmt.Sprintf("%s: byte %d ^ %#x", name, i, flip), mut)
			}
		}
	}
}

// TestAdversarialStreamingDecode does the same through the chunked v3
// path: truncations and byte flips of a stream container must error (or
// decode cleanly), never panic.
func TestAdversarialStreamingDecode(t *testing.T) {
	ts := adversarialSet(t)
	for _, name := range Codecs() {
		var buf bytes.Buffer
		sw, err := NewStreamWriter(context.Background(), &buf, name, ts.Width,
			append(conformanceOpts(1), WithChunkPatterns(2))...)
		if err != nil {
			t.Fatalf("%s: stream writer: %v", name, err)
		}
		if err := sw.WriteSet(ts); err != nil {
			t.Fatalf("%s: stream write: %v", name, err)
		}
		if err := sw.Close(); err != nil {
			t.Fatalf("%s: stream close: %v", name, err)
		}
		blob := buf.Bytes()

		decode := func(scenario string, b []byte) {
			mustNotPanic(t, scenario, func() {
				sr, err := NewStreamReader(bytes.NewReader(b))
				if err != nil {
					return
				}
				_, _ = sr.ReadAll()
			})
		}
		step := 1
		if len(blob) > 512 {
			step = len(blob) / 512
		}
		for cut := 0; cut < len(blob); cut += step {
			decode(fmt.Sprintf("%s: v3 truncated at %d", name, cut), blob[:cut])
		}
		for i := 0; i < len(blob); i += step {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 0xFF
			decode(fmt.Sprintf("%s: v3 byte %d flipped", name, i), mut)
		}
	}
}

// TestAdversarialArtifacts drives hand-built artifacts — the shapes a
// buggy caller or a hostile header could produce — through Decompress:
// inconsistent payload bit counts (the historical NewReader panic),
// hostile dimension products, zero patterns, and empty payloads.
func TestAdversarialArtifacts(t *testing.T) {
	ts := adversarialSet(t)
	for _, name := range Codecs() {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		art, err := codec.Compress(context.Background(), ts, conformanceOpts(1)...)
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}

		// NBits beyond the payload: previously bitstream.NewReader
		// panicked ("nbit exceeds buffer"); now the decode must fail
		// with an error wrapping bitstream.ErrBitCount.
		over := *art
		over.NBits = len(over.Payload)*8 + 64
		over.CompressedBits = over.NBits
		mustNotPanic(t, name+": oversized NBits", func() {
			if _, err := Decompress(&over); err == nil {
				t.Errorf("%s: decompressing an artifact with NBits beyond the payload succeeded", name)
			} else if !errors.Is(err, bitstream.ErrBitCount) && !errors.Is(err, bitstream.ErrEOS) {
				t.Errorf("%s: oversized NBits error %v does not wrap ErrBitCount/ErrEOS", name, err)
			}
		})

		// A header demanding more blocks than the payload has bits: the
		// block codecs must reject it before allocating block slots (a
		// K=1 blob with MaxTotalBits-scale dimensions would otherwise
		// reserve gigabytes of Vector headers from a tiny container).
		if name == "ea" || name == "9c" || name == "9chc" {
			short := *art
			short.Width, short.Patterns = 1<<15, 1<<15 // 2^30 bits, within MaxTotalBits
			mustNotPanic(t, name+": blocks beyond payload", func() {
				if _, err := Decompress(&short); err == nil {
					t.Errorf("%s: decode with %d blocks over %d payload bits succeeded", name, short.Width*short.Patterns, short.NBits)
				}
			})
		}

		// Hostile dimension product: must be rejected by validation, not
		// by the allocator.
		huge := *art
		huge.Width, huge.Patterns = container.MaxWidth, container.MaxPatterns
		mustNotPanic(t, name+": hostile dimensions", func() {
			if _, err := Decompress(&huge); err == nil {
				t.Errorf("%s: decompressing a %dx%d artifact succeeded", name, huge.Width, huge.Patterns)
			}
		})

		// Zero patterns with a leftover payload: decoders must not read
		// past what the dimensions imply.
		empty := *art
		empty.Patterns = 0
		mustNotPanic(t, name+": zero patterns", func() { _, _ = Decompress(&empty) })

		// Empty payload: everything is implied zeros or an EOS error.
		bare := *art
		bare.Payload, bare.NBits = nil, 0
		mustNotPanic(t, name+": empty payload", func() { _, _ = Decompress(&bare) })
	}
}

// TestAdversarialCompressInputs: compression of degenerate inputs — an
// empty test set, a fully unspecified one — returns an artifact or an
// error, never panics; successful artifacts round-trip losslessly.
func TestAdversarialCompressInputs(t *testing.T) {
	allX, err := ParseTestSet("XXXXXXXX", "XXXXXXXX")
	if err != nil {
		t.Fatal(err)
	}
	inputs := []struct {
		label string
		ts    *TestSet
	}{
		{"empty set", NewTestSet(8)},
		{"all-X set", allX},
	}
	for _, name := range Codecs() {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			scenario := fmt.Sprintf("%s: compress %s", name, in.label)
			mustNotPanic(t, scenario, func() {
				art, err := codec.Compress(context.Background(), in.ts, conformanceOpts(1)...)
				if err != nil {
					return // a clean rejection is acceptable
				}
				var buf bytes.Buffer
				if err := Write(&buf, art); err != nil {
					t.Errorf("%s: write: %v", scenario, err)
					return
				}
				back, err := Open(&buf)
				if err != nil {
					t.Errorf("%s: reopen: %v", scenario, err)
					return
				}
				dec, err := Decompress(back)
				if err != nil {
					t.Errorf("%s: decode: %v", scenario, err)
					return
				}
				if !VerifyLossless(in.ts, dec) {
					t.Errorf("%s: lossy round-trip", scenario)
				}
			})
		}
	}
}

// TestScannerRejectsHostileHeaders pins the parse boundary: absurd or
// malformed textual headers fail in NewScanner with an error instead of
// reaching the constructors that treat bad dimensions as programmer
// error.
func TestScannerRejectsHostileHeaders(t *testing.T) {
	for _, header := range []string{
		"0 1",
		"-4 1",
		"4 -1",
		"99999999999999999999 1", // overflows int
		"16777217 *",             // above MaxHeaderWidth
		"4 268435457",            // above MaxHeaderPatterns
		"x y",
	} {
		if _, err := testset.NewScanner(bytes.NewReader([]byte(header + "\n0101\n"))); err == nil {
			t.Errorf("header %q accepted, want error", header)
		}
	}
}
