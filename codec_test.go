package tcomp

// Registry semantics and the shared codec conformance suite: every
// registered scheme must round-trip through Compress → Write → Open →
// Decompress with VerifyLossless true.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/testset"
)

// sevenCodecs is the fixed set of schemes the paper compares; the
// registry must expose every one of them.
var sevenCodecs = []string{"9c", "9chc", "ea", "fdr", "golomb", "rl", "selhuff"}

// conformanceOpts is a single option list valid for every codec: each
// reads the knobs it understands and ignores the rest.
func conformanceOpts(seed int64) []Option {
	p := DefaultEAParams(seed)
	p.K, p.L = 8, 16
	p.Runs = 1
	p.EA.MaxGenerations = 20
	p.EA.MaxNoImprove = 10
	return []Option{WithSeed(seed), WithWorkers(2), WithEAParams(p)}
}

func TestCodecsListsAllSeven(t *testing.T) {
	names := Codecs()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Codecs() not sorted: %v", names)
		}
	}
	got := strings.Join(names, ",")
	for _, want := range sevenCodecs {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("codec %q not registered (have %s)", want, got)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("lzw"); err == nil {
		t.Fatal("Lookup of unregistered codec succeeded")
	}
}

type fakeCodec struct{ name string }

func (f fakeCodec) Name() string { return f.name }
func (f fakeCodec) Compress(context.Context, *TestSet, ...Option) (*Artifact, error) {
	return nil, fmt.Errorf("fakeCodec: not a real codec")
}
func (f fakeCodec) Decompress(*Artifact) (*TestSet, error) {
	return nil, fmt.Errorf("fakeCodec: not a real codec")
}

// unregisterForTest removes a test-only codec so the process-global
// registry stays clean for other tests iterating Codecs().
func unregisterForTest(t *testing.T, name string) {
	t.Cleanup(func() {
		registryMu.Lock()
		delete(registry, name)
		registryMu.Unlock()
	})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeCodec{name: "x-dup-test"})
	unregisterForTest(t, "x-dup-test")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeCodec{name: "x-dup-test"})
}

func TestRegisterInvalidPanics(t *testing.T) {
	for name, c := range map[string]Codec{"nil": nil, "empty-name": fakeCodec{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%s) did not panic", name)
				}
			}()
			Register(c)
		}()
	}
}

// TestCodecConformance is the shared suite: for every scheme, compress a
// deterministic test set, serialize as a universal container, reopen,
// decompress through the registry, and check losslessness. This is the
// acceptance property — all seven schemes round-trip through one API,
// including the four (golomb, fdr, rl, selhuff) the legacy container
// could not represent.
func TestCodecConformance(t *testing.T) {
	for _, name := range sevenCodecs {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			codec, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if codec.Name() != name {
				t.Fatalf("Name() = %q, registered as %q", codec.Name(), name)
			}
			for seed := int64(1); seed <= 3; seed++ {
				ts := testset.Random(16, 40, 0.3, rand.New(rand.NewSource(seed)))
				art, err := codec.Compress(context.Background(), ts, conformanceOpts(seed)...)
				if err != nil {
					t.Fatalf("seed %d: Compress: %v", seed, err)
				}
				if art.Codec != name {
					t.Fatalf("artifact names codec %q, want %q", art.Codec, name)
				}
				if art.Width != ts.Width || art.Patterns != ts.NumPatterns() {
					t.Fatalf("artifact dimensions %dx%d, want %dx%d",
						art.Width, art.Patterns, ts.Width, ts.NumPatterns())
				}

				// Direct decompression (no serialization).
				direct, err := codec.Decompress(art)
				if err != nil {
					t.Fatalf("seed %d: direct Decompress: %v", seed, err)
				}
				if !VerifyLossless(ts, direct) {
					t.Fatalf("seed %d: direct round trip lost specified bits", seed)
				}

				// Container round trip: Write → Open → Decompress.
				var buf bytes.Buffer
				if err := Write(&buf, art); err != nil {
					t.Fatalf("seed %d: Write: %v", seed, err)
				}
				art2, err := Open(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatalf("seed %d: Open: %v", seed, err)
				}
				if art2.Codec != name || art2.NBits != art.NBits ||
					!bytes.Equal(art2.Params, art.Params) || !bytes.Equal(art2.Payload, art.Payload) {
					t.Fatalf("seed %d: artifact changed across serialization", seed)
				}
				dec, err := Decompress(art2)
				if err != nil {
					t.Fatalf("seed %d: Decompress: %v", seed, err)
				}
				if !VerifyLossless(ts, dec) {
					t.Fatalf("seed %d: container round trip lost specified bits", seed)
				}
			}
		})
	}
}

func TestDecompressUnknownCodec(t *testing.T) {
	if _, err := Decompress(&Artifact{Codec: "lzw", Width: 4, Patterns: 1}); err == nil {
		t.Fatal("Decompress with unregistered codec succeeded")
	}
	if _, err := Decompress(nil); err == nil {
		t.Fatal("Decompress(nil) succeeded")
	}
}

func TestCompressContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := testset.Random(12, 10, 0.3, rand.New(rand.NewSource(1)))
	for _, name := range sevenCodecs {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codec.Compress(ctx, ts, conformanceOpts(1)...); err == nil {
			t.Errorf("%s: Compress with cancelled context succeeded", name)
		}
	}
}

// TestCodecOptionsRespected spot-checks that the per-codec knobs reach
// the underlying coders and are reflected in the serialized params.
func TestCodecOptionsRespected(t *testing.T) {
	ts := testset.Random(16, 30, 0.3, rand.New(rand.NewSource(9)))
	ctx := context.Background()

	golombC, _ := Lookup("golomb")
	art, err := golombC.Compress(ctx, ts, WithGolombM(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Params) != 4 || art.Params[3] != 16 {
		t.Fatalf("golomb params %v do not pin M=16", art.Params)
	}

	rlC, _ := Lookup("rl")
	art, err = rlC.Compress(ctx, ts, WithCounterWidth(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Params) != 1 || art.Params[0] != 6 {
		t.Fatalf("rl params %v do not pin b=6", art.Params)
	}

	shC, _ := Lookup("selhuff")
	art, err = shC.Compress(ctx, ts, WithBlockLen(4), WithDictSize(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Params) < 3 || art.Params[0] != 4 {
		t.Fatalf("selhuff params %v do not pin K=4", art.Params)
	}
	if dec, err := shC.Decompress(art); err != nil || !VerifyLossless(ts, dec) {
		t.Fatalf("selhuff K=4 D=3 round trip failed: %v", err)
	}

	nineC, _ := Lookup("9c")
	if _, err := nineC.Compress(ctx, ts, WithBlockLen(7)); err == nil {
		t.Fatal("9c accepted odd block length")
	}
}

// TestWithSeedOverridesEAParams pins the documented precedence: an
// explicit WithSeed wins over the seed inside WithEAParams, and omitting
// WithSeed leaves the WithEAParams seed untouched.
func TestWithSeedOverridesEAParams(t *testing.T) {
	ts := testset.Random(12, 20, 0.3, rand.New(rand.NewSource(2)))
	eaC, _ := Lookup("ea")
	quick := func(seed int64) EAParams {
		p := DefaultEAParams(seed)
		p.K, p.L = 6, 8
		p.Runs = 1
		p.EA.MaxGenerations = 10
		p.EA.MaxNoImprove = 5
		return p
	}
	run := func(opts ...Option) *Artifact {
		t.Helper()
		art, err := eaC.Compress(context.Background(), ts, append(opts, WithWorkers(1))...)
		if err != nil {
			t.Fatal(err)
		}
		return art
	}
	overridden := run(WithEAParams(quick(1)), WithSeed(99))
	direct := run(WithEAParams(quick(99)))
	if !bytes.Equal(overridden.Payload, direct.Payload) || !bytes.Equal(overridden.Params, direct.Params) {
		t.Fatal("WithSeed did not override the WithEAParams seed")
	}
	kept := run(WithEAParams(quick(99)))
	if !bytes.Equal(kept.Payload, direct.Payload) {
		t.Fatal("EA run not deterministic at fixed seed")
	}
}
