package tcomp

import (
	"fmt"
	"io"
	"os"

	"repro/internal/bitstream"
	"repro/internal/container"
)

// Artifact is the self-describing product of a Compress call: the codec
// name, the test-set dimensions, the codec's serialized parameters
// (e.g. the MV table and codeword list for block codecs, M for Golomb)
// and the encoded payload. It is the in-memory twin of the on-disk
// universal container (format v2) — Write and Open convert between the
// two losslessly.
type Artifact struct {
	// Codec is the registry name of the scheme that produced the
	// artifact; Decompress dispatches on it.
	Codec string
	// Width and Patterns are the original test-set dimensions.
	Width, Patterns int
	// OriginalBits and CompressedBits give the paper-style size
	// accounting (OriginalBits = Width·Patterns).
	OriginalBits, CompressedBits int
	// Params is the codec-specific parameter blob, exactly as stored in
	// the container header.
	Params []byte
	// Payload holds the encoded bitstream (NBits bits, byte-padded).
	Payload []byte
	NBits   int
	// Extra optionally carries the codec's rich in-memory result (e.g.
	// *EAResult with per-run statistics). It is NOT serialized: an
	// artifact read back via Open has Extra == nil.
	Extra any

	// src, when set, is the bit source decoders consume instead of an
	// in-memory reader over Payload — the chunked stream path attaches
	// an io.Reader-fed bitstream.StreamReader here.
	src bitstream.Source
}

// BitReader returns a bitstream reader positioned at the start of the
// payload — the raw input a decoder (software or the hardware FSM
// model) consumes.
func (a *Artifact) BitReader() *bitstream.Reader {
	return bitstream.NewReader(a.Payload, a.NBits)
}

// Source returns the bit-level input a decoder should consume: the
// attached streaming source when the artifact arrived through the
// chunked stream path, otherwise an in-memory reader over Payload. Every
// registered codec decompresses through this, so the same decode code
// serves buffered and streaming artifacts.
func (a *Artifact) Source() bitstream.Source {
	if a.src != nil {
		return a.src
	}
	return bitstream.NewReader(a.Payload, a.NBits)
}

// RatePercent returns the paper-style compression rate,
// 100·(orig−comp)/orig.
func (a *Artifact) RatePercent() float64 {
	if a.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(a.OriginalBits-a.CompressedBits) / float64(a.OriginalBits)
}

// Write serializes the artifact as a universal container (format v2):
// any registered codec's output round-trips, not just the block codecs
// the legacy v1 format could represent.
func Write(w io.Writer, a *Artifact) error {
	if a == nil {
		return fmt.Errorf("tcomp: nil artifact")
	}
	return container.WriteV2(w, &container.Container{
		Version:  container.Version2,
		Codec:    a.Codec,
		Width:    a.Width,
		Patterns: a.Patterns,
		Params:   a.Params,
		Payload:  a.Payload,
		NBits:    a.NBits,
	})
}

// Open parses a container of any supported version (v2, or legacy v1
// block-codec files) into an Artifact. The codec is auto-detected from
// the header; pass the result to Decompress.
func Open(r io.Reader) (*Artifact, error) {
	c, err := container.ReadAny(r)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Codec:          c.Codec,
		Width:          c.Width,
		Patterns:       c.Patterns,
		OriginalBits:   c.TotalBits(),
		CompressedBits: c.NBits,
		Params:         c.Params,
		Payload:        c.Payload,
		NBits:          c.NBits,
	}, nil
}

// OpenFile opens and parses a container file.
func OpenFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Open(f)
}

// Decompress reconstructs the fully specified test set from an artifact
// by dispatching to the codec named in its header. The decoded patterns
// preserve every specified bit of the original (don't-cares get concrete
// values).
func Decompress(a *Artifact) (*TestSet, error) {
	if a == nil {
		return nil, fmt.Errorf("tcomp: nil artifact")
	}
	// Containers validate dimensions on read, but an Artifact can also be
	// constructed directly; re-checking here keeps every decode path —
	// including hand-built artifacts — allocation-bounded and panic-free.
	if err := container.ValidateDims(a.Width, a.Patterns); err != nil {
		return nil, err
	}
	codec, err := Lookup(a.Codec)
	if err != nil {
		return nil, err
	}
	return codec.Decompress(a)
}
