package tcomp

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/huffman"
	"repro/internal/selhuff"
)

// selhuffCodec adapts selective Huffman coding. Its parameter blob
// carries the dictionary the decoder needs (big-endian):
//
//	k     uint8    block size (1..62)
//	d     uint16   dictionary size (>= 1)
//	per d: dictionary pattern uint64
//	per d: codeword length uint8 (1..64), codeword bits uint64
type selhuffCodec struct{}

func (selhuffCodec) Name() string { return "selhuff" }

func (selhuffCodec) Compress(ctx context.Context, ts *TestSet, opts ...Option) (*Artifact, error) {
	o := buildOptions(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := blockLenOr(o, 8)
	d := o.dictSize
	if d == 0 {
		d = 8
	}
	res, err := selhuff.Compress(ts, k, d)
	if err != nil {
		return nil, err
	}
	params, err := encodeSelhuffParams(res)
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Codec:          "selhuff",
		Width:          ts.Width,
		Patterns:       ts.NumPatterns(),
		OriginalBits:   res.OriginalBits,
		CompressedBits: res.CompressedBits,
		Params:         params,
		Payload:        res.Stream.Bytes(),
		NBits:          res.Stream.Len(),
		Extra:          res,
	}, nil
}

func (selhuffCodec) Decompress(a *Artifact) (*TestSet, error) {
	res, err := decodeSelhuffParams(a.Params)
	if err != nil {
		return nil, err
	}
	flat, err := selhuff.Decompress(a.Source(), res, a.Width*a.Patterns)
	if err != nil {
		return nil, err
	}
	return flatToSet(flat, a)
}

func encodeSelhuffParams(res *selhuff.Result) ([]byte, error) {
	if res.K < 1 || res.K > 62 {
		return nil, fmt.Errorf("tcomp: selhuff block size %d out of range [1,62]", res.K)
	}
	if len(res.Dictionary) < 1 || len(res.Dictionary) > 0xFFFF {
		return nil, fmt.Errorf("tcomp: selhuff dictionary size %d out of range [1,65535]", len(res.Dictionary))
	}
	if len(res.Code.Lengths) != len(res.Dictionary) {
		return nil, fmt.Errorf("tcomp: selhuff code has %d entries for %d dictionary words",
			len(res.Code.Lengths), len(res.Dictionary))
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(res.K))
	if err := binary.Write(&buf, binary.BigEndian, uint16(len(res.Dictionary))); err != nil {
		return nil, err
	}
	for _, w := range res.Dictionary {
		if err := binary.Write(&buf, binary.BigEndian, w); err != nil {
			return nil, err
		}
	}
	for i := range res.Dictionary {
		l := res.Code.Lengths[i]
		if l < 0 || l > 64 {
			return nil, fmt.Errorf("tcomp: selhuff codeword %d length %d out of range [0,64]", i, l)
		}
		buf.WriteByte(byte(l))
		if err := binary.Write(&buf, binary.BigEndian, res.Code.Words[i]); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

func decodeSelhuffParams(blob []byte) (*selhuff.Result, error) {
	r := bytes.NewReader(blob)
	k, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("tcomp: truncated selhuff params: %v", err)
	}
	if k < 1 || k > 62 {
		return nil, fmt.Errorf("tcomp: selhuff block size %d out of range [1,62]", k)
	}
	var d uint16
	if err := binary.Read(r, binary.BigEndian, &d); err != nil {
		return nil, fmt.Errorf("tcomp: truncated selhuff params: %v", err)
	}
	if d < 1 {
		return nil, fmt.Errorf("tcomp: selhuff dictionary size must be >= 1")
	}
	dict := make([]uint64, d)
	for i := range dict {
		if err := binary.Read(r, binary.BigEndian, &dict[i]); err != nil {
			return nil, fmt.Errorf("tcomp: truncated selhuff dictionary: %v", err)
		}
	}
	lengths := make([]int, d)
	words := make([]uint64, d)
	for i := range lengths {
		l, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("tcomp: truncated selhuff code: %v", err)
		}
		if l > 64 {
			return nil, fmt.Errorf("tcomp: selhuff codeword %d length %d exceeds 64", i, l)
		}
		lengths[i] = int(l)
		if err := binary.Read(r, binary.BigEndian, &words[i]); err != nil {
			return nil, fmt.Errorf("tcomp: truncated selhuff code: %v", err)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("tcomp: %d trailing bytes in selhuff params", r.Len())
	}
	code := &huffman.Code{Lengths: lengths, Words: words}
	if !code.IsPrefixFree() {
		return nil, fmt.Errorf("tcomp: selhuff stored code is not prefix-free")
	}
	return &selhuff.Result{K: int(k), D: int(d), Dictionary: dict, Code: code}, nil
}

func init() { Register(selhuffCodec{}) }
