package tcomp

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// fastFlowOptions keeps the EA small enough for unit tests while still
// racing every codec.
func fastFlowOptions(extra ...FlowOption) []FlowOption {
	p := DefaultEAParams(1)
	p.Runs = 1
	p.EA.MaxGenerations = 25
	p.EA.MaxNoImprove = 8
	opts := []FlowOption{FlowCodecOptions(WithEAParams(p))}
	return append(opts, extra...)
}

func TestFlowRunEndToEnd(t *testing.T) {
	flow := NewTestFlow(fastFlowOptions(FlowSeed(7), FlowSamplePatterns(24))...)
	c, err := flow.GenerateCircuit(context.Background(), "s298")
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("flow result not verified")
	}
	if res.Tests.Patterns == 0 || res.Tests.CoveragePercent <= 0 {
		t.Fatalf("implausible test stage: %+v", res.Tests)
	}
	if len(res.Race.Entries) != len(Codecs()) {
		t.Fatalf("race covered %d codecs, want %d", len(res.Race.Entries), len(Codecs()))
	}
	if res.Race.Winner == "" || res.Race.BlockWinner == "" {
		t.Fatalf("race picked no winner: %+v", res.Race)
	}
	if len(res.ContainerBytes) == 0 || len(res.VerilogBytes) == 0 {
		t.Fatal("missing artifacts")
	}
	if !strings.Contains(string(res.VerilogBytes), "module "+FlowDecoderModule) {
		t.Fatal("verilog artifact missing flow decoder module")
	}
	// The container must decompress back to the generated patterns.
	sr, err := NewStreamReader(bytes.NewReader(res.ContainerBytes))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyLossless(res.Tests.Set, dec) {
		t.Fatal("container round trip lost specified bits")
	}
	for _, stage := range []string{"atpg", "race", "compress", "emit-verilog"} {
		if _, ok := res.StageSeconds[stage]; !ok {
			t.Errorf("missing stage timing %q", stage)
		}
	}
}

// TestFlowDeterministicAcrossWorkers is the acceptance criterion:
// identical artifacts at any worker count.
func TestFlowDeterministicAcrossWorkers(t *testing.T) {
	var outs [][2][]byte
	for _, workers := range []int{1, 4} {
		flow := NewTestFlow(fastFlowOptions(FlowSeed(11), FlowWorkers(workers), FlowSamplePatterns(24))...)
		c, err := flow.GenerateCircuit(context.Background(), "s349")
		if err != nil {
			t.Fatal(err)
		}
		res, err := flow.Run(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, [2][]byte{res.ContainerBytes, res.VerilogBytes})
	}
	if !bytes.Equal(outs[0][0], outs[1][0]) {
		t.Error("container differs between 1 and 4 workers")
	}
	if !bytes.Equal(outs[0][1], outs[1][1]) {
		t.Error("verilog differs between 1 and 4 workers")
	}
}

func TestFlowGenerateCircuitUnknownBenchmark(t *testing.T) {
	flow := NewTestFlow()
	_, err := flow.GenerateCircuit(context.Background(), "nope")
	if !errors.Is(err, ErrInvalidCircuit) {
		t.Fatalf("err = %v, want ErrInvalidCircuit", err)
	}
}

func TestFlowParseCircuitCaps(t *testing.T) {
	flow := NewTestFlow()

	// Malformed netlist.
	if _, err := flow.ParseCircuit("bad", strings.NewReader("G1 := garbage")); !errors.Is(err, ErrInvalidCircuit) {
		t.Fatalf("malformed: err = %v, want ErrInvalidCircuit", err)
	}

	// Hostile input count: more inputs than FlowMaxInputs must be
	// rejected while scanning, not after allocation.
	var hostile strings.Builder
	for i := 0; i <= FlowMaxInputs; i++ {
		hostile.WriteString("INPUT(G")
		hostile.WriteString(strings.Repeat("9", 1+i%3))
		hostile.WriteByte('_')
		for _, d := range []byte{byte('0' + i%10), byte('0' + (i / 10 % 10)), byte('0' + (i / 100 % 10)), byte('0' + (i / 1000 % 10))} {
			hostile.WriteByte(d)
		}
		hostile.WriteString(")\n")
	}
	if _, err := flow.ParseCircuit("hostile", strings.NewReader(hostile.String())); !errors.Is(err, ErrInvalidCircuit) {
		t.Fatalf("oversized: err = %v, want ErrInvalidCircuit", err)
	}

	// A valid small netlist parses.
	bench := "INPUT(A)\nINPUT(B)\nOUTPUT(Y)\nY = NAND(A, B)\n"
	c, err := flow.ParseCircuit("tiny", strings.NewReader(bench))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 || c.NumGates() != 1 {
		t.Fatalf("parsed %d inputs / %d gates", len(c.Inputs), c.NumGates())
	}
}

func TestFlowPathDelayMode(t *testing.T) {
	flow := NewTestFlow(fastFlowOptions(
		FlowSeed(3), FlowTests(FlowPathDelay), FlowSamplePatterns(16), FlowMaxPaths(120))...)
	c, err := flow.GenerateCircuit(context.Background(), "s298")
	if err != nil {
		t.Fatal(err)
	}
	res, err := flow.Run(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests.Kind != FlowPathDelay {
		t.Fatalf("kind = %q", res.Tests.Kind)
	}
	if res.Tests.Patterns%2 != 0 {
		t.Fatalf("odd pattern count %d for two-pattern tests", res.Tests.Patterns)
	}
}

func TestFlowCancellation(t *testing.T) {
	flow := NewTestFlow(fastFlowOptions(FlowSeed(5))...)
	c, err := flow.GenerateCircuit(context.Background(), "s510")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := flow.Run(ctx, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBenchmarksRegistry(t *testing.T) {
	bms := Benchmarks()
	if len(bms) != 39+29 {
		t.Fatalf("benchmark rows = %d, want 68", len(bms))
	}
	seen := map[string]bool{}
	for _, b := range bms {
		if b.Name == "" || b.Width <= 0 || b.Patterns <= 0 {
			t.Fatalf("bad row %+v", b)
		}
		if b.Kind != FlowStuckAt && b.Kind != FlowPathDelay {
			t.Fatalf("bad kind %q", b.Kind)
		}
		seen[b.Kind+"/"+b.Name] = true
	}
	if !seen["stuck-at/s510"] || !seen["path-delay/s27"] {
		t.Fatal("expected registry rows missing")
	}
}
