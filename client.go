package tcomp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/testset"
)

// Client talks to a tcompd compression daemon (cmd/tcompd). Bodies
// stream in both directions — Compress uploads patterns as a chunked
// request body and Decompress consumes the response incrementally — so
// a multi-gigabyte test set passes through the client at O(chunk)
// memory, matching the daemon's own memory model. All methods honor
// context cancellation through the standard net/http plumbing.
//
//	c := tcomp.NewClient("http://localhost:8077")
//	stats, err := c.Compress(ctx, "golomb", patternsFile, containerFile)
type Client struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8077".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval is WaitJob's polling cadence; <= 0 means 250ms.
	PollInterval time.Duration
	// CallTimeout bounds the small control-plane calls (Health, Codecs)
	// when the caller's context carries no deadline of its own, so a
	// wedged daemon cannot hang a health probe forever. 0 means 10s;
	// negative disables the default. Data-plane calls (Compress,
	// Decompress, job submissions) are never bounded this way — they
	// legitimately run as long as the data is large.
	CallTimeout time.Duration
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// callCtx applies the control-plane CallTimeout default when the
// caller's context has no deadline of its own.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok || c.CallTimeout < 0 {
		return ctx, func() {}
	}
	d := c.CallTimeout
	if d == 0 {
		d = 10 * time.Second
	}
	return context.WithTimeout(ctx, d)
}

// RemoteStats summarizes a remote compression, assembled from the
// daemon's response headers (buffered/cached responses) or trailers
// (streamed responses).
type RemoteStats struct {
	Codec                        string
	Patterns, Chunks             int
	OriginalBits, CompressedBits int
	// CacheHit reports that the daemon served the artifact from its
	// content-addressed result cache. The bytes are identical either way.
	CacheHit bool
	// RequestID is the daemon's X-Request-Id for this call — quote it
	// when reporting a problem so the operator can grep the daemon's
	// structured logs for the exact request.
	RequestID string
}

// RatePercent returns the paper-style compression rate.
func (s RemoteStats) RatePercent() float64 {
	if s.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(s.OriginalBits-s.CompressedBits) / float64(s.OriginalBits)
}

// optionValues encodes resolved compression options as daemon query
// parameters. Workers is forwarded as a hint but deliberately excluded
// from the daemon's cache key — output bytes are worker-count
// independent.
func optionValues(opts []Option) url.Values {
	o := buildOptions(opts)
	v := url.Values{}
	v.Set("seed", strconv.FormatInt(o.seed, 10))
	setInt := func(key string, val int) {
		if val > 0 {
			v.Set(key, strconv.Itoa(val))
		}
	}
	setInt("k", o.blockLen)
	setInt("l", o.mvCount)
	setInt("runs", o.runs)
	setInt("workers", o.workers)
	setInt("m", o.golombM)
	setInt("d", o.dictSize)
	setInt("b", o.counterW)
	setInt("chunk", o.chunkPats)
	return v
}

// Typed sentinels for the daemon's error taxonomy. Every error a Client
// method returns for a daemon-reported failure is a *RemoteError, and
// errors.Is maps it onto exactly one of these, so callers can branch on
// the class ("is this my input's fault or the daemon's?") without
// parsing messages:
//
//	ErrBadRequest   the request itself was malformed (HTTP 400/405:
//	                unknown parameter, out-of-range value, bad test-set
//	                syntax, a body that is not a container at all)
//	ErrTooLarge     the request body hit the daemon's size cap (HTTP
//	                413) — split the submission or raise the daemon's
//	                -max-body
//	ErrCorruptInput well-formed request, unprocessable input (HTTP 422:
//	                corrupt or truncated container, uncompressible set;
//	                also mid-stream corruption reported via trailer)
//	ErrRemoteInternal a daemon-side bug, contained (HTTP 500; the
//	                daemon recovered the panic and kept serving)
//	ErrUnavailable  the daemon is draining or dropped the request while
//	                it was queued (HTTP 503) — retry elsewhere or later
//
// Flow submissions additionally map code "flow_invalid_circuit" (HTTP
// 422) onto ErrInvalidCircuit — the shared sentinel of the local
// TestFlow API — so a caller handles a bad netlist identically whether
// the flow ran in-process or on a daemon.
var (
	ErrBadRequest     = errors.New("tcomp: daemon rejected the request as malformed")
	ErrTooLarge       = errors.New("tcomp: request exceeds the daemon's size limit")
	ErrCorruptInput   = errors.New("tcomp: daemon could not process the input")
	ErrRemoteInternal = errors.New("tcomp: daemon internal error")
	ErrUnavailable    = errors.New("tcomp: daemon unavailable")
)

// RemoteError is a daemon-reported failure: the HTTP status, the
// machine-readable taxonomy code (the "code" field of the JSON error
// body, or the X-Tcomp-Error-Code trailer for mid-stream failures —
// empty when talking to a pre-taxonomy daemon), and the human-readable
// message. errors.Is(err, ErrBadRequest/ErrCorruptInput/
// ErrRemoteInternal/ErrUnavailable) classifies it.
type RemoteError struct {
	// Status is the HTTP status code, or 0 when the failure arrived as a
	// trailer on an already-streaming 200 response.
	Status int
	// Code is the taxonomy code (e.g. "bad_request", "corrupt_container",
	// "unprocessable", "internal_panic", "unavailable").
	Code string
	// Message is the daemon's human-readable error text.
	Message string
	// RequestID is the daemon's X-Request-Id for the failing request
	// (empty when talking to a pre-tracing daemon) — the key that links
	// this error to the daemon's server-side logs.
	RequestID string
}

func (e *RemoteError) Error() string {
	switch {
	case e.Status != 0 && e.Code != "":
		return fmt.Sprintf("tcomp: daemon: %s (HTTP %d, %s)", e.Message, e.Status, e.Code)
	case e.Status != 0:
		return fmt.Sprintf("tcomp: daemon: %s (HTTP %d)", e.Message, e.Status)
	case e.Code != "":
		return fmt.Sprintf("tcomp: daemon: %s (%s)", e.Message, e.Code)
	}
	return "tcomp: daemon: " + e.Message
}

// Is maps the remote taxonomy onto the package sentinels. The code is
// authoritative when present; the HTTP status covers daemons (or
// proxies) that answer without one.
func (e *RemoteError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.Code == "bad_request" || e.Code == "method_not_allowed" ||
			(e.Code == "" && (e.Status == http.StatusBadRequest || e.Status == http.StatusMethodNotAllowed))
	case ErrTooLarge:
		return e.Code == "request_too_large" ||
			(e.Code == "" && e.Status == http.StatusRequestEntityTooLarge)
	case ErrCorruptInput:
		return e.Code == "corrupt_container" || e.Code == "unprocessable" ||
			(e.Code == "" && e.Status == http.StatusUnprocessableEntity)
	case ErrRemoteInternal:
		return e.Code == "internal_panic" ||
			(e.Code == "" && e.Status >= 500 && e.Status != http.StatusServiceUnavailable)
	case ErrUnavailable:
		return e.Code == "unavailable" ||
			(e.Code == "" && e.Status == http.StatusServiceUnavailable)
	case ErrJobNotFound:
		return e.Code == "job_not_found" ||
			(e.Code == "" && e.Status == http.StatusNotFound)
	case ErrJobNotDone:
		return e.Code == "job_not_done" ||
			(e.Code == "" && e.Status == http.StatusConflict)
	case ErrQueueFull:
		return e.Code == "queue_full" ||
			(e.Code == "" && e.Status == http.StatusTooManyRequests)
	case ErrInvalidCircuit:
		// Flow submissions only; no status fallback — a bare 422 from a
		// pre-flow daemon keeps meaning ErrCorruptInput.
		return e.Code == "flow_invalid_circuit"
	}
	return false
}

// apiError decodes a daemon error response — the taxonomy JSON object
// {"code": ..., "error": ..., "status": ...} — into a *RemoteError.
// Legacy bodies ({"error": ...} only) and non-JSON bodies still produce
// a RemoteError, classified by HTTP status alone.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	e := &RemoteError{
		Status:    resp.StatusCode,
		Code:      resp.Header.Get("X-Tcomp-Error-Code"),
		RequestID: resp.Header.Get("X-Request-Id"),
	}
	var parsed struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &parsed) == nil && parsed.Error != "" {
		e.Message = parsed.Error
		if parsed.Code != "" {
			e.Code = parsed.Code
		}
	} else {
		e.Message = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return e
}

// trailerError converts a mid-stream failure reported through the
// X-Tcomp-Error / X-Tcomp-Error-Code trailers into a *RemoteError.
// Trailers become visible only once the body has been drained; callers
// invoke this after their final read.
func trailerError(resp *http.Response) error {
	msg := resp.Trailer.Get("X-Tcomp-Error")
	if msg == "" {
		return nil
	}
	code := resp.Trailer.Get("X-Tcomp-Error-Code")
	if code == "" {
		// Pre-taxonomy daemons name only the message; mid-stream
		// failures are input corruption unless stated otherwise.
		code = "corrupt_container"
	}
	return &RemoteError{Code: code, Message: msg, RequestID: resp.Header.Get("X-Request-Id")}
}

func (c *Client) do(req *http.Request) (*http.Response, error) {
	injectTraceparent(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}

// injectTraceparent stamps the W3C traceparent header on an outgoing
// request: the trace context carried by the request's context (a live
// span, or one installed with WithTraceparent) when present, otherwise
// a fresh sampled root minted here — so even a bare CLI call produces
// one coherent trace on the daemon side.
func injectTraceparent(req *http.Request) {
	tp := obs.TraceparentFromContext(req.Context())
	if tp == "" {
		tp = obs.FormatTraceparent(obs.TraceContext{
			TraceID: obs.NewTraceID(),
			SpanID:  obs.NewSpanID(),
			Sampled: true,
		})
	}
	req.Header.Set("traceparent", tp)
}

// WithTraceparent returns a context carrying the given W3C traceparent
// value, validated exactly like the daemon validates the inbound
// header. Client calls made with the returned context propagate it to
// the daemon, joining this process's calls to a trace started
// elsewhere.
func WithTraceparent(ctx context.Context, traceparent string) (context.Context, error) {
	tc, err := obs.ParseTraceparent(traceparent)
	if err != nil {
		return ctx, err
	}
	return obs.WithTraceContext(ctx, tc), nil
}

// Compress streams the textual (or binary) test set on patterns through
// the daemon's POST /v1/compress and copies the returned container to
// container. By default the daemon answers with a chunked stream
// container (format v3); see CompressSet for the buffered v2 form.
func (c *Client) Compress(ctx context.Context, codecName string, patterns io.Reader, container io.Writer, opts ...Option) (*RemoteStats, error) {
	q := optionValues(opts)
	q.Set("codec", codecName)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/compress?"+q.Encode(), patterns)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(container, resp.Body); err != nil {
		return nil, err
	}
	// A mid-stream daemon failure arrives as a trailer on an otherwise
	// 200 response; surfacing it here is what keeps a truncated
	// container from being reported as success.
	if err := trailerError(resp); err != nil {
		return nil, err
	}
	return remoteStats(codecName, resp), nil
}

// CompressSet compresses an in-memory test set remotely and returns the
// parsed artifact (the daemon answers in the buffered v2 container
// format), interchangeable with the artifact a local
// codec.Compress(...) produces.
func (c *Client) CompressSet(ctx context.Context, codecName string, ts *TestSet, opts ...Option) (*Artifact, *RemoteStats, error) {
	var in bytes.Buffer
	if err := ts.Write(&in); err != nil {
		return nil, nil, err
	}
	q := optionValues(opts)
	q.Set("codec", codecName)
	q.Set("format", "v2")
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/compress?"+q.Encode(), &in)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	art, err := Open(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return art, remoteStats(codecName, resp), nil
}

// remoteStats assembles RemoteStats from response headers and trailers.
// Trailers become visible only after the body has been drained, which
// every caller has done by now.
func remoteStats(codecName string, resp *http.Response) *RemoteStats {
	get := func(key string) string {
		if v := resp.Header.Get(key); v != "" {
			return v
		}
		return resp.Trailer.Get(key)
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	return &RemoteStats{
		Codec:          codecName,
		Patterns:       atoi(get("X-Tcomp-Patterns")),
		Chunks:         atoi(get("X-Tcomp-Chunks")),
		OriginalBits:   atoi(get("X-Tcomp-Original-Bits")),
		CompressedBits: atoi(get("X-Tcomp-Compressed-Bits")),
		CacheHit:       get("X-Tcomp-Cache") == "hit",
		RequestID:      resp.Header.Get("X-Request-Id"),
	}
}

// Decompress streams a container (any version — v1, v2, or chunked v3)
// through the daemon's POST /v1/decompress and copies the textual
// patterns to patterns. A corruption the daemon discovers mid-stream
// arrives as an X-Tcomp-Error trailer and surfaces as an error here.
func (c *Client) Decompress(ctx context.Context, container io.Reader, patterns io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/decompress", container)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(patterns, resp.Body); err != nil {
		return err
	}
	return trailerError(resp)
}

// DecompressSet expands an artifact remotely into an in-memory test
// set — the client-side twin of tcomp.Decompress.
func (c *Client) DecompressSet(ctx context.Context, a *Artifact) (*TestSet, error) {
	var in bytes.Buffer
	if err := Write(&in, a); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := c.Decompress(ctx, &in, &out); err != nil {
		return nil, err
	}
	sc, err := testset.NewScanner(&out)
	if err != nil {
		return nil, err
	}
	ts := testset.New(sc.Width())
	for {
		v, err := sc.Next()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts.Add(v)
	}
}

// Codecs fetches the daemon's registry listing with per-codec parameter
// schemas (GET /v1/codecs). Without a caller deadline the call is
// bounded by CallTimeout (default 10s).
func (c *Client) Codecs(ctx context.Context) ([]CodecInfo, error) {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/codecs", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var infos []CodecInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Health probes GET /healthz. It returns nil while the daemon accepts
// new work and an error once it is unreachable or draining. Without a
// caller deadline the probe is bounded by CallTimeout (default 10s),
// so a wedged daemon fails the probe instead of hanging it.
func (c *Client) Health(ctx context.Context) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}
