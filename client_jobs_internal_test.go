package tcomp

import (
	"testing"
	"time"
)

// TestWaitDelaySchedule pins WaitJob's capped exponential backoff:
// 100ms doubling to a 3s plateau, and never past it.
func TestWaitDelaySchedule(t *testing.T) {
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3 * time.Second,
		3 * time.Second,
		3 * time.Second,
	}
	for attempt, w := range want {
		if got := waitDelay(0, attempt); got != w {
			t.Errorf("waitDelay(0, %d) = %v, want %v", attempt, got, w)
		}
	}
	// Far out on the schedule the delay must stay pinned at the cap
	// (and must not wrap through duration overflow).
	for _, attempt := range []int{10, 30, 64, 1000} {
		if got := waitDelay(0, attempt); got != waitMaxDelay {
			t.Errorf("waitDelay(0, %d) = %v, want cap %v", attempt, got, waitMaxDelay)
		}
	}
}

// TestWaitDelayFixedInterval: an explicit PollInterval disables the
// backoff entirely — the historical fixed-cadence contract.
func TestWaitDelayFixedInterval(t *testing.T) {
	for _, attempt := range []int{0, 1, 5, 100} {
		if got := waitDelay(250*time.Millisecond, attempt); got != 250*time.Millisecond {
			t.Errorf("waitDelay(250ms, %d) = %v, want fixed 250ms", attempt, got)
		}
	}
}
