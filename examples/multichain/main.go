// Multi-chain: the paper's Section 5 future-work direction — EA
// compression in a multiple scan chain environment — comparing a decoder
// per chain against one shared decoder.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/iscasgen"
	"repro/internal/multichain"
)

func main() {
	m, err := iscasgen.Find("s953", iscasgen.StuckAt)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %s, %d inputs x %d patterns = %d bits\n\n",
		m.Name, ts.Width, ts.NumPatterns(), ts.TotalBits())

	p := core.DefaultParams(9)
	p.K, p.L = 8, 32
	p.Runs = 2
	p.EA.MaxGenerations = 80
	p.EA.MaxNoImprove = 25

	single, err := core.Compress(ts, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s rate %6.1f%%  decoders: 1\n", "single chain (paper setup)", single.BestRate)

	for _, n := range []int{2, 4} {
		per, err := multichain.CompressPerChain(ts, n, multichain.Interleaved, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s rate %6.1f%%  decoders: %d\n",
			fmt.Sprintf("%d chains, per-chain MVs", n), per.RatePercent(), per.Decoders)

		shared, err := multichain.CompressShared(ts, n, multichain.Interleaved, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s rate %6.1f%%  decoders: %d\n",
			fmt.Sprintf("%d chains, shared MVs", n), shared.RatePercent(), shared.Decoders)
	}

	if err := multichain.VerifyRoundTrip(ts, 4, multichain.Interleaved); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsplit/merge round trip OK")
}
