// Multi-chain: the paper's Section 5 future-work direction — EA
// compression in a multiple scan chain environment — comparing a decoder
// per chain against one shared decoder. The test set comes from the
// public flow API (real ATPG patterns on a registry circuit) instead of
// a synthetic distribution.
package main

import (
	"context"
	"fmt"
	"log"

	tcomp "repro"
	"repro/internal/core"
	"repro/internal/multichain"
)

func main() {
	ctx := context.Background()

	// ATPG patterns through the public flow API: generate the registry
	// circuit and run test generation only — the multichain comparison
	// replaces the flow's own compression stages here.
	flow := tcomp.NewTestFlow(tcomp.FlowSeed(21))
	c, err := flow.GenerateCircuit(ctx, "s953")
	if err != nil {
		log.Fatal(err)
	}
	tests, err := flow.RunATPG(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	ts := tests.Set
	fmt.Printf("test set: %s, %d inputs x %d patterns = %d bits (%.1f%% fault coverage)\n\n",
		c.Name, ts.Width, ts.NumPatterns(), ts.TotalBits(), tests.CoveragePercent)

	p := core.DefaultParams(9)
	p.K, p.L = 8, 32
	p.Runs = 2
	p.EA.MaxGenerations = 80
	p.EA.MaxNoImprove = 25

	single, err := core.Compress(ts, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s rate %6.1f%%  decoders: 1\n", "single chain (paper setup)", single.BestRate)

	for _, n := range []int{2, 4} {
		per, err := multichain.CompressPerChain(ts, n, multichain.Interleaved, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s rate %6.1f%%  decoders: %d\n",
			fmt.Sprintf("%d chains, per-chain MVs", n), per.RatePercent(), per.Decoders)

		shared, err := multichain.CompressShared(ts, n, multichain.Interleaved, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s rate %6.1f%%  decoders: %d\n",
			fmt.Sprintf("%d chains, shared MVs", n), shared.RatePercent(), shared.Decoders)
	}

	if err := multichain.VerifyRoundTrip(ts, 4, multichain.Interleaved); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsplit/merge round trip OK")
}
