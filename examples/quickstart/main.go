// Quickstart: compress a small test set with the paper's EA method,
// decompress it, and verify that every specified bit survived.
package main

import (
	"fmt"
	"log"

	tcomp "repro"
)

func main() {
	// A toy scan test set: 8 patterns for a 12-input circuit, with
	// don't-cares (X). Note the "almost matching" blocks — the structure
	// the paper's arbitrary-U matching vectors exploit.
	ts, err := tcomp.ParseTestSet(
		"110100110100",
		"110100110101",
		"1101001101XX",
		"000000000000",
		"110110110100",
		"0000000000XX",
		"110100110110",
		"00000000XX00",
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %d patterns x %d inputs = %d bits (%.0f%% specified)\n",
		ts.NumPatterns(), ts.Width, ts.TotalBits(), 100*ts.CareDensity())

	// Paper defaults are K=12, L=64; this toy set is tiny, so use a
	// small configuration.
	p := tcomp.DefaultEAParams(42)
	p.K = 6
	p.L = 8
	p.Runs = 3
	p.EA.MaxGenerations = 200
	p.EA.MaxNoImprove = 50

	res, err := tcomp.CompressEA(ts, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EA compression: average %.1f%%, best %.1f%% over %d runs\n",
		res.AverageRate, res.BestRate, len(res.Runs))
	fmt.Printf("final stream: %d -> %d bits\n", res.Final.OriginalBits, res.Final.CompressedBits)

	fmt.Println("matching vectors in use:")
	for i, mv := range res.Final.Set.MVs {
		if res.Final.Code.Lengths[i] > 0 && res.Final.Covering.Freqs[i] > 0 {
			fmt.Printf("  %s  codeword %-6s  used %d times\n",
				mv.StringU(), res.Final.Code.WordString(i), res.Final.Covering.Freqs[i])
		}
	}

	// Compare against the two baselines from the paper.
	for _, b := range []struct {
		name string
		f    func(*tcomp.TestSet, int) (*tcomp.BlockResult, error)
	}{{"9C   ", tcomp.Compress9C}, {"9C+HC", tcomp.Compress9CHC}} {
		r, err := b.f(ts, 6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %s: %.1f%%\n", b.name, r.RatePercent())
	}

	// Round trip.
	dec, err := tcomp.Decompress(res.Final, ts.Width)
	if err != nil {
		log.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		log.Fatal("round trip lost specified bits!")
	}
	fmt.Println("round trip OK: decompressed set preserves all specified bits")
}
