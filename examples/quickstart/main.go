// Quickstart: compress a small test set with the paper's EA method via
// the codec registry, serialize it as a universal container, read it
// back, decompress, and verify that every specified bit survived.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	tcomp "repro"
)

func main() {
	// A toy scan test set: 8 patterns for a 12-input circuit, with
	// don't-cares (X). Note the "almost matching" blocks — the structure
	// the paper's arbitrary-U matching vectors exploit.
	ts, err := tcomp.ParseTestSet(
		"110100110100",
		"110100110101",
		"1101001101XX",
		"000000000000",
		"110110110100",
		"0000000000XX",
		"110100110110",
		"00000000XX00",
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %d patterns x %d inputs = %d bits (%.0f%% specified)\n",
		ts.NumPatterns(), ts.Width, ts.TotalBits(), 100*ts.CareDensity())

	// Every scheme is a registered codec; grab the paper's EA compressor.
	codec, err := tcomp.Lookup("ea")
	if err != nil {
		log.Fatal(err)
	}

	// Paper defaults are K=12, L=64; this toy set is tiny, so use a
	// small configuration.
	p := tcomp.DefaultEAParams(42)
	p.K = 6
	p.L = 8
	p.Runs = 3
	p.EA.MaxGenerations = 200
	p.EA.MaxNoImprove = 50

	art, err := codec.Compress(context.Background(), ts, tcomp.WithEAParams(p))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EA compression: %.1f%% (%d -> %d bits)\n",
		art.RatePercent(), art.OriginalBits, art.CompressedBits)

	// The artifact's Extra carries the codec's rich in-memory result —
	// for the EA, per-run statistics and the final MV set.
	if res, ok := art.Extra.(*tcomp.EAResult); ok {
		fmt.Printf("runs: average %.1f%%, best %.1f%% over %d runs\n",
			res.AverageRate, res.BestRate, len(res.Runs))
		fmt.Println("matching vectors in use:")
		for i, mv := range res.Final.Set.MVs {
			if res.Final.Code.Lengths[i] > 0 && res.Final.Covering.Freqs[i] > 0 {
				fmt.Printf("  %s  codeword %-6s  used %d times\n",
					mv.StringU(), res.Final.Code.WordString(i), res.Final.Covering.Freqs[i])
			}
		}
	}

	// Compare against the baselines through the same interface.
	for _, name := range []string{"9c", "9chc"} {
		c, err := tcomp.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Compress(context.Background(), ts, tcomp.WithBlockLen(6))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %-5s: %.1f%%\n", name, r.RatePercent())
	}

	// Round trip through the universal container: write the artifact,
	// reopen it (codec auto-detected from the header), decompress.
	var buf bytes.Buffer
	if err := tcomp.Write(&buf, art); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container: %d bytes on disk\n", buf.Len())
	art2, err := tcomp.Open(&buf)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := tcomp.Decompress(art2)
	if err != nil {
		log.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		log.Fatal("round trip lost specified bits!")
	}
	fmt.Println("round trip OK: decompressed set preserves all specified bits")
}
