// Codes comparison: one calibrated registry test set compressed with
// every scheme in the library — the paper's methods (9C, 9C+HC, EA) plus
// the run-length-family coders its related-work section cites (RL,
// Golomb, FDR, selective Huffman).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/golomb"
	"repro/internal/iscasgen"
	"repro/internal/ninec"
	"repro/internal/runlength"
	"repro/internal/selhuff"
)

func main() {
	m, err := iscasgen.Find("s641", iscasgen.StuckAt)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %s (%s), %d bits, %.1f%% specified (paper 9C rate: %.0f%%)\n\n",
		m.Name, m.Kind, ts.TotalBits(), 100*ts.CareDensity(), m.Paper9C)

	type entry struct {
		name string
		rate float64
	}
	var results []entry

	if r, err := runlength.Compress(ts, 4); err == nil {
		results = append(results, entry{"run-length (b=4)", r.RatePercent()})
	}
	if r, err := golomb.CompressBest(ts); err == nil {
		results = append(results, entry{fmt.Sprintf("Golomb (M=%d)", r.M), r.RatePercent()})
	}
	if r, err := fdr.Compress(ts); err == nil {
		results = append(results, entry{"FDR", r.RatePercent()})
	}
	if r, err := selhuff.Compress(ts, 8, 8); err == nil {
		results = append(results, entry{"selective Huffman (K=8,D=8)", r.RatePercent()})
	}
	if r, err := ninec.Compress(ts, 8); err == nil {
		results = append(results, entry{"9C (K=8)", r.RatePercent()})
	}
	if r, err := ninec.CompressHC(ts, 8); err == nil {
		results = append(results, entry{"9C+HC (K=8)", r.RatePercent()})
	}

	p := core.DefaultParams(3)
	p.Runs = 3
	p.EA.MaxGenerations = 120
	p.EA.MaxNoImprove = 40
	r, err := core.Compress(ts, p)
	if err != nil {
		log.Fatal(err)
	}
	results = append(results, entry{"EA (K=12,L=64, this paper)", r.AverageRate})
	results = append(results, entry{"EA best-of-runs", r.BestRate})

	fmt.Printf("%-30s %10s\n", "method", "rate")
	fmt.Println("------------------------------------------")
	for _, e := range results {
		fmt.Printf("%-30s %9.1f%%\n", e.name, e.rate)
	}
}
