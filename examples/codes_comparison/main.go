// Codes comparison: one calibrated registry test set compressed with
// every codec in the registry — the paper's methods (9C, 9C+HC, EA)
// plus the run-length-family coders its related-work section cites (RL,
// Golomb, FDR, selective Huffman) — each verified lossless through the
// universal container round trip.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sort"

	tcomp "repro"
	"repro/internal/iscasgen"
)

func main() {
	m, err := iscasgen.Find("s641", iscasgen.StuckAt)
	if err != nil {
		log.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test set: %s (%s), %d bits, %.1f%% specified (paper 9C rate: %.0f%%)\n\n",
		m.Name, m.Kind, ts.TotalBits(), 100*ts.CareDensity(), m.Paper9C)

	// One option list serves every codec: each scheme reads the knobs it
	// understands and ignores the rest.
	p := tcomp.DefaultEAParams(3)
	p.Runs = 3
	p.EA.MaxGenerations = 120
	p.EA.MaxNoImprove = 40
	opts := []tcomp.Option{tcomp.WithSeed(3), tcomp.WithEAParams(p)}

	type entry struct {
		name  string
		rate  float64
		bytes int
	}
	var results []entry

	ctx := context.Background()
	for _, name := range tcomp.Codecs() {
		codec, err := tcomp.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		art, err := codec.Compress(ctx, ts, opts...)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}

		// Round-trip through the self-describing container: serialize,
		// reopen (method auto-detected), decompress, verify.
		var buf bytes.Buffer
		if err := tcomp.Write(&buf, art); err != nil {
			log.Fatalf("%s: write: %v", name, err)
		}
		size := buf.Len()
		reopened, err := tcomp.Open(&buf)
		if err != nil {
			log.Fatalf("%s: open: %v", name, err)
		}
		dec, err := tcomp.Decompress(reopened)
		if err != nil {
			log.Fatalf("%s: decompress: %v", name, err)
		}
		if !tcomp.VerifyLossless(ts, dec) {
			log.Fatalf("%s: round trip lost specified bits", name)
		}
		results = append(results, entry{name, art.RatePercent(), size})

		// The EA artifact additionally carries per-run statistics; the
		// artifact itself is built from the best run, so also report the
		// paper-style average over the independent runs.
		if res, ok := art.Extra.(*tcomp.EAResult); ok {
			results = append(results, entry{"ea avg-of-runs", res.AverageRate, size})
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].rate > results[j].rate })
	fmt.Printf("%-20s %9s %12s\n", "codec", "rate", "container")
	fmt.Println("-------------------------------------------")
	for _, e := range results {
		fmt.Printf("%-20s %8.1f%% %11dB\n", e.name, e.rate, e.bytes)
	}
	fmt.Println("\nall codecs verified lossless through container v2 round trips")
}
