// Path-delay pipeline: the Table 2 flow end to end — robust two-pattern
// test generation (the role of TIP in the paper), compression with the
// paper's two EA configurations (EA1: K=8,L=9; EA2: K=12,L=64), and a
// final robustness re-check of the decompressed pairs.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
)

func main() {
	// 1. Circuit and robust path-delay tests.
	// Shallow fanin-2 circuits have many robustly testable paths (deep
	// reconvergent circuits rarely satisfy the strict steady-side-input
	// condition).
	c, err := circuit.Random("demo-pd", circuit.RandomOptions{
		Inputs: 12, Gates: 40, Outputs: 6, MaxFanin: 2, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := delay.DefaultOptions()
	opt.MaxPaths = 400
	res, err := delay.Generate(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	ts := res.Tests
	fmt.Printf("circuit: %d inputs, %d gates; %d paths attempted, %d robustly tested (%.1f%%)\n",
		len(c.Inputs), c.NumGates(), res.Paths, res.Robust, 100*res.Coverage())
	fmt.Printf("test set: %d two-pattern tests, %d bits, %.1f%% specified\n",
		ts.NumPatterns()/2, ts.TotalBits(), 100*ts.CareDensity())

	// 2. Baselines and the paper's two EA configurations.
	nine, err := ninec.Compress(ts, 8)
	if err != nil {
		log.Fatal(err)
	}
	hc, err := ninec.CompressHC(ts, 8)
	if err != nil {
		log.Fatal(err)
	}
	mkParams := func(k, l int, seed int64) core.Params {
		p := core.DefaultParams(seed)
		p.K, p.L = k, l
		p.Runs = 3
		p.EA.MaxGenerations = 150
		p.EA.MaxNoImprove = 40
		return p
	}
	ea1, err := core.Compress(ts, mkParams(8, 9, 5))
	if err != nil {
		log.Fatal(err)
	}
	ea2, err := core.Compress(ts, mkParams(12, 64, 6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression: 9C %.1f%% | 9C+HC %.1f%% | EA1 %.1f%% | EA2 %.1f%%\n",
		nine.RatePercent(), hc.RatePercent(), ea1.AverageRate, ea2.AverageRate)

	// 3. Decompress EA2's stream and re-verify every pair is still a
	// robust test (the decompressor fills don't-cares with concrete
	// values; robustness must survive any fill).
	best := ea2
	blocks := blockcode.Partition(ts, best.Params.K)
	dec, err := blockcode.Decode(bitstream.FromWriter(best.Final.Stream),
		best.Final.Set, best.Final.Code, len(blocks))
	if err != nil {
		log.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		log.Fatal(err)
	}
	flat := tritvec.Concat(dec...).Slice(0, ts.TotalBits())
	decTS, err := testset.FromFlat(flat, ts.Width)
	if err != nil {
		log.Fatal(err)
	}

	// Re-pair the decompressed vectors with their paths and re-check.
	paths := delay.EnumeratePaths(c, opt.MaxPaths)
	robust := 0
	idx := 0
	for _, path := range paths {
		for dir := 0; dir < 2 && idx+1 < ts.NumPatterns(); dir++ {
			// Regeneration order matches Generate: only robust pairs
			// were emitted, so try to match the original pair.
			v1, v2 := ts.Patterns[idx], ts.Patterns[idx+1]
			if delay.VerifyRobust(c, path, v1, v2) != nil {
				continue // this path×dir produced no test
			}
			d1, d2 := decTS.Patterns[idx], decTS.Patterns[idx+1]
			if err := delay.VerifyRobust(c, path, d1, d2); err == nil {
				robust++
			}
			idx += 2
		}
	}
	fmt.Printf("robustness after decompression: %d/%d pairs verified robust\n",
		robust, ts.NumPatterns()/2)
	if robust == 0 && ts.NumPatterns() > 0 {
		log.Fatal("decompressed pairs lost robustness!")
	}
	fmt.Println("pipeline OK")
}
