// Path-delay pipeline: the Table 2 flow end to end through the public
// tcomp.TestFlow API — robust two-pattern test generation (the role of
// TIP in the paper), the codec advisor race, winner compression — and a
// final robustness re-check of the decompressed pairs.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	tcomp "repro"
	"repro/internal/delay"
)

func main() {
	ctx := context.Background()

	// 1. A path-delay flow on a Table 2 row. Path-delay mode generates a
	// shallow fanin-2 circuit (deep reconvergent circuits rarely satisfy
	// the strict robust steady-side-input condition) and flattens each
	// two-pattern test as v1, v2 in the set.
	p := tcomp.DefaultEAParams(5)
	p.K, p.L = 8, 9 // the paper's EA1 configuration
	p.Runs = 2
	p.EA.MaxGenerations = 150
	p.EA.MaxNoImprove = 40
	flow := tcomp.NewTestFlow(
		tcomp.FlowSeed(99),
		tcomp.FlowTests(tcomp.FlowPathDelay),
		tcomp.FlowMaxPaths(400),
		tcomp.FlowSamplePatterns(48),
		tcomp.FlowCodecOptions(tcomp.WithEAParams(p)),
	)
	c, err := flow.GenerateCircuit(ctx, "s386")
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Run(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	ts := res.Tests.Set
	fmt.Printf("circuit: %d inputs, %d gates; %d paths attempted, %d robustly tested (%.1f%%)\n",
		res.CircuitInputs, res.CircuitGates, res.Tests.Targets,
		res.Tests.Detected, res.Tests.CoveragePercent)
	fmt.Printf("test set: %d two-pattern tests, %d bits\n",
		ts.NumPatterns()/2, ts.TotalBits())
	for _, e := range res.Race.Entries {
		if e.Err == "" {
			fmt.Printf("  race %-8s %6.1f%%\n", e.Codec, e.RatePercent)
		}
	}
	fmt.Printf("winner %s: %.1f%% as a v3 container; decoder from %s\n",
		res.Race.Winner, res.Container.RatePercent, res.Decoder.Codec)

	// 2. Decompress the winner container and re-verify every pair is
	// still a robust test (the decompressor fills don't-cares with
	// concrete values; robustness must survive any fill).
	sr, err := tcomp.NewStreamReader(bytes.NewReader(res.ContainerBytes))
	if err != nil {
		log.Fatal(err)
	}
	decTS, err := sr.ReadAll()
	if err != nil {
		log.Fatal(err)
	}

	// Re-pair the decompressed vectors with their paths and re-check.
	paths := delay.EnumeratePaths(c, 400)
	robust := 0
	idx := 0
	for _, path := range paths {
		for dir := 0; dir < 2 && idx+1 < ts.NumPatterns(); dir++ {
			// Regeneration order matches Generate: only robust pairs were
			// emitted, so try to match the original pair.
			v1, v2 := ts.Patterns[idx], ts.Patterns[idx+1]
			if delay.VerifyRobust(c, path, v1, v2) != nil {
				continue // this path×dir produced no test
			}
			d1, d2 := decTS.Patterns[idx], decTS.Patterns[idx+1]
			if err := delay.VerifyRobust(c, path, d1, d2); err == nil {
				robust++
			}
			idx += 2
		}
	}
	fmt.Printf("robustness after decompression: %d/%d pairs verified robust\n",
		robust, ts.NumPatterns()/2)
	if robust == 0 && ts.NumPatterns() > 0 {
		log.Fatal("decompressed pairs lost robustness!")
	}
	fmt.Println("pipeline OK")
}
