// Stuck-at pipeline: the full flow the paper's Table 1 rests on, driven
// through the public tcomp.TestFlow API — circuit generation, PODEM
// ATPG with don't-care maximization, the codec advisor race, winner
// compression into a v3 container, and Verilog decoder synthesis — then
// a final fault simulation proving the decompressed patterns keep the
// original fault coverage.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	tcomp "repro"
	"repro/internal/faults"
)

func main() {
	ctx := context.Background()

	// 1. The flow: one seed derives every stage's seed, so the whole run
	// is reproducible; the EA is tuned down to demo speed.
	p := tcomp.DefaultEAParams(7)
	p.K, p.L = 8, 32
	p.Runs = 2
	p.EA.MaxGenerations = 150
	p.EA.MaxNoImprove = 40
	flow := tcomp.NewTestFlow(
		tcomp.FlowSeed(2024),
		tcomp.FlowSamplePatterns(48),
		tcomp.FlowCodecOptions(tcomp.WithEAParams(p)),
	)

	// 2. A registry circuit (Table 1 row s420) and the full run: ATPG →
	// race → container + decoder, all verified losslessly in-process.
	c, err := flow.GenerateCircuit(ctx, "s420")
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.Run(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d inputs, %d gates, %d outputs\n",
		res.CircuitInputs, res.CircuitGates, res.CircuitOutputs)
	fmt.Printf("ATPG: %d/%d faults detected (%.1f%%), %d patterns\n",
		res.Tests.Detected, res.Tests.Targets, res.Tests.CoveragePercent, res.Tests.Patterns)
	for _, e := range res.Race.Entries {
		if e.Err == "" {
			fmt.Printf("  race %-8s %6.1f%%\n", e.Codec, e.RatePercent)
		}
	}
	fmt.Printf("winner %s: %.1f%% as a v3 container (%d -> %d bits)\n",
		res.Race.Winner, res.Container.RatePercent,
		res.Container.OriginalBits, res.Container.CompressedBits)
	fmt.Printf("decoder (%s): %d states, %d MV table bits, ~%.0f gate equivalents, %d bytes of Verilog\n",
		res.Decoder.Codec, res.Decoder.States, res.Decoder.MVTableBits,
		res.Decoder.GateEquivalents, len(res.VerilogBytes))

	// 3. The decompressed (fully specified) patterns must preserve fault
	// coverage — the decompressor output is what actually hits the scan
	// chain.
	sr, err := tcomp.NewStreamReader(bytes.NewReader(res.ContainerBytes))
	if err != nil {
		log.Fatal(err)
	}
	decTS, err := sr.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	fl := faults.Collapse(c)
	baseCov := faults.Coverage(faults.NewSimulator(c, 7).Run(res.Tests.Set, fl))
	decCov := faults.Coverage(faults.NewSimulator(c, 7).Run(decTS, fl))
	fmt.Printf("fault coverage: raw %.2f%% -> decompressed %.2f%%\n", 100*baseCov, 100*decCov)
	if decCov < baseCov-1e-9 {
		log.Fatal("decompressed patterns lost fault coverage!")
	}
	fmt.Println("pipeline OK")
}
