// Stuck-at pipeline: the full flow the paper's Table 1 rests on, end to
// end on a real (generated) circuit — ATPG with don't-care maximization,
// compression with 9C / 9C+HC / EA, on-chip decode, and a final fault
// simulation proving the decompressed patterns keep the original fault
// coverage.
package main

import (
	"fmt"
	"log"

	"repro/internal/atpg"
	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/faults"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func main() {
	// 1. A circuit: 16 inputs, 150 gates (deterministic).
	c, err := circuit.Random("demo16", circuit.RandomOptions{
		Inputs: 16, Gates: 150, Outputs: 8, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d inputs, %d gates, %d outputs\n",
		len(c.Inputs), c.NumGates(), len(c.Outputs))

	// 2. Uncompacted stuck-at test set with don't-cares (the role of
	// Kajihara/Miyase in the paper).
	res, err := atpg.Generate(c, atpg.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ts := res.Tests
	fmt.Printf("ATPG: %d/%d faults detected (%.1f%%), %d patterns, %.1f%% specified bits\n",
		res.Detected, res.Faults, 100*res.Coverage(),
		ts.NumPatterns(), 100*ts.CareDensity())

	// 3. Baseline coverage of the raw test set.
	fl := faults.Collapse(c)
	baseCov := faults.Coverage(faults.NewSimulator(c, 7).Run(ts, fl))

	// 4. Compress three ways.
	nine, err := ninec.Compress(ts, 8)
	if err != nil {
		log.Fatal(err)
	}
	hc, err := ninec.CompressHC(ts, 8)
	if err != nil {
		log.Fatal(err)
	}
	p := core.DefaultParams(7)
	p.K, p.L = 8, 32
	p.Runs = 3
	p.EA.MaxGenerations = 150
	p.EA.MaxNoImprove = 40
	eaRes, err := core.Compress(ts, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression: 9C %.1f%% | 9C+HC %.1f%% | EA avg %.1f%% best %.1f%%\n",
		nine.RatePercent(), hc.RatePercent(), eaRes.AverageRate, eaRes.BestRate)

	// 5. Decode through the hardware FSM model.
	fsm, err := decoder.New(eaRes.Final.Set, eaRes.Final.Code)
	if err != nil {
		log.Fatal(err)
	}
	blocks := blockcode.Partition(ts, p.K)
	decBlocks, st, err := fsm.Run(bitstream.FromWriter(eaRes.Final.Stream), len(blocks))
	if err != nil {
		log.Fatal(err)
	}
	if err := blockcode.Verify(blocks, decBlocks); err != nil {
		log.Fatal(err)
	}
	area := fsm.Area()
	fmt.Printf("decoder: %d states, %d MV table bits, ~%.0f gate equivalents, %d cycles\n",
		area.States, area.MVTableBits, area.GateEquivalents, st.Cycles)

	// 6. The decompressed (fully specified) patterns must preserve fault
	// coverage — the decompressor output is what actually hits the scan
	// chain.
	flat := tritvec.Concat(decBlocks...).Slice(0, ts.TotalBits())
	decTS, err := testset.FromFlat(flat, ts.Width)
	if err != nil {
		log.Fatal(err)
	}
	decCov := faults.Coverage(faults.NewSimulator(c, 7).Run(decTS, fl))
	fmt.Printf("fault coverage: raw %.2f%% -> decompressed %.2f%%\n", 100*baseCov, 100*decCov)
	if decCov < baseCov-1e-9 {
		log.Fatal("decompressed patterns lost fault coverage!")
	}
	fmt.Println("pipeline OK")
}
