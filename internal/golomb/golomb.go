// Package golomb implements Golomb coding of test data 0-runs (Chandra &
// Chakrabarty, VTS'00): don't-cares are filled with 0; each run of 0s
// terminated by a 1 is Golomb-encoded with parameter M (quotient in
// unary, remainder in truncated binary).
package golomb

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Result reports an encoding.
type Result struct {
	M              int
	OriginalBits   int
	CompressedBits int
	Stream         *bitstream.Writer
}

// RatePercent returns the paper-style compression rate.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// encodeRun writes one Golomb codeword for run length n.
func encodeRun(w *bitstream.Writer, n, m int) {
	q := n / m
	for i := 0; i < q; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	writeTruncated(w, n%m, m)
}

// writeTruncated emits r in truncated binary for alphabet size m.
func writeTruncated(w *bitstream.Writer, r, m int) {
	if m == 1 {
		return
	}
	b := bits.Len(uint(m - 1)) // ceil(log2 m)
	cut := 1<<uint(b) - m
	if r < cut {
		w.WriteBits(uint64(r), b-1)
	} else {
		w.WriteBits(uint64(r+cut), b)
	}
}

// readTruncated reads a truncated-binary value for alphabet size m.
func readTruncated(r bitstream.Source, m int) (int, error) {
	if m == 1 {
		return 0, nil
	}
	b := bits.Len(uint(m - 1))
	cut := 1<<uint(b) - m
	v, err := r.ReadBits(b - 1)
	if err != nil {
		return 0, err
	}
	if int(v) < cut {
		return int(v), nil
	}
	bit, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	return int(v)<<1 | int(bit) - cut, nil
}

// Compress encodes ts with Golomb parameter m. A trailing unterminated
// run is encoded as a normal run; the decoder stops at the original
// length.
func Compress(ts *testset.TestSet, m int) (*Result, error) {
	if m < 1 {
		return nil, fmt.Errorf("golomb: M must be >= 1, got %d", m)
	}
	flat := runlength.ZeroFill(ts)
	runs, trailing := runlength.Runs(flat)
	w := bitstream.NewWriter()
	for _, n := range runs {
		encodeRun(w, n, m)
	}
	if trailing > 0 {
		encodeRun(w, trailing, m)
	}
	return &Result{M: m, OriginalBits: ts.TotalBits(), CompressedBits: w.Len(), Stream: w}, nil
}

// CompressBest tries a range of M values (powers of two up to 256, as in
// the literature) and returns the best result.
func CompressBest(ts *testset.TestSet) (*Result, error) {
	var best *Result
	for m := 2; m <= 256; m *= 2 {
		res, err := Compress(ts, m)
		if err != nil {
			return nil, err
		}
		if best == nil || res.CompressedBits < best.CompressedBits {
			best = res
		}
	}
	return best, nil
}

// Decompress reconstructs totalBits bits from any bit source — the
// in-memory reader or the io.Reader-fed streaming one. End of stream at a
// codeword boundary means the remaining bits are implied zeros; end of
// stream inside a codeword is an error wrapping bitstream.ErrEOS.
func Decompress(r bitstream.Source, m, totalBits int) (tritvec.Vector, error) {
	if m < 1 {
		return tritvec.Vector{}, fmt.Errorf("golomb: M must be >= 1, got %d", m)
	}
	if totalBits < 0 {
		return tritvec.Vector{}, fmt.Errorf("golomb: negative output size %d", totalBits)
	}
	out := tritvec.New(totalBits)
	pk, _ := r.(bitstream.Peeker)
	pos := 0
	for pos < totalBits {
		q, atEnd, err := readUnary(r, pk)
		if err != nil {
			return tritvec.Vector{}, err
		}
		if atEnd {
			out.FillZeros(pos, totalBits-pos)
			break
		}
		rem, err := readTruncated(r, m)
		if err != nil {
			return tritvec.Vector{}, fmt.Errorf("golomb: truncated remainder: %w", err)
		}
		// A hostile stream can drive q high enough that q*m + rem wraps
		// int and produces a small (or negative) run; any such length is
		// corrupt, not merely oversized.
		if q > (math.MaxInt-rem)/m {
			return tritvec.Vector{}, fmt.Errorf("golomb: run length %d*%d+%d overflows: corrupt stream", q, m, rem)
		}
		n := q*m + rem
		if n > totalBits-pos {
			n = totalBits - pos
		}
		out.FillZeros(pos, n)
		pos += n
		if pos < totalBits {
			out.Set(pos, tritvec.One)
			pos++
		}
	}
	return out, nil
}

// readUnary reads the unary quotient (a run of 1s closed by a 0). When
// the source is a Peeker it scans whole peek windows with LeadingZeros64
// instead of a bit at a time; the fallback keeps third-party Sources
// working. atEnd reports end of stream before any bit of the codeword —
// the implied-zeros case for the caller.
func readUnary(r bitstream.Source, pk bitstream.Peeker) (q int, atEnd bool, err error) {
	if pk == nil {
		bit, err := r.ReadBit()
		if err != nil {
			if errors.Is(err, bitstream.ErrEOS) {
				return 0, true, nil
			}
			return 0, false, err
		}
		for bit == 1 {
			q++
			if bit, err = r.ReadBit(); err != nil {
				return 0, false, fmt.Errorf("golomb: truncated quotient: %w", err)
			}
		}
		return q, false, nil
	}
	for {
		v, avail := pk.PeekBits(bitstream.PeekMax)
		if avail == 0 {
			// Exhausted; ReadBit surfaces the underlying error (true EOS
			// or a sticky reader error).
			_, err := r.ReadBit()
			if q == 0 && errors.Is(err, bitstream.ErrEOS) {
				return 0, true, nil
			}
			if q == 0 {
				return 0, false, err
			}
			return 0, false, fmt.Errorf("golomb: truncated quotient: %w", err)
		}
		// Leading 1s of the window = leading 0s of its complement once
		// the window is left-aligned in the 64-bit word.
		lead := bits.LeadingZeros64(^(v << uint(64-avail)))
		if lead < avail {
			if err := pk.Skip(lead + 1); err != nil {
				return 0, false, err
			}
			return q + lead, false, nil
		}
		q += avail
		if err := pk.Skip(avail); err != nil {
			return 0, false, err
		}
	}
}
