// Package golomb implements Golomb coding of test data 0-runs (Chandra &
// Chakrabarty, VTS'00): don't-cares are filled with 0; each run of 0s
// terminated by a 1 is Golomb-encoded with parameter M (quotient in
// unary, remainder in truncated binary).
package golomb

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Result reports an encoding.
type Result struct {
	M              int
	OriginalBits   int
	CompressedBits int
	Stream         *bitstream.Writer
}

// RatePercent returns the paper-style compression rate.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// encodeRun writes one Golomb codeword for run length n.
func encodeRun(w *bitstream.Writer, n, m int) {
	q := n / m
	for i := 0; i < q; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
	writeTruncated(w, n%m, m)
}

// writeTruncated emits r in truncated binary for alphabet size m.
func writeTruncated(w *bitstream.Writer, r, m int) {
	if m == 1 {
		return
	}
	b := bits.Len(uint(m - 1)) // ceil(log2 m)
	cut := 1<<uint(b) - m
	if r < cut {
		w.WriteBits(uint64(r), b-1)
	} else {
		w.WriteBits(uint64(r+cut), b)
	}
}

// readTruncated reads a truncated-binary value for alphabet size m.
func readTruncated(r bitstream.Source, m int) (int, error) {
	if m == 1 {
		return 0, nil
	}
	b := bits.Len(uint(m - 1))
	cut := 1<<uint(b) - m
	v, err := r.ReadBits(b - 1)
	if err != nil {
		return 0, err
	}
	if int(v) < cut {
		return int(v), nil
	}
	bit, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	return int(v)<<1 | int(bit) - cut, nil
}

// Compress encodes ts with Golomb parameter m. A trailing unterminated
// run is encoded as a normal run; the decoder stops at the original
// length.
func Compress(ts *testset.TestSet, m int) (*Result, error) {
	if m < 1 {
		return nil, fmt.Errorf("golomb: M must be >= 1, got %d", m)
	}
	flat := runlength.ZeroFill(ts)
	runs, trailing := runlength.Runs(flat)
	w := bitstream.NewWriter()
	for _, n := range runs {
		encodeRun(w, n, m)
	}
	if trailing > 0 {
		encodeRun(w, trailing, m)
	}
	return &Result{M: m, OriginalBits: ts.TotalBits(), CompressedBits: w.Len(), Stream: w}, nil
}

// CompressBest tries a range of M values (powers of two up to 256, as in
// the literature) and returns the best result.
func CompressBest(ts *testset.TestSet) (*Result, error) {
	var best *Result
	for m := 2; m <= 256; m *= 2 {
		res, err := Compress(ts, m)
		if err != nil {
			return nil, err
		}
		if best == nil || res.CompressedBits < best.CompressedBits {
			best = res
		}
	}
	return best, nil
}

// Decompress reconstructs totalBits bits from any bit source — the
// in-memory reader or the io.Reader-fed streaming one. End of stream at a
// codeword boundary means the remaining bits are implied zeros; end of
// stream inside a codeword is an error wrapping bitstream.ErrEOS.
func Decompress(r bitstream.Source, m, totalBits int) (tritvec.Vector, error) {
	if m < 1 {
		return tritvec.Vector{}, fmt.Errorf("golomb: M must be >= 1, got %d", m)
	}
	if totalBits < 0 {
		return tritvec.Vector{}, fmt.Errorf("golomb: negative output size %d", totalBits)
	}
	out := tritvec.New(totalBits)
	pos := 0
	for pos < totalBits {
		bit, err := r.ReadBit()
		if err != nil {
			if errors.Is(err, bitstream.ErrEOS) {
				for ; pos < totalBits; pos++ {
					out.Set(pos, tritvec.Zero)
				}
				break
			}
			return tritvec.Vector{}, err
		}
		q := 0
		for bit == 1 {
			q++
			if bit, err = r.ReadBit(); err != nil {
				return tritvec.Vector{}, fmt.Errorf("golomb: truncated quotient: %w", err)
			}
		}
		rem, err := readTruncated(r, m)
		if err != nil {
			return tritvec.Vector{}, fmt.Errorf("golomb: truncated remainder: %w", err)
		}
		n := q*m + rem
		for i := 0; i < n && pos < totalBits; i++ {
			out.Set(pos, tritvec.Zero)
			pos++
		}
		if pos < totalBits {
			out.Set(pos, tritvec.One)
			pos++
		}
	}
	return out, nil
}
