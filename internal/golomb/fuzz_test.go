package golomb

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
)

// FuzzRoundTrip asserts Golomb encode -> decode reproduces the
// zero-filled test set exactly for every parameter M over arbitrary
// inputs.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1), uint16(4))
	f.Add([]byte{0xff, 0x00, 0x55, 0xaa}, uint8(8), uint16(1))
	f.Add([]byte{0x01, 0x40, 0x90, 0x00, 0x00, 0x06}, uint8(13), uint16(3))
	f.Add([]byte("fuzz seed corpus"), uint8(24), uint16(255)) // mm = 256, the largest M
	f.Fuzz(func(t *testing.T, data []byte, width uint8, m uint16) {
		ts := testset.FromFuzz(data, int(width%24)+1)
		if ts == nil {
			t.Skip("no patterns")
		}
		mm := int(m%256) + 1
		res, err := Compress(ts, mm)
		if err != nil {
			t.Fatalf("compress(M=%d): %v", mm, err)
		}
		decoded, err := Decompress(bitstream.FromWriter(res.Stream), mm, ts.TotalBits())
		if err != nil {
			t.Fatalf("decompress(M=%d): %v", mm, err)
		}
		want := runlength.ZeroFill(ts)
		if !want.Equal(decoded) {
			t.Fatalf("round trip mismatch (M=%d, width=%d, %d patterns)",
				mm, ts.Width, ts.NumPatterns())
		}
	})
}
