package golomb

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestCompressBestOnAllOnes(t *testing.T) {
	// All-ones data: every run has length 0; M=2 minimizes codeword
	// length (1 quotient bit + 1 remainder bit per run = 2 bits/bit,
	// i.e. expansion). Rate must be negative but decode exact.
	ts := testset.New(8)
	p := tritvec.New(8)
	for i := 0; i < 8; i++ {
		p.Set(i, tritvec.One)
	}
	ts.Add(p)
	best, err := CompressBest(ts)
	if err != nil {
		t.Fatal(err)
	}
	if best.RatePercent() >= 0 {
		t.Fatalf("all-ones should expand, rate %.1f%%", best.RatePercent())
	}
	dec, err := Decompress(bitstream.FromWriter(best.Stream), best.M, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := runlength.Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

func TestM1UnaryCode(t *testing.T) {
	// M=1 is pure unary: run n costs n+1 bits, no remainder.
	w := bitstream.NewWriter()
	encodeRun(w, 5, 1)
	if w.Len() != 6 {
		t.Fatalf("unary run 5 cost %d bits, want 6", w.Len())
	}
	ts, _ := testset.ParseStrings("000001")
	res, err := Compress(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(bitstream.FromWriter(res.Stream), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := runlength.Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressEmptyStream(t *testing.T) {
	// No payload at all: everything is implied zeros.
	dec, err := Decompress(bitstream.NewReader(nil, 0), 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if dec.Get(i) != tritvec.Zero {
			t.Fatal("implied fill must be zero")
		}
	}
}

func TestDecompressTruncatedQuotient(t *testing.T) {
	// A stream ending mid-quotient must error, not loop.
	w := bitstream.NewWriter()
	w.WriteBit(1) // quotient continuation without terminator
	if _, err := Decompress(bitstream.FromWriter(w), 4, 100); err == nil {
		t.Fatal("truncated quotient accepted")
	}
}
