package golomb

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/testset"
)

// sourceOnly hides the Peeker fast path, forcing the bit-at-a-time
// fallback the new decoder must stay bit-identical with.
type sourceOnly struct{ bitstream.Source }

func TestDecompressPeekerMatchesFallback(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		ts := testset.Random(1+r.Intn(48), 1+r.Intn(24), []float64{0.05, 0.3, 0.9}[trial%3], r)
		m := []int{1, 2, 3, 4, 8, 16, 64}[r.Intn(7)]
		res, err := Compress(ts, m)
		if err != nil {
			t.Fatal(err)
		}
		total := ts.TotalBits()
		fast, err := Decompress(bitstream.FromWriter(res.Stream), m, total)
		if err != nil {
			t.Fatalf("peeker path: %v", err)
		}
		slow, err := Decompress(sourceOnly{bitstream.FromWriter(res.Stream)}, m, total)
		if err != nil {
			t.Fatalf("fallback path: %v", err)
		}
		sr := bitstream.NewStreamReader(bytes.NewReader(res.Stream.Bytes()), res.Stream.Len())
		streamed, err := Decompress(sr, m, total)
		if err != nil {
			t.Fatalf("stream path: %v", err)
		}
		if !fast.Equal(slow) || !fast.Equal(streamed) {
			t.Fatalf("m=%d decode paths disagree:\npeek   %s\nfall   %s\nstream %s",
				m, fast, slow, streamed)
		}
	}
}

func TestDecompressPathsAgreeOnHostileStreams(t *testing.T) {
	// Random garbage: whatever one path does (decode or error), the
	// others must do the same.
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, r.Intn(40))
		r.Read(buf)
		nbit := len(buf)*8 - r.Intn(8)
		if nbit < 0 {
			nbit = 0
		}
		m := 1 + r.Intn(300)
		total := r.Intn(400)
		fast, errFast := Decompress(bitstream.NewReader(buf, nbit), m, total)
		slow, errSlow := Decompress(sourceOnly{bitstream.NewReader(buf, nbit)}, m, total)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("m=%d total=%d: peek err=%v, fallback err=%v", m, total, errFast, errSlow)
		}
		if errFast == nil && !fast.Equal(slow) {
			t.Fatalf("m=%d total=%d: hostile decode disagrees\npeek %s\nfall %s", m, total, fast, slow)
		}
	}
}

func TestDecompressRunLengthOverflow(t *testing.T) {
	// A quotient of 2 with M = 2^62 would wrap q*m+rem past MaxInt to a
	// negative run; the decoder must report corruption instead of
	// silently mis-decoding.
	m := 1 << 62
	if 2*m+0 > 0 || math.MaxInt/m >= 2 {
		t.Fatal("test premise broken: 2*m must wrap")
	}
	w := bitstream.NewWriter()
	w.WriteBit(1)
	w.WriteBit(1)
	w.WriteBit(0)      // quotient 2
	w.WriteBits(0, 62) // truncated-binary remainder 0 for M = 2^62
	for _, src := range []bitstream.Source{
		bitstream.FromWriter(w),
		sourceOnly{bitstream.FromWriter(w)},
	} {
		_, err := Decompress(src, m, 10)
		if err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("overflowing run accepted: %v", err)
		}
	}
}
