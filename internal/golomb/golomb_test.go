package golomb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
)

func TestTruncatedBinaryRoundTrip(t *testing.T) {
	for m := 1; m <= 17; m++ {
		for v := 0; v < m; v++ {
			w := bitstream.NewWriter()
			writeTruncated(w, v, m)
			r := bitstream.FromWriter(w)
			got, err := readTruncated(r, m)
			if err != nil {
				t.Fatalf("m=%d v=%d: %v", m, v, err)
			}
			if got != v {
				t.Fatalf("m=%d: wrote %d read %d", m, v, got)
			}
			if r.Remaining() != 0 {
				t.Fatalf("m=%d v=%d: trailing bits", m, v)
			}
		}
	}
}

func TestGolombCodewordLengths(t *testing.T) {
	// For M=4 (power of two = Rice code), run n costs n/4 + 1 + 2 bits.
	for _, n := range []int{0, 1, 3, 4, 7, 8, 100} {
		w := bitstream.NewWriter()
		encodeRun(w, n, 4)
		want := n/4 + 1 + 2
		if w.Len() != want {
			t.Fatalf("n=%d: len=%d want %d", n, w.Len(), want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, m := range []int{1, 2, 3, 4, 7, 8, 16} {
		ts := testset.Random(16, 25, 0.2, r)
		res, err := Compress(ts, m)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), m, ts.TotalBits())
		if err != nil {
			t.Fatal(err)
		}
		if err := runlength.Verify(ts, dec); err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
	}
}

func TestCompressBest(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ts := testset.Random(32, 40, 0.05, r)
	best, err := CompressBest(ts)
	if err != nil {
		t.Fatal(err)
	}
	// Best must be no worse than a fixed choice.
	fixed, err := Compress(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if best.CompressedBits > fixed.CompressedBits {
		t.Fatalf("best (%d) worse than M=4 (%d)", best.CompressedBits, fixed.CompressedBits)
	}
	if best.RatePercent() <= 0 {
		t.Fatalf("sparse data should compress, rate=%.1f", best.RatePercent())
	}
}

func TestBadM(t *testing.T) {
	ts, _ := testset.ParseStrings("01")
	if _, err := Compress(ts, 0); err == nil {
		t.Fatal("M=0 accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts := testset.Random(r.Intn(20)+1, r.Intn(30)+1, r.Float64(), r)
		m := r.Intn(16) + 1
		res, err := Compress(ts, m)
		if err != nil {
			return false
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), m, ts.TotalBits())
		if err != nil {
			return false
		}
		return runlength.Verify(ts, dec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
