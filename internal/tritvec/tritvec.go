// Package tritvec implements packed ternary vectors over the alphabet
// {0, 1, X}, where X denotes an unspecified value (a don't-care in a test
// pattern, or a U position in a matching vector).
//
// Vectors are stored in two bit planes of 64-bit words: a care plane and a
// value plane. Position j is specified iff care bit j is set; its value is
// then the value bit j. The invariant val ⊆ care holds at all times (an
// unspecified position has value bit 0), which makes word-wise equality,
// matching and subsumption tests single AND/XOR expressions.
package tritvec

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
)

// Trit is a single ternary symbol.
type Trit uint8

// The three trit values. X doubles as the matching-vector symbol U: both
// mean "unspecified" and the matching semantics are identical.
const (
	X Trit = iota
	Zero
	One
)

// String returns "X", "0" or "1".
func (t Trit) String() string {
	switch t {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

// ParseTrit converts a character to a Trit. Accepted: '0', '1', and any of
// 'x', 'X', 'u', 'U', '-' for the unspecified value.
func ParseTrit(c byte) (Trit, error) {
	switch c {
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'x', 'X', 'u', 'U', '-':
		return X, nil
	}
	return X, fmt.Errorf("tritvec: invalid trit character %q", c)
}

// Vector is a fixed-length ternary vector.
type Vector struct {
	n    int
	care []uint64
	val  []uint64
}

func words(n int) int { return (n + 63) / 64 }

// New returns an all-X vector of length n.
func New(n int) Vector {
	if n < 0 {
		panic("tritvec: negative length")
	}
	w := words(n)
	return Vector{n: n, care: make([]uint64, w), val: make([]uint64, w)}
}

// FromString parses a vector from a string of trit characters.
func FromString(s string) (Vector, error) {
	v := New(len(s))
	for i := 0; i < len(s); i++ {
		t, err := ParseTrit(s[i])
		if err != nil {
			return Vector{}, err
		}
		v.Set(i, t)
	}
	return v, nil
}

// MustFromString is FromString that panics on malformed input. For use in
// tests and literals.
func MustFromString(s string) Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// FromTrits builds a vector from a trit slice.
func FromTrits(ts []Trit) Vector {
	v := New(len(ts))
	for i, t := range ts {
		v.Set(i, t)
	}
	return v
}

// Len returns the number of positions.
func (v Vector) Len() int { return v.n }

// Get returns the trit at position i.
func (v Vector) Get(i int) Trit {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("tritvec: index %d out of range [0,%d)", i, v.n))
	}
	w, b := i/64, uint(i%64)
	if v.care[w]>>b&1 == 0 {
		return X
	}
	if v.val[w]>>b&1 == 1 {
		return One
	}
	return Zero
}

// Set assigns trit t to position i.
func (v Vector) Set(i int, t Trit) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("tritvec: index %d out of range [0,%d)", i, v.n))
	}
	w, b := i/64, uint(i%64)
	mask := uint64(1) << b
	switch t {
	case X:
		v.care[w] &^= mask
		v.val[w] &^= mask
	case Zero:
		v.care[w] |= mask
		v.val[w] &^= mask
	case One:
		v.care[w] |= mask
		v.val[w] |= mask
	}
}

// FillZeros sets positions [pos, pos+n) to Zero word-at-a-time: care
// bits set, value bits cleared, up to 64 positions per plane operation.
// This is the bulk write behind the run-length-family decoders, whose
// output is dominated by long runs of zeros.
func (v Vector) FillZeros(pos, n int) {
	if n <= 0 {
		return
	}
	if pos < 0 || pos+n > v.n {
		panic(fmt.Sprintf("tritvec: FillZeros [%d,%d) out of range [0,%d)", pos, pos+n, v.n))
	}
	w, b := pos>>6, uint(pos&63)
	for n > 0 {
		span := 64 - int(b)
		if span > n {
			span = n
		}
		mask := ^uint64(0)
		if span < 64 {
			mask = (1<<uint(span) - 1) << b
		}
		v.care[w] |= mask
		v.val[w] &^= mask
		n -= span
		w++
		b = 0
	}
}

// SetWordMSB writes the low k bits of word (most significant first, the
// bitstream convention) as fully specified trits at positions
// [pos, pos+k), word-at-a-time. It is the bulk write behind the
// block-codec decoders.
func (v Vector) SetWordMSB(pos int, word uint64, k int) {
	if k == 0 {
		return
	}
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("tritvec: SetWordMSB k=%d out of range [0,64]", k))
	}
	if pos < 0 || pos+k > v.n {
		panic(fmt.Sprintf("tritvec: SetWordMSB [%d,%d) out of range [0,%d)", pos, pos+k, v.n))
	}
	// The planes store position pos+i at word bit i (LSB-first), while
	// word carries position pos+i at bit k-1-i (MSB-first): a single
	// bit reversal converts the whole block.
	rev := bits.Reverse64(word << uint(64-k))
	w, b := pos>>6, uint(pos&63)
	for k > 0 {
		span := 64 - int(b)
		if span > k {
			span = k
		}
		mask := ^uint64(0)
		if span < 64 {
			mask = (1<<uint(span) - 1) << b
		}
		v.care[w] |= mask
		v.val[w] = v.val[w]&^mask | rev<<b&mask
		rev >>= uint(span)
		k -= span
		w++
		b = 0
	}
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := Vector{n: v.n, care: make([]uint64, len(v.care)), val: make([]uint64, len(v.val))}
	copy(c.care, v.care)
	copy(c.val, v.val)
	return c
}

// Equal reports whether v and o have the same length and identical trits.
func (v Vector) Equal(o Vector) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.care {
		if v.care[i] != o.care[i] || v.val[i] != o.val[i] {
			return false
		}
	}
	return true
}

// String renders the vector with '0', '1' and 'X'.
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		sb.WriteString(v.Get(i).String())
	}
	return sb.String()
}

// StringU renders the vector with '0', '1' and 'U' (matching-vector
// notation, as used in the paper).
func (v Vector) StringU() string {
	return strings.Map(func(r rune) rune {
		if r == 'X' {
			return 'U'
		}
		return r
	}, v.String())
}

// Matches reports whether v matches o per the paper's definition: there is
// no position j where both are specified with different values. X/U matches
// anything. Panics if lengths differ.
func (v Vector) Matches(o Vector) bool {
	if v.n != o.n {
		panic("tritvec: Matches on vectors of different length")
	}
	for i := range v.care {
		if (v.care[i] & o.care[i] & (v.val[i] ^ o.val[i])) != 0 {
			return false
		}
	}
	return true
}

// Subsumes reports whether every vector matched by o is also matched by v;
// structurally, every specified position of v is specified in o with the
// same value. (v is "more general or equal".)
func (v Vector) Subsumes(o Vector) bool {
	if v.n != o.n {
		panic("tritvec: Subsumes on vectors of different length")
	}
	for i := range v.care {
		if v.care[i]&^o.care[i] != 0 {
			return false
		}
		if (v.val[i]^o.val[i])&v.care[i] != 0 {
			return false
		}
	}
	return true
}

// CountSpecified returns the number of 0/1 positions.
func (v Vector) CountSpecified() int {
	n := 0
	for _, w := range v.care {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountX returns the number of unspecified positions.
func (v Vector) CountX() int { return v.n - v.CountSpecified() }

// XPositions returns the indices of unspecified positions in ascending
// order.
func (v Vector) XPositions() []int {
	pos := make([]int, 0, v.CountX())
	for i := 0; i < v.n; i++ {
		w, b := i/64, uint(i%64)
		if v.care[w]>>b&1 == 0 {
			pos = append(pos, i)
		}
	}
	return pos
}

// Slice returns a copy of positions [lo, hi). Both planes are extracted
// word-at-a-time (a funnel shift per output word), so splitting a flat
// decode string back into patterns costs O(words), not O(bits).
func (v Vector) Slice(lo, hi int) Vector {
	if lo < 0 || hi > v.n || lo > hi {
		panic(fmt.Sprintf("tritvec: bad slice [%d,%d) of length %d", lo, hi, v.n))
	}
	out := Vector{n: hi - lo}
	out.care = sliceWords(v.care, lo, out.n)
	out.val = sliceWords(v.val, lo, out.n)
	return out
}

// sliceWords extracts n bits of a plane starting at bit offset lo.
func sliceWords(src []uint64, lo, n int) []uint64 {
	out := make([]uint64, words(n))
	w, b := lo>>6, uint(lo&63)
	for i := range out {
		x := src[w+i] >> b
		if b != 0 && w+i+1 < len(src) {
			x |= src[w+i+1] << (64 - b)
		}
		out[i] = x
	}
	if r := uint(n & 63); r != 0 {
		out[len(out)-1] &= 1<<r - 1
	}
	return out
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...Vector) Vector {
	total := 0
	for _, v := range vs {
		total += v.n
	}
	out := New(total)
	off := 0
	for _, v := range vs {
		for i := 0; i < v.n; i++ {
			out.Set(off+i, v.Get(i))
		}
		off += v.n
	}
	return out
}

// insertBits overwrites k (<= 64) bits of a plane at bit offset off
// with the low k bits of x (LSB-first position order).
func insertBits(dst []uint64, off int, x uint64, k int) {
	if k <= 0 {
		return
	}
	if k < 64 {
		x &= 1<<uint(k) - 1
	}
	w, b := off>>6, uint(off&63)
	span := 64 - int(b)
	if span > k {
		span = k
	}
	mask := ^uint64(0)
	if span < 64 {
		mask = (1<<uint(span) - 1) << b
	}
	dst[w] = dst[w]&^mask | x<<b&mask
	if k > span {
		k2 := uint(k - span)
		mask2 := uint64(1)<<k2 - 1
		dst[w+1] = dst[w+1]&^mask2 | x>>uint(span)&mask2
	}
}

// CopyFrom copies o into v starting at position off, word-at-a-time.
func (v Vector) CopyFrom(o Vector, off int) {
	if off < 0 || off+o.n > v.n {
		panic("tritvec: CopyFrom out of range")
	}
	for i := 0; i < len(o.care); i++ {
		k := o.n - i*64
		if k > 64 {
			k = 64
		}
		insertBits(v.care, off+i*64, o.care[i], k)
		insertBits(v.val, off+i*64, o.val[i], k)
	}
}

// FillRandom assigns uniformly random fully-specified values to all
// positions, overwriting existing content.
func (v Vector) FillRandom(r *rand.Rand) {
	for i := 0; i < v.n; i++ {
		if r.Intn(2) == 0 {
			v.Set(i, Zero)
		} else {
			v.Set(i, One)
		}
	}
}

// RandomTernary returns a vector of length n with each position drawn
// uniformly from {0, 1, X}.
func RandomTernary(n int, r *rand.Rand) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		v.Set(i, Trit(r.Intn(3)))
	}
	return v
}

// Specify returns a fully specified copy of v where every X position is
// replaced by fill, word-at-a-time (bits beyond the length stay zero so
// word-wise Equal keeps working).
func (v Vector) Specify(fill Trit) Vector {
	if fill == X {
		panic("tritvec: Specify fill must be 0 or 1")
	}
	c := v.Clone()
	for i := range c.care {
		k := c.n - i*64
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		if fill == One {
			c.val[i] |= ^c.care[i] & mask
		}
		c.care[i] = mask
	}
	return c
}

// Compatible reports whether v's specified positions are preserved in o:
// for every position where v is specified, o is specified with the same
// value. This is the lossless-compression acceptance criterion: the decoded
// (fully specified) block must be Compatible with the original block.
func (v Vector) Compatible(o Vector) bool {
	return v.Subsumes(o) // same structural condition, kept as a named alias
}

// Overlay returns a copy of v where every X position takes o's trit. Used
// by the decoder: MV specified bits overlaid with transmitted fill bits.
func (v Vector) Overlay(o Vector) Vector {
	if v.n != o.n {
		panic("tritvec: Overlay on vectors of different length")
	}
	out := v.Clone()
	for i := 0; i < v.n; i++ {
		if out.Get(i) == X {
			out.Set(i, o.Get(i))
		}
	}
	return out
}

// Words exposes the raw planes for word-level hot loops. The returned
// slices alias v's storage and must not be resized.
func (v Vector) Words() (care, val []uint64) { return v.care, v.val }

// HammingSpecified counts positions where both vectors are specified and
// differ.
func (v Vector) HammingSpecified(o Vector) int {
	if v.n != o.n {
		panic("tritvec: HammingSpecified on vectors of different length")
	}
	n := 0
	for i := range v.care {
		n += bits.OnesCount64(v.care[i] & o.care[i] & (v.val[i] ^ o.val[i]))
	}
	return n
}
