package tritvec

import (
	"math/rand"
	"testing"
)

// Differential tests pinning the word-wise bulk operations to naive
// per-bit reference implementations across randomized geometries: the
// decode hot paths are only allowed to be faster, never different.

func refFillZeros(v Vector, pos, n int) {
	for i := 0; i < n; i++ {
		v.Set(pos+i, Zero)
	}
}

func refSetWordMSB(v Vector, pos int, word uint64, k int) {
	for i := 0; i < k; i++ {
		if word>>uint(k-1-i)&1 == 1 {
			v.Set(pos+i, One)
		} else {
			v.Set(pos+i, Zero)
		}
	}
}

func refSlice(v Vector, lo, hi int) Vector {
	out := New(hi - lo)
	for i := lo; i < hi; i++ {
		out.Set(i-lo, v.Get(i))
	}
	return out
}

func refCopyFrom(v, o Vector, off int) {
	for i := 0; i < o.Len(); i++ {
		v.Set(off+i, o.Get(i))
	}
}

func refSpecify(v Vector, fill Trit) Vector {
	c := v.Clone()
	for i := 0; i < c.Len(); i++ {
		if c.Get(i) == X {
			c.Set(i, fill)
		}
	}
	return c
}

func TestFillZerosMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(300)
		base := RandomTernary(n, r)
		pos := r.Intn(n)
		cnt := r.Intn(n - pos + 1)
		fast, slow := base.Clone(), base.Clone()
		fast.FillZeros(pos, cnt)
		refFillZeros(slow, pos, cnt)
		if !fast.Equal(slow) {
			t.Fatalf("n=%d pos=%d cnt=%d:\nfast %s\nslow %s", n, pos, cnt, fast, slow)
		}
	}
}

func TestSetWordMSBMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(300)
		base := RandomTernary(n, r)
		k := r.Intn(65)
		if k > n {
			k = n
		}
		pos := r.Intn(n - k + 1)
		word := r.Uint64()
		fast, slow := base.Clone(), base.Clone()
		fast.SetWordMSB(pos, word, k)
		refSetWordMSB(slow, pos, word, k)
		if !fast.Equal(slow) {
			t.Fatalf("n=%d pos=%d k=%d word=%x:\nfast %s\nslow %s", n, pos, k, word, fast, slow)
		}
	}
}

func TestSliceMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(400)
		base := RandomTernary(n, r)
		lo := r.Intn(n + 1)
		hi := lo + r.Intn(n-lo+1)
		fast := base.Slice(lo, hi)
		slow := refSlice(base, lo, hi)
		if !fast.Equal(slow) {
			t.Fatalf("n=%d [%d,%d):\nfast %s\nslow %s", n, lo, hi, fast, slow)
		}
	}
}

func TestCopyFromMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(400)
		base := RandomTernary(n, r)
		m := r.Intn(n + 1)
		src := RandomTernary(m, r)
		off := r.Intn(n - m + 1)
		fast, slow := base.Clone(), base.Clone()
		fast.CopyFrom(src, off)
		refCopyFrom(slow, src, off)
		if !fast.Equal(slow) {
			t.Fatalf("n=%d m=%d off=%d:\nfast %s\nslow %s", n, m, off, fast, slow)
		}
	}
}

func TestSpecifyMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(300)
		base := RandomTernary(n, r)
		for _, fill := range []Trit{Zero, One} {
			fast := base.Specify(fill)
			slow := refSpecify(base, fill)
			if !fast.Equal(slow) {
				t.Fatalf("n=%d fill=%v:\nfast %s\nslow %s", n, fill, fast, slow)
			}
		}
	}
}

func TestFillZerosBounds(t *testing.T) {
	v := New(10)
	v.FillZeros(3, 0) // no-op
	for _, bad := range [][2]int{{-1, 2}, {8, 3}, {0, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FillZeros(%d,%d) must panic", bad[0], bad[1])
				}
			}()
			v.FillZeros(bad[0], bad[1])
		}()
	}
}
