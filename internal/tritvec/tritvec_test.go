package tritvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseTrit(t *testing.T) {
	cases := []struct {
		c    byte
		want Trit
		ok   bool
	}{
		{'0', Zero, true}, {'1', One, true}, {'x', X, true}, {'X', X, true},
		{'u', X, true}, {'U', X, true}, {'-', X, true}, {'2', X, false}, {' ', X, false},
	}
	for _, c := range cases {
		got, err := ParseTrit(c.c)
		if (err == nil) != c.ok {
			t.Errorf("ParseTrit(%q) err=%v, want ok=%v", c.c, err, c.ok)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseTrit(%q)=%v, want %v", c.c, got, c.want)
		}
	}
}

func TestTritString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatal("Trit.String mismatch")
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	v := New(130) // spans three words
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) != X {
			t.Fatalf("new vector not all-X at %d", i)
		}
	}
	r := rand.New(rand.NewSource(1))
	ref := make([]Trit, 130)
	for iter := 0; iter < 2000; iter++ {
		i := r.Intn(130)
		tr := Trit(r.Intn(3))
		v.Set(i, tr)
		ref[i] = tr
		j := r.Intn(130)
		if v.Get(j) != ref[j] {
			t.Fatalf("Get(%d)=%v want %v", j, v.Get(j), ref[j])
		}
	}
}

func TestFromStringString(t *testing.T) {
	s := "01X10XX1"
	v := MustFromString(s)
	if v.String() != s {
		t.Fatalf("round trip: got %q want %q", v.String(), s)
	}
	if v.StringU() != "01U10UU1" {
		t.Fatalf("StringU: got %q", v.StringU())
	}
	if _, err := FromString("01Z"); err == nil {
		t.Fatal("expected error for invalid character")
	}
}

func TestMatchesPaperExamples(t *testing.T) {
	// From the paper's introduction: 111100 and 111011 both match 111UUU.
	mv := MustFromString("111UUU")
	for _, s := range []string{"111100", "111011", "111000", "111111"} {
		if !mv.Matches(MustFromString(s)) {
			t.Errorf("%s should match 111UUU", s)
		}
	}
	for _, s := range []string{"011000", "101111", "110000"} {
		if mv.Matches(MustFromString(s)) {
			t.Errorf("%s should not match 111UUU", s)
		}
	}
	// X in the block matches any MV value.
	if !MustFromString("1U0").Matches(MustFromString("1XX")) {
		t.Error("X positions in block must match specified MV positions")
	}
}

func TestMatchesSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := RandomTernary(20, r)
		b := RandomTernary(20, r)
		if a.Matches(b) != b.Matches(a) {
			t.Fatalf("Matches not symmetric for %s vs %s", a, b)
		}
	}
}

func TestSubsumes(t *testing.T) {
	cases := []struct {
		gen, spec string
		want      bool
	}{
		{"111U", "1110", true},
		{"111U", "1111", true},
		{"UUUU", "0110", true},
		{"1110", "111U", false},
		{"111U", "110U", false},
		{"111U", "111U", true},
		{"0UU0", "01X0", false}, // X at a position subsumer doesn't care about is fine; here pos2 is X but subsumer has U there => fine; pos1: subsumer U. so actually true?
	}
	// Fix the last case: 0UU0 subsumes 01X0? Subsumer specified at 0 and 3:
	// spec has 0 at pos0 and 0 at pos3 -> true.
	cases[len(cases)-1].want = true
	for _, c := range cases {
		g := MustFromString(c.gen)
		s := MustFromString(c.spec)
		if got := g.Subsumes(s); got != c.want {
			t.Errorf("%s subsumes %s: got %v want %v", c.gen, c.spec, got, c.want)
		}
	}
}

func TestSubsumesImpliesMatchSetContainment(t *testing.T) {
	// Property: if a.Subsumes(b), every fully-specified w matched by b is
	// matched by a. Exhaustive over length 6.
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		a := RandomTernary(6, r)
		b := RandomTernary(6, r)
		if !a.Subsumes(b) {
			continue
		}
		for bits := 0; bits < 64; bits++ {
			w := New(6)
			for j := 0; j < 6; j++ {
				if bits>>uint(j)&1 == 1 {
					w.Set(j, One)
				} else {
					w.Set(j, Zero)
				}
			}
			if b.Matches(w) && !a.Matches(w) {
				t.Fatalf("a=%s subsumes b=%s but w=%s matched only by b", a, b, w)
			}
		}
	}
}

func TestCounts(t *testing.T) {
	v := MustFromString("01XX10X")
	if v.CountSpecified() != 4 {
		t.Errorf("CountSpecified=%d want 4", v.CountSpecified())
	}
	if v.CountX() != 3 {
		t.Errorf("CountX=%d want 3", v.CountX())
	}
	got := v.XPositions()
	want := []int{2, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("XPositions=%v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("XPositions=%v want %v", got, want)
		}
	}
}

func TestSliceConcat(t *testing.T) {
	v := MustFromString("01X10XX1")
	s := v.Slice(2, 5)
	if s.String() != "X10" {
		t.Fatalf("Slice got %q", s.String())
	}
	c := Concat(v.Slice(0, 2), v.Slice(2, 8))
	if !c.Equal(v) {
		t.Fatalf("Concat of slices != original: %s vs %s", c, v)
	}
	if Concat().Len() != 0 {
		t.Fatal("empty Concat should have length 0")
	}
}

func TestCopyFrom(t *testing.T) {
	v := New(10)
	v.CopyFrom(MustFromString("101"), 4)
	if v.String() != "XXXX101XXX" {
		t.Fatalf("CopyFrom got %q", v.String())
	}
}

func TestSpecifyOverlay(t *testing.T) {
	v := MustFromString("0X1X")
	if v.Specify(Zero).String() != "0010" {
		t.Fatalf("Specify(0) got %q", v.Specify(Zero).String())
	}
	if v.Specify(One).String() != "0111" {
		t.Fatalf("Specify(1) got %q", v.Specify(One).String())
	}
	fill := MustFromString("1111")
	if v.Overlay(fill).String() != "0111" {
		t.Fatalf("Overlay got %q", v.Overlay(fill).String())
	}
}

func TestCompatible(t *testing.T) {
	orig := MustFromString("1X0X")
	dec := MustFromString("1101")
	if !orig.Compatible(dec) {
		t.Fatal("decoded block preserving specified bits must be Compatible")
	}
	bad := MustFromString("0101")
	if orig.Compatible(bad) {
		t.Fatal("flipped specified bit must not be Compatible")
	}
}

func TestHammingSpecified(t *testing.T) {
	a := MustFromString("110X")
	b := MustFromString("011X")
	if got := a.HammingSpecified(b); got != 2 {
		t.Fatalf("HammingSpecified=%d want 2", got)
	}
}

func TestEqualClone(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v := RandomTernary(100, r)
	c := v.Clone()
	if !v.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(50, One)
	c.Set(50, X)
	v.Set(50, X)
	if !v.Equal(c) {
		t.Fatal("setting X should normalize value plane")
	}
	c.Set(3, One)
	v.Set(3, Zero)
	if v.Equal(c) {
		t.Fatal("different vectors reported equal")
	}
	if v.Equal(New(99)) {
		t.Fatal("different lengths reported equal")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	v := New(4)
	mustPanic("Get", func() { v.Get(4) })
	mustPanic("Set", func() { v.Set(-1, One) })
	mustPanic("Matches", func() { v.Matches(New(5)) })
	mustPanic("Subsumes", func() { v.Subsumes(New(5)) })
	mustPanic("Slice", func() { v.Slice(2, 5) })
	mustPanic("Specify", func() { v.Specify(X) })
	mustPanic("negative", func() { New(-1) })
	mustPanic("CopyFrom", func() { v.CopyFrom(New(3), 2) })
	mustPanic("Overlay", func() { v.Overlay(New(5)) })
	mustPanic("Hamming", func() { v.HammingSpecified(New(5)) })
}

// quick-check properties

func TestQuickMatchesReflexive(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := rand.New(rand.NewSource(seed))
		v := RandomTernary(n, r)
		return v.Matches(v) && v.Subsumes(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsumeTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 1
		// Build a chain: c fully random; b generalizes c; a generalizes b.
		c := RandomTernary(n, r)
		b := c.Clone()
		a := b.Clone()
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				b.Set(i, X)
			}
			if b.Get(i) == X || r.Intn(3) == 0 {
				a.Set(i, X)
			}
		}
		return a.Subsumes(b) && b.Subsumes(c) && a.Subsumes(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200) + 1
		v := RandomTernary(n, r)
		w, err := FromString(v.String())
		return err == nil && w.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpecifyMatchesOriginal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(100) + 1
		v := RandomTernary(n, r)
		return v.Matches(v.Specify(Zero)) && v.Matches(v.Specify(One)) &&
			v.Subsumes(v.Specify(One))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatches(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	v := RandomTernary(12, r)
	o := RandomTernary(12, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Matches(o)
	}
}
