// Package runlength implements fixed-block run-length coding of test data
// (Jas & Touba, ITC'98 style): don't-cares are filled with 0 to maximize
// 0-runs, and each run of 0s terminated by a 1 is encoded with a b-bit
// counter. A run longer than 2^b-1 is split by emitting the all-ones
// counter value, which means "2^b-1 zeros, no terminating 1".
package runlength

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitstream"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// ZeroFill flattens the test set and replaces every X with 0 — the
// standard fill for run-length-family coders.
func ZeroFill(ts *testset.TestSet) tritvec.Vector {
	return ts.Flatten().Specify(tritvec.Zero)
}

// Runs extracts the 0-run lengths of a fully specified bit string: one
// entry per 1-bit (the zeros preceding it); a trailing run without a
// terminating 1 is returned separately. The scan is word-wise: each
// 64-position word costs one TrailingZeros64 per 1-bit it contains, so
// the long 0-runs typical of test data are skipped a word at a time.
func Runs(flat tritvec.Vector) (runs []int, trailing int) {
	n := flat.Len()
	care, val := flat.Words()
	last := -1 // position of the previous 1-bit
	for w := range val {
		k := n - w*64
		mask := ^uint64(0)
		if k < 64 {
			mask = 1<<uint(k) - 1
		}
		if care[w]&mask != mask {
			panic("runlength: unspecified bit in Runs input")
		}
		for x := val[w]; x != 0; x &= x - 1 {
			pos := w*64 + bits.TrailingZeros64(x)
			runs = append(runs, pos-last-1)
			last = pos
		}
	}
	return runs, n - 1 - last
}

// Result reports an encoding.
type Result struct {
	OriginalBits   int
	CompressedBits int
	Stream         *bitstream.Writer
}

// RatePercent returns the paper-style compression rate.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// MinCounterWidth and MaxCounterWidth bound the run counter width b.
// They are the single source of truth for the parameter's range: the
// Compress/Decompress validation here, the container parameter check in
// the public codec, and the range advertised by a tcompd daemon's
// GET /v1/codecs all derive from these constants.
const (
	MinCounterWidth = 1
	MaxCounterWidth = 30
)

// Compress encodes ts with b-bit run counters.
func Compress(ts *testset.TestSet, b int) (*Result, error) {
	if b < MinCounterWidth || b > MaxCounterWidth {
		return nil, fmt.Errorf("runlength: counter width %d out of range", b)
	}
	flat := ZeroFill(ts)
	w := bitstream.NewWriter()
	max := (1 << uint(b)) - 1
	emit := func(run int, terminated bool) {
		for run >= max {
			w.WriteBits(uint64(max), b)
			run -= max
		}
		if terminated {
			w.WriteBits(uint64(run), b)
		} else if run > 0 {
			// Trailing zeros: emit as split runs; the decoder stops at
			// the original length, so a final full-length marker works.
			w.WriteBits(uint64(max), b)
			// Any residue beyond is implied by total length.
		}
	}
	runs, trailing := Runs(flat)
	for _, r := range runs {
		emit(r, true)
	}
	emit(trailing, false)
	return &Result{OriginalBits: ts.TotalBits(), CompressedBits: w.Len(), Stream: w}, nil
}

// Decompress reconstructs totalBits bits from any bit source — the
// in-memory reader or the io.Reader-fed streaming one. A stream that ends
// before totalBits (including a final partial counter, which carries no
// information) implies the rest is zeros.
func Decompress(r bitstream.Source, b, totalBits int) (tritvec.Vector, error) {
	if b < MinCounterWidth || b > MaxCounterWidth {
		return tritvec.Vector{}, fmt.Errorf("runlength: counter width %d out of range", b)
	}
	if totalBits < 0 {
		return tritvec.Vector{}, fmt.Errorf("runlength: negative output size %d", totalBits)
	}
	out := tritvec.New(totalBits)
	max := uint64(1<<uint(b)) - 1
	pos := 0
	for pos < totalBits {
		v, err := r.ReadBits(b)
		if err != nil {
			if errors.Is(err, bitstream.ErrEOS) {
				// Stream exhausted: the rest is implied zeros.
				out.FillZeros(pos, totalBits-pos)
				pos = totalBits
				break
			}
			return tritvec.Vector{}, err
		}
		n := int(v)
		if n > totalBits-pos {
			n = totalBits - pos
		}
		out.FillZeros(pos, n)
		pos += n
		if v != max && pos < totalBits {
			out.Set(pos, tritvec.One)
			pos++
		}
	}
	return out, nil
}

// Verify checks that decoded preserves the specified bits of the original
// test set under zero fill.
func Verify(ts *testset.TestSet, decoded tritvec.Vector) error {
	want := ZeroFill(ts)
	if want.Len() != decoded.Len() {
		return fmt.Errorf("runlength: length mismatch %d vs %d", want.Len(), decoded.Len())
	}
	if !want.Equal(decoded) {
		return fmt.Errorf("runlength: decoded stream differs from zero-filled original")
	}
	return nil
}
