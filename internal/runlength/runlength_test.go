package runlength

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestZeroFill(t *testing.T) {
	ts, _ := testset.ParseStrings("1X0X")
	if got := ZeroFill(ts).String(); got != "1000" {
		t.Fatalf("ZeroFill=%q", got)
	}
}

func TestRuns(t *testing.T) {
	flat := tritvec.MustFromString("0001001100")
	runs, trailing := Runs(flat)
	want := []int{3, 2, 0}
	if len(runs) != len(want) {
		t.Fatalf("runs=%v", runs)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs=%v want %v", runs, want)
		}
	}
	if trailing != 2 {
		t.Fatalf("trailing=%d", trailing)
	}
}

func TestRunsPanicsOnX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Runs(tritvec.MustFromString("0X1"))
}

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 30; iter++ {
		ts := testset.Random(10, 20, r.Float64()*0.5, r)
		res, err := Compress(ts, 4)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), 4, ts.TotalBits())
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(ts, dec); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestLongRunSplitting(t *testing.T) {
	// A run longer than 2^b-1 must split correctly.
	ts := testset.New(40)
	p := tritvec.New(40)
	for i := 0; i < 40; i++ {
		p.Set(i, tritvec.Zero)
	}
	p.Set(39, tritvec.One) // 39 zeros then a 1
	ts.Add(p)
	res, err := Compress(ts, 3) // max run 7
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(bitstream.FromWriter(res.Stream), 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDataCompresses(t *testing.T) {
	// Very sparse data (mostly X -> zeros) must achieve positive rate.
	r := rand.New(rand.NewSource(2))
	ts := testset.Random(32, 50, 0.03, r)
	res, err := Compress(ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatePercent() <= 0 {
		t.Fatalf("rate=%.1f%% on sparse data", res.RatePercent())
	}
}

func TestBadCounterWidth(t *testing.T) {
	ts, _ := testset.ParseStrings("01")
	if _, err := Compress(ts, 0); err == nil {
		t.Fatal("b=0 accepted")
	}
	if _, err := Compress(ts, 31); err == nil {
		t.Fatal("b=31 accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts := testset.Random(r.Intn(20)+1, r.Intn(30)+1, r.Float64(), r)
		b := r.Intn(8) + 2
		res, err := Compress(ts, b)
		if err != nil {
			return false
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), b, ts.TotalBits())
		if err != nil {
			return false
		}
		return Verify(ts, dec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	ts, _ := testset.ParseStrings("11")
	if err := Verify(ts, tritvec.MustFromString("111")); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Verify(ts, tritvec.MustFromString("10")); err == nil {
		t.Fatal("wrong bits accepted")
	}
}
