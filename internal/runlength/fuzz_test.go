package runlength

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/testset"
)

// FuzzRoundTrip asserts encode -> decode is lossless for every counter
// width over arbitrary test sets.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1), uint8(4))
	f.Add([]byte{0xff, 0x00, 0x55, 0xaa}, uint8(8), uint8(2))
	f.Add([]byte{0x01, 0x40, 0x90, 0x00, 0x00, 0x06}, uint8(13), uint8(7))
	f.Add([]byte("fuzz seed corpus"), uint8(24), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, width, b uint8) {
		ts := testset.FromFuzz(data, int(width%24)+1)
		if ts == nil {
			t.Skip("no patterns")
		}
		bw := int(b%30) + 1
		res, err := Compress(ts, bw)
		if err != nil {
			t.Fatalf("compress(b=%d): %v", bw, err)
		}
		decoded, err := Decompress(bitstream.FromWriter(res.Stream), bw, ts.TotalBits())
		if err != nil {
			t.Fatalf("decompress(b=%d): %v", bw, err)
		}
		if err := Verify(ts, decoded); err != nil {
			t.Fatalf("round trip (b=%d, width=%d, %d patterns): %v",
				bw, ts.Width, ts.NumPatterns(), err)
		}
	})
}
