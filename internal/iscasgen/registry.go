// Package iscasgen carries the paper's per-circuit experimental metadata
// (Tables 1 and 2: circuit names, test-set sizes in bits, and all
// published compression rates) and generates deterministic synthetic test
// sets with matching dimensions and calibrated compressibility.
//
// Substitution note (see DESIGN.md §4): the actual ISCAS-85/89 netlists
// and the Kajihara/Miyase and TIP test sets are third-party artifacts
// that cannot be shipped here. The compressors under study only consume a
// {0,1,X} string, so a generator that reproduces (a) the exact test-set
// dimensions, (b) the structural properties that code-based compression
// exploits (column bias, repeated care-bit templates, two-pattern pairing
// for path delay), and (c) a specified-bit density calibrated so the 9C
// baseline reproduces its published rate, exercises the identical code
// path at a comparable operating point.
package iscasgen

import "fmt"

// Kind distinguishes the two experiment families.
type Kind int

// Test-set kinds.
const (
	StuckAt Kind = iota
	PathDelay
)

// String names the kind.
func (k Kind) String() string {
	if k == PathDelay {
		return "path-delay"
	}
	return "stuck-at"
}

// Meta is one row of a paper table.
type Meta struct {
	Name  string
	Kind  Kind
	Width int // circuit inputs n (combinational part: PI + PPI)
	Bits  int // paper test-set size T·n in bits

	// Published compression rates, in percent.
	Paper9C   float64 // column '9C'
	Paper9CHC float64 // column '9C+HC'
	PaperEA   float64 // Table 1: 'EA' (K=12,L=64); Table 2: 'EA1' (K=8,L=9)
	PaperEA2  float64 // Table 1: 'EA-Best'; Table 2: 'EA2' (K=12,L=64)
}

// Patterns returns T = Bits / Width.
func (m Meta) Patterns() int { return m.Bits / m.Width }

// Validate checks the registry invariant Bits % Width == 0 (and, for path
// delay, an even pattern count so patterns pair up).
func (m Meta) Validate() error {
	if m.Width <= 0 || m.Bits <= 0 {
		return fmt.Errorf("iscasgen: %s: bad dimensions", m.Name)
	}
	if m.Bits%m.Width != 0 {
		return fmt.Errorf("iscasgen: %s: bits %d not divisible by width %d", m.Name, m.Bits, m.Width)
	}
	if m.Kind == PathDelay && m.Patterns()%2 != 0 {
		return fmt.Errorf("iscasgen: %s: odd pattern count %d for two-pattern tests", m.Name, m.Patterns())
	}
	return nil
}

// Table1 returns the stuck-at registry (paper Table 1, 39 circuits,
// sorted by increasing test-set size as in the paper).
func Table1() []Meta {
	return []Meta{
		{"s349", StuckAt, 24, 624, 23, 30, 54.2, 55.8},
		{"s344", StuckAt, 24, 624, 25, 33, 51.8, 55.8},
		{"s298", StuckAt, 17, 629, 19, 27, 45.2, 51.2},
		{"s208", StuckAt, 19, 722, 26, 32, 47.8, 50.4},
		{"s400", StuckAt, 24, 984, 29, 36, 54.4, 56.4},
		{"s382", StuckAt, 24, 1008, 29, 36, 52.0, 54.2},
		{"s386", StuckAt, 13, 1157, 0, 13, 30.4, 30.6},
		{"s444", StuckAt, 24, 1176, 40, 43, 54.4, 57.8},
		{"c6288", StuckAt, 32, 1216, 8, 19, 17.6, 20.4},
		{"s510", StuckAt, 25, 1850, 42, 45, 57.6, 57.6},
		{"c432", StuckAt, 36, 1944, 26, 36, 49.2, 50.4},
		{"s526", StuckAt, 24, 1944, 25, 29, 46.4, 46.4},
		{"s1494", StuckAt, 14, 2324, -1, 11, 23.0, 28.9},
		{"s420", StuckAt, 34, 2380, 53, 55, 54.4, 56.2},
		{"s1488", StuckAt, 14, 2436, 2, 15, 25.6, 30.0},
		{"s832", StuckAt, 23, 3404, 35, 38, 43.8, 43.8},
		{"s820", StuckAt, 23, 3496, 31, 35, 42.8, 43.4},
		{"c499", StuckAt, 41, 3854, 43, 51, 45.0, 51.6},
		{"s713", StuckAt, 54, 4104, 51, 52, 61.4, 61.8},
		{"s641", StuckAt, 54, 4212, 51, 52, 60.2, 62.2},
		{"c880", StuckAt, 60, 4680, 40, 42, 47.8, 49.8},
		{"c1908", StuckAt, 33, 4950, -2, 10, 18.4, 19.0},
		{"s953", StuckAt, 45, 5220, 51, 53, 61.6, 63.2},
		{"c1355", StuckAt, 41, 5289, 38, 45, 40.8, 44.8},
		{"s1196", StuckAt, 32, 6016, 34, 38, 46.2, 46.2},
		{"s1238", StuckAt, 32, 6240, 34, 37, 44.0, 45.8},
		{"s1423", StuckAt, 91, 8463, 59, 59, 61.0, 61.6},
		{"s838", StuckAt, 67, 8509, 67, 68, 66.2, 68.6},
		{"c3540", StuckAt, 50, 10350, 36, 39, 43.8, 44.2},
		{"c2670", StuckAt, 233, 33086, 70, 70, 70.4, 70.6},
		{"c5315", StuckAt, 178, 33108, 65, 65, 66.2, 67.0},
		{"c7552", StuckAt, 207, 60030, 63, 64, 63.2, 63.2},
		{"s5378", StuckAt, 214, 71262, 73, 73, 76.8, 76.8},
		{"s9234", StuckAt, 247, 118560, 75, 75, 76.2, 76.4},
		{"s35932", StuckAt, 1763, 133988, 71, 71, 73.8, 73.8},
		{"s15850", StuckAt, 611, 305500, 80, 80, 83.0, 83.0},
		{"s13207", StuckAt, 700, 410200, 83, 83, 85.8, 85.9},
		{"s38584", StuckAt, 1464, 1250256, 82, 82, 86.2, 86.2},
		{"s38417", StuckAt, 1664, 2068352, 84, 84, 87.0, 87.9},
	}
}

// Table1Averages returns the paper's 'Average' row for Table 1.
func Table1Averages() (nineC, nineCHC, ea, eaBest float64) {
	return 42.6, 46.8, 54.2, 55.9
}

// Table2 returns the path-delay registry (paper Table 2, 29 circuits).
func Table2() []Meta {
	return []Meta{
		{"s27", PathDelay, 7, 448, -5, 9, 46.2, 51.6},
		{"s298", PathDelay, 17, 6018, 41, 44, 48.9, 54.2},
		{"s386", PathDelay, 13, 6032, 8, 19, 24.7, 26.0},
		{"s208", PathDelay, 19, 7524, 40, 43, 43.5, 46.6},
		{"s444", PathDelay, 24, 14544, 49, 52, 55.6, 55.8},
		{"s382", PathDelay, 24, 16272, 50, 55, 58.0, 59.2},
		{"s400", PathDelay, 24, 16320, 50, 55, 57.1, 58.2},
		{"s526", PathDelay, 24, 17088, 44, 45, 59.3, 60.0},
		{"s349", PathDelay, 24, 17712, 41, 44, 57.0, 61.2},
		{"s344", PathDelay, 24, 17712, 41, 44, 57.0, 60.8},
		{"s510", PathDelay, 25, 18450, 45, 47, 48.9, 52.6},
		{"s1494", PathDelay, 14, 20300, 1, 15, 19.9, 25.0},
		{"s1488", PathDelay, 14, 20664, 2, 15, 20.5, 24.6},
		{"s820", PathDelay, 23, 21850, 34, 38, 38.2, 42.4},
		{"s832", PathDelay, 23, 22448, 34, 38, 38.4, 42.4},
		{"s420", PathDelay, 34, 43588, 58, 59, 57.9, 51.2},
		{"s713", PathDelay, 54, 56376, 61, 63, 64.6, 69.0},
		{"s953", PathDelay, 45, 75510, 57, 59, 59.4, 62.8},
		{"s641", PathDelay, 54, 94500, 60, 62, 62.6, 66.2},
		{"s1196", PathDelay, 32, 95616, 40, 42, 46.9, 46.4},
		{"s1238", PathDelay, 32, 96128, 39, 41, 46.3, 45.8},
		{"s838", PathDelay, 66, 269808, 70, 70, 69.3, 64.2},
		{"s1423", PathDelay, 91, 2321592, 49, 50, 51.8, 52.8},
		{"s5378", PathDelay, 214, 3625588, 78, 78, 77.5, 81.2},
		{"s9234", PathDelay, 247, 4666324, 81, 82, 80.1, 83.2},
		{"s35932", PathDelay, 1763, 7108416, 87, 87, 86.7, 91.0},
		{"s13207", PathDelay, 700, 10234000, 85, 85, 85.9, 89.6},
		{"s15850", PathDelay, 611, 36502362, 84, 84, 82.7, 86.3},
		{"s38584", PathDelay, 1464, 81190512, 87, 87, 67.5, 90.0},
	}
}

// Table2Averages returns the paper's 'Average' row for Table 2.
func Table2Averages() (nineC, nineCHC, ea1, ea2 float64) {
	return 48.7, 52.1, 55.6, 58.6
}

// Find returns the registry entry with the given name and kind.
func Find(name string, kind Kind) (Meta, error) {
	var table []Meta
	if kind == PathDelay {
		table = Table2()
	} else {
		table = Table1()
	}
	for _, m := range table {
		if m.Name == name {
			return m, nil
		}
	}
	return Meta{}, fmt.Errorf("iscasgen: circuit %q not in %s registry", name, kind)
}
