package iscasgen

import (
	"math"
	"testing"

	"repro/internal/ninec"
)

func TestRegistryDimensionsValid(t *testing.T) {
	for _, m := range Table1() {
		if err := m.Validate(); err != nil {
			t.Errorf("Table 1 %s: %v", m.Name, err)
		}
		if m.Kind != StuckAt {
			t.Errorf("%s: wrong kind", m.Name)
		}
	}
	for _, m := range Table2() {
		if err := m.Validate(); err != nil {
			t.Errorf("Table 2 %s: %v", m.Name, err)
		}
		if m.Kind != PathDelay {
			t.Errorf("%s: wrong kind", m.Name)
		}
	}
}

func TestRegistrySizesMatchPaper(t *testing.T) {
	// Spot-check exact sizes quoted in the paper.
	checks := []struct {
		name string
		kind Kind
		bits int
	}{
		{"s349", StuckAt, 624},
		{"s38417", StuckAt, 2068352},
		{"s27", PathDelay, 448},
		{"s38584", PathDelay, 81190512},
	}
	for _, c := range checks {
		m, err := Find(c.name, c.kind)
		if err != nil {
			t.Fatal(err)
		}
		if m.Bits != c.bits {
			t.Errorf("%s: bits=%d want %d", c.name, m.Bits, c.bits)
		}
	}
}

func TestRegistryCounts(t *testing.T) {
	if len(Table1()) != 39 {
		t.Errorf("Table 1 has %d circuits, paper has 39", len(Table1()))
	}
	if len(Table2()) != 29 {
		t.Errorf("Table 2 has %d circuits, paper has 29", len(Table2()))
	}
}

func TestPaperAveragesConsistent(t *testing.T) {
	// The stored per-circuit rates must reproduce the paper's average
	// rows (to rounding).
	check := func(name string, metas []Meta, wants [4]float64, get func(Meta) [4]float64) {
		var sums [4]float64
		for _, m := range metas {
			v := get(m)
			for i := range sums {
				sums[i] += v[i]
			}
		}
		for i := range sums {
			avg := sums[i] / float64(len(metas))
			if math.Abs(avg-wants[i]) > 0.15 {
				t.Errorf("%s column %d: registry average %.2f vs paper %.1f", name, i, avg, wants[i])
			}
		}
	}
	a, b, c, d := Table1Averages()
	check("Table1", Table1(), [4]float64{a, b, c, d}, func(m Meta) [4]float64 {
		return [4]float64{m.Paper9C, m.Paper9CHC, m.PaperEA, m.PaperEA2}
	})
	a, b, c, d = Table2Averages()
	check("Table2", Table2(), [4]float64{a, b, c, d}, func(m Meta) [4]float64 {
		return [4]float64{m.Paper9C, m.Paper9CHC, m.PaperEA, m.PaperEA2}
	})
}

func TestFindErrors(t *testing.T) {
	if _, err := Find("c17", StuckAt); err == nil {
		t.Fatal("c17 is not in the paper's tables")
	}
	if _, err := Find("s27", StuckAt); err == nil {
		t.Fatal("s27 only appears in Table 2")
	}
	if _, err := Find("s27", PathDelay); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDimensions(t *testing.T) {
	m, _ := Find("s349", StuckAt)
	ts, err := Generate(m, GenOptions{SkipCalibration: true, Density: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Width != 24 || ts.TotalBits() != 624 {
		t.Fatalf("dims %d x %d", ts.Width, ts.NumPatterns())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m, _ := Find("s298", StuckAt)
	a, err := Generate(m, GenOptions{SkipCalibration: true, Density: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, GenOptions{SkipCalibration: true, Density: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Compatible(b) || !b.Compatible(a) {
		t.Fatal("generation not deterministic")
	}
	c, err := Generate(m, GenOptions{SkipCalibration: true, Density: 0.3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Compatible(c) && c.Compatible(a) {
		t.Fatal("different seeds produced identical test sets")
	}
}

func TestGenerateMaxBitsScaling(t *testing.T) {
	m, _ := Find("s38417", StuckAt)
	ts, err := Generate(m, GenOptions{MaxBits: 50000, SkipCalibration: true, Density: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if ts.TotalBits() > 50000 {
		t.Fatalf("MaxBits not honored: %d", ts.TotalBits())
	}
	if ts.Width != m.Width {
		t.Fatal("scaling must preserve width")
	}
}

func TestGeneratePathDelayPairs(t *testing.T) {
	m, _ := Find("s27", PathDelay)
	ts, err := Generate(m, GenOptions{SkipCalibration: true, Density: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumPatterns()%2 != 0 {
		t.Fatal("path-delay set must have paired patterns")
	}
	// Pairs must be correlated: v2 shares most specified positions of v1.
	same, total := 0, 0
	for i := 0; i+1 < ts.NumPatterns(); i += 2 {
		v1, v2 := ts.Patterns[i], ts.Patterns[i+1]
		for j := 0; j < v1.Len(); j++ {
			if v1.Get(j) != 0 || v2.Get(j) != 0 { // either specified
				total++
				if v1.Get(j) == v2.Get(j) {
					same++
				}
			}
		}
	}
	if total == 0 || float64(same)/float64(total) < 0.6 {
		t.Fatalf("pairs not correlated: %d/%d", same, total)
	}
}

func TestCalibrationHitsPaper9CRate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test in -short mode")
	}
	// For a few representative circuits across the rate spectrum, the
	// calibrated test set's measured 9C rate must be close to the
	// published one — this is the substitution's load-bearing property.
	for _, name := range []string{"s386", "s444", "s13207"} {
		m, err := Find(name, StuckAt)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := Generate(m, GenOptions{MaxBits: 200000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ninec.Compress(ts, 8)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(res.RatePercent() - m.Paper9C); diff > 6 {
			t.Errorf("%s: measured 9C %.1f%% vs paper %.1f%% (|Δ|=%.1f)",
				name, res.RatePercent(), m.Paper9C, diff)
		}
	}
}

func TestCalibrationPathDelay(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test in -short mode")
	}
	m, err := Find("s382", PathDelay)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Generate(m, GenOptions{MaxBits: 200000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ninec.Compress(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.RatePercent() - m.Paper9C); diff > 6 {
		t.Errorf("s382 PD: measured 9C %.1f%% vs paper %.1f%%", res.RatePercent(), m.Paper9C)
	}
}

func TestKindString(t *testing.T) {
	if StuckAt.String() != "stuck-at" || PathDelay.String() != "path-delay" {
		t.Fatal("Kind.String wrong")
	}
}
