package iscasgen

import (
	"hash/fnv"
	"math/rand"

	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// GenOptions configures synthetic test-set generation.
type GenOptions struct {
	// MaxBits caps the generated size: if the registry size exceeds it,
	// the pattern count is scaled down proportionally (keeping pairs
	// intact for path delay). 0 = full paper size. Compression rates are
	// density-driven and essentially size-invariant, so scaled sets
	// preserve the comparison while keeping experiment runtimes sane.
	MaxBits int
	// Seed perturbs the per-circuit deterministic stream.
	Seed int64
	// SkipCalibration uses a fixed density instead of calibrating the 9C
	// baseline to its published rate (used by tests).
	SkipCalibration bool
	// Density is the specified-bit density used when SkipCalibration is
	// set.
	Density float64
}

// Generate produces the synthetic test set for a registry entry. The
// result is deterministic in (m, opt.Seed). The specified-bit density is
// calibrated by bisection so that our 9C implementation (K=8, the paper's
// best K) reproduces the circuit's published 9C rate.
func Generate(m Meta, opt GenOptions) (*testset.TestSet, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	patterns := m.Patterns()
	if opt.MaxBits > 0 && m.Bits > opt.MaxBits {
		patterns = opt.MaxBits / m.Width
		if m.Kind == PathDelay {
			patterns &^= 1
		}
		if patterns < 4 {
			patterns = 4
		}
	}
	density := opt.Density
	if !opt.SkipCalibration {
		density = calibrate(m, opt.Seed)
	}
	if density <= 0 {
		density = 0.25
	}
	return synthesize(m, density, patterns, opt.Seed), nil
}

// seedFor derives a stable per-circuit seed.
func seedFor(m Meta, seed int64, salt string) int64 {
	h := fnv.New64a()
	h.Write([]byte(m.Name))
	h.Write([]byte{byte(m.Kind)})
	h.Write([]byte(salt))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> uint(8*i))
	}
	h.Write(b[:])
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// calibrate bisects the specified-bit density so that 9C compression at
// K=8 on a sample lands near the published rate. The rate is monotone
// decreasing in density (denser test sets compress worse), which makes
// bisection sound.
func calibrate(m Meta, seed int64) float64 {
	target := m.Paper9C
	// Sample size: enough blocks for a stable rate, small enough to keep
	// calibration cheap on the multi-megabit circuits.
	samplePatterns := m.Patterns()
	if maxP := 60000 / m.Width; samplePatterns > maxP {
		samplePatterns = maxP
	}
	if samplePatterns < 8 {
		samplePatterns = 8
	}
	if m.Kind == PathDelay {
		samplePatterns &^= 1
		if samplePatterns < 4 {
			samplePatterns = 4
		}
	}
	rateAt := func(d float64) float64 {
		ts := synthesize(m, d, samplePatterns, seed)
		res, err := ninec.Compress(ts, 8)
		if err != nil {
			return -100
		}
		return res.RatePercent()
	}
	lo, hi := 0.005, 0.95
	for iter := 0; iter < 16; iter++ {
		mid := (lo + hi) / 2
		if rateAt(mid) > target {
			lo = mid // still compressing too well: increase density
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// synthesize generates the test set at the given density.
//
// Structure model (what makes real test data compressible the way the
// paper's is):
//   - column bias: each circuit input has a preferred logic value, so the
//     same bit positions repeat values across patterns;
//   - care templates: ATPG patterns targeting faults in the same cone
//     specify overlapping input subsets, modeled by a small pool of care
//     masks each pattern perturbs slightly;
//   - path delay: patterns come in (v1, v2) pairs where v2 equals v1 with
//     a single launching transition plus slight divergence.
func synthesize(m Meta, density float64, patterns int, seed int64) *testset.TestSet {
	r := rand.New(rand.NewSource(seedFor(m, seed, "synth")))
	w := m.Width
	ts := testset.New(w)

	bias := make([]float64, w)
	for j := range bias {
		switch r.Intn(5) {
		case 0:
			bias[j] = 0.5
		case 1, 2:
			bias[j] = 0.12
		default:
			bias[j] = 0.88
		}
	}

	nTemplates := patterns/8 + 3
	if nTemplates > 64 {
		nTemplates = 64
	}
	templates := make([][]bool, nTemplates)
	for t := range templates {
		mask := make([]bool, w)
		for j := range mask {
			mask[j] = r.Float64() < density
		}
		templates[t] = mask
	}

	drawValue := func(j int) tritvec.Trit {
		if r.Float64() < bias[j] {
			return tritvec.One
		}
		return tritvec.Zero
	}

	drawPattern := func() tritvec.Vector {
		mask := templates[r.Intn(nTemplates)]
		p := tritvec.New(w)
		for j := 0; j < w; j++ {
			care := mask[j]
			if r.Float64() < 0.05 { // template noise
				care = r.Float64() < density
			}
			if care {
				p.Set(j, drawValue(j))
			}
		}
		return p
	}

	if m.Kind == StuckAt {
		for i := 0; i < patterns; i++ {
			ts.Add(drawPattern())
		}
		return ts
	}

	// Path delay: pairs (v1, v2).
	for i := 0; i < patterns/2; i++ {
		v1 := drawPattern()
		v2 := v1.Clone()
		// Launch transition: flip one specified bit (or specify one).
		flip := r.Intn(w)
		switch v2.Get(flip) {
		case tritvec.One:
			v2.Set(flip, tritvec.Zero)
		case tritvec.Zero:
			v2.Set(flip, tritvec.One)
		default:
			v2.Set(flip, drawValue(flip))
		}
		// Slight divergence elsewhere.
		for j := 0; j < w; j++ {
			if j != flip && v2.Get(j) != tritvec.X && r.Float64() < 0.08 {
				v2.Set(j, drawValue(j))
			}
		}
		ts.Add(v1)
		ts.Add(v2)
	}
	for ts.NumPatterns() < patterns {
		ts.Add(drawPattern())
	}
	return ts
}
