package tables

import (
	"fmt"
	"math/rand"

	"repro/internal/blockcode"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/huffman"
	"repro/internal/iscasgen"
	"repro/internal/mvheur"
	"repro/internal/ninec"
	"repro/internal/testset"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// rateOf computes the Huffman-coded compression rate for a covering.
func rateOf(ts *testset.TestSet, set *blockcode.MVSet, cov *blockcode.Covering) (float64, error) {
	code, err := huffman.Build(cov.Freqs)
	if err != nil {
		return 0, err
	}
	return blockcode.Rate(ts.TotalBits(), set.CompressedBits(cov, code.Lengths)), nil
}

// Ablation compares design variants on one test set; each entry is one
// variant's rate.
type Ablation struct {
	Name    string
	Entries []AblationEntry
}

// AblationEntry is one variant's measured compression rate.
type AblationEntry struct {
	Variant string
	Rate    float64
}

// String renders the ablation as a small table.
func (a Ablation) String() string {
	s := a.Name + ":\n"
	for _, e := range a.Entries {
		s += fmt.Sprintf("  %-32s %7.2f%%\n", e.Variant, e.Rate)
	}
	return s
}

// AblationCoverOrder compares the paper's min-U covering with
// encoding-length-aware covering on the 9C MV set (DESIGN.md §5).
func AblationCoverOrder(ts *testset.TestSet, k int) (Ablation, error) {
	set, err := ninec.MVs(k)
	if err != nil {
		return Ablation{}, err
	}
	code := ninec.FixedCode()
	blocks := blockcode.Partition(ts, k)
	covU := set.Cover(blocks)
	covE := set.CoverByEncoding(blocks, code.Lengths)
	if !covU.OK() || !covE.OK() {
		return Ablation{}, fmt.Errorf("tables: 9C covering failed")
	}
	return Ablation{
		Name: "covering order (9C MVs, fixed code)",
		Entries: []AblationEntry{
			{"min-U first (paper §3.2)", blockcode.Rate(ts.TotalBits(), set.CompressedBits(covU, code.Lengths))},
			{"min encoding length", blockcode.Rate(ts.TotalBits(), set.CompressedBits(covE, code.Lengths))},
		},
	}, nil
}

// AblationSubsume compares the EA result with and without the §3.3
// subsumption post-pass.
func AblationSubsume(ts *testset.TestSet, p core.Params) (Ablation, error) {
	p.SubsumeOpt = false
	plain, err := core.Compress(ts, p)
	if err != nil {
		return Ablation{}, err
	}
	p.SubsumeOpt = true
	opt, err := core.Compress(ts, p)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name: "subsumption post-pass (§3.3)",
		Entries: []AblationEntry{
			{"plain Huffman", plain.Final.RatePercent()},
			{"with subsume fold", opt.Final.RatePercent()},
		},
	}, nil
}

// AblationOperators compares crossover styles at an equal budget.
func AblationOperators(ts *testset.TestSet, p core.Params) (Ablation, error) {
	var entries []AblationEntry
	for _, kind := range []struct {
		name string
		k    ea.CrossoverKind
	}{{"uniform crossover", ea.UniformCrossover}, {"two-point crossover", ea.TwoPointCrossover}} {
		pc := p
		pc.EA.Crossover = kind.k
		res, err := core.Compress(ts, pc)
		if err != nil {
			return Ablation{}, err
		}
		entries = append(entries, AblationEntry{kind.name, res.BestRate})
	}
	return Ablation{Name: "crossover operator", Entries: entries}, nil
}

// AblationSearch compares random MV sets, the greedy heuristic, and the
// EA at matched (K, L) — separating the value of the generalized problem
// formulation from the value of evolutionary search.
func AblationSearch(ts *testset.TestSet, p core.Params) (Ablation, error) {
	blocks := blockcode.Partition(ts, p.K)
	ms := blockcode.Dedup(blocks)

	// Random baseline: best of p.Runs random MV sets.
	randBest := -1e18
	for run := 0; run < p.Runs; run++ {
		set := core.RandomMVSet(p.K, p.L, 0.5, newRand(p.EA.Seed+int64(run)))
		cov := set.CoverMultiset(ms)
		if !cov.OK() {
			continue
		}
		rate, err := rateOf(ts, set, cov)
		if err != nil {
			continue
		}
		if rate > randBest {
			randBest = rate
		}
	}

	greedy, err := mvheur.Rate(ts, p.K, p.L, mvheur.DefaultOptions())
	if err != nil {
		return Ablation{}, err
	}
	eaRes, err := core.Compress(ts, p)
	if err != nil {
		return Ablation{}, err
	}
	pg := p
	pg.SeedGreedy = true
	eaSeeded, err := core.Compress(ts, pg)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name: "search strategy at matched (K,L)",
		Entries: []AblationEntry{
			{"best random MV set", randBest},
			{"greedy heuristic (mvheur)", greedy},
			{"EA (paper)", eaRes.BestRate},
			{"EA seeded with greedy", eaSeeded.BestRate},
		},
	}, nil
}

// RunAblations executes every ablation on a calibrated registry circuit.
func RunAblations(circuit string, cfg Config) ([]Ablation, error) {
	m, err := iscasgen.Find(circuit, iscasgen.StuckAt)
	if err != nil {
		return nil, err
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: cfg.MaxBits, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	p := cfg.eaParams(8, 32, cfg.Seed)
	var out []Ablation
	if a, err := AblationCoverOrder(ts, 8); err == nil {
		out = append(out, a)
	} else {
		return nil, err
	}
	if a, err := AblationSubsume(ts, p); err == nil {
		out = append(out, a)
	} else {
		return nil, err
	}
	if a, err := AblationOperators(ts, p); err == nil {
		out = append(out, a)
	} else {
		return nil, err
	}
	if a, err := AblationSearch(ts, p); err == nil {
		out = append(out, a)
	} else {
		return nil, err
	}
	return out, nil
}
