package tables

import (
	"context"
	"fmt"
	"io"
	"strings"

	tcomp "repro"
	"repro/internal/testset"
)

// StreamRate compares one codec's buffered whole-set compression against
// the chunked streaming path: the rate it loses to per-chunk parameter
// tables, and the container framing overhead it pays for O(chunk)
// memory. This is the data behind the README's "streaming costs a little
// rate" claim — measured, not asserted.
type StreamRate struct {
	Codec string
	// BufferedRate is the whole-set compression rate (percent).
	BufferedRate float64
	// StreamRate is the chunked-path compression rate (percent, payload
	// accounting like the buffered number).
	StreamRate float64
	// ContainerBytes is the full v3 container size, framing included.
	ContainerBytes int
	// Chunks is the number of chunk frames.
	Chunks int
}

// countingWriter tallies container bytes without keeping them.
type countingWriter struct{ n int }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

// StreamRates runs every registered codec over ts twice — buffered and
// chunked with chunkPats patterns per chunk (0 = the streaming default)
// — one pipeline job per codec, reported in registry order.
func StreamRates(ctx context.Context, ts *testset.TestSet, c Config, chunkPats int) ([]StreamRate, error) {
	names := tcomp.Codecs()
	out := make([]StreamRate, len(names))
	opts := []tcomp.Option{
		tcomp.WithSeed(c.Seed),
		tcomp.WithEAParams(c.eaParams(12, 64, c.Seed)),
		tcomp.WithChunkPatterns(chunkPats),
	}
	for i, name := range names {
		art, err := compress(ctx, name, ts, opts...)
		if err != nil {
			return nil, fmt.Errorf("tables: %s buffered: %v", name, err)
		}
		cw := &countingWriter{}
		sw, err := tcomp.NewStreamWriter(ctx, cw, name, ts.Width, append(opts, tcomp.WithWorkers(c.Workers))...)
		if err != nil {
			return nil, fmt.Errorf("tables: %s stream: %v", name, err)
		}
		if err := sw.WriteSet(ts); err != nil {
			return nil, fmt.Errorf("tables: %s stream: %v", name, err)
		}
		if err := sw.Close(); err != nil {
			return nil, fmt.Errorf("tables: %s stream: %v", name, err)
		}
		out[i] = StreamRate{
			Codec:          name,
			BufferedRate:   art.RatePercent(),
			StreamRate:     sw.RatePercent(),
			ContainerBytes: cw.n,
			Chunks:         sw.Chunks(),
		}
	}
	return out, nil
}

// FormatStreamRates renders the comparison as a text table.
func FormatStreamRates(w io.Writer, rates []StreamRate) {
	fmt.Fprintf(w, "%-10s %10s %10s %8s %8s %10s\n",
		"codec", "buffered", "stream", "delta", "chunks", "container")
	fmt.Fprintln(w, strings.Repeat("-", 62))
	for _, r := range rates {
		fmt.Fprintf(w, "%-10s %9.2f%% %9.2f%% %+7.2f%% %8d %9db\n",
			r.Codec, r.BufferedRate, r.StreamRate, r.StreamRate-r.BufferedRate, r.Chunks, r.ContainerBytes)
	}
}
