package tables

import (
	"strings"
	"testing"

	"repro/internal/iscasgen"
)

// smallConfig keeps unit-test runtime low while exercising the full path.
func smallConfig() Config {
	return Config{
		MaxBits:     6000,
		Seed:        1,
		Runs:        1,
		Generations: 25,
		NoImprove:   10,
		Sweep:       false,
	}
}

func TestRunSubsetTable1(t *testing.T) {
	c := smallConfig()
	c.Circuits = []string{"s349", "s386"}
	rows, err := RunTable1(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Bits == 0 || r.Bits > 6000 {
			t.Fatalf("%s: bits=%d", r.Meta.Name, r.Bits)
		}
		if r.REA2 < r.REA-5 {
			t.Errorf("%s: EA-Best %.1f far below EA %.1f", r.Meta.Name, r.REA2, r.REA)
		}
	}
}

func TestRunSubsetTable2(t *testing.T) {
	c := smallConfig()
	c.Circuits = []string{"s27", "s298"}
	rows, err := RunTable2(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Meta.Kind != iscasgen.PathDelay {
			t.Fatal("wrong kind in table 2 row")
		}
	}
}

func TestSweepColumn(t *testing.T) {
	c := smallConfig()
	c.Sweep = true
	c.SweepKs = []int{8}
	c.SweepLs = []int{16}
	c.Circuits = []string{"s344"}
	rows, err := RunTable1(c)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].REA2 < rows[0].REA-1e-9 {
		t.Fatalf("sweep best %.2f below EA average %.2f", rows[0].REA2, rows[0].REA)
	}
}

func TestFormat(t *testing.T) {
	c := smallConfig()
	c.Circuits = []string{"s349"}
	rows, err := RunTable1(c)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rows, iscasgen.StuckAt)
	if !strings.Contains(out, "s349") || !strings.Contains(out, "Average") {
		t.Fatalf("format output missing content:\n%s", out)
	}
	out2 := Format(rows, iscasgen.PathDelay)
	if !strings.Contains(out2, "EA1") {
		t.Fatal("path-delay format must use EA1/EA2 column names")
	}
}

func TestAveragesEmpty(t *testing.T) {
	a, b, c, d := Averages(nil)
	if a != 0 || b != 0 || c != 0 || d != 0 {
		t.Fatal("empty averages must be zero")
	}
}

func TestShapeCheckOnMeasuredSubset(t *testing.T) {
	// A small but diverse circuit subset must reproduce the paper's
	// qualitative ordering 9C <= 9C+HC < EA.
	c := smallConfig()
	c.Runs = 2
	c.Generations = 50
	c.NoImprove = 20
	c.Circuits = []string{"s349", "s298", "s444", "s386"}
	rows, err := RunTable1(c)
	if err != nil {
		t.Fatal(err)
	}
	if bad := ShapeCheck(rows); len(bad) != 0 {
		t.Fatalf("paper shape violated: %v\n%s", bad, Format(rows, iscasgen.StuckAt))
	}
}

func TestConfigs(t *testing.T) {
	q := QuickConfig(1)
	if q.Runs <= 0 || q.MaxBits <= 0 {
		t.Fatal("bad quick config")
	}
	f := FullConfig(1)
	if f.MaxBits != 0 || f.Runs != 5 || f.NoImprove != 500 {
		t.Fatal("full config must use the paper's parameters")
	}
}
