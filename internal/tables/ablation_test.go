package tables

import (
	"strings"
	"testing"

	"repro/internal/iscasgen"
)

func TestRunAblations(t *testing.T) {
	cfg := smallConfig()
	abl, err := RunAblations("s349", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 4 {
		t.Fatalf("expected 4 ablations, got %d", len(abl))
	}
	for _, a := range abl {
		if len(a.Entries) < 2 {
			t.Fatalf("%s: too few entries", a.Name)
		}
		if !strings.Contains(a.String(), "%") {
			t.Fatalf("%s: unformatted output", a.Name)
		}
	}
}

func TestAblationSearchOrdering(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 2
	cfg.Generations = 50
	cfg.NoImprove = 20
	m, err := iscasgen.Find("s298", iscasgen.StuckAt)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: cfg.MaxBits, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.eaParams(8, 32, 1)
	a, err := AblationSearch(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, e := range a.Entries {
			if strings.Contains(e.Variant, name) {
				return e.Rate
			}
		}
		t.Fatalf("entry %q missing", name)
		return 0
	}
	random := get("random")
	eaRate := get("EA (paper)")
	seeded := get("seeded")
	if eaRate <= random {
		t.Fatalf("EA %.2f not above random %.2f — search adds nothing?", eaRate, random)
	}
	// Seeded EA must be at least the greedy seed's quality (elitism).
	if seeded < get("greedy")-1e-9 {
		t.Fatalf("seeded EA %.2f below greedy %.2f", seeded, get("greedy"))
	}
}

func TestAblationSubsumeNeverWorse(t *testing.T) {
	cfg := smallConfig()
	m, _ := iscasgen.Find("s344", iscasgen.StuckAt)
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: cfg.MaxBits, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := AblationSubsume(ts, cfg.eaParams(8, 16, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Note: the two runs share EA seeds, so the underlying MV sets are
	// identical and the post-pass can only help.
	if a.Entries[1].Rate < a.Entries[0].Rate-1e-9 {
		t.Fatalf("subsume pass worsened rate: %.2f -> %.2f",
			a.Entries[0].Rate, a.Entries[1].Rate)
	}
}

func TestAblationCoverOrderErrors(t *testing.T) {
	m, _ := iscasgen.Find("s349", iscasgen.StuckAt)
	ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AblationCoverOrder(ts, 7); err == nil {
		t.Fatal("odd K accepted")
	}
	a, err := AblationCoverOrder(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != 2 {
		t.Fatal("expected two covering variants")
	}
}

func TestRunAblationsUnknownCircuit(t *testing.T) {
	if _, err := RunAblations("nope", smallConfig()); err == nil {
		t.Fatal("unknown circuit accepted")
	}
}
