// Package tables regenerates the paper's experimental exhibits: Table 1
// (stuck-at test sets) and Table 2 (path-delay test sets), each comparing
// 9C, 9C+HC and the EA compressor, plus the (K,L) sweep behind the
// EA-Best column and the ablation studies listed in DESIGN.md.
package tables

import (
	"context"
	"fmt"
	"strings"

	tcomp "repro"
	"repro/internal/core"
	"repro/internal/ea"
	"repro/internal/iscasgen"
	"repro/internal/pipeline"
	"repro/internal/testset"
)

// Config controls an experiment run.
type Config struct {
	// MaxBits caps per-circuit test-set size (0 = full paper sizes; the
	// two largest path-delay sets are then 36M and 81M bits).
	MaxBits int
	// Seed drives test-set generation and the EA.
	Seed int64
	// Runs is the number of EA runs averaged per circuit (paper: 5).
	Runs int
	// Generations / NoImprove bound each EA run (paper: 500 generations
	// without improvement for Table 2).
	Generations int
	NoImprove   int
	// Sweep enables the EA-Best column's (K,L) sweep for Table 1.
	Sweep bool
	// SweepKs/SweepLs configure the sweep grid.
	SweepKs, SweepLs []int
	// Circuits restricts the run to the named circuits (nil = all).
	Circuits []string
	// Workers bounds circuit-level parallelism on the pipeline engine
	// (0 = one worker per CPU, 1 = serial). Per-circuit work depends only
	// on Seed, so every worker count yields identical rows.
	Workers int
}

// QuickConfig returns a configuration sized for CI-scale runs: scaled
// test sets and a reduced-but-real EA budget.
func QuickConfig(seed int64) Config {
	return Config{
		MaxBits:     24000,
		Seed:        seed,
		Runs:        2,
		Generations: 60,
		NoImprove:   25,
		Sweep:       true,
		SweepKs:     []int{8, 12},
		SweepLs:     []int{16, 64},
	}
}

// FullConfig returns the paper's configuration (expensive: hours).
func FullConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Runs:        5,
		Generations: 5000,
		NoImprove:   500,
		Sweep:       true,
		SweepKs:     []int{4, 6, 8, 10, 12, 16},
		SweepLs:     []int{9, 16, 32, 64, 128},
	}
}

// Row is one circuit's measured results next to the paper's numbers.
type Row struct {
	Meta iscasgen.Meta
	Bits int // generated test-set size actually used

	R9C   float64 // measured 9C (K=8)
	R9CHC float64 // measured 9C+HC (K=8)
	REA   float64 // measured EA  (Table 1: K=12,L=64; Table 2: K=8,L=9)
	REA2  float64 // measured EA-Best (Table 1 sweep) / EA2 (Table 2: K=12,L=64)
}

func (c Config) eaParams(k, l int, seed int64) core.Params {
	p := core.Params{
		K:         k,
		L:         l,
		EA:        ea.DefaultConfig(seed),
		ForceAllU: true,
		Runs:      c.Runs,
		Workers:   c.Workers,
	}
	if p.Runs <= 0 {
		p.Runs = 2
	}
	if c.Generations > 0 {
		p.EA.MaxGenerations = c.Generations
	}
	if c.NoImprove > 0 {
		p.EA.MaxNoImprove = c.NoImprove
	}
	return p
}

func (c Config) wants(name string) bool {
	if len(c.Circuits) == 0 {
		return true
	}
	for _, n := range c.Circuits {
		if n == name {
			return true
		}
	}
	return false
}

// compress runs the named registered codec on ts — every column now
// flows through the public codec registry rather than scheme-specific
// entry points.
func compress(ctx context.Context, name string, ts *testset.TestSet, opts ...tcomp.Option) (*tcomp.Artifact, error) {
	codec, err := tcomp.Lookup(name)
	if err != nil {
		return nil, err
	}
	return codec.Compress(ctx, ts, opts...)
}

// compressEA runs the "ea" codec and returns its rich result.
func compressEA(ctx context.Context, ts *testset.TestSet, p core.Params) (*core.Result, error) {
	art, err := compress(ctx, "ea", ts, tcomp.WithEAParams(p))
	if err != nil {
		return nil, err
	}
	res, ok := art.Extra.(*core.Result)
	if !ok {
		return nil, fmt.Errorf("tables: ea artifact carries %T, want *core.Result", art.Extra)
	}
	return res, nil
}

// runRow measures all columns for one circuit.
func (c Config) runRow(ctx context.Context, m iscasgen.Meta, ts *testset.TestSet) (Row, error) {
	row := Row{Meta: m, Bits: ts.TotalBits()}
	nine, err := compress(ctx, "9c", ts, tcomp.WithBlockLen(8))
	if err != nil {
		return row, fmt.Errorf("%s: 9C: %v", m.Name, err)
	}
	row.R9C = nine.RatePercent()
	hc, err := compress(ctx, "9chc", ts, tcomp.WithBlockLen(8))
	if err != nil {
		return row, fmt.Errorf("%s: 9C+HC: %v", m.Name, err)
	}
	row.R9CHC = hc.RatePercent()

	if m.Kind == iscasgen.StuckAt {
		res, err := compressEA(ctx, ts, c.eaParams(12, 64, c.Seed))
		if err != nil {
			return row, fmt.Errorf("%s: EA: %v", m.Name, err)
		}
		row.REA = res.AverageRate
		if c.Sweep {
			base := c.eaParams(12, 64, c.Seed+1)
			base.Runs = 1
			_, best, err := core.SweepCtx(ctx, ts, base, c.SweepKs, c.SweepLs, base.Workers)
			if err != nil {
				return row, fmt.Errorf("%s: sweep: %v", m.Name, err)
			}
			row.REA2 = best.Rate
			if res.BestRate > row.REA2 {
				row.REA2 = res.BestRate
			}
		} else {
			row.REA2 = res.BestRate
		}
		return row, nil
	}

	// Path delay: EA1 (K=8, L=9) and EA2 (K=12, L=64).
	res1, err := compressEA(ctx, ts, c.eaParams(8, 9, c.Seed))
	if err != nil {
		return row, fmt.Errorf("%s: EA1: %v", m.Name, err)
	}
	row.REA = res1.AverageRate
	res2, err := compressEA(ctx, ts, c.eaParams(12, 64, c.Seed))
	if err != nil {
		return row, fmt.Errorf("%s: EA2: %v", m.Name, err)
	}
	row.REA2 = res2.AverageRate
	return row, nil
}

// CodecRate is one registered codec's outcome on a test set.
type CodecRate struct {
	Codec          string
	Rate           float64
	CompressedBits int
}

// CodecRates compresses ts with every codec in the registry — the
// paper's full related-work comparison (RL, Golomb, FDR, selective
// Huffman, 9C, 9C+HC, EA) — one pipeline job per codec, c.Workers wide.
// Results are returned in registry (sorted-name) order regardless of
// scheduling.
func CodecRates(ctx context.Context, ts *testset.TestSet, c Config) ([]CodecRate, error) {
	opts := []tcomp.Option{
		tcomp.WithSeed(c.Seed),
		tcomp.WithWorkers(c.Workers),
		tcomp.WithEAParams(c.eaParams(12, 64, c.Seed)),
	}
	names := tcomp.Codecs()
	jobs := make([]pipeline.Job[CodecRate], len(names))
	for i, name := range names {
		name := name
		jobs[i] = pipeline.Job[CodecRate]{
			Name: name,
			Run: func(ctx context.Context, _ int64) (CodecRate, error) {
				art, err := compress(ctx, name, ts, opts...)
				if err != nil {
					return CodecRate{}, fmt.Errorf("tables: %s: %v", name, err)
				}
				return CodecRate{Codec: name, Rate: art.RatePercent(), CompressedBits: art.CompressedBits}, nil
			},
		}
	}
	results, err := pipeline.Run(ctx, pipeline.Config{Workers: c.Workers}, jobs)
	if err != nil {
		return nil, err
	}
	return pipeline.Values(results), nil
}

// Run executes the experiment for one registry table.
func Run(metas []iscasgen.Meta, c Config) ([]Row, error) {
	return RunCtx(context.Background(), metas, c)
}

// RunCtx runs one pipeline job per selected circuit, c.Workers wide.
// Each circuit derives its test set and EA seeds from c.Seed alone —
// never from scheduling — so the rows are identical at any worker count
// and are always reported in registry order.
func RunCtx(ctx context.Context, metas []iscasgen.Meta, c Config) ([]Row, error) {
	var wanted []iscasgen.Meta
	for _, m := range metas {
		if c.wants(m.Name) {
			wanted = append(wanted, m)
		}
	}
	jobs := make([]pipeline.Job[Row], len(wanted))
	for i, m := range wanted {
		m := m
		jobs[i] = pipeline.Job[Row]{
			Name: m.Name,
			Run: func(ctx context.Context, _ int64) (Row, error) {
				ts, err := iscasgen.Generate(m, iscasgen.GenOptions{MaxBits: c.MaxBits, Seed: c.Seed})
				if err != nil {
					return Row{}, err
				}
				return c.runRow(ctx, m, ts)
			},
		}
	}
	results, err := pipeline.Run(ctx, pipeline.Config{Workers: c.Workers}, jobs)
	if err != nil {
		return nil, err
	}
	return pipeline.Values(results), nil
}

// RunTable1 regenerates Table 1 (stuck-at).
func RunTable1(c Config) ([]Row, error) { return Run(iscasgen.Table1(), c) }

// RunTable2 regenerates Table 2 (path delay).
func RunTable2(c Config) ([]Row, error) { return Run(iscasgen.Table2(), c) }

// Averages returns the column means over rows.
func Averages(rows []Row) (r9c, r9chc, rea, rea2 float64) {
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		r9c += r.R9C
		r9chc += r.R9CHC
		rea += r.REA
		rea2 += r.REA2
	}
	n := float64(len(rows))
	return r9c / n, r9chc / n, rea / n, rea2 / n
}

// Format renders rows in the paper's table layout, with the published
// numbers alongside for comparison.
func Format(rows []Row, kind iscasgen.Kind) string {
	var sb strings.Builder
	col3, col4 := "EA", "EA-Best"
	if kind == iscasgen.PathDelay {
		col3, col4 = "EA1", "EA2"
	}
	fmt.Fprintf(&sb, "%-8s %10s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"Circuit", "Bits", "9C", "9C+HC", col3, col4,
		"p:9C", "p:9CHC", "p:"+col3, "p:"+col4)
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 100))
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %10d | %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
			r.Meta.Name, r.Bits, r.R9C, r.R9CHC, r.REA, r.REA2,
			r.Meta.Paper9C, r.Meta.Paper9CHC, r.Meta.PaperEA, r.Meta.PaperEA2)
	}
	a, b, c, d := Averages(rows)
	var pa, pb, pc, pd float64
	if kind == iscasgen.PathDelay {
		pa, pb, pc, pd = iscasgen.Table2Averages()
	} else {
		pa, pb, pc, pd = iscasgen.Table1Averages()
	}
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 100))
	fmt.Fprintf(&sb, "%-8s %10s | %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
		"Average", "", a, b, c, d, pa, pb, pc, pd)
	return sb.String()
}

// ShapeCheck verifies the paper's qualitative findings on measured rows:
// (1) Huffman codewords improve on the fixed 9C code on average,
// (2) the EA improves on 9C+HC on average,
// (3) the second EA configuration is at least about as good as the first
// on average. It returns a list of violated properties (empty = shape
// reproduced).
func ShapeCheck(rows []Row) []string {
	a, b, c, d := Averages(rows)
	var bad []string
	if b < a {
		bad = append(bad, fmt.Sprintf("9C+HC average %.1f%% below 9C %.1f%%", b, a))
	}
	if c <= b {
		bad = append(bad, fmt.Sprintf("EA average %.1f%% not above 9C+HC %.1f%%", c, b))
	}
	if d < c-1.0 {
		bad = append(bad, fmt.Sprintf("EA-Best/EA2 average %.1f%% below EA %.1f%%", d, c))
	}
	return bad
}
