// Package faults implements the single stuck-at fault model on circuit
// signals: fault-list generation, structural equivalence collapsing, and
// both bit-parallel (fully specified patterns) and 3-valued (patterns
// with X values) fault simulation. The 3-valued "definite detection"
// check is what makes don't-care maximization in the ATPG sound: a
// pattern with Xs detects a fault only if it does so for every fill of
// the Xs.
package faults

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Fault is a single stuck-at fault on a signal (stem fault).
type Fault struct {
	Signal int
	// SA is the stuck value: tritvec.Zero or tritvec.One.
	SA tritvec.Trit
}

// String renders e.g. "G10/0".
func (f Fault) String() string { return fmt.Sprintf("sig%d/%s", f.Signal, f.SA) }

// Name renders the fault with the circuit's signal name.
func (f Fault) Name(c *circuit.Circuit) string {
	return fmt.Sprintf("%s/%s", c.Names[f.Signal], f.SA)
}

// All returns the full fault list: stuck-at-0 and stuck-at-1 on every
// signal.
func All(c *circuit.Circuit) []Fault {
	out := make([]Fault, 0, 2*c.NumSignals())
	for s := 0; s < c.NumSignals(); s++ {
		out = append(out, Fault{s, tritvec.Zero}, Fault{s, tritvec.One})
	}
	return out
}

// Collapse removes structurally equivalent faults. Rules (applied when the
// fanin signal feeds only this gate, i.e. fanout == 1):
//
//	BUF:  in/v ≡ out/v        NOT:  in/v ≡ out/¬v
//	AND:  in/0 ≡ out/0        NAND: in/0 ≡ out/1
//	OR:   in/1 ≡ out/1        NOR:  in/1 ≡ out/0
//
// One representative (the fault closest to the inputs) is kept per class.
func Collapse(c *circuit.Circuit) []Fault {
	type fkey struct {
		sig int
		sa  tritvec.Trit
	}
	parent := make(map[fkey]fkey)
	var find func(k fkey) fkey
	find = func(k fkey) fkey {
		if p, ok := parent[k]; ok && p != k {
			root := find(p)
			parent[k] = root
			return root
		}
		return k
	}
	union := func(child, root fkey) {
		parent[find(child)] = find(root)
	}
	fanout := c.Fanout()
	for out := 0; out < c.NumSignals(); out++ {
		t := c.Types[out]
		if t == circuit.Input {
			continue
		}
		for _, in := range c.Fanin[out] {
			if len(fanout[in]) != 1 {
				continue // branch fault, not modeled as equivalent
			}
			switch t {
			case circuit.Buf:
				union(fkey{out, tritvec.Zero}, fkey{in, tritvec.Zero})
				union(fkey{out, tritvec.One}, fkey{in, tritvec.One})
			case circuit.Not:
				union(fkey{out, tritvec.Zero}, fkey{in, tritvec.One})
				union(fkey{out, tritvec.One}, fkey{in, tritvec.Zero})
			case circuit.And:
				union(fkey{out, tritvec.Zero}, fkey{in, tritvec.Zero})
			case circuit.Nand:
				union(fkey{out, tritvec.One}, fkey{in, tritvec.Zero})
			case circuit.Or:
				union(fkey{out, tritvec.One}, fkey{in, tritvec.One})
			case circuit.Nor:
				union(fkey{out, tritvec.Zero}, fkey{in, tritvec.One})
			}
		}
	}
	seen := make(map[fkey]bool)
	var out []Fault
	for _, f := range All(c) {
		root := find(fkey{f.Signal, f.SA})
		if seen[root] {
			continue
		}
		seen[root] = true
		out = append(out, Fault{root.sig, root.sa})
	}
	return out
}

// DefinitelyDetects reports whether the (possibly partial) pattern detects
// the fault for every fill of its X positions: some primary output has a
// specified good value and a specified, different faulty value under
// 3-valued simulation.
func DefinitelyDetects(c *circuit.Circuit, pattern tritvec.Vector, f Fault) bool {
	good := c.Sim3(pattern, nil)
	bad := c.Sim3(pattern, &circuit.Force{Signal: f.Signal, Value: f.SA})
	for _, po := range c.Outputs {
		g, b := good[po], bad[po]
		if g != tritvec.X && b != tritvec.X && g != b {
			return true
		}
	}
	return false
}

// Simulator runs bit-parallel stuck-at fault simulation.
type Simulator struct {
	c *circuit.Circuit
	r *rand.Rand
}

// NewSimulator returns a fault simulator; seed controls the random fill of
// X positions.
func NewSimulator(c *circuit.Circuit, seed int64) *Simulator {
	return &Simulator{c: c, r: rand.New(rand.NewSource(seed))}
}

// fillWords packs up to 64 patterns into per-input words, filling X
// positions randomly.
func (s *Simulator) fillWords(patterns []tritvec.Vector) []uint64 {
	words := make([]uint64, len(s.c.Inputs))
	for p, pat := range patterns {
		for i := 0; i < pat.Len(); i++ {
			var bit uint64
			switch pat.Get(i) {
			case tritvec.One:
				bit = 1
			case tritvec.Zero:
				bit = 0
			default:
				bit = uint64(s.r.Intn(2))
			}
			words[i] |= bit << uint(p)
		}
	}
	return words
}

// Run simulates the test set against the fault list and returns, for each
// fault, whether it was detected by at least one pattern (X positions
// filled randomly but consistently across good/faulty machines).
func (s *Simulator) Run(ts *testset.TestSet, faults []Fault) []bool {
	if ts.Width != len(s.c.Inputs) {
		panic(fmt.Sprintf("faults: test width %d != inputs %d", ts.Width, len(s.c.Inputs)))
	}
	detected := make([]bool, len(faults))
	for lo := 0; lo < len(ts.Patterns); lo += 64 {
		hi := lo + 64
		if hi > len(ts.Patterns) {
			hi = len(ts.Patterns)
		}
		batch := ts.Patterns[lo:hi]
		mask := ^uint64(0)
		if n := hi - lo; n < 64 {
			mask = (1 << uint(n)) - 1
		}
		words := s.fillWords(batch)
		good := s.c.Sim64(words, nil)
		for fi, f := range faults {
			if detected[fi] {
				continue
			}
			var force circuit.Force64
			force.Signal = f.Signal
			if f.SA == tritvec.One {
				force.Value = ^uint64(0)
			}
			bad := s.c.Sim64(words, &force)
			for _, po := range s.c.Outputs {
				if (good[po]^bad[po])&mask != 0 {
					detected[fi] = true
					break
				}
			}
		}
	}
	return detected
}

// Coverage returns the fraction of faults detected.
func Coverage(detected []bool) float64 {
	if len(detected) == 0 {
		return 0
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(detected))
}
