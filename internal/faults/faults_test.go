package faults

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestAllCount(t *testing.T) {
	c := circuit.C17()
	fl := All(c)
	if len(fl) != 2*c.NumSignals() {
		t.Fatalf("faults=%d want %d", len(fl), 2*c.NumSignals())
	}
}

func TestCollapseShrinks(t *testing.T) {
	c := circuit.C17()
	all := All(c)
	col := Collapse(c)
	if len(col) >= len(all) {
		t.Fatalf("collapse did not shrink: %d vs %d", len(col), len(all))
	}
	// c17: 11 signals -> 22 faults; fanout-1 NAND inputs collapse.
	if len(col) < 10 {
		t.Fatalf("collapse too aggressive: %d", len(col))
	}
}

func TestCollapseEquivalenceIsSound(t *testing.T) {
	// For a chain a -> NOT -> y, fault a/0 is equivalent to y/1: every
	// pattern detecting one detects the other.
	b := circuit.NewBuilder("chain")
	b.AddInput("a")
	if _, err := b.AddGate("y", circuit.Not, "a"); err != nil {
		t.Fatal(err)
	}
	b.AddOutput("y")
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	a := c.SignalID("a")
	y := c.SignalID("y")
	for _, val := range []string{"0", "1"} {
		p := tritvec.MustFromString(val)
		dA := DefinitelyDetects(c, p, Fault{a, tritvec.Zero})
		dY := DefinitelyDetects(c, p, Fault{y, tritvec.One})
		if dA != dY {
			t.Fatalf("pattern %s: a/0 detected=%v but y/1 detected=%v", val, dA, dY)
		}
	}
	col := Collapse(c)
	if len(col) != 2 {
		t.Fatalf("inverter chain should collapse to 2 faults, got %d", len(col))
	}
}

func TestDefinitelyDetects(t *testing.T) {
	c := circuit.C17()
	g1 := c.SignalID("G1")
	// Fully specified pattern that detects G1 stuck-at-1: need G1=0,
	// G3=1 so G10 flips 1->0, then propagate: G2 anything, G16...
	// Use exhaustive search to find one and confirm semantics.
	found := false
	for bits := 0; bits < 32; bits++ {
		p := tritvec.New(5)
		for j := 0; j < 5; j++ {
			if bits>>uint(j)&1 == 1 {
				p.Set(j, tritvec.One)
			} else {
				p.Set(j, tritvec.Zero)
			}
		}
		if DefinitelyDetects(c, p, Fault{g1, tritvec.One}) {
			found = true
			// X-ing out a needed input must make detection indefinite
			// or keep it definite, never panic.
			p.Set(0, tritvec.X)
			_ = DefinitelyDetects(c, p, Fault{g1, tritvec.One})
		}
	}
	if !found {
		t.Fatal("no pattern detects G1/1 in c17 — impossible")
	}
	// An all-X pattern definitely detects nothing.
	if DefinitelyDetects(c, tritvec.New(5), Fault{g1, tritvec.One}) {
		t.Fatal("all-X pattern cannot definitely detect")
	}
}

func TestDefiniteDetectionImpliesAllFills(t *testing.T) {
	// Property: if a partial pattern definitely detects a fault, every
	// full specification of it detects the fault in 2-valued simulation.
	c := circuit.C17()
	r := rand.New(rand.NewSource(8))
	checked := 0
	for iter := 0; iter < 300 && checked < 40; iter++ {
		p := tritvec.RandomTernary(5, r)
		f := Fault{r.Intn(c.NumSignals()), tritvec.Trit(1 + r.Intn(2))}
		if !DefinitelyDetects(c, p, f) {
			continue
		}
		checked++
		nx := p.CountX()
		for fill := 0; fill < 1<<uint(nx); fill++ {
			full := p.Clone()
			xs := p.XPositions()
			for j, pos := range xs {
				if fill>>uint(j)&1 == 1 {
					full.Set(pos, tritvec.One)
				} else {
					full.Set(pos, tritvec.Zero)
				}
			}
			if !DefinitelyDetects(c, full, f) {
				t.Fatalf("partial %s detects %s but fill %s does not", p, f, full)
			}
		}
	}
	if checked == 0 {
		t.Skip("no definite detections sampled")
	}
}

func TestSimulatorAgreesWithDefiniteDetection(t *testing.T) {
	c := circuit.C17()
	fl := All(c)
	// Exhaustive 32-pattern fully-specified test set: every detectable
	// fault must be reported detected.
	ts := testset.New(5)
	for bits := 0; bits < 32; bits++ {
		p := tritvec.New(5)
		for j := 0; j < 5; j++ {
			if bits>>uint(j)&1 == 1 {
				p.Set(j, tritvec.One)
			} else {
				p.Set(j, tritvec.Zero)
			}
		}
		ts.Add(p)
	}
	det := NewSimulator(c, 1).Run(ts, fl)
	for fi, f := range fl {
		wantDet := false
		for _, p := range ts.Patterns {
			if DefinitelyDetects(c, p, f) {
				wantDet = true
				break
			}
		}
		if det[fi] != wantDet {
			t.Fatalf("fault %s: simulator %v, reference %v", f.Name(c), det[fi], wantDet)
		}
	}
	cov := Coverage(det)
	if cov < 0.9 {
		t.Fatalf("exhaustive coverage only %.2f — c17 should be almost fully testable", cov)
	}
}

func TestSimulatorBatching(t *testing.T) {
	// More than 64 patterns exercises the batch loop.
	c, err := circuit.Random("r", circuit.RandomOptions{Inputs: 6, Gates: 25, Outputs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	ts := testset.Random(len(c.Inputs), 150, 1.0, r)
	det := NewSimulator(c, 2).Run(ts, All(c))
	if Coverage(det) == 0 {
		t.Fatal("150 random patterns detected nothing — simulator broken")
	}
}

func TestSimulatorWidthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	c := circuit.C17()
	NewSimulator(c, 1).Run(testset.New(3), All(c))
}

func TestCoverageEmpty(t *testing.T) {
	if Coverage(nil) != 0 {
		t.Fatal("empty coverage must be 0")
	}
}

func TestFaultStrings(t *testing.T) {
	c := circuit.C17()
	f := Fault{c.SignalID("G10"), tritvec.Zero}
	if f.Name(c) != "G10/0" {
		t.Fatalf("Name=%q", f.Name(c))
	}
	if f.String() == "" {
		t.Fatal("empty String")
	}
}
