package artifact

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"
)

// MemStore is the in-memory Store: the test double for DiskStore and
// the backing layer for servers that want content-addressed layering
// without durability (the serve result cache rides on one by default).
// Same contract, same GC policy, no disk.
type MemStore struct {
	mu    sync.Mutex
	blobs map[Digest][]byte
	index map[Digest]*entry
	total int64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: map[Digest][]byte{}, index: map[Digest]*entry{}}
}

// Put buffers and stores the reader's bytes.
func (s *MemStore) Put(r io.Reader) (Digest, int64, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return "", 0, err // the producer's error is the story; keep it unwrapped
	}
	d := SumBytes(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[d]; ok {
		e.lastUsed = time.Now()
		return d, int64(len(b)), nil
	}
	s.blobs[d] = b
	s.index[d] = &entry{size: int64(len(b)), lastUsed: time.Now()}
	s.total += int64(len(b))
	return d, int64(len(b)), nil
}

// Open returns a reader over the blob and refreshes its last-use time.
func (s *MemStore) Open(d Digest) (io.ReadCloser, error) {
	b, ok := s.get(d, true)
	if !ok {
		return nil, fmt.Errorf("artifact: open %s: %w", short(d), ErrNotFound)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// GetNoCopy returns the stored bytes without copying, refreshing the
// blob's last-use time. Callers must treat the slice as read-only. It is
// the interface-upgrade fast path the serve result cache probes for, so
// a cache hit costs no allocation.
func (s *MemStore) GetNoCopy(d Digest) ([]byte, bool) {
	return s.get(d, true)
}

func (s *MemStore) get(d Digest, touch bool) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[d]
	if ok && touch {
		s.index[d].lastUsed = time.Now()
	}
	return b, ok
}

// Stat returns the blob's metadata without touching recency.
func (s *MemStore) Stat(d Digest) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[d]
	if !ok {
		return Info{}, fmt.Errorf("artifact: stat %s: %w", short(d), ErrNotFound)
	}
	return Info{Digest: d, Size: e.size, LastUsed: e.lastUsed}, nil
}

// Delete removes the blob.
func (s *MemStore) Delete(d Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[d]
	if !ok {
		return fmt.Errorf("artifact: delete %s: %w", short(d), ErrNotFound)
	}
	delete(s.index, d)
	delete(s.blobs, d)
	s.total -= e.size
	return nil
}

// Sweep applies TTL expiry and LRU quota eviction.
func (s *MemStore) Sweep(now time.Time, ttl time.Duration, quota int64) SweepStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return sweepIndex(s.index, s.total, now, ttl, quota, func(d Digest) {
		e := s.index[d]
		delete(s.index, d)
		delete(s.blobs, d)
		s.total -= e.size
	})
}

// Len returns the number of stored blobs.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total stored size.
func (s *MemStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}
