package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// stores builds one of each implementation so every contract test runs
// against both.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"disk": disk, "mem": NewMemStore()}
}

func mustPut(t *testing.T, s Store, content string) Digest {
	t.Helper()
	d, n, err := s.Put(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(content)) {
		t.Fatalf("Put reported %d bytes, wrote %d", n, len(content))
	}
	return d
}

func mustRead(t *testing.T, s Store, d Digest) string {
	t.Helper()
	rc, err := s.Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestPutOpenRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			content := "the quick brown fox\x00\x01\x02 jumps"
			d := mustPut(t, s, content)
			if want := SumBytes([]byte(content)); d != want {
				t.Fatalf("digest %s, want %s", d, want)
			}
			if got := mustRead(t, s, d); got != content {
				t.Fatalf("read back %q, want %q", got, content)
			}
			info, err := s.Stat(d)
			if err != nil {
				t.Fatal(err)
			}
			if info.Size != int64(len(content)) || info.Digest != d {
				t.Fatalf("stat %+v", info)
			}
			if s.Len() != 1 || s.Bytes() != int64(len(content)) {
				t.Fatalf("accounting: %d blobs, %d bytes", s.Len(), s.Bytes())
			}
			// Idempotent re-Put of the same content: one blob, same address.
			if d2 := mustPut(t, s, content); d2 != d {
				t.Fatalf("re-put digest %s, want %s", d2, d)
			}
			if s.Len() != 1 {
				t.Fatalf("re-put duplicated the blob: %d entries", s.Len())
			}
		})
	}
}

func TestOpenAndDeleteMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			ghost := SumBytes([]byte("never stored"))
			if _, err := s.Open(ghost); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open(missing) = %v, want ErrNotFound", err)
			}
			if _, err := s.Stat(ghost); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Stat(missing) = %v, want ErrNotFound", err)
			}
			if err := s.Delete(ghost); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(missing) = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			d := mustPut(t, s, "short lived")
			if err := s.Delete(d); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Open(d); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Open(deleted) = %v, want ErrNotFound", err)
			}
			if s.Len() != 0 || s.Bytes() != 0 {
				t.Fatalf("accounting after delete: %d blobs, %d bytes", s.Len(), s.Bytes())
			}
		})
	}
}

// TestPutReaderError: a failing producer aborts the write — no partial
// blob becomes visible and the producer's error comes back unwrapped.
func TestPutReaderError(t *testing.T) {
	boom := errors.New("producer exploded")
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			r := io.MultiReader(strings.NewReader("partial"), failReader{boom})
			if _, _, err := s.Put(r); !errors.Is(err, boom) {
				t.Fatalf("Put error %v, want the producer's", err)
			}
			if s.Len() != 0 {
				t.Fatalf("failed Put left %d blobs visible", s.Len())
			}
		})
	}
	// The disk store must also leave no staging file behind.
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(failReader{boom}); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("failed Put leaked %d staging files", len(tmps))
	}
}

type failReader struct{ err error }

func (f failReader) Read([]byte) (int, error) { return 0, f.err }

// TestConcurrentPutIdenticalContent: N goroutines racing to Put the same
// bytes converge on exactly one blob with consistent accounting.
func TestConcurrentPutIdenticalContent(t *testing.T) {
	content := bytes.Repeat([]byte("deterministic payload "), 512)
	want := SumBytes(content)
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			const racers = 16
			var wg sync.WaitGroup
			errs := make(chan error, racers)
			for i := 0; i < racers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					d, _, err := s.Put(bytes.NewReader(content))
					if err != nil {
						errs <- err
						return
					}
					if d != want {
						errs <- fmt.Errorf("digest %s, want %s", d, want)
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if s.Len() != 1 {
				t.Fatalf("%d racers left %d blobs, want 1", racers, s.Len())
			}
			if s.Bytes() != int64(len(content)) {
				t.Fatalf("accounting %d bytes, want %d", s.Bytes(), len(content))
			}
			if got := mustRead(t, s, want); got != string(content) {
				t.Fatal("raced blob does not read back intact")
			}
		})
	}
}

// TestDiskCorruptionDetectedOnRead: flipping a byte in the on-disk blob
// surfaces as ErrCorrupt from the verifying reader, never as silent bad
// data.
func TestDiskCorruptionDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("precious bits"), 100)
	d, _, err := s.Put(bytes.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, string(d)[:2], string(d))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := s.Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, err = io.ReadAll(rc)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reading corrupt blob: %v, want ErrCorrupt", err)
	}

	// Truncation is corruption too.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err = s.Open(d)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := io.ReadAll(rc); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reading truncated blob: %v, want ErrCorrupt", err)
	}
}

// TestSweepTTL: blobs idle past the TTL are expired; recently used ones
// survive.
func TestSweepTTL(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			old := mustPut(t, s, "stale artifact")
			young := mustPut(t, s, "fresh artifact!")
			// Sweep with a clock far enough ahead that only blobs untouched
			// since `then` expire: touch `young` by opening it "later".
			time.Sleep(5 * time.Millisecond)
			if got := mustRead(t, s, young); got != "fresh artifact!" {
				t.Fatal("young blob unreadable")
			}
			oldInfo, err := s.Stat(old)
			if err != nil {
				t.Fatal(err)
			}
			youngInfo, err := s.Stat(young)
			if err != nil {
				t.Fatal(err)
			}
			// A cutoff between the two recency stamps expires exactly one.
			ttl := time.Millisecond
			now := oldInfo.LastUsed.Add(ttl + time.Millisecond)
			if !youngInfo.LastUsed.After(now.Add(-ttl)) {
				t.Fatalf("test clock skew: young %v not after cutoff %v", youngInfo.LastUsed, now.Add(-ttl))
			}
			st := s.Sweep(now, ttl, 0)
			if st.Expired != 1 || st.Evicted != 0 {
				t.Fatalf("sweep stats %+v, want 1 expired", st)
			}
			if _, err := s.Open(old); !errors.Is(err, ErrNotFound) {
				t.Fatalf("expired blob still opens: %v", err)
			}
			if got := mustRead(t, s, young); got != "fresh artifact!" {
				t.Fatal("TTL sweep deleted a live blob")
			}
		})
	}
}

// TestSweepQuota: over-quota stores evict least-recently-used first and
// stop as soon as the quota holds.
func TestSweepQuota(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			a := mustPut(t, s, strings.Repeat("a", 100))
			time.Sleep(2 * time.Millisecond)
			b := mustPut(t, s, strings.Repeat("b", 100))
			time.Sleep(2 * time.Millisecond)
			c := mustPut(t, s, strings.Repeat("c", 100))
			time.Sleep(2 * time.Millisecond)
			// Touch a: it becomes the most recent; b is now the LRU victim.
			mustRead(t, s, a)

			st := s.Sweep(time.Now(), 0, 250)
			if st.Evicted != 1 || st.FreedBytes != 100 {
				t.Fatalf("sweep stats %+v, want 1 eviction of 100 bytes", st)
			}
			if _, err := s.Open(b); !errors.Is(err, ErrNotFound) {
				t.Fatalf("LRU victim b still present: %v", err)
			}
			for _, live := range []Digest{a, c} {
				if _, err := s.Stat(live); err != nil {
					t.Fatalf("quota sweep deleted live blob: %v", err)
				}
			}
			if s.Bytes() != 200 {
				t.Fatalf("post-sweep accounting %d bytes, want 200", s.Bytes())
			}
		})
	}
}

// TestDiskRestartReindex: a fresh DiskStore over an existing directory
// rediscovers every blob with correct sizes.
func TestDiskRestartReindex(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	contents := []string{"first blob", "second, longer blob", strings.Repeat("x", 4096)}
	digests := make([]Digest, len(contents))
	var total int64
	for i, c := range contents {
		digests[i] = mustPut(t, s1, c)
		total += int64(len(c))
	}
	// Drop a stray non-blob file into a shard: reindex must skip it.
	if err := os.WriteFile(filepath.Join(dir, string(digests[0])[:2], "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(contents) || s2.Bytes() != total {
		t.Fatalf("reindex found %d blobs / %d bytes, want %d / %d", s2.Len(), s2.Bytes(), len(contents), total)
	}
	for i, d := range digests {
		if got := mustRead(t, s2, d); got != contents[i] {
			t.Fatalf("blob %d reads back %q after restart, want %q", i, got, contents[i])
		}
	}
}

// TestMemGetNoCopy pins the serve cache's zero-copy fast path.
func TestMemGetNoCopy(t *testing.T) {
	s := NewMemStore()
	d := mustPut(t, s, "zero copy me")
	b, ok := s.GetNoCopy(d)
	if !ok || string(b) != "zero copy me" {
		t.Fatalf("GetNoCopy = %q, %v", b, ok)
	}
	if _, ok := s.GetNoCopy(SumBytes([]byte("absent"))); ok {
		t.Fatal("GetNoCopy found an absent blob")
	}
}

func TestParseDigest(t *testing.T) {
	good := string(SumBytes([]byte("x")))
	if _, err := ParseDigest(good); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "abc", good[:63], good + "0", strings.Repeat("z", 64), "../../../../etc/passwd"} {
		if _, err := ParseDigest(bad); err == nil {
			t.Fatalf("ParseDigest(%q) accepted a malformed digest", bad)
		}
	}
}

// TestOrphanedTmpCleanup simulates a crash mid-Put: a stale put-* file
// sits in tmp/ when the store (re)opens. NewDiskStore reclaims it;
// fresh staging files (an in-flight Put of a concurrent process) and
// foreign files survive both the constructor and Sweep.
func TestOrphanedTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewDiskStore(dir); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "tmp")
	old := filepath.Join(tmp, "put-crashed")
	fresh := filepath.Join(tmp, "put-inflight")
	foreign := filepath.Join(tmp, "editor-backup~")
	for _, p := range []string{old, fresh, foreign} {
		if err := os.WriteFile(p, []byte("staged bytes"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * tmpGrace)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(foreign, stale, stale); err != nil {
		t.Fatal(err)
	}

	// "Restart" the daemon: the constructor reclaims the stale orphan.
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("stale put-* orphan survived NewDiskStore")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("fresh staging file inside the grace period was removed")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("foreign tmp file was removed; cleanup must only touch put-*")
	}

	// A long-running daemon reclaims orphans during its GC pass too.
	reorphaned := filepath.Join(tmp, "put-leaked-later")
	if err := os.WriteFile(reorphaned, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(reorphaned, stale, stale); err != nil {
		t.Fatal(err)
	}
	st := s.Sweep(time.Now(), 0, 0)
	if st.TmpRemoved != 1 {
		t.Fatalf("Sweep.TmpRemoved = %d, want 1", st.TmpRemoved)
	}
	if _, err := os.Stat(reorphaned); !os.IsNotExist(err) {
		t.Fatal("stale orphan survived Sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("Sweep removed a staging file inside the grace period")
	}
}
