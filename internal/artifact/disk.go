package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// DiskStore is the local-disk Store: blobs live under
//
//	<dir>/ab/abcdef...  (first byte of the digest shards the directory)
//
// with writes staged in <dir>/tmp and published by an atomic rename, so
// a crash mid-Put never leaves a partial blob visible, and two
// concurrent Puts of the same content race harmlessly to one file.
// Every Open returns a reader that re-hashes the bytes as they stream
// out and fails the final read with ErrCorrupt on a mismatch — the
// durable layer never silently serves rotted bytes.
//
// The index (digest → size, last-use time) is kept in memory and
// rebuilt by walking the directory at construction, so a daemon restart
// re-discovers every blob; last-use times persist via file mtimes
// (best-effort — a filesystem that refuses Chtimes degrades to
// process-lifetime recency).
type DiskStore struct {
	dir string

	mu    sync.Mutex
	index map[Digest]*entry
	total int64
}

// tmpGrace is how old a tmp/put-* staging file must be before cleanup
// treats it as a crash orphan. A live Put holds its staging file only
// for the duration of one body copy; an hour of slack keeps cleanup from
// ever racing a slow writer while still reclaiming genuinely dead files.
const tmpGrace = time.Hour

// NewDiskStore opens (or creates) a blob store rooted at dir,
// re-indexes any blobs already present, and reclaims staging files a
// crashed process left in tmp/ (older than the grace period — a
// concurrently running store's in-flight Puts are left alone).
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("artifact: creating store: %w", err)
	}
	s := &DiskStore{dir: dir, index: map[Digest]*entry{}}
	if err := s.reindex(); err != nil {
		return nil, err
	}
	s.cleanTmp(time.Now())
	return s, nil
}

// cleanTmp removes orphaned put-* staging files older than the grace
// period and returns how many it reclaimed. A crash between CreateTemp
// and the publishing rename leaves the staged bytes invisible to the
// index forever; without this pass they would accumulate unbounded.
// Best-effort: an unreadable tmp dir or a file that vanishes mid-walk
// (a concurrent cleaner, a racing Put finishing) is not an error.
func (s *DiskStore) cleanTmp(now time.Time) int {
	files, err := os.ReadDir(filepath.Join(s.dir, "tmp"))
	if err != nil {
		return 0
	}
	cutoff := now.Add(-tmpGrace)
	removed := 0
	for _, f := range files {
		if f.IsDir() || !strings.HasPrefix(f.Name(), "put-") {
			continue // only files this store's Put demonstrably staged
		}
		fi, err := f.Info()
		if err != nil || !fi.ModTime().Before(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(s.dir, "tmp", f.Name())) == nil {
			removed++
		}
	}
	return removed
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// reindex walks the shard directories and rebuilds the in-memory index.
// Stray files that are not well-formed blob names (editor droppings,
// interrupted temp files an old process leaked into a shard) are
// ignored rather than deleted: the store only ever removes files it can
// account for.
func (s *DiskStore) reindex() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("artifact: reindex: %w", err)
	}
	for _, shard := range entries {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		if _, err := hex.DecodeString(shard.Name()); err != nil {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			return fmt.Errorf("artifact: reindex shard %s: %w", shard.Name(), err)
		}
		for _, f := range files {
			d, err := ParseDigest(f.Name())
			if err != nil || string(d)[:2] != shard.Name() {
				continue
			}
			fi, err := f.Info()
			if err != nil {
				continue // vanished mid-walk
			}
			s.index[d] = &entry{size: fi.Size(), lastUsed: fi.ModTime()}
			s.total += fi.Size()
		}
	}
	return nil
}

func (s *DiskStore) blobPath(d Digest) string {
	return filepath.Join(s.dir, string(d)[:2], string(d))
}

// Put streams r to a temp file while hashing, then publishes it under
// its digest with one atomic rename.
func (s *DiskStore) Put(r io.Reader) (Digest, int64, error) {
	f, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return "", 0, fmt.Errorf("artifact: staging blob: %w", err)
	}
	tmp := f.Name()
	discard := func() {
		_ = f.Close()      // best-effort cleanup path
		_ = os.Remove(tmp) // ditto
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(f, h), r)
	if err != nil {
		discard()
		return "", 0, err // the producer's error is the story; keep it unwrapped
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // best-effort
		return "", 0, fmt.Errorf("artifact: flushing blob: %w", err)
	}
	d := Digest(hex.EncodeToString(h.Sum(nil)))
	now := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[d]; ok {
		// Already stored: content addressing makes this a pure recency
		// refresh. The staged copy is byte-identical by construction.
		e.lastUsed = now
		_ = os.Remove(tmp)                      // duplicate staging file
		_ = os.Chtimes(s.blobPath(d), now, now) // best-effort mtime persistence
		return d, n, nil
	}
	dst := s.blobPath(d)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		_ = os.Remove(tmp) // best-effort
		return "", 0, fmt.Errorf("artifact: creating shard: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		_ = os.Remove(tmp) // best-effort
		return "", 0, fmt.Errorf("artifact: publishing blob: %w", err)
	}
	s.index[d] = &entry{size: n, lastUsed: now}
	s.total += n
	return d, n, nil
}

// Open returns a digest-verifying reader over the blob and refreshes
// its last-use time.
func (s *DiskStore) Open(d Digest) (io.ReadCloser, error) {
	s.mu.Lock()
	e, ok := s.index[d]
	if ok {
		e.lastUsed = time.Now()
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("artifact: open %s: %w", short(d), ErrNotFound)
	}
	f, err := os.Open(s.blobPath(d))
	if err != nil {
		// Index and directory disagree (external deletion). Heal the index
		// and report the honest state.
		s.drop(d)
		return nil, fmt.Errorf("artifact: open %s: %w", short(d), ErrNotFound)
	}
	now := time.Now()
	_ = os.Chtimes(s.blobPath(d), now, now) // best-effort mtime persistence
	return &verifyReader{f: f, h: sha256.New(), want: d, size: e.size}, nil
}

// Stat returns the blob's metadata without touching recency.
func (s *DiskStore) Stat(d Digest) (Info, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[d]
	if !ok {
		return Info{}, fmt.Errorf("artifact: stat %s: %w", short(d), ErrNotFound)
	}
	return Info{Digest: d, Size: e.size, LastUsed: e.lastUsed}, nil
}

// Delete removes the blob and its index entry.
func (s *DiskStore) Delete(d Digest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[d]
	if !ok {
		return fmt.Errorf("artifact: delete %s: %w", short(d), ErrNotFound)
	}
	delete(s.index, d)
	s.total -= e.size
	if err := os.Remove(s.blobPath(d)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("artifact: delete %s: %w", short(d), err)
	}
	return nil
}

// drop removes an index entry whose file is already gone.
func (s *DiskStore) drop(d Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.index[d]; ok {
		delete(s.index, d)
		s.total -= e.size
	}
}

// Sweep applies TTL expiry, LRU quota eviction, and orphaned staging
// file cleanup.
func (s *DiskStore) Sweep(now time.Time, ttl time.Duration, quota int64) SweepStats {
	s.mu.Lock()
	st := sweepIndex(s.index, s.total, now, ttl, quota, func(d Digest) {
		e := s.index[d]
		delete(s.index, d)
		s.total -= e.size
		_ = os.Remove(s.blobPath(d)) // best-effort: a straggler is re-indexed, never corrupt
	})
	s.mu.Unlock()
	// Outside the lock: cleanTmp only touches tmp/, which the index never
	// references, and Put's staging files are protected by the grace age.
	st.TmpRemoved = s.cleanTmp(now)
	return st
}

// Len returns the number of stored blobs.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the total stored size.
func (s *DiskStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// short renders a digest prefix for error messages.
func short(d Digest) string {
	if len(d) > 12 {
		return string(d)[:12]
	}
	return string(d)
}

// verifyReader re-hashes a blob as it streams out. The final read —
// the one that would return io.EOF — compares size and digest and
// returns ErrCorrupt instead if the bytes on disk no longer match their
// address, so no consumer can take rotted content for valid.
type verifyReader struct {
	f    *os.File
	h    hash.Hash
	want Digest
	size int64
	read int64
	done bool
}

func (v *verifyReader) Read(p []byte) (int, error) {
	if v.done {
		return 0, io.EOF
	}
	n, err := v.f.Read(p)
	v.read += int64(n)
	v.h.Write(p[:n])
	if err == io.EOF {
		v.done = true
		if v.read != v.size || Digest(hex.EncodeToString(v.h.Sum(nil))) != v.want {
			return n, fmt.Errorf("artifact: reading %s: %w", short(v.want), ErrCorrupt)
		}
		if n > 0 {
			return n, nil // clean EOF on the next call
		}
		return 0, io.EOF
	}
	return n, err
}

func (v *verifyReader) Close() error { return v.f.Close() }
