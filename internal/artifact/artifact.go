// Package artifact is the durable half of the serving stack: a
// content-addressed blob store keyed by the SHA-256 of the bytes
// themselves. The same determinism argument that makes the serve result
// cache sound (compressed output is a pure function of input and
// parameters) makes content addressing the natural durable key — two
// identical submissions, or two identical results, collapse to one blob
// and a repeat Put costs nothing but the hash.
//
// Two implementations share the Store interface: DiskStore, the
// production store behind tcompd's async job API (sharded directory
// layout, atomic tmp+rename writes, digests re-verified on read,
// TTL/quota garbage collection), and MemStore for tests and for servers
// that want the layering without the disk.
//
// Garbage collection is a pull model: Sweep(now, ttl, quota) applies the
// TTL (by last-use time) and then the size quota (LRU by last use) in
// one pass. The daemon drives it on a timer; tests drive it with an
// explicit clock.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"time"
)

// Digest is the content address of a blob: the lowercase hex SHA-256 of
// its bytes, 64 characters.
type Digest string

// SumBytes returns the digest of an in-memory blob.
func SumBytes(b []byte) Digest {
	sum := sha256.Sum256(b)
	return Digest(hex.EncodeToString(sum[:]))
}

// ParseDigest validates an externally supplied digest string (a job
// journal field, an API path segment) before it is used as a store key
// or a path component.
func ParseDigest(s string) (Digest, error) {
	if len(s) != sha256.Size*2 {
		return "", fmt.Errorf("artifact: digest %q: want %d hex characters, have %d", s, sha256.Size*2, len(s))
	}
	if _, err := hex.DecodeString(s); err != nil {
		return "", fmt.Errorf("artifact: digest %q is not hex: %v", s, err)
	}
	return Digest(s), nil
}

// Valid reports whether d is a well-formed digest.
func (d Digest) Valid() bool {
	_, err := ParseDigest(string(d))
	return err == nil
}

// Sentinel errors of the store contract.
var (
	// ErrNotFound: the digest names no stored blob (never stored, deleted,
	// or collected by GC).
	ErrNotFound = errors.New("artifact: blob not found")
	// ErrCorrupt: the stored bytes no longer hash to their digest (bit
	// rot, a truncated write that survived a crash, manual tampering).
	// DiskStore readers verify on read and return it from the final Read;
	// the blob should be deleted and the content re-derived.
	ErrCorrupt = errors.New("artifact: blob corrupt (content does not match digest)")
)

// Info describes one stored blob.
type Info struct {
	Digest Digest
	Size   int64
	// LastUsed is the blob's GC clock: set at Put and refreshed by every
	// Open. TTL expiry and LRU quota eviction both key off it.
	LastUsed time.Time
}

// Store is a content-addressed blob store. Implementations are safe for
// concurrent use.
type Store interface {
	// Put stores the reader's bytes and returns their digest and size.
	// Storing bytes that already exist refreshes their LastUsed time and
	// is otherwise a cheap no-op. A read error from r aborts the write
	// (no partial blob becomes visible) and is returned unwrapped, so
	// callers can classify the producer's failure.
	Put(r io.Reader) (Digest, int64, error)
	// Open returns a reader over the blob and refreshes its LastUsed
	// time. DiskStore readers re-verify the digest as the bytes stream
	// out: a mismatch surfaces as ErrCorrupt from the read that would
	// otherwise have returned io.EOF.
	Open(d Digest) (io.ReadCloser, error)
	// Stat returns the blob's metadata without touching LastUsed.
	Stat(d Digest) (Info, error)
	// Delete removes the blob. Deleting an absent digest returns
	// ErrNotFound.
	Delete(d Digest) error
	// Sweep applies TTL and quota GC as of now: blobs whose LastUsed is
	// older than ttl are deleted (ttl <= 0 disables the TTL pass), then
	// least-recently-used blobs are evicted until total size fits quota
	// (quota <= 0 disables the quota pass). It returns what it freed.
	Sweep(now time.Time, ttl time.Duration, quota int64) SweepStats
	// Len returns the number of stored blobs.
	Len() int
	// Bytes returns the total stored size.
	Bytes() int64
}

// SweepStats reports one GC pass.
type SweepStats struct {
	Expired    int   // blobs deleted by the TTL pass
	Evicted    int   // blobs deleted by the quota pass
	FreedBytes int64 // total bytes released
	// TmpRemoved counts orphaned staging files reclaimed from the tmp
	// directory (DiskStore only): put-* files older than the grace
	// period, left behind by a crash mid-Put.
	TmpRemoved int
}

// entry is the in-memory index record both stores share.
type entry struct {
	size     int64
	lastUsed time.Time
}

// sweepIndex runs the shared TTL+quota policy over an index map,
// calling remove for every victim (the caller deletes the bytes and
// drops the index entry under its own lock). It returns the stats.
func sweepIndex(index map[Digest]*entry, total int64, now time.Time, ttl time.Duration, quota int64, remove func(Digest)) SweepStats {
	var st SweepStats
	if ttl > 0 {
		cutoff := now.Add(-ttl)
		for d, e := range index {
			if e.lastUsed.Before(cutoff) {
				st.Expired++
				st.FreedBytes += e.size
				total -= e.size
				remove(d)
			}
		}
	}
	if quota > 0 && total > quota {
		// LRU by LastUsed: collect survivors and evict oldest-first until
		// the quota holds.
		type cand struct {
			d Digest
			e *entry
		}
		cands := make([]cand, 0, len(index))
		for d, e := range index {
			cands = append(cands, cand{d, e})
		}
		// Insertion sort by lastUsed ascending: n is small (the index fits
		// in memory by construction) and this avoids importing sort for a
		// type-local comparator on old Go versions.
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].e.lastUsed.Before(cands[j-1].e.lastUsed); j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		for _, c := range cands {
			if total <= quota {
				break
			}
			st.Evicted++
			st.FreedBytes += c.e.size
			total -= c.e.size
			remove(c.d)
		}
	}
	return st
}
