// Package atpg implements a PODEM-style automatic test pattern generator
// for single stuck-at faults, producing test patterns that leave
// unassigned primary inputs as don't-cares (X). Together with the optional
// X-maximization pass this plays the role of the Kajihara/Miyase flow the
// paper takes its stuck-at test sets from: uncompacted test sets with
// don't-care values.
package atpg

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/faults"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Options configures test generation.
type Options struct {
	// MaxBacktracks bounds the PODEM search per fault (default 2000).
	MaxBacktracks int
	// FaultDropping simulates each new pattern against the remaining
	// fault list and skips faults already (definitely) detected. With
	// dropping disabled the generator emits one pattern per detectable
	// fault — the "uncompacted" test sets of the paper.
	FaultDropping bool
	// XMaximize greedily re-X-es assigned inputs while the pattern still
	// definitely detects its target fault (don't-care identification).
	XMaximize bool
	// Collapse uses the collapsed fault list.
	Collapse bool
	// Seed orders heuristic choices deterministically.
	Seed int64
}

// DefaultOptions returns sensible defaults: collapsed faults, dropping
// off (uncompacted), X-maximization on.
func DefaultOptions() Options {
	return Options{MaxBacktracks: 2000, FaultDropping: false, XMaximize: true, Collapse: true}
}

// Result reports the generation outcome.
type Result struct {
	Tests      *testset.TestSet
	Detected   int
	Untestable int // proven redundant (search exhausted without backtrack limit)
	Aborted    int // backtrack limit hit
	Faults     int
}

// Coverage returns detected / total faults.
func (r *Result) Coverage() float64 {
	if r.Faults == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Faults)
}

// Generate runs ATPG over the circuit's fault list.
func Generate(c *circuit.Circuit, opt Options) (*Result, error) {
	return GenerateCtx(context.Background(), c, opt)
}

// GenerateCtx is Generate with cancellation: ctx is checked between
// faults and inside the PODEM recursion, so a cancelled context stops
// an ATPG run within one search step instead of after the full fault
// list. On cancellation the context's error is returned; the partial
// result is discarded (ATPG output must be all-or-nothing to keep the
// deterministic test-set contract).
func GenerateCtx(ctx context.Context, c *circuit.Circuit, opt Options) (*Result, error) {
	if opt.MaxBacktracks <= 0 {
		opt.MaxBacktracks = 2000
	}
	var fl []faults.Fault
	if opt.Collapse {
		fl = faults.Collapse(c)
	} else {
		fl = faults.All(c)
	}
	res := &Result{Tests: testset.New(len(c.Inputs)), Faults: len(fl)}
	gen := &podem{c: c, ctx: ctx, maxBT: opt.MaxBacktracks, rng: rand.New(rand.NewSource(opt.Seed))}
	dropped := make([]bool, len(fl))
	for fi, f := range fl {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if dropped[fi] {
			res.Detected++
			continue
		}
		pattern, status := gen.run(f)
		switch status {
		case statusDetected:
			if opt.XMaximize {
				pattern = maximizeX(c, pattern, f)
			}
			if !faults.DefinitelyDetects(c, pattern, f) {
				return nil, fmt.Errorf("atpg: internal error: generated pattern fails verification for %s", f.Name(c))
			}
			res.Tests.Add(pattern)
			res.Detected++
			if opt.FaultDropping {
				for fj := fi + 1; fj < len(fl); fj++ {
					if !dropped[fj] && faults.DefinitelyDetects(c, pattern, fl[fj]) {
						dropped[fj] = true
					}
				}
			}
		case statusUntestable:
			res.Untestable++
		default:
			res.Aborted++
		}
	}
	// A cancellation that fired inside the final fault's search surfaces
	// as an abort; re-check so callers never see a silently truncated
	// result.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

type status int

const (
	statusDetected status = iota
	statusUntestable
	statusAborted
)

// podem carries the search state for one ATPG engine instance.
type podem struct {
	c     *circuit.Circuit
	ctx   context.Context
	maxBT int
	rng   *rand.Rand

	fault      faults.Fault
	assign     tritvec.Vector
	backtracks int
}

// run searches for a (partial) input assignment detecting f.
func (p *podem) run(f faults.Fault) (tritvec.Vector, status) {
	p.fault = f
	p.assign = tritvec.New(len(p.c.Inputs))
	p.backtracks = 0
	switch p.search() {
	case statusDetected:
		return p.assign.Clone(), statusDetected
	case statusUntestable:
		return tritvec.Vector{}, statusUntestable
	}
	return tritvec.Vector{}, statusAborted
}

// search implements the PODEM recursion: pick an objective, backtrace to
// an unassigned PI, try both values.
func (p *podem) search() status {
	// Cancellation surfaces as an abort; GenerateCtx turns it into the
	// context's error before any truncated result can escape.
	if p.ctx != nil && p.ctx.Err() != nil {
		return statusAborted
	}
	good := p.c.Sim3(p.assign, nil)
	bad := p.c.Sim3(p.assign, &circuit.Force{Signal: p.fault.Signal, Value: p.fault.SA})
	if detectedAt(p.c, good, bad) {
		return statusDetected
	}
	if !p.effectPossible(good, bad) {
		return statusUntestable
	}
	objSig, objVal, ok := p.objective(good, bad)
	if !ok {
		return statusUntestable
	}
	pi, piVal, ok := p.backtrace(objSig, objVal, good)
	if !ok {
		return statusUntestable
	}
	idx := p.c.InputIndex(pi)
	for attempt, v := range []tritvec.Trit{piVal, invert(piVal)} {
		p.assign.Set(idx, v)
		st := p.search()
		if st == statusDetected {
			return st
		}
		if st == statusAborted {
			p.assign.Set(idx, tritvec.X)
			return statusAborted
		}
		// statusUntestable under this assignment: undo and try opposite.
		p.assign.Set(idx, tritvec.X)
		if attempt == 0 {
			p.backtracks++
			if p.backtracks > p.maxBT {
				return statusAborted
			}
		}
	}
	return statusUntestable
}

func detectedAt(c *circuit.Circuit, good, bad []tritvec.Trit) bool {
	for _, po := range c.Outputs {
		g, b := good[po], bad[po]
		if g != tritvec.X && b != tritvec.X && g != b {
			return true
		}
	}
	return false
}

// effectPossible is the X-path check: some output can still differ, i.e.
// good and bad are not both specified-and-equal at every output.
func (p *podem) effectPossible(good, bad []tritvec.Trit) bool {
	for _, po := range p.c.Outputs {
		g, b := good[po], bad[po]
		if g == tritvec.X || b == tritvec.X || g != b {
			return true
		}
	}
	return false
}

// objective returns the next (signal, value) goal: excite the fault if
// not excited, otherwise advance the D-frontier.
func (p *podem) objective(good, bad []tritvec.Trit) (int, tritvec.Trit, bool) {
	site := p.fault.Signal
	if good[site] == tritvec.X {
		// Excitation: drive the site to the opposite of the stuck value.
		return site, invert(p.fault.SA), true
	}
	if good[site] == p.fault.SA {
		// Site pinned to the stuck value in the good machine: the fault
		// cannot be excited under the current assignment.
		return 0, tritvec.X, false
	}
	// D-frontier: gates with a fault effect on some fanin and an X
	// output in either machine. Objective: set an X side input to the
	// gate's non-controlling value.
	for _, id := range p.frontier(good, bad) {
		nc, hasNC := nonControlling(p.c.Types[id])
		for _, fin := range p.c.Fanin[id] {
			if good[fin] == tritvec.X && bad[fin] == tritvec.X {
				if hasNC {
					return fin, nc, true
				}
				return fin, tritvec.Zero, true // XOR-ish: any value
			}
		}
	}
	return 0, tritvec.X, false
}

// frontier lists gates where the fault effect is present on an input and
// the output is still X in at least one machine.
func (p *podem) frontier(good, bad []tritvec.Trit) []int {
	var out []int
	for id := 0; id < p.c.NumSignals(); id++ {
		if p.c.Types[id] == circuit.Input {
			continue
		}
		if good[id] != tritvec.X && bad[id] != tritvec.X {
			continue
		}
		for _, fin := range p.c.Fanin[id] {
			g, b := good[fin], bad[fin]
			if g != tritvec.X && b != tritvec.X && g != b {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// backtrace walks from an objective to an unassigned PI, tracking
// inversion parity.
func (p *podem) backtrace(sig int, val tritvec.Trit, good []tritvec.Trit) (int, tritvec.Trit, bool) {
	for hops := 0; hops < p.c.NumSignals()+1; hops++ {
		if p.c.Types[sig] == circuit.Input {
			if good[sig] != tritvec.X {
				return 0, tritvec.X, false // already assigned: dead objective
			}
			return sig, val, true
		}
		t := p.c.Types[sig]
		// Choose an X fanin; prefer one whose value choice is forced.
		var next int = -1
		for _, fin := range p.c.Fanin[sig] {
			if good[fin] == tritvec.X {
				next = fin
				break
			}
		}
		if next == -1 {
			return 0, tritvec.X, false
		}
		switch t {
		case circuit.Not, circuit.Nand, circuit.Nor, circuit.Xnor:
			val = invert(val)
		}
		switch t {
		case circuit.And, circuit.Nand:
			// output 1 (after inversion handling) needs all-1; output 0
			// needs some 0 — either way drive the chosen X input to val.
		case circuit.Or, circuit.Nor:
			// symmetric
		case circuit.Xor, circuit.Xnor:
			// parity: value choice is free; keep val.
		}
		sig = next
	}
	return 0, tritvec.X, false
}

// nonControlling returns the non-controlling input value for a gate type,
// or false for parity gates which have none.
func nonControlling(t circuit.GateType) (tritvec.Trit, bool) {
	switch t {
	case circuit.And, circuit.Nand:
		return tritvec.One, true
	case circuit.Or, circuit.Nor:
		return tritvec.Zero, true
	}
	return tritvec.X, false
}

func invert(v tritvec.Trit) tritvec.Trit {
	switch v {
	case tritvec.Zero:
		return tritvec.One
	case tritvec.One:
		return tritvec.Zero
	}
	return tritvec.X
}

// maximizeX greedily resets assigned inputs to X while the pattern still
// definitely detects the fault.
func maximizeX(c *circuit.Circuit, pattern tritvec.Vector, f faults.Fault) tritvec.Vector {
	out := pattern.Clone()
	for i := 0; i < out.Len(); i++ {
		if out.Get(i) == tritvec.X {
			continue
		}
		saved := out.Get(i)
		out.Set(i, tritvec.X)
		if !faults.DefinitelyDetects(c, out, f) {
			out.Set(i, saved)
		}
	}
	return out
}
