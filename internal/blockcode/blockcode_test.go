package blockcode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func mvset(t *testing.T, k int, mvs ...string) *MVSet {
	t.Helper()
	vs := make([]tritvec.Vector, len(mvs))
	for i, s := range mvs {
		vs[i] = tritvec.MustFromString(s)
	}
	set, err := NewMVSet(k, vs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPartitionPadding(t *testing.T) {
	ts, err := testset.ParseStrings("0110", "1XX0")
	if err != nil {
		t.Fatal(err)
	}
	blocks := Partition(ts, 3)
	want := []string{"011", "01X", "X0X"}
	if len(blocks) != len(want) {
		t.Fatalf("nblocks=%d", len(blocks))
	}
	for i, w := range want {
		if blocks[i].String() != w {
			t.Errorf("block %d = %q want %q", i, blocks[i], w)
		}
	}
	// Exact division: no padding.
	blocks = Partition(ts, 4)
	if len(blocks) != 2 || blocks[1].String() != "1XX0" {
		t.Fatalf("K=4 partition wrong: %v", blocks)
	}
}

func TestNewMVSetValidation(t *testing.T) {
	if _, err := NewMVSet(3, []tritvec.Vector{tritvec.New(4)}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWithAllU(t *testing.T) {
	set := mvset(t, 3, "000", "111")
	out := set.WithAllU()
	if out.MVs[1].CountX() != 3 {
		t.Fatal("last MV not forced to all-U")
	}
	// Original untouched.
	if set.MVs[1].CountX() != 0 {
		t.Fatal("WithAllU mutated receiver")
	}
	// Already has all-U: unchanged.
	set2 := mvset(t, 3, "XXX", "111")
	out2 := set2.WithAllU()
	if out2.MVs[1].CountX() != 0 {
		t.Fatal("WithAllU should keep existing all-U set intact")
	}
	// Empty set gains one.
	set3 := &MVSet{K: 2}
	if got := set3.WithAllU(); len(got.MVs) != 1 || got.MVs[0].CountX() != 2 {
		t.Fatal("WithAllU on empty set")
	}
}

func TestCoverMinUOrder(t *testing.T) {
	// Block 111000 matches both 111000 (0 Us) and 111UUU (3 Us); min-U
	// covering must pick the exact vector.
	set := mvset(t, 6, "111UUU", "111000", "UUUUUU")
	blocks := []tritvec.Vector{
		tritvec.MustFromString("111000"),
		tritvec.MustFromString("111110"),
		tritvec.MustFromString("000000"),
	}
	cov := set.Cover(blocks)
	if !cov.OK() {
		t.Fatal("uncovered")
	}
	if cov.Assign[0] != 1 {
		t.Fatalf("block 0 assigned to %d, want exact MV 1", cov.Assign[0])
	}
	if cov.Assign[1] != 0 {
		t.Fatalf("block 1 assigned to %d, want 111UUU", cov.Assign[1])
	}
	if cov.Assign[2] != 2 {
		t.Fatalf("block 2 assigned to %d, want all-U", cov.Assign[2])
	}
	if cov.Freqs[0] != 1 || cov.Freqs[1] != 1 || cov.Freqs[2] != 1 {
		t.Fatalf("freqs=%v", cov.Freqs)
	}
}

func TestCoverUncovered(t *testing.T) {
	set := mvset(t, 2, "00")
	blocks := []tritvec.Vector{tritvec.MustFromString("11")}
	cov := set.Cover(blocks)
	if cov.OK() || cov.Uncovered != 1 || cov.Assign[0] != -1 {
		t.Fatalf("expected uncovered block: %+v", cov)
	}
}

func TestCoverByEncoding(t *testing.T) {
	// With fixed code lengths, a cheap long-U vector can beat an exact one.
	set := mvset(t, 4, "1111", "UUUU")
	// exact codeword costs 10 bits, all-U costs 1+4=5.
	lens := []int{10, 1}
	blocks := []tritvec.Vector{tritvec.MustFromString("1111")}
	cov := set.CoverByEncoding(blocks, lens)
	if cov.Assign[0] != 1 {
		t.Fatalf("CoverByEncoding picked %d", cov.Assign[0])
	}
}

func TestRate(t *testing.T) {
	if Rate(100, 40) != 60 {
		t.Fatal("rate 60 expected")
	}
	if Rate(100, 110) != -10 {
		t.Fatal("negative rate expected")
	}
	if Rate(0, 0) != 0 {
		t.Fatal("zero original")
	}
}

func TestEncodeDecodeVerify(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ts := testset.Random(16, 40, 0.35, r)
	set := mvset(t, 8, "UUUUUUUU", "00000000", "11111111", "0000UUUU")
	res, err := CompressHuffman(ts, set)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream == nil || res.Stream.Len() != res.CompressedBits {
		t.Fatal("stream size mismatch")
	}
	blocks := Partition(ts, 8)
	dec, err := Decode(bitstream.FromWriter(res.Stream), set, res.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFailures(t *testing.T) {
	orig := []tritvec.Vector{tritvec.MustFromString("1X")}
	if err := Verify(orig, []tritvec.Vector{}); err == nil {
		t.Fatal("count mismatch accepted")
	}
	if err := Verify(orig, []tritvec.Vector{tritvec.MustFromString("1X")}); err == nil {
		t.Fatal("non-fully-specified decode accepted")
	}
	if err := Verify(orig, []tritvec.Vector{tritvec.MustFromString("00")}); err == nil {
		t.Fatal("incompatible decode accepted")
	}
	if err := Verify(orig, []tritvec.Vector{tritvec.MustFromString("10")}); err != nil {
		t.Fatalf("valid decode rejected: %v", err)
	}
}

func TestBuildHuffmanUncoveredError(t *testing.T) {
	ts, _ := testset.ParseStrings("11")
	set := mvset(t, 2, "00")
	if _, err := set.BuildHuffman(Partition(ts, 2), ts.TotalBits()); err == nil {
		t.Fatal("expected uncovered error")
	}
}

func TestCompressedBitsAccounting(t *testing.T) {
	set := mvset(t, 4, "1111", "UUUU")
	cov := &Covering{Freqs: []int{3, 2}}
	lens := []int{1, 2}
	// 3*(1+0) + 2*(2+4) = 15
	if got := set.CompressedBits(cov, lens); got != 15 {
		t.Fatalf("CompressedBits=%d want 15", got)
	}
}

func TestDedup(t *testing.T) {
	blocks := []tritvec.Vector{
		tritvec.MustFromString("01X"),
		tritvec.MustFromString("01X"),
		tritvec.MustFromString("111"),
		tritvec.MustFromString("01X"),
	}
	ms := Dedup(blocks)
	if len(ms.Blocks) != 2 || ms.Total != 4 {
		t.Fatalf("dedup blocks=%d total=%d", len(ms.Blocks), ms.Total)
	}
	if ms.Counts[0] != 3 || ms.Counts[1] != 1 {
		t.Fatalf("counts=%v", ms.Counts)
	}
	// 0X1 and 0 X 1 with different care patterns must not collide.
	b2 := []tritvec.Vector{tritvec.MustFromString("0X"), tritvec.MustFromString("00")}
	if ms2 := Dedup(b2); len(ms2.Blocks) != 2 {
		t.Fatal("X and 0 collided in dedup key")
	}
}

func TestCoverMultisetMatchesCover(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for iter := 0; iter < 30; iter++ {
		ts := testset.Random(12, 30, r.Float64()*0.8, r)
		blocks := Partition(ts, 6)
		set := &MVSet{K: 6}
		for i := 0; i < 5; i++ {
			set.MVs = append(set.MVs, tritvec.RandomTernary(6, r))
		}
		set.MVs = append(set.MVs, tritvec.New(6)) // all-U
		covA := set.Cover(blocks)
		covB := set.CoverMultiset(Dedup(blocks))
		for i := range covA.Freqs {
			if covA.Freqs[i] != covB.Freqs[i] {
				t.Fatalf("iter %d: freqs differ %v vs %v", iter, covA.Freqs, covB.Freqs)
			}
		}
		if covA.Uncovered != covB.Uncovered {
			t.Fatalf("uncovered differ")
		}
	}
}

func TestQuickLossless(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := r.Intn(10) + 2
		width := k * (r.Intn(3) + 1)
		ts := testset.Random(width, r.Intn(30)+1, r.Float64(), r)
		// Random MV set + all-U.
		var mvs []tritvec.Vector
		for i := 0; i < r.Intn(6)+1; i++ {
			mvs = append(mvs, tritvec.RandomTernary(k, r))
		}
		mvs = append(mvs, tritvec.New(k))
		set, err := NewMVSet(k, mvs)
		if err != nil {
			return false
		}
		res, err := CompressHuffman(ts, set)
		if err != nil {
			return false
		}
		blocks := Partition(ts, k)
		dec, err := Decode(bitstream.FromWriter(res.Stream), set, res.Code, len(blocks))
		if err != nil {
			return false
		}
		return Verify(blocks, dec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K<=0")
		}
	}()
	PartitionFlat(tritvec.New(4), 0)
}
