// Package blockcode implements the fixed-length input-block code framework
// of Section 2 of the paper: the test-set string is partitioned into input
// blocks of length K; a set of matching vectors (MVs) over {0,1,U} covers
// the blocks; each block is encoded as the prefix codeword of its MV
// followed by the block's values at the MV's U positions.
package blockcode

import (
	"fmt"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/huffman"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Partition splits the flattened test-set string of ts into input blocks of
// length k, padding the final block with X values as required by the paper
// ("the test set string is filled up by adding … X values in the end").
func Partition(ts *testset.TestSet, k int) []tritvec.Vector {
	if k <= 0 {
		panic("blockcode: K must be positive")
	}
	flat := ts.Flatten()
	return PartitionFlat(flat, k)
}

// PartitionFlat splits an arbitrary trit string into K-blocks with X
// padding.
func PartitionFlat(flat tritvec.Vector, k int) []tritvec.Vector {
	n := flat.Len()
	nblocks := (n + k - 1) / k
	blocks := make([]tritvec.Vector, nblocks)
	for i := 0; i < nblocks; i++ {
		lo := i * k
		hi := lo + k
		if hi <= n {
			blocks[i] = flat.Slice(lo, hi)
		} else {
			b := tritvec.New(k)
			b.CopyFrom(flat.Slice(lo, n), 0)
			blocks[i] = b
		}
	}
	return blocks
}

// MVSet is an ordered set of matching vectors of a common length K.
type MVSet struct {
	K   int
	MVs []tritvec.Vector
}

// NewMVSet validates that all vectors have length k.
func NewMVSet(k int, mvs []tritvec.Vector) (*MVSet, error) {
	for i, v := range mvs {
		if v.Len() != k {
			return nil, fmt.Errorf("blockcode: MV %d has length %d, want %d", i, v.Len(), k)
		}
	}
	return &MVSet{K: k, MVs: mvs}, nil
}

// WithAllU returns a copy of s whose last MV is forced to all-U, the
// paper's device for making every instance solvable. If an all-U MV is
// already present the set is returned unchanged (as a copy).
func (s *MVSet) WithAllU() *MVSet {
	out := &MVSet{K: s.K, MVs: append([]tritvec.Vector(nil), s.MVs...)}
	for _, v := range out.MVs {
		if v.CountX() == s.K {
			return out
		}
	}
	if len(out.MVs) == 0 {
		out.MVs = append(out.MVs, tritvec.New(s.K))
		return out
	}
	out.MVs[len(out.MVs)-1] = tritvec.New(s.K)
	return out
}

// CoverOrder selects how covering chooses among multiple matching MVs.
type CoverOrder int

const (
	// MinU selects the matching MV with the fewest U positions (the
	// paper's rule, Section 3.2). Ties break toward the earlier MV.
	MinU CoverOrder = iota
	// MinEncoding selects the matching MV minimizing |C(v)| + NU(v); it
	// requires codeword lengths and is used by the 9C baseline, whose
	// fixed code makes this computable up front.
	MinEncoding
)

// Covering is the result of assigning each block to an MV.
type Covering struct {
	// Assign[b] is the index (into the MVSet) of the MV covering block b,
	// or -1 if no MV matches.
	Assign []int
	// Freqs[i] is the number of blocks covered by MV i.
	Freqs []int
	// Uncovered counts blocks with no matching MV.
	Uncovered int
}

// OK reports whether every block was covered.
func (c *Covering) OK() bool { return c.Uncovered == 0 }

// Cover assigns each block to the first matching MV in min-U order
// (Section 3.2: MVs are processed sorted by increasing number of Us).
func (s *MVSet) Cover(blocks []tritvec.Vector) *Covering {
	return s.coverOrdered(blocks, s.orderMinU())
}

// CoverByEncoding assigns each block to the matching MV with minimal total
// encoding length given per-MV codeword lengths.
func (s *MVSet) CoverByEncoding(blocks []tritvec.Vector, codeLens []int) *Covering {
	order := make([]int, len(s.MVs))
	for i := range order {
		order[i] = i
	}
	cost := func(i int) int { return codeLens[i] + s.MVs[i].CountX() }
	sort.SliceStable(order, func(a, b int) bool { return cost(order[a]) < cost(order[b]) })
	return s.coverOrdered(blocks, order)
}

// orderMinU returns MV indices sorted by ascending number of U positions,
// stable in original index order.
func (s *MVSet) orderMinU() []int {
	order := make([]int, len(s.MVs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.MVs[order[a]].CountX() < s.MVs[order[b]].CountX()
	})
	return order
}

func (s *MVSet) coverOrdered(blocks []tritvec.Vector, order []int) *Covering {
	cov := &Covering{Assign: make([]int, len(blocks)), Freqs: make([]int, len(s.MVs))}
	for b, blk := range blocks {
		cov.Assign[b] = -1
		for _, i := range order {
			if s.MVs[i].Matches(blk) {
				cov.Assign[b] = i
				cov.Freqs[i]++
				break
			}
		}
		if cov.Assign[b] == -1 {
			cov.Uncovered++
		}
	}
	return cov
}

// CompressedBits returns Σ_i Freqs[i]·(|C(v_i)| + NU(v_i)) for the given
// codeword lengths.
func (s *MVSet) CompressedBits(cov *Covering, codeLens []int) int {
	total := 0
	for i, f := range cov.Freqs {
		if f > 0 {
			total += f * (codeLens[i] + s.MVs[i].CountX())
		}
	}
	return total
}

// Rate returns the paper's compression rate in percent:
// 100·(original − compressed)/original. Negative rates (expansion) are
// possible and reported as such, as in the paper's tables.
func Rate(originalBits, compressedBits int) float64 {
	if originalBits == 0 {
		return 0
	}
	return 100 * float64(originalBits-compressedBits) / float64(originalBits)
}

// Result bundles everything produced by compressing a block sequence with
// an MV set.
type Result struct {
	Set            *MVSet
	Code           *huffman.Code
	Covering       *Covering
	OriginalBits   int
	CompressedBits int
	// Stream is the actual encoded bitstream (nil when only sizing was
	// requested).
	Stream *bitstream.Writer
}

// RatePercent returns the compression rate of the result.
func (r *Result) RatePercent() float64 { return Rate(r.OriginalBits, r.CompressedBits) }

// BuildHuffman covers the blocks with s (min-U order) and constructs the
// Huffman code from the observed frequencies. It returns an error if any
// block is uncovered.
func (s *MVSet) BuildHuffman(blocks []tritvec.Vector, originalBits int) (*Result, error) {
	cov := s.Cover(blocks)
	if !cov.OK() {
		return nil, fmt.Errorf("blockcode: %d of %d blocks uncovered", cov.Uncovered, len(blocks))
	}
	code, err := huffman.Build(cov.Freqs)
	if err != nil {
		return nil, err
	}
	return &Result{
		Set:            s,
		Code:           code,
		Covering:       cov,
		OriginalBits:   originalBits,
		CompressedBits: s.CompressedBits(cov, code.Lengths),
	}, nil
}

// Encode emits the bitstream for blocks under the covering and code in res.
// Unspecified block values at U positions are transmitted as 0 (any fill is
// acceptable: the position was a don't-care).
func Encode(blocks []tritvec.Vector, res *Result) (*bitstream.Writer, error) {
	w := bitstream.NewWriter()
	code := res.Code
	set := res.Set
	for b, blk := range blocks {
		mv := res.Covering.Assign[b]
		if mv < 0 {
			return nil, fmt.Errorf("blockcode: block %d uncovered", b)
		}
		if code.Lengths[mv] == 0 {
			return nil, fmt.Errorf("blockcode: MV %d used but has no codeword", mv)
		}
		w.WriteBits(code.Words[mv], code.Lengths[mv])
		for _, pos := range set.MVs[mv].XPositions() {
			switch blk.Get(pos) {
			case tritvec.One:
				w.WriteBit(1)
			default: // Zero or X → 0 fill
				w.WriteBit(0)
			}
		}
	}
	res.Stream = w
	if w.Len() != res.CompressedBits {
		return nil, fmt.Errorf("blockcode: stream length %d != accounted size %d", w.Len(), res.CompressedBits)
	}
	return w, nil
}

// Decode reconstructs nblocks fully-specified blocks from any bit source
// (the in-memory reader or the io.Reader-fed streaming one). Each decoded
// block consists of the MV's specified bits with the transmitted fill
// bits at its U positions. Truncation errors wrap bitstream.ErrEOS.
func Decode(r bitstream.Source, set *MVSet, code *huffman.Code, nblocks int) ([]tritvec.Vector, error) {
	if nblocks < 0 {
		return nil, fmt.Errorf("blockcode: negative block count %d", nblocks)
	}
	dec, err := huffman.NewDecoder(code)
	if err != nil {
		return nil, err
	}
	// Capacity is bounded, not trusted: nblocks derives from a container
	// header, and a hostile K=1 × MaxTotalBits header implies 2^30 block
	// slots (~56 GiB of Vector headers) before a single payload bit is
	// read. Growth past the cap is paid for by actual input — every
	// decoded block consumes at least one source bit first.
	out := make([]tritvec.Vector, 0, min(nblocks, 1<<16))
	for b := 0; b < nblocks; b++ {
		sym, err := dec.Decode(r.ReadBit)
		if err != nil {
			return nil, fmt.Errorf("blockcode: block %d: %w", b, err)
		}
		if sym < 0 || sym >= len(set.MVs) {
			return nil, fmt.Errorf("blockcode: decoded invalid MV index %d", sym)
		}
		blk := set.MVs[sym].Clone()
		for _, pos := range set.MVs[sym].XPositions() {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, fmt.Errorf("blockcode: block %d fill: %w", b, err)
			}
			if bit == 1 {
				blk.Set(pos, tritvec.One)
			} else {
				blk.Set(pos, tritvec.Zero)
			}
		}
		out = append(out, blk)
	}
	return out, nil
}

// Verify checks losslessness: every original block's specified bits are
// preserved in the decoded block, and decoded blocks are fully specified.
func Verify(original, decoded []tritvec.Vector) error {
	if len(original) != len(decoded) {
		return fmt.Errorf("blockcode: block count mismatch %d vs %d", len(original), len(decoded))
	}
	for i := range original {
		if decoded[i].CountX() != 0 {
			return fmt.Errorf("blockcode: decoded block %d not fully specified", i)
		}
		if !original[i].Subsumes(decoded[i]) {
			return fmt.Errorf("blockcode: block %d: decoded %s incompatible with original %s",
				i, decoded[i], original[i])
		}
	}
	return nil
}

// CompressHuffman is the one-call convenience: partition ts into K-blocks,
// cover with set, Huffman-encode, emit and verify the stream.
func CompressHuffman(ts *testset.TestSet, set *MVSet) (*Result, error) {
	blocks := Partition(ts, set.K)
	res, err := set.BuildHuffman(blocks, ts.TotalBits())
	if err != nil {
		return nil, err
	}
	if _, err := Encode(blocks, res); err != nil {
		return nil, err
	}
	return res, nil
}
