package blockcode

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/huffman"
	"repro/internal/testset"
)

// TestPaperSection33Example reproduces the worked example from Section 3.3:
// MVs v1=111U (F=5), v2=1110 (F=3), v3=0000 (F=2). Plain Huffman coding
// yields 20 bits of compressed data; folding v2 into the subsuming v1
// yields 18 bits.
func TestPaperSection33Example(t *testing.T) {
	set := mvset(t, 4, "111U", "1110", "0000")

	freqs := []int{5, 3, 2}
	code, err := huffman.Build(freqs)
	if err != nil {
		t.Fatal(err)
	}
	plain := set.CompressedBits(&Covering{Freqs: freqs}, code.Lengths)
	if plain != 20 {
		t.Fatalf("plain Huffman size = %d bits, paper says 20", plain)
	}

	cov := &Covering{Assign: assignFromFreqs(freqs), Freqs: freqs}
	_, _, optimized, err := set.SubsumeOptimize(cov)
	if err != nil {
		t.Fatal(err)
	}
	if optimized != 18 {
		t.Fatalf("subsume-optimized size = %d bits, paper says 18", optimized)
	}
}

// assignFromFreqs builds a block->MV assignment consistent with freqs.
func assignFromFreqs(freqs []int) []int {
	var assign []int
	for mv, f := range freqs {
		for i := 0; i < f; i++ {
			assign = append(assign, mv)
		}
	}
	return assign
}

func TestSubsumeOptimizeNeverWorse(t *testing.T) {
	// Construct a covering on real blocks and confirm the pass is
	// monotone (never increases size) and keeps the covering valid.
	ts, err := testset.ParseStrings(
		"11101110", "11101111", "00000000", "11100000",
		"11101110", "11101111", "00000000", "11101110",
	)
	if err != nil {
		t.Fatal(err)
	}
	set := mvset(t, 8, "1110111U", "11101110", "00000000", "UUUUUUUU")
	blocks := Partition(ts, 8)
	res, err := set.BuildHuffman(blocks, ts.TotalBits())
	if err != nil {
		t.Fatal(err)
	}
	cov2, code2, sz, err := set.SubsumeOptimize(res.Covering)
	if err != nil {
		t.Fatal(err)
	}
	if sz > res.CompressedBits {
		t.Fatalf("subsume pass increased size: %d > %d", sz, res.CompressedBits)
	}
	// Every reassigned block must still be matched by its new MV.
	for b, mv := range cov2.Assign {
		if !set.MVs[mv].Matches(blocks[b]) {
			t.Fatalf("block %d reassigned to non-matching MV %d", b, mv)
		}
	}
	if code2.TotalBits(cov2.Freqs) > code2.TotalBits(cov2.Freqs) {
		t.Fatal("unreachable")
	}
}

func TestBuildHuffmanOptEndToEnd(t *testing.T) {
	ts, err := testset.ParseStrings(
		"11101110", "11101111", "00000000", "11100000",
		"11101110", "11101111", "00000000", "11101110",
	)
	if err != nil {
		t.Fatal(err)
	}
	set := mvset(t, 8, "1110111U", "11101110", "00000000", "UUUUUUUU")
	blocks := Partition(ts, 8)
	plain, err := set.BuildHuffman(blocks, ts.TotalBits())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := set.BuildHuffmanOpt(blocks, ts.TotalBits())
	if err != nil {
		t.Fatal(err)
	}
	if opt.CompressedBits > plain.CompressedBits {
		t.Fatalf("opt %d worse than plain %d", opt.CompressedBits, plain.CompressedBits)
	}
	// The optimized result must still encode and round-trip.
	if _, err := Encode(blocks, opt); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bitstream.FromWriter(opt.Stream), opt.Set, opt.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
}
