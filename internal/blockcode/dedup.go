package blockcode

import (
	"strings"

	"repro/internal/tritvec"
)

// BlockMultiset is a deduplicated block sequence: real test-set strings
// repeat blocks heavily (sparse specified bits), so fitness evaluation over
// unique blocks weighted by multiplicity is dramatically cheaper than over
// the raw sequence while producing identical frequencies and sizes.
type BlockMultiset struct {
	Blocks []tritvec.Vector
	Counts []int
	Total  int // Σ Counts
}

func blockKey(v tritvec.Vector) string {
	var sb strings.Builder
	care, val := v.Words()
	buf := make([]byte, 0, 16)
	for i := range care {
		for b := 0; b < 8; b++ {
			buf = append(buf, byte(care[i]>>uint(8*b)), byte(val[i]>>uint(8*b)))
		}
	}
	sb.Write(buf)
	return sb.String()
}

// Dedup collapses equal blocks, preserving first-occurrence order.
func Dedup(blocks []tritvec.Vector) *BlockMultiset {
	ms := &BlockMultiset{Total: len(blocks)}
	index := make(map[string]int, len(blocks))
	for _, b := range blocks {
		k := blockKey(b)
		if i, ok := index[k]; ok {
			ms.Counts[i]++
			continue
		}
		index[k] = len(ms.Blocks)
		ms.Blocks = append(ms.Blocks, b)
		ms.Counts = append(ms.Counts, 1)
	}
	return ms
}

// CoverMultiset covers the unique blocks in min-U order; frequencies are
// weighted by multiplicity so they equal those of covering the raw
// sequence.
func (s *MVSet) CoverMultiset(ms *BlockMultiset) *Covering {
	order := s.orderMinU()
	cov := &Covering{Assign: make([]int, len(ms.Blocks)), Freqs: make([]int, len(s.MVs))}
	for b, blk := range ms.Blocks {
		cov.Assign[b] = -1
		for _, i := range order {
			if s.MVs[i].Matches(blk) {
				cov.Assign[b] = i
				cov.Freqs[i] += ms.Counts[b]
				break
			}
		}
		if cov.Assign[b] == -1 {
			cov.Uncovered += ms.Counts[b]
		}
	}
	return cov
}
