package blockcode

import (
	"repro/internal/huffman"
	"repro/internal/tritvec"
)

// SubsumeOptimize implements the improvement the paper identifies in
// Section 3.3: plain Huffman coding over covering frequencies can be
// suboptimal when one MV subsumes another. If all blocks covered by MV j
// are also matched by MV i (v_i subsumes v_j), dropping v_j and folding its
// frequency into v_i sometimes shrinks the total compressed size, because
// the removed codeword shortens the remaining code even though v_i spends
// more fill bits.
//
// The pass greedily evaluates every subsuming pair, applies the single best
// improving merge, and repeats until no merge improves the size. It returns
// a new Covering/Code pair; the MV set itself is unchanged (dropped MVs
// simply end up with zero frequency and no codeword).
func (s *MVSet) SubsumeOptimize(cov *Covering) (*Covering, *huffman.Code, int, error) {
	freqs := append([]int(nil), cov.Freqs...)
	assign := append([]int(nil), cov.Assign...)

	size := func(f []int) (int, *huffman.Code, error) {
		code, err := huffman.Build(f)
		if err != nil {
			return 0, nil, err
		}
		return s.CompressedBits(&Covering{Freqs: f}, code.Lengths), code, nil
	}

	bestSize, bestCode, err := size(freqs)
	if err != nil {
		return nil, nil, 0, err
	}

	for {
		improved := false
		bestFrom, bestTo, bestNew := -1, -1, bestSize
		for j := range s.MVs {
			if freqs[j] == 0 {
				continue
			}
			for i := range s.MVs {
				if i == j || freqs[i] == 0 {
					continue
				}
				if !s.MVs[i].Subsumes(s.MVs[j]) {
					continue
				}
				trial := append([]int(nil), freqs...)
				trial[i] += trial[j]
				trial[j] = 0
				sz, _, err := size(trial)
				if err != nil {
					continue
				}
				if sz < bestNew {
					bestNew, bestFrom, bestTo = sz, j, i
					improved = true
				}
			}
		}
		if !improved {
			break
		}
		for b := range assign {
			if assign[b] == bestFrom {
				assign[b] = bestTo
			}
		}
		freqs[bestTo] += freqs[bestFrom]
		freqs[bestFrom] = 0
		bestSize = bestNew
	}

	var err2 error
	bestSize, bestCode, err2 = size(freqs)
	if err2 != nil {
		return nil, nil, 0, err2
	}
	return &Covering{Assign: assign, Freqs: freqs}, bestCode, bestSize, nil
}

// BuildHuffmanOpt is BuildHuffman followed by the subsumption post-pass.
func (s *MVSet) BuildHuffmanOpt(blocks []tritvec.Vector, originalBits int) (*Result, error) {
	res, err := s.BuildHuffman(blocks, originalBits)
	if err != nil {
		return nil, err
	}
	cov, code, sz, err := s.SubsumeOptimize(res.Covering)
	if err != nil {
		return nil, err
	}
	if sz < res.CompressedBits {
		res.Covering = cov
		res.Code = code
		res.CompressedBits = sz
	}
	return res, nil
}
