package pipeline

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Ordered is the engine's incremental counterpart to Stream: jobs are
// submitted one at a time (the full job list need not exist up front, so
// a producer reading from a pipe can feed it), run on a bounded worker
// pool, and delivered to a single sink callback strictly in submission
// order — the same deterministic index-ordered aggregation the batch
// engine guarantees, without materializing the batch.
//
// Backpressure is structural: at most window results are in flight, so a
// fast producer over a slow sink (or one slow job) holds O(window) job
// inputs and outputs in memory, never the whole stream. Seeds derive from
// (RootSeed, submission index) exactly as in Stream, so a parallel run is
// byte-identical to a serial one.
type Ordered[T any] struct {
	ctx     context.Context
	cfg     Config
	sink    func(Result[T]) error
	queue   chan *orderedSlot[T] // FIFO of submitted, possibly unfinished slots
	workers chan struct{}        // worker-pool tokens
	drained chan struct{}        // collector exit
	next    int                  // submission index
	mu      sync.Mutex
	err     error // first sink/job error, sticky
	closed  bool
}

type orderedSlot[T any] struct {
	done chan struct{}
	res  Result[T]
}

// NewOrdered starts the collector for an ordered run. cfg.Workers bounds
// concurrent jobs (<=0 = GOMAXPROCS); the in-flight window is twice that,
// so workers stay busy while the head-of-line job finishes. sink is
// called from a single goroutine, in submission order, for every
// submitted job — also for failed ones, with Result.Err set. A sink error
// stops delivery (subsequent results are dropped) and surfaces from
// Submit and Close.
func NewOrdered[T any](ctx context.Context, cfg Config, sink func(Result[T]) error) *Ordered[T] {
	workers := cfg.workers(1 << 30) // no job-count clamp: the count is unknown
	o := &Ordered[T]{
		ctx:     ctx,
		cfg:     cfg,
		sink:    sink,
		queue:   make(chan *orderedSlot[T], 2*workers),
		workers: make(chan struct{}, workers),
		drained: make(chan struct{}),
	}
	go o.collect()
	return o
}

func (o *Ordered[T]) collect() {
	defer close(o.drained)
	for s := range o.queue {
		<-s.done
		o.mu.Lock()
		failed := o.err
		if failed == nil && s.res.Err != nil {
			o.err = s.res.Err
		}
		o.mu.Unlock()
		if failed != nil {
			continue // sink already errored: drain without delivering
		}
		if err := o.sink(s.res); err != nil {
			o.mu.Lock()
			if o.err == nil {
				o.err = err
			}
			o.mu.Unlock()
		}
	}
}

// Err returns the first job or sink error observed so far.
func (o *Ordered[T]) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// Submit schedules one job. It blocks while the in-flight window is full
// (backpressure) and returns early with the sticky error once any job or
// the sink has failed, so a producer stops promptly instead of pumping a
// doomed stream. Submit and Close must be called from one goroutine (the
// producer); results are delivered concurrently by the collector.
func (o *Ordered[T]) Submit(name string, run func(ctx context.Context, seed int64) (T, error)) error {
	if o.closed {
		return fmt.Errorf("pipeline: Submit on closed Ordered run")
	}
	if err := o.Err(); err != nil {
		return err
	}
	s := &orderedSlot[T]{done: make(chan struct{})}
	s.res = Result[T]{Index: o.next, Name: name, Seed: Seed(o.cfg.RootSeed, o.next)}
	select {
	case o.queue <- s: // reserve the delivery slot (blocks when window is full)
		o.next++
	case <-o.ctx.Done():
		// Record the cancellation in the sticky error: this bail-out
		// creates no slot, so the collector would otherwise never see
		// it and Close could report success for an aborted stream.
		err := o.ctx.Err()
		o.mu.Lock()
		if o.err == nil {
			o.err = err
		}
		o.mu.Unlock()
		return err
	}
	select {
	case o.workers <- struct{}{}:
	case <-o.ctx.Done():
		s.res.Err = o.ctx.Err()
		close(s.done)
		return s.res.Err
	}
	go func() {
		defer func() { <-o.workers }()
		defer close(s.done)
		if err := o.ctx.Err(); err != nil {
			s.res.Err = err
			return
		}
		// Each worker job is a span named after the job (WithoutStage:
		// a chunked stream submits one job per chunk, and per-chunk
		// stage names would bloat the request-completion log line).
		sctx, sp := obs.StartSpan(o.ctx, s.res.Name, obs.WithoutStage())
		// safeRun contains job panics so one poisoned chunk surfaces as
		// this slot's error instead of killing the whole process.
		s.res.Value, s.res.Err = safeRun(func() (T, error) { return run(sctx, s.res.Seed) })
		sp.SetError(s.res.Err)
		sp.End()
	}()
	return nil
}

// Close waits for every submitted job to finish and be delivered, then
// returns the first error (job, sink, or context). Close is idempotent.
// Delivery of already-submitted results runs to completion: a sink
// blocked inside an uninterruptible Write (a stalled pipe) holds Close
// until that Write returns — cancel the consumer, not just the context.
func (o *Ordered[T]) Close() error {
	if !o.closed {
		o.closed = true
		close(o.queue)
	}
	<-o.drained
	return o.Err()
}
