package pipeline

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrPanic marks job results whose Run panicked. The engine recovers the
// panic on the worker goroutine and converts it into a job error (a
// *PanicError wrapping this sentinel), so a bug in one job — a codec fed
// a pathological input, an index error in a fitness function — degrades
// that one job instead of terminating the process for every concurrent
// request. Test with errors.Is(err, ErrPanic); retrieve the panic value
// and stack with errors.As into a *PanicError.
var ErrPanic = errors.New("pipeline: job panicked")

// PanicError carries a recovered job panic: the panic value and the
// worker goroutine's stack at the point of the panic. It wraps ErrPanic.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted stack trace captured by the recovering
	// worker (debug.Stack output).
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pipeline: job panicked: %v", e.Value)
}

// Unwrap makes errors.Is(err, ErrPanic) true.
func (e *PanicError) Unwrap() error { return ErrPanic }

// safeRun invokes run, converting a panic into a *PanicError. The
// returned value is run's result when it returns normally and the zero
// value when it panicked.
func safeRun[T any](run func() (T, error)) (val T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return run()
}
