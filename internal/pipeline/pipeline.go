// Package pipeline is the repo's batch-execution engine: it shards a
// slice of independent jobs (circuit × coder × parameters in the paper's
// sweep) across a bounded worker pool, derives a deterministic RNG seed
// for every job from a single root seed, streams results as they finish,
// and aggregates them into an index-sorted, reproducible report.
//
// The non-negotiable invariant is determinism: given the same root seed
// and job list, a run with N workers produces results byte-identical to a
// serial run. The engine guarantees this by (a) deriving each job's seed
// from the root seed and the job's index only (splitmix64, never from
// scheduling order), and (b) aggregating by job index, never by completion
// order. Anything nondeterministic (wall-clock timing) is kept out of the
// comparable part of a Result.
//
// Nested parallel regions (a parallel sweep whose jobs each run a
// parallel EA fitness evaluation) compose through a shared Limiter: inner
// regions only spawn helper goroutines when a token is free and otherwise
// run inline, so the machine is never oversubscribed and nesting can never
// deadlock.
package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrAborted marks jobs the engine skipped because an earlier job failed
// under Config.FailFast. An aborted job's index is always higher than
// the failing job's (dispatch follows index order), so Run's
// lowest-index-error guarantee always surfaces a real error.
var ErrAborted = errors.New("pipeline: job aborted after earlier job error")

// Seed derives the RNG seed for job index from root using an splitmix64
// mixing step. The derivation depends only on (root, index), so sharding
// and scheduling cannot perturb it; distinct indices give well-separated
// streams even for adjacent roots.
func Seed(root int64, index int) int64 {
	z := uint64(root) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Limiter is a counting semaphore bounding the number of helper
// goroutines across all parallel regions that share it. Acquisition is
// always non-blocking (TryAcquire): a region that cannot get a token runs
// the work inline on its own goroutine, which keeps nested regions
// deadlock-free by construction.
type Limiter struct {
	tokens chan struct{}
}

// NewLimiter returns a Limiter with n tokens (minimum 1).
func NewLimiter(n int) *Limiter {
	if n < 1 {
		n = 1
	}
	return &Limiter{tokens: make(chan struct{}, n)}
}

// TryAcquire takes a token if one is free.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks until a token is free or ctx is done. It is the
// admission-control entry point for callers that must not proceed
// without a token (a network service queueing requests against a shared
// worker budget), as opposed to the engine's internal TryAcquire, whose
// callers always have inline execution as a fallback. Never call Acquire
// while already holding a token from the same Limiter: unlike TryAcquire
// it can wait, and a hold-and-wait cycle is a deadlock.
//
// Time spent waiting for a token is recorded as a queue_wait span (and
// stage) on the context's request trace (a no-op outside a traced
// request). The uncontended path records nothing: queue_wait only
// appears on requests that actually queued. Unlike the historical
// stage-only version, a wait that ends in cancellation now records too,
// marked with the context error — a request killed while queueing is
// exactly the one whose queue time matters.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.tokens <- struct{}{}:
		return nil
	default:
	}
	_, sp := obs.StartSpan(ctx, "queue_wait")
	select {
	case l.tokens <- struct{}{}:
		sp.End()
		return nil
	case <-ctx.Done():
		sp.SetError(ctx.Err())
		sp.End()
		return ctx.Err()
	}
}

// Release returns a token taken by TryAcquire or Acquire.
func (l *Limiter) Release() { <-l.tokens }

// Cap returns the token capacity.
func (l *Limiter) Cap() int { return cap(l.tokens) }

var defaultLimiter = NewLimiter(runtime.GOMAXPROCS(0))

// Default returns the process-wide Limiter, sized to GOMAXPROCS so an
// operator-configured parallelism cap is respected. All engine and
// ForEach calls that don't supply their own Limiter share it, so
// independently started parallel regions still respect one global
// concurrency bound.
func Default() *Limiter { return defaultLimiter }

// Job is one unit of batch work. Run receives a context for cancellation
// and the job's deterministically derived seed; it must be a pure
// function of (seed, its own inputs) for the engine's reproducibility
// guarantee to hold.
type Job[T any] struct {
	// Name labels the job in results and reports (e.g. "s349/K=12/L=64").
	Name string
	// Run executes the job. It is called at most once.
	Run func(ctx context.Context, seed int64) (T, error)
}

// Result is the outcome of one job.
type Result[T any] struct {
	Index int    // position of the job in the input slice
	Name  string // Job.Name
	// Seed is the engine-derived seed offered to Job.Run. It identifies
	// the run only when the job actually seeds from it; jobs with their
	// own deterministic derivation (e.g. core.Compress's historical
	// per-run seeds) ignore it and their callers omit Config.RootSeed.
	Seed int64
	// Value is Run's result. It may be non-zero alongside a non-nil Err
	// when the job returns a partial best-so-far value (e.g. an EA run
	// interrupted by cancellation).
	Value T
	Err   error // Run's error, or ctx.Err() for jobs skipped on cancel
}

// Config tunes an engine run.
type Config struct {
	// Workers bounds job-level parallelism. <= 0 means the GOMAXPROCS
	// default; it is always clamped to len(jobs).
	Workers int
	// RootSeed is the root of the per-job seed derivation.
	RootSeed int64
	// Limiter is the shared concurrency bound helper workers draw from;
	// nil means Default(). The first worker never needs a token, so a
	// saturated limiter degrades to serial execution, never to deadlock.
	Limiter *Limiter
	// FailFast stops dispatching new jobs once any job returns an error;
	// skipped jobs complete immediately with Err = ErrAborted. Which
	// trailing jobs get aborted depends on scheduling, so FailFast
	// trades the worker-count-independent result slice for not wasting
	// compute after a failure — Run (whose callers discard results on
	// error) always sets it; use Stream directly for run-to-completion
	// semantics.
	FailFast bool
}

func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c Config) limiter() *Limiter {
	if c.Limiter != nil {
		return c.Limiter
	}
	return Default()
}

// runIndexed drains indices [0, n) across the calling goroutine plus up
// to workers-1 helpers and returns when every index has been processed.
// Each worker re-attempts token acquisition before every index it
// processes, so a batch that starts under a saturated limiter picks up
// parallelism as tokens free, instead of staying serial for its whole
// lifetime. The caller never needs a token (progress guarantee), and
// TryAcquire never blocks, so nesting cannot deadlock.
func runIndexed(lim *Limiter, n, workers int, body func(i int)) {
	var next atomic.Int64
	var active atomic.Int64 // live helper goroutines
	var wg sync.WaitGroup
	var loop func()
	// spawn adds one helper when under the worker budget, there is still
	// unclaimed work, and a limiter token is free. It is called by every
	// worker before each index, which both ramps the pool up at start
	// and tops it back up when tokens are released mid-batch.
	spawn := func() {
		for {
			h := active.Load()
			if int(h) >= workers-1 || int(next.Load()) >= n {
				return
			}
			if !active.CompareAndSwap(h, h+1) {
				continue
			}
			if !lim.TryAcquire() {
				active.Add(-1)
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer lim.Release()
				defer active.Add(-1)
				loop()
			}()
			return
		}
	}
	loop = func() {
		for {
			spawn()
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			body(i)
		}
	}
	loop()
	wg.Wait()
}

// Stream executes jobs on the pool and returns a channel delivering one
// Result per job in completion order. The channel is buffered to
// len(jobs) and closed when all jobs are accounted for, so consumers may
// drain lazily. When ctx is cancelled, jobs not yet started complete
// immediately with Err = ctx.Err(); under Config.FailFast, jobs
// dispatched after another job's failure complete with Err = ErrAborted.
func Stream[T any](ctx context.Context, cfg Config, jobs []Job[T]) <-chan Result[T] {
	out := make(chan Result[T], len(jobs))
	if len(jobs) == 0 {
		close(out)
		return out
	}
	workers := cfg.workers(len(jobs))
	lim := cfg.limiter()

	var failed atomic.Bool
	go func() {
		runIndexed(lim, len(jobs), workers, func(i int) {
			res := Result[T]{Index: i, Name: jobs[i].Name, Seed: Seed(cfg.RootSeed, i)}
			if err := ctx.Err(); err != nil {
				res.Err = err
			} else if cfg.FailFast && failed.Load() {
				res.Err = ErrAborted
			} else {
				// safeRun contains job panics: a panicking Run becomes a
				// *PanicError on this result instead of tearing down the
				// process hosting every other request.
				res.Value, res.Err = safeRun(func() (T, error) { return jobs[i].Run(ctx, res.Seed) })
				if res.Err != nil {
					failed.Store(true)
				}
			}
			out <- res
		})
		close(out)
	}()
	return out
}

// Collect drains a Stream channel and returns the results sorted by job
// index — the canonical reproducible aggregation.
func Collect[T any](ch <-chan Result[T]) []Result[T] {
	var results []Result[T]
	for r := range ch {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	return results
}

// Run executes jobs and returns index-sorted results plus the
// lowest-index error (nil if every job succeeded). The result slice
// always has len(jobs) entries, also under cancellation and errors, so a
// report built from it has a deterministic shape. Run is fail-fast —
// like the serial loops it replaces, it stops dispatching new jobs after
// the first failure rather than burning hours on a doomed batch — and
// the returned error is always a real job error, never ErrAborted.
func Run[T any](ctx context.Context, cfg Config, jobs []Job[T]) ([]Result[T], error) {
	cfg.FailFast = true
	results := Collect(Stream(ctx, cfg, jobs))
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}

// Values extracts the Value of every result, in index order, assuming Run
// returned without error.
func Values[T any](results []Result[T]) []T {
	vals := make([]T, len(results))
	for i, r := range results {
		vals[i] = r.Value
	}
	return vals
}

// ForEach runs fn(i) for every i in [0, n) using the calling goroutine
// plus up to workers-1 helpers gated on lim (nil = Default()). Indices
// are handed out atomically; fn must write only to index-disjoint state,
// which makes the aggregate effect independent of the worker count.
// workers <= 0 selects runtime.GOMAXPROCS(0) and is clamped to n. When
// ctx is cancelled, remaining indices are skipped and ctx.Err() is
// returned; fn calls already in flight complete. A panicking fn is
// recovered on its worker goroutine: remaining indices still run, and
// the first panic is returned as a *PanicError (wrapping ErrPanic)
// instead of crashing the process.
func ForEach(ctx context.Context, lim *Limiter, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if lim == nil {
		lim = Default()
	}
	// Export-only region span (WithoutStage: the EA calls ForEach once
	// per generation, and a stage per generation would bloat the
	// request-completion log line).
	_, sp := obs.StartSpan(ctx, "parallel region", obs.WithoutStage())
	defer sp.End()
	sp.SetAttrs(obs.Int("tasks", int64(n)), obs.Int("workers", int64(workers)))
	var panicked atomic.Pointer[PanicError]
	runIndexed(lim, n, workers, func(i int) {
		if ctx.Err() != nil {
			return
		}
		if _, err := safeRun(func() (struct{}, error) { fn(i); return struct{}{}, nil }); err != nil {
			var pe *PanicError
			if errors.As(err, &pe) {
				panicked.CompareAndSwap(nil, pe)
			}
		}
	})
	if pe := panicked.Load(); pe != nil {
		sp.SetError(pe)
		return pe
	}
	sp.SetError(ctx.Err())
	return ctx.Err()
}
