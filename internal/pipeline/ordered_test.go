package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestOrderedDelivery pins the core invariant: results reach the sink in
// submission order with engine-derived seeds, whatever the worker count
// or per-job latency.
func TestOrderedDelivery(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []Result[int]
			o := NewOrdered(context.Background(), Config{Workers: workers, RootSeed: 99},
				func(r Result[int]) error {
					got = append(got, r)
					return nil
				})
			const n = 50
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < n; i++ {
				i := i
				delay := time.Duration(rng.Intn(300)) * time.Microsecond
				if err := o.Submit(fmt.Sprintf("job %d", i), func(ctx context.Context, seed int64) (int, error) {
					time.Sleep(delay)
					return i * 10, nil
				}); err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
			}
			if err := o.Close(); err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("delivered %d results, want %d", len(got), n)
			}
			for i, r := range got {
				if r.Index != i || r.Value != i*10 {
					t.Fatalf("result %d out of order: %+v", i, r)
				}
				if r.Seed != Seed(99, i) {
					t.Fatalf("result %d has seed %d, want engine derivation %d", i, r.Seed, Seed(99, i))
				}
			}
		})
	}
}

// TestOrderedJobError checks that a failing job surfaces from Submit
// (eventually) and Close, and that delivery stops at the failing index:
// results past it are dropped, exactly like the batch engine's FailFast.
func TestOrderedJobError(t *testing.T) {
	boom := errors.New("boom")
	var delivered atomic.Int64
	o := NewOrdered(context.Background(), Config{Workers: 2},
		func(r Result[int]) error {
			if r.Err != nil {
				return r.Err
			}
			delivered.Add(1)
			return nil
		})
	for i := 0; i < 100; i++ {
		i := i
		err := o.Submit("job", func(ctx context.Context, seed int64) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
		if err != nil {
			break
		}
	}
	if err := o.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close returned %v, want boom", err)
	}
	if delivered.Load() != 3 {
		t.Fatalf("delivered %d successful results, want exactly 3 (indices 0..2)", delivered.Load())
	}
}

// TestOrderedSinkError checks that a sink failure propagates and stops
// further delivery.
func TestOrderedSinkError(t *testing.T) {
	bad := errors.New("sink full")
	calls := 0
	o := NewOrdered(context.Background(), Config{Workers: 4},
		func(r Result[int]) error {
			calls++
			if r.Index == 2 {
				return bad
			}
			if r.Index > 2 {
				t.Fatalf("sink called for index %d after failing at 2", r.Index)
			}
			return nil
		})
	for i := 0; i < 20; i++ {
		if err := o.Submit("job", func(ctx context.Context, seed int64) (int, error) {
			return 0, nil
		}); err != nil {
			break
		}
	}
	if err := o.Close(); !errors.Is(err, bad) {
		t.Fatalf("Close returned %v, want sink error", err)
	}
	if calls < 3 {
		t.Fatalf("sink called %d times, want at least 3", calls)
	}
}

// TestOrderedCancellation checks that context cancellation unblocks the
// producer and surfaces from Close.
func TestOrderedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	o := NewOrdered(ctx, Config{Workers: 2}, func(r Result[int]) error {
		if r.Err != nil {
			return r.Err
		}
		return nil
	})
	cancel()
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = o.Submit("job", func(ctx context.Context, seed int64) (int, error) {
			<-ctx.Done()
			return 0, ctx.Err()
		})
	}
	if cerr := o.Close(); cerr == nil {
		t.Fatal("Close returned nil after cancellation")
	}
}

// TestOrderedSubmitAfterClose pins the misuse error.
func TestOrderedSubmitAfterClose(t *testing.T) {
	o := NewOrdered(context.Background(), Config{Workers: 1}, func(Result[int]) error { return nil })
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if err := o.Submit("late", func(ctx context.Context, seed int64) (int, error) { return 0, nil }); err == nil {
		t.Fatal("Submit after Close accepted")
	}
	if err := o.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
}
