package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSeedDependsOnlyOnRootAndIndex(t *testing.T) {
	if Seed(1, 0) != Seed(1, 0) {
		t.Fatal("Seed is not a pure function")
	}
	seen := map[int64]string{}
	for root := int64(0); root < 4; root++ {
		for idx := 0; idx < 64; idx++ {
			s := Seed(root, idx)
			key := fmt.Sprintf("root=%d idx=%d", root, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both give %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

// jobSet builds n jobs whose value is a function of the derived seed
// only, so any scheduling nondeterminism would show up as a value change.
func jobSet(n int) []Job[uint64] {
	jobs := make([]Job[uint64], n)
	for i := range jobs {
		jobs[i] = Job[uint64]{
			Name: fmt.Sprintf("job%d", i),
			Run: func(_ context.Context, seed int64) (uint64, error) {
				r := rand.New(rand.NewSource(seed))
				v := uint64(0)
				for k := 0; k < 100; k++ {
					v = v*31 + uint64(r.Intn(1000))
				}
				return v, nil
			},
		}
	}
	return jobs
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := jobSet(50)
	serial, err := Run(context.Background(), Config{Workers: 1, RootSeed: 42}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(context.Background(), Config{Workers: workers, RootSeed: 42}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("results with %d workers differ from serial run", workers)
		}
	}
}

func TestRunRootSeedChangesResults(t *testing.T) {
	jobs := jobSet(8)
	a, _ := Run(context.Background(), Config{RootSeed: 1}, jobs)
	b, _ := Run(context.Background(), Config{RootSeed: 2}, jobs)
	if reflect.DeepEqual(Values(a), Values(b)) {
		t.Fatal("different root seeds produced identical values")
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	jobs := []Job[int]{
		{Name: "ok", Run: func(context.Context, int64) (int, error) { return 1, nil }},
		{Name: "low", Run: func(context.Context, int64) (int, error) { return 0, errLow }},
		{Name: "high", Run: func(context.Context, int64) (int, error) { return 0, errHigh }},
	}
	results, err := Run(context.Background(), Config{Workers: 3}, jobs)
	if !errors.Is(err, errLow) {
		t.Fatalf("want lowest-index error %v, got %v", errLow, err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("want %d results even with errors, got %d", len(jobs), len(results))
	}
	if results[0].Err != nil || results[0].Value != 1 {
		t.Fatalf("successful job not reported: %+v", results[0])
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	jobs := make([]Job[int], 100)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func(ctx context.Context, _ int64) (int, error) {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return 0, ctx.Err()
		}}
	}
	go func() {
		<-started
		cancel()
	}()
	results, err := Run(ctx, Config{Workers: 2}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("cancelled run must still report all %d jobs, got %d", len(jobs), len(results))
	}
	skipped := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatal("expected at least one job to observe cancellation")
	}
}

func TestRunFailFastAbortsTrailingJobs(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := make([]Job[int], 50)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(context.Context, int64) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, boom
			}
			return i, nil
		}}
	}
	results, err := Run(context.Background(), Config{Workers: 1}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("want real job error, got %v", err)
	}
	if n := ran.Load(); n != 1 {
		t.Fatalf("fail-fast serial run executed %d jobs, want 1", n)
	}
	aborted := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, ErrAborted) {
			aborted++
		}
	}
	if aborted != len(jobs)-1 {
		t.Fatalf("%d trailing jobs aborted, want %d", aborted, len(jobs)-1)
	}
}

func TestStreamWithoutFailFastRunsEverything(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(context.Context, int64) (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		}}
	}
	results := Collect(Stream(context.Background(), Config{Workers: 2}, jobs))
	if n := ran.Load(); int(n) != len(jobs) {
		t.Fatalf("stream ran %d jobs, want all %d", n, len(jobs))
	}
	if !errors.Is(results[3].Err, boom) {
		t.Fatalf("failing job's error lost: %v", results[3].Err)
	}
}

// TestPoolPicksUpFreedTokens asserts a batch started under a saturated
// limiter gains parallelism once tokens free up mid-batch, instead of
// staying serial for its whole lifetime.
func TestPoolPicksUpFreedTokens(t *testing.T) {
	lim := NewLimiter(1)
	if !lim.TryAcquire() {
		t.Fatal("setup")
	}
	release := make(chan struct{})
	go func() {
		<-release
		lim.Release() // frees the only token while the batch is running
	}()
	var maxConcurrent, cur atomic.Int32
	jobs := make([]Job[int], 200)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(context.Context, int64) (int, error) {
			if i == 10 {
				close(release)
			}
			c := cur.Add(1)
			defer cur.Add(-1)
			for {
				m := maxConcurrent.Load()
				if c <= m || maxConcurrent.CompareAndSwap(m, c) {
					break
				}
			}
			for k := 0; k < 10000; k++ {
				_ = k * k
			}
			return i, nil
		}}
	}
	if _, err := Run(context.Background(), Config{Workers: 4, Limiter: lim}, jobs); err != nil {
		t.Fatal(err)
	}
	if runtime.NumCPU() > 1 && maxConcurrent.Load() < 2 {
		t.Fatal("pool never re-acquired the freed limiter token")
	}
}

func TestStreamEmptyJobList(t *testing.T) {
	results, err := Run[int](context.Background(), Config{}, nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty job list: results=%v err=%v", results, err)
	}
}

func TestResultsCarryDerivedSeeds(t *testing.T) {
	jobs := jobSet(5)
	results, err := Run(context.Background(), Config{RootSeed: 7}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("results not index-sorted: pos %d has index %d", i, r.Index)
		}
		if r.Seed != Seed(7, i) {
			t.Fatalf("job %d got seed %d, want %d", i, r.Seed, Seed(7, i))
		}
		if r.Name != fmt.Sprintf("job%d", i) {
			t.Fatalf("job %d name %q", i, r.Name)
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 500
		counts := make([]int32, n)
		err := ForEach(context.Background(), NewLimiter(8), n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	err := ForEach(ctx, nil, 1000, 2, func(i int) {
		if done.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := done.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the loop early (ran %d)", n)
	}
}

// TestNestedForEachNoDeadlock exercises the oversubscription guard: an
// outer parallel region whose body starts an inner parallel region on the
// same, deliberately tiny, limiter. TryAcquire semantics mean the inner
// regions degrade to inline execution instead of deadlocking.
func TestNestedForEachNoDeadlock(t *testing.T) {
	lim := NewLimiter(2)
	var total atomic.Int32
	err := ForEach(context.Background(), lim, 8, 8, func(i int) {
		inner := ForEach(context.Background(), lim, 50, 8, func(j int) {
			total.Add(1)
		})
		if inner != nil {
			t.Error(inner)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8*50 {
		t.Fatalf("nested loops ran %d body calls, want %d", total.Load(), 8*50)
	}
}

// TestNestedEngineRuns composes the engine with itself through one shared
// limiter: outer jobs each run an inner batch. Everything must complete
// and stay deterministic.
func TestNestedEngineRuns(t *testing.T) {
	lim := NewLimiter(3)
	outer := make([]Job[[]uint64], 6)
	for i := range outer {
		outer[i] = Job[[]uint64]{
			Name: fmt.Sprintf("outer%d", i),
			Run: func(ctx context.Context, seed int64) ([]uint64, error) {
				inner, err := Run(ctx, Config{RootSeed: seed, Limiter: lim}, jobSet(10))
				if err != nil {
					return nil, err
				}
				return Values(inner), nil
			},
		}
	}
	a, err := Run(context.Background(), Config{Workers: 6, RootSeed: 5, Limiter: lim}, outer)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Config{Workers: 1, RootSeed: 5, Limiter: lim}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("nested engine runs not deterministic across worker counts")
	}
}

func TestLimiterBounds(t *testing.T) {
	lim := NewLimiter(2)
	if lim.Cap() != 2 {
		t.Fatalf("cap = %d", lim.Cap())
	}
	if !lim.TryAcquire() || !lim.TryAcquire() {
		t.Fatal("fresh limiter refused tokens")
	}
	if lim.TryAcquire() {
		t.Fatal("limiter exceeded capacity")
	}
	lim.Release()
	if !lim.TryAcquire() {
		t.Fatal("released token not reusable")
	}
	if NewLimiter(0).Cap() != 1 {
		t.Fatal("limiter capacity must clamp to >= 1")
	}
}

func BenchmarkEngineOverhead(b *testing.B) {
	jobs := make([]Job[int], 256)
	for i := range jobs {
		jobs[i] = Job[int]{Run: func(context.Context, int64) (int, error) { return 0, nil }}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
