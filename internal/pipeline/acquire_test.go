package pipeline

import (
	"context"
	"testing"
	"time"
)

// TestLimiterAcquire pins the blocking admission-control API: Acquire
// takes a free token immediately, waits for a busy one, and honors
// context cancellation while queued.
func TestLimiterAcquire(t *testing.T) {
	lim := NewLimiter(1)
	ctx := context.Background()
	if err := lim.Acquire(ctx); err != nil {
		t.Fatalf("Acquire with free token: %v", err)
	}

	// A second Acquire must block until the first Release.
	got := make(chan error, 1)
	go func() { got <- lim.Acquire(ctx) }()
	select {
	case err := <-got:
		t.Fatalf("Acquire returned %v while the token was held", err)
	case <-time.After(20 * time.Millisecond):
	}
	lim.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("Acquire after Release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Release")
	}

	// Cancellation unblocks a queued Acquire with ctx.Err().
	cctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- lim.Acquire(cctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-queued:
		if err != context.Canceled {
			t.Fatalf("cancelled Acquire returned %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Acquire did not return")
	}

	// The token taken above is still held exactly once: TryAcquire
	// fails, one Release frees it.
	if lim.TryAcquire() {
		t.Fatal("TryAcquire succeeded while Acquire's token is held")
	}
	lim.Release()
	if !lim.TryAcquire() {
		t.Fatal("token lost after Acquire/Release cycle")
	}
	lim.Release()
}
