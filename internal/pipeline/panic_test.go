package pipeline

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestStreamContainsJobPanic pins the crash-containment contract: a job
// that panics on a worker goroutine becomes a job error carrying the
// panic value and stack — the process (and the other jobs) survive.
func TestStreamContainsJobPanic(t *testing.T) {
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Name: "job", Run: func(ctx context.Context, seed int64) (int, error) {
			if i == 3 {
				panic("poisoned input")
			}
			return i, nil
		}}
	}
	results := Collect(Stream(context.Background(), Config{Workers: 4}, jobs))
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for _, r := range results {
		if r.Index == 3 {
			if !errors.Is(r.Err, ErrPanic) {
				t.Fatalf("panicked job err=%v, want ErrPanic", r.Err)
			}
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("panicked job err=%T, want *PanicError", r.Err)
			}
			if pe.Value != "poisoned input" {
				t.Fatalf("panic value %v", pe.Value)
			}
			if !bytes.Contains(pe.Stack, []byte("goroutine")) {
				t.Fatalf("stack not captured: %q", pe.Stack)
			}
		} else if r.Err != nil {
			t.Fatalf("job %d err=%v, want nil", r.Index, r.Err)
		}
	}
}

// TestRunSurfacesPanicAsError checks the fail-fast path: Run reports the
// panic like any other job error.
func TestRunSurfacesPanicAsError(t *testing.T) {
	jobs := []Job[int]{{Name: "boom", Run: func(ctx context.Context, seed int64) (int, error) {
		panic(42)
	}}}
	_, err := Run(context.Background(), Config{}, jobs)
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err=%v, want ErrPanic", err)
	}
}

// TestOrderedContainsJobPanic: the incremental executor delivers a
// panicking job's slot with a *PanicError and keeps the sticky error so
// the producer stops pumping a doomed stream.
func TestOrderedContainsJobPanic(t *testing.T) {
	var delivered atomic.Int64
	var panicErr error
	o := NewOrdered(context.Background(), Config{Workers: 2}, func(r Result[int]) error {
		delivered.Add(1)
		if r.Err != nil {
			panicErr = r.Err
		}
		return nil
	})
	for i := 0; i < 4; i++ {
		i := i
		err := o.Submit("job", func(ctx context.Context, seed int64) (int, error) {
			if i == 1 {
				panic("mid-stream corruption")
			}
			return i, nil
		})
		if err != nil {
			break // sticky panic error surfaced early: acceptable
		}
	}
	if err := o.Close(); !errors.Is(err, ErrPanic) {
		t.Fatalf("Close err=%v, want ErrPanic", err)
	}
	if panicErr != nil && !errors.Is(panicErr, ErrPanic) {
		t.Fatalf("delivered err=%v, want ErrPanic", panicErr)
	}
}

// TestForEachContainsPanic: a panicking fn is recovered, the remaining
// indices still run, and the first panic comes back as the error.
func TestForEachContainsPanic(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), nil, 16, 4, func(i int) {
		ran.Add(1)
		if i == 5 {
			panic("fitness function bug")
		}
	})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err=%v, want ErrPanic", err)
	}
	if got := ran.Load(); got != 16 {
		t.Fatalf("ran %d of 16 indices; a panic must not abort the batch", got)
	}
}
