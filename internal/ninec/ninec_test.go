package ninec

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestMVsK6(t *testing.T) {
	set, err := MVs(6)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the nine vectors from the paper's introduction, in order.
	want := []string{
		"000000", "111111", "000111", "111000",
		"111UUU", "UUU111", "000UUU", "UUU000", "UUUUUU",
	}
	if len(set.MVs) != 9 {
		t.Fatalf("len=%d", len(set.MVs))
	}
	for i, w := range want {
		if got := set.MVs[i].StringU(); got != w {
			t.Errorf("v(%d) = %s want %s", i+1, got, w)
		}
	}
}

func TestMVsRejectsOddK(t *testing.T) {
	for _, k := range []int{0, -2, 3, 7} {
		if _, err := MVs(k); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
}

func TestFixedCodePrefixFree(t *testing.T) {
	c := FixedCode()
	if !c.IsPrefixFree() {
		t.Fatal("fixed 9C code must be prefix free")
	}
	wantWords := []string{"0", "10", "11000", "11001", "11010", "11011", "11100", "11101", "1111"}
	for i, w := range wantWords {
		if got := c.WordString(i); got != w {
			t.Errorf("C(v%d) = %q want %q", i+1, got, w)
		}
	}
}

func TestPaperIntroductionEncodings(t *testing.T) {
	// From the paper: with K=6, input block 111100 is coded C(v5)100 and
	// 111011 as C(v5)011; 111000 can be coded C(v4) (shortest).
	set, _ := MVs(6)
	code := FixedCode()
	blocks := []tritvec.Vector{
		tritvec.MustFromString("111100"),
		tritvec.MustFromString("111011"),
		tritvec.MustFromString("111000"),
	}
	cov := set.CoverByEncoding(blocks, code.Lengths)
	if cov.Assign[0] != 4 { // v5 = 111UUU
		t.Errorf("111100 covered by v%d, want v5", cov.Assign[0]+1)
	}
	if cov.Assign[1] != 4 {
		t.Errorf("111011 covered by v%d, want v5", cov.Assign[1]+1)
	}
	if cov.Assign[2] != 3 { // v4 = 111000, 5-bit codeword, no fills
		t.Errorf("111000 covered by v%d, want v4", cov.Assign[2]+1)
	}
	// Encoding lengths: C(v5)+3 fills = 8 bits; C(v4) = 5 bits.
	if got := code.Lengths[4] + set.MVs[4].CountX(); got != 8 {
		t.Errorf("C(ib,v5) length=%d want 8", got)
	}
	if got := code.Lengths[3] + set.MVs[3].CountX(); got != 5 {
		t.Errorf("C(ib,v4) length=%d want 5", got)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ts := testset.Random(16, 50, 0.25, r)
	res, err := Compress(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	blocks := blockcode.Partition(ts, 8)
	dec, err := blockcode.Decode(bitstream.FromWriter(res.Stream), res.Set, res.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
}

func TestCompressHCAtLeastAsGoodOnAverageInputs(t *testing.T) {
	// Huffman codewords adapt to frequencies; with a strongly skewed
	// block distribution 9C+HC must beat plain 9C (matching the paper's
	// uniform improvement from column 9C to 9C+HC).
	r := rand.New(rand.NewSource(10))
	ts := testset.New(16)
	for i := 0; i < 200; i++ {
		// Mostly all-zero patterns, occasionally random.
		p := tritvec.New(16)
		if r.Intn(10) == 0 {
			p.FillRandom(r)
		} else {
			p = tritvec.MustFromString("0000000000000000")
		}
		ts.Add(p)
	}
	plain, err := Compress(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := CompressHC(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hc.RatePercent() < plain.RatePercent()-1e-9 {
		t.Fatalf("9C+HC (%.2f%%) worse than 9C (%.2f%%) on skewed input",
			hc.RatePercent(), plain.RatePercent())
	}
}

func TestCompressAllXInput(t *testing.T) {
	// An all-X test set is maximally compressible: every block matches
	// v1 (all zeros fill) — rate must be strongly positive.
	ts := testset.New(8)
	for i := 0; i < 10; i++ {
		ts.Add(tritvec.New(8))
	}
	res, err := Compress(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatePercent() < 80 {
		t.Fatalf("all-X rate = %.1f%%, expected ~87.5%%", res.RatePercent())
	}
}

func TestCompressRejectsOddK(t *testing.T) {
	ts, _ := testset.ParseStrings("010101")
	if _, err := Compress(ts, 3); err == nil {
		t.Fatal("odd K accepted")
	}
	if _, err := CompressHC(ts, 3); err == nil {
		t.Fatal("odd K accepted by HC")
	}
}
