// Package ninec reimplements the nine-coded compression technique of
// Tehranipour, Nourani and Chakrabarty (DATE 2004), the baseline the paper
// compares against. For an even block length K with half h = K/2, the nine
// matching vectors are
//
//	v1 = 0^K    v2 = 1^K    v3 = 0^h 1^h  v4 = 1^h 0^h
//	v5 = 1^h U^h  v6 = U^h 1^h  v7 = 0^h U^h  v8 = U^h 0^h  v9 = U^K
//
// with the fixed prefix codewords quoted in the paper:
//
//	C(v1)='0' C(v2)='10' C(v3)='11000' C(v4)='11001' C(v5)='11010'
//	C(v6)='11011' C(v7)='11100' C(v8)='11101' C(v9)='1111'
//
// The 9C+HC variant keeps the nine MVs but replaces the fixed codewords
// with a Huffman code over observed frequencies (column '9C+HC' in the
// paper's tables).
package ninec

import (
	"fmt"

	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// MVs returns the nine matching vectors for even block length k.
func MVs(k int) (*blockcode.MVSet, error) {
	if k <= 0 || k%2 != 0 {
		return nil, fmt.Errorf("ninec: K must be positive and even, got %d", k)
	}
	h := k / 2
	mk := func(first, second tritvec.Trit) tritvec.Vector {
		v := tritvec.New(k)
		for i := 0; i < h; i++ {
			v.Set(i, first)
			v.Set(h+i, second)
		}
		return v
	}
	mvs := []tritvec.Vector{
		mk(tritvec.Zero, tritvec.Zero), // v1
		mk(tritvec.One, tritvec.One),   // v2
		mk(tritvec.Zero, tritvec.One),  // v3
		mk(tritvec.One, tritvec.Zero),  // v4
		mk(tritvec.One, tritvec.X),     // v5
		mk(tritvec.X, tritvec.One),     // v6
		mk(tritvec.Zero, tritvec.X),    // v7
		mk(tritvec.X, tritvec.Zero),    // v8
		mk(tritvec.X, tritvec.X),       // v9
	}
	return blockcode.NewMVSet(k, mvs)
}

// FixedCode returns the paper's fixed 9C codeword table.
func FixedCode() *huffman.Code {
	lengths := []int{1, 2, 5, 5, 5, 5, 5, 5, 4}
	words := []uint64{
		0b0,     // v1 '0'
		0b10,    // v2 '10'
		0b11000, // v3
		0b11001, // v4
		0b11010, // v5
		0b11011, // v6
		0b11100, // v7
		0b11101, // v8
		0b1111,  // v9
	}
	c, err := huffman.Explicit(lengths, words)
	if err != nil {
		panic("ninec: fixed code invalid: " + err.Error())
	}
	return c
}

// Compress runs original 9C compression (fixed codewords). Blocks are
// assigned to the matching MV with minimal total encoding length
// |C(v)|+NU(v), which is how the fixed-code scheme is used to best effect.
func Compress(ts *testset.TestSet, k int) (*blockcode.Result, error) {
	set, err := MVs(k)
	if err != nil {
		return nil, err
	}
	code := FixedCode()
	blocks := blockcode.Partition(ts, k)
	cov := set.CoverByEncoding(blocks, code.Lengths)
	if !cov.OK() {
		return nil, fmt.Errorf("ninec: uncovered blocks (impossible: v9 is all-U)")
	}
	res := &blockcode.Result{
		Set:            set,
		Code:           code,
		Covering:       cov,
		OriginalBits:   ts.TotalBits(),
		CompressedBits: set.CompressedBits(cov, code.Lengths),
	}
	if _, err := blockcode.Encode(blocks, res); err != nil {
		return nil, err
	}
	return res, nil
}

// CompressHC runs the 9C+HC variant: nine MVs, min-U covering, Huffman
// codewords from observed frequencies.
func CompressHC(ts *testset.TestSet, k int) (*blockcode.Result, error) {
	set, err := MVs(k)
	if err != nil {
		return nil, err
	}
	return blockcode.CompressHuffman(ts, set)
}
