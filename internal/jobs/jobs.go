// Package jobs turns the engine's synchronous compress/decompress calls
// into durable background work: a Manager accepts job specs over a
// bounded queue, runs them on a pipeline.Ordered worker pool under the
// daemon's shared Limiter (jobs and interactive requests draw from one
// worker budget), and journals every state transition to disk so a
// daemon restart recovers the queue — finished outputs stay fetchable
// from the artifact store until GC, unfinished work is re-queued and
// runs again.
//
// The job state machine:
//
//	pending ──▶ running ──▶ done
//	   │           ├──────▶ failed     (error + taxonomy code)
//	   └───────────┴──────▶ cancelled  (user cancel)
//
// A daemon shutdown is not a transition: running jobs are parked back to
// pending in the journal and resume from scratch on the next start —
// sound because compression is a pure function of (input blob,
// parameters), so a re-run produces the identical output blob.
//
// Inputs and outputs live in a content-addressed artifact.Store and jobs
// reference them by digest only, so identical submissions share one
// input blob and identical results collapse to one output blob.
package jobs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	tcomp "repro"
	"repro/internal/artifact"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Kind names the work a job performs.
type Kind string

// The job kinds.
const (
	// KindCompress compresses a test-set blob (textual patterns or TSET
	// binary) into a container (v3 chunked by default, v2 on request).
	KindCompress Kind = "compress"
	// KindDecompress expands a container blob (v1/v2/v3 auto-detected)
	// into textual patterns.
	KindDecompress Kind = "decompress"
	// KindSweep streams one test-set blob through several codecs and
	// produces a JSON rate report instead of a container.
	KindSweep Kind = "sweep"
	// KindFlow runs the full hardware-test pipeline: circuit (submitted
	// .bench netlist or generated registry benchmark) → test generation →
	// codec advisor race → winner container + Verilog decoder. The job
	// output is the JSON flow report; the two binary artifacts are stored
	// alongside it and listed on the job record.
	KindFlow Kind = "flow"
)

// State is a job's position in the lifecycle.
type State string

// The job states.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is what a client submits: the kind of work, the codec parameters,
// and the content address of the input blob (already stored).
type Spec struct {
	Kind   Kind             `json:"kind"`
	Codec  string           `json:"codec,omitempty"`
	Format string           `json:"format,omitempty"` // compress: "v2" or "v3" (default)
	Codecs []string         `json:"codecs,omitempty"` // sweep/flow: the codecs to compare or race
	Params map[string]int64 `json:"params,omitempty"`
	Input  artifact.Digest  `json:"input"`

	// Flow-only fields. Benchmark selects a registry circuit to generate
	// (the input blob is ignored then); empty means the input blob is a
	// .bench netlist. Tests picks the generation kind ("stuck-at",
	// default, or "path-delay"); Sample overrides the advisor's race
	// prefix length.
	Benchmark string `json:"benchmark,omitempty"`
	Tests     string `json:"tests,omitempty"`
	Sample    int    `json:"sample,omitempty"`
}

// Progress reports how far a running job has come.
type Progress struct {
	Patterns int `json:"patterns"`
	Chunks   int `json:"chunks_completed"`
}

// Stats is the size accounting of a finished job, mirroring the
// X-Tcomp-* headers of the synchronous endpoints.
type Stats struct {
	Patterns       int `json:"patterns"`
	Chunks         int `json:"chunks"`
	OriginalBits   int `json:"original_bits"`
	CompressedBits int `json:"compressed_bits"`
}

// OutputArtifact is one named extra artifact of a finished job — flow
// jobs store the winner container and the Verilog decoder next to their
// JSON report output.
type OutputArtifact struct {
	Name   string          `json:"name"`
	Digest artifact.Digest `json:"digest"`
	Size   int64           `json:"size"`
}

// Job is one job record — the unit the journal persists and the API
// serves.
type Job struct {
	ID         string          `json:"id"`
	Spec       Spec            `json:"spec"`
	State      State           `json:"state"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started"`
	Finished   time.Time       `json:"finished"`
	Progress   Progress        `json:"progress"`
	Output     artifact.Digest `json:"output,omitempty"`
	OutputSize int64           `json:"output_size,omitempty"`
	Stats      *Stats          `json:"stats,omitempty"`
	// Artifacts lists a flow job's named extra outputs ("container",
	// "verilog"), journalled like Output so they survive a restart.
	Artifacts []OutputArtifact `json:"artifacts,omitempty"`
	Error     string           `json:"error,omitempty"`
	// ErrorCode carries the HTTP taxonomy code of a failed job (the code
	// the synchronous endpoint would have answered with), so an async
	// client can classify the failure exactly like a sync one.
	ErrorCode string `json:"error_code,omitempty"`
	// RequestID is the X-Request-Id of the HTTP request that submitted the
	// job, linking the async record back to the submitting request's
	// trace. Journalled, so the link survives a restart.
	RequestID string `json:"request_id,omitempty"`
	// TraceParent is the W3C trace context of the submitting request, so
	// the job's worker spans join the submitter's distributed trace.
	// Journalled: a job re-run after a daemon restart still exports its
	// spans under the original trace ID.
	TraceParent string `json:"traceparent,omitempty"`
}

// Sentinel errors of the Manager API.
var (
	// ErrNotFound: no job with that ID (never submitted, or removed).
	ErrNotFound = errors.New("jobs: job not found")
	// ErrQueueFull: the pending backlog is at MaxQueued; retry later.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrNotDone: the job has not produced a result (still pending or
	// running, or it failed / was cancelled).
	ErrNotDone = errors.New("jobs: job not done")
	// ErrActive: the operation needs a terminal job (Remove on a pending
	// or running job).
	ErrActive = errors.New("jobs: job still active")
	// ErrGone: the job finished but its result artifact has been
	// garbage-collected from the store.
	ErrGone = errors.New("jobs: result artifact no longer available")
	// ErrClosed: the manager is shutting down.
	ErrClosed = errors.New("jobs: manager closed")
)

// Config tunes a Manager.
type Config struct {
	// Store holds job inputs and outputs. Required.
	Store artifact.Store
	// Dir is the journal directory; every state transition is persisted
	// as <Dir>/<id>.json so jobs survive a restart. "" keeps jobs in
	// memory only (tests, ephemeral daemons).
	Dir string
	// Workers bounds concurrently running jobs. <= 0 means GOMAXPROCS.
	Workers int
	// MaxQueued bounds the pending backlog; Submit beyond it returns
	// ErrQueueFull. <= 0 means 64.
	MaxQueued int
	// Limiter is the worker budget jobs share with the rest of the
	// daemon: a job holds one token for its entire execution, exactly
	// like a synchronous request. Nil means the process-wide default.
	Limiter *pipeline.Limiter
	// ErrorCode classifies a failed job's error into the HTTP taxonomy.
	// Nil means the built-in classifier (contained panics are
	// internal_panic, bad decompress input is corrupt_container,
	// everything else is unprocessable).
	ErrorCode func(kind Kind, err error) string
	// Observe, when set, is called (without locks held) with a snapshot
	// after every state transition of a live job — the daemon's metrics
	// hook. Journal recovery does not replay old transitions.
	Observe func(j Job)
	// FlowObserve, when set, receives each flow stage's wall-clock
	// duration while a flow job runs — the tcompd_flow_stage_seconds
	// hook. Called from worker goroutines; must be concurrency-safe.
	FlowObserve func(stage string, seconds float64)
	// FlowCoverage, when set, receives the coverage percent of every flow
	// job's completed test-generation stage — the
	// tcompd_flow_coverage_percent hook.
	FlowCoverage func(percent float64)
	// Logger receives job lifecycle and journal-failure logs. Nil means
	// slog.Default().
	Logger *slog.Logger
	// Tracer mints the per-job root span (joined to the submitting
	// request's trace via the journalled traceparent). Nil disables span
	// export; trace context still propagates through the job record.
	Tracer *obs.Tracer
}

// state is the Manager's record of one job.
type state struct {
	job       Job
	cancel    context.CancelFunc // set while running
	cancelled bool               // user asked for cancellation
}

// Manager owns the queue, the runners, and the journal.
type Manager struct {
	cfg  Config
	lim  *pipeline.Limiter
	log  *slog.Logger
	ctx  context.Context
	stop context.CancelFunc

	queue  chan string
	pumped chan struct{}
	ord    *pipeline.Ordered[struct{}]

	mu      sync.Mutex
	jobs    map[string]*state
	order   []string // creation order, for List
	closing bool
}

// NewManager loads the journal (if cfg.Dir is set), re-queues unfinished
// jobs, and starts the worker pool.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		return nil, errors.New("jobs: Config.Store is required")
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	if cfg.ErrorCode == nil {
		cfg.ErrorCode = defaultErrorCode
	}
	lim := cfg.Limiter
	if lim == nil {
		lim = pipeline.Default()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		lim:    lim,
		log:    logger,
		ctx:    ctx,
		stop:   stop,
		queue:  make(chan string, cfg.MaxQueued),
		pumped: make(chan struct{}),
		jobs:   map[string]*state{},
	}
	recovered, err := m.loadJournal()
	if err != nil {
		stop()
		return nil, err
	}
	// The pump is the Ordered producer (Submit/Close are single-goroutine
	// calls): it feeds recovered work first, then drains the queue until
	// shutdown. Runners never return errors to Ordered — a failed job is
	// a job record, not a pool failure — so the sink cannot trip.
	m.ord = pipeline.NewOrdered[struct{}](ctx, pipeline.Config{Workers: cfg.Workers},
		func(pipeline.Result[struct{}]) error { return nil })
	go m.pump(recovered)
	return m, nil
}

// pump feeds job IDs into the Ordered pool until shutdown.
func (m *Manager) pump(recovered []string) {
	defer close(m.pumped)
	defer func() { _ = m.ord.Close() }() // joins all runners; ctx is cancelled by then
	feed := func(id string) bool {
		err := m.ord.Submit("job "+id, func(ctx context.Context, _ int64) (struct{}, error) {
			m.run(ctx, id)
			return struct{}{}, nil
		})
		return err == nil
	}
	for _, id := range recovered {
		if !feed(id) {
			return
		}
	}
	for {
		select {
		case <-m.ctx.Done():
			return
		case id := <-m.queue:
			if !feed(id) {
				return
			}
		}
	}
}

// Close stops accepting work, cancels running jobs, waits for the
// runners to exit, and parks interrupted jobs back to pending in the
// journal so the next start resumes them. Idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return nil
	}
	m.closing = true
	m.mu.Unlock()
	m.stop()
	<-m.pumped
	return nil
}

// Submit validates the spec, journals the new pending job, and queues
// it. It returns ErrQueueFull when the backlog is at MaxQueued.
func (m *Manager) Submit(spec Spec) (Job, error) {
	return m.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying the submitting request's context: the
// context's request ID (if the obs middleware put one there) is stamped
// on the job record, linking the async job back to the HTTP request that
// created it. The context does not bound the job's execution — jobs
// outlive their submitting request by design.
func (m *Manager) SubmitCtx(ctx context.Context, spec Spec) (Job, error) {
	if err := m.validate(&spec); err != nil {
		return Job{}, err
	}
	j := Job{
		ID:          newID(),
		Spec:        spec,
		State:       StatePending,
		Created:     time.Now(),
		RequestID:   obs.RequestID(ctx),
		TraceParent: obs.TraceparentFromContext(ctx),
	}
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return Job{}, ErrClosed
	}
	select {
	case m.queue <- j.ID:
	default:
		m.mu.Unlock()
		return Job{}, fmt.Errorf("jobs: %d jobs already queued: %w", cap(m.queue), ErrQueueFull)
	}
	m.jobs[j.ID] = &state{job: j}
	m.order = append(m.order, j.ID)
	m.mu.Unlock()
	m.journal(j.ID)
	m.observe(j)
	return j, nil
}

// validate normalizes and checks a spec before it is accepted.
func (m *Manager) validate(spec *Spec) error {
	switch spec.Kind {
	case KindCompress:
		if _, err := tcomp.Lookup(spec.Codec); err != nil {
			return err
		}
		switch spec.Format {
		case "":
			spec.Format = "v3"
		case "v2", "v3":
		default:
			return fmt.Errorf("jobs: format %q must be v2 or v3", spec.Format)
		}
	case KindDecompress:
		if spec.Codec != "" || spec.Format != "" || len(spec.Params) > 0 {
			return errors.New("jobs: decompress takes no codec, format, or parameters (the container is self-describing)")
		}
	case KindSweep:
		if len(spec.Codecs) == 0 {
			return errors.New("jobs: sweep needs at least one codec")
		}
		for _, c := range spec.Codecs {
			if _, err := tcomp.Lookup(c); err != nil {
				return err
			}
		}
	case KindFlow:
		if spec.Codec != "" || spec.Format != "" {
			return errors.New("jobs: flow takes codecs (the advisor set), not codec or format")
		}
		for _, c := range spec.Codecs {
			if _, err := tcomp.Lookup(c); err != nil {
				return err
			}
		}
		switch spec.Tests {
		case "", tcomp.FlowStuckAt, tcomp.FlowPathDelay:
		default:
			return fmt.Errorf("jobs: tests %q must be %q or %q", spec.Tests, tcomp.FlowStuckAt, tcomp.FlowPathDelay)
		}
		if spec.Sample < 0 || spec.Sample > 1<<16 {
			return fmt.Errorf("jobs: sample %d out of range [0,%d]", spec.Sample, 1<<16)
		}
		if spec.Benchmark != "" {
			if err := tcomp.FindBenchmark(spec.Benchmark, spec.Tests); err != nil {
				return err
			}
		} else if spec.Input == "" {
			return fmt.Errorf("jobs: flow needs a benchmark name or a .bench netlist body: %w", tcomp.ErrInvalidCircuit)
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q", spec.Kind)
	}
	if _, err := optionsFromParams(spec.Params); err != nil {
		return err
	}
	if spec.Kind == KindFlow && spec.Benchmark != "" && spec.Input == "" {
		// A generated-benchmark flow has no input blob to check.
		return nil
	}
	if !spec.Input.Valid() {
		return fmt.Errorf("jobs: input %q is not a valid digest", spec.Input)
	}
	if _, err := m.cfg.Store.Stat(spec.Input); err != nil {
		return fmt.Errorf("jobs: input artifact: %w", err)
	}
	return nil
}

// optionsFromParams translates a params map into functional options via
// the shared tcomp table, enforcing the same ranges the synchronous
// validator does (journal-recovered specs get re-checked too). Keys are
// applied in canonical order so the option list is deterministic.
func optionsFromParams(params map[string]int64) ([]tcomp.Option, error) {
	if len(params) == 0 {
		return nil, nil
	}
	known := 0
	var opts []tcomp.Option
	for _, key := range tcomp.ParamKeys() {
		v, ok := params[key]
		if !ok {
			continue
		}
		known++
		// An explicit 0 means "codec default" throughout the API; any
		// other value must sit inside the shared range table.
		if r, bounded := tcomp.LookupParamRange(key); bounded && v != 0 && (v < r.Min || v > r.Max) {
			return nil, fmt.Errorf("jobs: parameter %s=%d out of range [%d,%d]", key, v, r.Min, r.Max)
		}
		opt, _ := tcomp.OptionForParam(key, v)
		opts = append(opts, opt)
	}
	if known != len(params) {
		for key := range params {
			if _, ok := tcomp.OptionForParam(key, 0); !ok {
				return nil, fmt.Errorf("jobs: unknown parameter %q", key)
			}
		}
	}
	return opts, nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	return st.job, nil
}

// List returns snapshots of all jobs in creation order.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for _, id := range m.order {
		if st, ok := m.jobs[id]; ok {
			out = append(out, st.job)
		}
	}
	return out
}

// Cancel stops a pending or running job. Cancelling a terminal job is a
// no-op (the race between completion and cancellation is inherent, so it
// is not an error).
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	var snap Job
	switch st.job.State {
	case StatePending:
		// Not running yet: transition directly; the runner skips any
		// queued ID whose state is no longer pending.
		st.cancelled = true
		st.job.State = StateCancelled
		st.job.Finished = time.Now()
		snap = st.job
	case StateRunning:
		st.cancelled = true
		if st.cancel != nil {
			st.cancel() // the runner records the cancelled transition
		}
	}
	m.mu.Unlock()
	if snap.ID != "" {
		m.journal(id)
		m.observe(snap)
	}
	return nil
}

// Remove deletes a terminal job's record and journal entry. The output
// artifact stays in the store (it may be shared by content address) and
// falls to GC. Active jobs return ErrActive — cancel first.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	if !st.job.State.Terminal() {
		m.mu.Unlock()
		return ErrActive
	}
	delete(m.jobs, id)
	for i, o := range m.order {
		if o == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	if m.cfg.Dir != "" {
		if err := os.Remove(m.journalPath(id)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("jobs: removing journal entry: %w", err)
		}
	}
	return nil
}

// OpenResult returns a reader over a done job's output artifact plus the
// job snapshot. ErrNotDone for unfinished/failed jobs, ErrGone when GC
// already collected the artifact.
func (m *Manager) OpenResult(id string) (rc io.ReadCloser, j Job, err error) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if ok {
		j = st.job
	}
	m.mu.Unlock()
	if !ok {
		return nil, Job{}, ErrNotFound
	}
	if j.State != StateDone {
		return nil, j, fmt.Errorf("jobs: job %s is %s: %w", id, j.State, ErrNotDone)
	}
	r, err := m.cfg.Store.Open(j.Output)
	if err != nil {
		if errors.Is(err, artifact.ErrNotFound) {
			return nil, j, fmt.Errorf("jobs: job %s: %w", id, ErrGone)
		}
		return nil, j, err
	}
	return r, j, nil
}

// OpenArtifact returns a reader over one of a done job's named extra
// artifacts (flow jobs: "container", "verilog") plus its record and the
// job snapshot. Unknown names answer ErrNotFound; a GC'd blob answers
// ErrGone.
func (m *Manager) OpenArtifact(id, name string) (rc io.ReadCloser, a OutputArtifact, j Job, err error) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if ok {
		j = st.job
	}
	m.mu.Unlock()
	if !ok {
		return nil, OutputArtifact{}, Job{}, ErrNotFound
	}
	if j.State != StateDone {
		return nil, OutputArtifact{}, j, fmt.Errorf("jobs: job %s is %s: %w", id, j.State, ErrNotDone)
	}
	for _, cand := range j.Artifacts {
		if cand.Name == name {
			a = cand
		}
	}
	if a.Name == "" {
		return nil, OutputArtifact{}, j, fmt.Errorf("jobs: job %s has no artifact %q: %w", id, name, ErrNotFound)
	}
	r, err := m.cfg.Store.Open(a.Digest)
	if err != nil {
		if errors.Is(err, artifact.ErrNotFound) {
			return nil, a, j, fmt.Errorf("jobs: job %s artifact %s: %w", id, name, ErrGone)
		}
		return nil, a, j, err
	}
	return r, a, j, nil
}

// run executes one queued job end to end. It never returns an error to
// the pool: failures become job-record state.
func (m *Manager) run(ctx context.Context, id string) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	if !ok || st.job.State != StatePending {
		m.mu.Unlock()
		return // cancelled (or removed) while queued
	}
	jctx, jcancel := context.WithCancel(ctx)
	st.cancel = jcancel
	st.job.State = StateRunning
	st.job.Started = time.Now()
	snap := st.job
	m.mu.Unlock()
	defer jcancel()
	m.journal(id)
	m.observe(snap)

	// The job's root span joins the submitting request's trace through
	// the journalled traceparent — including on a re-run after a daemon
	// restart, when the submitting process is long gone. Without a
	// traceparent the tracer mints a fresh trace for the job.
	var parentTC *obs.TraceContext
	if snap.TraceParent != "" {
		if tc, perr := obs.ParseTraceparent(snap.TraceParent); perr == nil {
			parentTC = &tc
		}
	}
	jctx, jobSpan := m.cfg.Tracer.StartRoot(jctx, "job "+string(snap.Spec.Kind), parentTC)
	jobSpan.SetAttrs(obs.String("job_id", id))
	if snap.RequestID != "" {
		jobSpan.SetAttrs(obs.String("request_id", snap.RequestID))
	}

	out, err := m.execute(jctx, id, snap)

	m.mu.Lock()
	st.cancel = nil
	switch {
	case err == nil:
		st.job.State = StateDone
		st.job.Output = out.digest
		st.job.OutputSize = out.size
		st.job.Stats = out.stats
		st.job.Artifacts = out.artifacts
		st.job.Progress = Progress{Patterns: out.stats.Patterns, Chunks: out.stats.Chunks}
	case st.cancelled:
		st.job.State = StateCancelled
		st.job.Error = "cancelled"
	case jctx.Err() != nil && m.closing:
		// Daemon shutdown, not failure: park the job for the next start.
		// Re-running from scratch is sound — output is a pure function of
		// (input, params) — and the journal write below makes it durable.
		st.job.State = StatePending
		st.job.Started = time.Time{}
		st.job.Progress = Progress{}
	default:
		st.job.State = StateFailed
		st.job.Error = err.Error()
		st.job.ErrorCode = m.cfg.ErrorCode(st.job.Spec.Kind, err)
	}
	if st.job.State != StatePending {
		st.job.Finished = time.Now()
	}
	snap = st.job
	m.mu.Unlock()
	jobSpan.SetAttrs(obs.String("state", string(snap.State)))
	if snap.State == StateFailed {
		jobSpan.SetError(err)
	}
	jobSpan.End()
	m.journal(id)
	if snap.State != StatePending {
		m.observe(snap)
	}
	attrs := []any{
		slog.String("job_id", id),
		slog.String("kind", string(snap.Spec.Kind)),
		slog.String("state", string(snap.State)),
	}
	if snap.RequestID != "" {
		attrs = append(attrs, slog.String("request_id", snap.RequestID))
	}
	if !snap.Finished.IsZero() {
		attrs = append(attrs, slog.Duration("duration", snap.Finished.Sub(snap.Started)))
	}
	switch snap.State {
	case StateFailed:
		attrs = append(attrs, slog.String("error", snap.Error), slog.String("error_code", snap.ErrorCode))
		m.log.Error("job finished", attrs...)
	case StatePending:
		// Shutdown parked the job; it re-runs on the next start.
		m.log.Info("job parked for restart", attrs...)
	default:
		m.log.Info("job finished", attrs...)
	}
}

// setProgress publishes a running job's progress; chunk boundaries also
// hit the journal so a restart shows how far the interrupted run came.
func (m *Manager) setProgress(id string, p Progress) {
	m.mu.Lock()
	st, ok := m.jobs[id]
	journalNow := false
	if ok && st.job.State == StateRunning {
		journalNow = p.Chunks > st.job.Progress.Chunks
		st.job.Progress = p
	}
	m.mu.Unlock()
	if journalNow {
		m.journal(id)
	}
}

// observe invokes the metrics hook with no locks held.
func (m *Manager) observe(j Job) {
	if m.cfg.Observe != nil {
		m.cfg.Observe(j)
	}
}

// defaultErrorCode is the built-in taxonomy classifier; it mirrors the
// synchronous endpoints' mapping (serve's own classifier adds nothing
// for jobs, whose inputs are already fully stored blobs).
func defaultErrorCode(kind Kind, err error) string {
	if errors.Is(err, pipeline.ErrPanic) {
		return "internal_panic"
	}
	if errors.Is(err, tcomp.ErrInvalidCircuit) {
		return "flow_invalid_circuit"
	}
	if kind == KindDecompress {
		return "corrupt_container"
	}
	return "unprocessable"
}

// ---- journal ----

func (m *Manager) journalPath(id string) string {
	return filepath.Join(m.cfg.Dir, id+".json")
}

// journal persists the job's current snapshot with an atomic
// tmp+rename, so a crash never leaves a torn record. Best-effort: a
// journal write failure is logged, not fatal — the in-memory state
// machine stays authoritative for this process's lifetime.
func (m *Manager) journal(id string) {
	if m.cfg.Dir == "" {
		return
	}
	m.mu.Lock()
	st, ok := m.jobs[id]
	var snap Job
	if ok {
		snap = st.job
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		m.log.Error("marshaling journal entry", slog.String("job_id", id), slog.Any("error", err))
		return
	}
	tmp := m.journalPath(id) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		m.log.Error("writing journal entry", slog.String("job_id", id), slog.Any("error", err))
		return
	}
	if err := os.Rename(tmp, m.journalPath(id)); err != nil {
		m.log.Error("publishing journal entry", slog.String("job_id", id), slog.Any("error", err))
	}
}

// loadJournal reads every job record from Dir and returns the IDs to
// re-queue (pending and interrupted-running jobs), oldest first.
func (m *Manager) loadJournal() ([]string, error) {
	if m.cfg.Dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(m.cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating journal dir: %w", err)
	}
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading journal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !validID(id) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(m.cfg.Dir, name))
		if err != nil {
			return nil, fmt.Errorf("jobs: reading journal entry %s: %w", name, err)
		}
		var j Job
		if err := json.Unmarshal(b, &j); err != nil {
			// A torn or foreign file: skip it rather than refuse to start.
			m.log.Warn("skipping unreadable journal entry", slog.String("entry", name), slog.Any("error", err))
			continue
		}
		if j.ID != id {
			m.log.Warn("skipping journal entry with mismatched ID", slog.String("entry", name), slog.String("id", j.ID))
			continue
		}
		if j.State == StateRunning || j.State == StatePending {
			// Interrupted (crash or shutdown): back to the start line.
			j.State = StatePending
			j.Started = time.Time{}
			j.Progress = Progress{}
		}
		m.jobs[id] = &state{job: j}
		m.order = append(m.order, id)
	}
	sort.Slice(m.order, func(a, b int) bool {
		ja, jb := m.jobs[m.order[a]].job, m.jobs[m.order[b]].job
		if !ja.Created.Equal(jb.Created) {
			return ja.Created.Before(jb.Created)
		}
		return ja.ID < jb.ID
	})
	var requeue []string
	for _, id := range m.order {
		if m.jobs[id].job.State == StatePending {
			m.journal(id) // persist the running→pending rewrite
			requeue = append(requeue, id)
		}
	}
	return requeue, nil
}

// newID returns a fresh 17-character job ID ("j" + 16 hex chars).
func newID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing means the OS entropy source is broken;
		// nothing better is available, and IDs only need uniqueness.
		panic(fmt.Sprintf("jobs: reading random ID bytes: %v", err))
	}
	return "j" + hex.EncodeToString(b[:])
}

// validID reports whether s looks like an ID newID produced — the guard
// that keeps journal loading and HTTP path segments from smuggling
// arbitrary file names.
func validID(s string) bool {
	if len(s) != 17 || s[0] != 'j' {
		return false
	}
	_, err := hex.DecodeString(s[1:])
	return err == nil
}
