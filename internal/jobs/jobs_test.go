package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	tcomp "repro"
	"repro/internal/artifact"
	"repro/internal/pipeline"
)

// gateCodec is a registry codec whose Compress blocks on a gate until
// released (or the context dies), then delegates to golomb. It gives the
// lifecycle tests a deterministic "job is mid-run right now" point.
type gateCodec struct {
	mu   sync.Mutex
	gate chan struct{}
}

func (g *gateCodec) Name() string { return "testgate" }

// block arms the gate: the next Compress calls wait until release.
func (g *gateCodec) block() {
	g.mu.Lock()
	g.gate = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateCodec) release() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *gateCodec) Compress(ctx context.Context, ts *tcomp.TestSet, opts ...tcomp.Option) (*tcomp.Artifact, error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c, err := tcomp.Lookup("golomb")
	if err != nil {
		return nil, err
	}
	return c.Compress(ctx, ts, opts...)
}

func (g *gateCodec) Decompress(a *tcomp.Artifact) (*tcomp.TestSet, error) {
	c, err := tcomp.Lookup("golomb")
	if err != nil {
		return nil, err
	}
	return c.Decompress(a)
}

var testGate = func() *gateCodec {
	g := &gateCodec{}
	tcomp.Register(g)
	return g
}()

// panicCodec stands in for an undiscovered codec bug on the runner
// goroutine (the v2 path calls Compress directly, off the pipeline
// workers' recover).
type panicCodec struct{}

func (panicCodec) Name() string { return "jobspanic" }
func (panicCodec) Compress(context.Context, *tcomp.TestSet, ...tcomp.Option) (*tcomp.Artifact, error) {
	panic("jobspanic: compress bug")
}
func (panicCodec) Decompress(*tcomp.Artifact) (*tcomp.TestSet, error) {
	panic("jobspanic: decompress bug")
}

func init() { tcomp.Register(panicCodec{}) }

// testPatterns renders n patterns of the given width as a textual
// test-set blob (sparse care bits, like the paper's sets).
func testPatterns(n, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d\n", width, n)
	for i := 0; i < n; i++ {
		for j := 0; j < width; j++ {
			switch (i*7 + j) % 11 {
			case 0:
				b.WriteByte('0')
			case 3:
				b.WriteByte('1')
			default:
				b.WriteByte('x')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func newTestManager(t *testing.T, cfg Config) (*Manager, artifact.Store) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = artifact.NewMemStore()
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m, cfg.Store
}

func putBlob(t *testing.T, s artifact.Store, content string) artifact.Digest {
	t.Helper()
	d, _, err := s.Put(strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// waitState polls until the job reaches want (or any terminal state) and
// returns the snapshot.
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("job %s vanished: %v", id, err)
		}
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s ended %s (error %q, code %q), want %s", id, j.State, j.Error, j.ErrorCode, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, j.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitPollFetch drives the canonical lifecycle: submit a compress
// job, poll to done, fetch the artifact, and verify it decodes back to
// the submitted patterns.
func TestSubmitPollFetch(t *testing.T) {
	m, store := newTestManager(t, Config{})
	input := testPatterns(64, 32)
	d := putBlob(t, store, input)

	j, err := m.Submit(Spec{
		Kind: KindCompress, Codec: "golomb", Input: d,
		Params: map[string]int64{"seed": 7, "chunk": 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StatePending || j.ID == "" {
		t.Fatalf("fresh job %+v", j)
	}
	done := waitState(t, m, j.ID, StateDone)
	if done.Output == "" || done.Stats == nil {
		t.Fatalf("done job missing output/stats: %+v", done)
	}
	if done.Stats.Patterns != 64 || done.Stats.Chunks != 4 {
		t.Fatalf("stats %+v, want 64 patterns in 4 chunks", done.Stats)
	}
	if done.Progress.Chunks != 4 {
		t.Fatalf("final progress %+v, want 4 chunks", done.Progress)
	}

	rc, fetched, err := m.OpenResult(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if fetched.Output != done.Output {
		t.Fatalf("OpenResult job snapshot disagrees: %s vs %s", fetched.Output, done.Output)
	}
	body, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(body)) != done.OutputSize {
		t.Fatalf("artifact is %d bytes, record says %d", len(body), done.OutputSize)
	}
	sr, err := tcomp.NewStreamReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	orig, err := tcomp.ReadTestSet(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(orig, dec) {
		t.Fatal("async artifact does not decode back to the submitted patterns")
	}
}

// TestDecompressJob feeds a compress job's artifact into a decompress
// job and verifies the textual output matches the original blob's
// patterns.
func TestDecompressJob(t *testing.T) {
	m, store := newTestManager(t, Config{})
	input := testPatterns(40, 24)
	d := putBlob(t, store, input)

	cj, err := m.Submit(Spec{Kind: KindCompress, Codec: "rl", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	cdone := waitState(t, m, cj.ID, StateDone)

	dj, err := m.Submit(Spec{Kind: KindDecompress, Input: cdone.Output})
	if err != nil {
		t.Fatal(err)
	}
	ddone := waitState(t, m, dj.ID, StateDone)
	rc, _, err := m.OpenResult(dj.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	got, err := tcomp.ReadTestSet(rc)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := tcomp.ReadTestSet(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(orig, got) {
		t.Fatal("decompress job output does not match the original patterns")
	}
	if ddone.Stats == nil || ddone.Stats.Patterns != 40 {
		t.Fatalf("decompress stats %+v, want 40 patterns", ddone.Stats)
	}
}

// TestSweepJob checks the multi-codec comparison artifact.
func TestSweepJob(t *testing.T) {
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, testPatterns(48, 24))
	j, err := m.Submit(Spec{Kind: KindSweep, Codecs: []string{"golomb", "rl"}, Input: d})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, j.ID, StateDone)
	rc, _, err := m.OpenResult(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var rep SweepReport
	if err := json.NewDecoder(rc).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Patterns != 48 || len(rep.Codecs) != 2 {
		t.Fatalf("report %+v, want 48 patterns over 2 codecs", rep)
	}
	for _, row := range rep.Codecs {
		if row.OriginalBits != 48*24 || row.CompressedBits <= 0 {
			t.Fatalf("codec row %+v has absurd accounting", row)
		}
	}
	if done.Progress.Chunks != 2 {
		t.Fatalf("sweep progress %+v, want 2 codecs completed", done.Progress)
	}
}

// TestCancelMidRun cancels a job stuck inside the codec and expects a
// cancelled record, not failed.
func TestCancelMidRun(t *testing.T) {
	testGate.block()
	defer testGate.release()
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, testPatterns(8, 16))
	j, err := m.Submit(Spec{Kind: KindCompress, Codec: "testgate", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := m.Get(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			if got.State != StateCancelled {
				t.Fatalf("job ended %s (%s), want cancelled", got.State, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never reached a terminal state")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Cancelling a terminal job is a tolerated no-op; result fetch is not.
	if err := m.Cancel(j.ID); err != nil {
		t.Fatalf("cancel of terminal job: %v", err)
	}
	if _, _, err := m.OpenResult(j.ID); !errors.Is(err, ErrNotDone) {
		t.Fatalf("OpenResult on cancelled job = %v, want ErrNotDone", err)
	}
}

// TestCancelQueued cancels a job that never started.
func TestCancelQueued(t *testing.T) {
	testGate.block()
	defer testGate.release()
	m, store := newTestManager(t, Config{Workers: 1})
	d := putBlob(t, store, testPatterns(8, 16))
	// Fill the single worker with a gated job, then queue one more.
	blocker, err := m.Submit(Spec{Kind: KindCompress, Codec: "testgate", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(Spec{Kind: KindCompress, Codec: "golomb", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("queued job state %s after cancel, want cancelled", got.State)
	}
	testGate.release()
	waitState(t, m, blocker.ID, StateDone)
}

// TestFailedJobCarriesTaxonomyCode: a decompress job over garbage input
// fails with the corrupt_container classification the sync endpoint
// would have used.
func TestFailedJobCarriesTaxonomyCode(t *testing.T) {
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, "this is not a container")
	j, err := m.Submit(Spec{Kind: KindDecompress, Input: d})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var got Job
	for {
		got, err = m.Get(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got.State != StateFailed {
		t.Fatalf("job ended %s, want failed", got.State)
	}
	if got.ErrorCode != "corrupt_container" {
		t.Fatalf("error code %q, want corrupt_container", got.ErrorCode)
	}
	if got.Error == "" {
		t.Fatal("failed job has no error message")
	}
}

// TestPanicContained: a codec that panics mid-job degrades to a failed
// job with the internal_panic classification — never a job stuck in
// "running" or a dead runner. Both container formats panic on different
// goroutines (v2 on the runner, v3 on a pipeline worker).
func TestPanicContained(t *testing.T) {
	log.SetOutput(io.Discard) // the contained stacks would drown the test output
	defer log.SetOutput(os.Stderr)
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, testPatterns(8, 16))
	for _, format := range []string{"v2", "v3"} {
		j, err := m.Submit(Spec{Kind: KindCompress, Codec: "jobspanic", Format: format, Input: d})
		if err != nil {
			t.Fatal(err)
		}
		got := waitState(t, m, j.ID, StateFailed)
		if got.ErrorCode != "internal_panic" {
			t.Fatalf("%s: error code %q, want internal_panic", format, got.ErrorCode)
		}
	}
	// The manager still runs jobs after the panics.
	j, err := m.Submit(Spec{Kind: KindCompress, Codec: "golomb", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
}

// TestQueueFull: with one gated worker and a tiny backlog bound, repeated
// submissions must hit ErrQueueFull.
func TestQueueFull(t *testing.T) {
	testGate.block()
	defer testGate.release()
	m, store := newTestManager(t, Config{Workers: 1, MaxQueued: 1})
	d := putBlob(t, store, testPatterns(8, 16))
	var full bool
	for i := 0; i < 10; i++ {
		_, err := m.Submit(Spec{Kind: KindCompress, Codec: "testgate", Input: d})
		if errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("10 submissions against MaxQueued=1 never returned ErrQueueFull")
	}
}

// TestSubmitValidation rejects malformed specs up front.
func TestSubmitValidation(t *testing.T) {
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, testPatterns(4, 8))
	cases := []Spec{
		{Kind: "mine", Input: d},
		{Kind: KindCompress, Codec: "no-such-codec", Input: d},
		{Kind: KindCompress, Codec: "golomb", Format: "v9", Input: d},
		{Kind: KindCompress, Codec: "golomb", Input: "not-a-digest"},
		{Kind: KindCompress, Codec: "golomb", Input: artifact.SumBytes([]byte("never stored"))},
		{Kind: KindCompress, Codec: "golomb", Input: d, Params: map[string]int64{"volume": 11}},
		{Kind: KindCompress, Codec: "golomb", Input: d, Params: map[string]int64{"k": 9999}},
		{Kind: KindDecompress, Input: d, Params: map[string]int64{"k": 4}},
		{Kind: KindSweep, Input: d},
	}
	for i, spec := range cases {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("case %d: Submit(%+v) accepted a bad spec", i, spec)
		}
	}
	if len(m.List()) != 0 {
		t.Fatalf("rejected submissions left %d job records", len(m.List()))
	}
}

// TestRestartRecovery: a manager shut down mid-job parks the job as
// pending; a new manager over the same journal and store re-runs it to
// completion, and an already-done job's record plus artifact survive.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	storeDir := t.TempDir()
	store1, err := artifact.NewDiskStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewManager(Config{Store: store1, Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	input := testPatterns(32, 16)
	d, _, err := store1.Put(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}

	// Job A completes before the restart.
	ja, err := m1.Submit(Spec{Kind: KindCompress, Codec: "golomb", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	jaDone := waitState(t, m1, ja.ID, StateDone)

	// Job B is gated mid-run when the daemon stops.
	testGate.block()
	jb, err := m1.Submit(Spec{Kind: KindCompress, Codec: "testgate", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, jb.ID, StateRunning)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	testGate.release()

	// "Restart": fresh store + manager over the same directories.
	store2, err := artifact.NewDiskStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(Config{Store: store2, Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	// A's record and artifact survived.
	gotA, err := m2.Get(ja.ID)
	if err != nil {
		t.Fatalf("done job lost across restart: %v", err)
	}
	if gotA.State != StateDone || gotA.Output != jaDone.Output {
		t.Fatalf("recovered job A = %+v, want done with output %s", gotA, jaDone.Output)
	}
	rc, _, err := m2.OpenResult(ja.ID)
	if err != nil {
		t.Fatalf("done job's artifact not fetchable after restart: %v", err)
	}
	body, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if artifact.SumBytes(body) != jaDone.Output {
		t.Fatal("artifact bytes changed across restart")
	}

	// B was parked pending and now runs to completion.
	gotB := waitState(t, m2, jb.ID, StateDone)
	if gotB.Output != jaDone.Output {
		// Same input, same codec family via the gate's golomb delegate, but
		// different codec name in the header — outputs differ; just check
		// it decodes.
		rc, _, err := m2.OpenResult(jb.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		sr, err := tcomp.NewStreamReader(rc)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := sr.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		orig, err := tcomp.ReadTestSet(strings.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		if !tcomp.VerifyLossless(orig, dec) {
			t.Fatal("recovered job's artifact does not decode losslessly")
		}
	}
}

// TestRemove: record deletion demands a terminal state and clears the
// journal entry.
func TestRemove(t *testing.T) {
	dir := t.TempDir()
	m, store := newTestManager(t, Config{Dir: dir})
	d := putBlob(t, store, testPatterns(8, 16))
	j, err := m.Submit(Spec{Kind: KindCompress, Codec: "golomb", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	if err := m.Remove(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove = %v, want ErrNotFound", err)
	}
	if err := m.Remove(j.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove = %v, want ErrNotFound", err)
	}
	// The journal entry is gone too: a restart sees nothing.
	m2, err := NewManager(Config{Store: store, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if n := len(m2.List()); n != 0 {
		t.Fatalf("restart after Remove found %d jobs", n)
	}
}

// TestResultGone: GC'ing the output artifact turns OpenResult into
// ErrGone while the job record stays intact.
func TestResultGone(t *testing.T) {
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, testPatterns(8, 16))
	j, err := m.Submit(Spec{Kind: KindCompress, Codec: "golomb", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, m, j.ID, StateDone)
	if err := store.Delete(done.Output); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.OpenResult(j.ID); !errors.Is(err, ErrGone) {
		t.Fatalf("OpenResult after GC = %v, want ErrGone", err)
	}
	if got, err := m.Get(j.ID); err != nil || got.State != StateDone {
		t.Fatalf("job record damaged by artifact GC: %+v, %v", got, err)
	}
}

// TestSharedLimiter: a job holds a token of the shared budget while
// running, exactly like a synchronous request.
func TestSharedLimiter(t *testing.T) {
	testGate.block()
	lim := pipeline.NewLimiter(1)
	m, store := newTestManager(t, Config{Workers: 4, Limiter: lim})
	d := putBlob(t, store, testPatterns(8, 16))
	j, err := m.Submit(Spec{Kind: KindCompress, Codec: "testgate", Input: d})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateRunning)
	// Busy-wait until the runner actually holds the token (Acquire happens
	// just after the running transition).
	deadline := time.Now().Add(5 * time.Second)
	for lim.TryAcquire() {
		lim.Release()
		if time.Now().After(deadline) {
			t.Fatal("running job never acquired the shared limiter token")
		}
		time.Sleep(time.Millisecond)
	}
	testGate.release()
	waitState(t, m, j.ID, StateDone)
	if !lim.TryAcquire() {
		t.Fatal("finished job did not release the shared limiter token")
	}
	lim.Release()
}

// TestContentAddressedDedup: submitting the same work twice produces two
// job records but one output blob.
func TestContentAddressedDedup(t *testing.T) {
	m, store := newTestManager(t, Config{})
	d := putBlob(t, store, testPatterns(16, 16))
	spec := Spec{Kind: KindCompress, Codec: "golomb", Input: d, Params: map[string]int64{"seed": 3}}
	j1, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	d1 := waitState(t, m, j1.ID, StateDone)
	d2 := waitState(t, m, j2.ID, StateDone)
	if d1.Output != d2.Output {
		t.Fatalf("identical submissions produced different outputs: %s vs %s", d1.Output, d2.Output)
	}
	blobs := store.Len()
	// input + one shared output = 2
	if blobs != 2 {
		t.Fatalf("store holds %d blobs, want 2 (deduped output)", blobs)
	}
}
