package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"runtime/debug"

	tcomp "repro"
	"repro/internal/artifact"
	"repro/internal/container"
	"repro/internal/pipeline"
	"repro/internal/testset"
)

// outcome is what a successful runner hands back.
type outcome struct {
	digest    artifact.Digest
	size      int64
	stats     *Stats
	artifacts []OutputArtifact // flow jobs: the container and the decoder
}

// execute runs one job's work while holding a token of the shared worker
// budget, so background jobs and interactive requests split the same
// CPU allowance instead of stacking on top of each other. A panic in a
// codec is contained here — it becomes a failed job (internal_panic),
// never a runner that silently leaves the job in "running" forever.
func (m *Manager) execute(ctx context.Context, id string, j Job) (out *outcome, err error) {
	if err := m.lim.Acquire(ctx); err != nil {
		return nil, err
	}
	defer m.lim.Release()
	defer func() {
		if r := recover(); r != nil {
			m.log.Error("contained panic in job",
				slog.String("job_id", id),
				slog.String("request_id", j.RequestID),
				slog.Any("panic", r),
				slog.String("stack", string(debug.Stack())))
			out, err = nil, fmt.Errorf("jobs: contained panic (%v): %w", r, pipeline.ErrPanic)
		}
	}()
	switch j.Spec.Kind {
	case KindCompress:
		return m.runCompress(ctx, id, j.Spec)
	case KindDecompress:
		return m.runDecompress(ctx, id, j.Spec)
	case KindSweep:
		return m.runSweep(ctx, id, j.Spec)
	case KindFlow:
		return m.runFlow(ctx, id, j.Spec)
	}
	return nil, fmt.Errorf("jobs: unknown kind %q", j.Spec.Kind) // unreachable: Submit validated
}

// produceTo streams a producer's output into the artifact store through
// a pipe, so job results are written at O(chunk) memory with no
// intermediate file. The producer's error wins over the store's: if the
// producer failed, whatever Put saw downstream is a symptom.
func (m *Manager) produceTo(produce func(w io.Writer) (*Stats, error)) (*outcome, error) {
	pr, pw := io.Pipe()
	type putRes struct {
		d   artifact.Digest
		n   int64
		err error
	}
	putc := make(chan putRes, 1)
	go func() {
		d, n, err := m.cfg.Store.Put(pr)
		if err == nil {
			err = fmt.Errorf("jobs: artifact store finished reading early")
		}
		// Unblock a producer still writing (store failure, or trailing
		// bytes after Put decided it was done). A clean completion has the
		// producer close first, so this error is never observed then.
		pr.CloseWithError(err)
		putc <- putRes{d, n, err}
	}()
	stats, perr := func() (*Stats, error) {
		// A panicking producer must still release the store goroutine
		// (close the pipe, join) before the panic unwinds to execute's
		// containment — otherwise the Put goroutine leaks, blocked on a
		// pipe nobody writes.
		defer func() {
			if r := recover(); r != nil {
				_ = pw.CloseWithError(fmt.Errorf("jobs: producer panic: %v", r))
				<-putc
				panic(r)
			}
		}()
		return produce(pw)
	}()
	_ = pw.CloseWithError(perr) // nil closes clean; CloseWithError always returns nil
	res := <-putc
	if perr != nil {
		return nil, perr
	}
	if res.d == "" {
		return nil, fmt.Errorf("jobs: storing result: %w", res.err)
	}
	return &outcome{digest: res.d, size: res.n, stats: stats}, nil
}

// patternSource abstracts "a stream of test patterns" over the two input
// encodings a job accepts: textual pattern files and TSET binary blobs.
type patternSource interface {
	Width() int
	Next() (tcomp.Vector, error) // io.EOF ends the stream
}

// textSource streams a textual pattern blob.
type textSource struct{ sc *testset.Scanner }

func (s textSource) Width() int                  { return s.sc.Width() }
func (s textSource) Next() (tcomp.Vector, error) { return s.sc.Next() }

// memSource walks an already-decoded test set (the TSET binary path —
// that format is in-memory-sized by construction).
type memSource struct {
	ts *tcomp.TestSet
	i  int
}

func (s *memSource) Width() int { return s.ts.Width }
func (s *memSource) Next() (tcomp.Vector, error) {
	if s.i >= s.ts.NumPatterns() {
		return tcomp.Vector{}, io.EOF
	}
	v := s.ts.Patterns[s.i]
	s.i++
	return v, nil
}

// openPatterns opens the input blob as a pattern stream, sniffing the
// TSET binary magic.
func (m *Manager) openPatterns(input artifact.Digest) (patternSource, io.Closer, error) {
	rc, err := m.cfg.Store.Open(input)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: input artifact: %w", err)
	}
	br := bufio.NewReader(rc)
	if peek, err := br.Peek(4); err == nil && string(peek) == "TSET" {
		ts, err := testset.ReadBinary(br)
		if err != nil {
			_ = rc.Close() // the parse error is the story
			return nil, nil, fmt.Errorf("bad binary test set: %w", err)
		}
		return &memSource{ts: ts}, rc, nil
	}
	sc, err := testset.NewScanner(br)
	if err != nil {
		_ = rc.Close() // the parse error is the story
		return nil, nil, fmt.Errorf("bad test set: %w", err)
	}
	return textSource{sc}, rc, nil
}

// effectiveChunkPats mirrors the StreamWriter's chunk sizing so progress
// can be reported in chunks-completed while the stream is still open
// (the writer's own counters are collector-owned until Close).
func effectiveChunkPats(params map[string]int64, width int) int {
	if c := params["chunk"]; c > 0 {
		return int(c)
	}
	n := tcomp.DefaultChunkBits / width
	if n < 1 {
		n = 1
	}
	return n
}

// runCompress compresses the input pattern blob into a container blob.
func (m *Manager) runCompress(ctx context.Context, id string, spec Spec) (*outcome, error) {
	opts, err := optionsFromParams(spec.Params)
	if err != nil {
		return nil, err
	}
	src, closer, err := m.openPatterns(spec.Input)
	if err != nil {
		return nil, err
	}
	defer closer.Close()

	if spec.Format == "v2" {
		// v2 is a monolithic container: materialize the set (bounded by
		// the daemon's body cap at submission time), compress whole.
		ts := tcomp.NewTestSet(src.Width())
		for {
			v, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("bad pattern %d: %w", ts.NumPatterns(), err)
			}
			ts.Add(v)
		}
		codec, err := tcomp.Lookup(spec.Codec)
		if err != nil {
			return nil, err
		}
		art, err := codec.Compress(ctx, ts, opts...)
		if err != nil {
			return nil, err
		}
		return m.produceTo(func(w io.Writer) (*Stats, error) {
			if err := tcomp.Write(w, art); err != nil {
				return nil, err
			}
			return &Stats{
				Patterns:     art.Patterns,
				OriginalBits: art.OriginalBits, CompressedBits: art.CompressedBits,
			}, nil
		})
	}

	chunkPats := effectiveChunkPats(spec.Params, src.Width())
	return m.produceTo(func(w io.Writer) (*Stats, error) {
		sw, err := tcomp.NewStreamWriter(ctx, w, spec.Codec, src.Width(), opts...)
		if err != nil {
			return nil, err
		}
		fed := 0
		for {
			v, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				_ = sw.Close() // the scan error is the story; Close joins the workers
				return nil, fmt.Errorf("bad pattern %d: %w", fed, err)
			}
			if err := sw.WritePattern(v); err != nil {
				_ = sw.Close() // the write error is the story; Close joins the workers
				return nil, err
			}
			fed++
			if fed%chunkPats == 0 {
				m.setProgress(id, Progress{Patterns: fed, Chunks: fed / chunkPats})
			}
		}
		if err := sw.Close(); err != nil {
			return nil, err
		}
		return &Stats{
			Patterns: sw.Patterns(), Chunks: sw.Chunks(),
			OriginalBits: sw.OriginalBits(), CompressedBits: sw.CompressedBits(),
		}, nil
	})
}

// runDecompress expands a container blob (any version) into a textual
// pattern blob — the exact bytes the synchronous endpoint would stream.
func (m *Manager) runDecompress(ctx context.Context, id string, spec Spec) (*outcome, error) {
	rc, err := m.cfg.Store.Open(spec.Input)
	if err != nil {
		return nil, fmt.Errorf("jobs: input artifact: %w", err)
	}
	defer rc.Close()
	version, rest, err := container.Sniff(bufio.NewReader(rc))
	if err != nil {
		return nil, fmt.Errorf("not a tcomp container: %w", err)
	}

	if version != container.Version3 {
		art, err := tcomp.Open(rest)
		if err != nil {
			return nil, fmt.Errorf("bad container: %w", err)
		}
		ts, err := tcomp.Decompress(art)
		if err != nil {
			return nil, err
		}
		return m.produceTo(func(w io.Writer) (*Stats, error) {
			if err := ts.Write(w); err != nil {
				return nil, err
			}
			return &Stats{
				Patterns:     ts.NumPatterns(),
				OriginalBits: art.OriginalBits, CompressedBits: art.CompressedBits,
			}, nil
		})
	}

	sr, err := tcomp.NewStreamReader(rest)
	if err != nil {
		return nil, fmt.Errorf("bad chunked container: %w", err)
	}
	return m.produceTo(func(w io.Writer) (*Stats, error) {
		pw, err := testset.NewPatternWriter(w, sr.Width())
		if err != nil {
			return nil, err
		}
		n, chunk := 0, 0
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("stream corrupt or truncated at chunk %d: %w", sr.ChunkIndex(), err)
			}
			if err := pw.WritePattern(v); err != nil {
				return nil, err
			}
			n++
			if c := sr.ChunkIndex(); c != chunk {
				chunk = c
				m.setProgress(id, Progress{Patterns: n, Chunks: chunk})
			}
		}
		if err := pw.Close(); err != nil {
			return nil, err
		}
		return &Stats{Patterns: n, Chunks: sr.ChunkIndex(), OriginalBits: n * sr.Width()}, nil
	})
}

// SweepReport is the JSON artifact a sweep job produces: one row per
// codec, each the result of streaming the same input through that codec.
type SweepReport struct {
	Patterns int              `json:"patterns"`
	Width    int              `json:"width"`
	Codecs   []SweepCodecStat `json:"codecs"`
}

// SweepCodecStat is one codec's row in a sweep report.
type SweepCodecStat struct {
	Codec          string  `json:"codec"`
	Chunks         int     `json:"chunks"`
	OriginalBits   int     `json:"original_bits"`
	CompressedBits int     `json:"compressed_bits"`
	RatePercent    float64 `json:"rate_percent"`
}

// runSweep streams the input through every requested codec (re-opening
// the blob per codec, so memory stays O(chunk)) and stores the rate
// comparison as a JSON report.
func (m *Manager) runSweep(ctx context.Context, id string, spec Spec) (*outcome, error) {
	opts, err := optionsFromParams(spec.Params)
	if err != nil {
		return nil, err
	}
	report := SweepReport{}
	best := 0
	for i, codecName := range spec.Codecs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		src, closer, err := m.openPatterns(spec.Input)
		if err != nil {
			return nil, err
		}
		sw, err := tcomp.NewStreamWriter(ctx, io.Discard, codecName, src.Width(), opts...)
		if err != nil {
			_ = closer.Close() // the open error is the story
			return nil, err
		}
		fed := 0
		for {
			v, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				_ = sw.Close()     // the scan error is the story; Close joins the workers
				_ = closer.Close() // ditto
				return nil, fmt.Errorf("%s: bad pattern %d: %w", codecName, fed, err)
			}
			if err := sw.WritePattern(v); err != nil {
				_ = sw.Close()     // the write error is the story; Close joins the workers
				_ = closer.Close() // ditto
				return nil, err
			}
			fed++
		}
		closeErr := sw.Close()
		_ = closer.Close() // input re-opens next iteration
		if closeErr != nil {
			return nil, fmt.Errorf("%s: %w", codecName, closeErr)
		}
		report.Patterns = sw.Patterns()
		report.Width = src.Width()
		report.Codecs = append(report.Codecs, SweepCodecStat{
			Codec:          codecName,
			Chunks:         sw.Chunks(),
			OriginalBits:   sw.OriginalBits(),
			CompressedBits: sw.CompressedBits(),
			RatePercent:    sw.RatePercent(),
		})
		if best == 0 || sw.CompressedBits() < best {
			best = sw.CompressedBits()
		}
		m.setProgress(id, Progress{Patterns: sw.Patterns(), Chunks: i + 1})
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	return m.produceTo(func(w io.Writer) (*Stats, error) {
		if _, err := io.Copy(w, bytes.NewReader(b)); err != nil {
			return nil, err
		}
		return &Stats{
			Patterns: report.Patterns, Chunks: len(report.Codecs),
			OriginalBits:   report.Patterns * report.Width,
			CompressedBits: best,
		}, nil
	})
}

// FlowReport is the JSON artifact a flow job produces: the flow result
// (minus the binary blobs) plus the digests of the stored container and
// decoder, so the report alone is a complete receipt.
type FlowReport struct {
	*tcomp.FlowResult
	Artifacts []OutputArtifact `json:"artifacts"`
}

// runFlow runs the full hardware-test pipeline (circuit → test
// generation → codec advisor race → winner container + Verilog decoder)
// and stores three blobs: the JSON report as the job output, plus the
// container and decoder as named artifacts on the job record.
func (m *Manager) runFlow(ctx context.Context, id string, spec Spec) (*outcome, error) {
	opts, err := optionsFromParams(spec.Params)
	if err != nil {
		return nil, err
	}
	seed := int64(1)
	if v := spec.Params["seed"]; v != 0 {
		seed = v
	}
	// Flow progress is stages completed (of 4), the way sweep counts
	// codecs; the metrics hook rides the same observer.
	stages := 0
	flowOpts := []tcomp.FlowOption{
		tcomp.FlowSeed(seed),
		tcomp.FlowWorkers(int(spec.Params["workers"])),
		tcomp.FlowCodecOptions(opts...),
		tcomp.FlowStageObserver(func(stage string, seconds float64) {
			if m.cfg.FlowObserve != nil {
				m.cfg.FlowObserve(stage, seconds)
			}
			stages++
			m.setProgress(id, Progress{Chunks: stages})
		}),
	}
	if len(spec.Codecs) > 0 {
		flowOpts = append(flowOpts, tcomp.FlowCodecs(spec.Codecs...))
	}
	if spec.Tests != "" {
		flowOpts = append(flowOpts, tcomp.FlowTests(spec.Tests))
	}
	if spec.Sample > 0 {
		flowOpts = append(flowOpts, tcomp.FlowSamplePatterns(spec.Sample))
	}
	flow := tcomp.NewTestFlow(flowOpts...)

	var c *tcomp.Circuit
	if spec.Benchmark != "" {
		c, err = flow.GenerateCircuit(ctx, spec.Benchmark)
	} else {
		var rc io.ReadCloser
		rc, err = m.cfg.Store.Open(spec.Input)
		if err != nil {
			return nil, fmt.Errorf("jobs: input artifact: %w", err)
		}
		c, err = flow.ParseCircuit("submitted", rc)
		_ = rc.Close()
	}
	if err != nil {
		return nil, err
	}

	res, err := flow.Run(ctx, c)
	if err != nil {
		return nil, err
	}
	if m.cfg.FlowCoverage != nil {
		m.cfg.FlowCoverage(res.Tests.CoveragePercent)
	}

	store := func(name string, blob []byte) (OutputArtifact, error) {
		d, n, err := m.cfg.Store.Put(bytes.NewReader(blob))
		if err != nil {
			return OutputArtifact{}, fmt.Errorf("jobs: storing flow %s: %w", name, err)
		}
		return OutputArtifact{Name: name, Digest: d, Size: n}, nil
	}
	cArt, err := store("container", res.ContainerBytes)
	if err != nil {
		return nil, err
	}
	vArt, err := store("verilog", res.VerilogBytes)
	if err != nil {
		return nil, err
	}
	report := FlowReport{FlowResult: res, Artifacts: []OutputArtifact{cArt, vArt}}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	out, err := m.produceTo(func(w io.Writer) (*Stats, error) {
		if _, err := w.Write(b); err != nil {
			return nil, err
		}
		return &Stats{
			Patterns: res.Tests.Patterns, Chunks: res.Container.Chunks,
			OriginalBits:   res.Container.OriginalBits,
			CompressedBits: res.Container.CompressedBits,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.artifacts = report.Artifacts
	return out, nil
}
