package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
)

func TestBuildBasic(t *testing.T) {
	// Classic example: frequencies 5,3,2 → lengths 1,2,2.
	c, err := Build([]int{5, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 2}
	for i, l := range want {
		if c.Lengths[i] != l {
			t.Errorf("symbol %d: length %d want %d", i, c.Lengths[i], l)
		}
	}
	if !c.IsPrefixFree() {
		t.Fatal("not prefix free")
	}
	if c.TotalBits([]int{5, 3, 2}) != 5*1+3*2+2*2 {
		t.Fatalf("TotalBits=%d", c.TotalBits([]int{5, 3, 2}))
	}
}

func TestBuildSkipsZeroFreq(t *testing.T) {
	c, err := Build([]int{0, 7, 0, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Lengths[0] != 0 || c.Lengths[2] != 0 || c.Lengths[4] != 0 {
		t.Fatal("zero-frequency symbols must have no codeword")
	}
	if c.Lengths[1] != 1 || c.Lengths[3] != 1 {
		t.Fatalf("two-symbol code should be 1/1 bits, got %v", c.Lengths)
	}
	if c.NumUsed() != 2 || c.NumSymbols() != 5 {
		t.Fatalf("NumUsed=%d NumSymbols=%d", c.NumUsed(), c.NumSymbols())
	}
}

func TestBuildSingleSymbol(t *testing.T) {
	c, err := Build([]int{0, 9})
	if err != nil {
		t.Fatal(err)
	}
	if c.Lengths[1] != 1 {
		t.Fatalf("degenerate single-symbol code should get 1 bit, got %d", c.Lengths[1])
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]int{0, 0}); err == nil {
		t.Fatal("expected error for all-zero frequencies")
	}
	if _, err := Build([]int{-1, 5}); err == nil {
		t.Fatal("expected error for negative frequency")
	}
	if _, err := Build(nil); err == nil {
		t.Fatal("expected error for empty alphabet")
	}
}

func TestWordString(t *testing.T) {
	c, err := Build([]int{5, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.WordString(0) != "0" {
		t.Fatalf("canonical first word = %q", c.WordString(0))
	}
	if got := c.WordString(1); got != "10" {
		t.Fatalf("second word = %q", got)
	}
	cZero := &Code{Lengths: []int{0}, Words: []uint64{0}}
	if cZero.WordString(0) != "" {
		t.Fatal("absent symbol should render empty")
	}
}

func TestFromLengthsKraft(t *testing.T) {
	if _, err := FromLengths([]int{1, 1, 1}); err == nil {
		t.Fatal("Kraft violation not detected")
	}
	c, err := FromLengths([]int{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsPrefixFree() {
		t.Fatal("FromLengths produced non-prefix code")
	}
	if _, err := FromLengths([]int{1, -2}); err == nil {
		t.Fatal("negative length not rejected")
	}
	if _, err := FromLengths([]int{0, 0}); err == nil {
		t.Fatal("empty code not rejected")
	}
}

func TestExplicit(t *testing.T) {
	// The fixed 9C table from the paper must be accepted.
	lengths := []int{1, 2, 5, 5, 5, 5, 5, 5, 4}
	words := []uint64{0b0, 0b10, 0b11000, 0b11001, 0b11010, 0b11011, 0b11100, 0b11101, 0b1111}
	c, err := Explicit(lengths, words)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsPrefixFree() {
		t.Fatal("9C table should be prefix free")
	}
	// A clashing table must be rejected.
	if _, err := Explicit([]int{1, 2}, []uint64{0, 0b01}); err == nil {
		t.Fatal("prefix clash not rejected")
	}
	if _, err := Explicit([]int{1}, []uint64{0, 1}); err == nil {
		t.Fatal("size mismatch not rejected")
	}
}

// bruteForceOptimal computes the optimal expected code length by trying all
// length assignments satisfying Kraft for tiny alphabets.
func bruteForceOptimal(freqs []int) int {
	var syms []int
	for i, f := range freqs {
		if f > 0 {
			syms = append(syms, i)
		}
	}
	n := len(syms)
	if n == 1 {
		return freqs[syms[0]]
	}
	best := 1 << 30
	lens := make([]int, n)
	maxLen := n
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			// Kraft check
			sum := 0.0
			for _, l := range lens {
				sum += 1 / float64(uint(1)<<uint(l))
			}
			if sum > 1.0000001 {
				return
			}
			total := 0
			for j, s := range syms {
				total += freqs[s] * lens[j]
			}
			if total < best {
				best = total
			}
			return
		}
		for l := 1; l <= maxLen; l++ {
			lens[i] = l
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestOptimalityVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := r.Intn(4) + 2
		freqs := make([]int, n)
		for i := range freqs {
			freqs[i] = r.Intn(20) + 1
		}
		c, err := Build(freqs)
		if err != nil {
			t.Fatal(err)
		}
		got := c.TotalBits(freqs)
		want := bruteForceOptimal(freqs)
		if got != want {
			t.Fatalf("freqs=%v: huffman %d bits, optimal %d", freqs, got, want)
		}
	}
}

func TestQuickPrefixFreeAndKraftTight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40) + 2
		freqs := make([]int, n)
		nonzero := 0
		for i := range freqs {
			if r.Intn(3) > 0 {
				freqs[i] = r.Intn(1000) + 1
				nonzero++
			}
		}
		if nonzero == 0 {
			freqs[0] = 1
			nonzero = 1
		}
		c, err := Build(freqs)
		if err != nil {
			return false
		}
		if !c.IsPrefixFree() {
			return false
		}
		// For >=2 symbols, Huffman codes satisfy Kraft with equality.
		if nonzero >= 2 {
			maxLen := 0
			for _, l := range c.Lengths {
				if l > maxLen {
					maxLen = l
				}
			}
			var sum, unit uint64 = 0, 1 << uint(maxLen)
			for _, l := range c.Lengths {
				if l > 0 {
					sum += unit >> uint(l)
				}
			}
			if sum != unit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		n := r.Intn(20) + 1
		freqs := make([]int, n)
		for i := range freqs {
			freqs[i] = r.Intn(50)
		}
		freqs[r.Intn(n)] = r.Intn(50) + 1
		c, err := Build(freqs)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(c)
		if err != nil {
			t.Fatal(err)
		}
		// Encode a random symbol sequence (only used symbols).
		var used []int
		for i, l := range c.Lengths {
			if l > 0 {
				used = append(used, i)
			}
		}
		w := bitstream.NewWriter()
		var seq []int
		for j := 0; j < 200; j++ {
			s := used[r.Intn(len(used))]
			seq = append(seq, s)
			w.WriteBits(c.Words[s], c.Lengths[s])
		}
		rd := bitstream.FromWriter(w)
		for j, want := range seq {
			got, err := dec.Decode(rd.ReadBit)
			if err != nil {
				t.Fatalf("decode %d: %v", j, err)
			}
			if got != want {
				t.Fatalf("decode %d: got %d want %d", j, got, want)
			}
		}
		if rd.Remaining() != 0 {
			t.Fatal("trailing bits after decode")
		}
	}
}

func TestDecoderRejectsNonPrefix(t *testing.T) {
	c := &Code{Lengths: []int{1, 2}, Words: []uint64{0b0, 0b01}}
	if _, err := NewDecoder(c); err == nil {
		t.Fatal("decoder accepted non-prefix code")
	}
}

func TestDecoderNumNodes(t *testing.T) {
	c, err := Build([]int{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(c)
	if err != nil {
		t.Fatal(err)
	}
	// Balanced 4-leaf tree has 3 internal nodes.
	if dec.NumNodes() != 3 {
		t.Fatalf("NumNodes=%d want 3", dec.NumNodes())
	}
}

func TestDecoderEOS(t *testing.T) {
	c, _ := Build([]int{1, 1})
	dec, _ := NewDecoder(c)
	rd := bitstream.NewReader(nil, 0)
	if _, err := dec.Decode(rd.ReadBit); err == nil {
		t.Fatal("expected error at end of stream")
	}
}
