package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
)

// sourceOnly hides the Peeker fast path, forcing the trie fallback.
type sourceOnly struct{ bitstream.Source }

// randomCode builds a Huffman code over n symbols with random skewed
// frequencies (some zero).
func randomCode(n int, r *rand.Rand) *Code {
	freqs := make([]int, n)
	nonzero := false
	for i := range freqs {
		if r.Intn(4) > 0 {
			freqs[i] = 1 << uint(r.Intn(12))
			nonzero = true
		}
	}
	if !nonzero {
		freqs[0] = 1
	}
	c, err := Build(freqs)
	if err != nil {
		panic(err)
	}
	return c
}

func TestTableDecoderMatchesTrie(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 100; trial++ {
		c := randomCode(1+r.Intn(40), r)
		td, err := NewTableDecoder(c)
		if err != nil {
			t.Fatal(err)
		}
		trie, err := NewDecoder(c)
		if err != nil {
			t.Fatal(err)
		}
		var used []int
		for sym, l := range c.Lengths {
			if l > 0 {
				used = append(used, sym)
			}
		}
		// Encode a random symbol sequence, then decode it three ways.
		w := bitstream.NewWriter()
		var want []int
		for i := 0; i < 200; i++ {
			sym := used[r.Intn(len(used))]
			want = append(want, sym)
			w.WriteBits(c.Words[sym], c.Lengths[sym])
		}
		decodeAll := func(decode func() (int, error)) []int {
			out := make([]int, len(want))
			for i := range out {
				sym, err := decode()
				if err != nil {
					t.Fatalf("symbol %d: %v", i, err)
				}
				out[i] = sym
			}
			return out
		}
		rd := bitstream.FromWriter(w)
		viaTable := decodeAll(func() (int, error) { return td.Decode(rd) })
		rd2 := bitstream.FromWriter(w)
		viaFallback := decodeAll(func() (int, error) { return td.Decode(sourceOnly{rd2}) })
		rd3 := bitstream.FromWriter(w)
		viaTrie := decodeAll(func() (int, error) { return trie.Decode(rd3.ReadBit) })
		sr := bitstream.NewStreamReader(bytes.NewReader(w.Bytes()), w.Len())
		viaStream := decodeAll(func() (int, error) { return td.Decode(sr) })
		for i := range want {
			if viaTable[i] != want[i] || viaFallback[i] != want[i] ||
				viaTrie[i] != want[i] || viaStream[i] != want[i] {
				t.Fatalf("symbol %d: want %d, table=%d fallback=%d trie=%d stream=%d",
					i, want[i], viaTable[i], viaFallback[i], viaTrie[i], viaStream[i])
			}
		}
		if rd.Remaining() != 0 {
			t.Fatalf("table decode left %d bits unconsumed", rd.Remaining())
		}
	}
}

func TestTableDecoderErrorsMatchTrie(t *testing.T) {
	// On garbage and truncated streams the table path must fail exactly
	// where the trie does.
	r := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		c := randomCode(1+r.Intn(20), r)
		td, err := NewTableDecoder(c)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, r.Intn(6))
		r.Read(buf)
		nbit := len(buf)*8 - r.Intn(8)
		if nbit < 0 {
			nbit = 0
		}
		run := func(src bitstream.Source) ([]int, error) {
			var out []int
			for i := 0; i < 50; i++ {
				sym, err := td.Decode(src)
				if err != nil {
					return out, err
				}
				out = append(out, sym)
			}
			return out, nil
		}
		gotFast, errFast := run(bitstream.NewReader(buf, nbit))
		gotSlow, errSlow := run(sourceOnly{bitstream.NewReader(buf, nbit)})
		if (errFast == nil) != (errSlow == nil) || len(gotFast) != len(gotSlow) {
			t.Fatalf("paths diverge: fast %v/%v, slow %v/%v", gotFast, errFast, gotSlow, errSlow)
		}
		for i := range gotFast {
			if gotFast[i] != gotSlow[i] {
				t.Fatalf("symbol %d: fast=%d slow=%d", i, gotFast[i], gotSlow[i])
			}
		}
	}
}

func TestTableDecoderLongCodewords(t *testing.T) {
	// A deep code (lengths beyond maxTableBits) must decode via the trie
	// fallback mid-stream without losing sync.
	lengths := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 18}
	c, err := FromLengths(lengths)
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTableDecoder(c)
	if err != nil {
		t.Fatal(err)
	}
	w := bitstream.NewWriter()
	want := []int{18, 0, 17, 5, 16, 11, 12, 0, 18}
	for _, sym := range want {
		w.WriteBits(c.Words[sym], c.Lengths[sym])
	}
	rd := bitstream.FromWriter(w)
	for i, wantSym := range want {
		sym, err := td.Decode(rd)
		if err != nil {
			t.Fatalf("symbol %d: %v", i, err)
		}
		if sym != wantSym {
			t.Fatalf("symbol %d: got %d want %d", i, sym, wantSym)
		}
	}
	if rd.Remaining() != 0 {
		t.Fatalf("%d bits left over", rd.Remaining())
	}
}
