// Package huffman implements canonical Huffman coding over symbol
// frequencies, as used by the paper to assign prefix codewords to matching
// vectors (Section 3.3). Symbols with zero frequency receive no codeword at
// all — the paper notes that "an MV with a frequency of 0 can be simply
// left out without allocating a codeword to it".
package huffman

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/bitstream"
)

// Code is a prefix code over a symbol alphabet 0..n-1. A symbol with
// Lengths[i]==0 has no codeword (zero frequency).
type Code struct {
	// Lengths[i] is the codeword length in bits for symbol i (0 = absent).
	Lengths []int
	// Words[i] holds the codeword bits for symbol i, MSB-first in the low
	// Lengths[i] bits.
	Words []uint64
}

// NumSymbols returns the alphabet size (including absent symbols).
func (c *Code) NumSymbols() int { return len(c.Lengths) }

// NumUsed returns the number of symbols with a codeword.
func (c *Code) NumUsed() int {
	n := 0
	for _, l := range c.Lengths {
		if l > 0 {
			n++
		}
	}
	return n
}

// WordString renders symbol i's codeword as a binary string.
func (c *Code) WordString(i int) string {
	l := c.Lengths[i]
	if l == 0 {
		return ""
	}
	buf := make([]byte, l)
	for b := 0; b < l; b++ {
		buf[b] = byte('0' + (c.Words[i] >> uint(l-1-b) & 1))
	}
	return string(buf)
}

type node struct {
	freq   int
	order  int // tie-break: deterministic builds
	symbol int // leaf symbol, -1 for internal
	left   *node
	right  *node
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical Huffman code for the given frequencies.
// Zero-frequency symbols are excluded. If exactly one symbol has nonzero
// frequency it is assigned the 1-bit codeword "0" (a degenerate but valid
// prefix code; the stream remains self-delimiting). Build returns an error
// if no symbol has positive frequency.
func Build(freqs []int) (*Code, error) {
	n := len(freqs)
	h := make(nodeHeap, 0, n)
	for i, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("huffman: negative frequency %d for symbol %d", f, i)
		}
		if f > 0 {
			h = append(h, &node{freq: f, order: i, symbol: i})
		}
	}
	if len(h) == 0 {
		return nil, fmt.Errorf("huffman: no symbol with positive frequency")
	}
	lengths := make([]int, n)
	if len(h) == 1 {
		lengths[h[0].symbol] = 1
		return canonical(lengths)
	}
	heap.Init(&h)
	order := n
	for h.Len() > 1 {
		a := heap.Pop(&h).(*node)
		b := heap.Pop(&h).(*node)
		heap.Push(&h, &node{freq: a.freq + b.freq, order: order, symbol: -1, left: a, right: b})
		order++
	}
	root := h[0]
	var walk func(nd *node, depth int)
	walk = func(nd *node, depth int) {
		if nd.symbol >= 0 {
			lengths[nd.symbol] = depth
			return
		}
		walk(nd.left, depth+1)
		walk(nd.right, depth+1)
	}
	walk(root, 0)
	return canonical(lengths)
}

// FromLengths builds a canonical code from explicit codeword lengths
// (0 = absent). It validates the Kraft inequality.
func FromLengths(lengths []int) (*Code, error) {
	ls := append([]int(nil), lengths...)
	return canonical(ls)
}

// canonical assigns canonical codewords for the given lengths: symbols are
// sorted by (length, symbol index); codewords increase numerically.
func canonical(lengths []int) (*Code, error) {
	type sym struct{ idx, len int }
	var used []sym
	maxLen := 0
	for i, l := range lengths {
		if l < 0 || l > 62 {
			return nil, fmt.Errorf("huffman: invalid code length %d for symbol %d", l, i)
		}
		if l > 0 {
			used = append(used, sym{i, l})
			if l > maxLen {
				maxLen = l
			}
		}
	}
	if len(used) == 0 {
		return nil, fmt.Errorf("huffman: empty code")
	}
	// Kraft sum must be ≤ 1 for a prefix code to exist.
	var kraft uint64
	unit := uint64(1) << uint(maxLen)
	for _, s := range used {
		kraft += unit >> uint(s.len)
	}
	if kraft > unit {
		return nil, fmt.Errorf("huffman: lengths violate Kraft inequality")
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].len != used[j].len {
			return used[i].len < used[j].len
		}
		return used[i].idx < used[j].idx
	})
	words := make([]uint64, len(lengths))
	var code uint64
	prevLen := used[0].len
	for _, s := range used {
		code <<= uint(s.len - prevLen)
		prevLen = s.len
		words[s.idx] = code
		code++
	}
	return &Code{Lengths: lengths, Words: words}, nil
}

// IsPrefixFree verifies that no codeword is a prefix of another. Canonical
// construction guarantees this; the check exists for tests and for codes
// loaded from external sources (e.g. the fixed 9C code table).
func (c *Code) IsPrefixFree() bool {
	type w struct {
		bits uint64
		len  int
	}
	var ws []w
	for i, l := range c.Lengths {
		if l > 0 {
			ws = append(ws, w{c.Words[i], l})
		}
	}
	for i := 0; i < len(ws); i++ {
		for j := 0; j < len(ws); j++ {
			if i == j {
				continue
			}
			a, b := ws[i], ws[j]
			if a.len <= b.len && b.bits>>uint(b.len-a.len) == a.bits {
				return false
			}
		}
	}
	return true
}

// TotalBits returns Σ freqs[i] * Lengths[i] — the codeword contribution to
// the compressed size (fill bits are accounted for by the caller).
func (c *Code) TotalBits(freqs []int) int {
	total := 0
	for i, f := range freqs {
		total += f * c.Lengths[i]
	}
	return total
}

// Explicit builds a Code directly from (length, word) pairs without
// canonicalization. Used for the fixed 9C codeword table from the paper.
func Explicit(lengths []int, words []uint64) (*Code, error) {
	if len(lengths) != len(words) {
		return nil, fmt.Errorf("huffman: lengths/words size mismatch")
	}
	c := &Code{Lengths: append([]int(nil), lengths...), Words: append([]uint64(nil), words...)}
	if !c.IsPrefixFree() {
		return nil, fmt.Errorf("huffman: explicit code is not prefix-free")
	}
	return c, nil
}

// Decoder walks a prefix code bit by bit.
type Decoder struct {
	// children[node][bit] -> next node (>=0) or ^symbol (<0, leaf).
	children [][2]int
}

// NewDecoder builds a decoding trie for c.
func NewDecoder(c *Code) (*Decoder, error) {
	d := &Decoder{children: make([][2]int, 1)}
	d.children[0] = [2]int{-1 - (1 << 30), -1 - (1 << 30)}
	const empty = -1 - (1 << 30)
	for sym, l := range c.Lengths {
		if l == 0 {
			continue
		}
		nodeIdx := 0
		for b := l - 1; b >= 0; b-- {
			bit := int(c.Words[sym] >> uint(b) & 1)
			next := d.children[nodeIdx][bit]
			if b == 0 {
				if next != empty {
					return nil, fmt.Errorf("huffman: code not prefix-free at symbol %d", sym)
				}
				d.children[nodeIdx][bit] = -1 - sym
			} else {
				if next == empty {
					d.children = append(d.children, [2]int{empty, empty})
					next = len(d.children) - 1
					d.children[nodeIdx][bit] = next
				} else if next < 0 {
					return nil, fmt.Errorf("huffman: code not prefix-free at symbol %d", sym)
				}
				nodeIdx = next
			}
		}
	}
	return d, nil
}

// Decode consumes bits via nextBit until a symbol is reached.
func (d *Decoder) Decode(nextBit func() (uint, error)) (int, error) {
	const empty = -1 - (1 << 30)
	nodeIdx := 0
	for {
		b, err := nextBit()
		if err != nil {
			return 0, err
		}
		next := d.children[nodeIdx][b&1]
		if next == empty {
			return 0, fmt.Errorf("huffman: invalid bit sequence")
		}
		if next < 0 {
			return -1 - next, nil
		}
		nodeIdx = next
	}
}

// maxTableBits bounds the primary lookup table of a TableDecoder: 2^11
// entries cover every codeword of length <= 11 — in practice all of
// them, since selective-Huffman dictionaries are small — while keeping
// the table build O(thousands) even for degenerate codes.
const maxTableBits = 11

type tableEntry struct {
	sym int32 // decoded symbol
	len uint8 // codeword length in bits; 0 = not resolvable by the table
}

// TableDecoder decodes a whole symbol per table probe: it peeks a
// tableBits window, looks the window up in a precomputed table, and
// consumes the matched codeword's length in one Skip. Codewords longer
// than the table window — and sources without the bitstream.Peeker fast
// path — fall back to the bit-at-a-time trie, which also owns the
// error paths (truncated stream, invalid sequence), so both decoders
// are observably identical.
type TableDecoder struct {
	trie      *Decoder
	tableBits int
	entries   []tableEntry
}

// NewTableDecoder builds a table-accelerated decoder for c.
func NewTableDecoder(c *Code) (*TableDecoder, error) {
	trie, err := NewDecoder(c)
	if err != nil {
		return nil, err
	}
	tb := 0
	for _, l := range c.Lengths {
		if l > tb {
			tb = l
		}
	}
	if tb > maxTableBits {
		tb = maxTableBits
	}
	d := &TableDecoder{trie: trie, tableBits: tb, entries: make([]tableEntry, 1<<uint(tb))}
	for sym, l := range c.Lengths {
		if l == 0 || l > tb {
			continue
		}
		// Every window whose first l bits equal the codeword decodes to
		// this symbol, whatever the following bits are. Like the trie,
		// only the low l bits of the word count — codes parsed from a
		// container may carry junk above them.
		base := (c.Words[sym] & (1<<uint(l) - 1)) << uint(tb-l)
		for i := uint64(0); i < 1<<uint(tb-l); i++ {
			d.entries[base+i] = tableEntry{sym: int32(sym), len: uint8(l)}
		}
	}
	return d, nil
}

// Decode reads one symbol from src.
func (d *TableDecoder) Decode(src bitstream.Source) (int, error) {
	if pk, ok := src.(bitstream.Peeker); ok {
		v, avail := pk.PeekBits(d.tableBits)
		if avail > 0 {
			// A short window is zero-padded; a hit still only stands on
			// the len bits that are really there.
			e := d.entries[v<<uint(d.tableBits-avail)]
			if e.len != 0 && int(e.len) <= avail {
				if err := pk.Skip(int(e.len)); err != nil {
					return 0, err
				}
				return int(e.sym), nil
			}
		}
	}
	return d.trie.Decode(src.ReadBit)
}

// NumNodes returns the number of internal trie nodes — used by the on-chip
// decoder area model.
func (d *Decoder) NumNodes() int { return len(d.children) }

// Edge is one transition of the decoding trie.
type Edge struct {
	From int // source state
	Bit  int // input bit (0 or 1)
	To   int // target state (internal edges only)
	// Leaf marks codeword-completing edges; Symbol is then the decoded
	// symbol and To is meaningless.
	Leaf   bool
	Symbol int
}

// Edges lists all trie transitions, for hardware synthesis of the
// decoder FSM.
func (d *Decoder) Edges() []Edge {
	const empty = -1 - (1 << 30)
	var out []Edge
	for s, ch := range d.children {
		for b := 0; b < 2; b++ {
			next := ch[b]
			if next == empty {
				continue
			}
			if next < 0 {
				out = append(out, Edge{From: s, Bit: b, Leaf: true, Symbol: -1 - next})
			} else {
				out = append(out, Edge{From: s, Bit: b, To: next})
			}
		}
	}
	return out
}
