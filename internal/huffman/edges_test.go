package huffman

import "testing"

func TestEdgesConsistentWithDecode(t *testing.T) {
	c, err := Build([]int{7, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(c)
	if err != nil {
		t.Fatal(err)
	}
	edges := d.Edges()
	// A full binary trie over n leaves has n-1 internal nodes and
	// 2(n-1) edges.
	used := c.NumUsed()
	if len(edges) != 2*(used-1) {
		t.Fatalf("edges=%d want %d", len(edges), 2*(used-1))
	}
	leafCount := 0
	for _, e := range edges {
		if e.Bit != 0 && e.Bit != 1 {
			t.Fatalf("bad bit %d", e.Bit)
		}
		if e.Leaf {
			leafCount++
			if e.Symbol < 0 || e.Symbol >= len(c.Lengths) || c.Lengths[e.Symbol] == 0 {
				t.Fatalf("leaf edge decodes invalid symbol %d", e.Symbol)
			}
		} else {
			if e.To <= 0 || e.To >= d.NumNodes() {
				t.Fatalf("internal edge to invalid state %d", e.To)
			}
		}
	}
	if leafCount != used {
		t.Fatalf("leaf edges %d != used symbols %d", leafCount, used)
	}
	// Walking edges from the root must reproduce each codeword's symbol.
	for sym, l := range c.Lengths {
		if l == 0 {
			continue
		}
		state := 0
		for b := l - 1; b >= 0; b-- {
			bit := int(c.Words[sym] >> uint(b) & 1)
			var next *Edge
			for i := range edges {
				if edges[i].From == state && edges[i].Bit == bit {
					next = &edges[i]
					break
				}
			}
			if next == nil {
				t.Fatalf("symbol %d: missing edge at state %d bit %d", sym, state, bit)
			}
			if b == 0 {
				if !next.Leaf || next.Symbol != sym {
					t.Fatalf("symbol %d: walk ended at %+v", sym, next)
				}
			} else {
				if next.Leaf {
					t.Fatalf("symbol %d: premature leaf", sym)
				}
				state = next.To
			}
		}
	}
}
