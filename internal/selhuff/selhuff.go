// Package selhuff implements selective Huffman coding of test data (Jas,
// Ghosh-Dastidar & Touba, VTS'99): the test-set string is zero-filled and
// cut into fixed blocks of K bits; the D most frequent block patterns
// receive Huffman codewords marked with a '1' flag bit, all other blocks
// are transmitted raw behind a '0' flag.
package selhuff

import (
	"fmt"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/huffman"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Result reports an encoding.
type Result struct {
	K, D           int
	OriginalBits   int
	CompressedBits int
	Stream         *bitstream.Writer
	// Dictionary holds the encoded patterns in symbol order.
	Dictionary []uint64
	Code       *huffman.Code
}

// RatePercent returns the paper-style compression rate.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// blockWord packs a fully specified K-bit block into a uint64.
func blockWord(flat tritvec.Vector, off, k int) uint64 {
	var w uint64
	for i := 0; i < k; i++ {
		w <<= 1
		if off+i < flat.Len() && flat.Get(off+i) == tritvec.One {
			w |= 1
		}
	}
	return w
}

// Compress encodes ts with block size k and dictionary size d.
func Compress(ts *testset.TestSet, k, d int) (*Result, error) {
	if k < 1 || k > 62 {
		return nil, fmt.Errorf("selhuff: block size %d out of range", k)
	}
	if d < 1 {
		return nil, fmt.Errorf("selhuff: dictionary size %d out of range", d)
	}
	flat := runlength.ZeroFill(ts)
	nblocks := (flat.Len() + k - 1) / k
	freq := make(map[uint64]int)
	words := make([]uint64, nblocks)
	for b := 0; b < nblocks; b++ {
		w := blockWord(flat, b*k, k)
		words[b] = w
		freq[w]++
	}
	type pf struct {
		w uint64
		f int
	}
	all := make([]pf, 0, len(freq))
	for w, f := range freq {
		all = append(all, pf{w, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	if d > len(all) {
		d = len(all)
	}
	dict := make([]uint64, d)
	index := make(map[uint64]int, d)
	freqs := make([]int, d)
	for i := 0; i < d; i++ {
		dict[i] = all[i].w
		index[all[i].w] = i
		freqs[i] = all[i].f
	}
	code, err := huffman.Build(freqs)
	if err != nil {
		return nil, err
	}
	w := bitstream.NewWriter()
	for _, word := range words {
		if sym, ok := index[word]; ok {
			w.WriteBit(1)
			w.WriteBits(code.Words[sym], code.Lengths[sym])
		} else {
			w.WriteBit(0)
			w.WriteBits(word, k)
		}
	}
	return &Result{
		K: k, D: d,
		OriginalBits:   ts.TotalBits(),
		CompressedBits: w.Len(),
		Stream:         w,
		Dictionary:     dict,
		Code:           code,
	}, nil
}

// Decompress reconstructs totalBits bits using the result's dictionary.
// It accepts any bit source — the in-memory reader or the io.Reader-fed
// streaming one.
func Decompress(r bitstream.Source, res *Result, totalBits int) (tritvec.Vector, error) {
	if res.K < 1 || res.K > 62 {
		return tritvec.Vector{}, fmt.Errorf("selhuff: block size %d out of range", res.K)
	}
	if totalBits < 0 {
		return tritvec.Vector{}, fmt.Errorf("selhuff: negative output size %d", totalBits)
	}
	if len(res.Dictionary) < len(res.Code.Lengths) {
		return tritvec.Vector{}, fmt.Errorf("selhuff: code has %d symbols for %d dictionary words",
			len(res.Code.Lengths), len(res.Dictionary))
	}
	dec, err := huffman.NewTableDecoder(res.Code)
	if err != nil {
		return tritvec.Vector{}, err
	}
	out := tritvec.New(totalBits)
	pos := 0
	for pos < totalBits {
		flag, err := r.ReadBit()
		if err != nil {
			return tritvec.Vector{}, err
		}
		var word uint64
		if flag == 1 {
			sym, err := dec.Decode(r)
			if err != nil {
				return tritvec.Vector{}, err
			}
			word = res.Dictionary[sym]
		} else {
			word, err = r.ReadBits(res.K)
			if err != nil {
				return tritvec.Vector{}, err
			}
		}
		k := res.K
		if k > totalBits-pos {
			// Final partial block: its high bits fill the tail.
			word >>= uint(k - (totalBits - pos))
			k = totalBits - pos
		}
		out.SetWordMSB(pos, word, k)
		pos += k
	}
	return out, nil
}
