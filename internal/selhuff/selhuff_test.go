package selhuff

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitstream"
	"repro/internal/runlength"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		ts := testset.Random(16, 30, r.Float64()*0.5, r)
		res, err := Compress(ts, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), res, ts.TotalBits())
		if err != nil {
			t.Fatal(err)
		}
		if err := runlength.Verify(ts, dec); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
	}
}

func TestSkewedDataCompresses(t *testing.T) {
	// Heavily repeated blocks must land in the dictionary and compress.
	ts := testset.New(8)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		if r.Intn(10) == 0 {
			p := tritvec.New(8)
			p.FillRandom(r)
			ts.Add(p)
		} else {
			ts.Add(tritvec.MustFromString("00000000"))
		}
	}
	res, err := Compress(ts, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.RatePercent() < 50 {
		t.Fatalf("rate=%.1f%% on 90%% repeated blocks", res.RatePercent())
	}
}

func TestDictionaryLargerThanPatterns(t *testing.T) {
	ts, _ := testset.ParseStrings("0000", "0000")
	res, err := Compress(ts, 4, 100) // only one distinct block exists
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Fatalf("D=%d want clamped to 1", res.D)
	}
	dec, err := Decompress(bitstream.FromWriter(res.Stream), res, ts.TotalBits())
	if err != nil {
		t.Fatal(err)
	}
	if err := runlength.Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

func TestPartialFinalBlock(t *testing.T) {
	// totalBits not a multiple of K.
	ts, _ := testset.ParseStrings("10101") // 5 bits, K=4
	res, err := Compress(ts, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(bitstream.FromWriter(res.Stream), res, ts.TotalBits())
	if err != nil {
		t.Fatal(err)
	}
	if err := runlength.Verify(ts, dec); err != nil {
		t.Fatal(err)
	}
}

func TestBadParams(t *testing.T) {
	ts, _ := testset.ParseStrings("01")
	if _, err := Compress(ts, 0, 1); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Compress(ts, 63, 1); err == nil {
		t.Fatal("K=63 accepted")
	}
	if _, err := Compress(ts, 4, 0); err == nil {
		t.Fatal("D=0 accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts := testset.Random(r.Intn(20)+1, r.Intn(30)+1, r.Float64(), r)
		k := r.Intn(10) + 2
		d := r.Intn(8) + 1
		res, err := Compress(ts, k, d)
		if err != nil {
			return false
		}
		dec, err := Decompress(bitstream.FromWriter(res.Stream), res, ts.TotalBits())
		if err != nil {
			return false
		}
		return runlength.Verify(ts, dec) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
