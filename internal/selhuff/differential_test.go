package selhuff

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/testset"
)

// sourceOnly hides the Peeker fast path, forcing the per-bit fallback
// paths the batched decoder must stay bit-identical with.
type sourceOnly struct{ bitstream.Source }

func TestDecompressPeekerMatchesFallback(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		ts := testset.Random(1+r.Intn(48), 1+r.Intn(24), []float64{0.05, 0.3, 0.9}[trial%3], r)
		k := 1 + r.Intn(12)
		d := 1 + r.Intn(8)
		res, err := Compress(ts, k, d)
		if err != nil {
			t.Fatal(err)
		}
		total := ts.TotalBits()
		fast, err := Decompress(bitstream.FromWriter(res.Stream), res, total)
		if err != nil {
			t.Fatalf("peeker path: %v", err)
		}
		slow, err := Decompress(sourceOnly{bitstream.FromWriter(res.Stream)}, res, total)
		if err != nil {
			t.Fatalf("fallback path: %v", err)
		}
		sr := bitstream.NewStreamReader(bytes.NewReader(res.Stream.Bytes()), res.Stream.Len())
		streamed, err := Decompress(sr, res, total)
		if err != nil {
			t.Fatalf("stream path: %v", err)
		}
		if !fast.Equal(slow) || !fast.Equal(streamed) {
			t.Fatalf("k=%d d=%d decode paths disagree:\npeek   %s\nfall   %s\nstream %s",
				k, d, fast, slow, streamed)
		}
	}
}

func TestDecompressPathsAgreeOnHostileStreams(t *testing.T) {
	// Random garbage against a fixed dictionary: whatever one path does
	// (decode or error), the other must do the same.
	r := rand.New(rand.NewSource(62))
	ts := testset.Random(32, 16, 0.3, r)
	res, err := Compress(ts, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		buf := make([]byte, r.Intn(40))
		r.Read(buf)
		nbit := len(buf)*8 - r.Intn(8)
		if nbit < 0 {
			nbit = 0
		}
		total := r.Intn(300)
		fast, errFast := Decompress(bitstream.NewReader(buf, nbit), res, total)
		slow, errSlow := Decompress(sourceOnly{bitstream.NewReader(buf, nbit)}, res, total)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("total=%d: peek err=%v, fallback err=%v", total, errFast, errSlow)
		}
		if errFast == nil && !fast.Equal(slow) {
			t.Fatalf("total=%d: hostile decode disagrees\npeek %s\nfall %s", total, fast, slow)
		}
	}
}
