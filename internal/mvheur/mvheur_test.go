package mvheur

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func TestGeneralize(t *testing.T) {
	a := tritvec.MustFromString("110X01")
	b := tritvec.MustFromString("100101")
	g := generalize(a, b)
	if g.String() != "1X0X01" {
		t.Fatalf("generalize=%q", g.String())
	}
	if !g.Matches(a) || !g.Matches(b) {
		t.Fatal("generalization must match both parents")
	}
}

func TestGreedyAlwaysCovers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 20; iter++ {
		ts := testset.Random(16, 30, r.Float64(), r)
		blocks := blockcode.Partition(ts, 8)
		set := Greedy(blocks, 8, 8, DefaultOptions())
		if len(set.MVs) > 8 {
			t.Fatalf("L exceeded: %d", len(set.MVs))
		}
		cov := set.Cover(blocks)
		if !cov.OK() {
			t.Fatal("greedy set with all-U backstop failed to cover")
		}
	}
}

func TestGreedyPicksFrequentBlocks(t *testing.T) {
	// A dominant repeated block must appear as an MV (or a generalization
	// of it).
	blocks := []tritvec.Vector{}
	dom := tritvec.MustFromString("11001100")
	for i := 0; i < 50; i++ {
		blocks = append(blocks, dom.Clone())
	}
	blocks = append(blocks, tritvec.MustFromString("00110011"))
	set := Greedy(blocks, 8, 4, DefaultOptions())
	found := false
	for _, mv := range set.MVs {
		if mv.Matches(dom) && mv.CountSpecified() >= 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("dominant block not represented in greedy MV set")
	}
}

func TestMergeGeneralizes(t *testing.T) {
	// Blocks 110100 and 110000 (distance 1) should merge into 110U00,
	// the paper's introduction example of an efficient MV.
	var blocks []tritvec.Vector
	for i := 0; i < 10; i++ {
		blocks = append(blocks, tritvec.MustFromString("110100"))
		blocks = append(blocks, tritvec.MustFromString("110000"))
	}
	// Noise so L is tight and merging pays off.
	blocks = append(blocks, tritvec.MustFromString("001111"), tritvec.MustFromString("111111"))
	set := Greedy(blocks, 6, 3, DefaultOptions())
	found := false
	for _, mv := range set.MVs {
		if mv.StringU() == "110U00" {
			found = true
		}
	}
	if !found {
		mvs := ""
		for _, mv := range set.MVs {
			mvs += mv.StringU() + " "
		}
		t.Fatalf("expected merged MV 110U00, got %s", mvs)
	}
}

func TestCompressRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ts := testset.Random(16, 40, 0.3, r)
	res, err := Compress(ts, 8, 16, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	blocks := blockcode.Partition(ts, 8)
	dec, err := blockcode.Decode(bitstream.FromWriter(res.Stream), res.Set, res.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicBeats9COnStructuredData(t *testing.T) {
	// The generalized formulation alone (no EA) should already beat 9C
	// on data with repeated almost-matching blocks.
	r := rand.New(rand.NewSource(3))
	ts := testset.New(16)
	base := tritvec.MustFromString("1101001101010011")
	for i := 0; i < 100; i++ {
		p := base.Clone()
		p.Set(5, tritvec.Trit(1+r.Intn(2)))
		ts.Add(p)
	}
	nine, err := ninec.Compress(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := Rate(ts, 8, 16, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rate <= nine.RatePercent() {
		t.Fatalf("greedy %.1f%% did not beat 9C %.1f%% on structured data",
			rate, nine.RatePercent())
	}
}

func TestRateMatchesCompress(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ts := testset.Random(12, 30, 0.4, r)
	res, err := Compress(ts, 6, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rate, err := Rate(ts, 6, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if diff := rate - res.RatePercent(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Rate %.4f != Compress rate %.4f", rate, res.RatePercent())
	}
}

func TestZeroOptionDefaults(t *testing.T) {
	blocks := blockcode.Partition(mustTS(t), 4)
	set := Greedy(blocks, 4, 4, Options{}) // zero options normalized
	if len(set.MVs) == 0 {
		t.Fatal("empty MV set")
	}
}

func mustTS(t *testing.T) *testset.TestSet {
	t.Helper()
	ts, err := testset.ParseStrings("01011010", "01011010", "11110000")
	if err != nil {
		t.Fatal(err)
	}
	return ts
}
