// Package mvheur constructs matching-vector sets heuristically, without
// evolutionary search: the most frequent input blocks become matching
// vectors directly, and a merge pass generalizes near-identical vectors
// by introducing U positions. It serves two purposes: a strong non-EA
// baseline for ablation (how much of the paper's gain is the EA, how much
// the generalized problem formulation), and a seeding source for the EA's
// initial population.
package mvheur

import (
	"sort"

	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Options tunes the heuristic.
type Options struct {
	// MergeThreshold is the maximum specified-Hamming distance at which
	// two candidate vectors are merged into a generalized one (default 2).
	MergeThreshold int
	// MergePasses bounds the number of merge sweeps (default 3).
	MergePasses int
}

// DefaultOptions returns the defaults.
func DefaultOptions() Options { return Options{MergeThreshold: 2, MergePasses: 3} }

// Greedy builds an MV set of at most l vectors of length k for the given
// blocks. The last vector is always all-U, so covering cannot fail.
func Greedy(blocks []tritvec.Vector, k, l int, opt Options) *blockcode.MVSet {
	if opt.MergeThreshold <= 0 {
		opt.MergeThreshold = 2
	}
	if opt.MergePasses <= 0 {
		opt.MergePasses = 3
	}
	ms := blockcode.Dedup(blocks)
	type cand struct {
		v     tritvec.Vector
		count int
	}
	cands := make([]cand, len(ms.Blocks))
	for i := range ms.Blocks {
		// A block's X positions become U positions of the MV: the MV
		// then matches the block and all its specializations.
		cands[i] = cand{ms.Blocks[i].Clone(), ms.Counts[i]}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].count > cands[j].count })

	// Merge passes: combine near-identical high-frequency candidates by
	// generalizing conflicting positions to U. Each merge frees a slot
	// for another frequent block.
	for pass := 0; pass < opt.MergePasses; pass++ {
		merged := false
		limit := len(cands)
		if limit > 4*l {
			limit = 4 * l // only the slots that can matter
		}
		for i := 0; i < limit && !merged; i++ {
			for j := i + 1; j < limit; j++ {
				if cands[i].v.HammingSpecified(cands[j].v) > opt.MergeThreshold {
					continue
				}
				g := generalize(cands[i].v, cands[j].v)
				// Accept the merge only if it does not dissolve into
				// (almost) all-U: keep at least half the positions
				// specified.
				if g.CountSpecified()*2 < g.Len() {
					continue
				}
				cands[i] = cand{g, cands[i].count + cands[j].count}
				cands = append(cands[:j], cands[j+1:]...)
				merged = true
				break
			}
		}
		if !merged {
			break
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].count > cands[j].count })
	}

	n := l - 1
	if n > len(cands) {
		n = len(cands)
	}
	mvs := make([]tritvec.Vector, 0, n+1)
	for i := 0; i < n; i++ {
		mvs = append(mvs, cands[i].v)
	}
	mvs = append(mvs, tritvec.New(k)) // all-U backstop
	return &blockcode.MVSet{K: k, MVs: mvs}
}

// generalize returns a vector that matches everything a and b match:
// positions where both agree stay specified; all others become U.
func generalize(a, b tritvec.Vector) tritvec.Vector {
	out := tritvec.New(a.Len())
	for i := 0; i < a.Len(); i++ {
		va, vb := a.Get(i), b.Get(i)
		if va == vb && va != tritvec.X {
			out.Set(i, va)
		}
	}
	return out
}

// Compress runs the heuristic end to end: build the MV set, cover,
// Huffman-encode, emit the verified stream.
func Compress(ts *testset.TestSet, k, l int, opt Options) (*blockcode.Result, error) {
	blocks := blockcode.Partition(ts, k)
	set := Greedy(blocks, k, l, opt)
	res, err := set.BuildHuffman(blocks, ts.TotalBits())
	if err != nil {
		return nil, err
	}
	if _, err := blockcode.Encode(blocks, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Rate is a sizing-only variant used in fitness-style comparisons.
func Rate(ts *testset.TestSet, k, l int, opt Options) (float64, error) {
	blocks := blockcode.Partition(ts, k)
	set := Greedy(blocks, k, l, opt)
	ms := blockcode.Dedup(blocks)
	cov := set.CoverMultiset(ms)
	if !cov.OK() {
		return 0, errUncovered
	}
	code, err := huffman.Build(cov.Freqs)
	if err != nil {
		return 0, err
	}
	return blockcode.Rate(ts.TotalBits(), set.CompressedBits(cov, code.Lengths)), nil
}

var errUncovered = errorString("mvheur: uncovered blocks despite all-U backstop")

type errorString string

func (e errorString) Error() string { return string(e) }
