package decoder

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/tritvec"
)

// WriteVerilog emits a synthesizable RTL description of the decoder: the
// prefix-tree walker as a state machine over the codeword trie, the
// matching-vector ROM, and the fill-bit shifter. One compressed bit is
// consumed per clock while in the WALK or FILL states; decoded blocks are
// presented K bits parallel on `block` with a one-cycle `valid` strobe.
//
// The module is self-contained (no external memories) and is the concrete
// artifact behind the paper's "compact on-chip decoders" claim; its table
// sizes match the Area() model.
func (f *FSM) WriteVerilog(w io.Writer, moduleName string) error {
	bw := bufio.NewWriter(w)
	k := f.set.K
	nStates := f.trie.NumNodes()
	stateBits := bitsFor(nStates + 1)
	mvBits := bitsFor(len(f.set.MVs))
	maxU := 0
	for _, u := range f.uPos {
		if len(u) > maxU {
			maxU = len(u)
		}
	}
	cntBits := bitsFor(maxU + 1)
	if cntBits == 0 {
		cntBits = 1
	}

	fmt.Fprintf(bw, "// Auto-generated test-data decompressor (K=%d, %d MVs, %d trie states).\n", k, len(f.set.MVs), nStates)
	fmt.Fprintf(bw, "// Interface: assert bit_in_valid with one compressed bit per cycle;\n")
	fmt.Fprintf(bw, "// block[%d:0] holds a decoded input block when valid is high.\n", k-1)
	fmt.Fprintf(bw, "module %s (\n", moduleName)
	fmt.Fprintf(bw, "  input  wire        clk,\n")
	fmt.Fprintf(bw, "  input  wire        rst,\n")
	fmt.Fprintf(bw, "  input  wire        bit_in,\n")
	fmt.Fprintf(bw, "  input  wire        bit_in_valid,\n")
	fmt.Fprintf(bw, "  output reg  [%d:0] block,\n", k-1)
	fmt.Fprintf(bw, "  output reg         valid\n")
	fmt.Fprintf(bw, ");\n\n")
	fmt.Fprintf(bw, "  localparam WALK = 1'b0, FILL = 1'b1;\n")
	fmt.Fprintf(bw, "  reg        phase;\n")
	fmt.Fprintf(bw, "  reg [%d:0] state;\n", stateBits-1)
	fmt.Fprintf(bw, "  reg [%d:0] mv;\n", mvBits-1)
	fmt.Fprintf(bw, "  reg [%d:0] fills_left;\n", cntBits-1)
	fmt.Fprintf(bw, "  reg [%d:0] fill_idx;\n\n", cntBits-1)

	// Trie transition function.
	fmt.Fprintf(bw, "  // Codeword trie: next state or MV hit per (state, bit).\n")
	fmt.Fprintf(bw, "  reg [%d:0] next_state;\n", stateBits-1)
	fmt.Fprintf(bw, "  reg        hit;\n")
	fmt.Fprintf(bw, "  reg [%d:0] hit_mv;\n", mvBits-1)
	fmt.Fprintf(bw, "  always @(*) begin\n")
	fmt.Fprintf(bw, "    next_state = %d'd0; hit = 1'b0; hit_mv = %d'd0;\n", stateBits, mvBits)
	fmt.Fprintf(bw, "    case ({state, bit_in})\n")
	for _, e := range f.trie.Edges() {
		if e.Leaf {
			fmt.Fprintf(bw, "      {%d'd%d, 1'b%d}: begin hit = 1'b1; hit_mv = %d'd%d; end\n",
				stateBits, e.From, e.Bit, mvBits, e.Symbol)
		} else {
			fmt.Fprintf(bw, "      {%d'd%d, 1'b%d}: next_state = %d'd%d;\n",
				stateBits, e.From, e.Bit, stateBits, e.To)
		}
	}
	fmt.Fprintf(bw, "      default: ;\n")
	fmt.Fprintf(bw, "    endcase\n")
	fmt.Fprintf(bw, "  end\n\n")

	// MV ROM: specified bits, U mask, fill counts and U position tables.
	fmt.Fprintf(bw, "  // Matching-vector ROM.\n")
	fmt.Fprintf(bw, "  reg [%d:0] mv_bits;\n", k-1)
	fmt.Fprintf(bw, "  reg [%d:0] mv_ucount;\n", cntBits-1)
	fmt.Fprintf(bw, "  always @(*) begin\n")
	fmt.Fprintf(bw, "    case (mv_sel)\n")
	for i, v := range f.set.MVs {
		var bits uint64
		for j := 0; j < k; j++ {
			if v.Get(j) == tritvec.One {
				bits |= 1 << uint(k-1-j)
			}
		}
		fmt.Fprintf(bw, "      %d'd%d: begin mv_bits = %d'b%0*b; mv_ucount = %d'd%d; end\n",
			mvBits, i, k, k, bits, cntBits, len(f.uPos[i]))
	}
	fmt.Fprintf(bw, "      default: begin mv_bits = %d'd0; mv_ucount = %d'd0; end\n", k, cntBits)
	fmt.Fprintf(bw, "    endcase\n")
	fmt.Fprintf(bw, "  end\n")
	fmt.Fprintf(bw, "  wire [%d:0] mv_sel = hit ? hit_mv : mv;\n\n", mvBits-1)

	// U-position table: for (mv, fill_idx) -> bit position within block.
	posBits := bitsFor(k)
	fmt.Fprintf(bw, "  reg [%d:0] upos;\n", posBits-1)
	fmt.Fprintf(bw, "  always @(*) begin\n")
	fmt.Fprintf(bw, "    case ({mv, fill_idx})\n")
	for i, ups := range f.uPos {
		for idx, pos := range ups {
			fmt.Fprintf(bw, "      {%d'd%d, %d'd%d}: upos = %d'd%d;\n",
				mvBits, i, cntBits, idx, posBits, k-1-pos)
		}
	}
	fmt.Fprintf(bw, "      default: upos = %d'd0;\n", posBits)
	fmt.Fprintf(bw, "    endcase\n")
	fmt.Fprintf(bw, "  end\n\n")

	// Sequential logic.
	fmt.Fprintf(bw, "  always @(posedge clk) begin\n")
	fmt.Fprintf(bw, "    valid <= 1'b0;\n")
	fmt.Fprintf(bw, "    if (rst) begin\n")
	fmt.Fprintf(bw, "      phase <= WALK; state <= %d'd0; fills_left <= %d'd0; fill_idx <= %d'd0;\n", stateBits, cntBits, cntBits)
	fmt.Fprintf(bw, "    end else if (bit_in_valid) begin\n")
	fmt.Fprintf(bw, "      if (phase == WALK) begin\n")
	fmt.Fprintf(bw, "        if (hit) begin\n")
	fmt.Fprintf(bw, "          block <= mv_bits; mv <= hit_mv; state <= %d'd0;\n", stateBits)
	fmt.Fprintf(bw, "          if (mv_ucount == %d'd0) valid <= 1'b1;\n", cntBits)
	fmt.Fprintf(bw, "          else begin phase <= FILL; fills_left <= mv_ucount; fill_idx <= %d'd0; end\n", cntBits)
	fmt.Fprintf(bw, "        end else state <= next_state;\n")
	fmt.Fprintf(bw, "      end else begin // FILL\n")
	fmt.Fprintf(bw, "        block[upos] <= bit_in;\n")
	fmt.Fprintf(bw, "        fill_idx <= fill_idx + %d'd1;\n", cntBits)
	fmt.Fprintf(bw, "        if (fills_left == %d'd1) begin phase <= WALK; valid <= 1'b1; end\n", cntBits)
	fmt.Fprintf(bw, "        fills_left <= fills_left - %d'd1;\n", cntBits)
	fmt.Fprintf(bw, "      end\n")
	fmt.Fprintf(bw, "    end\n")
	fmt.Fprintf(bw, "  end\n\n")
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// bitsFor returns the number of bits needed to represent values 0..n-1
// (minimum 1).
func bitsFor(n int) int {
	b := 1
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// NOTE on the hit-cycle block load: when a codeword completes (hit), the
// decoded block register is loaded from the MV ROM in the same cycle and
// the fill phase then overwrites the U positions bit by bit. The WALK
// phase consumes exactly |C(v)| cycles and FILL exactly NU(v) cycles, so
// the module's cycle count equals the Stats.InputBits component of the
// software model.
