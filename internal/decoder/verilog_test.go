package decoder

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteVerilogStructure(t *testing.T) {
	res, _ := compressed(t, 11)
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fsm.WriteVerilog(&buf, "tcomp_decoder"); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module tcomp_decoder",
		"endmodule",
		"input  wire        clk",
		"output reg         valid",
		"case ({state, bit_in})",
		"mv_bits",
		"always @(posedge clk)",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog output missing %q", want)
		}
	}
	// One trie case line per edge.
	edgeLines := strings.Count(v, "1'b0}:") + strings.Count(v, "1'b1}:")
	if edgeLines < res.Code.NumUsed() {
		t.Fatalf("too few trie transitions: %d", edgeLines)
	}
	// Balanced begin/end pairs is too strict for generated RTL; at least
	// check module boundaries are single.
	if strings.Count(v, "module ") != 1 || strings.Count(v, "endmodule") != 1 {
		t.Fatal("module structure broken")
	}
}

func TestWriteVerilogAllMVsPresent(t *testing.T) {
	res, _ := compressed(t, 12)
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fsm.WriteVerilog(&buf, "dec"); err != nil {
		t.Fatal(err)
	}
	// Every MV index must appear in the ROM case statement.
	v := buf.String()
	if strings.Count(v, "mv_bits = ") < len(res.Set.MVs) {
		t.Fatalf("MV ROM rows missing: %d < %d",
			strings.Count(v, "mv_bits = "), len(res.Set.MVs))
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, c := range cases {
		if got := bitsFor(c.n); got != c.want {
			t.Errorf("bitsFor(%d)=%d want %d", c.n, got, c.want)
		}
	}
}
