package decoder

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/ninec"
	"repro/internal/testset"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden Verilog file from the current emitter")

// goldenFSM builds a fully deterministic FSM: a hand-written test set
// (no RNG anywhere) through the 9C-HC covering. Any change to the
// emitted RTL shows up as a golden diff, reviewed like source.
func goldenFSM(t *testing.T) *FSM {
	t.Helper()
	ts, err := testset.ParseStrings(
		"00001111",
		"0000XXXX",
		"11110000",
		"XX00XX11",
		"01010101",
		"00000000",
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ninec.CompressHC(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	return fsm
}

// TestWriteVerilogGolden pins the emitted module byte-for-byte against
// testdata/golden_decoder.v. Run with -update to accept an intentional
// emitter change.
func TestWriteVerilogGolden(t *testing.T) {
	fsm := goldenFSM(t)
	var buf bytes.Buffer
	if err := fsm.WriteVerilog(&buf, "tcomp_flow_decoder"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_decoder.v")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("emitted Verilog differs from %s (%d vs %d bytes); run with -update if the change is intentional",
			path, buf.Len(), len(want))
	}
}

// TestWriteVerilogGoldenStructure checks the golden module's shape
// against the FSM that emitted it: exactly the five ports, one state
// case line per Huffman trie state×bit edge reachable in the ROM, and
// a module that opens and closes exactly once.
func TestWriteVerilogGoldenStructure(t *testing.T) {
	fsm := goldenFSM(t)
	var buf bytes.Buffer
	if err := fsm.WriteVerilog(&buf, "tcomp_flow_decoder"); err != nil {
		t.Fatal(err)
	}
	v := buf.String()

	ports := []string{"clk", "rst", "bit_in", "bit_in_valid", "block", "valid"}
	for _, p := range ports {
		re := regexp.MustCompile(`(?m)^\s*(input|output)\s+(wire|reg)\s+.*\b` + p + `\b`)
		if !re.MatchString(v) {
			t.Errorf("port %q not declared", p)
		}
	}
	if strings.Count(v, "module ") != 1 || strings.Count(v, "endmodule") != 1 {
		t.Fatal("module structure broken")
	}

	// The state register must be wide enough for the FSM's state count,
	// and every trie edge must have its case line.
	area := fsm.Area()
	if area.States <= 0 {
		t.Fatalf("degenerate area %+v", area)
	}
	if want := fmt.Sprintf("[%d:0] state", bitsFor(area.States)-1); !strings.Contains(v, want) {
		t.Errorf("state register %q not found", want)
	}
	edges := strings.Count(v, "1'b0}:") + strings.Count(v, "1'b1}:")
	if edges == 0 || edges > 2*area.States {
		t.Errorf("%d trie case lines for %d states", edges, area.States)
	}
}
