// Auto-generated test-data decompressor (K=4, 9 MVs, 2 trie states).
// Interface: assert bit_in_valid with one compressed bit per cycle;
// block[3:0] holds a decoded input block when valid is high.
module tcomp_flow_decoder (
  input  wire        clk,
  input  wire        rst,
  input  wire        bit_in,
  input  wire        bit_in_valid,
  output reg  [3:0] block,
  output reg         valid
);

  localparam WALK = 1'b0, FILL = 1'b1;
  reg        phase;
  reg [1:0] state;
  reg [3:0] mv;
  reg [2:0] fills_left;
  reg [2:0] fill_idx;

  // Codeword trie: next state or MV hit per (state, bit).
  reg [1:0] next_state;
  reg        hit;
  reg [3:0] hit_mv;
  always @(*) begin
    next_state = 2'd0; hit = 1'b0; hit_mv = 4'd0;
    case ({state, bit_in})
      {2'd0, 1'b0}: begin hit = 1'b1; hit_mv = 4'd0; end
      {2'd0, 1'b1}: next_state = 2'd1;
      {2'd1, 1'b0}: begin hit = 1'b1; hit_mv = 4'd1; end
      {2'd1, 1'b1}: begin hit = 1'b1; hit_mv = 4'd8; end
      default: ;
    endcase
  end

  // Matching-vector ROM.
  reg [3:0] mv_bits;
  reg [2:0] mv_ucount;
  always @(*) begin
    case (mv_sel)
      4'd0: begin mv_bits = 4'b0000; mv_ucount = 3'd0; end
      4'd1: begin mv_bits = 4'b1111; mv_ucount = 3'd0; end
      4'd2: begin mv_bits = 4'b0011; mv_ucount = 3'd0; end
      4'd3: begin mv_bits = 4'b1100; mv_ucount = 3'd0; end
      4'd4: begin mv_bits = 4'b1100; mv_ucount = 3'd2; end
      4'd5: begin mv_bits = 4'b0011; mv_ucount = 3'd2; end
      4'd6: begin mv_bits = 4'b0000; mv_ucount = 3'd2; end
      4'd7: begin mv_bits = 4'b0000; mv_ucount = 3'd2; end
      4'd8: begin mv_bits = 4'b0000; mv_ucount = 3'd4; end
      default: begin mv_bits = 4'd0; mv_ucount = 3'd0; end
    endcase
  end
  wire [3:0] mv_sel = hit ? hit_mv : mv;

  reg [1:0] upos;
  always @(*) begin
    case ({mv, fill_idx})
      {4'd4, 3'd0}: upos = 2'd1;
      {4'd4, 3'd1}: upos = 2'd0;
      {4'd5, 3'd0}: upos = 2'd3;
      {4'd5, 3'd1}: upos = 2'd2;
      {4'd6, 3'd0}: upos = 2'd1;
      {4'd6, 3'd1}: upos = 2'd0;
      {4'd7, 3'd0}: upos = 2'd3;
      {4'd7, 3'd1}: upos = 2'd2;
      {4'd8, 3'd0}: upos = 2'd3;
      {4'd8, 3'd1}: upos = 2'd2;
      {4'd8, 3'd2}: upos = 2'd1;
      {4'd8, 3'd3}: upos = 2'd0;
      default: upos = 2'd0;
    endcase
  end

  always @(posedge clk) begin
    valid <= 1'b0;
    if (rst) begin
      phase <= WALK; state <= 2'd0; fills_left <= 3'd0; fill_idx <= 3'd0;
    end else if (bit_in_valid) begin
      if (phase == WALK) begin
        if (hit) begin
          block <= mv_bits; mv <= hit_mv; state <= 2'd0;
          if (mv_ucount == 3'd0) valid <= 1'b1;
          else begin phase <= FILL; fills_left <= mv_ucount; fill_idx <= 3'd0; end
        end else state <= next_state;
      end else begin // FILL
        block[upos] <= bit_in;
        fill_idx <= fill_idx + 3'd1;
        if (fills_left == 3'd1) begin phase <= WALK; valid <= 1'b1; end
        fills_left <= fills_left - 3'd1;
      end
    end
  end

endmodule
