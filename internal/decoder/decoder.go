// Package decoder models the on-chip decompression hardware implied by
// the paper: a finite-state machine that walks the prefix-code tree bit
// by bit and, on reaching a codeword leaf, emits the matching vector's
// specified bits while shifting the transmitted fill bits into the U
// positions. The package provides cycle-accurate decoding, an area
// estimate, and the reconfigurable-decoder variant suggested in the
// paper's conclusions (codeword/MV tables are loadable, so a test-set
// change needs no decoder redesign).
package decoder

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/huffman"
	"repro/internal/tritvec"
)

// FSM is the synthesized decoder.
type FSM struct {
	set  *blockcode.MVSet
	code *huffman.Code
	trie *huffman.Decoder

	// uPos[i] caches the U positions of MV i.
	uPos [][]int
}

// New synthesizes a decoder FSM for an MV set and its prefix code.
func New(set *blockcode.MVSet, code *huffman.Code) (*FSM, error) {
	if len(code.Lengths) != len(set.MVs) {
		return nil, fmt.Errorf("decoder: code has %d symbols, MV set has %d", len(code.Lengths), len(set.MVs))
	}
	trie, err := huffman.NewDecoder(code)
	if err != nil {
		return nil, err
	}
	f := &FSM{set: set, code: code, trie: trie, uPos: make([][]int, len(set.MVs))}
	for i, mv := range set.MVs {
		f.uPos[i] = mv.XPositions()
	}
	return f, nil
}

// Stats reports a decode run.
type Stats struct {
	Blocks    int
	InputBits int
	// Cycles assumes one cycle per consumed input bit plus K cycles to
	// shift each decoded block into the scan chain.
	Cycles int
}

// Run decodes nblocks from any bit source — the in-memory reader or the
// io.Reader-fed streaming one, mirroring the hardware's bit-serial input —
// returning the fully specified blocks and cycle statistics. Truncation
// errors wrap bitstream.ErrEOS.
func (f *FSM) Run(r bitstream.Source, nblocks int) ([]tritvec.Vector, Stats, error) {
	var st Stats
	if nblocks < 0 {
		return nil, st, fmt.Errorf("decoder: negative block count %d", nblocks)
	}
	// Bounded capacity: nblocks can derive from a hostile header (see
	// blockcode.Decode); growth past the cap costs real input bits.
	out := make([]tritvec.Vector, 0, min(nblocks, 1<<16))
	// The FSM counts consumed bits itself (the hardware has no notion of
	// buffer position), so any Source works.
	readBit := func() (uint, error) {
		bit, err := r.ReadBit()
		if err == nil {
			st.InputBits++
		}
		return bit, err
	}
	for b := 0; b < nblocks; b++ {
		sym, err := f.trie.Decode(readBit)
		if err != nil {
			return nil, st, fmt.Errorf("decoder: block %d: %w", b, err)
		}
		if sym < 0 || sym >= len(f.set.MVs) {
			return nil, st, fmt.Errorf("decoder: block %d decoded invalid MV index %d", b, sym)
		}
		blk := f.set.MVs[sym].Clone()
		for _, pos := range f.uPos[sym] {
			bit, err := readBit()
			if err != nil {
				return nil, st, fmt.Errorf("decoder: block %d fill: %w", b, err)
			}
			if bit == 1 {
				blk.Set(pos, tritvec.One)
			} else {
				blk.Set(pos, tritvec.Zero)
			}
		}
		out = append(out, blk)
		st.Cycles += f.set.K // shift-out
	}
	st.Blocks = nblocks
	st.Cycles += st.InputBits // one cycle per input bit
	return out, st, nil
}

// Area is a first-order hardware cost model.
type Area struct {
	// States is the number of FSM states (prefix-tree internal nodes
	// plus one fill-shift state).
	States int
	// MVTableBits is the matching-vector ROM: K positions × 2 bits per
	// trit × number of used MVs.
	MVTableBits int
	// GateEquivalents is a rough NAND2-equivalent estimate: 6 GE per
	// state flop+logic, 0.25 GE per ROM bit.
	GateEquivalents float64
}

// Area estimates the decoder hardware cost.
func (f *FSM) Area() Area {
	used := f.code.NumUsed()
	a := Area{
		States:      f.trie.NumNodes() + 1,
		MVTableBits: used * f.set.K * 2,
	}
	a.GateEquivalents = 6*float64(a.States) + 0.25*float64(a.MVTableBits)
	return a
}

// Reconfigurable is a decoder whose tables can be reloaded (paper §5: "a
// reconfigurable decoder, into which the codeword/matching vector
// information can be loaded"). Capacity is fixed at construction; Load
// rejects configurations that exceed it.
type Reconfigurable struct {
	maxMVs    int
	maxK      int
	maxStates int
	fsm       *FSM
}

// NewReconfigurable sizes hardware for at most maxMVs matching vectors of
// length up to maxK, with a prefix-tree budget of maxStates states.
func NewReconfigurable(maxMVs, maxK, maxStates int) *Reconfigurable {
	return &Reconfigurable{maxMVs: maxMVs, maxK: maxK, maxStates: maxStates}
}

// Load programs the decoder with a new MV set and code.
func (r *Reconfigurable) Load(set *blockcode.MVSet, code *huffman.Code) error {
	if len(set.MVs) > r.maxMVs {
		return fmt.Errorf("decoder: %d MVs exceed capacity %d", len(set.MVs), r.maxMVs)
	}
	if set.K > r.maxK {
		return fmt.Errorf("decoder: K=%d exceeds capacity %d", set.K, r.maxK)
	}
	fsm, err := New(set, code)
	if err != nil {
		return err
	}
	if fsm.trie.NumNodes() > r.maxStates {
		return fmt.Errorf("decoder: %d states exceed capacity %d", fsm.trie.NumNodes(), r.maxStates)
	}
	r.fsm = fsm
	return nil
}

// Run decodes with the currently loaded configuration.
func (r *Reconfigurable) Run(rd bitstream.Source, nblocks int) ([]tritvec.Vector, Stats, error) {
	if r.fsm == nil {
		return nil, Stats{}, fmt.Errorf("decoder: no configuration loaded")
	}
	return r.fsm.Run(rd, nblocks)
}

// Area returns the cost of the provisioned (maximum) configuration.
func (r *Reconfigurable) Area() Area {
	a := Area{
		States:      r.maxStates + 1,
		MVTableBits: r.maxMVs * r.maxK * 2,
	}
	a.GateEquivalents = 6*float64(a.States) + 0.25*float64(a.MVTableBits)
	return a
}
