package decoder

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

func compressed(t *testing.T, seed int64) (*blockcode.Result, []tritvec.Vector) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	ts := testset.Random(16, 40, 0.3, r)
	res, err := ninec.CompressHC(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	return res, blockcode.Partition(ts, 8)
}

func TestFSMMatchesSoftwareDecode(t *testing.T) {
	res, blocks := compressed(t, 1)
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	hw, st, err := fsm.Run(bitstream.FromWriter(res.Stream), len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := blockcode.Decode(bitstream.FromWriter(res.Stream), res.Set, res.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	for i := range hw {
		if !hw[i].Equal(sw[i]) {
			t.Fatalf("block %d: hardware %s vs software %s", i, hw[i], sw[i])
		}
	}
	if err := blockcode.Verify(blocks, hw); err != nil {
		t.Fatal(err)
	}
	if st.InputBits != res.CompressedBits {
		t.Fatalf("consumed %d bits, stream has %d", st.InputBits, res.CompressedBits)
	}
	if st.Blocks != len(blocks) {
		t.Fatal("block count mismatch")
	}
}

func TestCycleModel(t *testing.T) {
	res, blocks := compressed(t, 2)
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := fsm.Run(bitstream.FromWriter(res.Stream), len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	want := st.InputBits + len(blocks)*res.Set.K
	if st.Cycles != want {
		t.Fatalf("cycles=%d want %d", st.Cycles, want)
	}
}

func TestAreaModel(t *testing.T) {
	res, _ := compressed(t, 3)
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	a := fsm.Area()
	if a.States <= 0 || a.MVTableBits <= 0 || a.GateEquivalents <= 0 {
		t.Fatalf("degenerate area %+v", a)
	}
	// More MVs => more table bits.
	if a.MVTableBits != res.Code.NumUsed()*res.Set.K*2 {
		t.Fatalf("table bits %d", a.MVTableBits)
	}
}

func TestNewValidation(t *testing.T) {
	res, _ := compressed(t, 4)
	short := &blockcode.MVSet{K: res.Set.K, MVs: res.Set.MVs[:3]}
	if _, err := New(short, res.Code); err == nil {
		t.Fatal("symbol/MV count mismatch accepted")
	}
}

func TestRunErrorOnTruncatedStream(t *testing.T) {
	res, blocks := compressed(t, 5)
	fsm, err := New(res.Set, res.Code)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the stream to half.
	buf := res.Stream.Bytes()
	r := bitstream.NewReader(buf, res.Stream.Len()/2)
	if _, _, err := fsm.Run(r, len(blocks)); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestReconfigurable(t *testing.T) {
	res1, blocks1 := compressed(t, 6)
	res2, blocks2 := compressed(t, 7)
	rc := NewReconfigurable(16, 12, 64)
	if err := rc.Load(res1.Set, res1.Code); err != nil {
		t.Fatal(err)
	}
	out1, _, err := rc.Run(bitstream.FromWriter(res1.Stream), len(blocks1))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks1, out1); err != nil {
		t.Fatal(err)
	}
	// Reload with a different test set's tables — no redesign needed.
	if err := rc.Load(res2.Set, res2.Code); err != nil {
		t.Fatal(err)
	}
	out2, _, err := rc.Run(bitstream.FromWriter(res2.Stream), len(blocks2))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks2, out2); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigurableCapacity(t *testing.T) {
	res, _ := compressed(t, 8)
	if err := NewReconfigurable(2, 12, 64).Load(res.Set, res.Code); err == nil {
		t.Fatal("MV capacity exceeded but accepted")
	}
	if err := NewReconfigurable(16, 4, 64).Load(res.Set, res.Code); err == nil {
		t.Fatal("K capacity exceeded but accepted")
	}
	if err := NewReconfigurable(16, 12, 1).Load(res.Set, res.Code); err == nil {
		t.Fatal("state capacity exceeded but accepted")
	}
	rc := NewReconfigurable(16, 12, 64)
	if _, _, err := rc.Run(nil, 0); err == nil {
		t.Fatal("run without configuration accepted")
	}
	if rc.Area().GateEquivalents <= 0 {
		t.Fatal("area of provisioned decoder must be positive")
	}
}
