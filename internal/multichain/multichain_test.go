package multichain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/testset"
)

func quickParams(seed int64) core.Params {
	p := core.DefaultParams(seed)
	p.K = 8
	p.L = 16
	p.Runs = 1
	p.EA.MaxGenerations = 25
	p.EA.MaxNoImprove = 10
	return p
}

func TestSplitWidths(t *testing.T) {
	ts := testset.Random(10, 5, 0.5, rand.New(rand.NewSource(1)))
	for _, a := range []Assignment{Interleaved, Contiguous} {
		chains, err := Split(ts, 3, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(chains) != 3 {
			t.Fatalf("chains=%d", len(chains))
		}
		total := 0
		for _, ch := range chains {
			total += ch.Width
			if ch.NumPatterns() != 5 {
				t.Fatal("pattern count changed")
			}
		}
		if total != 10 {
			t.Fatalf("widths sum to %d", total)
		}
		// Balanced: widths differ by at most 1.
		if chains[0].Width-chains[2].Width > 1 {
			t.Fatalf("unbalanced: %d vs %d", chains[0].Width, chains[2].Width)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	ts := testset.Random(4, 2, 0.5, rand.New(rand.NewSource(2)))
	if _, err := Split(ts, 0, Interleaved); err == nil {
		t.Fatal("0 chains accepted")
	}
	if _, err := Split(ts, 5, Interleaved); err == nil {
		t.Fatal("more chains than inputs accepted")
	}
}

func TestColumnMappingExact(t *testing.T) {
	ts, err := testset.ParseStrings("01X10")
	if err != nil {
		t.Fatal(err)
	}
	chains, err := Split(ts, 2, Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved: chain0 gets cols 0,2,4 -> "0X0"; chain1 cols 1,3 -> "11".
	if chains[0].Patterns[0].String() != "0X0" {
		t.Fatalf("chain0=%q", chains[0].Patterns[0].String())
	}
	if chains[1].Patterns[0].String() != "11" {
		t.Fatalf("chain1=%q", chains[1].Patterns[0].String())
	}
	chains, err = Split(ts, 2, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous: chain0 cols 0,1,2 -> "01X"; chain1 cols 3,4 -> "10".
	if chains[0].Patterns[0].String() != "01X" || chains[1].Patterns[0].String() != "10" {
		t.Fatalf("contiguous wrong: %q %q",
			chains[0].Patterns[0].String(), chains[1].Patterns[0].String())
	}
}

func TestQuickSplitMergeIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := r.Intn(20) + 2
		n := r.Intn(w) + 1
		a := Assignment(r.Intn(2))
		ts := testset.Random(w, r.Intn(10)+1, r.Float64(), r)
		return VerifyRoundTrip(ts, n, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeValidation(t *testing.T) {
	ts := testset.Random(6, 4, 0.5, rand.New(rand.NewSource(3)))
	chains, err := Split(ts, 2, Interleaved)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(nil, 6, Interleaved); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge(chains, 7, Interleaved); err == nil {
		t.Fatal("wrong width accepted")
	}
	bad := []*testset.TestSet{chains[0], testset.New(chains[1].Width)}
	if _, err := Merge(bad, 6, Interleaved); err == nil {
		t.Fatal("ragged pattern counts accepted")
	}
}

func TestCompressPerChain(t *testing.T) {
	ts := testset.Random(16, 40, 0.25, rand.New(rand.NewSource(4)))
	sum, err := CompressPerChain(ts, 2, Interleaved, quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Chains) != 2 || sum.Decoders != 2 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.OriginalBits != ts.TotalBits() {
		t.Fatal("original size wrong")
	}
	if sum.CompressedBits <= 0 {
		t.Fatal("no compressed bits accounted")
	}
	if sum.RatePercent() < -100 {
		t.Fatal("absurd rate")
	}
}

func TestCompressShared(t *testing.T) {
	ts := testset.Random(16, 40, 0.25, rand.New(rand.NewSource(5)))
	sum, err := CompressShared(ts, 2, Interleaved, quickParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Decoders != 1 {
		t.Fatal("shared design must use one decoder")
	}
	if len(sum.Chains) != 1 {
		t.Fatal("shared design has one aggregate result")
	}
}

func TestSummaryRateEmpty(t *testing.T) {
	if (&Summary{}).RatePercent() != 0 {
		t.Fatal("empty summary rate")
	}
}
