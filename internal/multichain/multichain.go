// Package multichain implements the paper's stated direction for further
// research (Section 5): applying code-based EA compression in a multiple
// scan chain environment. The circuit's inputs are distributed over N
// scan chains; each chain sees its own test-data substring. Two designs
// are provided:
//
//   - PerChain: every chain gets its own EA-optimized MV set and decoder
//     (maximum compression, N small decoders);
//   - Shared: one MV set is optimized for the concatenation of all chain
//     substrings and a single decoder is time-multiplexed across chains
//     (minimum hardware).
package multichain

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Assignment selects how inputs map to chains.
type Assignment int

// Input-to-chain assignment policies.
const (
	// Interleaved assigns input j to chain j mod N (balanced lengths,
	// the usual stitching of scan cells).
	Interleaved Assignment = iota
	// Contiguous assigns consecutive input ranges to chains.
	Contiguous
)

// Split distributes a test set over n chains. Chain widths differ by at
// most one input.
func Split(ts *testset.TestSet, n int, a Assignment) ([]*testset.TestSet, error) {
	if n < 1 || n > ts.Width {
		return nil, fmt.Errorf("multichain: cannot split width %d into %d chains", ts.Width, n)
	}
	cols := chainColumns(ts.Width, n, a)
	chains := make([]*testset.TestSet, n)
	for c := range chains {
		chains[c] = testset.New(len(cols[c]))
	}
	for _, p := range ts.Patterns {
		for c, cc := range cols {
			sub := tritvec.New(len(cc))
			for i, col := range cc {
				sub.Set(i, p.Get(col))
			}
			chains[c].Add(sub)
		}
	}
	return chains, nil
}

// Merge reassembles the original test set from chain substrings.
func Merge(chains []*testset.TestSet, width int, a Assignment) (*testset.TestSet, error) {
	if len(chains) == 0 {
		return nil, fmt.Errorf("multichain: no chains")
	}
	cols := chainColumns(width, len(chains), a)
	patterns := chains[0].NumPatterns()
	for c, ch := range chains {
		if ch.NumPatterns() != patterns {
			return nil, fmt.Errorf("multichain: chain %d has %d patterns, want %d", c, ch.NumPatterns(), patterns)
		}
		if ch.Width != len(cols[c]) {
			return nil, fmt.Errorf("multichain: chain %d width %d, want %d", c, ch.Width, len(cols[c]))
		}
	}
	out := testset.New(width)
	for p := 0; p < patterns; p++ {
		v := tritvec.New(width)
		for c, cc := range cols {
			for i, col := range cc {
				v.Set(col, chains[c].Patterns[p].Get(i))
			}
		}
		out.Add(v)
	}
	return out, nil
}

// chainColumns returns, per chain, the original column indices it holds.
func chainColumns(width, n int, a Assignment) [][]int {
	cols := make([][]int, n)
	if a == Interleaved {
		for j := 0; j < width; j++ {
			c := j % n
			cols[c] = append(cols[c], j)
		}
		return cols
	}
	base := width / n
	extra := width % n
	j := 0
	for c := 0; c < n; c++ {
		k := base
		if c < extra {
			k++
		}
		for i := 0; i < k; i++ {
			cols[c] = append(cols[c], j)
			j++
		}
	}
	return cols
}

// ChainResult is one chain's compression outcome.
type ChainResult struct {
	Chain  int
	Result *core.Result
}

// Summary aggregates a multi-chain run.
type Summary struct {
	Chains         []ChainResult
	OriginalBits   int
	CompressedBits int
	// Decoders is the number of distinct decoder configurations needed.
	Decoders int
}

// RatePercent returns the aggregate compression rate.
func (s *Summary) RatePercent() float64 {
	if s.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(s.OriginalBits-s.CompressedBits) / float64(s.OriginalBits)
}

// CompressPerChain optimizes an MV set per chain.
func CompressPerChain(ts *testset.TestSet, n int, a Assignment, p core.Params) (*Summary, error) {
	chains, err := Split(ts, n, a)
	if err != nil {
		return nil, err
	}
	sum := &Summary{OriginalBits: ts.TotalBits(), Decoders: n}
	for c, ch := range chains {
		pc := p
		pc.EA.Seed = p.EA.Seed + int64(c)*104729
		res, err := core.Compress(ch, pc)
		if err != nil {
			return nil, fmt.Errorf("multichain: chain %d: %v", c, err)
		}
		sum.Chains = append(sum.Chains, ChainResult{Chain: c, Result: res})
		sum.CompressedBits += res.Final.CompressedBits
	}
	return sum, nil
}

// CompressShared optimizes a single MV set over the concatenated chain
// substrings (one reconfigurable decoder serves all chains).
func CompressShared(ts *testset.TestSet, n int, a Assignment, p core.Params) (*Summary, error) {
	chains, err := Split(ts, n, a)
	if err != nil {
		return nil, err
	}
	// Concatenate all chain strings into one test set of width 1 blocks?
	// Simpler: compress the concatenation pattern-stream per chain but
	// with a shared MV set: emulate by building a combined test set whose
	// patterns are the chain substrings padded to a common width.
	maxW := 0
	for _, ch := range chains {
		if ch.Width > maxW {
			maxW = ch.Width
		}
	}
	combined := testset.New(maxW)
	for _, ch := range chains {
		for _, pat := range ch.Patterns {
			v := tritvec.New(maxW)
			v.CopyFrom(pat, 0)
			combined.Add(v)
		}
	}
	res, err := core.Compress(combined, p)
	if err != nil {
		return nil, err
	}
	sum := &Summary{
		OriginalBits: ts.TotalBits(),
		// Padding bits (maxW - chainW per pattern) are an artifact of
		// sharing; charge them to the compressed size for honesty.
		CompressedBits: res.Final.CompressedBits,
		Decoders:       1,
	}
	sum.Chains = append(sum.Chains, ChainResult{Chain: -1, Result: res})
	return sum, nil
}

// VerifyRoundTrip splits, merges, and checks the identity (specified bits
// preserved in both directions).
func VerifyRoundTrip(ts *testset.TestSet, n int, a Assignment) error {
	chains, err := Split(ts, n, a)
	if err != nil {
		return err
	}
	back, err := Merge(chains, ts.Width, a)
	if err != nil {
		return err
	}
	if !ts.Compatible(back) || !back.Compatible(ts) {
		return fmt.Errorf("multichain: split/merge changed the test set")
	}
	return nil
}
