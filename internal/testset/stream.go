package testset

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/tritvec"
)

// Streaming textual IO. The textual format's header is "width count";
// a producer that does not know the pattern count up front (a streaming
// decompressor writing to a pipe) emits "width *" instead, and Scanner
// accepts both. Blank lines and '#' comments are ignored, exactly as in
// Read.

// Scanner reads the textual test-set format one pattern at a time, at
// O(pattern) memory. It is the streaming counterpart of Read.
type Scanner struct {
	sc    *bufio.Scanner
	width int
	want  int // expected pattern count, -1 when the header was "width *"
	seen  int
	done  bool
}

// NewScanner parses the header line and returns a Scanner positioned at
// the first pattern.
func NewScanner(r io.Reader) (*Scanner, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		width, want, err := parseHeader(line)
		if err != nil {
			return nil, err
		}
		return &Scanner{sc: sc, width: width, want: want}, nil
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("testset: empty input")
}

// MaxHeaderWidth and MaxHeaderPatterns bound the dimensions a textual
// header may declare, mirroring the binary reader's caps. Rejecting an
// absurd header at parse time keeps hostile input out of every
// downstream constructor (testset.New and tritvec.New treat bad sizes
// as programmer error and panic), so the parse boundary is where
// input-derived dimensions are checked.
const (
	MaxHeaderWidth    = 1 << 24
	MaxHeaderPatterns = 1 << 28
)

func parseHeader(line string) (width, want int, err error) {
	var n int
	if _, err := fmt.Sscanf(line, "%d *", &n); err == nil {
		if n <= 0 || n > MaxHeaderWidth {
			return 0, 0, fmt.Errorf("testset: invalid header %q (width must be in [1,%d])", line, MaxHeaderWidth)
		}
		return n, -1, nil
	}
	var t int
	if _, err := fmt.Sscanf(line, "%d %d", &n, &t); err != nil {
		return 0, 0, fmt.Errorf("testset: bad header %q: %v", line, err)
	}
	if n <= 0 || n > MaxHeaderWidth {
		return 0, 0, fmt.Errorf("testset: invalid header %q (width must be in [1,%d])", line, MaxHeaderWidth)
	}
	if t < 0 || t > MaxHeaderPatterns {
		return 0, 0, fmt.Errorf("testset: invalid header %q (pattern count must be in [0,%d])", line, MaxHeaderPatterns)
	}
	return n, t, nil
}

// Width returns the pattern width from the header.
func (s *Scanner) Width() int { return s.width }

// Expected returns the header's pattern count, or -1 for a streaming
// ("width *") header.
func (s *Scanner) Expected() int { return s.want }

// Patterns returns the number of patterns scanned so far.
func (s *Scanner) Patterns() int { return s.seen }

// Next returns the next pattern, or io.EOF after the last one. When the
// header promised a count, a mismatch at end of input is an error.
func (s *Scanner) Next() (tritvec.Vector, error) {
	if s.done {
		return tritvec.Vector{}, io.EOF
	}
	for s.sc.Scan() {
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := tritvec.FromString(line)
		if err != nil {
			return tritvec.Vector{}, s.parseOrReadError(err)
		}
		if v.Len() != s.width {
			return tritvec.Vector{}, s.parseOrReadError(
				fmt.Errorf("testset: pattern length %d != width %d", v.Len(), s.width))
		}
		s.seen++
		return v, nil
	}
	if err := s.sc.Err(); err != nil {
		return tritvec.Vector{}, err
	}
	s.done = true
	if s.want >= 0 && s.seen != s.want {
		return tritvec.Vector{}, fmt.Errorf("testset: header promised %d patterns, got %d", s.want, s.seen)
	}
	return tritvec.Vector{}, io.EOF
}

// parseOrReadError reports why a scanned line is unusable. When the
// underlying reader already failed — e.g. the body hit an
// http.MaxBytesReader cap — the "line" is a truncated artifact of that
// failure, and the read error (preserved for errors.As/Is) is the real
// story, not whatever parse error the truncation caused.
func (s *Scanner) parseOrReadError(parseErr error) error {
	if rerr := s.sc.Err(); rerr != nil {
		return fmt.Errorf("testset: input truncated by read error: %w", rerr)
	}
	return parseErr
}

// PatternWriter emits the textual format incrementally with a streaming
// ("width *") header, at O(pattern) memory. Close flushes; it does not
// close the underlying writer.
type PatternWriter struct {
	bw    *bufio.Writer
	width int
	n     int
}

// NewPatternWriter writes the streaming header for the given width.
func NewPatternWriter(w io.Writer, width int) (*PatternWriter, error) {
	if width <= 0 {
		return nil, fmt.Errorf("testset: width must be positive")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d *\n", width); err != nil {
		return nil, err
	}
	return &PatternWriter{bw: bw, width: width}, nil
}

// WritePattern appends one pattern line.
func (pw *PatternWriter) WritePattern(v tritvec.Vector) error {
	if v.Len() != pw.width {
		return fmt.Errorf("testset: pattern length %d != width %d", v.Len(), pw.width)
	}
	if _, err := pw.bw.WriteString(v.String()); err != nil {
		return err
	}
	if err := pw.bw.WriteByte('\n'); err != nil {
		return err
	}
	pw.n++
	return nil
}

// Patterns returns the number of patterns written.
func (pw *PatternWriter) Patterns() int { return pw.n }

// Close flushes buffered output.
func (pw *PatternWriter) Close() error { return pw.bw.Flush() }
