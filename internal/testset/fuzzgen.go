package testset

import "repro/internal/tritvec"

// FromFuzz decodes arbitrary bytes into a test set — the shared input
// generator for the coders' fuzz targets. Each byte yields four trits
// (2 bits each: 0 -> 0, 1 -> 1, 2 -> X, 3 -> 0) packed into rows of the
// given width; a partially filled last row is padded with X. Returns nil
// when data yields no patterns or width is not positive.
func FromFuzz(data []byte, width int) *TestSet {
	if width <= 0 {
		return nil
	}
	ts := New(width)
	row := tritvec.New(width)
	col := 0
	for _, b := range data {
		for shift := 0; shift < 8; shift += 2 {
			var t tritvec.Trit
			switch b >> uint(shift) & 3 {
			case 1:
				t = tritvec.One
			case 2:
				t = tritvec.X
			default:
				t = tritvec.Zero
			}
			row.Set(col, t)
			if col++; col == width {
				ts.Add(row)
				row = tritvec.New(width)
				col = 0
			}
		}
	}
	if col > 0 {
		for ; col < width; col++ {
			row.Set(col, tritvec.X)
		}
		ts.Add(row)
	}
	if ts.NumPatterns() == 0 {
		return nil
	}
	return ts
}
