// Package testset represents scan test sets: T patterns of n trits each
// over {0,1,X}, exactly as in Section 2 of the paper. The whole test set is
// viewed as one string t1…t_{T·n} and partitioned into fixed-length input
// blocks by the blockcode package.
package testset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/tritvec"
)

// TestSet is an ordered collection of equal-width test patterns.
type TestSet struct {
	// Width is the number of circuit inputs n (trits per pattern).
	Width int
	// Patterns holds the T test patterns, each of length Width.
	Patterns []tritvec.Vector
}

// New returns an empty test set for circuits with n inputs.
func New(n int) *TestSet {
	if n <= 0 {
		panic("testset: width must be positive")
	}
	return &TestSet{Width: n}
}

// Add appends a pattern; its length must equal the test set width.
func (ts *TestSet) Add(p tritvec.Vector) {
	if p.Len() != ts.Width {
		panic(fmt.Sprintf("testset: pattern length %d != width %d", p.Len(), ts.Width))
	}
	ts.Patterns = append(ts.Patterns, p)
}

// NumPatterns returns T.
func (ts *TestSet) NumPatterns() int { return len(ts.Patterns) }

// TotalBits returns T·n, the original (uncompressed) test set size in bits.
// X positions count as one bit each, as in the paper's compression-rate
// definition.
func (ts *TestSet) TotalBits() int { return ts.Width * len(ts.Patterns) }

// Flatten concatenates all patterns into the test set string t1…t_{T·n}.
func (ts *TestSet) Flatten() tritvec.Vector {
	out := tritvec.New(ts.TotalBits())
	for i, p := range ts.Patterns {
		out.CopyFrom(p, i*ts.Width)
	}
	return out
}

// FromFlat splits a flat string back into patterns of the given width. The
// string length must be a multiple of width.
func FromFlat(flat tritvec.Vector, width int) (*TestSet, error) {
	if width <= 0 || flat.Len()%width != 0 {
		return nil, fmt.Errorf("testset: flat length %d not a multiple of width %d", flat.Len(), width)
	}
	ts := New(width)
	for off := 0; off < flat.Len(); off += width {
		ts.Add(flat.Slice(off, off+width))
	}
	return ts, nil
}

// SpecifiedBits returns the number of specified (0/1) positions.
func (ts *TestSet) SpecifiedBits() int {
	n := 0
	for _, p := range ts.Patterns {
		n += p.CountSpecified()
	}
	return n
}

// CareDensity returns the fraction of specified bits, in [0,1].
func (ts *TestSet) CareDensity() float64 {
	if ts.TotalBits() == 0 {
		return 0
	}
	return float64(ts.SpecifiedBits()) / float64(ts.TotalBits())
}

// Clone returns a deep copy.
func (ts *TestSet) Clone() *TestSet {
	out := New(ts.Width)
	for _, p := range ts.Patterns {
		out.Add(p.Clone())
	}
	return out
}

// Compatible reports whether other preserves every specified bit of ts
// (same dimensions, and each pattern of ts subsumes the corresponding
// pattern of other). This is the acceptance criterion after
// decompress(compress(ts)).
func (ts *TestSet) Compatible(other *TestSet) bool {
	if other == nil || ts.Width != other.Width || len(ts.Patterns) != len(other.Patterns) {
		return false
	}
	for i, p := range ts.Patterns {
		if !p.Subsumes(other.Patterns[i]) {
			return false
		}
	}
	return true
}

// Write emits the textual format: a header line "width T", then one line of
// trit characters per pattern.
func (ts *TestSet) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", ts.Width, len(ts.Patterns)); err != nil {
		return err
	}
	for _, p := range ts.Patterns {
		if _, err := bw.WriteString(p.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the textual format produced by Write. Blank lines and lines
// starting with '#' are ignored. Both fixed-count ("width count") and
// streaming ("width *") headers are accepted; use Scanner to consume the
// format one pattern at a time instead of buffering the whole set.
func Read(r io.Reader) (*TestSet, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	ts := New(sc.Width())
	for {
		v, err := sc.Next()
		if err == io.EOF {
			return ts, nil
		}
		if err != nil {
			return nil, err
		}
		ts.Add(v)
	}
}

// ParseStrings builds a test set from pattern strings (testing helper).
func ParseStrings(patterns ...string) (*TestSet, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("testset: no patterns")
	}
	ts := New(len(patterns[0]))
	for _, s := range patterns {
		v, err := tritvec.FromString(s)
		if err != nil {
			return nil, err
		}
		if v.Len() != ts.Width {
			return nil, fmt.Errorf("testset: ragged pattern %q", s)
		}
		ts.Add(v)
	}
	return ts, nil
}

// Random returns a test set with each trit drawn independently:
// P(specified)=density, then 0/1 uniform. Deterministic given r.
func Random(width, patterns int, density float64, r *rand.Rand) *TestSet {
	ts := New(width)
	for i := 0; i < patterns; i++ {
		p := tritvec.New(width)
		for j := 0; j < width; j++ {
			if r.Float64() < density {
				if r.Intn(2) == 0 {
					p.Set(j, tritvec.Zero)
				} else {
					p.Set(j, tritvec.One)
				}
			}
		}
		ts.Add(p)
	}
	return ts
}

// Stats summarizes a test set.
type Stats struct {
	Width       int
	Patterns    int
	TotalBits   int
	Specified   int
	CareDensity float64
}

// Summary computes Stats for ts.
func (ts *TestSet) Summary() Stats {
	return Stats{
		Width:       ts.Width,
		Patterns:    len(ts.Patterns),
		TotalBits:   ts.TotalBits(),
		Specified:   ts.SpecifiedBits(),
		CareDensity: ts.CareDensity(),
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("width=%d patterns=%d bits=%d specified=%d density=%.3f",
		s.Width, s.Patterns, s.TotalBits, s.Specified, s.CareDensity)
}
