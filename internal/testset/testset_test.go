package testset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tritvec"
)

func TestAddFlatten(t *testing.T) {
	ts := New(3)
	ts.Add(tritvec.MustFromString("01X"))
	ts.Add(tritvec.MustFromString("1X0"))
	if ts.NumPatterns() != 2 || ts.TotalBits() != 6 {
		t.Fatalf("T=%d bits=%d", ts.NumPatterns(), ts.TotalBits())
	}
	if got := ts.Flatten().String(); got != "01X1X0" {
		t.Fatalf("Flatten=%q", got)
	}
}

func TestFromFlat(t *testing.T) {
	flat := tritvec.MustFromString("01X1X0")
	ts, err := FromFlat(flat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumPatterns() != 2 || ts.Patterns[1].String() != "1X0" {
		t.Fatal("FromFlat mismatch")
	}
	if _, err := FromFlat(flat, 4); err == nil {
		t.Fatal("expected error for non-divisor width")
	}
}

func TestDensity(t *testing.T) {
	ts, err := ParseStrings("01X", "XXX")
	if err != nil {
		t.Fatal(err)
	}
	if ts.SpecifiedBits() != 2 {
		t.Fatalf("SpecifiedBits=%d", ts.SpecifiedBits())
	}
	if d := ts.CareDensity(); d < 0.33 || d > 0.34 {
		t.Fatalf("CareDensity=%f", d)
	}
}

func TestWriteRead(t *testing.T) {
	ts, err := ParseStrings("01XX10", "111111", "XXXXXX")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ts.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != ts.Width || got.NumPatterns() != ts.NumPatterns() {
		t.Fatal("dimension mismatch after round trip")
	}
	for i := range ts.Patterns {
		if !ts.Patterns[i].Equal(got.Patterns[i]) {
			t.Fatalf("pattern %d differs", i)
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# comment\n\n2 2\n01\n# interleaved\nX1\n"
	ts, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumPatterns() != 2 {
		t.Fatalf("patterns=%d", ts.NumPatterns())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"bogus\n",    // bad header
		"2 2\n01\n",  // wrong count
		"2 1\n012\n", // wrong width (also invalid char)
		"2 1\n0Z\n",  // invalid char
		"0 1\n\n",    // zero width
		"2 1\n011\n", // length mismatch
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestCompatible(t *testing.T) {
	a, _ := ParseStrings("01X", "X1X")
	b, _ := ParseStrings("010", "110")
	if !a.Compatible(b) {
		t.Fatal("specified-preserving fill must be compatible")
	}
	c, _ := ParseStrings("000", "110")
	if a.Compatible(c) {
		t.Fatal("flipped specified bit accepted")
	}
	if a.Compatible(nil) {
		t.Fatal("nil accepted")
	}
	d, _ := ParseStrings("010")
	if a.Compatible(d) {
		t.Fatal("pattern count mismatch accepted")
	}
}

func TestClone(t *testing.T) {
	a, _ := ParseStrings("01X")
	b := a.Clone()
	b.Patterns[0].Set(0, tritvec.One)
	if a.Patterns[0].Get(0) != tritvec.Zero {
		t.Fatal("clone aliases original")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(10, 20, 0.3, rand.New(rand.NewSource(42)))
	b := Random(10, 20, 0.3, rand.New(rand.NewSource(42)))
	if !a.Compatible(b) || !b.Compatible(a) {
		t.Fatal("same seed should give identical test sets")
	}
	if a.TotalBits() != 200 {
		t.Fatalf("bits=%d", a.TotalBits())
	}
	// density roughly honored
	d := a.CareDensity()
	if d < 0.1 || d > 0.5 {
		t.Fatalf("density=%f far from 0.3", d)
	}
}

func TestSummaryString(t *testing.T) {
	ts, _ := ParseStrings("01XX")
	s := ts.Summary()
	if s.Width != 4 || s.Patterns != 1 || s.TotalBits != 4 || s.Specified != 2 {
		t.Fatalf("summary %+v", s)
	}
	if !strings.Contains(s.String(), "width=4") {
		t.Fatalf("Summary.String=%q", s.String())
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { New(0) })
	mustPanic(func() { New(2).Add(tritvec.New(3)) })
}

func TestQuickFlattenRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := r.Intn(30) + 1
		n := r.Intn(20) + 1
		ts := Random(w, n, r.Float64(), r)
		back, err := FromFlat(ts.Flatten(), w)
		if err != nil {
			return false
		}
		return ts.Compatible(back) && back.Compatible(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
