package testset

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
)

func TestScannerFixedCount(t *testing.T) {
	in := "4 3\n01X1\n# comment\n\n1111\nXXXX\n"
	sc, err := NewScanner(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Width() != 4 || sc.Expected() != 3 {
		t.Fatalf("header parsed as width=%d expected=%d", sc.Width(), sc.Expected())
	}
	var got []string
	for {
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v.String())
	}
	want := []string{"01X1", "1111", "XXXX"}
	if len(got) != len(want) {
		t.Fatalf("got %d patterns", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pattern %d: got %s want %s", i, got[i], want[i])
		}
	}
	if sc.Patterns() != 3 {
		t.Fatalf("Patterns=%d", sc.Patterns())
	}
	// EOF is sticky.
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
}

func TestScannerStreamingHeader(t *testing.T) {
	in := "3 *\n010\n111\n"
	sc, err := NewScanner(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Expected() != -1 {
		t.Fatalf("Expected=%d want -1", sc.Expected())
	}
	n := 0
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("scanned %d patterns", n)
	}
	// Read accepts the streaming header too.
	ts, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ts.NumPatterns() != 2 || ts.Width != 3 {
		t.Fatalf("Read got %dx%d", ts.NumPatterns(), ts.Width)
	}
}

func TestScannerErrors(t *testing.T) {
	cases := map[string]string{
		"count mismatch": "4 2\n0101\n",
		"ragged pattern": "4 1\n01\n",
		"bad trit":       "4 1\n01z1\n",
		"bad star width": "0 *\n",
	}
	for name, in := range cases {
		sc, err := NewScanner(strings.NewReader(in))
		if err != nil {
			continue // header-level rejection is fine
		}
		ok := true
		for ok {
			if _, err := sc.Next(); err != nil {
				if err == io.EOF {
					t.Fatalf("%s: scanned cleanly", name)
				}
				ok = false
			}
		}
	}
	if _, err := NewScanner(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := NewScanner(strings.NewReader("# only comments\n\n")); err == nil {
		t.Fatal("comment-only input accepted")
	}
}

func TestPatternWriterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := Random(9, 25, 0.5, rng)
	var buf bytes.Buffer
	pw, err := NewPatternWriter(&buf, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range orig.Patterns {
		if err := pw.WritePattern(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	if pw.Patterns() != 25 {
		t.Fatalf("Patterns=%d", pw.Patterns())
	}
	if !strings.HasPrefix(buf.String(), "9 *\n") {
		t.Fatalf("missing streaming header: %q", buf.String()[:10])
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPatterns() != orig.NumPatterns() {
		t.Fatalf("round-trip lost patterns: %d vs %d", got.NumPatterns(), orig.NumPatterns())
	}
	for i := range orig.Patterns {
		if !orig.Patterns[i].Equal(got.Patterns[i]) {
			t.Fatalf("pattern %d changed", i)
		}
	}
	if err := pw.WritePattern(orig.Patterns[0].Slice(0, 4)); err == nil {
		t.Fatal("wrong-width pattern accepted")
	}
}
