package testset

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ts := Random(37, 53, 0.4, r) // deliberately non-byte-aligned width
	var buf bytes.Buffer
	if err := ts.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != ts.Width || back.NumPatterns() != ts.NumPatterns() {
		t.Fatal("dimensions changed")
	}
	for i := range ts.Patterns {
		if !ts.Patterns[i].Equal(back.Patterns[i]) {
			t.Fatalf("pattern %d differs", i)
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ts := Random(100, 100, 0.3, r)
	var txt, bin bytes.Buffer
	if err := ts.Write(&txt); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*3 > txt.Len() {
		t.Fatalf("binary %d bytes not ~4x smaller than text %d bytes", bin.Len(), txt.Len())
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte("TSET"))); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Bad version.
	raw := append([]byte("TSET"), 9, 0, 0, 0, 1, 0, 0, 0, 1, 0)
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated payload.
	var buf bytes.Buffer
	ts := Random(64, 4, 0.5, rand.New(rand.NewSource(3)))
	if err := ts.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestReadAutoSniffing(t *testing.T) {
	ts, _ := ParseStrings("01XX", "1111")
	var txt, bin bytes.Buffer
	if err := ts.Write(&txt); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := ReadAuto(&txt)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadAuto(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if !fromTxt.Compatible(fromBin) || !fromBin.Compatible(fromTxt) {
		t.Fatal("auto-sniffed formats disagree")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ts := Random(r.Intn(50)+1, r.Intn(40)+1, r.Float64(), r)
		var buf bytes.Buffer
		if err := ts.WriteBinary(&buf); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return ts.Compatible(back) && back.Compatible(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
