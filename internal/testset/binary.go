package testset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tritvec"
)

// Binary format: the text format costs one byte per trit, which is
// unwieldy for the registry's multi-megabit path-delay sets. The binary
// format packs two bits per trit (00=X, 01=0, 10=1) behind a small
// header.
//
// Layout (big-endian): magic "TSET", version uint8 (1), width uint32,
// patterns uint32, then ceil(width*patterns*2/8) payload bytes in
// pattern-major order.

var binMagic = [4]byte{'T', 'S', 'E', 'T'}

// WriteBinary emits the packed binary format.
func (ts *TestSet) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint8(1)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(ts.Width)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(ts.Patterns))); err != nil {
		return err
	}
	var cur byte
	nbits := 0
	flushBit := func(code byte) error {
		cur |= code << uint(6-nbits)
		nbits += 2
		if nbits == 8 {
			if err := bw.WriteByte(cur); err != nil {
				return err
			}
			cur, nbits = 0, 0
		}
		return nil
	}
	for _, p := range ts.Patterns {
		for i := 0; i < p.Len(); i++ {
			var code byte
			switch p.Get(i) {
			case tritvec.Zero:
				code = 1
			case tritvec.One:
				code = 2
			}
			if err := flushBit(code); err != nil {
				return err
			}
		}
	}
	if nbits > 0 {
		if err := bw.WriteByte(cur); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readSized reads exactly n bytes without trusting n for a single
// up-front allocation: data arrives in bounded chunks, so a hostile
// length costs at most one chunk of memory before the stream runs dry
// (the same discipline as the container readers).
func readSized(r io.Reader, n int) ([]byte, error) {
	const chunk = 64 << 10
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		c := min(n-len(buf), chunk)
		tmp := make([]byte, c)
		if _, err := io.ReadFull(r, tmp); err != nil {
			return nil, fmt.Errorf("testset: truncated binary payload (%d of %d bytes): %w", len(buf), n, err)
		}
		buf = append(buf, tmp...)
	}
	return buf, nil
}

// ReadBinary parses the packed binary format.
func ReadBinary(r io.Reader) (*TestSet, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != binMagic {
		return nil, fmt.Errorf("testset: bad binary magic %q", m)
	}
	var version uint8
	var width, patterns uint32
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("testset: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.BigEndian, &width); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.BigEndian, &patterns); err != nil {
		return nil, err
	}
	if width == 0 || width > MaxHeaderWidth || patterns > MaxHeaderPatterns {
		return nil, fmt.Errorf("testset: implausible binary dimensions %dx%d", width, patterns)
	}
	// The dimension caps bound width and patterns individually; their
	// product must be bounded too — in 64-bit arithmetic, so it neither
	// overflows a 32-bit int nor compiles the cap constant out of range
	// — and the payload read in chunks, so a hostile header can neither
	// drive a terabyte allocation nor cost more than one chunk of
	// memory before the stream runs dry.
	total64 := int64(width) * int64(patterns)
	if total64 > 1<<31-1 {
		return nil, fmt.Errorf("testset: implausible binary size %d trits", total64)
	}
	total := int(total64)
	payload, err := readSized(br, (2*total+7)/8)
	if err != nil {
		return nil, err
	}
	ts := New(int(width))
	bit := 0
	for p := 0; p < int(patterns); p++ {
		v := tritvec.New(int(width))
		for i := 0; i < int(width); i++ {
			code := payload[bit/8] >> uint(6-bit%8) & 3
			switch code {
			case 1:
				v.Set(i, tritvec.Zero)
			case 2:
				v.Set(i, tritvec.One)
			case 0:
				// X
			default:
				return nil, fmt.Errorf("testset: invalid trit code %d at position %d", code, bit/2)
			}
			bit += 2
		}
		ts.Add(v)
	}
	return ts, nil
}

// ReadAuto sniffs the format: binary if the stream starts with the
// binary magic, text otherwise.
func ReadAuto(r io.Reader) (*TestSet, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && len(head) == 4 && [4]byte{head[0], head[1], head[2], head[3]} == binMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
