package core

import (
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/blockcode"
	"repro/internal/ea"
	"repro/internal/ninec"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// quickParams returns small-but-real EA parameters for tests.
func quickParams(seed int64) Params {
	p := DefaultParams(seed)
	p.K = 8
	p.L = 16
	p.Runs = 2
	p.EA.MaxGenerations = 60
	p.EA.MaxNoImprove = 30
	return p
}

func TestValidate(t *testing.T) {
	if err := DefaultParams(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.L = 0 },
		func(p *Params) { p.Runs = 0 },
		func(p *Params) { p.K = 7; p.SeedNineC = true },
		func(p *Params) { p.EA.PopSize = 0 },
	}
	for i, mod := range bad {
		p := DefaultParams(1)
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGenesMVsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	k, l := 6, 4
	mvs := make([]tritvec.Vector, l)
	for i := range mvs {
		mvs[i] = tritvec.RandomTernary(k, r)
	}
	genes := MVsToGenes(mvs, k)
	back := GenesToMVs(genes, k, l)
	for i := range mvs {
		if !mvs[i].Equal(back[i]) {
			t.Fatalf("MV %d: %s != %s", i, mvs[i], back[i])
		}
	}
}

func TestCompressRoundTripAndVerify(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ts := testset.Random(16, 60, 0.3, r)
	res, err := Compress(ts, quickParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || res.Final.Stream == nil {
		t.Fatal("no final stream")
	}
	blocks := blockcode.Partition(ts, res.Params.K)
	dec, err := blockcode.Decode(bitstream.FromWriter(res.Final.Stream), res.Final.Set, res.Final.Code, len(blocks))
	if err != nil {
		t.Fatal(err)
	}
	if err := blockcode.Verify(blocks, dec); err != nil {
		t.Fatal(err)
	}
	if res.BestRate < res.AverageRate-1e-9 {
		t.Fatalf("best %.2f < average %.2f", res.BestRate, res.AverageRate)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs=%d", len(res.Runs))
	}
}

func TestCompressBeats9COnStructuredInput(t *testing.T) {
	// Structured test set with "almost matching" blocks — the paper's
	// motivating case where EA-found MVs with arbitrary U positions beat
	// the fixed 9C set.
	r := rand.New(rand.NewSource(23))
	ts := testset.New(16)
	base := tritvec.MustFromString("1101001101010011")
	for i := 0; i < 150; i++ {
		p := base.Clone()
		// perturb one or two fixed positions
		p.Set(3, tritvec.Trit(1+r.Intn(2)))
		p.Set(11, tritvec.Trit(1+r.Intn(2)))
		ts.Add(p)
	}
	nine, err := ninec.Compress(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := quickParams(3)
	res, err := Compress(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestRate <= nine.RatePercent() {
		t.Fatalf("EA (%.2f%%) did not beat 9C (%.2f%%) on structured input",
			res.BestRate, nine.RatePercent())
	}
}

func TestForceAllUNeverFails(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	ts := testset.Random(24, 20, 0.9, r) // dense: hard to cover
	p := quickParams(5)
	p.EA.MaxGenerations = 10
	p.EA.MaxNoImprove = 10
	res, err := Compress(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Covering.Uncovered != 0 {
		t.Fatal("uncovered blocks despite ForceAllU")
	}
}

func TestNoForceAllUCanFail(t *testing.T) {
	// Without the all-U MV and with a tiny random population, some runs
	// may find no covering set; Compress must still either succeed or
	// return a clean error, not panic.
	r := rand.New(rand.NewSource(31))
	ts := testset.Random(24, 20, 0.95, r)
	p := quickParams(7)
	p.ForceAllU = false
	p.EA.MaxGenerations = 2
	p.EA.MaxNoImprove = 2
	p.Runs = 1
	_, err := Compress(ts, p)
	_ = err // either outcome is acceptable; this is a no-panic test
}

func TestSeedNineCAtLeastAsGoodAs9CHC(t *testing.T) {
	// With the 9C MV set injected into the initial population, elitism
	// guarantees the EA result is at least as good as 9C+HC covering
	// with the same MVs under min-U order.
	r := rand.New(rand.NewSource(37))
	ts := testset.Random(16, 80, 0.25, r)
	hc, err := ninec.CompressHC(ts, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := quickParams(11)
	p.K = 8
	p.L = 9
	p.SeedNineC = true
	p.Runs = 1
	res, err := Compress(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestRate < hc.RatePercent()-1e-9 {
		t.Fatalf("seeded EA (%.2f%%) below 9C+HC (%.2f%%)", res.BestRate, hc.RatePercent())
	}
}

func TestSubsumeOptNotWorse(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ts := testset.Random(16, 60, 0.3, r)
	p := quickParams(13)
	p.Runs = 1
	plain, err := Compress(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	p.SubsumeOpt = true
	opt, err := Compress(ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Final.CompressedBits > plain.Final.CompressedBits {
		t.Fatalf("subsume opt worsened size: %d > %d",
			opt.Final.CompressedBits, plain.Final.CompressedBits)
	}
}

func TestSweep(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	ts := testset.Random(12, 40, 0.3, r)
	base := quickParams(17)
	base.Runs = 1
	base.EA.MaxGenerations = 20
	base.EA.MaxNoImprove = 10
	points, best, err := Sweep(ts, base, []int{4, 6}, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points=%d", len(points))
	}
	for _, pt := range points {
		if pt.Rate > best.Rate {
			t.Fatal("best not maximal")
		}
	}
}

func TestRandomMVSetCoversEverything(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	set := RandomMVSet(8, 10, 0.5, r)
	ts := testset.Random(16, 30, 0.5, r)
	blocks := blockcode.Partition(ts, 8)
	cov := set.Cover(blocks)
	if !cov.OK() {
		t.Fatal("RandomMVSet must include all-U and cover everything")
	}
}

func TestFitnessInvalidWithoutCover(t *testing.T) {
	ts, _ := testset.ParseStrings("1111")
	blocks := blockcode.Partition(ts, 4)
	prob := &problem{k: 4, l: 1, ms: blockcode.Dedup(blocks), origBits: 4, forceAllU: false}
	genes := []ea.Gene{1, 1, 1, 1} // MV = 0000, cannot cover 1111
	if f := prob.Fitness(genes); f != invalidFitness {
		t.Fatalf("fitness=%f want invalid", f)
	}
	genes = []ea.Gene{0, 0, 0, 0} // all-U covers
	if f := prob.Fitness(genes); f <= invalidFitness {
		t.Fatal("valid genome scored invalid")
	}
}
