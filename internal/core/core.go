// Package core implements the paper's primary contribution: determining a
// set of L matching vectors of length K by evolutionary optimization
// (Section 3), covering the input blocks with them (Section 3.2) and
// Huffman-encoding the result (Section 3.3).
//
// An EA individual is a string of K·L genes over {0,1,U}; its fitness is
// the compression rate achieved by the corresponding MV set. One MV is
// pinned to all-U so no instance is unsolvable, exactly as in the paper.
package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/blockcode"
	"repro/internal/ea"
	"repro/internal/huffman"
	"repro/internal/mvheur"
	"repro/internal/ninec"
	"repro/internal/pipeline"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Params configures the EA compressor.
type Params struct {
	K int // input block length (paper default 12)
	L int // number of matching vectors (paper default 64)

	EA ea.Config

	// ForceAllU pins one MV to all-U so covering never fails (paper:
	// "One of the MVs was set to all-U, such that there were no
	// insolvable instances").
	ForceAllU bool
	// SubsumeOpt applies the Section 3.3 subsumption post-pass to the
	// final covering (an explicit improvement the paper identifies but
	// does not implement).
	SubsumeOpt bool
	// SeedNineC injects the 9C matching-vector set into the initial
	// population (the paper suggests this would rule out losing to 9C;
	// requires even K).
	SeedNineC bool
	// SeedGreedy injects the mvheur greedy MV set into the initial
	// population, guaranteeing the EA is at least as good as the
	// heuristic under elitism.
	SeedGreedy bool
	// Runs is the number of independent EA runs; the paper reports the
	// average over 5 runs and also best-of.
	Runs int
	// Workers bounds batch-level parallelism when the independent EA runs
	// (and sweep points) execute on the pipeline engine: 0 = one worker
	// per CPU, 1 = serial. Any worker count produces identical results.
	Workers int
}

// DefaultParams returns the paper's default configuration for Table 1:
// L=64, K=12, S=10, C=5, pc=30%, pm=30%, pi=10%, 5 runs, all-U pinned.
func DefaultParams(seed int64) Params {
	return Params{
		K:         12,
		L:         64,
		EA:        ea.DefaultConfig(seed),
		ForceAllU: true,
		Runs:      5,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("core: K must be positive, got %d", p.K)
	}
	if p.L <= 0 {
		return fmt.Errorf("core: L must be positive, got %d", p.L)
	}
	if p.Runs <= 0 {
		return fmt.Errorf("core: Runs must be positive, got %d", p.Runs)
	}
	if p.SeedNineC && p.K%2 != 0 {
		return fmt.Errorf("core: SeedNineC requires even K")
	}
	return p.EA.Validate()
}

// runSeed is the historical per-run seed derivation (Seed + run·7919),
// kept so the parallel engine reproduces the original serial results
// exactly.
func runSeed(base int64, run int) int64 { return base + int64(run)*7919 }

// geneToTrit maps an EA gene to a matching-vector trit. Genes use the
// tritvec encoding directly: 0=U(X), 1=0, 2=1.
func geneToTrit(g ea.Gene) tritvec.Trit { return tritvec.Trit(g % 3) }

// GenesToMVs decodes a genome of K·L genes into L matching vectors.
func GenesToMVs(genes []ea.Gene, k, l int) []tritvec.Vector {
	mvs := make([]tritvec.Vector, l)
	for i := 0; i < l; i++ {
		v := tritvec.New(k)
		for j := 0; j < k; j++ {
			v.Set(j, geneToTrit(genes[i*k+j]))
		}
		mvs[i] = v
	}
	return mvs
}

// MVsToGenes is the inverse of GenesToMVs.
func MVsToGenes(mvs []tritvec.Vector, k int) []ea.Gene {
	genes := make([]ea.Gene, 0, len(mvs)*k)
	for _, v := range mvs {
		for j := 0; j < k; j++ {
			genes = append(genes, ea.Gene(v.Get(j)))
		}
	}
	return genes
}

// problem adapts MV determination to the ea.Problem interface.
type problem struct {
	k, l      int
	ms        *blockcode.BlockMultiset
	origBits  int
	forceAllU bool
}

// invalidFitness is "a sufficiently small number, such that it is lower
// than the fitness of an individual leading to a valid solution" — any
// valid compression rate is > -100·K (even pure expansion is bounded by
// the all-U encoding).
const invalidFitness = -1e9

func (p *problem) GenomeLen() int { return p.k * p.l }
func (p *problem) Alphabet() int  { return 3 }

func (p *problem) Repair(genes []ea.Gene) {
	if !p.forceAllU {
		return
	}
	// Pin the last MV's genes to U (gene value 0 == tritvec.X).
	for j := (p.l - 1) * p.k; j < p.l*p.k; j++ {
		genes[j] = 0
	}
}

func (p *problem) Fitness(genes []ea.Gene) float64 {
	mvs := GenesToMVs(genes, p.k, p.l)
	set := &blockcode.MVSet{K: p.k, MVs: mvs}
	cov := set.CoverMultiset(p.ms)
	if !cov.OK() {
		return invalidFitness
	}
	code, err := huffman.Build(cov.Freqs)
	if err != nil {
		return invalidFitness
	}
	compressed := set.CompressedBits(cov, code.Lengths)
	return blockcode.Rate(p.origBits, compressed)
}

// RunOutcome describes one EA run.
type RunOutcome struct {
	Seed        int64
	Rate        float64
	Generations int
	Evals       int
	History     []ea.GenStats
}

// Result is the full outcome of Compress.
type Result struct {
	Params Params
	// Final is the encoded result built from the best run's MV set
	// (including the subsumption pass when enabled).
	Final *blockcode.Result
	// Runs holds per-run outcomes; AverageRate is their mean (the
	// paper's 'EA' columns), BestRate the maximum.
	Runs        []RunOutcome
	AverageRate float64
	BestRate    float64
}

// Compress runs the EA compressor on ts.
func Compress(ts *testset.TestSet, p Params) (*Result, error) {
	return CompressCtx(context.Background(), ts, p)
}

// CompressCtx is Compress with cancellation. The p.Runs independent EA
// runs execute as pipeline jobs (p.Workers-wide); per-run seeds are a
// function of p.EA.Seed and the run index only, so the aggregate result
// is byte-identical for every worker count, including the serial one.
func CompressCtx(ctx context.Context, ts *testset.TestSet, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	blocks := blockcode.Partition(ts, p.K)
	ms := blockcode.Dedup(blocks)
	prob := &problem{k: p.K, l: p.L, ms: ms, origBits: ts.TotalBits(), forceAllU: p.ForceAllU}

	var seeds [][]ea.Gene
	padToL := func(mvs []tritvec.Vector) []ea.Gene {
		mvs = append([]tritvec.Vector(nil), mvs...)
		for len(mvs) < p.L {
			mvs = append(mvs, tritvec.New(p.K))
		}
		return MVsToGenes(mvs[:p.L], p.K)
	}
	if p.SeedNineC {
		nine, err := ninec.MVs(p.K)
		if err != nil {
			return nil, err
		}
		seeds = append(seeds, padToL(nine.MVs))
	}
	if p.SeedGreedy {
		g := mvheur.Greedy(blocks, p.K, p.L, mvheur.DefaultOptions())
		seeds = append(seeds, padToL(g.MVs))
	}

	jobs := make([]pipeline.Job[*ea.Result], p.Runs)
	for run := 0; run < p.Runs; run++ {
		cfg := p.EA
		cfg.Seed = runSeed(p.EA.Seed, run)
		jobs[run] = pipeline.Job[*ea.Result]{
			Name: fmt.Sprintf("run%d", run),
			Run: func(ctx context.Context, _ int64) (*ea.Result, error) {
				return ea.RunCtx(ctx, cfg, prob, seeds...)
			},
		}
	}
	outs, err := pipeline.Run(ctx, pipeline.Config{Workers: p.Workers}, jobs)
	if err != nil {
		return nil, err
	}

	res := &Result{Params: p}
	var bestGenes []ea.Gene
	best := invalidFitness
	for run, jr := range outs {
		out := jr.Value
		res.Runs = append(res.Runs, RunOutcome{
			Seed:        runSeed(p.EA.Seed, run),
			Rate:        out.Best.Fitness,
			Generations: out.Generations,
			Evals:       out.Evals,
			History:     out.History,
		})
		res.AverageRate += out.Best.Fitness
		if out.Best.Fitness > best {
			best = out.Best.Fitness
			bestGenes = out.Best.Genes
		}
	}
	res.AverageRate /= float64(p.Runs)
	res.BestRate = best

	if bestGenes == nil || best <= invalidFitness {
		return nil, fmt.Errorf("core: no valid MV set found (enable ForceAllU)")
	}

	set := &blockcode.MVSet{K: p.K, MVs: GenesToMVs(bestGenes, p.K, p.L)}
	var final *blockcode.Result
	if p.SubsumeOpt {
		final, err = set.BuildHuffmanOpt(blocks, ts.TotalBits())
	} else {
		final, err = set.BuildHuffman(blocks, ts.TotalBits())
	}
	if err != nil {
		return nil, err
	}
	if _, err := blockcode.Encode(blocks, final); err != nil {
		return nil, err
	}
	res.Final = final
	if p.SubsumeOpt && final.RatePercent() > res.BestRate {
		res.BestRate = final.RatePercent()
	}
	return res, nil
}

// SweepPoint is one (K, L) configuration's outcome.
type SweepPoint struct {
	K, L int
	Rate float64 // best rate across the runs at this configuration
}

// Sweep evaluates the compressor across (K, L) configurations and returns
// all points plus the best ("EA-Best" column: "We generated data for
// numerous values of K and L … we report our best results"). The grid
// runs on the pipeline engine with base.Workers job-level parallelism.
//
// Seeding changed with the pipeline refactor: each grid point now runs
// on its own seed derived from base.EA.Seed and the point's index
// (pipeline.Seed) instead of every point sharing base.EA.Seed, so sweep
// numbers differ from the pre-pipeline serial implementation at the same
// seed. Runs remain fully reproducible and worker-count independent.
func Sweep(ts *testset.TestSet, base Params, ks, ls []int) ([]SweepPoint, SweepPoint, error) {
	return SweepCtx(context.Background(), ts, base, ks, ls, base.Workers)
}

// SweepCtx is Sweep with explicit cancellation and worker count. Every
// (K, L) point is one pipeline job whose EA seed is derived from
// base.EA.Seed and the point's grid index (pipeline.Seed), so the sweep
// is reproducible bit-for-bit at any worker count: 1 worker and N
// workers return identical points and identical best.
func SweepCtx(ctx context.Context, ts *testset.TestSet, base Params, ks, ls []int, workers int) ([]SweepPoint, SweepPoint, error) {
	type gridPoint struct{ k, l int }
	var grid []gridPoint
	for _, k := range ks {
		for _, l := range ls {
			grid = append(grid, gridPoint{k, l})
		}
	}
	jobs := make([]pipeline.Job[SweepPoint], len(grid))
	for i, gp := range grid {
		gp := gp
		jobs[i] = pipeline.Job[SweepPoint]{
			Name: fmt.Sprintf("K=%d/L=%d", gp.k, gp.l),
			Run: func(ctx context.Context, seed int64) (SweepPoint, error) {
				p := base
				p.K, p.L = gp.k, gp.l
				p.EA.Seed = seed
				if p.SeedNineC && gp.k%2 != 0 {
					p.SeedNineC = false
				}
				r, err := CompressCtx(ctx, ts, p)
				if err != nil {
					return SweepPoint{}, fmt.Errorf("core: sweep K=%d L=%d: %v", gp.k, gp.l, err)
				}
				return SweepPoint{K: gp.k, L: gp.l, Rate: r.BestRate}, nil
			},
		}
	}
	results, err := pipeline.Run(ctx, pipeline.Config{Workers: workers, RootSeed: base.EA.Seed}, jobs)
	if err != nil {
		return nil, SweepPoint{}, err
	}
	points := pipeline.Values(results)
	best := SweepPoint{Rate: invalidFitness}
	for _, pt := range points {
		if pt.Rate > best.Rate {
			best = pt
		}
	}
	return points, best, nil
}

// RandomMVSet returns L random matching vectors of length K with the given
// U bias — a baseline for EA effectiveness tests.
func RandomMVSet(k, l int, pU float64, r *rand.Rand) *blockcode.MVSet {
	mvs := make([]tritvec.Vector, l)
	for i := range mvs {
		v := tritvec.New(k)
		for j := 0; j < k; j++ {
			if r.Float64() < pU {
				v.Set(j, tritvec.X)
			} else if r.Intn(2) == 0 {
				v.Set(j, tritvec.Zero)
			} else {
				v.Set(j, tritvec.One)
			}
		}
		mvs[i] = v
	}
	mvs[l-1] = tritvec.New(k)
	return &blockcode.MVSet{K: k, MVs: mvs}
}
