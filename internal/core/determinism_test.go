package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/testset"
)

// TestSweepDeterministicAcrossWorkers is the engine's non-negotiable
// invariant at the application level: the (K,L) sweep with 8 workers is
// bit-for-bit identical to the 1-worker run at the same root seed.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	ts := testset.Random(12, 40, 0.3, r)
	base := DefaultParams(17)
	base.Runs = 1
	base.EA.MaxGenerations = 15
	base.EA.MaxNoImprove = 8

	ks, ls := []int{4, 6, 8}, []int{8, 16}
	serialPts, serialBest, err := SweepCtx(context.Background(), ts, base, ks, ls, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		pts, best, err := SweepCtx(context.Background(), ts, base, ks, ls, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serialPts, pts) {
			t.Fatalf("sweep points with %d workers differ from serial:\n%v\nvs\n%v", workers, pts, serialPts)
		}
		if serialBest != best {
			t.Fatalf("sweep best with %d workers %v differs from serial %v", workers, best, serialBest)
		}
	}
}

// TestCompressDeterministicAcrossWorkers checks the same invariant for
// the multi-run EA: run outcomes, the float aggregation, and the final
// encoded stream must not depend on the worker count.
func TestCompressDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	ts := testset.Random(16, 50, 0.3, r)
	p := DefaultParams(23)
	p.Runs = 4
	p.EA.MaxGenerations = 15
	p.EA.MaxNoImprove = 8

	p.Workers = 1
	serial, err := CompressCtx(context.Background(), ts, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	parallel, err := CompressCtx(context.Background(), ts, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatal("per-run outcomes differ between 1 and 8 workers")
	}
	if serial.AverageRate != parallel.AverageRate || serial.BestRate != parallel.BestRate {
		t.Fatalf("aggregates differ: serial (%v, %v) vs parallel (%v, %v)",
			serial.AverageRate, serial.BestRate, parallel.AverageRate, parallel.BestRate)
	}
	if !reflect.DeepEqual(serial.Final, parallel.Final) {
		t.Fatal("final encoded result differs between 1 and 8 workers")
	}
}

// TestCompressCancelled verifies that a pre-cancelled context aborts the
// pipeline instead of running the EA.
func TestCompressCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(95))
	ts := testset.Random(12, 30, 0.3, r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompressCtx(ctx, ts, DefaultParams(1)); err == nil {
		t.Fatal("cancelled CompressCtx returned nil error")
	}
}
