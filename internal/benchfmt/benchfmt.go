// Package benchfmt defines the repo's committed benchmark baseline
// format and the tooling to produce, migrate, and compare it.
//
// A baseline file (BENCH_codec.json, BENCH_serve.json at the repo root)
// is one JSON object in a small stable schema:
//
//	{
//	  "schema": "tcomp-bench/1",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "results": [
//	    {"pkg": "repro/internal/bitstream", "name": "BenchmarkBitstreamRead/ReadBits",
//	     "procs": 8, "iters": 100, "ns_per_op": 52119, "mb_per_s": 135.67,
//	     "b_per_op": 64, "allocs_per_op": 1}
//	  ]
//	}
//
// Results come from parsing `go test -bench` text output (Parse) or, for
// the one-time migration of the PR-5 baselines, from a raw `go test
// -json` event stream (ParseTest2JSON — those committed files were
// unusable as baselines because no comparison tool reads event streams).
// Absent metrics are recorded as -1 (b_per_op, allocs_per_op) or 0
// (mb_per_s); custom b.ReportMetric values land in "extra".
//
// Diff compares two baseline files benchmark-by-benchmark and flags a
// regression when ns/op grows beyond a tolerance; cmd/benchdiff wraps it
// as the CI perf ratchet.
package benchfmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the baseline file format.
const SchemaVersion = "tcomp-bench/1"

// Result is one benchmark measurement.
type Result struct {
	// Pkg is the Go package the benchmark ran in ("pkg:" header line).
	Pkg string `json:"pkg"`
	// Name is the benchmark name with any GOMAXPROCS suffix stripped
	// (BenchmarkFoo/sub, not BenchmarkFoo/sub-8); the suffix moves to
	// Procs so baselines from machines with different core counts still
	// key against each other.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 when the name carried none.
	Procs int `json:"procs"`
	// Iters is the iteration count the timing was averaged over.
	Iters int64 `json:"iters"`
	// NsPerOp is the headline metric the ratchet gates on.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is throughput for benchmarks that call b.SetBytes; 0 when
	// not reported.
	MBPerS float64 `json:"mb_per_s"`
	// BytesPerOp and AllocsPerOp come from b.ReportAllocs; -1 when not
	// reported.
	BytesPerOp  int64 `json:"b_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric values (e.g. "avg9C%").
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Key identifies a benchmark across baselines: package plus name, but
// not the machine-dependent procs suffix.
func (r *Result) Key() string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// File is a committed benchmark baseline.
type File struct {
	Schema  string   `json:"schema"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches a `go test -bench` result line:
//
//	BenchmarkName-8   	     100	  11560142 ns/op	   5.67 MB/s	  606137 B/op	 4113 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*)\s+(\d+)\s+(.+)$`)

// metricPair matches one "value unit" measurement within a result line.
var metricPair = regexp.MustCompile(`([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?)\s+([^\s]+)`)

// Parse reads `go test -bench` text output. Lines that are not
// benchmark results or goos/goarch/cpu/pkg headers are ignored, so the
// interleaved PASS/ok chatter of a multi-package run parses cleanly.
func Parse(r io.Reader) (*File, error) {
	f := &File{Schema: SchemaVersion}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			res, ok := parseResult(pkg, m)
			if ok {
				f.Results = append(f.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: reading bench output: %w", err)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark result lines found")
	}
	return f, nil
}

// parseResult converts one matched benchmark line. Lines whose metric
// tail does not include ns/op (e.g. a bare "BenchmarkFoo" progress line
// from -v output) are skipped, not errors.
func parseResult(pkg string, m []string) (Result, bool) {
	res := Result{Pkg: pkg, Name: m[1], Procs: 1, MBPerS: 0, BytesPerOp: -1, AllocsPerOp: -1}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil && p > 0 {
			res.Procs = p
			res.Name = res.Name[:i]
		}
	}
	res.Iters, _ = strconv.ParseInt(m[2], 10, 64)
	sawNs := false
	for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
		v, err := strconv.ParseFloat(pair[1], 64)
		if err != nil {
			continue
		}
		switch pair[2] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "MB/s":
			res.MBPerS = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[pair[2]] = v
		}
	}
	return res, sawNs
}

// test2jsonEvent is the subset of a `go test -json` event the migration
// needs.
type test2jsonEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// ParseTest2JSON migrates a raw `go test -json` event stream — the
// format the PR-5 baselines were mistakenly committed in — by
// extracting every Output event and parsing the reassembled text.
func ParseTest2JSON(r io.Reader) (*File, error) {
	var text strings.Builder
	dec := json.NewDecoder(r)
	events := 0
	for {
		var ev test2jsonEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("benchfmt: not a test2json event stream: %w", err)
		}
		events++
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if events == 0 {
		return nil, fmt.Errorf("benchfmt: empty test2json event stream")
	}
	return Parse(strings.NewReader(text.String()))
}

// looksLikeTest2JSON sniffs the legacy raw event-stream format: a JSON
// object per line with Time/Action fields.
func looksLikeTest2JSON(head []byte) bool {
	var ev struct {
		Action *string `json:"Action"`
	}
	line := head
	if i := bytes.IndexByte(head, '\n'); i >= 0 {
		line = head[:i]
	}
	return json.Unmarshal(line, &ev) == nil && ev.Action != nil
}

// Read decodes a baseline file, refusing the legacy raw test2json
// format with an actionable message (that defect — baselines committed
// as event streams no tool could compare — is why the bench trajectory
// stayed empty through PR 5).
func Read(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: reading baseline: %w", err)
	}
	if looksLikeTest2JSON(data) {
		return nil, fmt.Errorf("benchfmt: this is a raw `go test -json` event stream, not a %s baseline; migrate it with `benchdiff -migrate <file> -out <file>`", SchemaVersion)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfmt: bad baseline file: %w", err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchfmt: unsupported schema %q (want %q)", f.Schema, SchemaVersion)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("benchfmt: baseline has no results")
	}
	return &f, nil
}

// ReadFile reads a baseline from disk.
func ReadFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	f, err := Read(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Write encodes the baseline as indented JSON with a trailing newline
// (it is committed to git; diffs should be line-stable).
func (f *File) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// WriteFile writes the baseline to disk.
func (f *File) WriteFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Key string
	// Old or New is nil when the benchmark exists on only one side
	// (never a regression by itself: bench sets evolve across PRs).
	Old, New *Result
	// Ratio is new/old ns/op (1.0 = unchanged, <1 = faster).
	Ratio float64
	// Regression is true when new ns/op exceeds old by more than the
	// tolerance.
	Regression bool
}

// PercentChange returns the signed ns/op change in percent.
func (d *Delta) PercentChange() float64 { return (d.Ratio - 1) * 100 }

// Diff compares two baselines. tolerance is fractional (0.08 = 8%);
// a benchmark regresses when newNs > oldNs*(1+tolerance). The returned
// bool reports whether any benchmark regressed.
func Diff(old, new *File, tolerance float64) ([]Delta, bool) {
	oldBy := map[string]*Result{}
	for i := range old.Results {
		oldBy[old.Results[i].Key()] = &old.Results[i]
	}
	seen := map[string]bool{}
	var deltas []Delta
	regressed := false
	for i := range new.Results {
		n := &new.Results[i]
		seen[n.Key()] = true
		o := oldBy[n.Key()]
		d := Delta{Key: n.Key(), Old: o, New: n}
		if o != nil && o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
			d.Regression = n.NsPerOp > o.NsPerOp*(1+tolerance)
			regressed = regressed || d.Regression
		}
		deltas = append(deltas, d)
	}
	for i := range old.Results {
		if o := &old.Results[i]; !seen[o.Key()] {
			deltas = append(deltas, Delta{Key: o.Key(), Old: o})
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Key < deltas[j].Key })
	return deltas, regressed
}

// Markdown renders the delta table (GitHub-flavored), suitable for a CI
// job summary.
func Markdown(w io.Writer, deltas []Delta, tolerance float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "| benchmark | old ns/op | new ns/op | Δ ns/op | old MB/s | new MB/s | status |\n")
	fmt.Fprintf(bw, "|---|---:|---:|---:|---:|---:|---|\n")
	mbs := func(r *Result) string {
		if r == nil || r.MBPerS == 0 {
			return "—"
		}
		return fmt.Sprintf("%.2f", r.MBPerS)
	}
	ns := func(r *Result) string {
		if r == nil {
			return "—"
		}
		return fmt.Sprintf("%.0f", r.NsPerOp)
	}
	for _, d := range deltas {
		status, change := "ok", "—"
		switch {
		case d.Old == nil:
			status = "new"
		case d.New == nil:
			status = "removed"
		default:
			change = fmt.Sprintf("%+.1f%%", d.PercentChange())
			if d.Regression {
				status = fmt.Sprintf("**REGRESSION** (>%+.0f%%)", tolerance*100)
			} else if d.Ratio < 1-tolerance {
				status = "improved"
			}
		}
		fmt.Fprintf(bw, "| %s | %s | %s | %s | %s | %s | %s |\n",
			d.Key, ns(d.Old), ns(d.New), change, mbs(d.Old), mbs(d.New), status)
	}
	return bw.Flush()
}
