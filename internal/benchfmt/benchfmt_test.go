package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sampleText = `goos: linux
goarch: amd64
pkg: repro/internal/bitstream
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBitstreamWrite/WriteBits         	       1	     73792 ns/op	  94.18 MB/s	   34304 B/op	      15 allocs/op
BenchmarkBitstreamRead/ReadBits-8         	     100	     52119 ns/op	 135.67 MB/s
PASS
ok  	repro/internal/bitstream	0.003s
pkg: repro
BenchmarkSweepKL-8  	       2	 123456789 ns/op	        77.10 bestrate%	         1.20 spread%
PASS
ok  	repro	1.0s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.CPU == "" {
		t.Fatalf("bad header fields: %+v", f)
	}
	if len(f.Results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(f.Results), f.Results)
	}
	r0 := f.Results[0]
	if r0.Pkg != "repro/internal/bitstream" || r0.Name != "BenchmarkBitstreamWrite/WriteBits" {
		t.Fatalf("bad result 0: %+v", r0)
	}
	if r0.Procs != 1 || r0.Iters != 1 || r0.NsPerOp != 73792 || r0.MBPerS != 94.18 ||
		r0.BytesPerOp != 34304 || r0.AllocsPerOp != 15 {
		t.Fatalf("bad metrics: %+v", r0)
	}
	r1 := f.Results[1]
	if r1.Name != "BenchmarkBitstreamRead/ReadBits" || r1.Procs != 8 {
		t.Fatalf("procs suffix not stripped: %+v", r1)
	}
	if r1.BytesPerOp != -1 || r1.AllocsPerOp != -1 {
		t.Fatalf("absent allocs should be -1: %+v", r1)
	}
	r2 := f.Results[2]
	if r2.Pkg != "repro" || r2.Extra["bestrate%"] != 77.10 || r2.Extra["spread%"] != 1.20 {
		t.Fatalf("custom metrics not captured: %+v", r2)
	}
	if r0.Key() == r2.Key() {
		t.Fatal("keys must include the package")
	}
}

func TestParseNoResults(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 0.1s\n")); err == nil {
		t.Fatal("want error for output without benchmark lines")
	}
}

const sampleTest2JSON = `{"Time":"2026-07-29T10:40:44Z","Action":"start","Package":"repro/internal/bitstream"}
{"Time":"2026-07-29T10:40:44Z","Action":"output","Package":"repro/internal/bitstream","Output":"goos: linux\n"}
{"Time":"2026-07-29T10:40:44Z","Action":"output","Package":"repro/internal/bitstream","Output":"pkg: repro/internal/bitstream\n"}
{"Time":"2026-07-29T10:40:44Z","Action":"output","Package":"repro/internal/bitstream","Output":"BenchmarkBitstreamRead/StreamReader       \t       1\t     41766 ns/op\t 169.30 MB/s\t    4144 B/op\t       2 allocs/op\n"}
{"Time":"2026-07-29T10:40:44Z","Action":"pass","Package":"repro/internal/bitstream","Elapsed":0.004}
`

func TestParseTest2JSON(t *testing.T) {
	f, err := ParseTest2JSON(strings.NewReader(sampleTest2JSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(f.Results))
	}
	r := f.Results[0]
	if r.Name != "BenchmarkBitstreamRead/StreamReader" || r.NsPerOp != 41766 || r.MBPerS != 169.30 {
		t.Fatalf("bad migrated result: %+v", r)
	}
}

func TestReadRefusesLegacyFormat(t *testing.T) {
	_, err := Read(strings.NewReader(sampleTest2JSON))
	if err == nil {
		t.Fatal("want error reading a raw test2json stream as a baseline")
	}
	if !strings.Contains(err.Error(), "-migrate") {
		t.Fatalf("error must name the migration command, got: %v", err)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	_, err := Read(strings.NewReader(`{"schema":"tcomp-bench/999","results":[{"name":"BenchmarkX"}]}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(f.Results) || got.Results[0].NsPerOp != f.Results[0].NsPerOp {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
}

func mkFile(ns map[string]float64) *File {
	f := &File{Schema: SchemaVersion}
	for name, v := range ns {
		f.Results = append(f.Results, Result{Pkg: "p", Name: name, Procs: 1, Iters: 10, NsPerOp: v, BytesPerOp: -1, AllocsPerOp: -1})
	}
	return f
}

func TestDiff(t *testing.T) {
	old := mkFile(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkGone": 50})
	new := mkFile(map[string]float64{"BenchmarkA": 105, "BenchmarkB": 120, "BenchmarkNew": 7})

	deltas, regressed := Diff(old, new, 0.08)
	if !regressed {
		t.Fatal("B regressed 20% beyond 8% tolerance; Diff must flag it")
	}
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Key] = d
	}
	if d := byKey["p.BenchmarkA"]; d.Regression {
		t.Fatalf("A within tolerance flagged as regression: %+v", d)
	}
	if d := byKey["p.BenchmarkB"]; !d.Regression {
		t.Fatalf("B not flagged: %+v", d)
	}
	if d := byKey["p.BenchmarkGone"]; d.New != nil || d.Regression {
		t.Fatalf("removed benchmark must not regress: %+v", d)
	}
	if d := byKey["p.BenchmarkNew"]; d.Old != nil || d.Regression {
		t.Fatalf("new benchmark must not regress: %+v", d)
	}

	if _, regressed := Diff(old, new, 0.25); regressed {
		t.Fatal("25% tolerance must absorb a 20% delta")
	}
}

func TestMarkdown(t *testing.T) {
	old := mkFile(map[string]float64{"BenchmarkA": 100})
	new := mkFile(map[string]float64{"BenchmarkA": 200})
	deltas, _ := Diff(old, new, 0.08)
	var buf bytes.Buffer
	if err := Markdown(&buf, deltas, 0.08); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| benchmark |", "p.BenchmarkA", "REGRESSION", "+100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown table missing %q:\n%s", want, out)
		}
	}
}
