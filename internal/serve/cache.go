package serve

import (
	"bytes"
	"container/list"
	"io"
	"sync"

	"repro/internal/artifact"
)

// Cache is the content-addressed result cache: SHA-256 of (canonical
// input, codec, resolved parameters) → the exact container bytes a fresh
// compression would produce. The mapping is sound because the engine
// made compressed output a pure function of that key — worker count,
// scheduling, and chunk arrival order never change the bytes (PR 1/3
// determinism) — so serving a cached artifact is indistinguishable from
// recompressing, minus the CPU.
//
// The cache is a thin index over an artifact.Store: it maps request keys
// to blob digests and keeps the stats sidecar, while the store owns the
// bytes. Two request keys whose outputs happen to be byte-identical
// share one blob (the store is content-addressed), which the eviction
// path respects by reference counting. Eviction is plain LRU by request
// key, bounded by total blob size. Entries larger than the whole budget
// are rejected rather than evicting everything else.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	store    artifact.Store
	size     int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	refs     map[artifact.Digest]int
	// onEvict, when set, is called (under the cache lock) once per
	// evicted entry — the metrics hook.
	onEvict func()
}

// Result is one compressed artifact plus the size accounting the
// response headers report; it is what the cache stores and returns.
type Result struct {
	Body                         []byte
	Patterns, Chunks             int
	OriginalBits, CompressedBits int
}

// RatePercent returns the paper-style compression rate of the artifact.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

// cacheEntry is the index record: digest plus the stats sidecar. The
// body bytes live in the store.
type cacheEntry struct {
	key    string
	digest artifact.Digest
	size   int64
	meta   Result // Body nil; filled in on Get
}

// NewCache returns a cache bounded to maxBytes of stored artifact bytes,
// backed by a private in-memory artifact store. maxBytes <= 0 disables
// caching: Get always misses and Put is a no-op.
func NewCache(maxBytes int64) *Cache {
	return NewCacheWithStore(maxBytes, artifact.NewMemStore())
}

// NewCacheWithStore returns a cache layered over the given artifact
// store. The cache assumes ownership of the blobs it Puts: eviction
// deletes them (per-digest reference counted), so hand it a store of its
// own rather than one shared with the job manager.
func NewCacheWithStore(maxBytes int64, store artifact.Store) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		store:    store,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		refs:     map[artifact.Digest]int{},
	}
}

// Get returns the cached artifact for key, marking it most recently
// used. The returned Result is shared — callers must treat it as
// read-only.
func (c *Cache) Get(key string) (*Result, bool) {
	if c == nil || c.maxBytes <= 0 {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()

	body, err := c.readBlob(e.digest)
	if err != nil {
		// The store and the index disagree (a shared store's GC, bit rot
		// caught by the digest check). Heal: drop the entry and miss.
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.removeEntry(el)
		}
		c.mu.Unlock()
		return nil, false
	}
	res := e.meta
	res.Body = body
	return &res, true
}

// readBlob fetches the entry's bytes, zero-copy when the backing store
// supports it (a cache hit then costs no allocation at all).
func (c *Cache) readBlob(d artifact.Digest) ([]byte, error) {
	if ms, ok := c.store.(*artifact.MemStore); ok {
		if b, ok := ms.GetNoCopy(d); ok {
			return b, nil
		}
		return nil, artifact.ErrNotFound
	}
	rc, err := c.store.Open(d)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

// Put stores res under key, evicting least-recently-used entries until
// the byte budget holds. Storing an existing key refreshes its recency
// (the bytes are identical by construction — the key fixes them).
func (c *Cache) Put(key string, res *Result) {
	if c == nil || c.maxBytes <= 0 || int64(len(res.Body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// The store write happens outside the lock (DiskStore Puts do I/O).
	d, n, err := c.store.Put(bytes.NewReader(res.Body))
	if err != nil {
		return // a cache store failure only costs the cache entry
	}
	meta := *res
	meta.Body = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Lost a Put race for the same key; keep the winner.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, digest: d, size: n, meta: meta})
	c.refs[d]++
	c.size += n
	for c.size > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		c.removeEntry(el)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// removeEntry drops one index entry and, when no other key references
// the blob, deletes it from the store. Caller holds c.mu.
func (c *Cache) removeEntry(el *list.Element) {
	e := c.ll.Remove(el).(*cacheEntry)
	delete(c.items, e.key)
	c.size -= e.size
	c.refs[e.digest]--
	if c.refs[e.digest] <= 0 {
		delete(c.refs, e.digest)
		_ = c.store.Delete(e.digest) // best-effort: an orphan blob falls to GC
	}
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total cached artifact size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
