package serve

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: SHA-256 of (canonical
// input, codec, resolved parameters) → the exact container bytes a fresh
// compression would produce. The mapping is sound because the engine
// made compressed output a pure function of that key — worker count,
// scheduling, and chunk arrival order never change the bytes (PR 1/3
// determinism) — so serving a cached artifact is indistinguishable from
// recompressing, minus the CPU.
//
// Eviction is plain LRU bounded by total byte size. Entries larger than
// the whole budget are rejected rather than evicting everything else.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
}

// Result is one compressed artifact plus the size accounting the
// response headers report; it is what the cache stores.
type Result struct {
	Body                         []byte
	Patterns, Chunks             int
	OriginalBits, CompressedBits int
}

// RatePercent returns the paper-style compression rate of the artifact.
func (r *Result) RatePercent() float64 {
	if r.OriginalBits == 0 {
		return 0
	}
	return 100 * float64(r.OriginalBits-r.CompressedBits) / float64(r.OriginalBits)
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache returns a cache bounded to maxBytes of stored artifact bytes.
// maxBytes <= 0 disables caching: Get always misses and Put is a no-op.
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[string]*list.Element{},
	}
}

// Get returns the cached artifact for key, marking it most recently
// used. The returned Result is shared — callers must treat it as
// read-only.
func (c *Cache) Get(key string) (*Result, bool) {
	if c == nil || c.maxBytes <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting least-recently-used entries until
// the byte budget holds. Storing an existing key refreshes its recency
// (the bytes are identical by construction — the key fixes them).
func (c *Cache) Put(key string, res *Result) {
	if c == nil || c.maxBytes <= 0 || int64(len(res.Body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	c.size += int64(len(res.Body))
	for c.size > c.maxBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		e := c.ll.Remove(el).(*cacheEntry)
		delete(c.items, e.key)
		c.size -= int64(len(e.res.Body))
	}
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total cached artifact size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
