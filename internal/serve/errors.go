// Error taxonomy of the tcompd HTTP API. Every non-2xx answer carries a
// machine-readable JSON body
//
//	{"code": "<taxonomy code>", "error": "<human message>", "status": <http status>}
//
// and an X-Tcomp-Error-Code header. Failures discovered after the
// response body has started streaming cannot change the status line any
// more; they travel as the X-Tcomp-Error / X-Tcomp-Error-Code trailers
// instead, with the same code vocabulary. tcomp.Client folds both
// channels into typed sentinel errors.
//
// The codes and their statuses:
//
//	bad_request        400  malformed request: unknown/out-of-range query
//	                        parameter, bad test-set syntax, a body that is
//	                        not a tcomp container at all
//	method_not_allowed 405  wrong HTTP method for the endpoint
//	request_too_large  413  the request body hit the daemon's MaxBodyBytes
//	                        cap (http.MaxBytesReader); split the submission
//	                        or raise the daemon's limit
//	corrupt_container  422  the body parses as a tcomp container but is
//	                        corrupt or truncated (bad CRC, payload shorter
//	                        than declared, hostile dimensions, undecodable
//	                        bitstream)
//	unprocessable      422  well-formed input the codec cannot process
//	                        (e.g. a block covering that fails)
//	flow_invalid_circuit 422  a flow submission whose circuit is unusable:
//	                        malformed .bench netlist, a netlist over the
//	                        flow size caps (signals/inputs/fanin), or an
//	                        unknown benchmark name
//	job_not_found      404  the job ID names no known job (never submitted,
//	                        removed, or its result artifact already
//	                        garbage-collected)
//	job_not_done       409  the job exists but has no fetchable result:
//	                        still pending/running, or it failed or was
//	                        cancelled
//	queue_full         429  the async job backlog is at the daemon's
//	                        -max-jobs bound; resubmit later
//	internal_panic     500  a bug reached a panic; the panic was contained
//	                        (one request degraded, the daemon lives) and
//	                        counted in the panics metric
//	unavailable        503  draining, or the request was cancelled while
//	                        queued for a worker
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/pipeline"
)

// Taxonomy codes. Keep in sync with the package comment above and the
// README's serving section.
const (
	CodeBadRequest         = "bad_request"
	CodeMethodNotAllowed   = "method_not_allowed"
	CodeTooLarge           = "request_too_large"
	CodeCorruptContainer   = "corrupt_container"
	CodeUnprocessable      = "unprocessable"
	CodeFlowInvalidCircuit = "flow_invalid_circuit"
	CodeJobNotFound        = "job_not_found"
	CodeJobNotDone         = "job_not_done"
	CodeQueueFull          = "queue_full"
	CodeInternalPanic      = "internal_panic"
	CodeUnavailable        = "unavailable"
)

// statusOf maps a taxonomy code to its HTTP status.
func statusOf(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeCorruptContainer, CodeUnprocessable, CodeFlowInvalidCircuit:
		return http.StatusUnprocessableEntity
	case CodeJobNotFound:
		return http.StatusNotFound
	case CodeJobNotDone:
		return http.StatusConflict
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ErrorBody is the JSON error object of every non-2xx answer. RequestID
// echoes the response's X-Request-Id when the request passed through the
// instrument middleware, so a client error report names the exact
// server-side trace to grep the logs for.
type ErrorBody struct {
	Code      string `json:"code"`
	Error     string `json:"error"`
	Status    int    `json:"status"`
	RequestID string `json:"request_id,omitempty"`
}

// writeError answers with the taxonomy's JSON error object. It must only
// be called before any body bytes have been written. The request ID is
// read back from the response header the middleware set — writeError
// keeps its context-free signature, which every handler and test relies
// on.
func writeError(w http.ResponseWriter, code string, format string, args ...any) {
	status := statusOf(code)
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-Tcomp-Error-Code", code)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorBody{ // client gone: nothing to do
		Code:      code,
		Error:     fmt.Sprintf(format, args...),
		Status:    status,
		RequestID: h.Get("X-Request-Id"),
	})
}

// bodyErrorCode spots a request body that hit the MaxBytesReader cap —
// the read error is *http.MaxBytesError however many layers wrapped it —
// and classifies it as request_too_large instead of whatever parse error
// the truncation surfaced as. Everything else keeps the fallback code.
func bodyErrorCode(err error, fallback string) string {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return CodeTooLarge
	}
	return fallback
}

// compressErrorCode classifies a failure of the compression path: a
// panic contained by the pipeline engine (surfacing as a job error that
// wraps pipeline.ErrPanic) is an internal bug, a body-cap hit is the
// client's size problem, everything else is input the codec could not
// process.
func compressErrorCode(err error) string {
	if errors.Is(err, pipeline.ErrPanic) {
		return CodeInternalPanic
	}
	return bodyErrorCode(err, CodeUnprocessable)
}

// decodeErrorCode classifies a failure of the decompression path: a
// contained panic is internal, a body-cap hit is the client's size
// problem, everything else means the container was corrupt or
// truncated.
func decodeErrorCode(err error) string {
	if errors.Is(err, pipeline.ErrPanic) {
		return CodeInternalPanic
	}
	return bodyErrorCode(err, CodeCorruptContainer)
}

// trailerError records a failure discovered after body bytes have been
// streamed: the status line is gone, so the code and message travel as
// trailers (declared by the streaming handlers up front).
func trailerError(h http.Header, code string, err error) {
	h.Set("X-Tcomp-Error", err.Error())
	h.Set("X-Tcomp-Error-Code", code)
}
