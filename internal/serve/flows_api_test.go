package serve

// End-to-end coverage of the flow API: POST /v1/flows through the job
// manager to the artifact fetches, the flow_invalid_circuit taxonomy,
// and the benchmark registry endpoint — all through real
// request/response cycles and the tcomp.Client flow methods.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	tcomp "repro"
)

// flowClient builds a fast-polling client against a fresh in-memory
// server.
func flowClient(t *testing.T) (*Server, *tcomp.Client) {
	t.Helper()
	s, c := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	c.PollInterval = 2 * time.Millisecond
	return s, c
}

// fastFlowRequest keeps a daemon-side flow cheap: a small registry
// circuit, a short race sample, and only quick codecs.
func fastFlowRequest(benchmark string) tcomp.FlowRequest {
	return tcomp.FlowRequest{
		Benchmark: benchmark,
		Sample:    16,
		Codecs:    []string{"golomb", "fdr", "9c"},
		Options:   []tcomp.Option{tcomp.WithSeed(7)},
	}
}

// TestFlowLifecycle is the acceptance round trip of the flow service:
// a benchmark flow submitted over HTTP runs circuit → ATPG → race →
// container + Verilog in the background; the report, both artifacts,
// the listings, and the flow metrics all check out.
func TestFlowLifecycle(t *testing.T) {
	s, client := flowClient(t)
	ctx := context.Background()

	j, err := client.SubmitFlow(ctx, fastFlowRequest("s298"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Kind != "flow" || j.Spec.Benchmark != "s298" {
		t.Fatalf("accepted spec %+v, want kind flow benchmark s298", j.Spec)
	}
	if j, err = client.WaitJob(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobDone {
		t.Fatalf("flow ended %q (%s: %s), want done", j.State, j.ErrorCode, j.Error)
	}
	if len(j.Artifacts) != 2 {
		t.Fatalf("done flow carries %d artifacts, want container + verilog", len(j.Artifacts))
	}

	rep, err := client.FlowReport(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CircuitName != "s298" || rep.Tests == nil || rep.Race == nil || rep.Decoder == nil {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if rep.Tests.Patterns == 0 || rep.Tests.CoveragePercent <= 0 {
		t.Fatalf("report has no test generation result: %+v", rep.Tests)
	}
	if rep.Race.Winner == "" || !rep.Verified {
		t.Fatalf("report race/verification incomplete: winner %q verified %v",
			rep.Race.Winner, rep.Verified)
	}
	if len(rep.Artifacts) != 2 {
		t.Fatalf("report lists %d artifacts, want 2", len(rep.Artifacts))
	}
	for _, stage := range []string{"atpg", "race", "compress", "emit-verilog"} {
		if rep.StageSeconds[stage] <= 0 {
			t.Fatalf("stage %q missing from timings %v", stage, rep.StageSeconds)
		}
	}

	// The container artifact decompresses losslessly to the reported
	// pattern count.
	var cbuf bytes.Buffer
	if _, err := client.FlowArtifact(ctx, j.ID, "container", &cbuf); err != nil {
		t.Fatal(err)
	}
	sr, err := tcomp.NewStreamReader(bytes.NewReader(cbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumPatterns() != rep.Tests.Patterns {
		t.Fatalf("container expands to %d patterns, report says %d",
			dec.NumPatterns(), rep.Tests.Patterns)
	}

	// The Verilog artifact is a non-empty module with the pinned name.
	var vbuf bytes.Buffer
	if _, err := client.FlowArtifact(ctx, j.ID, "verilog", &vbuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vbuf.String(), "module "+tcomp.FlowDecoderModule) {
		t.Fatalf("verilog artifact lacks module %s:\n%.200s",
			tcomp.FlowDecoderModule, vbuf.String())
	}

	// Listings: the flow collection has it; so does the generic job list
	// (a flow IS a job).
	flows, err := client.Flows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].ID != j.ID {
		t.Fatalf("flow listing %v does not contain exactly flow %s", flows, j.ID)
	}

	// Flow metrics: every stage observed, coverage gauge set.
	if got := s.Metrics().FlowCoverage(); got != rep.Tests.CoveragePercent {
		t.Fatalf("coverage gauge %v, want %v", got, rep.Tests.CoveragePercent)
	}
	resp, err := http.Get(client.BaseURL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`tcompd_flow_stage_seconds_count{stage="atpg"}`,
		`tcompd_flow_stage_seconds_count{stage="emit-verilog"}`,
		"tcompd_flow_coverage_percent",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("prometheus exposition lacks %q", want)
		}
	}
}

// TestFlowNetlistSubmission submits a caller-supplied .bench body
// instead of a registry name and checks the flow runs on it.
func TestFlowNetlistSubmission(t *testing.T) {
	_, client := flowClient(t)
	ctx := context.Background()

	// Serialize a registry circuit to .bench text: a realistic netlist
	// without hand-maintaining one in the test.
	c, err := tcomp.NewTestFlow(tcomp.FlowSeed(3)).GenerateCircuit(ctx, "s344")
	if err != nil {
		t.Fatal(err)
	}
	var bench bytes.Buffer
	if err := c.WriteBench(&bench); err != nil {
		t.Fatal(err)
	}

	req := fastFlowRequest("")
	req.Netlist = bytes.NewReader(bench.Bytes())
	j, err := client.SubmitFlow(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if j.Spec.Input == "" {
		t.Fatal("netlist submission stored no input blob")
	}
	if j, err = client.WaitJob(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobDone {
		t.Fatalf("flow ended %q (%s: %s), want done", j.State, j.ErrorCode, j.Error)
	}
	rep, err := client.FlowReport(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CircuitInputs != len(c.Inputs) {
		t.Fatalf("flow ran on %d inputs, submitted netlist has %d",
			rep.CircuitInputs, len(c.Inputs))
	}
}

// TestFlowInvalidCircuit: the 422 flow_invalid_circuit taxonomy code,
// and its client-side mapping onto tcomp.ErrInvalidCircuit, for all
// three rejection shapes — unknown benchmark, malformed netlist, and a
// netlist over the flow caps.
func TestFlowInvalidCircuit(t *testing.T) {
	_, client := flowClient(t)
	ctx := context.Background()

	cases := []struct {
		name string
		req  tcomp.FlowRequest
	}{
		{"unknown benchmark", tcomp.FlowRequest{Benchmark: "nope9999"}},
		{"malformed netlist", tcomp.FlowRequest{Netlist: strings.NewReader("not a netlist at all\n")}},
		{"netlist with no inputs", tcomp.FlowRequest{Netlist: strings.NewReader("OUTPUT(z)\nz = AND(z, z)\n")}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := client.SubmitFlow(ctx, tc.req)
			if !errors.Is(err, tcomp.ErrInvalidCircuit) {
				t.Fatalf("got %v, want ErrInvalidCircuit", err)
			}
			var re *tcomp.RemoteError
			if !errors.As(err, &re) || re.Code != "flow_invalid_circuit" || re.Status != 422 {
				t.Fatalf("remote error %+v, want 422 flow_invalid_circuit", re)
			}
		})
	}

	// A non-flow job ID under /v1/flows/ is a 404: distinct resources.
	j, err := client.SubmitCompressJob(ctx, "golomb",
		strings.NewReader(textOfSet(t, 8, 4)), tcomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.FlowReport(ctx, j.ID); !errors.Is(err, tcomp.ErrJobNotFound) {
		t.Fatalf("flow report of a compress job: %v, want ErrJobNotFound", err)
	}
}

// TestBenchmarksEndpoint: GET /v1/benchmarks serves the full registry.
func TestBenchmarksEndpoint(t *testing.T) {
	_, client := flowClient(t)
	rows, err := client.Benchmarks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tcomp.Benchmarks()) {
		t.Fatalf("daemon serves %d benchmarks, registry has %d",
			len(rows), len(tcomp.Benchmarks()))
	}
	seen := map[string]bool{}
	for _, b := range rows {
		if b.Name == "" || b.Kind == "" {
			t.Fatalf("registry row missing name/kind: %+v", b)
		}
		seen[b.Name+"/"+b.Kind] = true
	}
	if !seen["s298/stuck-at"] {
		t.Fatal("registry lacks s298 stuck-at")
	}
}

// textOfSet builds a small textual test set inline.
func textOfSet(t *testing.T, width, patterns int) string {
	t.Helper()
	ts := randomSet(width, patterns, 5)
	var buf bytes.Buffer
	if err := ts.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
