package serve

import (
	"expvar"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics is the daemon's counter set, built on the lock-free obs
// primitives. Every primitive implements expvar.Var and is rooted in a
// private expvar.Map rather than the process-global registry, so every
// Server (and every httptest instance in the test suite) gets an
// independent namespace and GET /metrics keeps serving the JSON
// snapshot it always has. The same primitives are registered — by
// reference, no double accounting — in a Prometheus text-exposition
// registry served at GET /metrics/prometheus.
type Metrics struct {
	root *expvar.Map
	prom *obs.Registry

	// Requests counts completed requests per endpoint path.
	Requests *obs.LabelCounter
	// Latency is the per-endpoint request-duration histogram (seconds).
	Latency *obs.HistogramVec
	// InFlight is the number of requests currently being served.
	InFlight *obs.Gauge
	// WorkersBusy is the number of requests currently holding a token of
	// the shared worker budget; WorkersPeak is its high-water mark,
	// maintained with an atomic compare-and-swap max (the historical
	// check-then-set under a mutex could under-report the peak when the
	// busy reading raced a concurrent release).
	WorkersBusy *obs.Gauge
	WorkersPeak *obs.Gauge
	// BytesIn / BytesOut count request-body bytes consumed and
	// response-body bytes produced by the compress/decompress endpoints.
	BytesIn  *obs.Counter
	BytesOut *obs.Counter
	// CacheHits / CacheMisses count result-cache lookups on /v1/compress;
	// CacheEvictions counts entries the LRU budget pushed out. The root
	// map also exposes cache_hit_ratio, a gauge computed from the two
	// lookup counters (0 until the first lookup).
	CacheHits      *obs.Counter
	CacheMisses    *obs.Counter
	CacheEvictions *obs.Counter
	// Jobs counts async job lifecycle events: submitted, done, failed,
	// cancelled, and queue_full rejections.
	Jobs *obs.LabelCounter
	// RejectedIDs counts client-supplied X-Request-Id headers that
	// SanitizeRequestID refused (control characters, quotes, over-long).
	// A non-zero rate means a client is malformed or probing the logs.
	RejectedIDs *obs.Counter
	// Errors counts requests that ended in a non-2xx status.
	Errors *obs.Counter
	// Panics counts panics contained by the request middleware — each is
	// a bug that degraded one request instead of killing the daemon.
	// Alert on this: it should stay at zero.
	Panics *obs.Counter

	// Rates holds the per-codec compression-rate histograms (paper-style
	// rate percent; the first bucket collects runs where the coded
	// stream grew past the original).
	Rates *obs.HistogramVec

	// FlowStages holds the per-stage wall-clock histograms of flow jobs
	// (atpg, race, compress, emit-verilog).
	FlowStages *obs.HistogramVec
	// flowCoverage is the coverage percent of the most recent flow
	// test-generation stage, stored as float64 bits for the
	// tcompd_flow_coverage_percent gauge.
	flowCoverage atomic.Uint64
}

// latencyBuckets are the request-duration histogram bounds in seconds:
// sub-millisecond health probes up through multi-minute giant-set
// compressions.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// rateBuckets are the compression-rate histogram bounds in rate
// percent, following the paper's definition 100·(orig−comp)/orig: the
// <=0 bucket collects runs where the coded stream grew, then ten-point
// decades up to 100.
var rateBuckets = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

func newMetrics(tracer *obs.Tracer) *Metrics {
	m := &Metrics{
		Requests:       &obs.LabelCounter{},
		Latency:        obs.NewHistogramVec(latencyBuckets...),
		InFlight:       &obs.Gauge{},
		WorkersBusy:    &obs.Gauge{},
		WorkersPeak:    &obs.Gauge{},
		BytesIn:        &obs.Counter{},
		BytesOut:       &obs.Counter{},
		CacheHits:      &obs.Counter{},
		CacheMisses:    &obs.Counter{},
		CacheEvictions: &obs.Counter{},
		Jobs:           &obs.LabelCounter{},
		RejectedIDs:    &obs.Counter{},
		Errors:         &obs.Counter{},
		Panics:         &obs.Counter{},
		Rates:          obs.NewHistogramVec(rateBuckets...),
		FlowStages:     obs.NewHistogramVec(latencyBuckets...),
	}
	hitRatio := func() float64 {
		hits, misses := m.CacheHits.Value(), m.CacheMisses.Value()
		if hits+misses == 0 {
			return 0.0
		}
		return float64(hits) / float64(hits+misses)
	}

	m.root = new(expvar.Map).Init()
	m.root.Set("requests", m.Requests)
	m.root.Set("in_flight", m.InFlight)
	m.root.Set("workers_busy", m.WorkersBusy)
	m.root.Set("workers_peak", m.WorkersPeak)
	m.root.Set("bytes_in", m.BytesIn)
	m.root.Set("bytes_out", m.BytesOut)
	m.root.Set("cache_hits", m.CacheHits)
	m.root.Set("cache_misses", m.CacheMisses)
	m.root.Set("cache_evictions", m.CacheEvictions)
	m.root.Set("cache_hit_ratio", expvar.Func(func() any { return hitRatio() }))
	m.root.Set("jobs", m.Jobs)
	m.root.Set("rejected_request_ids", m.RejectedIDs)
	m.root.Set("errors", m.Errors)
	m.root.Set("panics", m.Panics)
	m.root.Set("compression_rate", m.Rates)
	m.root.Set("request_latency", m.Latency)
	m.root.Set("flow_stage_seconds", m.FlowStages)
	m.root.Set("flow_coverage_percent", expvar.Func(func() any { return m.FlowCoverage() }))

	// The Prometheus view over the same primitives. Names follow the
	// exposition conventions: _total counters, base-unit seconds.
	// Keep this table in sync with the README's metric-name table.
	p := obs.NewRegistry()
	p.CounterVec("tcompd_requests_total", "Completed requests per endpoint path.", "path", m.Requests)
	p.HistogramVec("tcompd_request_duration_seconds", "Request latency per endpoint path.", "path", m.Latency)
	p.Gauge("tcompd_in_flight_requests", "Requests currently being served.", m.InFlight)
	p.Gauge("tcompd_workers_busy", "Requests currently holding a shared worker token.", m.WorkersBusy)
	p.Gauge("tcompd_workers_peak", "High-water mark of concurrently held worker tokens.", m.WorkersPeak)
	p.Counter("tcompd_bytes_in_total", "Request-body bytes consumed.", m.BytesIn)
	p.Counter("tcompd_bytes_out_total", "Response-body bytes produced.", m.BytesOut)
	p.Counter("tcompd_cache_hits_total", "Result-cache hits.", m.CacheHits)
	p.Counter("tcompd_cache_misses_total", "Result-cache misses.", m.CacheMisses)
	p.Counter("tcompd_cache_evictions_total", "Result-cache LRU evictions.", m.CacheEvictions)
	p.GaugeFunc("tcompd_cache_hit_ratio", "Cache hits over lookups (0 until the first lookup).", hitRatio)
	p.CounterVec("tcompd_jobs_total", "Async job lifecycle events.", "event", m.Jobs)
	p.Counter("tcompd_rejected_request_ids_total", "Client-supplied X-Request-Id headers refused by sanitization.", m.RejectedIDs)
	p.Counter("tcompd_errors_total", "Requests answered with a non-2xx status.", m.Errors)
	p.Counter("tcompd_panics_total", "Panics contained by the request middleware.", m.Panics)
	p.HistogramVec("tcompd_compression_rate_percent", "Compression rate per codec, paper-style percent.", "codec", m.Rates)
	p.HistogramVec("tcompd_flow_stage_seconds", "Flow job stage wall-clock per stage (atpg, race, compress, emit-verilog).", "stage", m.FlowStages)
	p.GaugeFunc("tcompd_flow_coverage_percent", "Coverage percent of the most recent flow test-generation stage.", m.FlowCoverage)

	// Runtime telemetry: scheduler and heap gauges every perf claim
	// leans on, sampled through a short-TTL memoizer because
	// ReadMemStats stops the world.
	rt := &runtimeSampler{}
	p.GaugeFunc("tcompd_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	p.GaugeFunc("tcompd_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		return float64(rt.stats().HeapAlloc)
	})
	p.GaugeFunc("tcompd_heap_objects", "Allocated heap objects.", func() float64 {
		return float64(rt.stats().HeapObjects)
	})
	p.GaugeFunc("tcompd_next_gc_bytes", "Heap size that triggers the next GC cycle.", func() float64 {
		return float64(rt.stats().NextGC)
	})
	p.CounterFunc("tcompd_gc_cycles_total", "Completed GC cycles.", func() float64 {
		return float64(rt.stats().NumGC)
	})
	m.root.Set("goroutines", expvar.Func(func() any { return runtime.NumGoroutine() }))

	// Exporter accounting, when the tracer's exporter keeps any (the
	// OTLP exporter's bounded queue): saturation and span loss must be
	// visible before traces silently thin out.
	if st, ok := tracer.ExporterStats(); ok {
		p.GaugeFunc("tcompd_trace_export_queue_depth", "Spans waiting in the trace exporter queue.", func() float64 {
			return float64(st.QueueDepth())
		})
		p.CounterFunc("tcompd_trace_spans_exported_total", "Spans delivered to the trace collector.", func() float64 {
			return float64(st.Exported())
		})
		p.CounterFunc("tcompd_trace_spans_dropped_total", "Spans lost to a full exporter queue or exhausted retries.", func() float64 {
			return float64(st.Dropped())
		})
	}
	m.prom = p
	return m
}

// runtimeSampler memoizes runtime.ReadMemStats for a second: scrapes
// and the JSON snapshot may hit several heap gauges per pass, and
// ReadMemStats stops the world each call.
type runtimeSampler struct {
	mu   sync.Mutex
	at   time.Time
	mem  runtime.MemStats
	init bool
}

func (r *runtimeSampler) stats() runtime.MemStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.init || time.Since(r.at) > time.Second {
		runtime.ReadMemStats(&r.mem)
		r.at = time.Now()
		r.init = true
	}
	return r.mem
}

// ObserveRate records one compression run's paper-style rate (percent)
// under the codec's histogram, creating it on first use.
func (m *Metrics) ObserveRate(codec string, rate float64) {
	m.Rates.Observe(codec, rate)
}

// ObserveFlowStage records one flow stage's wall-clock seconds.
func (m *Metrics) ObserveFlowStage(stage string, seconds float64) {
	m.FlowStages.Observe(stage, seconds)
}

// SetFlowCoverage publishes the coverage percent of a flow's completed
// test-generation stage.
func (m *Metrics) SetFlowCoverage(percent float64) {
	m.flowCoverage.Store(math.Float64bits(percent))
}

// FlowCoverage returns the most recently published flow coverage.
func (m *Metrics) FlowCoverage() float64 {
	return math.Float64frombits(m.flowCoverage.Load())
}

// noteWorker tracks the shared-budget occupancy and its high-water
// mark. The atomic Add returns the exact occupancy this caller created,
// and SetMax folds it into the peak with a CAS loop — no window for a
// concurrent release to make the peak under-report.
func (m *Metrics) noteWorker(delta int64) {
	busy := m.WorkersBusy.Add(delta)
	if delta > 0 {
		m.WorkersPeak.SetMax(busy)
	}
}

// String returns the metrics snapshot as a JSON object.
func (m *Metrics) String() string { return m.root.String() }

// ServeHTTP implements GET /metrics.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, m.root.String())
}

// Prometheus returns the text-exposition registry (served at
// GET /metrics/prometheus).
func (m *Metrics) Prometheus() *obs.Registry { return m.prom }
