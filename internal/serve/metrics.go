package serve

import (
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// Metrics is the daemon's counter set, built from expvar primitives but
// rooted in a private Map rather than the process-global registry, so
// every Server (and every httptest instance in the test suite) gets an
// independent namespace. GET /metrics serves the root map's JSON.
type Metrics struct {
	root *expvar.Map

	// Requests counts completed requests per endpoint path.
	Requests *expvar.Map
	// InFlight is the number of requests currently being served.
	InFlight *expvar.Int
	// WorkersBusy is the number of requests currently holding a token of
	// the shared worker budget; WorkersPeak is its high-water mark.
	WorkersBusy *expvar.Int
	WorkersPeak *expvar.Int
	// BytesIn / BytesOut count request-body bytes consumed and
	// response-body bytes produced by the compress/decompress endpoints.
	BytesIn  *expvar.Int
	BytesOut *expvar.Int
	// CacheHits / CacheMisses count result-cache lookups on /v1/compress;
	// CacheEvictions counts entries the LRU budget pushed out. The root
	// map also exposes cache_hit_ratio, a gauge computed from the two
	// lookup counters (0 until the first lookup).
	CacheHits      *expvar.Int
	CacheMisses    *expvar.Int
	CacheEvictions *expvar.Int
	// Jobs counts async job lifecycle events: submitted, done, failed,
	// cancelled, and queue_full rejections.
	Jobs *expvar.Map
	// Errors counts requests that ended in a non-2xx status.
	Errors *expvar.Int
	// Panics counts panics contained by the request middleware — each is
	// a bug that degraded one request instead of killing the daemon.
	// Alert on this: it should stay at zero.
	Panics *expvar.Int

	mu    sync.Mutex
	rates map[string]*RateHistogram // per-codec compression-rate histograms
	rmap  *expvar.Map
}

func newMetrics() *Metrics {
	m := &Metrics{
		Requests:       new(expvar.Map).Init(),
		InFlight:       new(expvar.Int),
		WorkersBusy:    new(expvar.Int),
		WorkersPeak:    new(expvar.Int),
		BytesIn:        new(expvar.Int),
		BytesOut:       new(expvar.Int),
		CacheHits:      new(expvar.Int),
		CacheMisses:    new(expvar.Int),
		CacheEvictions: new(expvar.Int),
		Jobs:           new(expvar.Map).Init(),
		Errors:         new(expvar.Int),
		Panics:         new(expvar.Int),
		rates:          map[string]*RateHistogram{},
		rmap:           new(expvar.Map).Init(),
	}
	m.root = new(expvar.Map).Init()
	m.root.Set("requests", m.Requests)
	m.root.Set("in_flight", m.InFlight)
	m.root.Set("workers_busy", m.WorkersBusy)
	m.root.Set("workers_peak", m.WorkersPeak)
	m.root.Set("bytes_in", m.BytesIn)
	m.root.Set("bytes_out", m.BytesOut)
	m.root.Set("cache_hits", m.CacheHits)
	m.root.Set("cache_misses", m.CacheMisses)
	m.root.Set("cache_evictions", m.CacheEvictions)
	m.root.Set("cache_hit_ratio", expvar.Func(func() any {
		hits, misses := m.CacheHits.Value(), m.CacheMisses.Value()
		if hits+misses == 0 {
			return 0.0
		}
		return float64(hits) / float64(hits+misses)
	}))
	m.root.Set("jobs", m.Jobs)
	m.root.Set("errors", m.Errors)
	m.root.Set("panics", m.Panics)
	m.root.Set("compression_rate", m.rmap)
	return m
}

// ObserveRate records one compression run's paper-style rate (percent)
// under the codec's histogram, creating it on first use.
func (m *Metrics) ObserveRate(codec string, rate float64) {
	m.mu.Lock()
	h, ok := m.rates[codec]
	if !ok {
		h = &RateHistogram{}
		m.rates[codec] = h
		m.rmap.Set(codec, h)
	}
	m.mu.Unlock()
	h.Observe(rate)
}

// noteWorker tracks the shared-budget occupancy high-water mark.
// expvar.Int has no compare-and-swap, so the peak update runs under the
// metrics lock.
func (m *Metrics) noteWorker(delta int64) {
	m.WorkersBusy.Add(delta)
	if delta <= 0 {
		return
	}
	busy := m.WorkersBusy.Value()
	m.mu.Lock()
	if m.WorkersPeak.Value() < busy {
		m.WorkersPeak.Set(busy)
	}
	m.mu.Unlock()
}

// String returns the metrics snapshot as a JSON object.
func (m *Metrics) String() string { return m.root.String() }

// ServeHTTP implements GET /metrics.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, m.root.String())
}

// rateBuckets are the histogram bucket upper bounds in rate percent. A
// compression rate can be negative (the coded stream grew), so the first
// bucket is open below.
var rateBuckets = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// RateHistogram is a fixed-bucket histogram of compression rates,
// exposed as an expvar.Var. Buckets follow the paper's rate definition
// 100·(orig−comp)/orig: "<0" collects runs where the coded stream grew,
// then ten-point decades up to 100.
type RateHistogram struct {
	mu      sync.Mutex
	buckets [12]int64
	count   int64
	sum     float64
}

// Observe records one rate observation (percent).
func (h *RateHistogram) Observe(rate float64) {
	idx := len(rateBuckets)
	for i, ub := range rateBuckets {
		if rate <= ub {
			idx = i
			break
		}
	}
	h.mu.Lock()
	h.buckets[idx]++
	h.count++
	h.sum += rate
	h.mu.Unlock()
}

// String renders the histogram as JSON (count, mean, bucket counts).
func (h *RateHistogram) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var b strings.Builder
	mean := 0.0
	if h.count > 0 {
		mean = h.sum / float64(h.count)
	}
	fmt.Fprintf(&b, `{"count":%d,"mean":%.2f,"buckets":{`, h.count, mean)
	for i := range h.buckets {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", bucketLabel(i), h.buckets[i])
	}
	b.WriteString("}}")
	return b.String()
}

func bucketLabel(i int) string {
	switch {
	case i == 0:
		return "<0"
	case i < len(rateBuckets):
		return fmt.Sprintf("%g-%g", rateBuckets[i-1], rateBuckets[i])
	default:
		return ">100"
	}
}
