package serve

// Crash containment, daemon level: a codec that panics — on the request
// goroutine (buffered path, Decompress) or on a pipeline worker
// goroutine (streaming path) — must degrade that one request to a
// taxonomy error while the daemon keeps serving everyone else. This is
// the test the tentpole hangs on: before the containment work, any of
// these panics killed the process for every connected client.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	tcomp "repro"
	"repro/internal/testset"
)

// boomCodec panics in every method that processes input — the stand-in
// for an undiscovered bug in a real codec.
type boomCodec struct{}

func (boomCodec) Name() string { return "boom" }

func (boomCodec) Compress(ctx context.Context, ts *tcomp.TestSet, opts ...tcomp.Option) (*tcomp.Artifact, error) {
	panic("boom: compress bug")
}

func (boomCodec) Decompress(a *tcomp.Artifact) (*tcomp.TestSet, error) {
	panic("boom: decompress bug")
}

func init() { tcomp.Register(boomCodec{}) }

// silenceLogs suppresses the contained-panic stack traces the
// middleware logs, which would otherwise drown the test output.
func silenceLogs(t *testing.T) {
	t.Helper()
	old := log.Writer()
	log.SetOutput(io.Discard)
	t.Cleanup(func() { log.SetOutput(old) })
}

func postBody(t *testing.T, h http.Handler, url, body string) *http.Response {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result()
}

func decodeErrorBody(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	var e ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body does not parse: %v", err)
	}
	return e
}

// TestPanicContainmentBuffered: a buffered (v2) compress against the
// panicking codec answers 500 internal_panic; the daemon then still
// serves a real request, and the panic counter recorded the event.
func TestPanicContainmentBuffered(t *testing.T) {
	silenceLogs(t)
	s := mustServer(t, Config{Workers: 2})
	h := s.Handler()

	resp := postBody(t, h, "/v1/compress?codec=boom&format=v2", "4 1\n0101\n")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Tcomp-Error-Code"); got != CodeInternalPanic {
		t.Fatalf("X-Tcomp-Error-Code %q, want %q", got, CodeInternalPanic)
	}
	e := decodeErrorBody(t, resp)
	if e.Code != CodeInternalPanic || e.Status != 500 {
		t.Fatalf("error body %+v, want code %q status 500", e, CodeInternalPanic)
	}
	if got := s.Metrics().Panics.Value(); got < 1 {
		t.Fatalf("panics counter %d, want >= 1", got)
	}

	// The daemon lives: a well-formed request still succeeds.
	resp = postBody(t, h, "/v1/compress?codec=golomb&format=v2", "4 2\n0101\n1X0X\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request status %d, want 200", resp.StatusCode)
	}
}

// TestPanicContainmentStreaming: on the streaming (v3) path the codec
// runs on pipeline worker goroutines; the recovered panic surfaces as
// an internal_panic trailer on the truncated stream.
func TestPanicContainmentStreaming(t *testing.T) {
	silenceLogs(t)
	s := mustServer(t, Config{Workers: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/v1/compress?codec=boom", "text/plain", strings.NewReader("4 1\n0101\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		// Accepted before the first chunk panicked: the body must be a
		// truncated stream flagged by the internal_panic trailer.
		if code := resp.Trailer.Get("X-Tcomp-Error-Code"); code != CodeInternalPanic {
			t.Fatalf("trailer code %q (X-Tcomp-Error %q), want %q",
				code, resp.Trailer.Get("X-Tcomp-Error"), CodeInternalPanic)
		}
		if _, err := tcomp.NewStreamReader(bytes.NewReader(body)); err == nil {
			sr, _ := tcomp.NewStreamReader(bytes.NewReader(body))
			if _, err := sr.ReadAll(); err == nil {
				t.Fatal("panicked stream decoded cleanly; it must be visibly truncated")
			}
		}
	} else if resp.StatusCode != http.StatusInternalServerError &&
		resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 200+trailer or 500/422", resp.StatusCode)
	}
	if got := s.Metrics().Panics.Value() + s.Metrics().Errors.Value(); got < 1 {
		t.Fatalf("no panic or error accounted (panics=%d errors=%d)",
			s.Metrics().Panics.Value(), s.Metrics().Errors.Value())
	}

	// Daemon still alive for the next client.
	ok, err := http.Post(hs.URL+"/v1/compress?codec=rl&b=4", "text/plain", strings.NewReader("4 2\n0101\n1X0X\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request status %d, want 200", ok.StatusCode)
	}
}

// TestPanicContainmentDecompress: a container naming the panicking
// codec drives the panic through the decompress path; containment
// answers 500 and keeps serving.
func TestPanicContainmentDecompress(t *testing.T) {
	silenceLogs(t)
	s := mustServer(t, Config{Workers: 2})
	h := s.Handler()

	// A well-formed v2 container whose codec panics on decode.
	art := &tcomp.Artifact{Codec: "boom", Width: 4, Patterns: 1, OriginalBits: 4,
		CompressedBits: 8, Payload: []byte{0xAB}, NBits: 8}
	var buf bytes.Buffer
	if err := tcomp.Write(&buf, art); err != nil {
		t.Fatal(err)
	}
	resp := postBody(t, h, "/v1/decompress", buf.String())
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if e := decodeErrorBody(t, resp); e.Code != CodeInternalPanic {
		t.Fatalf("error code %q, want %q", e.Code, CodeInternalPanic)
	}
	if resp2 := postBody(t, h, "/v1/codecs", ""); resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("daemon dead after contained panic? /v1/codecs POST gave %d", resp2.StatusCode)
	}
}

// TestPanicMidBufferedBodyAbortsConnection: a panic after body bytes
// started on a handler without declared trailers cannot be reported
// in-band (net/http drops undeclared trailers), so containment must
// abort the connection — the client sees a transport-level truncation,
// never a clean 200 over a short body.
func TestPanicMidBufferedBodyAbortsConnection(t *testing.T) {
	silenceLogs(t)
	s := mustServer(t, Config{Workers: 1})
	h := s.instrument("/boom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "64")
		if _, err := w.Write([]byte("partial")); err != nil {
			t.Errorf("write: %v", err)
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic("mid-body bug")
	})
	hs := httptest.NewServer(h)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/boom")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("client saw a clean response; a mid-body panic must surface as a truncation error")
	}
	if got := s.Metrics().Panics.Value(); got != 1 {
		t.Fatalf("panics counter %d, want 1", got)
	}
}

// TestErrorTaxonomy pins the status/code mapping of the three request
// outcomes the issue names: 400 malformed request, 422 corrupt
// container, plus the machine-readable JSON body shape on each.
func TestErrorTaxonomy(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	h := s.Handler()

	cases := []struct {
		label      string
		url, body  string
		wantStatus int
		wantCode   string
	}{
		{"unknown parameter", "/v1/compress?codec=golomb&bogus=1", "4 1\n0101\n", 400, CodeBadRequest},
		{"out-of-range b", "/v1/compress?codec=rl&b=31", "4 1\n0101\n", 400, CodeBadRequest},
		{"bad test set", "/v1/compress?codec=golomb", "not a test set", 400, CodeBadRequest},
		{"not a container", "/v1/decompress", "garbage body", 400, CodeBadRequest},
		{"truncated container", "/v1/decompress", "TCMP\x02", 422, CodeCorruptContainer},
	}
	for _, c := range cases {
		resp := postBody(t, h, c.url, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d", c.label, resp.StatusCode, c.wantStatus)
			continue
		}
		e := decodeErrorBody(t, resp)
		if e.Code != c.wantCode || e.Status != c.wantStatus || e.Error == "" {
			t.Errorf("%s: body %+v, want code %q status %d and a message", c.label, e, c.wantCode, c.wantStatus)
		}
		if got := resp.Header.Get("X-Tcomp-Error-Code"); got != c.wantCode {
			t.Errorf("%s: X-Tcomp-Error-Code %q, want %q", c.label, got, c.wantCode)
		}
	}
}

// TestCorruptContainerIs422 generates a real container, corrupts its
// payload region, and requires the decompress endpoint to classify the
// parse failure as 422 corrupt_container (a clean 400 remains reserved
// for bodies that are not containers at all).
func TestCorruptContainerIs422(t *testing.T) {
	ts, err := testset.ParseStrings("01X10X10", "111000XX")
	if err != nil {
		t.Fatal(err)
	}
	codec, err := tcomp.Lookup("golomb")
	if err != nil {
		t.Fatal(err)
	}
	art, err := codec.Compress(context.Background(), ts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tcomp.Write(&buf, art); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	s := mustServer(t, Config{Workers: 1})
	h := s.Handler()
	seen422 := false
	for cut := 5; cut < len(blob); cut++ {
		resp := postBody(t, h, "/v1/decompress", string(blob[:cut]))
		switch resp.StatusCode {
		case http.StatusUnprocessableEntity:
			seen422 = true
			if e := decodeErrorBody(t, resp); e.Code != CodeCorruptContainer {
				t.Fatalf("truncation at %d: code %q, want %q", cut, e.Code, CodeCorruptContainer)
			}
		case http.StatusBadRequest, http.StatusOK:
			// Sniff-level rejections stay 400; a truncation that still
			// parses (trailing padding) may decode.
		default:
			t.Fatalf("truncation at %d: status %d", cut, resp.StatusCode)
		}
	}
	if !seen422 {
		t.Fatal("no truncation produced a 422 corrupt_container")
	}
}

// TestSchemaMatchesValidation is the satellite regression test: for
// every parameter the schema advertises, the daemon must accept the
// advertised Min and Max and reject Max+1 — so the /v1/codecs listing
// and the request validator can never drift apart again (the historical
// instance: b advertised up to 64, rejected above 30).
func TestSchemaMatchesValidation(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	h := s.Handler()
	tried := 0
	for _, info := range tcomp.CodecSchemas() {
		if info.Name == "ea" || info.Name == "boom" {
			continue // ea is too slow for a schema sweep; boom panics by design
		}
		for _, p := range info.Params {
			if p.Range == nil || p.Query == "chunk" || p.Query == "m" {
				continue // unbounded, or too slow at Max (m=2^20 search)
			}
			for _, v := range []int64{p.Range.Min, p.Range.Max} {
				url := fmt.Sprintf("/v1/compress?codec=%s&%s=%d", info.Name, p.Query, v)
				resp := postBody(t, h, url, "8 2\n01X10X10\n00001111\n")
				// The advertised range is the syntactic contract: a value
				// inside it must never be rejected as a malformed request
				// (400). A codec may still refuse it semantically — 9c
				// needs an even k, selhuff caps k at 62 — which the
				// taxonomy reports as 422 unprocessable.
				if resp.StatusCode == http.StatusBadRequest {
					t.Errorf("%s %s=%d (advertised in range): status 400", info.Name, p.Query, v)
				}
				tried++
			}
			url := fmt.Sprintf("/v1/compress?codec=%s&%s=%d", info.Name, p.Query, p.Range.Max+1)
			resp := postBody(t, h, url, "8 2\n01X10X10\n00001111\n")
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s=%d (above advertised max): status %d, want 400", info.Name, p.Query, p.Range.Max+1, resp.StatusCode)
			}
		}
	}
	if tried == 0 {
		t.Fatal("schema sweep exercised no parameters")
	}
	// The historical drift, pinned explicitly: the advertised b range is
	// the rl codec's own 1..30.
	for _, info := range tcomp.CodecSchemas() {
		if info.Name != "rl" {
			continue
		}
		for _, p := range info.Params {
			if p.Query == "b" {
				if p.Range == nil || p.Range.Min != 1 || p.Range.Max != 30 {
					t.Fatalf("rl b advertises %+v, want [1,30]", p.Range)
				}
				return
			}
		}
	}
	t.Fatal("rl schema has no b row")
}
