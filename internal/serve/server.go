// Package serve is the network face of the compression engine: a
// long-running HTTP service (cmd/tcompd) that multiplexes many clients
// over the codec registry, the streaming container, and the pipeline
// worker pool.
//
// Endpoints:
//
//	POST /v1/compress    textual patterns (or binary test set) in,
//	                     container out; ?codec= selects the scheme and
//	                     the remaining query parameters map onto the
//	                     functional options (see GET /v1/codecs).
//	                     ?format=v3 (default) streams a chunked
//	                     container at O(chunk) memory; ?format=v2
//	                     buffers and answers with the universal
//	                     container.
//	POST /v1/decompress  container of any version in (v1/v2/v3
//	                     auto-detected through container.Sniff),
//	                     textual patterns out.
//	GET  /v1/codecs      registry listing with per-codec param schema.
//	POST /v1/jobs        async submission: the body is stored in the
//	                     content-addressed artifact store and the work
//	                     runs as a background job; answers 202 with the
//	                     job record. ?kind= selects compress (default),
//	                     decompress, or sweep; the remaining query
//	                     parameters mirror /v1/compress.
//	GET  /v1/jobs        job listing.
//	GET  /v1/jobs/{id}   one job record (state, progress, stats).
//	GET  /v1/jobs/{id}/result  the finished job's artifact bytes.
//	DELETE /v1/jobs/{id} cancel an active job / remove a terminal one.
//	POST /v1/flows       async hardware-test flow: the body is a .bench
//	                     netlist (or empty with ?benchmark= naming a
//	                     registry circuit to generate); the flow runs
//	                     ATPG, races every codec on a sampled prefix,
//	                     compresses the full set with the winner, and
//	                     synthesizes the Verilog decoder. Answers 202
//	                     with the job record.
//	GET  /v1/flows       flow job listing.
//	GET  /v1/flows/{id}  one flow record.
//	GET  /v1/flows/{id}/result          the JSON flow report.
//	GET  /v1/flows/{id}/artifacts/{name}  a named artifact: "container"
//	                     (the winner's v3 container) or "verilog" (the
//	                     synthesizable decoder module).
//	DELETE /v1/flows/{id} cancel / remove, like /v1/jobs/{id}.
//	GET  /v1/benchmarks  the ISCAS-style registry (paper tables 1 and 2).
//	GET  /healthz        liveness; 503 once draining.
//	GET  /metrics        expvar-style JSON counter snapshot.
//
// Three properties carry over from the engine. Memory: both data
// endpoints stream through tcomp.StreamWriter/StreamReader, so a
// multi-gigabyte test set never materializes in RAM. Admission: every
// request must hold a token of one shared pipeline.Limiter before codec
// work starts, so N concurrent requests share a fixed worker budget
// instead of oversubscribing the machine. Determinism: compressed bytes
// are a pure function of (input, codec, parameters) — worker count and
// scheduling never leak into output — which is what makes the
// content-addressed result cache sound.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	tcomp "repro"
	"repro/internal/artifact"
	"repro/internal/container"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/testset"
)

// Config tunes a Server.
type Config struct {
	// Workers is the shared compression worker budget: the number of
	// requests that may run codec work concurrently. Requests beyond it
	// queue (context-aware) instead of oversubscribing. <= 0 means
	// GOMAXPROCS.
	Workers int
	// CacheBytes bounds the content-addressed result cache. 0 disables
	// caching.
	CacheBytes int64
	// CacheInputBytes caps the canonical input size eligible for
	// caching: larger submissions stream straight through without a
	// cache probe (the probe would have to buffer the input to hash
	// it). <= 0 means 8 MiB.
	CacheInputBytes int64
	// MaxBodyBytes caps a request body. <= 0 means 1 GiB.
	MaxBodyBytes int64
	// JobStore holds async job inputs and outputs (POST /v1/jobs). Nil
	// means a private in-memory store: jobs work, but artifacts do not
	// survive the process. Hand it an artifact.DiskStore for durability.
	JobStore artifact.Store
	// JobDir is the job journal directory; "" keeps job records in
	// memory only.
	JobDir string
	// JobWorkers bounds concurrently running background jobs. <= 0 means
	// GOMAXPROCS — note jobs also hold a token of the shared Workers
	// budget while running, so they never add CPU load beyond it.
	JobWorkers int
	// MaxQueuedJobs bounds the async backlog; submissions beyond it get
	// 429 queue_full. <= 0 means 64.
	MaxQueuedJobs int
	// Logger receives the daemon's structured logs (request completions,
	// contained panics, job transitions). Nil means slog.Default().
	Logger *slog.Logger
	// Tracer mints distributed-trace root spans for requests and jobs
	// and owns the sampling policy + exporter. Nil disables span export
	// but still honors inbound traceparent headers for propagation.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheInputBytes <= 0 {
		c.CacheInputBytes = 8 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 30
	}
	return c
}

// Server implements the tcompd HTTP API on top of the tcomp engine.
type Server struct {
	cfg      Config
	lim      *pipeline.Limiter
	cache    *Cache
	metrics  *Metrics
	log      *slog.Logger
	tracer   *obs.Tracer
	store    artifact.Store // job inputs and outputs
	jobs     *jobs.Manager
	mux      *http.ServeMux
	draining atomic.Bool
}

// New builds a Server with its own worker budget, cache, job manager,
// and metrics. The only failure mode is the job journal directory being
// unusable. Call Close on shutdown to stop the job manager.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Server{
		cfg:     cfg,
		lim:     pipeline.NewLimiter(cfg.Workers),
		cache:   NewCache(cfg.CacheBytes),
		metrics: newMetrics(cfg.Tracer),
		log:     logger,
		tracer:  cfg.Tracer,
	}
	s.cache.onEvict = func() { s.metrics.CacheEvictions.Add(1) }
	store := cfg.JobStore
	if store == nil {
		store = artifact.NewMemStore()
	}
	s.store = store
	mgr, err := jobs.NewManager(jobs.Config{
		Store:     store,
		Dir:       cfg.JobDir,
		Workers:   cfg.JobWorkers,
		MaxQueued: cfg.MaxQueuedJobs,
		Limiter:   s.lim,
		Logger:    logger,
		Tracer:    cfg.Tracer,
		ErrorCode: jobTaxonomyCode,
		Observe: func(j jobs.Job) {
			switch j.State {
			case jobs.StatePending:
				s.metrics.Jobs.Add("submitted", 1)
			case jobs.StateDone:
				s.metrics.Jobs.Add("done", 1)
			case jobs.StateFailed:
				s.metrics.Jobs.Add("failed", 1)
			case jobs.StateCancelled:
				s.metrics.Jobs.Add("cancelled", 1)
			}
		},
		FlowObserve:  s.metrics.ObserveFlowStage,
		FlowCoverage: s.metrics.SetFlowCoverage,
	})
	if err != nil {
		return nil, err
	}
	s.jobs = mgr
	mux := http.NewServeMux()
	mux.Handle("/v1/compress", s.instrument("/v1/compress", s.handleCompress))
	mux.Handle("/v1/decompress", s.instrument("/v1/decompress", s.handleDecompress))
	mux.Handle("/v1/codecs", s.instrument("/v1/codecs", s.handleCodecs))
	mux.Handle("/v1/jobs", s.instrument("/v1/jobs", s.handleJobs))
	mux.Handle("/v1/jobs/", s.instrument("/v1/jobs/", s.handleJobByID))
	mux.Handle("/v1/flows", s.instrument("/v1/flows", s.handleFlows))
	mux.Handle("/v1/flows/", s.instrument("/v1/flows/", s.handleFlowByID))
	mux.Handle("/v1/benchmarks", s.instrument("/v1/benchmarks", s.handleBenchmarks))
	mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/metrics", s.instrument("/metrics", s.metrics.ServeHTTP))
	mux.Handle("/metrics/prometheus", s.instrument("/metrics/prometheus", s.metrics.Prometheus().ServeHTTP))
	s.mux = mux
	return s, nil
}

// jobTaxonomyCode classifies a failed job's error exactly like the
// synchronous endpoints would have (jobs cannot import serve, so the
// mapping is injected here).
func jobTaxonomyCode(kind jobs.Kind, err error) string {
	if errors.Is(err, tcomp.ErrInvalidCircuit) {
		return CodeFlowInvalidCircuit
	}
	if kind == jobs.KindDecompress {
		return decodeErrorCode(err)
	}
	return compressErrorCode(err)
}

// Handler returns the service's HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the background job manager: running jobs are cancelled
// and parked back to pending in the journal for the next start.
func (s *Server) Close() error { return s.jobs.Close() }

// Metrics returns the server's counter set (also served at /metrics).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs returns the async job manager.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Cache returns the result cache (for inspection; may have 0 capacity).
func (s *Server) Cache() *Cache { return s.cache }

// WorkerBudget returns the shared concurrency budget.
func (s *Server) WorkerBudget() int { return s.lim.Cap() }

// StartDrain flips /healthz to 503 so load balancers stop routing new
// work here. In-flight and already-accepted requests still complete;
// pair it with http.Server.Shutdown, which stops accepting connections
// and waits for handlers to return.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// instrument wraps a handler with the observability envelope: the
// request trace (an X-Request-Id minted here — or accepted from the
// client after sanitization — set on the response up front, carried
// through context into the jobs and pipeline layers, and stamped on
// every log line and error body), the request counter, the per-endpoint
// latency histogram, the in-flight gauge, error accounting, a
// structured request-completion log line, and the crash-containment
// boundary: a panic escaping the handler (on the request goroutine —
// worker-goroutine panics are already converted to job errors by the
// pipeline engine) is recovered here, counted, logged with its stack,
// and answered as a 500 internal_panic. One buggy request degrades to
// one error response; the daemon keeps serving everyone else.
func (s *Server) instrument(path string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rawID := r.Header.Get("X-Request-Id")
		cleanID := obs.SanitizeRequestID(rawID)
		if rawID != "" && cleanID == "" {
			s.metrics.RejectedIDs.Add(1)
		}
		tr := obs.NewTrace(cleanID)
		ctx := obs.WithTrace(r.Context(), tr)
		// Distributed tracing: a valid inbound traceparent joins this
		// request to the caller's trace (the parse is the sanitization
		// boundary — a hostile header degrades to a fresh trace); the
		// root span covers the whole handler and every stage span nests
		// under it.
		var parent *obs.TraceContext
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tc, err := obs.ParseTraceparent(tp); err == nil {
				parent = &tc
			}
		}
		ctx, span := s.tracer.StartRoot(ctx, r.Method+" "+path, parent)
		span.SetAttrs(obs.String("request_id", tr.RequestID()))
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-Id", tr.RequestID())
		s.metrics.InFlight.Add(1)
		defer s.metrics.InFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		account := func() {
			elapsed := time.Since(start)
			span.SetAttrs(obs.Int("http.status_code", int64(sw.code)))
			if sw.code >= 400 {
				span.SetError(fmt.Errorf("HTTP %d", sw.code))
			}
			span.End()
			s.metrics.Requests.Add(path, 1)
			s.metrics.Latency.Observe(path, elapsed.Seconds())
			if sw.code >= 400 {
				s.metrics.Errors.Add(1)
			}
			// Health probes and scrapes log at debug — they would drown
			// the data-plane lines at every monitoring interval.
			level := slog.LevelInfo
			if path == "/healthz" || path == "/metrics" || path == "/metrics/prometheus" {
				level = slog.LevelDebug
			}
			if sw.code >= 500 {
				level = slog.LevelError
			}
			attrs := append([]any{
				slog.String("request_id", tr.RequestID()),
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", sw.code),
				slog.Duration("duration", elapsed),
			}, tr.StageAttrs()...)
			s.log.Log(r.Context(), level, "request", attrs...)
		}
		defer func() {
			p := recover()
			if p == nil {
				account()
				return
			}
			if p == http.ErrAbortHandler {
				// Deliberate connection abort (client gone mid-write);
				// net/http handles it, containment must not mask it.
				account()
				panic(p)
			}
			s.metrics.Panics.Add(1)
			s.log.Error("contained panic",
				slog.String("request_id", tr.RequestID()),
				slog.String("path", path),
				slog.Any("panic", p),
				slog.String("stack", string(debug.Stack())))
			if !sw.wrote {
				writeError(sw, CodeInternalPanic, "internal error (contained panic): %v", p)
				account()
				return
			}
			// Body already streaming: the status line is gone. Handlers
			// that declared the error trailers (the streaming endpoints)
			// get the taxonomy trailers, flushed on return. Buffered
			// responses cannot carry undeclared trailers — net/http
			// silently drops header mutations after WriteHeader — so the
			// only honest signal left is a hard connection abort: the
			// client sees a transport-level truncation instead of a
			// clean 200 over a truncated body.
			if sw.Header().Get("Trailer") != "" {
				trailerError(sw.Header(), CodeInternalPanic,
					fmt.Errorf("internal error (contained panic): %v", p))
				account()
				return
			}
			account()
			panic(http.ErrAbortHandler)
		}()
		h(sw, r)
	})
}

// statusWriter records the response status for the error counter while
// passing Flush through so streamed responses are not buffered whole.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool // header or body bytes sent: status line can't change
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the real writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// enableFullDuplex opts a handler into concurrent request-body reads
// and response writes. Go's HTTP/1.1 server otherwise closes an unread
// body at the first response write, which would break the streaming
// endpoints: they decode chunk N+1 from the request while chunk N's
// patterns are already flowing out. Best-effort — test recorders do not
// support it and do not need it. A full-duplex handler must consume the
// body to EOF itself (drainBody) before returning; the server no longer
// does it and a leftover read races the next request on the connection.
func enableFullDuplex(w http.ResponseWriter) {
	_ = http.NewResponseController(w).EnableFullDuplex()
}

// drainBody reads the remainder of a full-duplex request body. The
// amount is bounded by MaxBytesReader, which every handler wraps the
// body in.
func drainBody(r io.Reader) {
	_, _ = io.Copy(io.Discard, r) // best-effort: bounded by MaxBytesReader
}

// abortWriter swallows writes once aborted. The streaming compress path
// uses it to cut a failing response off mid-stream: the StreamWriter's
// cleanup still runs (worker goroutines must be joined) but its
// terminator and trailer never reach the client, so the container ends
// visibly truncated. abort may race the writer's collector goroutine —
// a frame that wins the race still lands whole, the stream just ends
// after it.
type abortWriter struct {
	w       io.Writer
	aborted atomic.Bool
}

func (a *abortWriter) abort() { a.aborted.Store(true) }

func (a *abortWriter) Write(p []byte) (int, error) {
	if a.aborted.Load() {
		return len(p), nil
	}
	return a.w.Write(p)
}

// countingReader/countingWriter feed the bytes_in/bytes_out counters.
type countingReader struct {
	r io.Reader
	n *obs.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

type countingWriter struct {
	w io.Writer
	n *obs.Counter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// ---- /healthz and /v1/codecs ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": status}) // client gone: nothing to do
}

func (s *Server) handleCodecs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(tcomp.CodecSchemas()) // client gone: nothing to do
}

// ---- /v1/compress ----

// compressRequest is a parsed and validated compress query.
type compressRequest struct {
	codecName string
	codec     tcomp.Codec
	format    string // "v2" or "v3"
	opts      []tcomp.Option
	canon     string // canonical parameter string, the query half of the cache key
}

// intParam is one accepted integer query parameter. Its accepted range
// comes from the shared tcomp param-range table — the same rows the
// GET /v1/codecs schema advertises — so validation and schema cannot
// drift apart (the historical bug: /v1/codecs advertised b up to 64
// while the rl codec rejects anything outside 1..30). The bounds also
// reject absurd values (a 2^31 MV count would drive the EA into a
// gigantic allocation) before they reach a codec. "seed" has no table
// row: it spans the full int64 domain.
type intParam struct {
	key   string
	apply func(int64) tcomp.Option
}

var compressParams = []intParam{
	{"seed", func(v int64) tcomp.Option { return tcomp.WithSeed(v) }},
	{"k", func(v int64) tcomp.Option { return tcomp.WithBlockLen(int(v)) }},
	{"l", func(v int64) tcomp.Option { return tcomp.WithMVCount(int(v)) }},
	{"runs", func(v int64) tcomp.Option { return tcomp.WithRuns(int(v)) }},
	{"workers", func(v int64) tcomp.Option { return tcomp.WithWorkers(int(v)) }},
	{"m", func(v int64) tcomp.Option { return tcomp.WithGolombM(int(v)) }},
	{"d", func(v int64) tcomp.Option { return tcomp.WithDictSize(int(v)) }},
	{"b", func(v int64) tcomp.Option { return tcomp.WithCounterWidth(int(v)) }},
	{"chunk", func(v int64) tcomp.Option { return tcomp.WithChunkPatterns(int(v)) }},
}

// parseCompressQuery validates the query string; on failure it has
// already answered with a 400 and returns ok=false.
func parseCompressQuery(w http.ResponseWriter, q url.Values) (*compressRequest, bool) {
	req := &compressRequest{format: "v3"}
	known := map[string]bool{"codec": true, "format": true}
	for _, p := range compressParams {
		known[p.key] = true
	}
	for key := range q {
		if !known[key] {
			writeError(w, CodeBadRequest, "unknown query parameter %q", key)
			return nil, false
		}
	}
	req.codecName = q.Get("codec")
	if req.codecName == "" {
		writeError(w, CodeBadRequest, "missing codec parameter (see GET /v1/codecs)")
		return nil, false
	}
	codec, err := tcomp.Lookup(req.codecName)
	if err != nil {
		writeError(w, CodeBadRequest, "%v", err)
		return nil, false
	}
	req.codec = codec
	if f := q.Get("format"); f != "" {
		if f != "v2" && f != "v3" {
			writeError(w, CodeBadRequest, "format %q must be v2 or v3", f)
			return nil, false
		}
		req.format = f
	}
	// The canonical parameter string lists every value that can change
	// the output bytes, in fixed order. workers is deliberately absent:
	// the engine guarantees worker-count-independent bytes, so requests
	// differing only in workers share a cache entry.
	canon := fmt.Sprintf("codec=%s|format=%s", req.codecName, req.format)
	for _, p := range compressParams {
		raw := q.Get(p.key)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, CodeBadRequest, "parameter %s=%q is not an integer", p.key, raw)
			return nil, false
		}
		// An explicit 0 always means "use the codec default"; any other
		// value must fall inside the shared table's range. Every non-seed
		// key has a table row (with Min >= 0), so this also rejects all
		// negative values; seed alone spans the full int64 domain.
		if r, bounded := tcomp.LookupParamRange(p.key); bounded && v != 0 && (v < r.Min || v > r.Max) {
			writeError(w, CodeBadRequest, "parameter %s=%d out of range [%d,%d]", p.key, v, r.Min, r.Max)
			return nil, false
		}
		req.opts = append(req.opts, p.apply(v))
		if p.key != "workers" {
			canon += fmt.Sprintf("|%s=%d", p.key, v)
		}
	}
	req.canon = canon
	return req, true
}

// cacheKey derives the content address of a (parameters, input) pair:
// SHA-256 over the canonical parameter string and the canonical textual
// form of the test set. Text and binary submissions of the same
// patterns hash identically.
func (req *compressRequest) cacheKey(ts *testset.TestSet) string {
	h := sha256.New()
	_, _ = io.WriteString(h, req.canon) // sha256 writes cannot fail
	fmt.Fprintf(h, "|w=%d\n", ts.Width)
	for _, p := range ts.Patterns {
		_, _ = io.WriteString(h, p.String())
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, CodeMethodNotAllowed, "use POST")
		return
	}
	req, ok := parseCompressQuery(w, r.URL.Query())
	if !ok {
		return
	}
	// Admission control: codec work needs a token of the shared budget.
	// Requests queue here (FIFO-ish, context-aware) when all workers are
	// busy, so 64 concurrent clients share cfg.Workers compressions.
	if err := s.lim.Acquire(r.Context()); err != nil {
		writeError(w, CodeUnavailable, "request cancelled while queued for a worker")
		return
	}
	s.metrics.noteWorker(1)
	defer func() {
		s.metrics.noteWorker(-1)
		s.lim.Release()
	}()

	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), n: s.metrics.BytesIn}
	br := getBufReader(body)
	defer putBufReader(br)
	_, readSp := obs.StartSpan(r.Context(), "read")
	if peek, err := br.Peek(4); err == nil && string(peek) == "TSET" {
		// Binary test-set body: the format is already in-memory-sized
		// (bounded by MaxBodyBytes), so take the buffered path. Cache
		// eligibility is measured in canonical *textual* bytes — the
		// unit the cache key hashes — so the same patterns are
		// cacheable regardless of submission encoding.
		ts, err := testset.ReadBinary(br)
		if err != nil {
			writeError(w, bodyErrorCode(err, CodeBadRequest), "bad binary test set: %v", err)
			return
		}
		readSp.End()
		canonical := int64(ts.NumPatterns()) * int64(ts.Width+1)
		s.compressBuffered(w, r, req, ts, canonical <= s.cfg.CacheInputBytes)
		return
	}

	sc, err := testset.NewScanner(br)
	if err != nil {
		writeError(w, bodyErrorCode(err, CodeBadRequest), "bad test set: %v", err)
		return
	}
	// Cache probe: buffer patterns while the canonical input stays under
	// the cap. Most submissions end in here and become cacheable; the
	// rare multi-gigabyte set overflows the cap and streams through
	// uncached at O(chunk) memory.
	ts := getTestSet(sc.Width())
	defer putTestSet(ts)
	canon := int64(0)
	overCap := false
	for {
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, bodyErrorCode(err, CodeBadRequest), "bad pattern %d: %v", ts.NumPatterns(), err)
			return
		}
		ts.Add(v)
		canon += int64(sc.Width() + 1)
		if canon > s.cfg.CacheInputBytes {
			overCap = true
			break
		}
	}
	if !overCap {
		readSp.End()
		s.compressBuffered(w, r, req, ts, true)
		return
	}
	if req.format == "v2" {
		// v2 is a monolithic container; it must materialize regardless,
		// bounded by MaxBodyBytes. No cache: the input was never hashed.
		for {
			v, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				writeError(w, bodyErrorCode(err, CodeBadRequest), "bad pattern %d: %v", ts.NumPatterns(), err)
				return
			}
			ts.Add(v)
		}
		s.compressBuffered(w, r, req, ts, false)
		return
	}
	s.compressStream(w, r, req, ts, sc, body)
}

// compressBuffered serves a fully buffered submission, consulting the
// result cache when the input qualified.
func (s *Server) compressBuffered(w http.ResponseWriter, r *http.Request, req *compressRequest, ts *testset.TestSet, cacheable bool) {
	var key string
	if cacheable && s.cfg.CacheBytes > 0 {
		key = req.cacheKey(ts)
		if res, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			s.writeResult(w, res, "hit")
			return
		}
		s.metrics.CacheMisses.Add(1)
	}
	cctx, compressSp := obs.StartSpan(r.Context(), "compress")
	res, err := s.compressToMemory(cctx, req, ts)
	if err != nil {
		compressSp.SetError(err)
		compressSp.End()
		if r.Context().Err() != nil {
			return // client gone; nothing useful to answer
		}
		writeError(w, compressErrorCode(err), "compress: %v", err)
		return
	}
	compressSp.End()
	s.metrics.ObserveRate(req.codecName, res.RatePercent())
	if key != "" {
		s.cache.Put(key, res)
	}
	cacheState := ""
	if key != "" {
		cacheState = "miss"
	}
	_, writeSp := obs.StartSpan(r.Context(), "write")
	s.writeResult(w, res, cacheState)
	writeSp.End()
}

// compressToMemory runs the actual codec work for a buffered request.
// The container is assembled in a pooled scratch buffer and copied out
// into an exact-size private slice: a Result may enter the cache, whose
// read-only Body must never alias per-request scratch.
func (s *Server) compressToMemory(ctx context.Context, req *compressRequest, ts *testset.TestSet) (*Result, error) {
	buf := getScratch()
	defer putScratch(buf)
	if req.format == "v2" {
		art, err := req.codec.Compress(ctx, ts, req.opts...)
		if err != nil {
			return nil, err
		}
		if err := tcomp.Write(buf, art); err != nil {
			return nil, err
		}
		return &Result{
			Body:     append([]byte(nil), buf.Bytes()...),
			Patterns: art.Patterns, Chunks: 0,
			OriginalBits: art.OriginalBits, CompressedBits: art.CompressedBits,
		}, nil
	}
	sw, err := tcomp.NewStreamWriter(ctx, buf, req.codecName, ts.Width, req.opts...)
	if err != nil {
		return nil, err
	}
	if err := sw.WriteSet(ts); err != nil {
		_ = sw.Close() // the WriteSet error is the story; Close joins the workers
		return nil, err
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	return &Result{
		Body:     append([]byte(nil), buf.Bytes()...),
		Patterns: sw.Patterns(), Chunks: sw.Chunks(),
		OriginalBits: sw.OriginalBits(), CompressedBits: sw.CompressedBits(),
	}, nil
}

// writeResult answers with an in-memory artifact and its stats headers.
func (s *Server) writeResult(w http.ResponseWriter, res *Result, cacheState string) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(res.Body)))
	h.Set("X-Tcomp-Patterns", strconv.Itoa(res.Patterns))
	h.Set("X-Tcomp-Chunks", strconv.Itoa(res.Chunks))
	h.Set("X-Tcomp-Original-Bits", strconv.Itoa(res.OriginalBits))
	h.Set("X-Tcomp-Compressed-Bits", strconv.Itoa(res.CompressedBits))
	if cacheState != "" {
		h.Set("X-Tcomp-Cache", cacheState)
	}
	cw := &countingWriter{w: w, n: s.metrics.BytesOut}
	_, _ = cw.Write(res.Body) // client gone: nothing to do
}

// compressStream serves an over-cap submission: the already-buffered
// prefix plus the rest of the scanner stream flow through a
// StreamWriter directly onto the response, so memory stays O(chunk).
// Stats travel as HTTP trailers because they are unknown until the
// stream ends. A mid-stream failure aborts the frame stream before the
// v3 terminator/trailer is written — the response is a *genuinely*
// truncated container that any consumer's parser rejects, trailer-aware
// or not — and names the reason in X-Tcomp-Error.
func (s *Server) compressStream(w http.ResponseWriter, r *http.Request, req *compressRequest, prefix *testset.TestSet, sc *testset.Scanner, body io.Reader) {
	sctx, streamSp := obs.StartSpan(r.Context(), "stream")
	defer streamSp.End()
	enableFullDuplex(w)
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Trailer", "X-Tcomp-Patterns, X-Tcomp-Chunks, X-Tcomp-Original-Bits, X-Tcomp-Compressed-Bits, X-Tcomp-Error, X-Tcomp-Error-Code")
	aw := &abortWriter{w: &countingWriter{w: w, n: s.metrics.BytesOut}}
	sw, err := tcomp.NewStreamWriter(sctx, aw, req.codecName, prefix.Width, req.opts...)
	if err != nil {
		// NewStreamWriter validates before writing: the response is
		// still clean, a real error answer is possible.
		writeError(w, compressErrorCode(err), "compress: %v", err)
		return
	}
	fail := func(code string, err error) {
		// Abort first: sw.Close would otherwise flush a terminator and
		// trailer that make the truncated stream look complete.
		aw.abort()
		_ = sw.Close() // the original err is the story; Close joins the workers
		streamSp.SetError(err)
		trailerError(h, code, err)
		drainBody(body)
	}
	if err := sw.WriteSet(prefix); err != nil {
		fail(compressErrorCode(err), err)
		return
	}
	// sw's counters are owned by its collector goroutine until Close,
	// so the submission index is tracked locally for error messages.
	sent := prefix.NumPatterns()
	for {
		v, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(bodyErrorCode(err, CodeBadRequest), fmt.Errorf("bad pattern %d: %w", sent, err))
			return
		}
		if err := sw.WritePattern(v); err != nil {
			fail(compressErrorCode(err), err)
			return
		}
		sent++
	}
	if err := sw.Close(); err != nil {
		fail(compressErrorCode(err), err)
		return
	}
	s.metrics.ObserveRate(req.codecName, sw.RatePercent())
	h.Set("X-Tcomp-Patterns", strconv.Itoa(sw.Patterns()))
	h.Set("X-Tcomp-Chunks", strconv.Itoa(sw.Chunks()))
	h.Set("X-Tcomp-Original-Bits", strconv.Itoa(sw.OriginalBits()))
	h.Set("X-Tcomp-Compressed-Bits", strconv.Itoa(sw.CompressedBits()))
}

// ---- /v1/decompress ----

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, CodeMethodNotAllowed, "use POST")
		return
	}
	if err := s.lim.Acquire(r.Context()); err != nil {
		writeError(w, CodeUnavailable, "request cancelled while queued for a worker")
		return
	}
	s.metrics.noteWorker(1)
	defer func() {
		s.metrics.noteWorker(-1)
		s.lim.Release()
	}()

	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), n: s.metrics.BytesIn}
	version, rest, err := container.Sniff(body)
	if err != nil {
		writeError(w, bodyErrorCode(err, CodeBadRequest), "not a tcomp container: %v", err)
		return
	}
	if version != container.Version3 {
		art, err := tcomp.Open(rest)
		if err != nil {
			writeError(w, bodyErrorCode(err, CodeCorruptContainer), "bad container: %v", err)
			return
		}
		_, decodeSp := obs.StartSpan(r.Context(), "decompress")
		decodeSp.SetAttrs(obs.String("codec", art.Codec))
		ts, err := tcomp.Decompress(art)
		if err != nil {
			decodeSp.SetError(err)
			decodeSp.End()
			writeError(w, decodeErrorCode(err), "decompress: %v", err)
			return
		}
		decodeSp.End()
		h := w.Header()
		h.Set("Content-Type", "text/plain; charset=utf-8")
		h.Set("X-Tcomp-Codec", art.Codec)
		h.Set("X-Tcomp-Patterns", strconv.Itoa(ts.NumPatterns()))
		_ = ts.Write(&countingWriter{w: w, n: s.metrics.BytesOut}) // client gone: nothing to do
		return
	}

	sr, err := tcomp.NewStreamReader(rest)
	if err != nil {
		writeError(w, bodyErrorCode(err, CodeCorruptContainer), "bad chunked container: %v", err)
		return
	}
	_, streamSp := obs.StartSpan(r.Context(), "stream")
	streamSp.SetAttrs(obs.String("codec", sr.Codec()))
	defer streamSp.End()
	enableFullDuplex(w)
	h := w.Header()
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("X-Tcomp-Codec", sr.Codec())
	h.Set("Trailer", "X-Tcomp-Patterns, X-Tcomp-Error, X-Tcomp-Error-Code")
	pw, err := testset.NewPatternWriter(&countingWriter{w: w, n: s.metrics.BytesOut}, sr.Width())
	if err != nil {
		writeError(w, decodeErrorCode(err), "decompress: %v", err)
		return
	}
	n := 0
	for {
		v, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// The textual stream is already flowing; truncate it and
			// name the failing chunk in the trailer.
			_ = pw.Close() // truncating deliberately; the trailer names the cause
			streamSp.SetError(err)
			trailerError(h, decodeErrorCode(err),
				fmt.Errorf("stream corrupt or truncated at chunk %d: %v", sr.ChunkIndex(), err))
			drainBody(body)
			return
		}
		if err := pw.WritePattern(v); err != nil {
			return // client went away mid-response
		}
		n++
	}
	if err := pw.Close(); err != nil {
		return
	}
	h.Set("X-Tcomp-Patterns", strconv.Itoa(n))
	drainBody(body)
}
