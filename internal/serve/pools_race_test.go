package serve

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	tcomp "repro"
)

// TestConcurrentRequestsNoPooledAliasing hammers the compress endpoint
// from many goroutines over a small set of distinct submissions. The
// engine guarantees the compressed bytes are a pure function of (input,
// codec, parameters), so every response for a group must be
// byte-identical to that group's reference — any cross-request bleed
// through the pooled readers/buffers/test sets, or a cache Result whose
// Body aliases pooled scratch, shows up as a mismatched body. Run with
// -race this also proves the pools are data-race free.
func TestConcurrentRequestsNoPooledAliasing(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4, CacheBytes: 1 << 20})
	ctx := context.Background()

	const groups = 4
	inputs := make([][]byte, groups)
	want := make([][]byte, groups)
	for g := 0; g < groups; g++ {
		ts := randomSet(64+g, 30, int64(1000+g))
		inputs[g] = textOf(t, ts)
		var ref bytes.Buffer
		if _, err := client.Compress(ctx, "fdr", bytes.NewReader(inputs[g]), &ref, tcomp.WithSeed(7)); err != nil {
			t.Fatalf("reference compress group %d: %v", g, err)
		}
		want[g] = ref.Bytes()
	}

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g := (w + i) % groups
				var got bytes.Buffer
				stats, err := client.Compress(ctx, "fdr", bytes.NewReader(inputs[g]), &got, tcomp.WithSeed(7))
				if err != nil {
					errc <- fmt.Errorf("worker %d req %d: %v", w, i, err)
					return
				}
				if !bytes.Equal(got.Bytes(), want[g]) {
					errc <- fmt.Errorf("worker %d req %d group %d: body differs from reference (%d vs %d bytes, cacheHit=%v)",
						w, i, g, got.Len(), len(want[g]), stats.CacheHit)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestCacheResultBodyImmutable pins the cache's read-only contract: the
// body bytes handed out by an early hit must still be intact after many
// later requests have churned the pooled scratch buffers the Result was
// assembled in.
func TestCacheResultBodyImmutable(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	ctx := context.Background()
	in := textOf(t, randomSet(48, 20, 5))

	var first bytes.Buffer
	if _, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &first, tcomp.WithSeed(7)); err != nil {
		t.Fatal(err)
	}
	var hit bytes.Buffer
	stats, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &hit, tcomp.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("second identical request must be a cache hit")
	}
	snapshot := append([]byte(nil), hit.Bytes()...)

	// Churn the pools with unrelated work.
	for i := 0; i < 20; i++ {
		var sink bytes.Buffer
		if _, err := client.Compress(ctx, "rl", bytes.NewReader(textOf(t, randomSet(32, 10, int64(i)))), &sink, tcomp.WithSeed(7)); err != nil {
			t.Fatal(err)
		}
	}

	var again bytes.Buffer
	stats, err = client.Compress(ctx, "golomb", bytes.NewReader(in), &again, tcomp.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("third identical request must be a cache hit")
	}
	if !bytes.Equal(again.Bytes(), snapshot) || !bytes.Equal(first.Bytes(), snapshot) {
		t.Fatal("cached body changed across pool churn: Result aliases pooled scratch")
	}
}
