package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	tcomp "repro"
	"repro/internal/jobs"
)

// ---- /v1/flows and /v1/benchmarks ----
//
// A flow is an async job (kind "flow") wearing its own resource: the
// collection endpoints filter on the kind, the per-flow endpoints are
// the job endpoints plus artifact fetching. Keeping flows inside the
// job manager buys everything jobs already solved — journal durability,
// shutdown parking, cancellation, the shared worker budget — for free.

// parseFlowQuery translates the flow submit query into a job spec. The
// compression parameters mirror /v1/compress; benchmark/tests/sample
// are flow-specific.
func parseFlowQuery(q url.Values) (jobs.Spec, error) {
	spec := jobs.Spec{Kind: jobs.KindFlow}
	known := map[string]bool{"benchmark": true, "tests": true, "sample": true, "codecs": true}
	for _, key := range tcomp.ParamKeys() {
		known[key] = true
	}
	for key := range q {
		if !known[key] {
			return spec, fmt.Errorf("unknown query parameter %q", key)
		}
	}
	spec.Benchmark = q.Get("benchmark")
	spec.Tests = q.Get("tests")
	if raw := q.Get("sample"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			return spec, fmt.Errorf("parameter sample=%q is not an integer", raw)
		}
		spec.Sample = v
	}
	if cs := q.Get("codecs"); cs != "" {
		spec.Codecs = strings.Split(cs, ",")
	}
	for _, key := range tcomp.ParamKeys() {
		raw := q.Get(key)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("parameter %s=%q is not an integer", key, raw)
		}
		if spec.Params == nil {
			spec.Params = map[string]int64{}
		}
		spec.Params[key] = v
	}
	return spec, nil
}

// handleFlows serves the collection endpoint: POST submits, GET lists
// the flow jobs.
func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleFlowSubmit(w, r)
	case http.MethodGet:
		out := []jobs.Job{}
		for _, j := range s.jobs.List() {
			if j.Spec.Kind == jobs.KindFlow {
				out = append(out, j)
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(out) // client gone: nothing to do
	default:
		writeError(w, CodeMethodNotAllowed, "use POST to submit or GET to list")
	}
}

// handleFlowSubmit stores the .bench body (when present) and queues the
// flow job. A ?benchmark= submission may omit the body entirely — the
// daemon generates the registry circuit itself.
func (s *Server) handleFlowSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := parseFlowQuery(r.URL.Query())
	if err != nil {
		writeError(w, CodeBadRequest, "%v", err)
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), n: s.metrics.BytesIn}
	br := getBufReader(body)
	defer putBufReader(br)
	if _, perr := br.Peek(1); perr != io.EOF {
		if perr != nil {
			writeError(w, bodyErrorCode(perr, CodeBadRequest), "reading netlist: %v", perr)
			return
		}
		// Reject a bad netlist at submit time, before anything is stored:
		// the parse is cheap (bounds-capped), and a synchronous 422 beats
		// discovering the same failure by polling the job. The flow worker
		// re-parses from the stored blob when it runs.
		var raw bytes.Buffer
		if _, err := tcomp.NewTestFlow().ParseCircuit("submitted", io.TeeReader(br, &raw)); err != nil {
			writeError(w, CodeFlowInvalidCircuit, "%v", err)
			return
		}
		d, _, err := s.store.Put(bytes.NewReader(raw.Bytes()))
		if err != nil {
			writeError(w, bodyErrorCode(err, CodeBadRequest), "storing netlist: %v", err)
			return
		}
		spec.Input = d
	}
	j, err := s.jobs.SubmitCtx(r.Context(), spec)
	if err != nil {
		switch {
		case errors.Is(err, tcomp.ErrInvalidCircuit):
			writeError(w, CodeFlowInvalidCircuit, "%v", err)
		case errors.Is(err, jobs.ErrQueueFull):
			s.metrics.Jobs.Add("queue_full", 1)
			writeError(w, CodeQueueFull, "%v", err)
		case errors.Is(err, jobs.ErrClosed):
			writeError(w, CodeUnavailable, "%v", err)
		default:
			writeError(w, CodeBadRequest, "%v", err)
		}
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Location", "/v1/flows/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j) // client gone: nothing to do
}

// handleFlowByID routes the per-flow endpoints: the record, the JSON
// report (/result), the named binary artifacts (/artifacts/{name}), and
// DELETE. A job ID of a different kind answers 404 — flows and generic
// jobs are distinct resources even though they share the manager.
func (s *Server) handleFlowByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/flows/")
	id, sub, _ := strings.Cut(rest, "/")
	artName := ""
	if prefix, name, ok := strings.Cut(sub, "/"); ok && prefix == "artifacts" && name != "" && !strings.Contains(name, "/") {
		sub, artName = "artifacts", name
	}
	if id == "" || (sub != "" && sub != "result" && sub != "artifacts") {
		writeError(w, CodeJobNotFound, "no such endpoint under /v1/flows/")
		return
	}
	j, err := s.jobs.Get(id)
	if err != nil || j.Spec.Kind != jobs.KindFlow {
		writeError(w, CodeJobNotFound, "flow %s: not found", id)
		return
	}
	switch sub {
	case "result":
		if r.Method != http.MethodGet {
			writeError(w, CodeMethodNotAllowed, "use GET")
			return
		}
		s.handleJobResult(w, id)
	case "artifacts":
		if r.Method != http.MethodGet {
			writeError(w, CodeMethodNotAllowed, "use GET")
			return
		}
		s.handleFlowArtifact(w, id, artName)
	default:
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = json.NewEncoder(w).Encode(j) // client gone: nothing to do
		case http.MethodDelete:
			s.handleJobDelete(w, id)
		default:
			writeError(w, CodeMethodNotAllowed, "use GET or DELETE")
		}
	}
}

// handleFlowArtifact streams one named artifact of a done flow.
func (s *Server) handleFlowArtifact(w http.ResponseWriter, id, name string) {
	rc, a, j, err := s.jobs.OpenArtifact(id, name)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			writeError(w, CodeJobNotFound, "flow %s: no artifact %q", id, name)
		case errors.Is(err, jobs.ErrGone):
			writeError(w, CodeJobNotFound, "flow %s: artifact %q expired (GC)", id, name)
		case errors.Is(err, jobs.ErrNotDone):
			if j.State == jobs.StateFailed {
				writeError(w, CodeJobNotDone, "flow %s failed (%s): %s", id, j.ErrorCode, j.Error)
			} else {
				writeError(w, CodeJobNotDone, "flow %s is %s", id, j.State)
			}
		default:
			writeError(w, CodeInternalPanic, "opening artifact: %v", err)
		}
		return
	}
	defer rc.Close()
	h := w.Header()
	ct := "application/octet-stream"
	if name == "verilog" {
		ct = "text/plain; charset=utf-8"
	}
	h.Set("Content-Type", ct)
	h.Set("Content-Length", strconv.FormatInt(a.Size, 10))
	h.Set("X-Tcomp-Job-Id", j.ID)
	_, _ = io.Copy(&countingWriter{w: w, n: s.metrics.BytesOut}, rc) // client gone: nothing to do
}

// handleBenchmarks serves the ISCAS-style registry: the rows of the
// paper's tables 1 and 2, each a valid ?benchmark= value for a flow.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(tcomp.Benchmarks()) // client gone: nothing to do
}
