package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	tcomp "repro"
	"repro/internal/testset"
)

// mustServer builds a Server for tests, failing on construction errors
// and shutting the job manager down with the test.
func mustServer(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = s.Close() })
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *tcomp.Client) {
	t.Helper()
	s := mustServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, tcomp.NewClient(hs.URL)
}

func randomSet(width, patterns int, seed int64) *testset.TestSet {
	return testset.Random(width, patterns, 0.35, rand.New(rand.NewSource(seed)))
}

func textOf(t *testing.T, ts *testset.TestSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ts.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// codecOpts returns per-codec options that keep the EA fast in tests
// while exercising every registered scheme.
func codecOpts(name string) []tcomp.Option {
	opts := []tcomp.Option{tcomp.WithSeed(7)}
	if name == "ea" {
		opts = append(opts, tcomp.WithRuns(1), tcomp.WithMVCount(16))
	}
	return opts
}

// TestRoundTripAllCodecs proves the HTTP path is byte-identical to the
// local buffered path for every registered codec, in both container
// formats: the v2 artifact the daemon returns carries the same params
// and payload bytes as a local Compress, and the v3 stream decodes to
// the same fully specified patterns, remotely and locally.
func TestRoundTripAllCodecs(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 4, CacheBytes: 1 << 20})
	ctx := context.Background()
	ts := randomSet(16, 20, 3)

	for _, name := range tcomp.Codecs() {
		if name == "boom" {
			continue // the deliberately panicking codec from panic_test.go
		}
		name := name
		t.Run(name, func(t *testing.T) {
			opts := codecOpts(name)
			codec, err := tcomp.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			localArt, err := codec.Compress(ctx, ts, opts...)
			if err != nil {
				t.Fatal(err)
			}
			localDec, err := tcomp.Decompress(localArt)
			if err != nil {
				t.Fatal(err)
			}

			// Buffered v2 path: the remote artifact must be bit-for-bit
			// the local one.
			remoteArt, stats, err := client.CompressSet(ctx, name, ts, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(remoteArt.Payload, localArt.Payload) {
				t.Fatalf("remote payload differs from local: %d vs %d bytes", len(remoteArt.Payload), len(localArt.Payload))
			}
			if !bytes.Equal(remoteArt.Params, localArt.Params) {
				t.Fatal("remote params differ from local")
			}
			if stats.CompressedBits != localArt.CompressedBits {
				t.Fatalf("stats report %d compressed bits, local %d", stats.CompressedBits, localArt.CompressedBits)
			}
			remoteDec, err := client.DecompressSet(ctx, remoteArt)
			if err != nil {
				t.Fatal(err)
			}
			requireSameSet(t, localDec, remoteDec)
			if !tcomp.VerifyLossless(ts, remoteDec) {
				t.Fatal("remote round trip lost specified bits")
			}

			// Streaming v3 path: the remote container must be
			// byte-identical to a local StreamWriter run with the same
			// options (chunk seeds derive from the root seed, so the
			// buffered artifact is not the reference here), and the
			// remote expansion must be lossless.
			var localCont bytes.Buffer
			sw, err := tcomp.NewStreamWriter(ctx, &localCont, name, ts.Width, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := sw.WriteSet(ts); err != nil {
				t.Fatal(err)
			}
			if err := sw.Close(); err != nil {
				t.Fatal(err)
			}
			var cont bytes.Buffer
			sstats, err := client.Compress(ctx, name, bytes.NewReader(textOf(t, ts)), &cont, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cont.Bytes(), localCont.Bytes()) {
				t.Fatalf("remote v3 container differs from local streaming path: %d vs %d bytes", cont.Len(), localCont.Len())
			}
			if sstats.Patterns != ts.NumPatterns() || sstats.Chunks < 1 {
				t.Fatalf("stream stats %+v implausible for %d patterns", sstats, ts.NumPatterns())
			}
			var text bytes.Buffer
			if err := client.Decompress(ctx, bytes.NewReader(cont.Bytes()), &text); err != nil {
				t.Fatal(err)
			}
			streamDec, err := testset.ReadAuto(&text)
			if err != nil {
				t.Fatal(err)
			}
			if !tcomp.VerifyLossless(ts, streamDec) {
				t.Fatal("remote streaming round trip lost specified bits")
			}
		})
	}
}

func requireSameSet(t *testing.T, want, got *testset.TestSet) {
	t.Helper()
	if want.Width != got.Width || want.NumPatterns() != got.NumPatterns() {
		t.Fatalf("dimensions differ: want %dx%d, got %dx%d",
			want.NumPatterns(), want.Width, got.NumPatterns(), got.Width)
	}
	for i := range want.Patterns {
		if want.Patterns[i].String() != got.Patterns[i].String() {
			t.Fatalf("pattern %d differs:\nwant %s\ngot  %s", i, want.Patterns[i], got.Patterns[i])
		}
	}
}

// TestCacheDeterminism: the second identical submission is served from
// the content-addressed cache with identical bytes; a different seed is
// a distinct address.
func TestCacheDeterminism(t *testing.T) {
	s, client := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	ctx := context.Background()
	ts := randomSet(24, 30, 11)
	in := textOf(t, ts)

	var first, second, third bytes.Buffer
	st1, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &first, tcomp.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &second, tcomp.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first submission reported a cache hit")
	}
	if !st2.CacheHit {
		t.Fatal("second identical submission missed the cache")
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("cache hit returned different bytes than the fresh compression")
	}
	if st2.CompressedBits != st1.CompressedBits || st2.Patterns != st1.Patterns {
		t.Fatalf("cache hit stats differ: %+v vs %+v", st2, st1)
	}

	// A different seed is a different content address.
	st3, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &third, tcomp.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHit {
		t.Fatal("different seed hit the cache")
	}
	// workers is excluded from the key: same compression, different
	// parallelism, must hit.
	var fourth bytes.Buffer
	st4, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &fourth, tcomp.WithSeed(5), tcomp.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if !st4.CacheHit {
		t.Fatal("workers-only variation missed the cache")
	}

	if hits := s.Metrics().CacheHits.Value(); hits != 2 {
		t.Fatalf("cache_hits = %d, want 2", hits)
	}
	if misses := s.Metrics().CacheMisses.Value(); misses != 2 {
		t.Fatalf("cache_misses = %d, want 2", misses)
	}
	if s.Cache().Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", s.Cache().Len())
	}
	if ev := s.Metrics().CacheEvictions.Value(); ev != 0 {
		t.Fatalf("cache_evictions = %d, want 0 (capacity was never exceeded)", ev)
	}
	// The computed hit-ratio gauge: 2 hits / 4 lookups.
	var snap struct {
		HitRatio  float64 `json:"cache_hit_ratio"`
		Evictions int64   `json:"cache_evictions"`
	}
	if err := json.Unmarshal([]byte(s.Metrics().String()), &snap); err != nil {
		t.Fatalf("metrics snapshot does not parse: %v", err)
	}
	if snap.HitRatio != 0.5 {
		t.Fatalf("cache_hit_ratio = %v, want 0.5", snap.HitRatio)
	}
}

// TestCacheEvictionMetrics: a cache too small for two results evicts the
// older entry on the second insert, and the eviction is counted.
func TestCacheEvictionMetrics(t *testing.T) {
	ts := randomSet(24, 40, 13)
	in := textOf(t, ts)
	var probe bytes.Buffer
	_, client0 := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	if _, err := client0.Compress(context.Background(), "golomb", bytes.NewReader(in), &probe); err != nil {
		t.Fatal(err)
	}
	// Room for one result, never two.
	s, client := newTestServer(t, Config{Workers: 2, CacheBytes: int64(probe.Len()) * 3 / 2})
	ctx := context.Background()

	var out bytes.Buffer
	for _, seed := range []int64{1, 2} {
		out.Reset()
		if _, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &out, tcomp.WithSeed(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if ev := s.Metrics().CacheEvictions.Value(); ev != 1 {
		t.Fatalf("cache_evictions = %d, want 1", ev)
	}
	if s.Cache().Len() != 1 {
		t.Fatalf("cache holds %d entries after eviction, want 1", s.Cache().Len())
	}
	// The evicted seed is a miss again; the survivor still hits.
	out.Reset()
	st, err := client.Compress(ctx, "golomb", bytes.NewReader(in), &out, tcomp.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Fatal("most recent entry should have survived the eviction")
	}
	out.Reset()
	st, err = client.Compress(ctx, "golomb", bytes.NewReader(in), &out, tcomp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("evicted entry reported a cache hit")
	}
}

// TestGracefulDrain: a request in flight when the daemon starts
// draining runs to completion — zero dropped requests — while new work
// is refused at the listener.
func TestGracefulDrain(t *testing.T) {
	s := mustServer(t, Config{Workers: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	client := tcomp.NewClient("http://" + ln.Addr().String())
	ctx := context.Background()

	ts := randomSet(16, 8, 2)
	// Trickle the request body through a pipe so the request is
	// mid-flight when Shutdown fires.
	pr, pw := io.Pipe()
	var cont bytes.Buffer
	reqDone := make(chan error, 1)
	go func() {
		_, err := client.Compress(ctx, "fdr", pr, &cont)
		reqDone <- err
	}()
	if _, err := io.WriteString(pw, fmt.Sprintf("%d *\n", ts.Width)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(pw, ts.Patterns[0].String()+"\n"); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has the request in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().InFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	s.StartDrain()
	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- httpSrv.Shutdown(sctx)
	}()

	// The daemon is draining; finish the in-flight upload.
	time.Sleep(20 * time.Millisecond)
	for _, p := range ts.Patterns[1:] {
		if _, err := io.WriteString(pw, p.String()+"\n"); err != nil {
			t.Fatal(err)
		}
	}
	pw.Close()

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	// The container produced under drain is complete and correct.
	sr, err := tcomp.NewStreamReader(bytes.NewReader(cont.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		t.Fatal("drained request produced a lossy container")
	}
	// New connections are refused after shutdown.
	if err := client.Health(context.Background()); err == nil {
		t.Fatal("daemon still accepting connections after Shutdown")
	}
}

// TestSharedWorkerBudget: 64 concurrent clients never occupy more than
// the configured worker budget concurrently, and all of them succeed.
func TestSharedWorkerBudget(t *testing.T) {
	const budget, clients = 2, 64
	s, client := newTestServer(t, Config{Workers: budget})
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts := randomSet(16, 12, int64(100+i))
			var cont bytes.Buffer
			if _, err := client.Compress(ctx, "rl", bytes.NewReader(textOf(t, ts)), &cont, tcomp.WithSeed(int64(i))); err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			sr, err := tcomp.NewStreamReader(bytes.NewReader(cont.Bytes()))
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			dec, err := sr.ReadAll()
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			if !tcomp.VerifyLossless(ts, dec) {
				errs <- fmt.Errorf("client %d: lossy round trip", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if peak := s.Metrics().WorkersPeak.Value(); peak > budget {
		t.Fatalf("worker occupancy peaked at %d, budget is %d", peak, budget)
	}
	if s.WorkerBudget() != budget {
		t.Fatalf("WorkerBudget = %d, want %d", s.WorkerBudget(), budget)
	}
}

// TestHealthzAndDrainStatus pins the liveness contract.
func TestHealthzAndDrainStatus(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	get := func() (int, string) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var body struct {
			Status string `json:"status"`
		}
		json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body.Status
	}
	if code, status := get(); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz before drain: %d %q", code, status)
	}
	s.StartDrain()
	if code, status := get(); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("healthz during drain: %d %q", code, status)
	}
}

// TestCodecsEndpoint: the registry listing carries every codec and its
// param schema.
func TestCodecsEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	infos, err := client.Codecs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(infos))
	byName := map[string][]tcomp.CodecParam{}
	for i, info := range infos {
		names[i] = info.Name
		byName[info.Name] = info.Params
	}
	want := tcomp.Codecs()
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("codec listing %v, want %v", names, want)
	}
	var hasSeed bool
	for _, p := range byName["ea"] {
		if p.Query == "seed" {
			hasSeed = true
		}
	}
	if !hasSeed {
		t.Fatal("ea schema lacks the seed parameter")
	}
	if len(byName["fdr"]) != 0 {
		t.Fatalf("fdr schema should be empty, got %v", byName["fdr"])
	}
}

// TestMetricsEndpoint: counters move and the snapshot is valid JSON.
func TestMetricsEndpoint(t *testing.T) {
	s, client := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20})
	ctx := context.Background()
	ts := randomSet(16, 10, 9)
	var cont bytes.Buffer
	if _, err := client.Compress(ctx, "golomb", bytes.NewReader(textOf(t, ts)), &cont); err != nil {
		t.Fatal(err)
	}
	var text bytes.Buffer
	if err := client.Decompress(ctx, bytes.NewReader(cont.Bytes()), &text); err != nil {
		t.Fatal(err)
	}

	var snap map[string]json.RawMessage
	if err := json.Unmarshal([]byte(s.Metrics().String()), &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	var reqs map[string]int64
	if err := json.Unmarshal(snap["requests"], &reqs); err != nil {
		t.Fatal(err)
	}
	if reqs["/v1/compress"] != 1 || reqs["/v1/decompress"] != 1 {
		t.Fatalf("request counters %v", reqs)
	}
	if s.Metrics().BytesIn.Value() == 0 || s.Metrics().BytesOut.Value() == 0 {
		t.Fatal("byte counters did not move")
	}
	var rates map[string]struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(snap["compression_rate"], &rates); err != nil {
		t.Fatal(err)
	}
	if rates["golomb"].Count != 1 {
		t.Fatalf("golomb rate histogram count %d, want 1", rates["golomb"].Count)
	}

	// The HTTP endpoint serves the same snapshot.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("GET /metrics: %d, valid JSON: %v", rec.Code, json.Valid(rec.Body.Bytes()))
	}
}

// TestCompressErrors pins the error contract of the compress endpoint.
func TestCompressErrors(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	do := func(method, target, body string) (int, string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, target, strings.NewReader(body))
		s.Handler().ServeHTTP(rec, req)
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(rec.Body.Bytes(), &e)
		return rec.Code, e.Error
	}
	if code, msg := do(http.MethodGet, "/v1/compress?codec=golomb", ""); code != http.StatusMethodNotAllowed || msg == "" {
		t.Fatalf("GET: %d %q", code, msg)
	}
	if code, msg := do(http.MethodPost, "/v1/compress", "4 1\n0101\n"); code != http.StatusBadRequest || !strings.Contains(msg, "codec") {
		t.Fatalf("missing codec: %d %q", code, msg)
	}
	if code, msg := do(http.MethodPost, "/v1/compress?codec=nope", "4 1\n0101\n"); code != http.StatusBadRequest || !strings.Contains(msg, "nope") {
		t.Fatalf("unknown codec: %d %q", code, msg)
	}
	if code, _ := do(http.MethodPost, "/v1/compress?codec=golomb&format=v9", "4 1\n0101\n"); code != http.StatusBadRequest {
		t.Fatalf("bad format: %d", code)
	}
	if code, msg := do(http.MethodPost, "/v1/compress?codec=golomb&frobnicate=1", "4 1\n0101\n"); code != http.StatusBadRequest || !strings.Contains(msg, "frobnicate") {
		t.Fatalf("unknown param: %d %q", code, msg)
	}
	if code, _ := do(http.MethodPost, "/v1/compress?codec=golomb&chunk=99999999999", "4 1\n0101\n"); code != http.StatusBadRequest {
		t.Fatalf("oversized chunk: %d", code)
	}
	if code, _ := do(http.MethodPost, "/v1/compress?codec=golomb&seed=x", "4 1\n0101\n"); code != http.StatusBadRequest {
		t.Fatalf("non-integer seed: %d", code)
	}
	if code, _ := do(http.MethodPost, "/v1/compress?codec=golomb", "not a test set"); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", code)
	}
	if code, _ := do(http.MethodPost, "/v1/decompress", "junk"); code != http.StatusBadRequest {
		t.Fatalf("bad container: %d", code)
	}
}

// TestDecompressTruncatedStream: a truncated v3 container surfaces as
// an X-Tcomp-Error trailer naming the failing chunk, which the client
// turns into an error.
func TestDecompressTruncatedStream(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	ts := randomSet(16, 40, 17)
	var cont bytes.Buffer
	if _, err := client.Compress(ctx, "rl", bytes.NewReader(textOf(t, ts)), &cont, tcomp.WithChunkPatterns(8)); err != nil {
		t.Fatal(err)
	}
	trunc := cont.Bytes()[:cont.Len()-10]
	var text bytes.Buffer
	err := client.Decompress(ctx, bytes.NewReader(trunc), &text)
	if err == nil {
		t.Fatal("truncated container decompressed without error")
	}
	if !strings.Contains(err.Error(), "chunk") {
		t.Fatalf("error does not name the failing chunk: %v", err)
	}
}

// TestStreamCompressAbort: a failure mid-way through a streamed
// compression yields a *genuinely* truncated container — no v3
// terminator/trailer — plus an X-Tcomp-Error trailer, and the client
// surfaces it as an error rather than reporting success.
func TestStreamCompressAbort(t *testing.T) {
	// Tiny cache-input cap forces the streaming path; the malformed
	// pattern sits past the buffered prefix so the failure happens
	// after response bytes are already flowing.
	_, client := newTestServer(t, Config{Workers: 1, CacheInputBytes: 64})
	ctx := context.Background()
	ts := randomSet(32, 40, 31)
	text := textOf(t, ts)
	bad := append(append([]byte{}, text...), []byte("NOT-A-PATTERN\n")...)

	var cont bytes.Buffer
	_, err := client.Compress(ctx, "rl", bytes.NewReader(bad), &cont, tcomp.WithChunkPatterns(4))
	if err == nil {
		t.Fatal("mid-stream failure reported as success")
	}
	if !strings.Contains(err.Error(), "bad pattern") {
		t.Fatalf("trailer error not surfaced: %v", err)
	}
	// Whatever bytes arrived must NOT parse as a complete container.
	sr, err := tcomp.NewStreamReader(bytes.NewReader(cont.Bytes()))
	if err == nil {
		for {
			if _, err = sr.NextChunk(); err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatal("aborted response still parses as a complete container")
		}
	}
}

// TestBinaryBodyCompress: the compress endpoint also accepts the packed
// binary test-set format and hashes it to the same cache address as the
// equivalent text.
func TestBinaryBodyCompress(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 1, CacheBytes: 1 << 20})
	ctx := context.Background()
	ts := randomSet(16, 10, 21)

	var bin bytes.Buffer
	if err := ts.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	var c1, c2 bytes.Buffer
	st1, err := client.Compress(ctx, "fdr", &bin, &c1)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client.Compress(ctx, "fdr", bytes.NewReader(textOf(t, ts)), &c2)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit || !st2.CacheHit {
		t.Fatalf("binary/text equivalence: first hit=%v second hit=%v, want false/true", st1.CacheHit, st2.CacheHit)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("binary and textual submissions produced different containers")
	}
}

// TestStreamOverCacheCap: inputs past the cache input cap stream
// through uncached and still round-trip, with stats in trailers.
func TestStreamOverCacheCap(t *testing.T) {
	// A tiny cap forces the streaming path immediately.
	s, client := newTestServer(t, Config{Workers: 2, CacheBytes: 1 << 20, CacheInputBytes: 64})
	ctx := context.Background()
	ts := randomSet(32, 200, 23)
	var cont bytes.Buffer
	stats, err := client.Compress(ctx, "golomb", bytes.NewReader(textOf(t, ts)), &cont, tcomp.WithChunkPatterns(50))
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("over-cap submission reported a cache hit")
	}
	if stats.Patterns != 200 || stats.Chunks != 4 {
		t.Fatalf("trailer stats %+v, want 200 patterns in 4 chunks", stats)
	}
	if s.Cache().Len() != 0 {
		t.Fatal("over-cap submission was cached")
	}
	sr, err := tcomp.NewStreamReader(bytes.NewReader(cont.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		t.Fatal("over-cap stream lost specified bits")
	}
}
