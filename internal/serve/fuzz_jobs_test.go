package serve

// FuzzJobsAPI is the async-API twin of FuzzServeAnyEndpoint: hostile
// queries, IDs, and bodies against the whole /v1/jobs handler tree. The
// invariants:
//
//   - the process survives every input (a panic fails the run);
//   - the submit/get/delete/result surface never answers 5xx — a bad
//     submission is the client's fault (4xx with a taxonomy body), and
//     even a job that panics mid-run degrades to a *failed job record*,
//     never to a broken response;
//   - every non-2xx answer carries the machine-readable taxonomy body
//     with a known code matching the X-Tcomp-Error-Code header.

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// jobFuzzRoutes maps the endpoint selector byte onto the job handler
// tree. The {id} slot is filled from the fuzzed id operand.
var jobFuzzRoutes = []struct {
	method, path string // path may contain "{id}"
}{
	{"POST", "/v1/jobs"},
	{"GET", "/v1/jobs"},
	{"PUT", "/v1/jobs"},    // wrong method: 405
	{"DELETE", "/v1/jobs"}, // wrong method: 405
	{"GET", "/v1/jobs/{id}"},
	{"DELETE", "/v1/jobs/{id}"},
	{"POST", "/v1/jobs/{id}"}, // wrong method: 405
	{"GET", "/v1/jobs/{id}/result"},
	{"POST", "/v1/jobs/{id}/result"}, // wrong method: 405
	{"GET", "/v1/jobs/{id}/bogus"},   // no such endpoint: 404
}

func FuzzJobsAPI(f *testing.F) {
	pats := []byte("8 2\n0101X10X\n00000000\n")
	f.Add(uint8(0), "kind=compress&codec=golomb", "", pats)
	f.Add(uint8(0), "kind=compress&codec=golomb&format=v2&seed=9", "", pats)
	f.Add(uint8(0), "kind=compress&codec=rl&b=30&chunk=1", "", pats)
	f.Add(uint8(0), "codec=golomb", "", pats) // kind defaults to compress
	f.Add(uint8(0), "kind=decompress", "", []byte("not a container"))
	f.Add(uint8(0), "kind=decompress", "", fuzzContainer())
	f.Add(uint8(0), "kind=sweep&codecs=golomb,rl,fdr", "", pats)
	f.Add(uint8(0), "kind=compress&codec=boom", "", pats)     // panics in the background: failed job
	f.Add(uint8(0), "kind=compress&codec=jobsnope", "", pats) // unknown codec: 400
	f.Add(uint8(0), "kind=compress&codec=golomb&m=-5", "", pats)
	f.Add(uint8(0), "kind=compress&codec=golomb&bogus=1", "", pats)
	f.Add(uint8(0), "kind=frobnicate", "", pats)
	f.Add(uint8(0), "kind=sweep&codecs=", "", pats)
	f.Add(uint8(0), "kind=compress&codec=golomb", "", []byte("4294967295 4294967295\n"))
	f.Add(uint8(1), "", "", []byte(nil))
	f.Add(uint8(4), "", "j0123456789abcdef", []byte(nil))
	f.Add(uint8(4), "", "../../etc/passwd", []byte(nil))
	f.Add(uint8(5), "", "j0123456789abcdef", []byte(nil))
	f.Add(uint8(7), "", "jZZZZZZZZZZZZZZZZ", []byte(nil))
	f.Add(uint8(7), "", "", []byte(nil))
	f.Add(uint8(9), "", "j0123456789abcdef", []byte(nil))

	s := mustServer(f, Config{Workers: 2, JobWorkers: 2, MaxQueuedJobs: 8, MaxBodyBytes: 1 << 14})
	h := s.Handler()
	// Contained boom-codec panics log a stack each; keep the fuzzer's own
	// output readable.
	log.SetOutput(io.Discard)
	f.Cleanup(func() { log.SetOutput(io.Discard) })

	f.Fuzz(func(t *testing.T, ep uint8, query, id string, body []byte) {
		q, err := url.ParseQuery(query)
		if err != nil {
			return // not even a query string
		}
		if strings.Contains(q.Get("codec"), "ea") || strings.Contains(q.Get("codecs"), "ea") {
			return // EA wall-clock would dominate the fuzz budget
		}
		route := jobFuzzRoutes[int(ep)%len(jobFuzzRoutes)]
		path := strings.Replace(route.path, "{id}", url.PathEscape(id), 1)
		req := httptest.NewRequest(route.method, path+"?"+q.Encode(), bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here fails the run: that is the point
		resp := rec.Result()

		if resp.StatusCode >= 500 {
			t.Fatalf("%s %s?%s: status %d — the job surface must never 5xx on hostile input",
				route.method, path, q.Encode(), resp.StatusCode)
		}
		if resp.StatusCode >= 400 {
			code := resp.Header.Get("X-Tcomp-Error-Code")
			if !knownCodes[code] {
				t.Fatalf("%s %s: status %d with unknown error code %q",
					route.method, path, resp.StatusCode, code)
			}
			var e ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("%s %s: status %d error body does not parse: %v",
					route.method, path, resp.StatusCode, err)
			}
			if e.Code != code || e.Status != resp.StatusCode || e.Error == "" {
				t.Fatalf("%s %s: inconsistent error body %+v (header code %q, status %d)",
					route.method, path, e, code, resp.StatusCode)
			}
		}
		io.Copy(io.Discard, resp.Body)
	})
}
