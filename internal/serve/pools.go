// Per-request scratch pools. The serving hot path used to allocate a
// fresh bufio.Reader, response assembly buffer, and pattern-slice
// backing per request; under concurrent load those dominated the
// allocation profile. All pooled objects are request-scoped: they are
// taken after the worker token is acquired and returned before the
// handler exits, and nothing that outlives the request — in particular
// a cached Result, whose Body the cache hands to every later hit — may
// alias pooled storage. compressToMemory therefore copies the assembled
// container out of the scratch buffer into an exact-size private slice.
package serve

import (
	"bufio"
	"bytes"
	"io"
	"sync"

	"repro/internal/testset"
)

var bufReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}

func getBufReader(r io.Reader) *bufio.Reader {
	br := bufReaderPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

func putBufReader(br *bufio.Reader) {
	br.Reset(nil) // drop the body reference before pooling
	bufReaderPool.Put(br)
}

var scratchPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

func getScratch() *bytes.Buffer {
	b := scratchPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putScratch(b *bytes.Buffer) {
	const maxPooled = 8 << 20 // don't let one huge response pin memory
	if b.Cap() <= maxPooled {
		scratchPool.Put(b)
	}
}

var testSetPool = sync.Pool{
	New: func() any { return &testset.TestSet{} },
}

// getTestSet returns an empty test set of the given width whose
// pattern-slice backing is recycled across requests. The tritvec
// patterns appended to it are freshly allocated by the scanner, so
// returning the set to the pool never invalidates data derived from it.
func getTestSet(width int) *testset.TestSet {
	ts := testSetPool.Get().(*testset.TestSet)
	ts.Width = width
	ts.Patterns = ts.Patterns[:0]
	return ts
}

func putTestSet(ts *testset.TestSet) {
	const maxPooledPatterns = 1 << 16
	if cap(ts.Patterns) > maxPooledPatterns {
		return
	}
	clear(ts.Patterns[:cap(ts.Patterns)]) // drop vector references
	ts.Patterns = ts.Patterns[:0]
	testSetPool.Put(ts)
}
