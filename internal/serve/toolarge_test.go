package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	tcomp "repro"
)

// TestOversizedBodyIs413 pins the taxonomy for a body that hits the
// MaxBytesReader cap: historically the truncation surfaced as whatever
// parse error it caused and was misreported as a 400 bad_request; it
// must be a 413 request_too_large on both data endpoints, with the code
// in the JSON body and the X-Tcomp-Error-Code header.
func TestOversizedBodyIs413(t *testing.T) {
	s := mustServer(t, Config{Workers: 2, MaxBodyBytes: 256})
	// Both bodies must be *well-formed* payloads that merely exceed the
	// cap: a parse failure caused by anything other than the truncation
	// would rightly stay a 400.
	line := strings.Repeat("01", 64) + "\n"      // width 128: one pattern line fits the cap
	text := "128 3\n" + line + line + line       // 393 bytes > 256: truncated mid-pattern
	container := oversizedContainer(t, 64, 1000) // valid golomb container, > 256 bytes
	for _, tc := range []struct {
		name, target, body string
	}{
		{"compress", "/v1/compress?codec=golomb", text},
		{"decompress", "/v1/decompress", container},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, tc.target, strings.NewReader(tc.body))
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("status = %d, want 413; body: %s", rec.Code, rec.Body.String())
			}
			if got := rec.Header().Get("X-Tcomp-Error-Code"); got != CodeTooLarge {
				t.Fatalf("X-Tcomp-Error-Code = %q, want %q", got, CodeTooLarge)
			}
			var eb ErrorBody
			if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not taxonomy JSON: %v", err)
			}
			if eb.Code != CodeTooLarge || eb.Status != http.StatusRequestEntityTooLarge {
				t.Fatalf("error body = %+v, want code %q status 413", eb, CodeTooLarge)
			}
		})
	}
}

// oversizedContainer compresses a random test set into a genuine
// container whose byte length exceeds minBytes.
func oversizedContainer(t *testing.T, width, minBytes int) string {
	t.Helper()
	codec, err := tcomp.Lookup("golomb")
	if err != nil {
		t.Fatal(err)
	}
	for patterns := 16; patterns <= 1<<12; patterns *= 2 {
		art, err := codec.Compress(context.Background(), randomSet(width, patterns, 42))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tcomp.Write(&buf, art); err != nil {
			t.Fatal(err)
		}
		if buf.Len() > minBytes {
			return buf.String()
		}
	}
	t.Fatal("could not build an oversized container")
	return ""
}

// TestClientMapsTooLarge proves the client folds the 413 taxonomy into
// the ErrTooLarge sentinel (and not into ErrBadRequest).
func TestClientMapsTooLarge(t *testing.T) {
	_, client := newTestServer(t, Config{Workers: 2, MaxBodyBytes: 256})
	ts := randomSet(128, 16, 99)
	var sink bytes.Buffer
	_, err := client.Compress(context.Background(), "golomb", bytes.NewReader(textOf(t, ts)), &sink)
	if err == nil {
		t.Fatal("oversized submission accepted")
	}
	if !errors.Is(err, tcomp.ErrTooLarge) {
		t.Fatalf("errors.Is(err, ErrTooLarge) = false: %v", err)
	}
	if errors.Is(err, tcomp.ErrBadRequest) {
		t.Fatalf("413 must not classify as ErrBadRequest: %v", err)
	}
	var re *tcomp.RemoteError
	if !errors.As(err, &re) || re.Code != "request_too_large" {
		t.Fatalf("want RemoteError with code request_too_large, got %v", err)
	}
}

// TestUndersizedBodyStillBadRequest guards the classifier the other
// way: a genuinely malformed body under the cap stays a 400.
func TestUndersizedBodyStillBadRequest(t *testing.T) {
	s := mustServer(t, Config{Workers: 2, MaxBodyBytes: 1 << 20})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/compress?codec=golomb", strings.NewReader("01\n0X\nnot-a-pattern\n"))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", rec.Code, rec.Body.String())
	}
}
