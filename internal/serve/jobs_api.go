package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	tcomp "repro"
	"repro/internal/jobs"
)

// ---- /v1/jobs ----

// handleJobs serves the collection endpoint: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(s.jobs.List()) // client gone: nothing to do
	default:
		writeError(w, CodeMethodNotAllowed, "use POST to submit or GET to list")
	}
}

// parseJobQuery translates the submit query into a job spec. The
// parameter vocabulary mirrors /v1/compress (same keys, same shared
// range table — enforced again by the manager) plus kind and codecs.
func parseJobQuery(q url.Values) (jobs.Spec, error) {
	spec := jobs.Spec{Kind: jobs.KindCompress}
	known := map[string]bool{"kind": true, "codec": true, "format": true, "codecs": true}
	for _, key := range tcomp.ParamKeys() {
		known[key] = true
	}
	for key := range q {
		if !known[key] {
			return spec, fmt.Errorf("unknown query parameter %q", key)
		}
	}
	if k := q.Get("kind"); k != "" {
		spec.Kind = jobs.Kind(k)
	}
	spec.Codec = q.Get("codec")
	spec.Format = q.Get("format")
	if cs := q.Get("codecs"); cs != "" {
		spec.Codecs = strings.Split(cs, ",")
	}
	for _, key := range tcomp.ParamKeys() {
		raw := q.Get(key)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("parameter %s=%q is not an integer", key, raw)
		}
		if spec.Params == nil {
			spec.Params = map[string]int64{}
		}
		spec.Params[key] = v
	}
	if spec.Kind == jobs.KindCompress && spec.Codec == "" {
		return spec, fmt.Errorf("missing codec parameter (see GET /v1/codecs)")
	}
	return spec, nil
}

// handleJobSubmit stores the request body as the input artifact and
// queues the job: the 202 answer carries the job record, and the rest
// of the work happens in the background.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := parseJobQuery(r.URL.Query())
	if err != nil {
		writeError(w, CodeBadRequest, "%v", err)
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), n: s.metrics.BytesIn}
	d, _, err := s.store.Put(body)
	if err != nil {
		writeError(w, bodyErrorCode(err, CodeBadRequest), "storing input: %v", err)
		return
	}
	spec.Input = d
	j, err := s.jobs.SubmitCtx(r.Context(), spec)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			s.metrics.Jobs.Add("queue_full", 1)
			writeError(w, CodeQueueFull, "%v", err)
		case errors.Is(err, jobs.ErrClosed):
			writeError(w, CodeUnavailable, "%v", err)
		default:
			writeError(w, CodeBadRequest, "%v", err)
		}
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j) // client gone: nothing to do
}

// ---- /v1/jobs/{id} and /v1/jobs/{id}/result ----

// handleJobByID routes the per-job endpoints. The mux is pre-1.22
// compatible, so the ID and the optional /result suffix are parsed by
// hand; malformed IDs fall out as job_not_found, never as file paths.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "result") {
		writeError(w, CodeJobNotFound, "no such endpoint under /v1/jobs/")
		return
	}
	if sub == "result" {
		if r.Method != http.MethodGet {
			writeError(w, CodeMethodNotAllowed, "use GET")
			return
		}
		s.handleJobResult(w, id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, err := s.jobs.Get(id)
		if err != nil {
			writeError(w, CodeJobNotFound, "job %s: not found", id)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = json.NewEncoder(w).Encode(j) // client gone: nothing to do
	case http.MethodDelete:
		s.handleJobDelete(w, id)
	default:
		writeError(w, CodeMethodNotAllowed, "use GET or DELETE")
	}
}

// handleJobResult streams a done job's artifact with the same stats
// headers the synchronous endpoints use.
func (s *Server) handleJobResult(w http.ResponseWriter, id string) {
	rc, j, err := s.jobs.OpenResult(id)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			writeError(w, CodeJobNotFound, "job %s: not found", id)
		case errors.Is(err, jobs.ErrGone):
			writeError(w, CodeJobNotFound, "job %s: result artifact expired (GC)", id)
		case errors.Is(err, jobs.ErrNotDone):
			if j.State == jobs.StateFailed {
				writeError(w, CodeJobNotDone, "job %s failed (%s): %s", id, j.ErrorCode, j.Error)
			} else {
				writeError(w, CodeJobNotDone, "job %s is %s", id, j.State)
			}
		default:
			writeError(w, CodeInternalPanic, "opening result: %v", err)
		}
		return
	}
	defer rc.Close()
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.FormatInt(j.OutputSize, 10))
	h.Set("X-Tcomp-Job-Id", j.ID)
	if st := j.Stats; st != nil {
		h.Set("X-Tcomp-Patterns", strconv.Itoa(st.Patterns))
		h.Set("X-Tcomp-Chunks", strconv.Itoa(st.Chunks))
		h.Set("X-Tcomp-Original-Bits", strconv.Itoa(st.OriginalBits))
		h.Set("X-Tcomp-Compressed-Bits", strconv.Itoa(st.CompressedBits))
	}
	_, _ = io.Copy(&countingWriter{w: w, n: s.metrics.BytesOut}, rc) // client gone: nothing to do
}

// handleJobDelete cancels an active job or removes a terminal one — one
// verb, state-dependent meaning, mirroring what an operator wants DELETE
// to do in either case. The answer is the final job record (for a
// removal, its last snapshot).
func (s *Server) handleJobDelete(w http.ResponseWriter, id string) {
	j, err := s.jobs.Get(id)
	if err != nil {
		writeError(w, CodeJobNotFound, "job %s: not found", id)
		return
	}
	if j.State.Terminal() {
		if err := s.jobs.Remove(id); err != nil && !errors.Is(err, jobs.ErrNotFound) {
			if errors.Is(err, jobs.ErrActive) {
				// Raced a resubmission-free transition; treat as cancel.
				_ = s.jobs.Cancel(id)
			} else {
				writeError(w, CodeInternalPanic, "removing job: %v", err)
				return
			}
		}
	} else {
		if err := s.jobs.Cancel(id); err != nil && !errors.Is(err, jobs.ErrNotFound) {
			writeError(w, CodeInternalPanic, "cancelling job: %v", err)
			return
		}
		if cur, err := s.jobs.Get(id); err == nil {
			j = cur
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(j) // client gone: nothing to do
}
