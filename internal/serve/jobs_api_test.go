package serve

// End-to-end coverage of the async job API: the HTTP surface, the
// tcomp.Client job methods, durability across a daemon restart, and the
// artifact GC interplay — all through real request/response cycles.

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	tcomp "repro"
	"repro/internal/artifact"
)

// serveGate is a registry codec whose Compress blocks until released —
// the deterministic "job is mid-run right now" hook for cancel and
// queue tests. It delegates to golomb once through the gate.
type serveGate struct {
	mu   sync.Mutex
	gate chan struct{}
}

func (g *serveGate) Name() string { return "servegate" }

func (g *serveGate) block() {
	g.mu.Lock()
	g.gate = make(chan struct{})
	g.mu.Unlock()
}

func (g *serveGate) release() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *serveGate) Compress(ctx context.Context, ts *tcomp.TestSet, opts ...tcomp.Option) (*tcomp.Artifact, error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c, err := tcomp.Lookup("golomb")
	if err != nil {
		return nil, err
	}
	return c.Compress(ctx, ts, opts...)
}

func (g *serveGate) Decompress(a *tcomp.Artifact) (*tcomp.TestSet, error) {
	c, err := tcomp.Lookup("golomb")
	if err != nil {
		return nil, err
	}
	return c.Decompress(a)
}

var gateCodec = func() *serveGate {
	g := &serveGate{}
	tcomp.Register(g)
	return g
}()

// jobCounter reads one key of the jobs metric map.
func jobCounter(s *Server, key string) int64 {
	v := s.Metrics().Jobs.Get(key)
	if v == nil {
		return 0
	}
	return v.Value()
}

// waitJobCounter polls a jobs counter up to its expected value: the
// Observe hook fires after the state transition is already visible over
// HTTP, so a fresh terminal state may precede its own count by a tick.
func waitJobCounter(t *testing.T, s *Server, key string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for jobCounter(s, key) != want {
		if time.Now().After(deadline) {
			t.Fatalf("jobs.%s = %d, want %d", key, jobCounter(s, key), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncJobLifecycle is the acceptance flow of the async subsystem:
// a multi-chunk v3 compression submitted as a job completes in the
// background with byte-identical output to the synchronous path, the
// job record and its artifact survive a daemon stop/start over the same
// store directory, and artifact GC turns the result into job_not_found
// while the record itself stays.
func TestAsyncJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "jobs")
	store1, err := artifact.NewDiskStore(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustServer(t, Config{Workers: 2, CacheBytes: 1 << 20, JobStore: store1, JobDir: jobDir})
	hs1 := httptest.NewServer(s1.Handler())
	client1 := tcomp.NewClient(hs1.URL)
	client1.PollInterval = 2 * time.Millisecond
	ctx := context.Background()

	ts := randomSet(32, 64, 9)
	in := textOf(t, ts)
	opts := []tcomp.Option{tcomp.WithSeed(7), tcomp.WithChunkPatterns(16)}

	// The synchronous reference: same codec, same params, same bytes.
	var syncOut bytes.Buffer
	if _, err := client1.Compress(ctx, "golomb", bytes.NewReader(in), &syncOut, opts...); err != nil {
		t.Fatal(err)
	}

	j, err := client1.SubmitCompressJob(ctx, "golomb", bytes.NewReader(in), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobPending {
		t.Fatalf("fresh job is %q, want pending", j.State)
	}
	if j.Spec.Input == "" {
		t.Fatal("job record carries no input digest")
	}
	if j, err = client1.WaitJob(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobDone {
		t.Fatalf("job ended %q (%s: %s), want done", j.State, j.ErrorCode, j.Error)
	}
	if j.Stats == nil || j.Stats.Chunks != 4 || j.Stats.Patterns != 64 {
		t.Fatalf("job stats %+v, want 64 patterns in 4 chunks", j.Stats)
	}
	if j.Progress.Chunks != j.Stats.Chunks {
		t.Fatalf("final progress %+v does not match stats %+v", j.Progress, j.Stats)
	}
	if j.Output == "" || j.OutputSize <= 0 {
		t.Fatalf("done job carries no output (digest %q, size %d)", j.Output, j.OutputSize)
	}

	var asyncOut bytes.Buffer
	st, err := client1.JobResult(ctx, j.ID, &asyncOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asyncOut.Bytes(), syncOut.Bytes()) {
		t.Fatalf("async result differs from the synchronous path: %d vs %d bytes",
			asyncOut.Len(), syncOut.Len())
	}
	if st.Chunks != 4 || st.Patterns != 64 {
		t.Fatalf("result headers report %+v, want 64 patterns in 4 chunks", st)
	}
	if got := jobCounter(s1, "submitted"); got != 1 {
		t.Fatalf("jobs.submitted = %d, want 1", got)
	}
	waitJobCounter(t, s1, "done", 1)

	// Listing includes the job.
	list, err := client1.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("job listing %v does not contain exactly job %s", list, j.ID)
	}

	// Stop the daemon, start a fresh one over the same directories: the
	// record and the artifact must both have survived.
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	store2, err := artifact.NewDiskStore(filepath.Join(dir, "artifacts"))
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustServer(t, Config{Workers: 2, JobStore: store2, JobDir: jobDir})
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	client2 := tcomp.NewClient(hs2.URL)

	j2, err := client2.Job(ctx, j.ID)
	if err != nil {
		t.Fatalf("job record did not survive the restart: %v", err)
	}
	if j2.State != tcomp.JobDone || j2.Output != j.Output {
		t.Fatalf("restarted record %+v does not match the original (state %q, output %q)",
			j2, j.State, j.Output)
	}
	var afterRestart bytes.Buffer
	if _, err := client2.JobResult(ctx, j.ID, &afterRestart); err != nil {
		t.Fatalf("result not fetchable after restart: %v", err)
	}
	if !bytes.Equal(afterRestart.Bytes(), syncOut.Bytes()) {
		t.Fatal("post-restart result bytes differ")
	}
	// The fetched container still decodes losslessly.
	sr, err := tcomp.NewStreamReader(bytes.NewReader(afterRestart.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !tcomp.VerifyLossless(ts, dec) {
		t.Fatal("async round trip lost specified bits")
	}

	// GC expires the artifacts (everything is now "old" against a far
	// future clock): the result answers job_not_found, the record stays.
	swept := store2.Sweep(time.Now().Add(48*time.Hour), 24*time.Hour, 0)
	if swept.Expired == 0 {
		t.Fatal("sweep expired nothing")
	}
	if _, err := client2.JobResult(ctx, j.ID, &bytes.Buffer{}); !errors.Is(err, tcomp.ErrJobNotFound) {
		t.Fatalf("result after GC: %v, want ErrJobNotFound", err)
	}
	if j3, err := client2.Job(ctx, j.ID); err != nil || j3.State != tcomp.JobDone {
		t.Fatalf("job record after GC: %+v, %v — want the done record intact", j3, err)
	}
}

// TestAsyncJobCancelAndQueueFull: cancelling a running job over HTTP
// lands it in cancelled; overfilling the one-deep backlog answers 429
// queue_full (and counts it).
func TestAsyncJobCancelAndQueueFull(t *testing.T) {
	gateCodec.block()
	defer gateCodec.release()
	s, client := newTestServer(t, Config{Workers: 2, JobWorkers: 1, MaxQueuedJobs: 1})
	client.PollInterval = 2 * time.Millisecond
	ctx := context.Background()
	in := textOf(t, randomSet(16, 8, 4))

	blocker, err := client.SubmitCompressJob(ctx, "servegate", bytes.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually mid-run, then fill the backlog.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := client.Job(ctx, blocker.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == tcomp.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %q)", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// A running job has no result yet: 409 job_not_done.
	if _, err := client.JobResult(ctx, blocker.ID, &bytes.Buffer{}); !errors.Is(err, tcomp.ErrJobNotDone) {
		t.Fatalf("result of a running job: %v, want ErrJobNotDone", err)
	}

	var sawFull bool
	for i := 0; i < 10 && !sawFull; i++ {
		_, err := client.SubmitCompressJob(ctx, "servegate", bytes.NewReader(in))
		switch {
		case err == nil:
		case errors.Is(err, tcomp.ErrQueueFull):
			sawFull = true
			var re *tcomp.RemoteError
			if !errors.As(err, &re) || re.Status != 429 || re.Code != CodeQueueFull {
				t.Fatalf("queue-full error is %#v, want HTTP 429 queue_full", err)
			}
		default:
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("backlog never reported queue_full")
	}
	if got := jobCounter(s, "queue_full"); got == 0 {
		t.Fatal("jobs.queue_full counter never moved")
	}

	// DELETE the running job: it ends cancelled.
	if _, err := client.CancelJob(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	j, err := client.WaitJob(ctx, blocker.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobCancelled {
		t.Fatalf("job ended %q, want cancelled", j.State)
	}
	// Release the gate so the queued survivors finish and Close is quick.
	gateCodec.release()
	waitJobCounter(t, s, "cancelled", 1)

	// A second DELETE on the now-terminal job removes the record.
	if _, err := client.CancelJob(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Job(ctx, blocker.ID); !errors.Is(err, tcomp.ErrJobNotFound) {
		t.Fatalf("removed job still answers: %v, want ErrJobNotFound", err)
	}
}

// TestAsyncJobErrors: the job taxonomy over real HTTP — unknown IDs are
// 404 job_not_found, a failed job's result is 409 job_not_done carrying
// the job's own failure code, and a bad submission is rejected with 400
// before a record is created.
func TestAsyncJobErrors(t *testing.T) {
	s, client := newTestServer(t, Config{Workers: 2})
	client.PollInterval = 2 * time.Millisecond
	ctx := context.Background()

	if _, err := client.Job(ctx, "j0123456789abcdef"); !errors.Is(err, tcomp.ErrJobNotFound) {
		t.Fatalf("unknown job: %v, want ErrJobNotFound", err)
	}
	var re *tcomp.RemoteError
	if _, err := client.JobResult(ctx, "nonsense-id", &bytes.Buffer{}); !errors.As(err, &re) || re.Status != 404 {
		t.Fatalf("unknown job result: %v, want HTTP 404", err)
	}

	// A decompress job over garbage fails with the sync taxonomy code.
	j, err := client.SubmitDecompressJob(ctx, strings.NewReader("this is not a container"))
	if err != nil {
		t.Fatal(err)
	}
	if j, err = client.WaitJob(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobFailed || j.ErrorCode != CodeCorruptContainer {
		t.Fatalf("garbage decompress ended %q/%q, want failed/corrupt_container", j.State, j.ErrorCode)
	}
	_, err = client.JobResult(ctx, j.ID, &bytes.Buffer{})
	if !errors.Is(err, tcomp.ErrJobNotDone) {
		t.Fatalf("failed job result: %v, want ErrJobNotDone", err)
	}
	if !errors.As(err, &re) || !strings.Contains(re.Message, CodeCorruptContainer) {
		t.Fatalf("409 detail %v does not name the job's failure code", err)
	}
	waitJobCounter(t, s, "failed", 1)

	// Bad submissions: unknown codec, unknown parameter, out-of-range
	// parameter, unknown kind — all 400, no record left behind.
	bad := []string{
		"kind=compress&codec=nope",
		"kind=compress&codec=golomb&bogus=1",
		"kind=compress&codec=golomb&m=999999999",
		"kind=frobnicate",
		"kind=sweep",
		"kind=decompress&codec=golomb",
	}
	h := s.Handler()
	for _, q := range bad {
		req := httptest.NewRequest("POST", "/v1/jobs?"+q, bytes.NewReader(textOf(t, randomSet(8, 2, 1))))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Fatalf("submission %q: status %d, want 400", q, rec.Code)
		}
		if got := rec.Header().Get("X-Tcomp-Error-Code"); got != CodeBadRequest {
			t.Fatalf("submission %q: error code %q, want bad_request", q, got)
		}
	}
	list, err := client.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("%d job records after the rejected submissions, want 1", len(list))
	}
}
