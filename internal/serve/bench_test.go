package serve

// BenchmarkServeRoundTrip measures end-to-end daemon throughput — one
// HTTP compress followed by one HTTP decompress per iteration — at 1,
// 8, and 64 concurrent clients sharing a GOMAXPROCS-sized worker
// budget. The cache is disabled and every request uses a distinct seed
// so the numbers reflect codec work, not cache hits. CI archives the
// test2json stream as BENCH_serve.json.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	tcomp "repro"
)

func BenchmarkServeRoundTrip(b *testing.B) {
	s := mustServer(b, Config{CacheBytes: 0})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	ctx := context.Background()

	ts := randomSet(32, 256, 1)
	var in bytes.Buffer
	if err := ts.Write(&in); err != nil {
		b.Fatal(err)
	}
	input := in.Bytes()
	b.SetBytes(int64(len(input)))

	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := tcomp.NewClient(hs.URL)
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						var cont, text bytes.Buffer
						if _, err := client.Compress(ctx, "golomb", bytes.NewReader(input), &cont, tcomp.WithSeed(i)); err != nil {
							b.Error(err)
							return
						}
						if err := client.Decompress(ctx, &cont, &text); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
