package serve

// FuzzServeAnyEndpoint is the daemon-wide crash-resistance target the
// panic-free serving core is proven against: hostile query strings and
// bodies against every endpoint (both data planes plus the GETs), with
// every registered codec reachable. The invariants:
//
//   - the process survives every input (a panic fails the fuzz run);
//   - a contained panic (HTTP 500 internal_panic) may only come from
//     the deliberately panicking "boom" codec — any real codec
//     answering 500 is a found bug;
//   - every non-2xx answer carries the machine-readable taxonomy body
//     with a known code that matches the X-Tcomp-Error-Code header.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"net/url"
	"testing"

	tcomp "repro"
)

// fuzzPaths maps the endpoint selector byte onto the handler tree.
var fuzzPaths = []struct {
	method, path string
}{
	{"POST", "/v1/compress"},
	{"POST", "/v1/decompress"},
	{"GET", "/v1/compress"},   // wrong method: 405
	{"GET", "/v1/decompress"}, // wrong method: 405
	{"GET", "/v1/codecs"},
	{"POST", "/v1/codecs"}, // wrong method: 405
	{"GET", "/healthz"},
	{"GET", "/metrics"},
	{"DELETE", "/v1/compress"}, // wrong method: 405
}

var knownCodes = map[string]bool{
	CodeBadRequest:       true,
	CodeMethodNotAllowed: true,
	CodeTooLarge:         true,
	CodeCorruptContainer: true,
	CodeUnprocessable:    true,
	CodeJobNotFound:      true,
	CodeJobNotDone:       true,
	CodeQueueFull:        true,
	CodeInternalPanic:    true,
	CodeUnavailable:      true,
}

// fuzzContainer builds a valid golomb v2 container to seed the
// decompress corpus with something the mutator can corrupt from.
func fuzzContainer() []byte {
	ts, err := tcomp.ParseTestSet("01X10X10", "00001111", "XXXXXXXX")
	if err != nil {
		panic(err)
	}
	codec, err := tcomp.Lookup("golomb")
	if err != nil {
		panic(err)
	}
	art, err := codec.Compress(context.Background(), ts)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := tcomp.Write(&buf, art); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func FuzzServeAnyEndpoint(f *testing.F) {
	valid := fuzzContainer()
	f.Add(uint8(0), "codec=golomb", []byte("4 2\n01X1\n1X00\n"))
	f.Add(uint8(0), "codec=rl&b=30", []byte("8 1\n0101X10X\n"))
	f.Add(uint8(0), "codec=rl&b=31", []byte("8 1\n0101X10X\n"))
	f.Add(uint8(0), "codec=selhuff&format=v2&k=62&d=3", []byte("8 2\n0101X10X\n00000000\n"))
	f.Add(uint8(0), "codec=9c&k=8", []byte("8 1\n0101X10X\n"))
	f.Add(uint8(0), "codec=9chc&format=v2", []byte("8 1\n0101X10X\n"))
	f.Add(uint8(0), "codec=fdr", []byte("4 1\n0000\n"))
	f.Add(uint8(0), "codec=boom", []byte("4 1\n0101\n"))
	f.Add(uint8(0), "codec=boom&format=v2", []byte("4 1\n0101\n"))
	f.Add(uint8(0), "codec=golomb", []byte("4294967295 4294967295\n"))
	f.Add(uint8(0), "codec=golomb", []byte("16777217 *\n01\n"))
	f.Add(uint8(0), "codec=golomb", []byte("TSET\x01\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF"))
	f.Add(uint8(1), "", valid)
	f.Add(uint8(1), "", valid[:len(valid)/2])
	f.Add(uint8(1), "", []byte("TCMP\x02\x04boom\x00\x00\x00\x04\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\x00\x08\xAB"))
	f.Add(uint8(1), "", []byte("TCMP\x02\x06golomb\xFF\xFF\xFF\xFF\xFF\xFF\xFF\xFF"))
	f.Add(uint8(1), "", []byte("TCMP\x01\x01\x00\x08\x00\x00\x00\x10\x00\x00\x00\x02\x00\x02"))
	f.Add(uint8(1), "", []byte("TCMP\x03"))
	f.Add(uint8(1), "", []byte("not a container"))
	f.Add(uint8(2), "codec=golomb", []byte("4 1\n0101\n")) // GET /v1/compress: 405
	f.Add(uint8(4), "", []byte(nil))
	f.Add(uint8(6), "junk=%zz", []byte(nil))
	f.Add(uint8(8), "", []byte("body on DELETE"))

	s := mustServer(f, Config{Workers: 2, CacheBytes: 1 << 16, CacheInputBytes: 1 << 12, MaxBodyBytes: 1 << 14})
	h := s.Handler()
	// Contained panics log a stack each; the boom corpus would drown the
	// fuzzer's own output.
	log.SetOutput(io.Discard)
	f.Cleanup(func() { log.SetOutput(io.Discard) })

	f.Fuzz(func(t *testing.T, ep uint8, query string, body []byte) {
		q, err := url.ParseQuery(query)
		if err != nil {
			return // not even a query string
		}
		route := fuzzPaths[int(ep)%len(fuzzPaths)]
		if route.method == "POST" && route.path == "/v1/compress" && q.Get("codec") == "ea" {
			// EA wall-clock would dominate the fuzz budget; its parse
			// path is covered by FuzzServeCompressHandler's ea branch.
			return
		}
		req := httptest.NewRequest(route.method, route.path+"?"+q.Encode(), bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here fails the run: that is the point
		resp := rec.Result()

		// A 500 is only legitimate when the deliberately panicking test
		// codec was reachable: named in the query (compress) or in the
		// container header (decompress; registry dispatch needs the
		// literal name in the body).
		boomReachable := q.Get("codec") == "boom" || bytes.Contains(body, []byte("boom"))
		if resp.StatusCode >= 500 && resp.StatusCode != 503 && !boomReachable {
			t.Fatalf("%s %s?%s: status %d from a non-panicking codec",
				route.method, route.path, q.Encode(), resp.StatusCode)
		}
		if resp.StatusCode >= 400 {
			code := resp.Header.Get("X-Tcomp-Error-Code")
			if !knownCodes[code] {
				t.Fatalf("%s %s: status %d with unknown error code %q",
					route.method, route.path, resp.StatusCode, code)
			}
			var e ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("%s %s: status %d error body does not parse: %v",
					route.method, route.path, resp.StatusCode, err)
			}
			if e.Code != code || e.Status != resp.StatusCode || e.Error == "" {
				t.Fatalf("%s %s: inconsistent error body %+v (header code %q, status %d)",
					route.method, route.path, e, code, resp.StatusCode)
			}
		}
		// Streamed 200s may still fail mid-body; the trailer code must
		// then be from the taxonomy.
		io.Copy(io.Discard, resp.Body)
		if code := resp.Trailer.Get("X-Tcomp-Error-Code"); code != "" && !knownCodes[code] {
			t.Fatalf("%s %s: unknown trailer error code %q", route.method, route.path, code)
		}
	})
}
