package serve

// FuzzServeCompressHandler throws hostile query strings and bodies at
// the compress endpoint: parsing must reject garbage with a clean 4xx —
// never panic, never let an absurd parameter (a 2^31 MV count, a
// 4-billion-pattern chunk, a hostile width header) through to an
// allocation — and anything it accepts must round-trip.

import (
	"bytes"
	"io"
	"net/http/httptest"
	"net/url"
	"testing"

	tcomp "repro"
	"repro/internal/scenario"
	"repro/internal/testset"
)

func FuzzServeCompressHandler(f *testing.F) {
	f.Add("codec=golomb", []byte("4 2\n01X1\n1X00\n"))
	f.Add("codec=rl&b=3&seed=9", []byte("8 1\n0101X10X\n"))
	f.Add("codec=fdr&format=v2", []byte("4 1\n0000\n"))
	f.Add("codec=nope", []byte("4 1\n0101\n"))
	f.Add("codec=golomb&chunk=4294967295", []byte("4 1\n0101\n"))
	f.Add("codec=golomb&l=2147483647", []byte("4 1\n0101\n"))
	f.Add("codec=ea&runs=99999&k=-3", []byte("4 1\n0101\n"))
	f.Add("codec=golomb&frobnicate=1", []byte("4 1\n0101\n"))
	f.Add("codec=golomb", []byte("4294967295 *\n01\n"))
	f.Add("codec=golomb", []byte("TSET\x01\x00\x00\x00\x04\x00\x00\x00\x01\x44"))
	f.Add("codec=selhuff&d=0&k=70", []byte("not a test set"))
	f.Add("%zz=&codec=golomb", []byte("4 1\n0101\n"))

	// Realistic seeds from the scenario corpus: ATPG-shaped stuck-at,
	// path-delay, and multichain pattern sets — the don't-care density
	// and block structure the daemon actually serves, which the
	// hand-written seeds above lack. Deterministic in the seed, so the
	// corpus is stable across runs.
	if corpus, err := scenario.Corpus(11); err == nil {
		queries := []string{"codec=golomb&seed=3", "codec=fdr", "codec=9c&k=4", "codec=rl&b=3", "codec=selhuff&d=4"}
		for i, sc := range corpus {
			var buf bytes.Buffer
			if sc.Set.Write(&buf) == nil {
				f.Add(queries[i%len(queries)], append([]byte(nil), buf.Bytes()...))
			}
		}
	}

	s := mustServer(f, Config{Workers: 1, CacheBytes: 1 << 16, CacheInputBytes: 1 << 12, MaxBodyBytes: 1 << 14})
	h := s.Handler()

	f.Fuzz(func(t *testing.T, query string, body []byte) {
		q, err := url.ParseQuery(query)
		if err != nil {
			return // not even a query string
		}
		// The parser must survive any query; heavy execution is limited
		// to the cheap codecs so the fuzzer measures parsing, not EA
		// wall-clock.
		if q.Get("codec") == "ea" {
			rec := httptest.NewRecorder()
			if _, ok := parseCompressQuery(rec, q); !ok {
				return
			}
			return
		}
		req := httptest.NewRequest("POST", "/v1/compress?"+q.Encode(), bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		resp := rec.Result()
		if resp.StatusCode != 200 {
			if resp.StatusCode < 400 || resp.StatusCode >= 500 {
				t.Fatalf("rejected input with status %d, want 4xx", resp.StatusCode)
			}
			return
		}
		// Accepted: the produced container must expand losslessly
		// against the submitted patterns.
		out, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading accepted response: %v", err)
		}
		if msg := resp.Trailer.Get("X-Tcomp-Error"); msg != "" {
			return // accepted then failed mid-stream; truncation is flagged
		}
		// Re-parse the submission the way the server did: ReadAuto for
		// binary bodies, the streaming Scanner for text (it accepts
		// "width *" headers the buffered reader does not).
		var orig *testset.TestSet
		if bytes.HasPrefix(body, []byte("TSET")) {
			orig, err = testset.ReadAuto(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("server accepted a binary body ReadAuto rejects: %v", err)
			}
		} else {
			sc, err := testset.NewScanner(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("server accepted a body the scanner rejects: %v", err)
			}
			orig = testset.New(sc.Width())
			for {
				v, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("server accepted a body with a bad pattern: %v", err)
				}
				orig.Add(v)
			}
		}
		var dec *testset.TestSet
		if q.Get("format") == "v2" {
			art, err := tcomp.Open(bytes.NewReader(out))
			if err != nil {
				t.Fatalf("accepted v2 response does not parse: %v", err)
			}
			if dec, err = tcomp.Decompress(art); err != nil {
				t.Fatalf("accepted v2 response does not decode: %v", err)
			}
		} else {
			sr, err := tcomp.NewStreamReader(bytes.NewReader(out))
			if err != nil {
				t.Fatalf("accepted v3 response does not parse: %v", err)
			}
			if dec, err = sr.ReadAll(); err != nil {
				t.Fatalf("accepted v3 response does not decode: %v", err)
			}
		}
		if !tcomp.VerifyLossless(orig, dec) {
			t.Fatalf("accepted response is lossy (codec %s, %d patterns)", q.Get("codec"), orig.NumPatterns())
		}
	})
}
