package serve

// Observability coverage: the request-ID trace from response header to
// structured log line to async job record, the Prometheus exposition
// endpoint under concurrent mutation, and error bodies naming their
// request.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	tcomp "repro"
	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink: request completions land
// from handler goroutines while job transitions land from the manager's
// workers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// logServer builds a test server whose structured JSON logs land in the
// returned buffer.
func logServer(t *testing.T, cfg Config) (*Server, *tcomp.Client, *syncBuffer) {
	t.Helper()
	logs := &syncBuffer{}
	logger, err := obs.NewLogger(logs, slog.LevelDebug, obs.LogJSON)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logger = logger
	s := mustServer(t, cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, tcomp.NewClient(hs.URL), logs
}

// logLine is the subset of the JSON log schema the tests assert on.
type logLine struct {
	Msg       string `json:"msg"`
	RequestID string `json:"request_id"`
	Path      string `json:"path"`
	Status    int    `json:"status"`
	JobID     string `json:"job_id"`
	State     string `json:"state"`
}

func linesWithRequestID(t *testing.T, logs *syncBuffer, rid string) []logLine {
	t.Helper()
	var out []logLine
	for _, raw := range logs.Lines() {
		if raw == "" {
			continue
		}
		var l logLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("non-JSON log line %q: %v", raw, err)
		}
		if l.RequestID == rid {
			out = append(out, l)
		}
	}
	return out
}

// TestRequestIDEndToEnd pins the tentpole guarantee: the ID a client
// sends as X-Request-Id comes back on the response, is stamped on the
// async job record it created, and names both the HTTP completion and
// the job's lifecycle in the structured logs.
func TestRequestIDEndToEnd(t *testing.T) {
	s, client, logs := logServer(t, Config{Workers: 2, JobWorkers: 1})
	const rid = "e2e-trace-12345"

	ts := randomSet(24, 40, 3)
	body := textOf(t, ts)
	req, err := http.NewRequest(http.MethodPost,
		client.BaseURL+"/v1/jobs?kind=compress&codec=golomb&seed=7", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != rid {
		t.Fatalf("response X-Request-Id = %q, want %q", got, rid)
	}
	var rec struct {
		ID        string `json:"id"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.RequestID != rid {
		t.Fatalf("job record request_id = %q, want %q", rec.RequestID, rid)
	}

	// The record keeps the link when fetched later, and through the
	// client's typed view.
	j, err := client.WaitJob(t.Context(), rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != tcomp.JobDone {
		t.Fatalf("job state = %s (%s)", j.State, j.Error)
	}
	if j.RequestID != rid {
		t.Fatalf("fetched job request_id = %q, want %q", j.RequestID, rid)
	}

	// The logs: one request-completion line for the submission and one
	// job-finished line, both naming the same request ID. The job line
	// lands from a worker goroutine after the record turns terminal, so
	// poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		lines := linesWithRequestID(t, logs, rid)
		var sawRequest, sawJob bool
		for _, l := range lines {
			if l.Msg == "request" && l.Path == "/v1/jobs" && l.Status == http.StatusAccepted {
				sawRequest = true
			}
			if l.Msg == "job finished" && l.JobID == rec.ID && l.State == "done" {
				sawJob = true
			}
		}
		if sawRequest && sawJob {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("logs never carried request %s end to end: request=%v job=%v (lines: %v)",
				rid, sawRequest, sawJob, lines)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = s
}

// TestRequestIDMintedAndSanitized: absent or hostile client IDs get a
// fresh minted one; error bodies echo the response's ID.
func TestRequestIDMintedAndSanitized(t *testing.T) {
	_, client, _ := logServer(t, Config{Workers: 1})
	for name, hostile := range map[string]string{
		"absent":   "",
		"tabbed":   "evil\tid", // a tab is legal in an HTTP header but not in our IDs
		"quoted":   `has"quote`,
		"oversize": strings.Repeat("x", 200),
	} {
		req, err := http.NewRequest(http.MethodGet, client.BaseURL+"/v1/compress", nil)
		if err != nil {
			t.Fatal(err)
		}
		if hostile != "" {
			req.Header.Set("X-Request-Id", hostile)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		rid := resp.Header.Get("X-Request-Id")
		if len(rid) != 16 {
			t.Fatalf("%s: minted ID %q, want 16 hex chars", name, rid)
		}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if eb.RequestID != rid {
			t.Fatalf("%s: error body request_id = %q, header %q", name, eb.RequestID, rid)
		}
		if eb.Code != CodeMethodNotAllowed {
			t.Fatalf("%s: code = %q", name, eb.Code)
		}
	}
}

// TestPrometheusExposition: after real traffic, the exposition carries
// the per-endpoint latency histogram and per-codec compression-rate
// histogram in valid text format.
func TestPrometheusExposition(t *testing.T) {
	_, client, _ := logServer(t, Config{Workers: 2})
	ts := randomSet(24, 60, 5)
	var out bytes.Buffer
	if _, err := client.Compress(t.Context(), "golomb", bytes.NewReader(textOf(t, ts)), &out, tcomp.WithSeed(7)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(client.BaseURL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		`tcompd_request_duration_seconds_bucket{path="/v1/compress",le="+Inf"} 1`,
		`tcompd_request_duration_seconds_count{path="/v1/compress"} 1`,
		`tcompd_compression_rate_percent_bucket{codec="golomb",le="+Inf"} 1`,
		`tcompd_requests_total{path="/v1/compress"} 1`,
		"# TYPE tcompd_request_duration_seconds histogram",
		"# TYPE tcompd_requests_total counter",
		"# TYPE tcompd_in_flight_requests gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Structural validity: every non-comment line is `name{labels} value`
	// or `name value`, and every metric family has HELP and TYPE.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestPrometheusConcurrentScrape: 64 goroutines hammer every metric
// family while scrapers read the exposition — the -race run proves the
// lock-free primitives and the renderer never tear.
func TestPrometheusConcurrentScrape(t *testing.T) {
	s, client, _ := logServer(t, Config{Workers: 2})
	m := s.Metrics()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codec := fmt.Sprintf("c%d", i%4)
			path := fmt.Sprintf("/p%d", i%8)
			for n := 0; n < 500; n++ {
				m.Requests.Add(path, 1)
				m.Latency.Observe(path, float64(n%100)/1000)
				m.Rates.Observe(codec, float64(n%120)-10)
				m.BytesIn.Add(1)
				m.InFlight.Add(1)
				m.noteWorker(1)
				m.noteWorker(-1)
				m.InFlight.Add(-1)
				m.Jobs.Add("submitted", 1)
			}
		}(i)
	}
	for i := 0; i < 10; i++ {
		resp, err := http.Get(client.BaseURL + "/metrics/prometheus")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d status = %d", i, resp.StatusCode)
		}
	}
	wg.Wait()

	// A final scrape must be internally consistent: the histogram count
	// equals the +Inf bucket for every series.
	resp, err := http.Get(client.BaseURL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	inf := regexp.MustCompile(`tcompd_request_duration_seconds_bucket\{path="/p0",le="\+Inf"\} (\d+)`)
	count := regexp.MustCompile(`tcompd_request_duration_seconds_count\{path="/p0"\} (\d+)`)
	im, cm := inf.FindStringSubmatch(string(body)), count.FindStringSubmatch(string(body))
	if im == nil || cm == nil || im[1] != cm[1] {
		t.Fatalf("+Inf bucket and _count disagree after quiesce: %v vs %v", im, cm)
	}
}

// TestWorkersPeakNotUnderReported is the regression test for the
// lost-update race: N requests hold worker tokens simultaneously, and
// the peak gauge must have seen all N — the historical check-then-set
// could miss the true maximum when a release raced a read.
func TestWorkersPeakNotUnderReported(t *testing.T) {
	s := mustServer(t, Config{Workers: 1})
	m := s.Metrics()
	const n = 64
	start := make(chan struct{})
	var ready, done sync.WaitGroup
	for i := 0; i < n; i++ {
		ready.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			ready.Done()
			<-start
			m.noteWorker(1)
			m.noteWorker(-1)
		}()
	}
	ready.Wait()
	close(start)
	done.Wait()
	if busy := m.WorkersBusy.Value(); busy != 0 {
		t.Fatalf("workers_busy = %d after all released", busy)
	}
	peak := m.WorkersPeak.Value()
	if peak < 1 || peak > n {
		t.Fatalf("workers_peak = %d, want within [1,%d]", peak, n)
	}
}
