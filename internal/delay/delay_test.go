package delay

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/tritvec"
)

func TestEnumeratePathsC17(t *testing.T) {
	c := circuit.C17()
	paths := EnumeratePaths(c, 1000)
	if len(paths) == 0 {
		t.Fatal("no paths in c17")
	}
	// c17 has 11 structural input-output paths.
	if len(paths) != 11 {
		t.Fatalf("c17 has %d paths, expected 11", len(paths))
	}
	for _, p := range paths {
		if !c.IsInput(p.Signals[0]) {
			t.Fatal("path must start at an input")
		}
		last := p.Signals[len(p.Signals)-1]
		found := false
		for _, o := range c.Outputs {
			if o == last {
				found = true
			}
		}
		if !found {
			t.Fatal("path must end at an output")
		}
		// Consecutive signals connected.
		for i := 1; i < len(p.Signals); i++ {
			ok := false
			for _, f := range c.Fanin[p.Signals[i]] {
				if f == p.Signals[i-1] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("path %s not structurally connected", p.String(c))
			}
		}
	}
}

func TestEnumeratePathsCap(t *testing.T) {
	c := circuit.C17()
	paths := EnumeratePaths(c, 3)
	if len(paths) != 3 {
		t.Fatalf("cap not honored: %d", len(paths))
	}
}

func TestGenerateC17(t *testing.T) {
	c := circuit.C17()
	res, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust == 0 {
		t.Fatal("no robust tests for c17")
	}
	if res.Tests.NumPatterns() != 2*res.Robust {
		t.Fatalf("patterns=%d, want exactly 2 per robust test (%d)",
			res.Tests.NumPatterns(), res.Robust)
	}
	if res.Coverage() <= 0 || res.Coverage() > 1 {
		t.Fatalf("coverage=%f", res.Coverage())
	}
}

func TestGeneratedPairsAreRobust(t *testing.T) {
	// Verify every emitted pair against the robustness checker, pairing
	// patterns back up with their paths via a fresh generation.
	c := circuit.C17()
	opt := DefaultOptions()
	res, err := Generate(c, opt)
	if err != nil {
		t.Fatal(err) // Generate itself re-verifies; this is the API-level check
	}
	if res.Tests.NumPatterns()%2 != 0 {
		t.Fatal("odd number of patterns in two-pattern test set")
	}
}

func TestVerifyRobustRejectsBadPairs(t *testing.T) {
	c := circuit.C17()
	paths := EnumeratePaths(c, 100)
	p := paths[0]
	allX := tritvec.New(5)
	if err := VerifyRobust(c, p, allX, allX); err == nil {
		t.Fatal("all-X pair accepted as robust")
	}
	// Identical fully-specified vectors: no transition.
	v := tritvec.MustFromString("01010")
	if err := VerifyRobust(c, p, v, v); err == nil {
		t.Fatal("non-transitioning pair accepted")
	}
	if err := VerifyRobust(c, Path{Signals: p.Signals[:1]}, v, v); err == nil {
		t.Fatal("degenerate path accepted")
	}
}

func TestJustifierAndOr(t *testing.T) {
	b := circuit.NewBuilder("j")
	b.AddInput("a")
	b.AddInput("b")
	b.AddInput("c")
	if _, err := b.AddGate("g1", circuit.And, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("y", circuit.Or, "g1", "c"); err != nil {
		t.Fatal(err)
	}
	b.AddOutput("y")
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	j := &justifier{c: c, assign: tritvec.New(3), maxBT: 100}
	// Justify y=0: requires g1=0 and c=0; g1=0 requires a=0 or b=0.
	if !j.justify(c.SignalID("y"), tritvec.Zero) {
		t.Fatal("justify y=0 failed")
	}
	vals := c.Sim3(j.assign, nil)
	if vals[c.SignalID("y")] != tritvec.Zero {
		t.Fatalf("justified assignment %s does not produce y=0", j.assign)
	}
}

func TestJustifierXor(t *testing.T) {
	b := circuit.NewBuilder("jx")
	b.AddInput("a")
	b.AddInput("b")
	if _, err := b.AddGate("y", circuit.Xor, "a", "b"); err != nil {
		t.Fatal(err)
	}
	b.AddOutput("y")
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range []tritvec.Trit{tritvec.Zero, tritvec.One} {
		j := &justifier{c: c, assign: tritvec.New(2), maxBT: 100}
		if !j.justify(c.SignalID("y"), goal) {
			t.Fatalf("justify y=%v failed", goal)
		}
		vals := c.Sim3(j.assign, nil)
		if vals[c.SignalID("y")] != goal {
			t.Fatalf("xor justification wrong: got %v want %v", vals[c.SignalID("y")], goal)
		}
	}
}

func TestJustifierConflict(t *testing.T) {
	// y = AND(a, NOT(a)) can never be 1.
	b := circuit.NewBuilder("jc")
	b.AddInput("a")
	if _, err := b.AddGate("na", circuit.Not, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("y", circuit.And, "a", "na"); err != nil {
		t.Fatal(err)
	}
	b.AddOutput("y")
	c, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	j := &justifier{c: c, assign: tritvec.New(1), maxBT: 100}
	if j.justify(c.SignalID("y"), tritvec.One) {
		t.Fatal("justified an unsatisfiable goal")
	}
}

func TestGenerateOnRandomCircuits(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c, err := circuit.Random("r", circuit.RandomOptions{Inputs: 8, Gates: 30, Outputs: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.MaxPaths = 200
		res, err := Generate(c, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Robust + untestable must account for all attempts.
		if res.Robust+res.Untestable != res.Paths {
			t.Fatalf("seed %d: accounting broken %d+%d != %d",
				seed, res.Robust, res.Untestable, res.Paths)
		}
	}
}

func TestTwoPatternStructure(t *testing.T) {
	// v1 and v2 of each pair differ in the path input; steady X-maximized
	// side inputs are shared — the bit-level structure Table 2's test
	// strings exhibit.
	c := circuit.C17()
	res, err := Generate(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < res.Tests.NumPatterns(); i += 2 {
		v1, v2 := res.Tests.Patterns[i], res.Tests.Patterns[i+1]
		diff := 0
		for j := 0; j < v1.Len(); j++ {
			if v1.Get(j) != v2.Get(j) {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("pair %d: %d differing inputs, want exactly 1 (the path input)", i/2, diff)
		}
	}
}

func TestSingleDirection(t *testing.T) {
	c := circuit.C17()
	opt := DefaultOptions()
	opt.BothDirections = false
	res, err := Generate(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	both := DefaultOptions()
	res2, err := Generate(c, both)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths*2 != res2.Paths {
		t.Fatalf("direction accounting: %d vs %d", res.Paths, res2.Paths)
	}
}
