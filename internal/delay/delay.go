// Package delay implements robust path-delay fault test generation: for a
// structural path from a primary input to a primary output, it searches
// for a two-pattern test (v1, v2) such that the path input transitions
// while every off-path side input of every on-path gate holds a steady
// non-controlling value — the classical robust sensitization condition.
// This plays the role of the TIP path-delay test generator used for the
// paper's Table 2 test sets.
package delay

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/testset"
	"repro/internal/tritvec"
)

// Path is a structural path: Signals[0] is a primary input, each
// subsequent signal is a gate fed by its predecessor, and the last signal
// is a primary output.
type Path struct {
	Signals []int
}

// String renders the path with signal names.
func (p Path) String(c *circuit.Circuit) string {
	s := ""
	for i, id := range p.Signals {
		if i > 0 {
			s += "->"
		}
		s += c.Names[id]
	}
	return s
}

// EnumeratePaths lists up to max structural input-to-output paths by DFS.
// Deterministic order: inputs and fanouts are visited in index order.
func EnumeratePaths(c *circuit.Circuit, max int) []Path {
	isOutput := make([]bool, c.NumSignals())
	for _, o := range c.Outputs {
		isOutput[o] = true
	}
	fanout := c.Fanout()
	var paths []Path
	var stack []int
	var dfs func(sig int)
	dfs = func(sig int) {
		if len(paths) >= max {
			return
		}
		stack = append(stack, sig)
		if isOutput[sig] {
			paths = append(paths, Path{Signals: append([]int(nil), stack...)})
		}
		for _, next := range fanout[sig] {
			if len(paths) >= max {
				break
			}
			dfs(next)
		}
		stack = stack[:len(stack)-1]
	}
	for _, in := range c.Inputs {
		if len(paths) >= max {
			break
		}
		dfs(in)
	}
	return paths
}

// Options configures robust test generation.
type Options struct {
	// MaxPaths bounds path enumeration (default 1000).
	MaxPaths int
	// BothDirections generates a rising and a falling transition test
	// per path (default true via DefaultOptions).
	BothDirections bool
	// MaxBacktracks bounds the side-input justification search per test.
	MaxBacktracks int
	// XMaximize re-Xes assigned inputs while the pair stays robust.
	XMaximize bool
	Seed      int64
}

// DefaultOptions returns the defaults used by the experiments.
func DefaultOptions() Options {
	return Options{MaxPaths: 1000, BothDirections: true, MaxBacktracks: 2000, XMaximize: true}
}

// Result reports generation outcome. Tests holds the two-pattern tests
// flattened in order v1, v2, v1, v2, … (the paper's Table 2 test-set
// strings are exactly such concatenations).
type Result struct {
	Tests      *testset.TestSet
	Paths      int // paths attempted (× directions)
	Robust     int // robustly tested
	Untestable int // no robust test found by the search
}

// Coverage returns the robustly tested fraction.
func (r *Result) Coverage() float64 {
	if r.Paths == 0 {
		return 0
	}
	return float64(r.Robust) / float64(r.Paths)
}

// Generate produces robust two-pattern tests for up to MaxPaths paths.
func Generate(c *circuit.Circuit, opt Options) (*Result, error) {
	if opt.MaxPaths <= 0 {
		opt.MaxPaths = 1000
	}
	if opt.MaxBacktracks <= 0 {
		opt.MaxBacktracks = 2000
	}
	paths := EnumeratePaths(c, opt.MaxPaths)
	res := &Result{Tests: testset.New(len(c.Inputs))}
	rng := rand.New(rand.NewSource(opt.Seed))
	dirs := []tritvec.Trit{tritvec.Zero}
	if opt.BothDirections {
		dirs = []tritvec.Trit{tritvec.Zero, tritvec.One}
	}
	for _, path := range paths {
		for _, initial := range dirs {
			res.Paths++
			v1, v2, ok := robustTest(c, path, initial, opt.MaxBacktracks, rng)
			if !ok {
				res.Untestable++
				continue
			}
			if opt.XMaximize {
				v1, v2 = maximizeX(c, path, v1, v2)
			}
			if err := VerifyRobust(c, path, v1, v2); err != nil {
				return nil, fmt.Errorf("delay: internal error: generated pair not robust: %v", err)
			}
			res.Tests.Add(v1)
			res.Tests.Add(v2)
			res.Robust++
		}
	}
	return res, nil
}

// robustTest searches for a steady side-input assignment and returns the
// two vectors.
func robustTest(c *circuit.Circuit, path Path, initial tritvec.Trit, maxBT int, rng *rand.Rand) (tritvec.Vector, tritvec.Vector, bool) {
	j := &justifier{c: c, assign: tritvec.New(len(c.Inputs)), maxBT: maxBT}
	// Justify every side input of every on-path gate to a steady
	// non-controlling value.
	for i := 1; i < len(path.Signals); i++ {
		gate := path.Signals[i]
		onPath := path.Signals[i-1]
		nc, hasNC := nonControlling(c.Types[gate])
		for _, fin := range c.Fanin[gate] {
			if fin == onPath {
				continue
			}
			if hasNC {
				if !j.justify(fin, nc) {
					return tritvec.Vector{}, tritvec.Vector{}, false
				}
			} else {
				// Parity gate: any steady specified value; try 0 then 1.
				mark := j.mark()
				if !j.justify(fin, tritvec.Zero) {
					j.undo(mark)
					if !j.justify(fin, tritvec.One) {
						return tritvec.Vector{}, tritvec.Vector{}, false
					}
				}
			}
		}
	}
	// The path input must still be free.
	pathPI := path.Signals[0]
	idx := c.InputIndex(pathPI)
	if idx < 0 || j.assign.Get(idx) != tritvec.X {
		return tritvec.Vector{}, tritvec.Vector{}, false
	}
	v1 := j.assign.Clone()
	v2 := j.assign.Clone()
	v1.Set(idx, initial)
	v2.Set(idx, invert(initial))
	if VerifyRobust(c, path, v1, v2) != nil {
		return tritvec.Vector{}, tritvec.Vector{}, false
	}
	_ = rng
	return v1, v2, true
}

// VerifyRobust checks the robust sensitization conditions on the pair:
// every on-path signal is specified in both vectors and transitions, and
// every side input of every on-path gate is steady, specified, and (for
// gates with a controlling value) non-controlling.
func VerifyRobust(c *circuit.Circuit, path Path, v1, v2 tritvec.Vector) error {
	if len(path.Signals) < 2 {
		return fmt.Errorf("path too short")
	}
	g1 := c.Sim3(v1, nil)
	g2 := c.Sim3(v2, nil)
	for i, sig := range path.Signals {
		a, b := g1[sig], g2[sig]
		if a == tritvec.X || b == tritvec.X {
			return fmt.Errorf("on-path signal %s unspecified", c.Names[sig])
		}
		if a == b {
			return fmt.Errorf("on-path signal %s does not transition", c.Names[sig])
		}
		if i == 0 {
			continue
		}
		gate := sig
		onPath := path.Signals[i-1]
		nc, hasNC := nonControlling(c.Types[gate])
		for _, fin := range c.Fanin[gate] {
			if fin == onPath {
				continue
			}
			sa, sb := g1[fin], g2[fin]
			if sa == tritvec.X || sb == tritvec.X {
				return fmt.Errorf("side input %s of %s unspecified", c.Names[fin], c.Names[gate])
			}
			if sa != sb {
				return fmt.Errorf("side input %s of %s not steady", c.Names[fin], c.Names[gate])
			}
			if hasNC && sa != nc {
				return fmt.Errorf("side input %s of %s controlling", c.Names[fin], c.Names[gate])
			}
		}
	}
	return nil
}

// justifier performs structural backward justification with backtracking
// over primary-input assignments.
type justifier struct {
	c      *circuit.Circuit
	assign tritvec.Vector
	trail  []int // input indices assigned, for undo
	bt     int
	maxBT  int
}

func (j *justifier) mark() int { return len(j.trail) }

func (j *justifier) undo(mark int) {
	for len(j.trail) > mark {
		idx := j.trail[len(j.trail)-1]
		j.trail = j.trail[:len(j.trail)-1]
		j.assign.Set(idx, tritvec.X)
	}
}

// justify drives signal sig to value val by assigning primary inputs.
func (j *justifier) justify(sig int, val tritvec.Trit) bool {
	if j.bt > j.maxBT {
		return false
	}
	t := j.c.Types[sig]
	if t == circuit.Input {
		idx := j.c.InputIndex(sig)
		cur := j.assign.Get(idx)
		if cur == val {
			return true
		}
		if cur != tritvec.X {
			return false
		}
		j.assign.Set(idx, val)
		j.trail = append(j.trail, idx)
		return true
	}
	fin := j.c.Fanin[sig]
	switch t {
	case circuit.Buf:
		return j.justify(fin[0], val)
	case circuit.Not:
		return j.justify(fin[0], invert(val))
	case circuit.And, circuit.Nand:
		goal := val
		if t == circuit.Nand {
			goal = invert(val)
		}
		if goal == tritvec.One {
			for _, f := range fin {
				if !j.justify(f, tritvec.One) {
					return false
				}
			}
			return true
		}
		return j.justifyAny(fin, tritvec.Zero)
	case circuit.Or, circuit.Nor:
		goal := val
		if t == circuit.Nor {
			goal = invert(val)
		}
		if goal == tritvec.Zero {
			for _, f := range fin {
				if !j.justify(f, tritvec.Zero) {
					return false
				}
			}
			return true
		}
		return j.justifyAny(fin, tritvec.One)
	case circuit.Xor, circuit.Xnor:
		goal := val
		if t == circuit.Xnor {
			goal = invert(val)
		}
		if len(fin) != 2 {
			return false // wide parity gates: not justified structurally
		}
		mark := j.mark()
		if j.justify(fin[0], tritvec.Zero) && j.justify(fin[1], goal) {
			return true
		}
		j.undo(mark)
		j.bt++
		if j.justify(fin[0], tritvec.One) && j.justify(fin[1], invert(goal)) {
			return true
		}
		j.undo(mark)
		return false
	}
	return false
}

// justifyAny drives at least one of the fanins to the controlling value.
func (j *justifier) justifyAny(fin []int, val tritvec.Trit) bool {
	for _, f := range fin {
		mark := j.mark()
		if j.justify(f, val) {
			return true
		}
		j.undo(mark)
		j.bt++
		if j.bt > j.maxBT {
			return false
		}
	}
	return false
}

// maximizeX greedily re-Xes steady input assignments while the pair stays
// robust. The path input itself always stays specified.
func maximizeX(c *circuit.Circuit, path Path, v1, v2 tritvec.Vector) (tritvec.Vector, tritvec.Vector) {
	o1, o2 := v1.Clone(), v2.Clone()
	pathIdx := c.InputIndex(path.Signals[0])
	for i := 0; i < o1.Len(); i++ {
		if i == pathIdx || o1.Get(i) == tritvec.X {
			continue
		}
		s1, s2 := o1.Get(i), o2.Get(i)
		o1.Set(i, tritvec.X)
		o2.Set(i, tritvec.X)
		if VerifyRobust(c, path, o1, o2) != nil {
			o1.Set(i, s1)
			o2.Set(i, s2)
		}
	}
	return o1, o2
}

func nonControlling(t circuit.GateType) (tritvec.Trit, bool) {
	switch t {
	case circuit.And, circuit.Nand:
		return tritvec.One, true
	case circuit.Or, circuit.Nor:
		return tritvec.Zero, true
	}
	return tritvec.X, false
}

func invert(v tritvec.Trit) tritvec.Trit {
	switch v {
	case tritvec.Zero:
		return tritvec.One
	case tritvec.One:
		return tritvec.Zero
	}
	return tritvec.X
}
