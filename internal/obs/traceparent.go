package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
)

// W3C Trace Context (https://www.w3.org/TR/trace-context/) identifiers.
// A trace ID names one end-to-end request as it crosses processes; a
// span ID names one operation inside it. Both travel on the wire in the
// traceparent header:
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             │  │                                │                │
//	             │  trace-id (32 lowercase hex)      parent span-id   flags
//	             version                             (16 hex)         (01 = sampled)
//
// The all-zero trace ID and span ID are invalid per spec — they are the
// format's null values — so the zero Go values double as "absent".

// TraceID identifies one distributed trace (16 bytes, all-zero = absent).
type TraceID [16]byte

// Valid reports whether the ID is non-zero (the spec's null check).
func (id TraceID) Valid() bool { return id != TraceID{} }

// String returns the 32-character lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID identifies one span inside a trace (8 bytes, all-zero = absent).
type SpanID [8]byte

// Valid reports whether the ID is non-zero.
func (id SpanID) Valid() bool { return id != SpanID{} }

// String returns the 16-character lowercase hex form.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// TraceContext is the propagated half of a span: enough to join a trace
// started elsewhere (trace ID + the sender's span ID as parent) and to
// carry its sampling decision downstream.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool
}

// Valid reports whether both IDs are present.
func (tc TraceContext) Valid() bool { return tc.TraceID.Valid() && tc.SpanID.Valid() }

// NewTraceID mints a random trace ID. Like NewRequestID, an entropy
// failure is unrecoverable and panics.
func NewTraceID() TraceID {
	var id TraceID
	if _, err := crand.Read(id[:]); err != nil {
		panic(fmt.Sprintf("obs: reading random trace ID bytes: %v", err))
	}
	return id
}

// NewSpanID mints a random span ID.
func NewSpanID() SpanID {
	var id SpanID
	if _, err := crand.Read(id[:]); err != nil {
		panic(fmt.Sprintf("obs: reading random span ID bytes: %v", err))
	}
	return id
}

// FormatTraceparent renders the version-00 traceparent header value for
// a trace context. Only the sampled bit of the flags byte is carried.
func FormatTraceparent(tc TraceContext) string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID.String() + "-" + tc.SpanID.String() + "-" + flags
}

// traceparentLen is the exact length of a version-00 traceparent value:
// 2 + 1 + 32 + 1 + 16 + 1 + 2.
const traceparentLen = 55

// ParseTraceparent parses and validates a traceparent header value per
// the W3C Trace Context spec. It is the sanitization boundary for the
// inbound header — a hostile value must never yield a usable context:
//
//   - hex digits are lowercase only (the spec forbids uppercase);
//   - version "ff" is invalid; a version-00 value must be exactly 55
//     characters; a higher version may carry extra "-..." fields, which
//     are ignored;
//   - the all-zero trace ID and all-zero span ID are rejected;
//   - only the sampled bit of the flags is interpreted.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	if len(s) < traceparentLen {
		return tc, fmt.Errorf("obs: traceparent too short (%d chars)", len(s))
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, fmt.Errorf("obs: traceparent field delimiters misplaced")
	}
	version, ok := hexByte(s[0], s[1])
	if !ok {
		return tc, fmt.Errorf("obs: traceparent version %q is not lowercase hex", s[:2])
	}
	if version == 0xff {
		return tc, fmt.Errorf("obs: traceparent version ff is invalid")
	}
	switch {
	case version == 0 && len(s) != traceparentLen:
		return tc, fmt.Errorf("obs: version-00 traceparent must be %d chars, got %d", traceparentLen, len(s))
	case version > 0 && len(s) > traceparentLen && s[traceparentLen] != '-':
		return tc, fmt.Errorf("obs: traceparent trailing fields must be dash-separated")
	}
	if !decodeLowerHex(tc.TraceID[:], s[3:35]) {
		return tc, fmt.Errorf("obs: traceparent trace-id %q is not lowercase hex", s[3:35])
	}
	if !tc.TraceID.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent trace-id is all zero")
	}
	if !decodeLowerHex(tc.SpanID[:], s[36:52]) {
		return TraceContext{}, fmt.Errorf("obs: traceparent parent-id %q is not lowercase hex", s[36:52])
	}
	if !tc.SpanID.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent parent-id is all zero")
	}
	flags, ok := hexByte(s[53], s[54])
	if !ok {
		return TraceContext{}, fmt.Errorf("obs: traceparent flags %q are not lowercase hex", s[53:55])
	}
	tc.Sampled = flags&0x01 != 0
	return tc, nil
}

// hexByte decodes two lowercase hex digits into one byte.
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// decodeLowerHex fills dst from the lowercase-hex string s (len(s) must
// be 2*len(dst)).
func decodeLowerHex(dst []byte, s string) bool {
	for i := range dst {
		b, ok := hexByte(s[2*i], s[2*i+1])
		if !ok {
			return false
		}
		dst[i] = b
	}
	return true
}
