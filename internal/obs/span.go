package obs

import (
	"context"
	"encoding/binary"
	"sync"
	"time"
)

// Span is one timed operation inside a trace: it carries the trace ID /
// span ID / parent ID triple, wall-clock start and end, attributes, and
// an error status. Spans form a tree through context: StartSpan makes
// the new span a child of the context's current span, so the serve
// handler, the pipeline workers under it, and the codec calls under
// those nest without any layer knowing about the others.
//
// A nil *Span is a valid no-op receiver for every method, mirroring the
// nil-*Trace idiom: deep layers call StartSpan/SetAttrs/End without
// checking whether the request is traced at all.
//
// Two independent sinks consume a span. Ending it always records its
// duration as a stage on the context's Trace (unless started with
// WithoutStage), so the request-completion log line keeps its stage
// timings even when no exporter is configured. Exporting — handing the
// finished span to a SpanExporter — additionally requires that the
// span's trace is sampled and a Tracer with an exporter started the
// root.
type Span struct {
	name   string
	tc     TraceContext
	parent SpanID
	start  time.Time
	trace  *Trace
	exp    SpanExporter
	stage  bool

	mu     sync.Mutex
	attrs  []Attr
	status string
	ended  bool
}

// Attr is one span attribute: a string or int64 value under a key.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsInt selects the int64 value; otherwise Str is the value.
	IsInt bool
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Str: value} }

// Int builds an int64 attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Int: value, IsInt: true} }

// SpanOption configures StartSpan.
type SpanOption func(*Span)

// WithoutStage keeps the span out of the Trace's stage list — for
// high-cardinality spans (one per chunk, one per parallel region) whose
// names would bloat the request-completion log line.
func WithoutStage() SpanOption { return func(s *Span) { s.stage = false } }

// TraceContext returns the span's propagation context (zero when the
// span is a pure stage timer with no trace identity, or s is nil).
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return s.tc
}

// SetAttrs appends attributes to the span. Safe for concurrent use.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SetError marks the span's status as failed with the error's message.
// A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.status = err.Error()
	s.mu.Unlock()
}

// End finishes the span: its duration lands on the request trace's
// stage list (unless WithoutStage) and, when the trace is sampled and
// an exporter is attached, the finished span is handed to the exporter.
// End is idempotent; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	status := s.status
	s.mu.Unlock()
	if s.stage {
		s.trace.AddStage(s.name, end.Sub(s.start))
	}
	if s.exp != nil {
		_ = s.exp.ExportSpans([]SpanData{{
			TraceID: s.tc.TraceID,
			SpanID:  s.tc.SpanID,
			Parent:  s.parent,
			Name:    s.name,
			Start:   s.start,
			End:     end,
			Attrs:   attrs,
			Status:  status,
		}})
	}
}

// spanKey carries the current span; tcKey carries an explicitly
// injected trace context (a caller that has a traceparent but no live
// span, e.g. tcomp.WithTraceparent).
type (
	spanKey struct{}
	tcKey   struct{}
)

// ContextWithSpan returns a context whose current span is s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's current span, or nil. The nil
// return is safe to call methods on.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithTraceContext returns a context carrying an explicit trace context
// for propagation (TraceparentFromContext reads it when no live span is
// present). Used by clients that received a traceparent from elsewhere.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, tcKey{}, tc)
}

// TraceparentFromContext renders the context's trace position as a W3C
// traceparent header value: the current span's context when one is
// live, else an explicitly injected one (WithTraceContext), else "".
// This is what the tcomp.Client stamps on outgoing requests and what
// the jobs manager persists in the journal.
func TraceparentFromContext(ctx context.Context) string {
	if sp := SpanFromContext(ctx); sp != nil && sp.tc.Valid() {
		return FormatTraceparent(sp.tc)
	}
	if tc, ok := ctx.Value(tcKey{}).(TraceContext); ok && tc.Valid() {
		return FormatTraceparent(tc)
	}
	return ""
}

// StartSpan starts a child of the context's current span and makes it
// the context's current span. Outside any trace (no span and no Trace
// on the context) it returns the context unchanged and a nil span, so
// instrumented layers cost nothing on untraced paths.
//
// When the context carries a Trace but no span (a request on a daemon
// with no tracer configured), the span still times its stage onto the
// Trace — StartSpan/End is a strict superset of the AddStage call sites
// it replaced.
func StartSpan(ctx context.Context, name string, opts ...SpanOption) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	tr := TraceFrom(ctx)
	if parent == nil && tr == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now(), trace: tr, stage: true}
	if parent != nil && parent.tc.TraceID.Valid() {
		sp.tc = TraceContext{TraceID: parent.tc.TraceID, SpanID: NewSpanID(), Sampled: parent.tc.Sampled}
		sp.parent = parent.tc.SpanID
		sp.exp = parent.exp
	}
	for _, o := range opts {
		o(sp)
	}
	return ContextWithSpan(ctx, sp), sp
}

// Tracer mints root spans and owns the sampling policy: parent-based
// (an inbound traceparent's sampled flag is honored, so a trace is
// sampled or dropped consistently across every hop) plus a
// deterministic ratio for new roots, derived from the trace ID itself —
// the same trace ID yields the same decision on every process.
type Tracer struct {
	exporter SpanExporter
	ratio    float64
}

// NewTracer returns a Tracer exporting sampled spans to exp. ratio in
// [0,1] is the fraction of new roots (no inbound trace context) to
// sample; values outside the range are clamped.
func NewTracer(exp SpanExporter, ratio float64) *Tracer {
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return &Tracer{exporter: exp, ratio: ratio}
}

// Exporter returns the tracer's span exporter (nil on a nil tracer).
func (t *Tracer) Exporter() SpanExporter {
	if t == nil {
		return nil
	}
	return t.exporter
}

// ExporterStats returns the exporter's queue/volume accounting when the
// exporter keeps one (the OTLP exporter does; the plain writer does
// not). ok is false otherwise, and always on a nil tracer.
func (t *Tracer) ExporterStats() (ExporterStats, bool) {
	if t == nil {
		return nil, false
	}
	st, ok := t.exporter.(ExporterStats)
	return st, ok
}

// Shutdown flushes and stops the exporter; a no-op on a nil tracer.
func (t *Tracer) Shutdown(ctx context.Context) error {
	if t == nil || t.exporter == nil {
		return nil
	}
	return t.exporter.Shutdown(ctx)
}

// StartRoot starts a trace root span: the first span of this process's
// part of a trace. A valid parent (a parsed inbound traceparent) is
// joined — same trace ID, parent-based sampling decision — regardless
// of whether a tracer is configured, so trace context keeps propagating
// through an exporter-less daemon. Without a parent, a nil tracer
// returns (ctx, nil); a live tracer mints a fresh trace ID and applies
// its ratio sampler.
//
// Root spans do not register as stages — the request-completion log
// line already carries the total duration.
func (t *Tracer) StartRoot(ctx context.Context, name string, parent *TraceContext) (context.Context, *Span) {
	var tc TraceContext
	var parentID SpanID
	switch {
	case parent != nil && parent.Valid():
		tc = TraceContext{TraceID: parent.TraceID, SpanID: NewSpanID(), Sampled: parent.Sampled}
		parentID = parent.SpanID
	case t != nil:
		id := NewTraceID()
		tc = TraceContext{TraceID: id, SpanID: NewSpanID(), Sampled: sampleTraceID(id, t.ratio)}
	default:
		return ctx, nil
	}
	sp := &Span{name: name, tc: tc, parent: parentID, start: time.Now(), trace: TraceFrom(ctx)}
	if t != nil && tc.Sampled {
		sp.exp = t.exporter
	}
	return ContextWithSpan(ctx, sp), sp
}

// sampleTraceID is the deterministic ratio sampler: the trace ID's
// first eight bytes, right-shifted to a 63-bit integer, compared to
// ratio scaled into the same domain. Every process holding the same
// ratio makes the same call for the same trace ID.
func sampleTraceID(id TraceID, ratio float64) bool {
	if ratio >= 1 {
		return true
	}
	if ratio <= 0 {
		return false
	}
	x := binary.BigEndian.Uint64(id[:8]) >> 1
	return x < uint64(ratio*float64(1<<63))
}
