package obs

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testFlagSet builds the kind of FlagSet tcompd uses.
func testFlagSet() (*flag.FlagSet, *string, *int64, *time.Duration, *bool, *string) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	addr := fs.String("addr", ":8077", "")
	cache := fs.Int64("cache-bytes", 256<<20, "")
	drain := fs.Duration("drain-timeout", 30*time.Second, "")
	pprof := fs.Bool("pprof", false, "")
	config := fs.String("config", "", "")
	return fs, addr, cache, drain, pprof, config
}

func env(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) { v, ok := m[k]; return v, ok }
}

// TestConfigPrecedence pins the documented resolution order:
// flag > env > file > default, per setting independently.
func TestConfigPrecedence(t *testing.T) {
	file := filepath.Join(t.TempDir(), "tcompd.json")
	if err := os.WriteFile(file, []byte(`{
		"addr": "file:1",
		"cache-bytes": 111,
		"drain-timeout": "5s",
		"pprof": true
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, addr, cache, drain, pprof, _ := testFlagSet()
	// addr: set on the command line AND in env AND in the file → flag wins.
	// cache-bytes: env and file → env wins.
	// drain-timeout: file only → file wins.
	// pprof: file only → file wins (boolean).
	err := LoadFlags(fs, []string{"-addr", "flag:1", "-config", file}, "TCOMPD_", env(map[string]string{
		"TCOMPD_ADDR":        "env:1",
		"TCOMPD_CACHE_BYTES": "222",
	}), "config")
	if err != nil {
		t.Fatal(err)
	}
	if *addr != "flag:1" {
		t.Fatalf("addr = %q, want flag value", *addr)
	}
	if *cache != 222 {
		t.Fatalf("cache-bytes = %d, want env value 222", *cache)
	}
	if *drain != 5*time.Second {
		t.Fatalf("drain-timeout = %v, want file value 5s", *drain)
	}
	if !*pprof {
		t.Fatal("pprof = false, want file value true")
	}
}

// TestConfigDefaultsSurvive: nothing set anywhere leaves the flag
// defaults untouched.
func TestConfigDefaultsSurvive(t *testing.T) {
	fs, addr, cache, drain, pprof, _ := testFlagSet()
	if err := LoadFlags(fs, nil, "TCOMPD_", env(nil), "config"); err != nil {
		t.Fatal(err)
	}
	if *addr != ":8077" || *cache != 256<<20 || *drain != 30*time.Second || *pprof {
		t.Fatalf("defaults mutated: addr=%q cache=%d drain=%v pprof=%v", *addr, *cache, *drain, *pprof)
	}
}

// TestConfigFileFromEnv: the config file path itself resolves through
// the env layer when the flag is not given.
func TestConfigFileFromEnv(t *testing.T) {
	file := filepath.Join(t.TempDir(), "tcompd.json")
	if err := os.WriteFile(file, []byte(`{"addr": "from-file:9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, addr, _, _, _, _ := testFlagSet()
	err := LoadFlags(fs, nil, "TCOMPD_", env(map[string]string{"TCOMPD_CONFIG": file}), "config")
	if err != nil {
		t.Fatal(err)
	}
	if *addr != "from-file:9" {
		t.Fatalf("addr = %q, want value from env-named config file", *addr)
	}
}

// TestConfigRejectsUnknownKey: a typoed file setting fails startup.
func TestConfigRejectsUnknownKey(t *testing.T) {
	file := filepath.Join(t.TempDir(), "tcompd.json")
	if err := os.WriteFile(file, []byte(`{"adddr": ":1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, _, _, _, _, _ := testFlagSet()
	if err := LoadFlags(fs, []string{"-config", file}, "TCOMPD_", env(nil), "config"); err == nil {
		t.Fatal("unknown config key did not fail")
	}
}

// TestConfigRejectsBadEnvValue: an unparsable env value names the
// variable in the error instead of being ignored.
func TestConfigRejectsBadEnvValue(t *testing.T) {
	fs, _, _, _, _, _ := testFlagSet()
	err := LoadFlags(fs, nil, "TCOMPD_", env(map[string]string{"TCOMPD_CACHE_BYTES": "lots"}), "config")
	if err == nil {
		t.Fatal("bad env value did not fail")
	}
}

// TestEnvName pins the flag→env derivation rule.
func TestEnvName(t *testing.T) {
	if got := EnvName("TCOMPD_", "cache-input-cap"); got != "TCOMPD_CACHE_INPUT_CAP" {
		t.Fatalf("EnvName = %q", got)
	}
}
