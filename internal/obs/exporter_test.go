package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenSpans is a fixed batch: deterministic IDs and times so the
// marshalled payload is byte-stable.
func goldenSpans() []SpanData {
	var traceID TraceID
	var rootID, childID SpanID
	copy(traceID[:], []byte{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36})
	copy(rootID[:], []byte{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7})
	copy(childID[:], []byte{0x05, 0xe3, 0xac, 0x9a, 0x4f, 0x6e, 0x3b, 0x90})
	start := time.Unix(1700000000, 0).UTC()
	return []SpanData{
		{
			TraceID: traceID,
			SpanID:  rootID,
			Name:    "POST /v1/compress",
			Start:   start,
			End:     start.Add(42 * time.Millisecond),
			Attrs: []Attr{
				String("request_id", "ci-smoke-1"),
				Int("http.status_code", 200),
			},
		},
		{
			TraceID: traceID,
			SpanID:  childID,
			Parent:  rootID,
			Name:    "compress golomb",
			Start:   start.Add(1 * time.Millisecond),
			End:     start.Add(40 * time.Millisecond),
			Status:  "golomb: parameter sweep failed",
		},
	}
}

// TestOTLPPayloadGolden pins the OTLP/HTTP JSON shape — field names,
// string-encoded nanosecond timestamps, attribute AnyValue envelopes,
// status codes — against testdata/otlp_golden.json. Regenerate with
// go test ./internal/obs -run TestOTLPPayloadGolden -update-golden.
func TestOTLPPayloadGolden(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(otlpPayload("tcompd", goldenSpans())); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/otlp_golden.json"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("OTLP payload drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriterExporterJSONL(t *testing.T) {
	var buf bytes.Buffer
	e := NewWriterExporter(&buf)
	if err := e.ExportSpans(goldenSpans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace_id = %v", first["trace_id"])
	}
	if first["name"] != "POST /v1/compress" {
		t.Errorf("name = %v", first["name"])
	}
	if _, hasParent := first["parent_id"]; hasParent {
		t.Error("root line should omit parent_id")
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if second["parent_id"] != "00f067aa0ba902b7" {
		t.Errorf("parent_id = %v", second["parent_id"])
	}
	if second["error"] != "golomb: parameter sweep failed" {
		t.Errorf("error = %v", second["error"])
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestOTLPExporterDelivers(t *testing.T) {
	var mu sync.Mutex
	var got []otlpExportRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req otlpExportRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad payload: %v", err)
		}
		mu.Lock()
		got = append(got, req)
		mu.Unlock()
	}))
	defer srv.Close()

	e := NewOTLPExporter(OTLPConfig{Endpoint: srv.URL, FlushInterval: 10 * time.Millisecond})
	if err := e.ExportSpans(goldenSpans()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if e.Exported() != 2 || e.Dropped() != 0 || e.QueueDepth() != 0 {
		t.Fatalf("stats exported=%d dropped=%d depth=%d", e.Exported(), e.Dropped(), e.QueueDepth())
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, req := range got {
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				total += len(ss.Spans)
			}
		}
	}
	if total != 2 {
		t.Fatalf("collector received %d spans, want 2", total)
	}
}

func TestOTLPExporterRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
	}))
	defer srv.Close()

	e := NewOTLPExporter(OTLPConfig{
		Endpoint:      srv.URL,
		FlushInterval: 5 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
	})
	if err := e.ExportSpans(goldenSpans()[:1]); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("collector called %d times, want 3 (two failures, one success)", calls.Load())
	}
	if e.Exported() != 1 || e.Dropped() != 0 {
		t.Fatalf("stats exported=%d dropped=%d", e.Exported(), e.Dropped())
	}
}

func TestOTLPExporterDropsPastRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	e := NewOTLPExporter(OTLPConfig{
		Endpoint:      srv.URL,
		FlushInterval: 5 * time.Millisecond,
		MaxRetries:    1,
		RetryBackoff:  time.Millisecond,
	})
	if err := e.ExportSpans(goldenSpans()); err != nil {
		t.Fatal(err)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Exported() != 0 || e.Dropped() != 2 {
		t.Fatalf("stats exported=%d dropped=%d, want 0 exported / 2 dropped", e.Exported(), e.Dropped())
	}
}

func TestOTLPExporterBoundedQueue(t *testing.T) {
	// An unresponsive collector: the handler blocks until released, so
	// spans pile into the queue and overflow must drop, not block.
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	e := NewOTLPExporter(OTLPConfig{
		Endpoint:      srv.URL,
		QueueSize:     4,
		BatchSize:     1,
		FlushInterval: time.Millisecond,
		MaxRetries:    -1,
	})
	spans := goldenSpans()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = e.ExportSpans(spans[:1])
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ExportSpans blocked on a full queue")
	}
	if e.Dropped() == 0 {
		t.Fatal("expected drops from the bounded queue")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Shutdown is bounded by ctx even though the collector never answers.
	if err := e.Shutdown(ctx); err == nil {
		t.Log("shutdown drained (collector released early)") // tolerated: timing
	}
}
