package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Trace is the per-request observability record: the request ID that
// names the request in the response header, every log line, the error
// body, and any async job it spawns — plus span-style stage durations
// (queue_wait, read, compress, write, ...) accumulated as the request
// flows through serve → jobs → pipeline. It travels by context; all
// methods are safe for concurrent use, and a nil *Trace is a valid
// no-op receiver so deep layers never need to check for presence.
type Trace struct {
	requestID string

	mu     sync.Mutex
	stages []Stage
}

// Stage is one named span duration inside a request.
type Stage struct {
	Name     string
	Duration time.Duration
}

// NewTrace returns a trace for the given request ID; an empty ID gets a
// fresh one.
func NewTrace(requestID string) *Trace {
	if requestID == "" {
		requestID = NewRequestID()
	}
	return &Trace{requestID: requestID}
}

// RequestID returns the trace's request ID ("" on a nil trace).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.requestID
}

// AddStage records one stage duration.
func (t *Trace) AddStage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{name, d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stage durations in order.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// StageAttrs renders the stages as slog attributes (stage name →
// duration), for attaching to a request-completion log line. Repeated
// stage names — a chunked request records one compress per chunk — are
// summed into a single attribute, keeping keys unique (duplicate slog
// keys render as indistinguishable JSON fields) while preserving
// first-appearance order.
func (t *Trace) StageAttrs() []any {
	stages := t.Stages()
	attrs := make([]any, 0, len(stages))
	index := make(map[string]int, len(stages))
	for _, s := range stages {
		if i, ok := index[s.Name]; ok {
			attrs[i] = slog.Duration(s.Name, attrs[i].(slog.Attr).Value.Duration()+s.Duration)
			continue
		}
		index[s.Name] = len(attrs)
		attrs = append(attrs, slog.Duration(s.Name, s.Duration))
	}
	return attrs
}

// ctxKey keeps the trace private to this package's accessors.
type ctxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the context's trace, or nil. The nil return is safe
// to call methods on.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	return TraceFrom(ctx).RequestID()
}

// AddStage records a stage duration on the context's trace; a no-op
// when no trace is present, so instrumented layers (the pipeline
// limiter, the jobs runner) cost nothing outside a traced request.
func AddStage(ctx context.Context, name string, d time.Duration) {
	TraceFrom(ctx).AddStage(name, d)
}

// NewRequestID mints a 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// The OS entropy source failing is unrecoverable here; IDs only
		// need uniqueness, and every other ID source derives from the
		// same pool.
		panic(fmt.Sprintf("obs: reading random request ID bytes: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds an accepted client-supplied request ID.
const maxRequestIDLen = 64

// SanitizeRequestID validates a client-supplied X-Request-Id: printable
// ASCII without spaces, quotes, or backslashes, at most 64 characters.
// Anything else returns "" and the caller mints a fresh ID — a hostile
// header must not be able to inject into logs or break the exposition
// format.
func SanitizeRequestID(s string) string {
	if len(s) == 0 || len(s) > maxRequestIDLen {
		return ""
	}
	if strings.ContainsFunc(s, func(r rune) bool {
		return r <= ' ' || r > '~' || r == '"' || r == '\\'
	}) {
		return ""
	}
	return s
}
