package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestTraceContext: the trace rides the context; stages accumulate; the
// nil trace (no middleware upstream) is a safe no-op.
func TestTraceContext(t *testing.T) {
	tr := NewTrace("abc123")
	ctx := WithTrace(context.Background(), tr)
	if RequestID(ctx) != "abc123" {
		t.Fatalf("RequestID = %q", RequestID(ctx))
	}
	AddStage(ctx, "read", 2*time.Millisecond)
	AddStage(ctx, "compress", 5*time.Millisecond)
	stages := tr.Stages()
	if len(stages) != 2 || stages[0].Name != "read" || stages[1].Duration != 5*time.Millisecond {
		t.Fatalf("stages = %v", stages)
	}

	// Absent trace: everything no-ops.
	bare := context.Background()
	if RequestID(bare) != "" {
		t.Fatalf("RequestID on bare context = %q", RequestID(bare))
	}
	AddStage(bare, "x", time.Second) // must not panic
	if TraceFrom(bare).RequestID() != "" {
		t.Fatal("nil trace must answer empty request ID")
	}
}

// TestNewTraceMintsID: an empty ID gets a fresh 16-hex one.
func TestNewTraceMintsID(t *testing.T) {
	a, b := NewTrace(""), NewTrace("")
	if len(a.RequestID()) != 16 || a.RequestID() == b.RequestID() {
		t.Fatalf("minted IDs %q, %q", a.RequestID(), b.RequestID())
	}
}

// TestSanitizeRequestID: hostile client-supplied IDs (log injection,
// exposition breakage, oversized) are rejected; plain tokens pass.
func TestSanitizeRequestID(t *testing.T) {
	for _, ok := range []string{"abc", "req-42_x.y:z", "0123456789abcdef"} {
		if SanitizeRequestID(ok) != ok {
			t.Fatalf("rejected valid ID %q", ok)
		}
	}
	for _, bad := range []string{
		"", "has space", "new\nline", `back\slash`, `quo"te`, "tab\there",
		strings.Repeat("x", 65), "\x00", "ünïcode",
	} {
		if got := SanitizeRequestID(bad); got != "" {
			t.Fatalf("accepted hostile ID %q as %q", bad, got)
		}
	}
}
