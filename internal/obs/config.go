package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// LoadFlags is the single config layer for a daemon built on the
// standard flag package: one FlagSet defines the vocabulary once, and
// values resolve with the precedence
//
//	command-line flag  >  <prefix><NAME> env var  >  config file  >  flag default
//
// The config file (named by the flag configFlag, or by its env
// variable) is a flat JSON object whose keys are flag names; values may
// be JSON strings, numbers, or booleans. Unknown keys are an error —
// a typoed setting must fail startup, not silently do nothing. Env
// variable names derive from flag names: uppercase, dashes to
// underscores (-cache-bytes → <prefix>CACHE_BYTES).
//
// args are the raw command-line arguments (os.Args[1:]); lookupEnv is
// os.LookupEnv (injectable for tests). Pass configFlag "" to disable
// file loading.
func LoadFlags(fs *flag.FlagSet, args []string, prefix string, lookupEnv func(string) (string, bool), configFlag string) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	setOnCommandLine := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { setOnCommandLine[f.Name] = true })

	// Resolve the config file path with the same precedence as any other
	// setting (flag > env); it obviously cannot come from the file.
	var fileValues map[string]string
	if configFlag != "" {
		path := ""
		if f := fs.Lookup(configFlag); f != nil {
			path = f.Value.String()
		}
		if !setOnCommandLine[configFlag] {
			if v, ok := lookupEnv(EnvName(prefix, configFlag)); ok {
				path = v
			}
		}
		if path != "" {
			var err error
			fileValues, err = readConfigFile(path, fs, configFlag)
			if err != nil {
				return err
			}
		}
	}

	var err error
	fs.VisitAll(func(f *flag.Flag) {
		if err != nil || setOnCommandLine[f.Name] || f.Name == configFlag {
			return
		}
		if v, ok := lookupEnv(EnvName(prefix, f.Name)); ok {
			if serr := fs.Set(f.Name, v); serr != nil {
				err = fmt.Errorf("env %s: %w", EnvName(prefix, f.Name), serr)
			}
			return
		}
		if v, ok := fileValues[f.Name]; ok {
			if serr := fs.Set(f.Name, v); serr != nil {
				err = fmt.Errorf("config file key %q: %w", f.Name, serr)
			}
		}
	})
	return err
}

// EnvName derives the environment variable for a flag name: prefix plus
// the uppercased, dash-to-underscore flag name.
func EnvName(prefix, flagName string) string {
	return prefix + strings.ToUpper(strings.ReplaceAll(flagName, "-", "_"))
}

// readConfigFile parses the flat JSON config object and stringifies
// every value for flag.Value.Set. Keys that name no registered flag
// (or the config flag itself, which cannot meaningfully come from the
// file) are rejected.
func readConfigFile(path string, fs *flag.FlagSet, configFlag string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading config file: %w", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		return nil, fmt.Errorf("config file %s: %w", path, err)
	}
	out := make(map[string]string, len(raw))
	for key, val := range raw {
		if fs.Lookup(key) == nil || key == configFlag {
			return nil, fmt.Errorf("config file %s: unknown setting %q", path, key)
		}
		switch v := val.(type) {
		case string:
			out[key] = v
		case bool:
			out[key] = fmt.Sprintf("%t", v)
		case float64:
			// JSON numbers arrive as float64; render integers without a
			// decimal point so int flags parse.
			if v == float64(int64(v)) {
				out[key] = fmt.Sprintf("%d", int64(v))
			} else {
				out[key] = fmt.Sprintf("%g", v)
			}
		default:
			return nil, fmt.Errorf("config file %s: setting %q must be a string, number, or boolean", path, key)
		}
	}
	return out, nil
}
