package obs

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"
)

// collectExporter records exported spans for assertions.
type collectExporter struct {
	mu    sync.Mutex
	spans []SpanData
}

func (c *collectExporter) ExportSpans(spans []SpanData) error {
	c.mu.Lock()
	c.spans = append(c.spans, spans...)
	c.mu.Unlock()
	return nil
}

func (c *collectExporter) Shutdown(context.Context) error { return nil }

func (c *collectExporter) all() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.spans...)
}

func TestStartSpanOutsideTraceIsNoop(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatalf("expected nil span outside any trace, got %+v", sp)
	}
	// The nil span must be safe to use.
	sp.SetAttrs(String("k", "v"))
	sp.SetError(errors.New("boom"))
	sp.End()
	if got := TraceparentFromContext(ctx); got != "" {
		t.Fatalf("traceparent from untraced ctx = %q", got)
	}
}

func TestSpanTreeExports(t *testing.T) {
	exp := &collectExporter{}
	tr := NewTracer(exp, 1)
	ctx := WithTrace(context.Background(), NewTrace(""))
	ctx, root := tr.StartRoot(ctx, "root", nil)
	if !root.TraceContext().Valid() {
		t.Fatal("root span has no trace context")
	}
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.SetError(errors.New("boom"))
	grand.End()
	child.End()
	root.SetAttrs(String("path", "/v1/compress"), Int("status", 200))
	root.End()

	spans := exp.all()
	if len(spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != root.TraceContext().TraceID {
			t.Errorf("span %s trace ID %s != root %s", s.Name, s.TraceID, root.TraceContext().TraceID)
		}
		if s.End.Before(s.Start) {
			t.Errorf("span %s ends before it starts", s.Name)
		}
	}
	if byName["child"].Parent != root.TraceContext().SpanID {
		t.Error("child's parent is not the root span")
	}
	if byName["grandchild"].Parent != byName["child"].SpanID {
		t.Error("grandchild's parent is not the child span")
	}
	if byName["grandchild"].Status != "boom" {
		t.Errorf("grandchild status %q, want boom", byName["grandchild"].Status)
	}
	if byName["root"].Parent.Valid() {
		t.Error("root span should have no parent")
	}
}

func TestStartRootJoinsParent(t *testing.T) {
	exp := &collectExporter{}
	tr := NewTracer(exp, 0) // ratio 0: only parent-sampled traces export
	parent := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	_, sp := tr.StartRoot(context.Background(), "joined", &parent)
	if sp.TraceContext().TraceID != parent.TraceID {
		t.Fatal("joined root did not inherit the trace ID")
	}
	sp.End()
	spans := exp.all()
	if len(spans) != 1 || spans[0].Parent != parent.SpanID {
		t.Fatalf("joined root not exported under the remote parent: %+v", spans)
	}

	// An unsampled parent suppresses export on every hop.
	parent.Sampled = false
	_, sp = tr.StartRoot(context.Background(), "unsampled", &parent)
	sp.End()
	if got := len(exp.all()); got != 1 {
		t.Fatalf("unsampled trace exported a span (total %d)", got)
	}

	// No parent + nil tracer: propagation machinery stays inert.
	var nilTracer *Tracer
	ctx, sp := nilTracer.StartRoot(context.Background(), "none", nil)
	if sp != nil {
		t.Fatal("nil tracer with no parent minted a span")
	}
	// But a parent still propagates through an exporter-less daemon.
	parent.Sampled = true
	ctx, sp = nilTracer.StartRoot(context.Background(), "relay", &parent)
	if sp == nil || !sp.TraceContext().Valid() {
		t.Fatal("nil tracer dropped inbound trace context")
	}
	if got := TraceparentFromContext(ctx); got == "" {
		t.Fatal("no traceparent to propagate downstream")
	}
	sp.End() // no exporter: must not panic
}

func TestSamplingRatio(t *testing.T) {
	sampled := 0
	const n = 2000
	for i := 0; i < n; i++ {
		id := NewTraceID()
		if sampleTraceID(id, 0.25) {
			sampled++
		}
		if !sampleTraceID(id, 1) {
			t.Fatal("ratio 1 must sample everything")
		}
		if sampleTraceID(id, 0) {
			t.Fatal("ratio 0 must sample nothing")
		}
		// Determinism: same ID, same answer.
		if sampleTraceID(id, 0.25) != sampleTraceID(id, 0.25) {
			t.Fatal("sampler is not deterministic")
		}
	}
	// 25% of 2000 with generous slack: binomial σ ≈ 19, allow ±6σ.
	if sampled < 380 || sampled > 620 {
		t.Fatalf("ratio 0.25 sampled %d/%d", sampled, n)
	}
}

// TestConcurrentSpans exercises concurrent span creation, attribute
// writes, and ends under one trace; run with -race this is the
// regression test for span/trace locking.
func TestConcurrentSpans(t *testing.T) {
	exp := &collectExporter{}
	tr := NewTracer(exp, 1)
	trace := NewTrace("")
	ctx := WithTrace(context.Background(), trace)
	ctx, root := tr.StartRoot(ctx, "root", nil)

	var wg sync.WaitGroup
	const workers = 16
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx, sp := StartSpan(ctx, "worker")
			sp.SetAttrs(Int("index", int64(i)))
			for j := 0; j < 8; j++ {
				_, inner := StartSpan(cctx, "inner", WithoutStage())
				inner.SetAttrs(String("j", "x"))
				inner.End()
			}
			root.SetAttrs(Int("racy", int64(i)))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()

	spans := exp.all()
	if want := 1 + workers + workers*8; len(spans) != want {
		t.Fatalf("exported %d spans, want %d", len(spans), want)
	}
	for _, s := range spans {
		if s.TraceID != root.TraceContext().TraceID {
			t.Fatalf("span %s escaped the trace", s.Name)
		}
	}
	// The trace's stage list aggregated the 16 "worker" stages without
	// duplicate keys (the StageAttrs regression) and the WithoutStage
	// inner spans stayed off it.
	attrs := trace.StageAttrs()
	if len(attrs) != 1 {
		t.Fatalf("StageAttrs = %v, want a single aggregated worker entry", attrs)
	}
	a := attrs[0].(slog.Attr)
	if a.Key != "worker" {
		t.Fatalf("aggregated key %q, want worker", a.Key)
	}
	if stages := trace.Stages(); len(stages) != workers {
		t.Fatalf("raw stage count %d, want %d", len(stages), workers)
	}
}

func TestStageAttrsAggregatesDuplicates(t *testing.T) {
	tr := NewTrace("r1")
	tr.AddStage("read", 10*time.Millisecond)
	tr.AddStage("compress", 20*time.Millisecond)
	tr.AddStage("compress", 30*time.Millisecond)
	tr.AddStage("write", 5*time.Millisecond)
	attrs := tr.StageAttrs()
	if len(attrs) != 3 {
		t.Fatalf("got %d attrs, want 3 (duplicates aggregated): %v", len(attrs), attrs)
	}
	keys := map[string]time.Duration{}
	var order []string
	for _, a := range attrs {
		at := a.(slog.Attr)
		if _, dup := keys[at.Key]; dup {
			t.Fatalf("duplicate slog key %q", at.Key)
		}
		keys[at.Key] = at.Value.Duration()
		order = append(order, at.Key)
	}
	if keys["compress"] != 50*time.Millisecond {
		t.Fatalf("compress aggregated to %v, want 50ms", keys["compress"])
	}
	if order[0] != "read" || order[1] != "compress" || order[2] != "write" {
		t.Fatalf("first-appearance order lost: %v", order)
	}
}

// TestSpanEndIdempotent: a span that Ends twice exports once.
func TestSpanEndIdempotent(t *testing.T) {
	exp := &collectExporter{}
	tr := NewTracer(exp, 1)
	_, sp := tr.StartRoot(context.Background(), "once", nil)
	sp.End()
	sp.End()
	if got := len(exp.all()); got != 1 {
		t.Fatalf("double End exported %d spans", got)
	}
}

// TestStageOnlySpan: with a Trace but no tracer, StartSpan still times
// stages (the old AddStage behavior) without minting trace identity.
func TestStageOnlySpan(t *testing.T) {
	trace := NewTrace("")
	ctx := WithTrace(context.Background(), trace)
	_, sp := StartSpan(ctx, "read")
	if sp == nil {
		t.Fatal("expected a stage-only span")
	}
	if sp.TraceContext().Valid() {
		t.Fatal("stage-only span should have no trace identity")
	}
	sp.End()
	stages := trace.Stages()
	if len(stages) != 1 || stages[0].Name != "read" {
		t.Fatalf("stage not recorded: %v", stages)
	}
}
