package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is a finished span, flattened for export: the mutable *Span
// is private to the code that ran the operation; exporters only ever
// see this immutable record.
type SpanData struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID
	Name    string
	Start   time.Time
	End     time.Time
	Attrs   []Attr
	Status  string // non-empty = error description
}

// SpanExporter receives finished spans. ExportSpans must be safe for
// concurrent use and must not block on slow sinks — a span ends on the
// request's critical path. Shutdown flushes whatever is buffered,
// bounded by ctx.
type SpanExporter interface {
	ExportSpans(spans []SpanData) error
	Shutdown(ctx context.Context) error
}

// ExporterStats is the accounting surface a buffering exporter can
// expose (the OTLP exporter implements it); the serve metrics layer
// publishes these as gauges so queue saturation and span loss are
// visible before traces silently thin out.
type ExporterStats interface {
	QueueDepth() int64
	Exported() int64
	Dropped() int64
}

// WriterExporter writes each span as one JSON object per line — the
// JSONL file/stdout exporter. Lines are whole-span atomic under a
// mutex, so interleaved goroutines never shear a record.
type WriterExporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterExporter returns a JSONL exporter writing to w.
func NewWriterExporter(w io.Writer) *WriterExporter {
	return &WriterExporter{w: w}
}

// jsonlSpan is the JSONL line schema: hex IDs, RFC3339Nano times.
type jsonlSpan struct {
	TraceID  string         `json:"trace_id"`
	SpanID   string         `json:"span_id"`
	ParentID string         `json:"parent_id,omitempty"`
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	End      time.Time      `json:"end"`
	Duration string         `json:"duration"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// ExportSpans writes one line per span.
func (e *WriterExporter) ExportSpans(spans []SpanData) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range spans {
		line := jsonlSpan{
			TraceID:  s.TraceID.String(),
			SpanID:   s.SpanID.String(),
			Name:     s.Name,
			Start:    s.Start,
			End:      s.End,
			Duration: s.End.Sub(s.Start).String(),
			Error:    s.Status,
		}
		if s.Parent.Valid() {
			line.ParentID = s.Parent.String()
		}
		if len(s.Attrs) > 0 {
			line.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				if a.IsInt {
					line.Attrs[a.Key] = a.Int
				} else {
					line.Attrs[a.Key] = a.Str
				}
			}
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	_, err := e.w.Write(buf.Bytes())
	return err
}

// Shutdown flushes nothing (writes are synchronous) but closes the
// underlying writer when it is closable (a file; not stdout).
func (e *WriterExporter) Shutdown(context.Context) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// OTLPConfig configures an OTLPExporter. Zero values take the noted
// defaults.
type OTLPConfig struct {
	// Endpoint is the collector's trace ingestion URL
	// (e.g. http://localhost:4318/v1/traces). Required.
	Endpoint string
	// Service names this process in the resource attributes
	// (service.name). Default "tcompd".
	Service string
	// Client issues the POSTs. Default: http.Client with 5s timeout.
	Client *http.Client
	// QueueSize bounds the async span queue; spans arriving at a full
	// queue are dropped and counted. Default 2048.
	QueueSize int
	// BatchSize caps spans per POST. Default 512.
	BatchSize int
	// FlushInterval bounds how long a non-full batch waits. Default 1s.
	FlushInterval time.Duration
	// MaxRetries is the send attempts per batch beyond the first.
	// Default 3.
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubled per attempt.
	// Default 250ms.
	RetryBackoff time.Duration
}

// OTLPExporter ships spans to an OpenTelemetry collector over OTLP/HTTP
// with JSON encoding, using only the standard library. Spans are
// enqueued without blocking (a full queue drops the span and counts
// it), batched by a background goroutine, and POSTed with
// retry-with-backoff; Shutdown drains the queue before returning.
type OTLPExporter struct {
	cfg   OTLPConfig
	queue chan SpanData
	done  chan struct{} // closed when the background loop exits

	exported atomic.Int64
	dropped  atomic.Int64
	depth    atomic.Int64

	shutdownOnce sync.Once
	shutdownErr  error
}

// NewOTLPExporter starts the background batching loop and returns the
// exporter.
func NewOTLPExporter(cfg OTLPConfig) *OTLPExporter {
	if cfg.Service == "" {
		cfg.Service = "tcompd"
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 2048
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	e := &OTLPExporter{
		cfg:   cfg,
		queue: make(chan SpanData, cfg.QueueSize),
		done:  make(chan struct{}),
	}
	go e.loop()
	return e
}

// ExportSpans enqueues spans without blocking; spans that do not fit
// the bounded queue are dropped and counted, never stalling the caller.
func (e *OTLPExporter) ExportSpans(spans []SpanData) error {
	for _, s := range spans {
		select {
		case e.queue <- s:
			e.depth.Add(1)
		default:
			e.dropped.Add(1)
		}
	}
	return nil
}

// QueueDepth returns the number of spans waiting to be sent.
func (e *OTLPExporter) QueueDepth() int64 { return e.depth.Load() }

// Exported returns the number of spans successfully delivered.
func (e *OTLPExporter) Exported() int64 { return e.exported.Load() }

// Dropped returns spans lost to a full queue or a batch that exhausted
// its retries.
func (e *OTLPExporter) Dropped() int64 { return e.dropped.Load() }

// Shutdown stops accepting spans, drains the queue, and waits for the
// background loop to finish sending, bounded by ctx.
func (e *OTLPExporter) Shutdown(ctx context.Context) error {
	e.shutdownOnce.Do(func() {
		close(e.queue)
		select {
		case <-e.done:
		case <-ctx.Done():
			e.shutdownErr = ctx.Err()
		}
	})
	return e.shutdownErr
}

// loop batches queued spans and sends them; it exits once the queue is
// closed and drained.
func (e *OTLPExporter) loop() {
	defer close(e.done)
	timer := time.NewTimer(e.cfg.FlushInterval)
	defer timer.Stop()
	batch := make([]SpanData, 0, e.cfg.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		e.send(batch)
		batch = batch[:0]
	}
	for {
		select {
		case s, ok := <-e.queue:
			if !ok {
				// Drain: the queue channel is closed, so range the
				// remainder and flush everything.
				flush()
				return
			}
			e.depth.Add(-1)
			batch = append(batch, s)
			if len(batch) >= e.cfg.BatchSize {
				flush()
			}
		case <-timer.C:
			flush()
			timer.Reset(e.cfg.FlushInterval)
		}
	}
}

// send POSTs one batch with retry-with-backoff; a batch that exhausts
// its retries is dropped and counted.
func (e *OTLPExporter) send(batch []SpanData) {
	body, err := json.Marshal(otlpPayload(e.cfg.Service, batch))
	if err != nil {
		e.dropped.Add(int64(len(batch)))
		return
	}
	backoff := e.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		if e.post(body) == nil {
			e.exported.Add(int64(len(batch)))
			return
		}
		if attempt >= e.cfg.MaxRetries {
			e.dropped.Add(int64(len(batch)))
			return
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

func (e *OTLPExporter) post(body []byte) error {
	req, err := http.NewRequest(http.MethodPost, e.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("obs: collector returned %s", resp.Status)
	}
	return nil
}

// OTLP/HTTP JSON wire shapes (opentelemetry-proto trace service, JSON
// mapping). Per the protobuf JSON mapping, 64-bit integers — the
// nanosecond timestamps and int attribute values — encode as strings.

type otlpExportRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Status            otlpStatus     `json:"status"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code,omitempty"`
	Message string `json:"message,omitempty"`
}

func otlpString(key, v string) otlpKeyValue {
	return otlpKeyValue{Key: key, Value: otlpAnyValue{StringValue: &v}}
}

func otlpInt(key string, v int64) otlpKeyValue {
	s := strconv.FormatInt(v, 10)
	return otlpKeyValue{Key: key, Value: otlpAnyValue{IntValue: &s}}
}

// otlpPayload builds the ExportTraceServiceRequest JSON body for one
// batch. Factored out of send so the golden-file test can pin the
// payload shape without a live collector.
func otlpPayload(service string, spans []SpanData) otlpExportRequest {
	out := make([]otlpSpan, 0, len(spans))
	for _, s := range spans {
		sp := otlpSpan{
			TraceID: s.TraceID.String(),
			SpanID:  s.SpanID.String(),
			Name:    s.Name,
			// SPAN_KIND_INTERNAL: parent/child structure already
			// captures the hops; kind refinement is not load-bearing.
			Kind:              1,
			StartTimeUnixNano: strconv.FormatInt(s.Start.UnixNano(), 10),
			EndTimeUnixNano:   strconv.FormatInt(s.End.UnixNano(), 10),
		}
		if s.Parent.Valid() {
			sp.ParentSpanID = s.Parent.String()
		}
		for _, a := range s.Attrs {
			if a.IsInt {
				sp.Attributes = append(sp.Attributes, otlpInt(a.Key, a.Int))
			} else {
				sp.Attributes = append(sp.Attributes, otlpString(a.Key, a.Str))
			}
		}
		if s.Status != "" {
			sp.Status = otlpStatus{Code: 2, Message: s.Status} // STATUS_CODE_ERROR
		}
		out = append(out, sp)
	}
	return otlpExportRequest{
		ResourceSpans: []otlpResourceSpans{{
			Resource: otlpResource{Attributes: []otlpKeyValue{
				otlpString("service.name", service),
			}},
			ScopeSpans: []otlpScopeSpans{{
				Scope: otlpScope{Name: "repro/internal/obs"},
				Spans: out,
			}},
		}},
	}
}
