package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text exposition for a
// representative registry: HELP/TYPE headers, label quoting, cumulative
// histogram buckets with the +Inf terminator, and _sum/_count samples.
// This is the wire contract a scraper parses; renderings must not
// drift.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	var reqs Counter
	reqs.Add(3)
	var inFlight Gauge
	inFlight.Set(2)
	byPath := &LabelCounter{}
	byPath.Add("/v1/compress", 5)
	byPath.Add(`/weird"path\`, 1)
	lat := NewHistogramVec(0.01, 0.1, 1)
	lat.Observe("/v1/compress", 0.005)
	lat.Observe("/v1/compress", 0.05)
	lat.Observe("/v1/compress", 7)

	r.Counter("tcompd_errors_total", "Requests answered non-2xx.", &reqs)
	r.Gauge("tcompd_in_flight", "Requests currently being served.", &inFlight)
	r.CounterVec("tcompd_requests_total", "Completed requests per endpoint.", "path", byPath)
	r.GaugeFunc("tcompd_cache_hit_ratio", "Hits over lookups.", func() float64 { return 0.25 })
	r.HistogramVec("tcompd_request_duration_seconds", "Request latency.", "path", lat)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP tcompd_errors_total Requests answered non-2xx.
# TYPE tcompd_errors_total counter
tcompd_errors_total 3
# HELP tcompd_in_flight Requests currently being served.
# TYPE tcompd_in_flight gauge
tcompd_in_flight 2
# HELP tcompd_requests_total Completed requests per endpoint.
# TYPE tcompd_requests_total counter
tcompd_requests_total{path="/v1/compress"} 5
tcompd_requests_total{path="/weird\"path\\"} 1
# HELP tcompd_cache_hit_ratio Hits over lookups.
# TYPE tcompd_cache_hit_ratio gauge
tcompd_cache_hit_ratio 0.25
# HELP tcompd_request_duration_seconds Request latency.
# TYPE tcompd_request_duration_seconds histogram
tcompd_request_duration_seconds_bucket{path="/v1/compress",le="0.01"} 1
tcompd_request_duration_seconds_bucket{path="/v1/compress",le="0.1"} 2
tcompd_request_duration_seconds_bucket{path="/v1/compress",le="1"} 2
tcompd_request_duration_seconds_bucket{path="/v1/compress",le="+Inf"} 3
tcompd_request_duration_seconds_sum{path="/v1/compress"} 7.055
tcompd_request_duration_seconds_count{path="/v1/compress"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionHTTP checks the scrape endpoint contract: content type
// and method gating.
func TestExpositionHTTP(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.Counter("x_total", "x", &c)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/prometheus", nil))
	if rec.Code != 200 {
		t.Fatalf("GET scrape status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 0") {
		t.Fatalf("scrape body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics/prometheus", nil))
	if rec.Code != 405 {
		t.Fatalf("POST scrape status %d, want 405", rec.Code)
	}
}

// TestRegistryRejectsBadNames: registration is construction-time, so
// malformed or duplicate names must panic, not silently corrupt the
// exposition.
func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	var c Counter
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad name", func() { r.Counter("bad name", "", &c) })
	r.Counter("dup_total", "", &c)
	mustPanic("duplicate", func() { r.Counter("dup_total", "", &c) })
	mustPanic("bad label", func() { r.CounterVec("ok_total", "", "bad label", &LabelCounter{}) })
}
