package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log formats accepted by NewLogger.
const (
	LogText = "text" // key=value pairs, human-first (slog.TextHandler)
	LogJSON = "json" // one JSON object per line, machine-first
)

// NewLogger builds a leveled structured logger writing to w. format is
// LogText or LogJSON; anything else is an error, not a fallback, so a
// typo in -log-format fails loudly at startup instead of silently
// switching schema.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want %s or %s)", format, LogText, LogJSON)
}

// ParseLevel maps a config string onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}
