package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestGaugeSetMaxConcurrent is the regression test for the workers-peak
// lost-update race: N goroutines each push the gauge up and record the
// high-water mark via SetMax; the peak must be the true maximum of the
// values the atomic Add returned, never an under-report. Run under
// -race.
func TestGaugeSetMaxConcurrent(t *testing.T) {
	var busy, peak Gauge
	const goroutines = 64
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				peak.SetMax(busy.Add(1))
				busy.Add(-1)
			}
		}()
	}
	wg.Wait()
	if busy.Value() != 0 {
		t.Fatalf("busy = %d after all goroutines released, want 0", busy.Value())
	}
	if p := peak.Value(); p < 1 || p > goroutines {
		t.Fatalf("peak = %d, want within [1, %d]", p, goroutines)
	}
	// SetMax never lowers the value.
	peak.SetMax(peak.Value() - 1)
	if p := peak.Value(); p < 1 {
		t.Fatalf("SetMax lowered the gauge to %d", p)
	}
}

// TestGaugeSetMaxIsMax pins the CAS loop's semantics deterministically.
func TestGaugeSetMaxIsMax(t *testing.T) {
	var g Gauge
	for _, v := range []int64{5, 3, 9, 9, 1} {
		g.SetMax(v)
	}
	if g.Value() != 9 {
		t.Fatalf("SetMax sequence ended at %d, want 9", g.Value())
	}
}

// TestHistogramBuckets pins le (less-or-equal) bucket semantics and the
// sum/count accounting.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 100} {
		h.Observe(v)
	}
	_, counts := h.Snapshot()
	want := []int64{2, 2, 1, 1} // le=1: {0.5, 1}; le=2: {1.5, 2}; le=5: {4}; +Inf: {100}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 109 {
		t.Fatalf("sum = %g, want 109", h.Sum())
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines;
// the totals must balance. Run under -race.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(10, 100)
	var wg sync.WaitGroup
	const goroutines, iters = 32, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.Observe(float64(i % 150))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*iters {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*iters)
	}
	_, counts := h.Snapshot()
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("bucket total = %d, want %d", total, goroutines*iters)
	}
}

// TestExpvarCompatJSON: every primitive must render valid JSON, because
// serve roots them all in an expvar.Map whose String() concatenates
// member renderings into the GET /metrics snapshot.
func TestExpvarCompatJSON(t *testing.T) {
	var c Counter
	c.Add(7)
	var g Gauge
	g.Set(-3)
	lc := &LabelCounter{}
	lc.Add("/v1/compress", 2)
	lc.Add("/healthz", 1)
	h := NewHistogram(1, 10)
	h.Observe(0.5)
	h.Observe(99)
	hv := NewHistogramVec(50)
	hv.Observe("golomb", 42)
	for name, v := range map[string]fmt.Stringer{
		"counter": &c, "gauge": &g, "labelcounter": lc, "histogram": h, "histogramvec": hv,
	} {
		var out any
		if err := json.Unmarshal([]byte(v.String()), &out); err != nil {
			t.Fatalf("%s.String() = %q is not valid JSON: %v", name, v.String(), err)
		}
	}
	if got := lc.String(); got != `{"/healthz": 1, "/v1/compress": 2}` {
		t.Fatalf("LabelCounter JSON = %s (keys must be sorted)", got)
	}
	if lc.Get("/healthz").Value() != 1 {
		t.Fatalf("Get returned %d, want 1", lc.Get("/healthz").Value())
	}
	if lc.Get("absent") != nil {
		t.Fatal("Get of an absent key must return nil")
	}
}
