package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// Registry renders registered metrics in the Prometheus text exposition
// format (version 0.0.4) — the format every Prometheus-compatible
// scraper speaks — without importing a client library. Registration
// stores references, not snapshots: WriteTo reads the live values on
// every scrape.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

// family is one registered metric family: its metadata plus a collector
// that renders the sample lines.
type family struct {
	name, help, typ string
	collect         func(w io.Writer)
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// register panics on malformed or duplicate names: metric registration
// happens once at construction, so a bad name is a programming error,
// not input data.
func (r *Registry) register(name, help, typ string, collect func(w io.Writer)) {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
	r.families = append(r.families, family{name, help, typ, collect})
}

// Counter registers a counter. Prometheus counter names end in _total
// by convention; the name is used as given.
func (r *Registry) Counter(name, help string, c *Counter) {
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	})
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string, g *Gauge) {
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %d\n", name, g.Value())
	})
}

// GaugeFunc registers a computed gauge (e.g. a ratio of two counters).
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, "gauge", func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
	})
}

// CounterFunc registers a computed counter (e.g. a total read from a
// runtime or exporter stats surface).
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, "counter", func(w io.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
	})
}

// CounterVec registers a labelled counter family under one label name.
func (r *Registry) CounterVec(name, help, label string, c *LabelCounter) {
	if !metricNameRe.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.register(name, help, "counter", func(w io.Writer) {
		c.Do(func(key string, ctr *Counter) {
			fmt.Fprintf(w, "%s{%s=%s} %d\n", name, label, quoteLabel(key), ctr.Value())
		})
	})
}

// Histogram registers a histogram: cumulative _bucket{le=...} lines, a
// final le="+Inf" bucket, and the _sum and _count samples.
func (r *Registry) Histogram(name, help string, h *Histogram) {
	r.register(name, help, "histogram", func(w io.Writer) {
		writeHistogram(w, name, "", "", h)
	})
}

// HistogramVec registers a labelled histogram family under one label
// name.
func (r *Registry) HistogramVec(name, help, label string, v *HistogramVec) {
	if !metricNameRe.MatchString(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.register(name, help, "histogram", func(w io.Writer) {
		v.Do(func(key string, h *Histogram) {
			writeHistogram(w, name, label, key, h)
		})
	})
}

// writeHistogram renders one histogram's samples, with an optional
// shared label pair on every line.
func writeHistogram(w io.Writer, name, label, key string, h *Histogram) {
	bounds, counts := h.Snapshot()
	extra := ""
	if label != "" {
		extra = label + "=" + quoteLabel(key) + ","
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, le, cum)
	}
	suffix := ""
	if label != "" {
		suffix = "{" + label + "=" + quoteLabel(key) + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

// quoteLabel escapes a label value per the exposition format: backslash,
// double quote, and newline are escaped inside double quotes.
func quoteLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// WriteTo renders every registered family — # HELP, # TYPE, samples —
// in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	cw := &countWriter{w: bufio.NewWriter(w)}
	for _, f := range fams {
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ)
		f.collect(cw)
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

// escapeHelp escapes backslash and newline in help text per the format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ServeHTTP answers a scrape with the text exposition body.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "use GET", http.StatusMethodNotAllowed)
		return
	}
	var buf strings.Builder
	if _, err := r.WriteTo(&buf); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = io.WriteString(w, buf.String()) // client gone: nothing to do
}

// countWriter tracks bytes written and the first error.
type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if c.err == nil {
		c.err = err
	}
	return n, err
}
