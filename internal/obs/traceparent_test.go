package obs

import (
	"strings"
	"testing"
)

func TestParseTraceparentValid(t *testing.T) {
	cases := []struct {
		in      string
		sampled bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", false},
		// Only the sampled bit is interpreted; other flag bits pass.
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-03", true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-02", false},
		// A future version may append dash-separated fields.
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true},
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
	}
	for _, c := range cases {
		tc, err := ParseTraceparent(c.in)
		if err != nil {
			t.Errorf("ParseTraceparent(%q): unexpected error %v", c.in, err)
			continue
		}
		if !tc.Valid() {
			t.Errorf("ParseTraceparent(%q): invalid context %+v", c.in, tc)
		}
		if tc.Sampled != c.sampled {
			t.Errorf("ParseTraceparent(%q): sampled = %v, want %v", c.in, tc.Sampled, c.sampled)
		}
		if got := tc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("ParseTraceparent(%q): trace ID %s", c.in, got)
		}
		if got := tc.SpanID.String(); got != "00f067aa0ba902b7" {
			t.Errorf("ParseTraceparent(%q): span ID %s", c.in, got)
		}
	}
}

func TestParseTraceparentHostile(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"short", "00-abc"},
		{"version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"uppercase version hex", "0A-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"non-hex version", "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01"},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x"},
		{"bad delimiters", "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01"},
		{"version 00 with trailing", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"},
		{"version 01 trailing without dash", "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x"},
		{"embedded newline", "00-4bf92f3577b34da6a3ce929d0e0e47\n6-00f067aa0ba902b7-01"},
	}
	for _, c := range cases {
		if tc, err := ParseTraceparent(c.in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted hostile input: %+v", c.name, c.in, tc)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		want := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: sampled}
		got, err := ParseTraceparent(FormatTraceparent(want))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// FuzzParseTraceparent asserts the parser's safety property under
// arbitrary input: it never panics, and any accepted value yields a
// valid (non-zero ID) context that survives a format/parse round trip.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-00f067aa0ba902b7-01")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-tail")
	f.Add(strings.Repeat("0", 55))
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			if tc.Valid() {
				t.Fatalf("error %v but context %+v is valid", err, tc)
			}
			return
		}
		if !tc.TraceID.Valid() || !tc.SpanID.Valid() {
			t.Fatalf("accepted %q with zero ID: %+v", s, tc)
		}
		again, err := ParseTraceparent(FormatTraceparent(tc))
		if err != nil {
			t.Fatalf("reformatted %q failed to parse: %v", s, err)
		}
		if again != tc {
			t.Fatalf("round trip changed context: %+v vs %+v", again, tc)
		}
	})
}
